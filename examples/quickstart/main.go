// Quickstart: the smallest end-to-end DiCE run.
//
// We bring up the paper's three-router topology (Figure 2), let it
// converge, then run one DiCE exploration round on the provider: DiCE
// checkpoints the live router, derives symbolic inputs from the last
// UPDATE observed from the customer, and systematically negates branch
// predicates to cover every code×configuration path of the import policy
// — all in isolation from the live system.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dice/internal/concolic"
	"dice/internal/core"
)

func main() {
	log.SetFlags(0)

	// 1. The live system: Customer — Provider(DiCE) — Internet, with the
	//    misconfigured customer filter from §4.2.
	fig, err := core.NewFig2(core.Fig2Options{CustomerFilter: core.BrokenCustomerFilter})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("topology converged:")
	fmt.Printf("  provider RIB: %d prefixes\n", fig.Provider.RIB().Prefixes())

	// 2. Give the provider some Internet routes (potential hijack victims).
	if _, err := fig.LoadTable(core.Victims()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  loaded %d victim routes from the Internet side\n\n", len(core.Victims()))

	// 3. One DiCE exploration round over the customer peering.
	d := core.New(fig.Provider, core.Options{
		Engine: concolic.Options{MaxRuns: 1000},
	})
	res, err := d.ExplorePeer(core.NodeCustomer)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("exploration: %d runs covered %d distinct paths in %v\n",
		res.Report.Runs, len(res.Report.Paths), res.Elapsed.Round(1000))
	fmt.Printf("isolation: %d messages from clones, all intercepted\n\n", res.CapturedMessages)

	// 4. The oracle's verdict.
	if len(res.Findings) == 0 {
		fmt.Println("no faults found")
		return
	}
	fmt.Printf("%d potential prefix hijack(s) found:\n", len(res.Findings))
	for _, f := range res.Findings {
		fmt.Printf("  %s\n", f)
	}
	fmt.Println("\nfix the filter (core.CorrectCustomerFilter) and the findings disappear.")
}
