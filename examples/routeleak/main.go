// Routeleak replays the YouTube/Pakistan-Telecom incident (§4.2) on the
// Figure 2 topology and shows DiCE catching it *before* it happens.
//
// The 2008 incident: Pakistan Telecom announced a more-specific /24 of
// YouTube's /22 intending to blackhole it domestically; its provider PCCW
// had no customer route filter, so the announcement spread Internet-wide
// and took YouTube down for two hours.
//
// Here the provider's customer filter is "partially correct" — exactly
// the misconfiguration class the paper evaluates. DiCE explores the
// provider's import policy from live state and reports which prefix
// ranges the customer could hijack, including the YouTube-analogue /22.
//
//	go run ./examples/routeleak
package main

import (
	"fmt"
	"log"
	"time"

	"dice/internal/concolic"
	"dice/internal/core"
	"dice/internal/trace"
)

func main() {
	log.SetFlags(0)

	fmt.Println("== The setup (paper Figure 2) ==")
	fmt.Println("  customer AS65001 --- provider AS65002 (DiCE) --- rest-of-internet AS65003")
	fmt.Println()
	fmt.Println("provider's customer filter (note the fat-fingered second clause):")
	fmt.Println(core.BrokenCustomerFilter)
	fmt.Println()

	fig, err := core.NewFig2(core.Fig2Options{CustomerFilter: core.BrokenCustomerFilter})
	if err != nil {
		log.Fatal(err)
	}

	// Load a scaled-down Internet table plus the YouTube-analogue victim:
	// 10.153.112.0/22 originated by AS36561 (YouTube's real ASN).
	cfg := trace.DefaultGenConfig()
	cfg.TableSize = 5000
	cfg.UpdateCount = 0
	records := append(trace.Generate(cfg), core.Victims()...)
	start := time.Now()
	n, err := fig.LoadTable(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provider loaded %d routes from the rest of the Internet in %v\n",
		n, time.Since(start).Round(time.Millisecond))

	if v := fig.Provider.RIB().Best(core.YouTubeVictim); v != nil {
		fmt.Printf("victim installed: %s via AS path [%s]\n\n", v.Prefix, v.Attrs.ASPath)
	}

	fmt.Println("== DiCE explores the provider's behavior, online ==")
	d := core.New(fig.Provider, core.Options{Engine: concolic.Options{MaxRuns: 3000}})
	res, err := d.ExplorePeer(core.NodeCustomer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d runs, %d paths, %d solver queries, %v\n\n",
		res.Report.Runs, len(res.Report.Paths), res.Report.SolverCalls,
		res.Elapsed.Round(time.Millisecond))

	fmt.Println("== Findings ==")
	youtube := false
	for _, f := range res.Findings {
		marker := "  "
		if f.VictimPrefix == core.YouTubeVictim {
			marker = "➜ "
			youtube = true
		}
		fmt.Printf("%s%s\n", marker, f)
	}
	fmt.Println()
	if youtube {
		fmt.Println("DiCE found that the customer can announce a more-specific /24 inside the")
		fmt.Println("YouTube-analogue /22 and the provider will accept and re-announce it —")
		fmt.Println("the 2008 incident, detected before any damage. \"Pakistan's upstream")
		fmt.Println("provider would have been able to install a correct filter\" (§4.2).")
	} else {
		fmt.Println("(YouTube victim not among findings — increase -runs)")
	}

	// Show the fix.
	fmt.Println("\n== Control: the correct filter ==")
	fig2, err := core.NewFig2(core.Fig2Options{CustomerFilter: core.CorrectCustomerFilter})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fig2.LoadTable(records); err != nil {
		log.Fatal(err)
	}
	d2 := core.New(fig2.Provider, core.Options{Engine: concolic.Options{MaxRuns: 3000}})
	res2, err := d2.ExplorePeer(core.NodeCustomer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with correct customer filtering: %d findings (expected 0)\n", len(res2.Findings))
}
