// Federated demonstrates the §2.4 discussion: extending DiCE's horizon
// across administrative domains while preserving confidentiality.
//
// Four autonomous systems with *different, private* policies peer in a
// chain. Each AS runs DiCE locally over its own router. No AS can read
// another's configuration or routing table; instead, each exposes only a
// narrow query interface — "which origin AS do you currently have for
// this prefix?" — which is enough for the hijack oracle yet reveals
// nothing about policies or full tables ("nodes only communicate state
// information through a narrow interface yet capable to allow us to
// detect faults").
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"log"
	"time"

	"dice/internal/concolic"
	"dice/internal/config"
	"dice/internal/core"
	"dice/internal/netaddr"
	"dice/internal/netsim"
	"dice/internal/router"
)

// originQuery is the narrow cross-domain interface: given a prefix,
// return the origin AS of the covering route (or 0). It deliberately
// exposes nothing else — no paths, no policies, no table dumps.
type originQuery func(p netaddr.Prefix) uint16

func narrowInterface(r *router.Router) originQuery {
	return func(p netaddr.Prefix) uint16 {
		if rt := r.RIB().CoveringBest(p); rt != nil {
			return rt.OriginAS()
		}
		return 0
	}
}

func main() {
	log.SetFlags(0)

	// Topology: stub(AS64900) — transitA(AS64910) — transitB(AS64920) — content(AS64930)
	// transitA's filter for its stub customer has the §4.2 hole.
	configs := map[string]string{
		"stub": `
			router id 10.9.0.1; local as 64900;
			network 10.90.0.0/16;
			peer transitA { remote 10.9.0.2 as 64910; }`,
		"transitA": `
			router id 10.9.0.2; local as 64910;
			filter stub_in {
				if net ~ 10.90.0.0/16 then accept;
				if net ~ 10.0.0.0/8{24,32} then accept;  # the hole
				reject;
			}
			peer stub { remote 10.9.0.1 as 64900; import filter stub_in; }
			peer transitB { remote 10.9.0.3 as 64920; }`,
		"transitB": `
			router id 10.9.0.3; local as 64920;
			filter longpaths_out {
				if bgp_path.len > 12 then reject;
				accept;
			}
			peer transitA { remote 10.9.0.2 as 64910; export filter longpaths_out; }
			peer content { remote 10.9.0.4 as 64930; }`,
		"content": `
			router id 10.9.0.4; local as 64930;
			network 10.153.112.0/22;
			peer transitB { remote 10.9.0.3 as 64920; }`,
	}
	links := [][2]string{{"stub", "transitA"}, {"transitA", "transitB"}, {"transitB", "content"}}

	net := netsim.New(time.Now())
	routers := map[string]*router.Router{}
	for name, src := range configs {
		cfg, err := config.Parse(src)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		r := router.New(name, cfg, net)
		if err := net.AddNode(name, r); err != nil {
			log.Fatal(err)
		}
		routers[name] = r
	}
	for _, l := range links {
		if err := net.Connect(l[0], l[1], time.Millisecond); err != nil {
			log.Fatal(err)
		}
	}
	for _, r := range routers {
		if err := r.Start(net.Now()); err != nil {
			log.Fatal(err)
		}
	}
	net.Run(0)

	fmt.Println("federated topology converged:")
	for name, r := range routers {
		fmt.Printf("  %-9s AS%d, %d prefixes (policies private to this AS)\n",
			name, r.Config().LocalAS, r.RIB().Prefixes())
	}
	fmt.Println()

	// transitA runs DiCE locally over its own stub peering.
	ta := routers["transitA"]
	d := core.New(ta, core.Options{Engine: concolic.Options{MaxRuns: 2000}})
	res, err := d.ExplorePeer("stub")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transitA explored its stub peering locally: %d paths in %d runs\n",
		len(res.Report.Paths), res.Report.Runs)

	// Local findings use transitA's own table.
	fmt.Printf("local findings (against transitA's own RIB): %d\n", len(res.Findings))
	for _, f := range res.Findings {
		fmt.Printf("  %s\n", f)
	}

	// Cross-domain check: transitA asks the *content* AS — through the
	// narrow interface only — whether explored-and-accepted announcements
	// would override origins the content AS currently sees. This extends
	// the oracle's horizon across the network without sharing any state
	// beyond (prefix → origin AS).
	fmt.Println("\ncross-domain check through the narrow interface (content AS):")
	query := narrowInterface(routers["content"])
	crossFindings := 0
	seen := map[netaddr.Prefix]bool{}
	for _, p := range res.Report.Paths {
		out, ok := p.Output.(router.ExplorationOutcome)
		if !ok || !out.Accepted || seen[out.Prefix] {
			continue
		}
		seen[out.Prefix] = true
		remoteOrigin := query(out.Prefix)
		if remoteOrigin != 0 && remoteOrigin != out.OriginAS {
			crossFindings++
			fmt.Printf("  explored announcement %s (origin AS%d) would override AS%d's\n",
				out.Prefix, out.OriginAS, remoteOrigin)
			fmt.Printf("    route as seen from the content AS — potential federated hijack\n")
		}
	}
	if crossFindings == 0 {
		fmt.Println("  (no cross-domain conflicts among witness prefixes; the region-based")
		fmt.Println("  local oracle above already covers the installed victims)")
	}
	fmt.Println("\nnote: the content AS revealed only (prefix → origin AS) pairs on demand;")
	fmt.Println("its policies, paths and full table stayed private (§2.4).")
}
