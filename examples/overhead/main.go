// Overhead demonstrates the §4.1 claim that online testing has marginal
// impact on the deployed system: it measures checkpoint memory sharing
// and update throughput with exploration running alongside the live
// router.
//
//	go run ./examples/overhead
package main

import (
	"fmt"
	"log"
	"time"

	"dice/internal/core"
)

func main() {
	log.SetFlags(0)
	scale := core.Scale{TableSize: 10000, UpdateCount: 250, ExploreRuns: 1000, Seed: 1}

	fmt.Println("== Memory: checkpoints are cheap (the fork/COW property) ==")
	mem, err := core.RunE1Memory(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table: %d prefixes → checkpoint of %d pages (%d KiB)\n",
		mem.TableSize, mem.CheckpointPages, mem.CheckpointBytes/1024)
	fmt.Printf("after the router processed the 15-minute update trace, only %.2f%% of the\n",
		100*mem.UniqueFraction)
	fmt.Println("checkpoint's pages are private — everything else is still shared with the")
	fmt.Printf("live process (paper: 3.45%%).\n")
	fmt.Printf("each exploration clone privately dirtied %.2f%% extra pages on average\n",
		100*mem.CloneOverheadMean)
	fmt.Printf("(max %.2f%%) across %d clones — far below a full copy (paper: +36.93%%).\n\n",
		100*mem.CloneOverheadMax, mem.ClonesMeasured)

	fmt.Println("== CPU: exploration alongside a full table load ==")
	cpu, err := core.RunE2FullLoad(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("updates/s without exploration: %.0f\n", cpu.UpdatesPerSecWithout)
	fmt.Printf("updates/s with exploration:    %.0f\n", cpu.UpdatesPerSecWith)
	fmt.Printf("impact: %.1f%% (paper: 8%% in the most stressful case)\n\n", cpu.ImpactPercent)

	fmt.Println("== CPU: steady state (trace-rate bound) ==")
	steady, err := core.RunE3Steady(scale, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("updates/s without exploration: %.1f\n", steady.UpdatesPerSecWithout)
	fmt.Printf("updates/s with exploration:    %.1f\n", steady.UpdatesPerSecWith)
	fmt.Printf("impact: %.1f%% (paper: negligible — 0.272 vs 0.287 updates/s)\n", steady.ImpactPercent)
}
