package concolic

import (
	"sync"
	"testing"

	"dice/internal/solver"
)

// twoPredicateHandler has four feasible paths over one 32-bit input.
func twoPredicateHandler(rc *RunContext) any {
	x := rc.Input("x")
	n := 0
	if rc.Branch(Lt(x, Concrete(10, 32))) {
		n |= 1
	}
	if rc.Branch(Eq(And(x, Concrete(1, 32)), Concrete(1, 32))) {
		n |= 2
	}
	return n
}

func exploreWith(opts Options) *Report {
	eng := NewEngine(twoPredicateHandler, opts)
	eng.Var("x", 32, 4)
	return eng.Explore()
}

// TestWarmStateSkipsExploredWork: with a shared ExploreState, a second
// round on the same seed issues no solver queries and reports no paths —
// everything was explored by round one (the paper's continuous online
// mode must not re-pay for known paths).
func TestWarmStateSkipsExploredWork(t *testing.T) {
	state := NewExploreState()

	cold := exploreWith(Options{State: state})
	if len(cold.Paths) != 4 {
		t.Fatalf("cold round found %d paths, want 4", len(cold.Paths))
	}
	if cold.SolverCalls == 0 {
		t.Fatal("cold round issued no solver queries")
	}
	if cold.SkippedPaths != 0 || cold.SkippedNegations != 0 {
		t.Fatalf("cold round skipped work: %d paths / %d negations",
			cold.SkippedPaths, cold.SkippedNegations)
	}

	warm := exploreWith(Options{State: state})
	if warm.Runs != 1 {
		t.Fatalf("warm round ran %d times, want 1 (seed only)", warm.Runs)
	}
	if len(warm.Paths) != 0 {
		t.Fatalf("warm round re-reported %d paths", len(warm.Paths))
	}
	if warm.SolverCalls != 0 || warm.CacheHits != 0 {
		t.Fatalf("warm round issued queries: %d solved, %d cached",
			warm.SolverCalls, warm.CacheHits)
	}
	if warm.SkippedPaths != 1 {
		t.Fatalf("warm round skipped %d paths, want 1 (the seed path)", warm.SkippedPaths)
	}
	if warm.SkippedNegations == 0 {
		t.Fatal("warm round skipped no negations")
	}

	st := state.Stats()
	if st.Rounds != 2 || st.Paths != 4 {
		t.Fatalf("state stats = %+v, want 2 rounds / 4 paths", st)
	}
}

// TestSharedCacheAnswersRepeatedQueries: two engines sharing only a
// solver memo cache (no path/negation state) re-run every path but answer
// every repeated negation query from the cache.
func TestSharedCacheAnswersRepeatedQueries(t *testing.T) {
	cache := solver.NewCache()

	first := exploreWith(Options{SolverCache: cache})
	if first.CacheHits != 0 {
		t.Fatalf("first round hit the cache %d times", first.CacheHits)
	}
	if len(first.Paths) != 4 {
		t.Fatalf("first round found %d paths", len(first.Paths))
	}

	second := exploreWith(Options{SolverCache: cache})
	if len(second.Paths) != 4 {
		t.Fatalf("second round found %d paths, want 4 (no path state shared)", len(second.Paths))
	}
	if second.SolverCalls != 0 {
		t.Fatalf("second round searched %d queries despite the shared cache", second.SolverCalls)
	}
	if second.CacheHits != first.SolverCalls {
		t.Fatalf("second round: %d cache hits, want %d (first round's query count)",
			second.CacheHits, first.SolverCalls)
	}
}

// TestWarmStateParallelWorkers: cross-round skipping is safe and exact
// under a parallel scheduler.
func TestWarmStateParallelWorkers(t *testing.T) {
	state := NewExploreState()
	cold := exploreWith(Options{State: state, Workers: 4})
	if len(cold.Paths) != 4 {
		t.Fatalf("cold parallel round found %d paths", len(cold.Paths))
	}
	warm := exploreWith(Options{State: state, Workers: 4})
	if len(warm.Paths) != 0 || warm.SolverCalls != 0 {
		t.Fatalf("warm parallel round: %d paths, %d solver calls",
			len(warm.Paths), warm.SolverCalls)
	}
}

// TestBudgetStopDoesNotPoisonState: negations still queued when a budget
// stops a round must stay retryable — a later warm round with a bigger
// budget picks up the dropped work instead of counting it as skipped.
func TestBudgetStopDoesNotPoisonState(t *testing.T) {
	state := NewExploreState()
	run := func(maxRuns int) *Report {
		handler := func(rc *RunContext) any {
			x := rc.Input("x")
			n := 0
			for i := 0; i < 4; i++ { // 16 feasible paths
				if rc.Branch(Eq(And(Shr(x, Concrete(uint64(i), 32)), Concrete(1, 32)), Concrete(1, 32))) {
					n |= 1 << i
				}
			}
			return n
		}
		eng := NewEngine(handler, Options{State: state, MaxRuns: maxRuns})
		eng.Var("x", 32, 0)
		return eng.Explore()
	}

	small := run(3) // stops with negations still queued
	if small.Budget != "max-runs" {
		t.Fatalf("small round budget = %q", small.Budget)
	}
	if state.PendingWork() == 0 {
		t.Fatal("budget-stopped round stowed no pending frontier")
	}
	big := run(1000)
	if big.SolverCalls+big.CacheHits == 0 {
		t.Fatal("dropped negations were poisoned: warm round issued no queries")
	}
	total := len(small.Paths) + len(big.Paths)
	if total != 16 {
		t.Fatalf("rounds found %d+%d paths, want 16 total", len(small.Paths), len(big.Paths))
	}
	if state.PendingWork() != 0 {
		t.Fatalf("completed round left %d pending items", state.PendingWork())
	}
}

// TestRefusedSeedRunKeepsPendingWork: a round whose seed run is refused
// (pre-cancelled) must stow resumed frontier work back into the state
// rather than silently dropping it.
func TestRefusedSeedRunKeepsPendingWork(t *testing.T) {
	state := NewExploreState()
	run := func(opts Options) *Report {
		opts.State = state
		eng := NewEngine(twoPredicateHandler, opts)
		eng.Var("x", 32, 4)
		return eng.Explore()
	}

	if rep := run(Options{MaxRuns: 1}); rep.Budget != "max-runs" {
		t.Fatalf("priming round budget = %q", rep.Budget)
	}
	before := state.PendingWork()
	if before == 0 {
		t.Fatal("priming round stowed nothing")
	}

	cancel := make(chan struct{})
	close(cancel)
	if rep := run(Options{Cancel: cancel}); rep.Budget != "cancelled" {
		t.Fatalf("cancelled round budget = %q", rep.Budget)
	}
	if got := state.PendingWork(); got != before {
		t.Fatalf("cancelled round lost pending work: %d -> %d", before, got)
	}

	// A later unconstrained round finishes the job.
	if rep := run(Options{}); len(rep.Paths) == 0 {
		t.Fatal("resumed round found nothing")
	}
	if state.PendingWork() != 0 {
		t.Fatalf("completed round left %d pending items", state.PendingWork())
	}
}

// TestCancelMidExploration: closing Cancel during a round stops it
// between runs, reports the budget as "cancelled", and keeps the partial
// results gathered so far.
func TestCancelMidExploration(t *testing.T) {
	cancel := make(chan struct{})
	var once sync.Once
	runs := 0
	handler := func(rc *RunContext) any {
		x := rc.Input("x")
		// 16 independent bit-branches → far more paths than we allow.
		for i := 0; i < 16; i++ {
			rc.Branch(Eq(And(Shr(x, Concrete(uint64(i), 32)), Concrete(1, 32)), Concrete(1, 32)))
		}
		runs++
		if runs >= 3 {
			once.Do(func() { close(cancel) })
		}
		return nil
	}
	eng := NewEngine(handler, Options{Cancel: cancel})
	eng.Var("x", 32, 0)
	rep := eng.Explore()
	if rep.Budget != "cancelled" {
		t.Fatalf("budget = %q, want cancelled", rep.Budget)
	}
	if rep.Runs < 3 || rep.Runs > 4 {
		t.Fatalf("cancel did not stop between runs: %d runs", rep.Runs)
	}
	if len(rep.Paths) == 0 {
		t.Fatal("partial results lost on cancel")
	}
}

// TestCancelBeforeStart: a pre-closed Cancel stops exploration before the
// seed run executes.
func TestCancelBeforeStart(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	rep := exploreWith(Options{Cancel: cancel})
	if rep.Runs != 0 || len(rep.Paths) != 0 {
		t.Fatalf("pre-cancelled exploration ran: %d runs, %d paths", rep.Runs, len(rep.Paths))
	}
	if rep.Budget != "cancelled" {
		t.Fatalf("budget = %q, want cancelled", rep.Budget)
	}
}
