package concolic

import (
	"sort"

	"dice/internal/sym"
)

// workItem is a pending negation: solve prefix ∧ ¬negated, run if sat.
type workItem struct {
	prefix  []sym.Expr
	negated sym.Expr
	depth   int    // index of the negated predicate, for child bounds
	key     string // negation dedup key, recorded into state when solved
	hint    sym.Env
}

// frontier is the exploration frontier: the strategy-ordered queue of
// pending negations plus the dedup sets that keep the engine from
// re-running paths or re-issuing negation queries. When cross-round
// ExploreState is attached, the dedup extends over every prior round.
//
// The frontier is a plain data structure with no locking of its own; the
// scheduler serializes access and keeps handler runs and solver searches
// outside its critical sections.
type frontier struct {
	strategy Strategy
	maxDepth int
	state    *ExploreState // cross-round memory; may be nil

	seen     map[PathSig]bool // path signatures executed this round
	attempts map[string]bool  // negation queries issued this round
	branches map[string]bool  // distinct oriented constraints observed

	queue []workItem

	skippedPaths     int // paths suppressed because a prior round explored them
	skippedNegations int // negations suppressed because a prior round attempted them
}

func newFrontier(strategy Strategy, maxDepth int, state *ExploreState) *frontier {
	f := &frontier{
		strategy: strategy,
		maxDepth: maxDepth,
		state:    state,
		seen:     make(map[PathSig]bool),
		attempts: make(map[string]bool),
		branches: make(map[string]bool),
	}
	if state != nil {
		// Resume frontier work a budget-stopped earlier round left behind
		// (its parent paths are in the state and will not be re-folded).
		f.queue = state.takePending()
		for _, it := range f.queue {
			f.attempts[it.key] = true
		}
		f.order()
	}
	return f
}

// fold records one finished run's path and schedules negations of its
// suffix predicates from bound onward — "the concolic execution engine
// starts negating constraints one at a time, resulting in a set of
// inputs" (§2.3). The aggregate set grows because later runs may reach
// branches earlier runs missed. It reports whether the path is new to
// this round AND to every prior round sharing the attached state (fresh
// paths are the ones the caller reports).
func (f *frontier) fold(assumes, path []sym.Expr, env sym.Env, bound int) (fresh bool) {
	for _, c := range path {
		f.branches[c.String()] = true
	}
	sig := signature(assumes) + "//" + signature(path)
	if f.seen[sig] {
		return false
	}
	f.seen[sig] = true
	fresh = true
	if f.state != nil && !f.state.RecordPath(sig) {
		f.skippedPaths++
		fresh = false
	}
	limit := len(path)
	if f.maxDepth > 0 && limit > f.maxDepth {
		limit = f.maxDepth
	}
	for i := bound; i < limit; i++ {
		neg := sym.NewNot(path[i])
		key := string(signature(path[:i])) + "/" + neg.String()
		if f.attempts[key] {
			continue
		}
		f.attempts[key] = true
		// Cross-round dedup is check-only here: the key is recorded into
		// the state by the scheduler when the query is actually issued,
		// so work dropped by a budget stop is retried in a later round.
		if f.state != nil && f.state.SeenNegation(key) {
			f.skippedNegations++
			continue
		}
		// Assumptions are conjoined to the prefix so solutions always
		// satisfy them, but they are never negated themselves.
		prefix := make([]sym.Expr, 0, len(assumes)+i)
		prefix = append(prefix, assumes...)
		prefix = append(prefix, path[:i]...)
		f.queue = append(f.queue, workItem{
			prefix:  prefix,
			negated: neg,
			depth:   i,
			key:     key,
			hint:    cloneEnv(env),
		})
	}
	f.order()
	return fresh
}

// pop removes and returns the next work item. The queue is drained from
// the back; order arranges it so the strategy's preferred item sits last.
func (f *frontier) pop() (workItem, bool) {
	if len(f.queue) == 0 {
		return workItem{}, false
	}
	it := f.queue[len(f.queue)-1]
	f.queue = f.queue[:len(f.queue)-1]
	return it, true
}

// pending returns the number of queued negations.
func (f *frontier) pending() int { return len(f.queue) }

// clear drops all queued work (budget exhausted / cancelled), stowing it
// in the cross-round state — when one is attached — so the next round
// resumes instead of losing the unexplored subtrees.
func (f *frontier) clear() {
	if f.state != nil {
		f.state.savePending(f.queue)
	}
	f.queue = nil
}

// order arranges pending work according to the strategy. The queue is
// drained from the back, so DFS wants deepest-last, BFS shallowest-last.
func (f *frontier) order() {
	switch f.strategy {
	case DFS:
		sort.SliceStable(f.queue, func(i, j int) bool { return f.queue[i].depth < f.queue[j].depth })
	case BFS:
		sort.SliceStable(f.queue, func(i, j int) bool { return f.queue[i].depth > f.queue[j].depth })
	case Generational:
		// FIFO-ish: keep insertion order, drain oldest last for breadth
		// across generations while still finishing each generation.
	}
}
