package concolic

import (
	"sort"

	"dice/internal/sym"
)

// workItem is a pending negation: solve assumes ∧ path[:depth] ∧ ¬path[depth],
// run if sat. The prefix is kept as (assumes, path, depth) references —
// shared with every sibling item of the same fold — and concatenated
// into one conjunction only when the item is actually solved.
type workItem struct {
	assumes []sym.Expr
	path    []sym.Expr // full parent path; the query prefix is path[:depth]
	depth   int        // index of the negated predicate, for child bounds
	negated sym.Expr
	key     sym.Fingerprint // full-query fingerprint; negation dedup key
	hint    sym.Env
}

// conjunction materializes the solver query assumes ∧ path[:depth] ∧ ¬p.
func (it *workItem) conjunction() []sym.Expr {
	cs := make([]sym.Expr, 0, len(it.assumes)+it.depth+1)
	cs = append(cs, it.assumes...)
	cs = append(cs, it.path[:it.depth]...)
	return append(cs, it.negated)
}

// pathRec pins the constraints behind a path-signature entry so a
// fingerprint collision is detected structurally instead of silently
// merging two distinct paths. A record imported from the wire
// (state_wire.go) carries the canonical rendering instead of expression
// references — verification then compares renderings, with the same
// soundness: a collision can cost a duplicate solve, never lose a path.
type pathRec struct {
	assumes, path []sym.Expr
	rendered      string // set on imported records; exprs are nil
}

func (r pathRec) equals(assumes, path []sym.Expr) bool {
	if r.rendered != "" {
		return r.rendered == renderPathRec(assumes, path)
	}
	return sym.PathsEqual(r.assumes, assumes) && sym.PathsEqual(r.path, path)
}

func (r pathRec) render() string {
	if r.rendered != "" {
		return r.rendered
	}
	return renderPathRec(r.assumes, r.path)
}

// negRec pins the query behind a negation-key entry, same soundness
// contract as pathRec (including the imported-record rendering form).
type negRec struct {
	assumes  []sym.Expr
	path     []sym.Expr
	depth    int
	negated  sym.Expr
	rendered string // set on imported records; exprs are nil
}

func (r negRec) equals(assumes, path []sym.Expr, depth int, neg sym.Expr) bool {
	if r.rendered != "" {
		return r.depth == depth && r.rendered == renderNegRec(assumes, path[:depth], neg)
	}
	return r.depth == depth &&
		sym.PathsEqual(r.assumes, assumes) &&
		sym.PathsEqual(r.path[:r.depth], path[:depth]) &&
		sym.Equal(r.negated, neg)
}

func (r negRec) render() string {
	if r.rendered != "" {
		return r.rendered
	}
	return renderNegRec(r.assumes, r.path[:r.depth], r.negated)
}

// pathSigSep separates the assumption constraints from the branch
// constraints inside a PathSig, so ([a], []) and ([], [a]) sign apart.
const pathSigSep = 0x70617468 // "path"

// frontier is the exploration frontier: the strategy-ordered queue of
// pending negations plus the dedup sets that keep the engine from
// re-running paths or re-issuing negation queries. When cross-round
// ExploreState is attached, the dedup extends over every prior round.
//
// All dedup keys are rolling fingerprints computed incrementally along
// the path — O(1) per branch point, where the seed code rebuilt an
// O(path)-sized rendered signature per branch (quadratic per fold).
// Every map chains the keyed constraints for structural verification, so
// a fingerprint collision costs a duplicate solve, never a lost path.
//
// The frontier is a plain data structure with no locking of its own; the
// scheduler serializes access and keeps handler runs and solver searches
// outside its critical sections.
type frontier struct {
	strategy Strategy
	maxDepth int
	state    *ExploreState // cross-round memory; may be nil

	seen      map[PathSig][]pathRec        // path signatures executed this round
	attempts  map[sym.Fingerprint][]negRec // negation queries issued this round
	branches  map[uint64][]sym.Expr        // distinct oriented constraints, by node hash
	nbranches int

	queue []workItem
	peak  int // high-water mark of len(queue) this round

	skippedPaths     int // paths suppressed because a prior round explored them
	skippedNegations int // negations suppressed because a prior round attempted them
}

func newFrontier(strategy Strategy, maxDepth int, state *ExploreState) *frontier {
	f := &frontier{
		strategy: strategy,
		maxDepth: maxDepth,
		state:    state,
		seen:     make(map[PathSig][]pathRec),
		attempts: make(map[sym.Fingerprint][]negRec),
		branches: make(map[uint64][]sym.Expr),
	}
	if state != nil {
		// Resume frontier work a budget-stopped earlier round left behind
		// (its parent paths are in the state and will not be re-folded).
		f.queue = state.takePending()
		f.peak = len(f.queue)
		for _, it := range f.queue {
			f.attempts[it.key] = append(f.attempts[it.key],
				negRec{assumes: it.assumes, path: it.path, depth: it.depth, negated: it.negated})
		}
		f.order()
	}
	return f
}

// addBranch records one oriented constraint in the aggregate branch set.
func (f *frontier) addBranch(c sym.Expr) {
	h := c.Hash()
	chain := f.branches[h]
	for _, e := range chain {
		if sym.Equal(e, c) {
			return
		}
	}
	f.branches[h] = append(chain, c)
	f.nbranches++
}

// recordSeen marks (assumes, path) as executed this round; reports
// whether it was new.
func (f *frontier) recordSeen(sig PathSig, assumes, path []sym.Expr) bool {
	chain := f.seen[sig]
	for _, r := range chain {
		if r.equals(assumes, path) {
			return false
		}
	}
	f.seen[sig] = append(chain, pathRec{assumes: assumes, path: path})
	return true
}

// recordAttempt marks a negation query as scheduled this round; reports
// whether it was new.
func (f *frontier) recordAttempt(key sym.Fingerprint, assumes, path []sym.Expr, depth int, neg sym.Expr) bool {
	chain := f.attempts[key]
	for _, r := range chain {
		if r.equals(assumes, path, depth, neg) {
			return false
		}
	}
	f.attempts[key] = append(chain, negRec{assumes: assumes, path: path, depth: depth, negated: neg})
	return true
}

// fold records one finished run's path and schedules negations of its
// suffix predicates from bound onward — "the concolic execution engine
// starts negating constraints one at a time, resulting in a set of
// inputs" (§2.3). The aggregate set grows because later runs may reach
// branches earlier runs missed. It reports whether the path is new to
// this round AND to every prior round sharing the attached state (fresh
// paths are the ones the caller reports).
//
// One pass rolls two fingerprints along the path: the path signature and
// the per-branch prefix key, so fold is O(path), not O(path²).
func (f *frontier) fold(assumes, path []sym.Expr, env sym.Env, bound int) (fresh bool) {
	afp := sym.FingerprintPath(assumes)
	sig := afp.Mix(pathSigSep)
	for _, c := range path {
		f.addBranch(c)
		sig = sig.Extend(c)
	}
	if !f.recordSeen(sig, assumes, path) {
		return false
	}
	fresh = true
	if f.state != nil && !f.state.RecordPath(sig, assumes, path) {
		f.skippedPaths++
		fresh = false
	}
	limit := len(path)
	if f.maxDepth > 0 && limit > f.maxDepth {
		limit = f.maxDepth
	}
	// pfp rolls over assumes ∧ path[:i] as i advances: O(1) per branch.
	pfp := afp
	for i := 0; i < bound && i < limit; i++ {
		pfp = pfp.Extend(path[i])
	}
	for i := bound; i < limit; i, pfp = i+1, pfp.Extend(path[i]) {
		neg := sym.NewNot(path[i])
		key := pfp.Extend(neg)
		if !f.recordAttempt(key, assumes, path, i, neg) {
			continue
		}
		// Cross-round dedup is check-only here: the key is recorded into
		// the state by the scheduler when the query is actually issued,
		// so work dropped by a budget stop is retried in a later round.
		if f.state != nil && f.state.SeenNegation(key, assumes, path, i, neg) {
			f.skippedNegations++
			continue
		}
		// Assumptions are conjoined to the prefix so solutions always
		// satisfy them, but they are never negated themselves.
		f.queue = append(f.queue, workItem{
			assumes: assumes,
			path:    path,
			depth:   i,
			negated: neg,
			key:     key,
			hint:    cloneEnv(env),
		})
	}
	if n := len(f.queue); n > f.peak {
		f.peak = n
	}
	f.order()
	return fresh
}

// pop removes and returns the next work item. The queue is drained from
// the back; order arranges it so the strategy's preferred item sits last.
func (f *frontier) pop() (workItem, bool) {
	if len(f.queue) == 0 {
		return workItem{}, false
	}
	it := f.queue[len(f.queue)-1]
	f.queue = f.queue[:len(f.queue)-1]
	return it, true
}

// pending returns the number of queued negations.
func (f *frontier) pending() int { return len(f.queue) }

// clear drops all queued work (budget exhausted / cancelled), stowing it
// in the cross-round state — when one is attached — so the next round
// resumes instead of losing the unexplored subtrees.
func (f *frontier) clear() {
	if f.state != nil {
		f.state.savePending(f.queue)
	}
	f.queue = nil
}

// order arranges pending work according to the strategy. The queue is
// drained from the back, so DFS wants deepest-last, BFS shallowest-last.
func (f *frontier) order() {
	switch f.strategy {
	case DFS:
		sort.SliceStable(f.queue, func(i, j int) bool { return f.queue[i].depth < f.queue[j].depth })
	case BFS:
		sort.SliceStable(f.queue, func(i, j int) bool { return f.queue[i].depth > f.queue[j].depth })
	case Generational:
		// FIFO-ish: keep insertion order, drain oldest last for breadth
		// across generations while still finishing each generation.
	}
}
