package concolic

import (
	"sync"
	"sync/atomic"
	"time"

	"dice/internal/solver"
)

// scheduler drives one exploration round: a pool of Workers goroutines
// drains the frontier, each worker owning one reusable solver. The
// frontier and the run/seq budget counters live behind a single short
// mutex; handler executions and solver searches — the expensive parts —
// run outside it, and solver statistics are atomics so workers never
// serialize on bookkeeping.
type scheduler struct {
	e     *Engine
	front *frontier
	cache *solver.Cache // memo cache for negation queries; may be nil

	mu     sync.Mutex // guards front, runs, seq, budget, paths
	cond   *sync.Cond
	active int // items being processed
	runs   int
	seq    int
	budget string
	paths  []PathResult

	deadline time.Time

	solverCalls, solverSat, solverUnsat, cacheHits atomic.Int64
}

func newScheduler(e *Engine) *scheduler {
	cache := e.opts.SolverCache
	if cache == nil && e.opts.State != nil {
		cache = e.opts.State.Cache()
	}
	sch := &scheduler{
		e:     e,
		front: newFrontier(e.opts.Strategy, e.opts.MaxDepth, e.opts.State),
		cache: cache,
	}
	sch.cond = sync.NewCond(&sch.mu)
	return sch
}

func (sch *scheduler) cancelled() bool {
	if sch.e.opts.Cancel == nil {
		return false
	}
	select {
	case <-sch.e.opts.Cancel:
		return true
	default:
		return false
	}
}

// execute runs the handler under an assignment and folds the resulting
// path into the frontier. Returns false when the run budget is gone.
func (sch *scheduler) execute(env map[int]uint64, bound int) bool {
	sch.mu.Lock()
	if sch.cancelled() {
		sch.budget = "cancelled"
		sch.mu.Unlock()
		return false
	}
	if sch.runs >= sch.e.opts.MaxRuns {
		sch.budget = "max-runs"
		sch.mu.Unlock()
		return false
	}
	if !sch.deadline.IsZero() && time.Now().After(sch.deadline) {
		sch.budget = "time"
		sch.mu.Unlock()
		return false
	}
	sch.runs++
	mySeq := sch.seq
	sch.seq++
	sch.mu.Unlock()

	rc := &RunContext{env: env, vars: sch.e.byName}
	out := sch.e.handler(rc)

	sch.mu.Lock()
	defer sch.mu.Unlock()
	if sch.front.fold(rc.assumes, rc.path, env, bound) {
		sch.paths = append(sch.paths, PathResult{
			Seq:     mySeq,
			Env:     cloneEnv(env),
			Path:    rc.path,
			Assumes: rc.assumes,
			Output:  out,
			Notes:   rc.notes,
		})
	}
	return true
}

// worker drains the frontier until it is empty with no item in flight, or
// a budget stops exploration. Each worker owns one solver, reused across
// queries with per-item hints.
func (sch *scheduler) worker(wg *sync.WaitGroup) {
	defer wg.Done()
	sv := solver.New(solver.Options{MaxNodes: sch.e.opts.SolverNodes})
	for {
		sch.mu.Lock()
		for sch.front.pending() == 0 && sch.active > 0 {
			sch.cond.Wait()
		}
		item, ok := sch.front.pop()
		if !ok {
			sch.mu.Unlock()
			sch.cond.Broadcast()
			return
		}
		sch.active++
		stop := sch.runs >= sch.e.opts.MaxRuns ||
			(!sch.deadline.IsZero() && time.Now().After(sch.deadline)) ||
			sch.cancelled()
		sch.mu.Unlock()

		if stop {
			sch.mu.Lock()
			sch.active--
			if sch.e.opts.State != nil {
				sch.e.opts.State.savePending([]workItem{item})
			}
			sch.front.clear()
			if sch.budget == "" {
				switch {
				case sch.cancelled():
					sch.budget = "cancelled"
				case sch.runs >= sch.e.opts.MaxRuns:
					sch.budget = "max-runs"
				default:
					sch.budget = "time"
				}
			}
			sch.mu.Unlock()
			sch.cond.Broadcast()
			return
		}

		// One conjunction allocation per solved item; the solver reuses
		// its propagated snapshot of the shared prefix (prefix.go).
		env, res, hit := sv.SolvePrefixed(sch.cache, item.conjunction(), item.hint)
		if hit {
			sch.cacheHits.Add(1)
		} else {
			sch.solverCalls.Add(1)
		}
		switch res {
		case solver.Sat:
			sch.solverSat.Add(1)
		case solver.Unsat:
			sch.solverUnsat.Add(1)
		}

		completed := true
		if res == solver.Sat {
			// Unconstrained inputs keep their observed (hinted) value.
			merged := cloneEnv(item.hint)
			for id, v := range env {
				merged[id] = v
			}
			completed = sch.execute(merged, item.depth+1)
		}
		// The negation counts as attempted for future rounds only once it
		// was fully processed: answered, and (when Sat) its witness run
		// executed. An item whose run a budget stop refused goes back to
		// the state's pending frontier for the next round (its answer is
		// memoized, so the retry costs a cache hit, not a search).
		if sch.e.opts.State != nil {
			if completed {
				sch.e.opts.State.RecordNegation(item)
			} else {
				sch.e.opts.State.savePending([]workItem{item})
			}
		}

		sch.mu.Lock()
		sch.active--
		sch.mu.Unlock()
		sch.cond.Broadcast()
	}
}

// run performs the whole exploration: seed run, then the worker pool.
func (sch *scheduler) run() *Report {
	start := time.Now()
	if sch.e.opts.TimeBudget > 0 {
		sch.deadline = start.Add(sch.e.opts.TimeBudget)
	}
	if sch.e.opts.State != nil {
		sch.e.opts.State.beginRound()
	}

	// Seed run explores from the observed input.
	if sch.execute(cloneEnv(sch.e.seed), 0) {
		var wg sync.WaitGroup
		wg.Add(sch.e.opts.Workers)
		for i := 0; i < sch.e.opts.Workers; i++ {
			go sch.worker(&wg)
		}
		wg.Wait()
	} else {
		// Seed run refused (pre-cancelled / expired budget): stow any
		// frontier work resumed from a prior round back into the state
		// instead of silently dropping it.
		sch.front.clear()
	}

	rep := &Report{
		Paths:            sch.paths,
		Runs:             sch.runs,
		SolverCalls:      int(sch.solverCalls.Load()),
		SolverSat:        int(sch.solverSat.Load()),
		SolverUnsat:      int(sch.solverUnsat.Load()),
		CacheHits:        int(sch.cacheHits.Load()),
		BranchesSeen:     sch.front.nbranches,
		SkippedPaths:     sch.front.skippedPaths,
		SkippedNegations: sch.front.skippedNegations,
		Budget:           sch.budget,
		Elapsed:          time.Since(start),
	}
	return rep
}
