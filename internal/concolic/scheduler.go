package concolic

import (
	"sync"
	"sync/atomic"
	"time"

	"dice/internal/solver"
)

// shard is one engine's share of a scheduler run: its frontier, budgets,
// cross-round state and result accumulators. A classic single-node
// exploration is a fleet of one shard; a federated round runs one shard
// per topology node over the same worker pool, so idle capacity on a
// cheap node's frontier is spent on an expensive node's instead of
// waiting out the round.
type shard struct {
	id    string // display/debug identity (node ID in federated rounds)
	e     *Engine
	front *frontier
	cache *solver.Cache // memo cache for negation queries; may be nil

	// Guarded by the scheduler mutex.
	runs   int
	seq    int
	budget string
	done   bool // budget stopped: frontier cleared, no new work accepted
	active int  // this shard's items currently being processed
	paths  []PathResult

	deadline time.Time
	start    time.Time
	finish   time.Time // when this shard's own work drained (not the fleet's)

	solverCalls, solverSat, solverUnsat, cacheHits atomic.Int64
}

func (sh *shard) cancelled() bool {
	if sh.e.opts.Cancel == nil {
		return false
	}
	select {
	case <-sh.e.opts.Cancel:
		return true
	default:
		return false
	}
}

// expired reports whether a per-shard budget forbids more runs, naming
// the budget. Caller holds the scheduler mutex.
func (sh *shard) expired() (string, bool) {
	switch {
	case sh.cancelled():
		return "cancelled", true
	case sh.runs >= sh.e.opts.MaxRuns:
		return "max-runs", true
	case !sh.deadline.IsZero() && time.Now().After(sh.deadline):
		return "time", true
	}
	return "", false
}

// scheduler drives one exploration round over one or more shards: a pool
// of worker goroutines drains the shards' frontiers, each worker owning
// reusable solvers. The frontiers and the per-shard run/seq budget
// counters live behind a single short mutex; handler executions and
// solver searches — the expensive parts — run outside it, and solver
// statistics are per-shard atomics so workers never serialize on
// bookkeeping.
type scheduler struct {
	shards  []*shard
	workers int

	mu     sync.Mutex
	cond   *sync.Cond
	active int // items being processed across all shards
	rr     int // round-robin cursor over shards for fairness
}

func newScheduler(ids []string, engines []*Engine, workers int) *scheduler {
	shards := make([]*shard, len(engines))
	for i, e := range engines {
		cache := e.opts.SolverCache
		if cache == nil && e.opts.State != nil {
			cache = e.opts.State.Cache()
		}
		id := ""
		if i < len(ids) {
			id = ids[i]
		}
		shards[i] = &shard{
			id:    id,
			e:     e,
			front: newFrontier(e.opts.Strategy, e.opts.MaxDepth, e.opts.State),
			cache: cache,
		}
	}
	if workers <= 0 {
		workers = 1
	}
	sch := &scheduler{shards: shards, workers: workers}
	sch.cond = sync.NewCond(&sch.mu)
	return sch
}

// execute runs a shard's handler under an assignment and folds the
// resulting path into that shard's frontier. Returns false when the
// shard's run budget is gone.
func (sch *scheduler) execute(sh *shard, env map[int]uint64, bound int) bool {
	sch.mu.Lock()
	if sh.done {
		sch.mu.Unlock()
		return false
	}
	if why, stop := sh.expired(); stop {
		sh.budget = why
		sch.mu.Unlock()
		return false
	}
	sh.runs++
	mySeq := sh.seq
	sh.seq++
	sch.mu.Unlock()

	rc := &RunContext{env: env, vars: sh.e.byName}
	out := sh.e.handler(rc)

	sch.mu.Lock()
	defer sch.mu.Unlock()
	if sh.front.fold(rc.assumes, rc.path, env, bound) {
		sh.paths = append(sh.paths, PathResult{
			Seq:     mySeq,
			Env:     cloneEnv(env),
			Path:    rc.path,
			Assumes: rc.assumes,
			Output:  out,
			Notes:   rc.notes,
		})
	}
	return true
}

// popLocked removes the next work item, preferring the shard the worker
// used last (solver prefix-snapshot locality), then scanning round-robin.
// Caller holds the mutex.
func (sch *scheduler) popLocked(prefer *shard) (*shard, workItem, bool) {
	if prefer != nil && !prefer.done {
		if it, ok := prefer.front.pop(); ok {
			return prefer, it, true
		}
	}
	for i := 0; i < len(sch.shards); i++ {
		sh := sch.shards[(sch.rr+i)%len(sch.shards)]
		if sh.done {
			continue
		}
		if it, ok := sh.front.pop(); ok {
			sch.rr = (sch.rr + i + 1) % len(sch.shards)
			return sh, it, true
		}
	}
	return nil, workItem{}, false
}

// retire marks a shard budget-stopped: its queued work is stowed in the
// cross-round state (when attached) and the shard accepts no more items.
// Caller holds the mutex.
func (sch *scheduler) retire(sh *shard, item workItem) {
	if sh.e.opts.State != nil {
		sh.e.opts.State.savePending([]workItem{item})
	}
	sh.front.clear()
	sh.done = true
	if sh.budget == "" {
		sh.budget, _ = sh.expired()
	}
	sch.noteIdle(sh)
}

// noteIdle stamps the shard's finish time once its own work has drained:
// nothing queued and nothing in flight. New work for a shard only ever
// comes from its own in-flight executions, so the first idle moment is
// final — per-shard Elapsed measures the shard, not the fleet. Caller
// holds the mutex.
func (sch *scheduler) noteIdle(sh *shard) {
	if sh.finish.IsZero() && sh.active == 0 && (sh.done || sh.front.pending() == 0) {
		sh.finish = time.Now()
	}
}

// worker drains the shards until every frontier is empty with no item in
// flight. Each worker keeps one reusable solver per node budget so the
// propagated prefix-snapshot chain (solver/prefix.go) survives across
// queries, including when the fleet mixes engines with different
// SolverNodes settings.
func (sch *scheduler) worker(wg *sync.WaitGroup) {
	defer wg.Done()
	solvers := map[int]*solver.Solver{}
	solverFor := func(sh *shard) *solver.Solver {
		sv, ok := solvers[sh.e.opts.SolverNodes]
		if !ok {
			sv = solver.New(solver.Options{MaxNodes: sh.e.opts.SolverNodes})
			solvers[sh.e.opts.SolverNodes] = sv
		}
		return sv
	}
	var last *shard
	for {
		sch.mu.Lock()
		sh, item, ok := sch.popLocked(last)
		for !ok && sch.active > 0 {
			sch.cond.Wait()
			sh, item, ok = sch.popLocked(last)
		}
		if !ok {
			sch.mu.Unlock()
			sch.cond.Broadcast()
			return
		}
		last = sh
		sch.active++
		sh.active++
		why, stop := sh.expired()
		sch.mu.Unlock()

		if stop {
			sch.mu.Lock()
			sch.active--
			sh.active--
			if sh.budget == "" {
				sh.budget = why
			}
			sch.retire(sh, item)
			sch.mu.Unlock()
			sch.cond.Broadcast()
			continue // other shards may still have work
		}

		// One conjunction allocation per solved item; the solver reuses
		// its propagated snapshot of the shared prefix (prefix.go).
		env, res, hit := solverFor(sh).SolvePrefixed(sh.cache, item.conjunction(), item.hint)
		if hit {
			sh.cacheHits.Add(1)
		} else {
			sh.solverCalls.Add(1)
		}
		switch res {
		case solver.Sat:
			sh.solverSat.Add(1)
		case solver.Unsat:
			sh.solverUnsat.Add(1)
		}

		completed := true
		if res == solver.Sat {
			// Unconstrained inputs keep their observed (hinted) value.
			merged := cloneEnv(item.hint)
			for id, v := range env {
				merged[id] = v
			}
			completed = sch.execute(sh, merged, item.depth+1)
		}
		// The negation counts as attempted for future rounds only once it
		// was fully processed: answered, and (when Sat) its witness run
		// executed. An item whose run a budget stop refused goes back to
		// the state's pending frontier for the next round (its answer is
		// memoized, so the retry costs a cache hit, not a search).
		if sh.e.opts.State != nil {
			if completed {
				sh.e.opts.State.RecordNegation(item)
			} else {
				sh.e.opts.State.savePending([]workItem{item})
			}
		}

		sch.mu.Lock()
		sch.active--
		sh.active--
		sch.noteIdle(sh)
		sch.mu.Unlock()
		sch.cond.Broadcast()
	}
}

// run performs the whole exploration: one seed run per shard, then the
// shared worker pool, then one report per shard (same order as the
// engines given to newScheduler).
func (sch *scheduler) run() []*Report {
	anyWork := false
	for _, sh := range sch.shards {
		sh.start = time.Now()
		if sh.e.opts.TimeBudget > 0 {
			sh.deadline = sh.start.Add(sh.e.opts.TimeBudget)
		}
		if sh.e.opts.State != nil {
			sh.e.opts.State.beginRound()
		}
		// Seed run explores from the observed input.
		if sch.execute(sh, cloneEnv(sh.e.seed), 0) {
			anyWork = true
			sch.mu.Lock()
			sch.noteIdle(sh) // a branchless seed may already drain the shard
			sch.mu.Unlock()
		} else {
			// Seed run refused (pre-cancelled / expired budget): stow any
			// frontier work resumed from a prior round back into the state
			// instead of silently dropping it.
			sch.mu.Lock()
			sh.front.clear()
			sh.done = true
			sch.noteIdle(sh)
			sch.mu.Unlock()
		}
	}

	if anyWork {
		var wg sync.WaitGroup
		wg.Add(sch.workers)
		for i := 0; i < sch.workers; i++ {
			go sch.worker(&wg)
		}
		wg.Wait()
	}

	reports := make([]*Report, len(sch.shards))
	for i, sh := range sch.shards {
		elapsed := time.Since(sh.start)
		if !sh.finish.IsZero() {
			elapsed = sh.finish.Sub(sh.start)
		}
		reports[i] = &Report{
			Paths:            sh.paths,
			Runs:             sh.runs,
			SolverCalls:      int(sh.solverCalls.Load()),
			SolverSat:        int(sh.solverSat.Load()),
			SolverUnsat:      int(sh.solverUnsat.Load()),
			CacheHits:        int(sh.cacheHits.Load()),
			BranchesSeen:     sh.front.nbranches,
			SkippedPaths:     sh.front.skippedPaths,
			SkippedNegations: sh.front.skippedNegations,
			Budget:           sh.budget,
			Elapsed:          elapsed,
		}
		sh.e.opts.Metrics.observeRound(reports[i], sh.front.peak)
	}
	return reports
}
