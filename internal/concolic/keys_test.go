package concolic

import (
	"testing"

	"dice/internal/sym"
)

func keyCmp(id int, v uint64) sym.Expr {
	return sym.NewCmp(sym.OpEq, sym.NewVar(id, "k", 8), sym.NewConst(v, 8))
}

// TestFrontierDedupSurvivesForcedCollision: two structurally different
// paths forced under the same fingerprint must BOTH count as new — the
// chain verification turns a collision into a duplicate entry, never a
// lost path. Same contract for negation attempts.
func TestFrontierDedupSurvivesForcedCollision(t *testing.T) {
	f := newFrontier(Generational, 0, nil)
	p1 := []sym.Expr{keyCmp(0, 1)}
	p2 := []sym.Expr{keyCmp(0, 2)}
	sig := PathSig{Hi: 7, Lo: 7} // deliberately shared key

	if !f.recordSeen(sig, nil, p1) {
		t.Fatal("first path not new")
	}
	if !f.recordSeen(sig, nil, p2) {
		t.Fatal("collision suppressed a distinct path")
	}
	if f.recordSeen(sig, nil, p1) {
		t.Fatal("true duplicate not deduped")
	}

	n1, n2 := sym.NewNot(p1[0]), sym.NewNot(p2[0])
	key := sym.Fingerprint{Hi: 9, Lo: 9}
	if !f.recordAttempt(key, nil, p1, 0, n1) {
		t.Fatal("first attempt not new")
	}
	if !f.recordAttempt(key, nil, p2, 0, n2) {
		t.Fatal("collision suppressed a distinct negation")
	}
	if f.recordAttempt(key, nil, p1, 0, n1) {
		t.Fatal("true duplicate attempt not deduped")
	}
}

// TestExploreStateSurvivesForcedCollision: the cross-round maps carry the
// same verification contract as the in-round frontier.
func TestExploreStateSurvivesForcedCollision(t *testing.T) {
	s := NewExploreState()
	p1 := []sym.Expr{keyCmp(0, 1)}
	p2 := []sym.Expr{keyCmp(0, 2)}
	sig := PathSig{Hi: 3, Lo: 3}

	if !s.RecordPath(sig, nil, p1) {
		t.Fatal("first path not first")
	}
	if !s.RecordPath(sig, nil, p2) {
		t.Fatal("collision suppressed a distinct path")
	}
	if s.RecordPath(sig, nil, p1) {
		t.Fatal("true duplicate reported first")
	}
	if s.Stats().Paths != 2 {
		t.Fatalf("Paths = %d, want 2", s.Stats().Paths)
	}

	key := sym.Fingerprint{Hi: 5, Lo: 5}
	it1 := workItem{path: p1, depth: 0, negated: sym.NewNot(p1[0]), key: key}
	it2 := workItem{path: p2, depth: 0, negated: sym.NewNot(p2[0]), key: key}
	s.RecordNegation(it1)
	if !s.SeenNegation(key, nil, p1, 0, it1.negated) {
		t.Fatal("recorded negation not seen")
	}
	if s.SeenNegation(key, nil, p2, 0, it2.negated) {
		t.Fatal("collision reported a foreign negation as seen")
	}
	s.RecordNegation(it2)
	if s.Stats().Negations != 2 {
		t.Fatalf("Negations = %d, want 2", s.Stats().Negations)
	}
	s.RecordNegation(it1) // duplicate: must not double-count
	if s.Stats().Negations != 2 {
		t.Fatalf("duplicate RecordNegation double-counted: %d", s.Stats().Negations)
	}
}

// TestBranchSetExact: the aggregate branch set counts distinct oriented
// constraints exactly, including under a shared node hash.
func TestBranchSetExact(t *testing.T) {
	f := newFrontier(Generational, 0, nil)
	a, b := keyCmp(0, 1), keyCmp(0, 2)
	f.addBranch(a)
	f.addBranch(b)
	f.addBranch(a) // duplicate
	if f.nbranches != 2 {
		t.Fatalf("nbranches = %d, want 2", f.nbranches)
	}
}

// TestWorkItemConjunction: the materialized solver query is
// assumes ∧ path[:depth] ∧ ¬path[depth], in that order.
func TestWorkItemConjunction(t *testing.T) {
	assumes := []sym.Expr{keyCmp(9, 9)}
	path := []sym.Expr{keyCmp(0, 1), keyCmp(1, 2), keyCmp(2, 3)}
	it := workItem{assumes: assumes, path: path, depth: 2, negated: sym.NewNot(path[2])}
	cs := it.conjunction()
	want := []sym.Expr{assumes[0], path[0], path[1], it.negated}
	if !sym.PathsEqual(cs, want) {
		t.Fatalf("conjunction = %v, want %v", cs, want)
	}
}
