// Package concolic implements the concolic execution engine DiCE uses to
// systematically exercise a node's code paths (the paper's Oasis
// replacement).
//
// Instrumented handlers compute over Value — a pair of a concrete value
// and an optional symbolic expression — and report branches through a
// RunContext, which records the path condition. The Engine then negates
// recorded predicates one at a time (Figure 1 in the paper), solves for
// fresh concrete inputs, and re-executes from the same checkpointed state
// until no unexplored feasible branch remains or the budget is exhausted.
//
// The machinery is split into four pieces:
//
//   - engine.go — the public surface: declare symbolic inputs (Var),
//     run one input (RunOnce), or explore exhaustively (Explore).
//   - frontier.go — what to try next: the strategy-ordered queue of
//     pending predicate negations, with fingerprint-keyed dedup of paths
//     and negation queries (collision-verified, so a fingerprint clash
//     can cost a duplicate solve but never lose a path).
//   - scheduler.go — who tries it: a worker pool draining one frontier
//     shard per explored node. A single-node Explore is a fleet of one;
//     ExploreFleet (fleet.go) runs one shard per federation node over the
//     same shared pool, so a federated round costs max(node) wall-clock
//     instead of sum(node).
//   - state.go — cross-round memory: ExploreState makes repeated online
//     rounds incremental (known paths and negations are skipped, repeated
//     solver queries are answered from a memo cache). StateMap (fleet.go)
//     shards that memory per federation node ID.
package concolic
