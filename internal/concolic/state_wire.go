package concolic

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"dice/internal/sym"
)

// ExploreState wire format. Exploration replicas are stateless: the
// coordinator ships a node's cross-round memory with each checkpoint and
// receives the updated memory back with the results, so warm rounds skip
// known paths and negations no matter which replica runs them — and a
// degraded node's replacement agent can be seeded with the last shipped
// state instead of starting cold.
//
// Serialization preserves invariant 2 of ARCHITECTURE.md §2: fingerprints
// key, structure verifies. Symbolic expressions are interned per process
// and cannot travel as pointers, so every record ships its fingerprint
// PLUS the canonical rendering of the constraints it stands for (the
// structural hashes behind fingerprints are process-independent, so the
// keys themselves transfer exactly). An imported record verifies
// membership by rendering the candidate's constraints and comparing
// canonically — a fingerprint collision against an imported record can
// cost a duplicate solve, never suppress a genuinely new path or
// negation, exactly the in-process contract. Rendering happens only on a
// fingerprint hit (once per skipped path, never per branch), so the O(1)
// per-branch discipline of invariant 3 is untouched.
//
// The solver memo cache and the stowed frontier do NOT travel: the cache
// holds process-local expression references, and pending work items are
// resumed by whichever round owns them. A budget-stopped replica round
// therefore re-derives its pending queue from the shipped dedup sets —
// pure re-solving cost, no lost coverage.

// exsMagic identifies a serialized ExploreState payload.
const exsMagic = "EXS1"

// rendered-chain separators: 0x1f between constraints of one chain,
// 0x1e between the chain sections of one record. Expression renderings
// never contain control bytes.
const (
	chainSep   = "\x1f"
	sectionSep = "\x1e"
)

func renderChain(cs []sym.Expr) string {
	if len(cs) == 0 {
		return ""
	}
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, chainSep)
}

// renderPathRec canonically renders a path record: assumptions, then
// oriented branch constraints.
func renderPathRec(assumes, path []sym.Expr) string {
	return renderChain(assumes) + sectionSep + renderChain(path)
}

// renderNegRec canonically renders a negation record: assumptions, the
// query prefix path[:depth], and the negated predicate. Only the prefix
// participates in negation identity (see negRec.equals), so only the
// prefix travels.
func renderNegRec(assumes, prefix []sym.Expr, neg sym.Expr) string {
	return renderChain(assumes) + sectionSep + renderChain(prefix) + sectionSep + neg.String()
}

type wireStateRec struct {
	fp       sym.Fingerprint
	depth    uint64 // negation records only
	rendered string
}

// EncodeWire serializes the state's dedup sets (paths and attempted
// negations) into a canonical byte string: records sorted by
// (fingerprint, rendering), so equal states encode byte-identically
// regardless of exploration schedule. The solver cache and pending
// frontier are intentionally omitted (see the package comment above).
func (s *ExploreState) EncodeWire() []byte {
	if s == nil {
		s = NewExploreState()
	}
	s.mu.Lock()
	paths := make([]wireStateRec, 0, s.nPaths)
	for sig, chain := range s.seen {
		for _, r := range chain {
			paths = append(paths, wireStateRec{fp: sig, rendered: r.render()})
		}
	}
	negs := make([]wireStateRec, 0, s.nNegations)
	for key, chain := range s.attempted {
		for _, r := range chain {
			negs = append(negs, wireStateRec{fp: key, depth: uint64(r.depth), rendered: r.render()})
		}
	}
	s.mu.Unlock()

	order := func(recs []wireStateRec) {
		sort.Slice(recs, func(i, j int) bool {
			a, b := recs[i], recs[j]
			if a.fp.Hi != b.fp.Hi {
				return a.fp.Hi < b.fp.Hi
			}
			if a.fp.Lo != b.fp.Lo {
				return a.fp.Lo < b.fp.Lo
			}
			return a.rendered < b.rendered
		})
	}
	order(paths)
	order(negs)

	out := []byte(exsMagic)
	out = binary.AppendUvarint(out, uint64(len(paths)))
	for _, r := range paths {
		out = appendStateRec(out, r, false)
	}
	out = binary.AppendUvarint(out, uint64(len(negs)))
	for _, r := range negs {
		out = appendStateRec(out, r, true)
	}
	return out
}

func appendStateRec(out []byte, r wireStateRec, withDepth bool) []byte {
	out = binary.BigEndian.AppendUint64(out, r.fp.Hi)
	out = binary.BigEndian.AppendUint64(out, r.fp.Lo)
	if withDepth {
		out = binary.AppendUvarint(out, r.depth)
	}
	out = binary.AppendUvarint(out, uint64(len(r.rendered)))
	return append(out, r.rendered...)
}

// DecodeExploreState reconstructs cross-round exploration memory from
// EncodeWire output. The decoder is strict: truncation at any offset,
// trailing garbage, or a malformed record is an error, never a partial
// state. The returned state carries a fresh (empty) solver cache.
func DecodeExploreState(data []byte) (*ExploreState, error) {
	if len(data) < len(exsMagic) || string(data[:len(exsMagic)]) != exsMagic {
		return nil, errors.New("concolic: explore-state payload lacks EXS1 magic")
	}
	d := stateDecoder{buf: data[len(exsMagic):]}
	st := NewExploreState()

	nPaths := d.uvarint("path count")
	for i := uint64(0); i < nPaths && d.err == nil; i++ {
		fp, _, rendered := d.rec(false)
		if d.err != nil {
			break
		}
		chain := st.seen[fp]
		if containsRendered(chain, rendered) {
			continue
		}
		st.seen[fp] = append(chain, pathRec{rendered: rendered})
		st.nPaths++
	}
	nNegs := d.uvarint("negation count")
	for i := uint64(0); i < nNegs && d.err == nil; i++ {
		fp, depth, rendered := d.rec(true)
		if d.err != nil {
			break
		}
		chain := st.attempted[fp]
		dup := false
		for _, r := range chain {
			if r.depth == int(depth) && r.rendered != "" && r.rendered == rendered {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		st.attempted[fp] = append(chain, negRec{depth: int(depth), rendered: rendered})
		st.nNegations++
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("concolic: %d trailing bytes after explore-state payload", len(d.buf))
	}
	return st, nil
}

func containsRendered(chain []pathRec, rendered string) bool {
	for _, r := range chain {
		if r.rendered != "" && r.rendered == rendered {
			return true
		}
	}
	return false
}

type stateDecoder struct {
	buf []byte
	err error
}

func (d *stateDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("concolic: truncated explore-state %s", what)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *stateDecoder) rec(withDepth bool) (fp sym.Fingerprint, depth uint64, rendered string) {
	if d.err != nil {
		return
	}
	if len(d.buf) < 16 {
		d.err = errors.New("concolic: truncated explore-state fingerprint")
		return
	}
	fp.Hi = binary.BigEndian.Uint64(d.buf)
	fp.Lo = binary.BigEndian.Uint64(d.buf[8:])
	d.buf = d.buf[16:]
	if withDepth {
		depth = d.uvarint("negation depth")
	}
	n := d.uvarint("record length")
	if d.err != nil {
		return
	}
	if uint64(len(d.buf)) < n {
		d.err = errors.New("concolic: truncated explore-state record")
		return
	}
	rendered = string(d.buf[:n])
	d.buf = d.buf[n:]
	if !strings.Contains(rendered, sectionSep) {
		d.err = errors.New("concolic: explore-state record lacks a section separator")
		return
	}
	return
}
