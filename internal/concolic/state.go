package concolic

import (
	"sync"

	"dice/internal/solver"
)

// ExploreState is exploration memory that persists across rounds. The
// paper's online mode runs rounds continuously against live checkpoints;
// without cross-round state every round re-discovers the same paths and
// re-issues the same solver queries. An ExploreState attached to
// Options.State makes later rounds incremental:
//
//   - path signatures explored by any prior round are not re-reported
//     (a warm round's Report carries only genuinely new paths);
//   - negation queries attempted by any prior round are not re-issued
//     (counted in Report.SkippedNegations instead of hitting the solver);
//   - a solver memo cache answers the queries that do repeat (e.g. the
//     same sub-formula reached through a new path) without search.
//
// Path signatures are derived from the path condition only, so the state
// is valid as long as the handler's branch structure for a given input is
// stable across rounds; if the node's policy configuration changes, start
// a fresh ExploreState. A negation is recorded only once fully processed
// (answered and, when Sat, its witness run executed); frontier work still
// pending when a budget stops a round is stowed here and resumed by the
// next round, so a budget stop loses nothing. A fully processed negation
// is never retried — including ones that returned Unknown under that
// round's node budget. The maps and the memo cache grow monotonically
// (one entry per distinct path, negation and query); long-lived online
// deployments should rotate to a fresh state periodically rather than
// keep one forever.
//
// Safe for concurrent use; DiCE shares one ExploreState per
// (scenario, peer) across all its rounds.
type ExploreState struct {
	mu        sync.Mutex
	seen      map[PathSig]bool
	attempted map[string]bool
	pending   []workItem // frontier left over when a budget stopped a round
	rounds    int
	cache     *solver.Cache
}

// NewExploreState creates empty cross-round exploration state with its
// own solver memo cache.
func NewExploreState() *ExploreState {
	return &ExploreState{
		seen:      make(map[PathSig]bool),
		attempted: make(map[string]bool),
		cache:     solver.NewCache(),
	}
}

// RecordPath marks sig as explored and reports whether this is the first
// round ever to see it.
func (s *ExploreState) RecordPath(sig PathSig) (first bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen[sig] {
		return false
	}
	s.seen[sig] = true
	return true
}

// SeenNegation reports whether any round has already issued this
// negation query.
func (s *ExploreState) SeenNegation(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attempted[key]
}

// RecordNegation marks a negation query as attempted. The scheduler calls
// it when the query is actually issued — not when it is merely scheduled —
// so queued work dropped by a budget stop stays retryable in later rounds.
func (s *ExploreState) RecordNegation(key string) {
	s.mu.Lock()
	s.attempted[key] = true
	s.mu.Unlock()
}

// Cache returns the state's solver memo cache (shared across rounds).
func (s *ExploreState) Cache() *solver.Cache { return s.cache }

// savePending stows frontier work a budget-stopped round could not
// process, so the next round resumes it instead of losing the subtrees
// behind it (their parent paths are recorded as seen and would never be
// re-folded).
func (s *ExploreState) savePending(items []workItem) {
	if len(items) == 0 {
		return
	}
	s.mu.Lock()
	s.pending = append(s.pending, items...)
	s.mu.Unlock()
}

// takePending drains the stowed frontier into the starting round.
func (s *ExploreState) takePending() []workItem {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.pending
	s.pending = nil
	return p
}

// PendingWork reports how many frontier items a budget-stopped round left
// for the next round to resume.
func (s *ExploreState) PendingWork() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// beginRound counts a round against this state.
func (s *ExploreState) beginRound() {
	s.mu.Lock()
	s.rounds++
	s.mu.Unlock()
}

// ExploreStateStats summarizes accumulated cross-round state.
type ExploreStateStats struct {
	Rounds                 int // rounds that used this state
	Paths                  int // distinct path signatures ever explored
	Negations              int // distinct negation queries ever attempted
	CacheHits, CacheMisses uint64
}

// Stats returns a snapshot of the accumulated state.
func (s *ExploreState) Stats() ExploreStateStats {
	s.mu.Lock()
	st := ExploreStateStats{
		Rounds:    s.rounds,
		Paths:     len(s.seen),
		Negations: len(s.attempted),
	}
	s.mu.Unlock()
	st.CacheHits, st.CacheMisses = s.cache.Stats()
	return st
}
