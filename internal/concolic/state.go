package concolic

import (
	"sync"

	"dice/internal/solver"
	"dice/internal/sym"
)

// ExploreState is exploration memory that persists across rounds. The
// paper's online mode runs rounds continuously against live checkpoints;
// without cross-round state every round re-discovers the same paths and
// re-issues the same solver queries. An ExploreState attached to
// Options.State makes later rounds incremental:
//
//   - path signatures explored by any prior round are not re-reported
//     (a warm round's Report carries only genuinely new paths);
//   - negation queries attempted by any prior round are not re-issued
//     (counted in Report.SkippedNegations instead of hitting the solver);
//   - a solver memo cache answers the queries that do repeat (e.g. the
//     same sub-formula reached through a new path) without search.
//
// Keys are 128-bit path fingerprints (see sym.Fingerprint); every entry
// chains the constraints it stands for and membership checks verify them
// structurally, so a fingerprint collision can cost a duplicate solve
// but can never suppress a genuinely new path or negation.
//
// Path signatures are derived from the path condition only, so the state
// is valid as long as the handler's branch structure for a given input is
// stable across rounds; if the node's policy configuration changes, start
// a fresh ExploreState. A negation is recorded only once fully processed
// (answered and, when Sat, its witness run executed); frontier work still
// pending when a budget stops a round is stowed here and resumed by the
// next round, so a budget stop loses nothing. A fully processed negation
// is never retried — including ones that returned Unknown under that
// round's node budget. The maps and the memo cache grow monotonically
// (one entry per distinct path, negation and query); long-lived online
// deployments should rotate to a fresh state periodically rather than
// keep one forever.
//
// Safe for concurrent use; DiCE shares one ExploreState per
// (scenario, peer) across all its rounds.
type ExploreState struct {
	mu         sync.Mutex
	seen       map[PathSig][]pathRec
	attempted  map[sym.Fingerprint][]negRec
	nPaths     int
	nNegations int
	pending    []workItem // frontier left over when a budget stopped a round
	rounds     int
	cache      *solver.Cache
}

// NewExploreState creates empty cross-round exploration state with its
// own solver memo cache.
func NewExploreState() *ExploreState {
	return &ExploreState{
		seen:      make(map[PathSig][]pathRec),
		attempted: make(map[sym.Fingerprint][]negRec),
		cache:     solver.NewCache(),
	}
}

// RecordPath marks the path (assumes, path) as explored under sig and
// reports whether this is the first round ever to see it.
func (s *ExploreState) RecordPath(sig PathSig, assumes, path []sym.Expr) (first bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	chain := s.seen[sig]
	for _, r := range chain {
		if r.equals(assumes, path) {
			return false
		}
	}
	s.seen[sig] = append(chain, pathRec{assumes: assumes, path: path})
	s.nPaths++
	return true
}

// SeenNegation reports whether any round has already issued this
// negation query (structurally verified, not just fingerprint-matched).
func (s *ExploreState) SeenNegation(key sym.Fingerprint, assumes, path []sym.Expr, depth int, neg sym.Expr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.attempted[key] {
		if r.equals(assumes, path, depth, neg) {
			return true
		}
	}
	return false
}

// RecordNegation marks a negation query as attempted. The scheduler calls
// it when the query is actually issued — not when it is merely scheduled —
// so queued work dropped by a budget stop stays retryable in later rounds.
func (s *ExploreState) RecordNegation(it workItem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	chain := s.attempted[it.key]
	for _, r := range chain {
		if r.equals(it.assumes, it.path, it.depth, it.negated) {
			return
		}
	}
	s.attempted[it.key] = append(chain, negRec{
		assumes: it.assumes, path: it.path, depth: it.depth, negated: it.negated,
	})
	s.nNegations++
}

// Cache returns the state's solver memo cache (shared across rounds).
func (s *ExploreState) Cache() *solver.Cache { return s.cache }

// savePending stows frontier work a budget-stopped round could not
// process, so the next round resumes it instead of losing the subtrees
// behind it (their parent paths are recorded as seen and would never be
// re-folded).
func (s *ExploreState) savePending(items []workItem) {
	if len(items) == 0 {
		return
	}
	s.mu.Lock()
	s.pending = append(s.pending, items...)
	s.mu.Unlock()
}

// takePending drains the stowed frontier into the starting round.
func (s *ExploreState) takePending() []workItem {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.pending
	s.pending = nil
	return p
}

// PendingWork reports how many frontier items a budget-stopped round left
// for the next round to resume.
func (s *ExploreState) PendingWork() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// beginRound counts a round against this state.
func (s *ExploreState) beginRound() {
	s.mu.Lock()
	s.rounds++
	s.mu.Unlock()
}

// ExploreStateStats summarizes accumulated cross-round state.
type ExploreStateStats struct {
	Rounds                 int // rounds that used this state
	Paths                  int // distinct path signatures ever explored
	Negations              int // distinct negation queries ever attempted
	CacheHits, CacheMisses uint64
}

// Stats returns a snapshot of the accumulated state.
func (s *ExploreState) Stats() ExploreStateStats {
	s.mu.Lock()
	st := ExploreStateStats{
		Rounds:    s.rounds,
		Paths:     s.nPaths,
		Negations: s.nNegations,
	}
	s.mu.Unlock()
	st.CacheHits, st.CacheMisses = s.cache.Stats()
	return st
}
