package concolic

import (
	"testing"
	"testing/quick"

	"dice/internal/sym"
)

func symInput(id int, name string, w int, c uint64) Value {
	v := &sym.Var{ID: id, Name: name, W: w}
	return Value{C: c & widthMask(w), S: v, W: w}
}

func TestConcreteOps(t *testing.T) {
	a, b := Concrete(10, 32), Concrete(3, 32)
	cases := []struct {
		name string
		got  Value
		want uint64
	}{
		{"add", Add(a, b), 13},
		{"sub", Sub(a, b), 7},
		{"mul", Mul(a, b), 30},
		{"div", Div(a, b), 3},
		{"mod", Mod(a, b), 1},
		{"and", And(a, b), 2},
		{"or", Or(a, b), 11},
		{"xor", Xor(a, b), 9},
		{"shl", Shl(a, b), 80},
		{"shr", Shr(a, b), 1},
	}
	for _, c := range cases {
		if c.got.C != c.want {
			t.Errorf("%s: got %d want %d", c.name, c.got.C, c.want)
		}
		if c.got.IsSymbolic() {
			t.Errorf("%s: concrete op produced symbolic value", c.name)
		}
	}
}

func TestSymbolicPropagation(t *testing.T) {
	x := symInput(1, "x", 32, 10)
	r := Add(x, Concrete(5, 32))
	if r.C != 15 || !r.IsSymbolic() {
		t.Fatalf("add: %v", r)
	}
	// The symbolic expression must evaluate consistently with the
	// concrete computation for any input value (the concolic invariant).
	if got := sym.Eval(r.S, sym.Env{1: 10}); got != 15 {
		t.Fatalf("expr eval = %d, want 15", got)
	}
	if got := sym.Eval(r.S, sym.Env{1: 100}); got != 105 {
		t.Fatalf("expr eval at 100 = %d, want 105", got)
	}
}

func TestComparisons(t *testing.T) {
	x := symInput(1, "x", 32, 10)
	c := Lt(x, Concrete(20, 32))
	if c.C != 1 || !c.IsSymbolic() || c.W != 1 {
		t.Fatalf("lt: %v", c)
	}
	if !c.S.IsBool() {
		t.Fatal("comparison should produce a boolean expression")
	}
	d := Gt(x, Concrete(20, 32))
	if d.C != 0 {
		t.Fatalf("gt: %v", d)
	}
}

func TestBoolOps(t *testing.T) {
	x := symInput(1, "x", 32, 10)
	a := Lt(x, Concrete(20, 32)) // true
	b := Gt(x, Concrete(50, 32)) // false
	if BoolAnd(a, b).C != 0 {
		t.Error("true && false should be false")
	}
	if BoolOr(a, b).C != 1 {
		t.Error("true || false should be true")
	}
	if BoolNot(a).C != 0 || BoolNot(b).C != 1 {
		t.Error("negation wrong")
	}
	// Concrete-only bool ops stay concrete.
	if BoolAnd(Bool(true), Bool(true)).IsSymbolic() {
		t.Error("concrete bool op should stay concrete")
	}
}

func TestTruncateExtend(t *testing.T) {
	x := symInput(1, "x", 32, 0x12345678)
	tr := Truncate(x, 8)
	if tr.C != 0x78 || tr.W != 8 {
		t.Fatalf("truncate: %v", tr)
	}
	if got := sym.Eval(tr.S, sym.Env{1: 0x12345678}); got != 0x78 {
		t.Fatalf("truncate expr = %#x", got)
	}
	ex := Extend(Concrete(0xff, 8), 32)
	if ex.C != 0xff || ex.W != 32 {
		t.Fatalf("extend: %v", ex)
	}
	// No-op cases.
	if got := Truncate(x, 32); got.W != 32 {
		t.Fatal("truncate to same width should be a no-op")
	}
	if got := Extend(x, 16); got.W != 32 {
		t.Fatal("extend to narrower width should be a no-op")
	}
}

func TestWidthMixing(t *testing.T) {
	a := Concrete(0xff, 8)
	b := Concrete(0x100, 16)
	r := Add(a, b)
	if r.W != 16 || r.C != 0x1ff {
		t.Fatalf("width mixing: %v", r)
	}
}

func TestBoolValue(t *testing.T) {
	if Bool(true).C != 1 || Bool(false).C != 0 {
		t.Fatal("Bool constructor wrong")
	}
	if !Bool(true).NonZero() || Bool(false).NonZero() {
		t.Fatal("NonZero wrong")
	}
}

func TestValueString(t *testing.T) {
	if Concrete(5, 32).String() == "" {
		t.Fatal("empty string")
	}
	x := symInput(1, "x", 32, 5)
	if Add(x, Concrete(1, 32)).String() == Concrete(6, 32).String() {
		t.Fatal("symbolic string should differ from concrete")
	}
}

// Property: the concolic invariant — for every operation, the concrete
// part equals the symbolic expression evaluated at the input assignment.
func TestConcolicInvariant(t *testing.T) {
	ops := []func(a, b Value) Value{Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr, Eq, Ne, Lt, Le, Gt, Ge}
	f := func(xv, yv uint32, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		x := symInput(1, "x", 32, uint64(xv))
		y := symInput(2, "y", 32, uint64(yv))
		r := op(x, y)
		env := sym.Env{1: uint64(xv), 2: uint64(yv)}
		return r.C == sym.Eval(r.S, env)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: zero-width Values behave as 64-bit.
func TestZeroWidthDefaults(t *testing.T) {
	v := Value{C: 5}
	if v.width() != 64 {
		t.Fatal("zero width should default to 64")
	}
	r := Add(v, Value{C: 3})
	if r.C != 8 {
		t.Fatalf("add on zero-width: %v", r)
	}
}
