package concolic

import "dice/internal/telemetry"

// Metrics is the concolic engine's telemetry bundle: one instance per
// process (agent, replica, or in-process run), shared by every engine
// attached to the same registry. Recording happens once per round when
// the scheduler drains, so exploration's hot path is untouched. A nil
// *Metrics is a safe no-op.
type Metrics struct {
	frontierPeak *telemetry.Gauge
	paths        *telemetry.Counter
	negations    *telemetry.Counter
	solverCalls  *telemetry.Counter
	cacheHits    *telemetry.Counter
	hitRatio     *telemetry.Gauge
}

// NewMetrics registers the dice_concolic_* families on reg. A nil
// registry returns nil (telemetry disabled).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		frontierPeak: reg.Gauge("dice_concolic_frontier_peak",
			"Largest pending-negation queue any round reached."),
		paths: reg.Counter("dice_concolic_paths_total",
			"Distinct execution paths discovered."),
		negations: reg.Counter("dice_concolic_negations_total",
			"Negation queries answered (solver searches + cache hits)."),
		solverCalls: reg.Counter("dice_concolic_solver_calls_total",
			"Negation queries answered by a solver search."),
		cacheHits: reg.Counter("dice_concolic_solver_cache_hits_total",
			"Negation queries answered from the memo cache."),
		hitRatio: reg.Gauge("dice_concolic_cache_hit_ratio",
			"Cumulative solver cache hit ratio (hits / (hits + searches))."),
	}
}

// observeRound folds one shard's round report into the counters.
// frontierPeak keeps the high-water mark across rounds and shards.
func (m *Metrics) observeRound(rep *Report, frontierPeak int) {
	if m == nil {
		return
	}
	m.paths.Add(uint64(len(rep.Paths)))
	m.negations.Add(uint64(rep.SolverCalls + rep.CacheHits))
	m.solverCalls.Add(uint64(rep.SolverCalls))
	m.cacheHits.Add(uint64(rep.CacheHits))
	if peak := float64(frontierPeak); peak > m.frontierPeak.Value() {
		m.frontierPeak.Set(peak)
	}
	hits := float64(m.cacheHits.Value())
	if total := hits + float64(m.solverCalls.Value()); total > 0 {
		m.hitRatio.Set(hits / total)
	}
}
