package concolic

import (
	"bytes"
	"testing"
)

// TestStateWireRoundTrip: a round warmed by a decoded state must skip
// exactly the work a round warmed by the original in-process state
// skips — the replica contract: exploration memory survives the wire
// with no loss and no spurious suppression.
func TestStateWireRoundTrip(t *testing.T) {
	original := NewExploreState()
	cold := exploreWith(Options{State: original})
	if len(cold.Paths) != 4 {
		t.Fatalf("cold round found %d paths, want 4", len(cold.Paths))
	}

	restored, err := DecodeExploreState(original.EncodeWire())
	if err != nil {
		t.Fatal(err)
	}
	inproc := exploreWith(Options{State: original})
	wire := exploreWith(Options{State: restored})

	if wire.Runs != inproc.Runs {
		t.Errorf("wire-warmed round ran %d times, in-process %d", wire.Runs, inproc.Runs)
	}
	if len(wire.Paths) != 0 {
		t.Errorf("wire-warmed round re-reported %d paths", len(wire.Paths))
	}
	if wire.SkippedPaths != inproc.SkippedPaths {
		t.Errorf("wire-warmed round skipped %d paths, in-process %d", wire.SkippedPaths, inproc.SkippedPaths)
	}
	if wire.SkippedNegations != inproc.SkippedNegations {
		t.Errorf("wire-warmed round skipped %d negations, in-process %d",
			wire.SkippedNegations, inproc.SkippedNegations)
	}
	if wire.SkippedPaths == 0 || wire.SkippedNegations == 0 {
		t.Errorf("wire-warmed round skipped nothing (%d paths / %d negations) — state lost in transit",
			wire.SkippedPaths, wire.SkippedNegations)
	}
	// The solver cache deliberately does not travel: a wire-warmed round
	// may re-solve, but must not re-run or re-report.
}

// TestStateWireCanonical: the encoding is schedule-independent — two
// states accumulating the same exploration (even with different worker
// counts) encode byte-identically, and encode∘decode is a fixpoint.
func TestStateWireCanonical(t *testing.T) {
	a, b := NewExploreState(), NewExploreState()
	exploreWith(Options{State: a})
	exploreWith(Options{State: b, Workers: 4})
	ea, eb := a.EncodeWire(), b.EncodeWire()
	if !bytes.Equal(ea, eb) {
		t.Fatalf("same exploration encoded differently: %d vs %d bytes", len(ea), len(eb))
	}

	restored, err := DecodeExploreState(ea)
	if err != nil {
		t.Fatal(err)
	}
	if again := restored.EncodeWire(); !bytes.Equal(ea, again) {
		t.Fatalf("decode->encode not a fixpoint: %d vs %d bytes", len(ea), len(again))
	}
	st := restored.Stats()
	if st.Paths != a.Stats().Paths || st.Negations != a.Stats().Negations {
		t.Fatalf("restored stats %+v, want %d paths / %d negations",
			st, a.Stats().Paths, a.Stats().Negations)
	}
}

// TestStateWireGrowsThroughRestore: an imported state keeps accumulating
// — new paths recorded after a round-trip coexist with imported records
// and the re-encoded state carries both.
func TestStateWireGrowsThroughRestore(t *testing.T) {
	seedState := NewExploreState()
	run := func(st *ExploreState, seed uint64) *Report {
		eng := NewEngine(twoPredicateHandler, Options{State: st})
		eng.Var("x", 32, seed)
		return eng.Explore()
	}
	run(seedState, 4)
	restored, err := DecodeExploreState(seedState.EncodeWire())
	if err != nil {
		t.Fatal(err)
	}
	// All four paths are already known; a warm round from any seed skips
	// them, and the state after re-encoding still holds all four.
	if rep := run(restored, 9); len(rep.Paths) != 0 {
		t.Fatalf("warm round on imported state reported %d paths", len(rep.Paths))
	}
	second, err := DecodeExploreState(restored.EncodeWire())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := second.Stats().Paths, seedState.Stats().Paths; got != want {
		t.Fatalf("twice-shipped state holds %d paths, want %d", got, want)
	}
}

// TestStateWireDecodeRejectsMalformed: truncation at any offset and
// trailing garbage must error, never yield a partial state.
func TestStateWireDecodeRejectsMalformed(t *testing.T) {
	st := NewExploreState()
	exploreWith(Options{State: st})
	enc := st.EncodeWire()

	if _, err := DecodeExploreState(nil); err == nil {
		t.Error("decoding nil succeeded")
	}
	if _, err := DecodeExploreState([]byte("XXXX")); err == nil {
		t.Error("decoding bad magic succeeded")
	}
	for _, cut := range []int{5, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeExploreState(enc[:cut]); err == nil {
			t.Errorf("decoding truncation at %d succeeded", cut)
		}
	}
	if _, err := DecodeExploreState(append(append([]byte{}, enc...), 0x00)); err == nil {
		t.Error("decoding trailing garbage succeeded")
	}
}
