package concolic

import (
	"fmt"
	"time"

	"dice/internal/solver"
	"dice/internal/sym"
)

// RunContext is handed to the instrumented handler for one concrete
// execution. It resolves symbolic inputs to their concrete values for this
// run and records the path condition at every branch.
type RunContext struct {
	env     sym.Env
	vars    map[string]*sym.Var
	path    []sym.Expr // oriented: each conjunct is true on this run
	assumes []sym.Expr // non-negatable well-formedness constraints
	dropped int        // constraints suppressed via ConcretizeOpaque
	notes   []string
}

// Input returns the concolic value of the named symbolic input. It panics
// on unknown names: that is an instrumentation bug, not an input error.
func (rc *RunContext) Input(name string) Value {
	v, ok := rc.vars[name]
	if !ok {
		panic(fmt.Sprintf("concolic: unknown symbolic input %q", name))
	}
	return Value{C: rc.env[v.ID] & widthMask(v.W), S: v, W: v.W}
}

// Env exposes the concrete assignment driving this run.
func (rc *RunContext) Env() sym.Env { return rc.env }

// Branch evaluates cond concretely, records the oriented path constraint
// when cond is symbolic, and returns the concrete outcome. Instrumented
// code uses it for every conditional: `if rc.Branch(Lt(x, y)) { ... }`.
func (rc *RunContext) Branch(cond Value) bool {
	taken := cond.C != 0
	if cond.S != nil {
		e := boolExpr(cond)
		if !taken {
			e = sym.NewNot(e)
		}
		// Skip constraints that folded to constants; they carry no choice.
		if _, isConst := e.(sym.BoolConst); !isConst {
			rc.path = append(rc.path, e)
		}
	}
	return taken
}

// Assume records a constraint that must hold on this path without
// representing a negatable branch (e.g. well-formedness the caller
// guarantees). It is conjoined to every solver query for this path but is
// never itself negated, so all generated inputs satisfy it.
func (rc *RunContext) Assume(cond Value) {
	if cond.S == nil {
		return
	}
	e := boolExpr(cond)
	if cond.C == 0 {
		e = sym.NewNot(e)
	}
	if _, isConst := e.(sym.BoolConst); !isConst {
		rc.assumes = append(rc.assumes, e)
	}
}

// ConcretizeOpaque returns the concrete value of v and drops its symbolic
// part without recording a constraint. This is the paper's hash-function
// escape hatch: constraints through irreversible functions are suppressed
// rather than recorded.
func (rc *RunContext) ConcretizeOpaque(v Value) uint64 {
	if v.S != nil {
		rc.dropped++
	}
	return v.C
}

// Note attaches a free-form annotation to the run (visible in the path
// result), used by oracles for explanation strings.
func (rc *RunContext) Note(format string, args ...any) {
	rc.notes = append(rc.notes, fmt.Sprintf(format, args...))
}

// PathSig identifies an execution path: the 128-bit rolling fingerprint
// of its assumption constraints, a separator, and its oriented branch
// constraints — computed incrementally along the path instead of
// rendering the conjunction to a string. Dedup maps keyed on PathSig
// chain the underlying constraints and verify them structurally on
// lookup, so a fingerprint collision never merges two distinct paths.
type PathSig = sym.Fingerprint

// PathResult describes one explored execution.
type PathResult struct {
	Seq     int        // run sequence number (0 = seed run)
	Env     sym.Env    // concrete input assignment for the run
	Path    []sym.Expr // oriented branch constraints, in execution order
	Assumes []sym.Expr // non-negatable well-formedness constraints
	Output  any        // handler return value
	Notes   []string   // handler annotations
}

// Constraints returns the full path condition (assumptions ∧ branches).
func (p *PathResult) Constraints() []sym.Expr {
	out := make([]sym.Expr, 0, len(p.Assumes)+len(p.Path))
	out = append(out, p.Assumes...)
	return append(out, p.Path...)
}

// Strategy selects the order in which branch negations are attempted.
type Strategy int

// Exploration strategies.
const (
	// Generational negates every suffix predicate of each new path (the
	// CREST/SAGE default the paper uses: attempt full coverage of paths
	// reachable from the controlled inputs).
	Generational Strategy = iota
	// DFS negates the deepest predicate first.
	DFS
	// BFS negates the shallowest predicate first.
	BFS
)

func (s Strategy) String() string {
	switch s {
	case Generational:
		return "generational"
	case DFS:
		return "dfs"
	case BFS:
		return "bfs"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Options configures an exploration.
type Options struct {
	Strategy Strategy
	// MaxRuns bounds the number of handler executions (0 = 10000).
	MaxRuns int
	// MaxDepth bounds how deep in the path condition predicates are
	// negated (0 = unlimited).
	MaxDepth int
	// Workers is the number of parallel exploration goroutines (0 = 1).
	// The paper's Oasis "can execute multiple explorations in parallel".
	Workers int
	// SolverNodes is the per-query solver budget (0 = solver default).
	SolverNodes int
	// TimeBudget stops exploration after this duration (0 = unlimited).
	TimeBudget time.Duration
	// Cancel, when non-nil, stops exploration as soon as it is closed
	// (checked between runs). DiCE uses it to halt online exploration
	// when the operator or an experiment ends the testing window.
	Cancel <-chan struct{}
	// State, when non-nil, carries exploration memory across rounds:
	// paths and negations already explored by prior rounds are skipped,
	// and the state's solver memo cache answers repeated queries — the
	// paper's continuous online mode without duplicated work.
	State *ExploreState
	// SolverCache memoizes negation queries. Defaults to State's cache
	// when State is set; nil otherwise (every query is solved).
	SolverCache *solver.Cache
	// Metrics, when non-nil, receives per-round exploration telemetry
	// (frontier peak, paths, negations, solver cache hit ratio). It is
	// process-local — recorded once per round at scheduler drain, never
	// shipped over the wire — so the hot path pays nothing for it.
	Metrics *Metrics
}

// Handler is the instrumented message-handler body: it executes one input
// (read through rc.Input) against checkpointed state and returns an
// arbitrary output for the oracles.
type Handler func(rc *RunContext) any

// Engine explores all execution paths of a Handler reachable by varying
// the declared symbolic inputs, starting from a seed assignment.
type Engine struct {
	opts    Options
	vars    []*sym.Var
	byName  map[string]*sym.Var
	seed    sym.Env
	handler Handler
	nextID  int
}

// NewEngine creates an engine for the given handler.
func NewEngine(handler Handler, opts Options) *Engine {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 10000
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	return &Engine{
		opts:    opts,
		byName:  make(map[string]*sym.Var),
		seed:    make(sym.Env),
		handler: handler,
	}
}

// Var declares a symbolic input with a seed (currently observed) value.
// The paper marks selectively chosen small fields of the UPDATE message
// symbolic; each such field becomes one Var.
func (e *Engine) Var(name string, width int, seed uint64) {
	if _, dup := e.byName[name]; dup {
		panic(fmt.Sprintf("concolic: duplicate symbolic input %q", name))
	}
	v := sym.NewVar(e.nextID, name, width)
	e.nextID++
	e.vars = append(e.vars, v)
	e.byName[name] = v
	e.seed[v.ID] = seed & widthMask(width)
}

// Report summarizes an exploration.
type Report struct {
	Paths []PathResult // paths new to this round, in discovery order
	Runs  int          // handler executions (including duplicates)
	// SolverCalls counts negation queries actually searched; CacheHits
	// counts queries answered from the memo cache instead. The total
	// number of queries issued is their sum.
	SolverCalls  int
	SolverSat    int
	SolverUnsat  int
	CacheHits    int
	BranchesSeen int // distinct oriented constraints observed
	// SkippedPaths / SkippedNegations count work suppressed by the
	// cross-round ExploreState (0 when Options.State is nil).
	SkippedPaths     int
	SkippedNegations int
	Elapsed          time.Duration
	Budget           string // which budget stopped exploration, if any
}

// RunOnce executes the handler under a specific concrete assignment and
// returns the resulting path. DiCE uses it to validate oracle witnesses
// by re-execution: a witness produced through constraint solving is only
// reported after the instrumented handler confirms it concretely
// (guarding against concretization imprecision in recorded constraints).
func (e *Engine) RunOnce(env sym.Env) PathResult {
	merged := cloneEnv(e.seed)
	for id, v := range env {
		merged[id] = v
	}
	rc := &RunContext{env: merged, vars: e.byName}
	out := e.handler(rc)
	return PathResult{
		Env:     merged,
		Path:    rc.path,
		Assumes: rc.assumes,
		Output:  out,
		Notes:   rc.notes,
	}
}

// Explore runs the concolic exploration loop — seed run, then a worker
// pool draining the frontier of pending negations — and returns its
// report. The mechanics live in frontier.go (what to try next) and
// scheduler.go (who tries it); Explore runs this engine as a fleet of
// one shard (see ExploreFleet for the multi-node form).
func (e *Engine) Explore() *Report {
	return newScheduler(nil, []*Engine{e}, e.opts.Workers).run()[0]
}

func cloneEnv(e sym.Env) sym.Env {
	c := make(sym.Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}
