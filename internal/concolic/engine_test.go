package concolic

import (
	"testing"

	"dice/internal/sym"
)

// TestExplorationCoversAllPaths reproduces Figure 1 of the paper: a
// handler with two sequential predicates has four feasible paths; starting
// from one concrete input, negating predicates must discover all of them.
func TestExplorationCoversAllPaths(t *testing.T) {
	var outputs []string
	handler := func(rc *RunContext) any {
		x := rc.Input("x")
		out := ""
		if rc.Branch(Lt(x, Concrete(10, 32))) { // predicate #1
			out += "a"
		} else {
			out += "A"
		}
		if rc.Branch(Eq(And(x, Concrete(1, 32)), Concrete(1, 32))) { // predicate #2
			out += "b"
		} else {
			out += "B"
		}
		return out
	}
	eng := NewEngine(handler, Options{})
	eng.Var("x", 32, 4) // seed: x=4 → path "aB"
	rep := eng.Explore()

	got := map[string]bool{}
	for _, p := range rep.Paths {
		got[p.Output.(string)] = true
		outputs = append(outputs, p.Output.(string))
	}
	for _, want := range []string{"aB", "ab", "AB", "Ab"} {
		if !got[want] {
			t.Errorf("path %q not explored; got %v", want, outputs)
		}
	}
	if len(rep.Paths) != 4 {
		t.Errorf("want exactly 4 distinct paths, got %d", len(rep.Paths))
	}
	if rep.Runs < 4 {
		t.Errorf("suspiciously few runs: %d", rep.Runs)
	}
}

// TestSeedPathFirst: the first explored path must correspond to the
// observed (seed) input — DiCE records the real input's constraints first.
func TestSeedPathFirst(t *testing.T) {
	handler := func(rc *RunContext) any {
		x := rc.Input("x")
		if rc.Branch(Ge(x, Concrete(100, 32))) {
			return "high"
		}
		return "low"
	}
	eng := NewEngine(handler, Options{})
	eng.Var("x", 32, 250)
	rep := eng.Explore()
	if len(rep.Paths) == 0 || rep.Paths[0].Output.(string) != "high" {
		t.Fatalf("seed path should be explored first; got %+v", rep.Paths)
	}
	if rep.Paths[0].Seq != 0 {
		t.Fatalf("seed path should have sequence 0")
	}
}

// TestNestedBranches: exploration must reach paths hidden behind earlier
// branches (aggregate constraint set growth, §2.3).
func TestNestedBranches(t *testing.T) {
	handler := func(rc *RunContext) any {
		x := rc.Input("x")
		if rc.Branch(Gt(x, Concrete(50, 32))) {
			if rc.Branch(Eq(x, Concrete(77, 32))) {
				return "bullseye"
			}
			return "high"
		}
		return "low"
	}
	eng := NewEngine(handler, Options{})
	eng.Var("x", 32, 10) // seed takes the "low" path; bullseye is two negations deep
	rep := eng.Explore()
	found := false
	for _, p := range rep.Paths {
		if p.Output.(string) == "bullseye" {
			found = true
		}
	}
	if !found {
		t.Fatalf("nested path not found; paths: %d runs: %d", len(rep.Paths), rep.Runs)
	}
	if len(rep.Paths) != 3 {
		t.Errorf("want 3 distinct paths, got %d", len(rep.Paths))
	}
}

// TestInfeasiblePathsNotExplored: contradictory nested conditions must not
// produce phantom paths.
func TestInfeasiblePathsNotExplored(t *testing.T) {
	handler := func(rc *RunContext) any {
		x := rc.Input("x")
		if rc.Branch(Lt(x, Concrete(5, 32))) {
			if rc.Branch(Gt(x, Concrete(10, 32))) {
				return "impossible"
			}
			return "small"
		}
		return "big"
	}
	eng := NewEngine(handler, Options{})
	eng.Var("x", 32, 3)
	rep := eng.Explore()
	for _, p := range rep.Paths {
		if p.Output.(string) == "impossible" {
			t.Fatal("explored an infeasible path")
		}
	}
	if len(rep.Paths) != 2 {
		t.Errorf("want 2 feasible paths, got %d", len(rep.Paths))
	}
	if rep.SolverUnsat == 0 {
		t.Error("expected at least one unsat negation query")
	}
}

// TestMultipleInputs: negation works across several symbolic variables.
func TestMultipleInputs(t *testing.T) {
	handler := func(rc *RunContext) any {
		a, b := rc.Input("a"), rc.Input("b")
		n := 0
		if rc.Branch(Eq(a, Concrete(1, 8))) {
			n |= 1
		}
		if rc.Branch(Eq(b, Concrete(2, 8))) {
			n |= 2
		}
		return n
	}
	eng := NewEngine(handler, Options{})
	eng.Var("a", 8, 0)
	eng.Var("b", 8, 0)
	rep := eng.Explore()
	got := map[int]bool{}
	for _, p := range rep.Paths {
		got[p.Output.(int)] = true
	}
	for want := 0; want < 4; want++ {
		if !got[want] {
			t.Errorf("combination %d not explored", want)
		}
	}
}

// TestUnconstrainedInputsKeepSeed: inputs not mentioned in the negated
// path keep their observed values (minimal perturbation of the message).
func TestUnconstrainedInputsKeepSeed(t *testing.T) {
	handler := func(rc *RunContext) any {
		x := rc.Input("x")
		_ = rc.Input("y") // y unused in branching
		if rc.Branch(Lt(x, Concrete(10, 32))) {
			return rc.Env()
		}
		return rc.Env()
	}
	eng := NewEngine(handler, Options{})
	eng.Var("x", 32, 3)
	eng.Var("y", 32, 999)
	rep := eng.Explore()
	if len(rep.Paths) != 2 {
		t.Fatalf("want 2 paths, got %d", len(rep.Paths))
	}
	for _, p := range rep.Paths {
		env := p.Output.(sym.Env)
		if env[1] != 999 {
			t.Errorf("unconstrained input y changed: %v", env)
		}
	}
}

// TestMaxRunsBudget: exploration stops at the run budget.
func TestMaxRunsBudget(t *testing.T) {
	handler := func(rc *RunContext) any {
		x := rc.Input("x")
		// 16 independent bit-branches → 65536 paths; budget must cut this off.
		for i := 0; i < 16; i++ {
			rc.Branch(Eq(And(Shr(x, Concrete(uint64(i), 32)), Concrete(1, 32)), Concrete(1, 32)))
		}
		return nil
	}
	eng := NewEngine(handler, Options{MaxRuns: 20})
	eng.Var("x", 32, 0)
	rep := eng.Explore()
	if rep.Runs > 20 {
		t.Fatalf("budget exceeded: %d runs", rep.Runs)
	}
	if rep.Budget != "max-runs" {
		t.Fatalf("budget reason = %q, want max-runs", rep.Budget)
	}
}

// TestMaxDepthLimitsNegation: only the first MaxDepth predicates are
// negated.
func TestMaxDepthLimitsNegation(t *testing.T) {
	handler := func(rc *RunContext) any {
		x := rc.Input("x")
		n := 0
		for i := 0; i < 8; i++ {
			if rc.Branch(Eq(And(Shr(x, Concrete(uint64(i), 32)), Concrete(1, 32)), Concrete(1, 32))) {
				n++
			}
		}
		return n
	}
	eng := NewEngine(handler, Options{MaxDepth: 2})
	eng.Var("x", 32, 0)
	rep := eng.Explore()
	// Depth 2 over 8 independent bits: reachable paths are those differing
	// from some explored path in the first two bits only → exactly 4.
	if len(rep.Paths) != 4 {
		t.Fatalf("want 4 paths at depth 2, got %d", len(rep.Paths))
	}
}

// TestConcretizeOpaque: dropping a hash constraint keeps exploration sound
// (no constraint recorded, run completes).
func TestConcretizeOpaque(t *testing.T) {
	handler := func(rc *RunContext) any {
		x := rc.Input("x")
		// Model a hash: irreversible mixing that must not be recorded.
		h := rc.ConcretizeOpaque(Mul(Xor(x, Concrete(0x9e3779b9, 32)), Concrete(0x85ebca6b, 32)))
		if rc.Branch(Lt(x, Concrete(100, 32))) {
			return h
		}
		return h
	}
	eng := NewEngine(handler, Options{})
	eng.Var("x", 32, 5)
	rep := eng.Explore()
	if len(rep.Paths) != 2 {
		t.Fatalf("want 2 paths (hash constraint dropped), got %d", len(rep.Paths))
	}
	for _, p := range rep.Paths {
		// Path constraints must mention only the explicit branch.
		for _, c := range p.Path {
			if len(c.String()) > 200 {
				t.Fatalf("hash expression leaked into path: %v", c)
			}
		}
	}
}

// TestStrategiesAllCover: all strategies fully cover a small path space.
func TestStrategiesAllCover(t *testing.T) {
	for _, strat := range []Strategy{Generational, DFS, BFS} {
		handler := func(rc *RunContext) any {
			x := rc.Input("x")
			n := 0
			if rc.Branch(Lt(x, Concrete(100, 32))) {
				n++
			}
			if rc.Branch(Eq(Mod(x, Concrete(2, 32)), Concrete(0, 32))) {
				n += 2
			}
			return n
		}
		eng := NewEngine(handler, Options{Strategy: strat})
		eng.Var("x", 32, 7)
		rep := eng.Explore()
		if len(rep.Paths) != 4 {
			t.Errorf("%v: want 4 paths, got %d", strat, len(rep.Paths))
		}
	}
}

// TestParallelWorkersEquivalent: parallel exploration finds the same path
// set as sequential.
func TestParallelWorkersEquivalent(t *testing.T) {
	build := func(workers int) map[string]bool {
		handler := func(rc *RunContext) any {
			x, y := rc.Input("x"), rc.Input("y")
			out := ""
			if rc.Branch(Lt(x, Concrete(10, 32))) {
				out += "a"
			} else {
				out += "A"
			}
			if rc.Branch(Gt(y, Concrete(5, 32))) {
				out += "b"
			} else {
				out += "B"
			}
			if rc.Branch(Eq(Add(x, y), Concrete(12, 32))) {
				out += "c"
			} else {
				out += "C"
			}
			return out
		}
		eng := NewEngine(handler, Options{Workers: workers})
		eng.Var("x", 32, 1)
		eng.Var("y", 32, 2)
		rep := eng.Explore()
		got := map[string]bool{}
		for _, p := range rep.Paths {
			got[p.Output.(string)] = true
		}
		return got
	}
	seq := build(1)
	par := build(4)
	if len(seq) != len(par) {
		t.Fatalf("sequential found %d paths, parallel %d", len(seq), len(par))
	}
	for k := range seq {
		if !par[k] {
			t.Errorf("parallel missed path %q", k)
		}
	}
}

// TestAssumeNotNegated: Assume constraints restrict exploration but are
// never negated (generated inputs always satisfy them).
func TestAssumeNotNegated(t *testing.T) {
	handler := func(rc *RunContext) any {
		ln := rc.Input("masklen")
		rc.Assume(Le(ln, Concrete(32, 8))) // well-formedness: masklen <= 32
		if rc.Branch(Gt(ln, Concrete(24, 8))) {
			return "long"
		}
		return "short"
	}
	eng := NewEngine(handler, Options{})
	eng.Var("masklen", 8, 16)
	rep := eng.Explore()
	for _, p := range rep.Paths {
		if p.Env[0] > 32 {
			t.Fatalf("generated input violates assumption: masklen=%d", p.Env[0])
		}
	}
	if len(rep.Paths) != 2 {
		t.Fatalf("want 2 paths, got %d", len(rep.Paths))
	}
}

// TestNotesPropagate: handler annotations appear in path results.
func TestNotesPropagate(t *testing.T) {
	handler := func(rc *RunContext) any {
		x := rc.Input("x")
		if rc.Branch(Eq(x, Concrete(1, 32))) {
			rc.Note("hit %d", 1)
		}
		return nil
	}
	eng := NewEngine(handler, Options{})
	eng.Var("x", 32, 1)
	rep := eng.Explore()
	found := false
	for _, p := range rep.Paths {
		for _, n := range p.Notes {
			if n == "hit 1" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("note not propagated")
	}
}

// TestInputPanicsOnUnknownName guards the instrumentation contract.
func TestInputPanicsOnUnknownName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown input name")
		}
	}()
	rc := &RunContext{env: sym.Env{}, vars: map[string]*sym.Var{}}
	rc.Input("nope")
}

func TestDuplicateVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate Var")
		}
	}()
	eng := NewEngine(func(rc *RunContext) any { return nil }, Options{})
	eng.Var("x", 32, 0)
	eng.Var("x", 32, 0)
}

func TestNoSymbolicInputs(t *testing.T) {
	// A handler with no symbolic branching yields exactly one path.
	eng := NewEngine(func(rc *RunContext) any { return 42 }, Options{})
	rep := eng.Explore()
	if len(rep.Paths) != 1 || rep.Runs != 1 {
		t.Fatalf("want 1 path / 1 run, got %d / %d", len(rep.Paths), rep.Runs)
	}
	if rep.Paths[0].Output.(int) != 42 {
		t.Fatal("output lost")
	}
}

func BenchmarkExploreTwoPredicates(b *testing.B) {
	handler := func(rc *RunContext) any {
		x := rc.Input("x")
		if rc.Branch(Lt(x, Concrete(10, 32))) {
			_ = 1
		}
		if rc.Branch(Eq(And(x, Concrete(1, 32)), Concrete(1, 32))) {
			_ = 2
		}
		return nil
	}
	for i := 0; i < b.N; i++ {
		eng := NewEngine(handler, Options{})
		eng.Var("x", 32, 4)
		rep := eng.Explore()
		if len(rep.Paths) != 4 {
			b.Fatalf("want 4 paths, got %d", len(rep.Paths))
		}
	}
}

// TestRunOnce: replaying a specific assignment reproduces the same path
// and output as exploration found for it (witness validation support).
func TestRunOnce(t *testing.T) {
	handler := func(rc *RunContext) any {
		x := rc.Input("x")
		if rc.Branch(Lt(x, Concrete(10, 32))) {
			return "low"
		}
		return "high"
	}
	eng := NewEngine(handler, Options{})
	eng.Var("x", 32, 3)

	pr := eng.RunOnce(sym.Env{0: 42})
	if pr.Output.(string) != "high" {
		t.Fatalf("output = %v", pr.Output)
	}
	if len(pr.Path) != 1 {
		t.Fatalf("path length = %d", len(pr.Path))
	}
	// Unspecified variables fall back to the seed.
	pr = eng.RunOnce(sym.Env{})
	if pr.Output.(string) != "low" || pr.Env[0] != 3 {
		t.Fatalf("seed fallback broken: %v env=%v", pr.Output, pr.Env)
	}
}
