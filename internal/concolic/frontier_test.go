package concolic

import (
	"testing"

	"dice/internal/sym"
)

// foldTwoPaths folds two independent two-predicate paths into a frontier
// and returns the negated-constraint names in pop (drain) order.
func foldTwoPaths(strategy Strategy) []string {
	f := newFrontier(strategy, 0, nil)
	mk := func(id int, name string) sym.Expr {
		return sym.NewCmp(sym.OpEq, &sym.Var{ID: id, Name: name, W: 8}, sym.NewConst(1, 8))
	}
	pathA := []sym.Expr{mk(0, "a0"), mk(1, "a1")}
	pathB := []sym.Expr{mk(2, "b0"), mk(3, "b1")}
	f.fold(nil, pathA, sym.Env{}, 0)
	f.fold(nil, pathB, sym.Env{}, 0)

	var order []string
	for {
		it, ok := f.pop()
		if !ok {
			return order
		}
		// The negation of (var == 1) folds to (var != 1); recover the name.
		order = append(order, it.negated.(*sym.Cmp).X.(*sym.Var).Name)
	}
}

// TestFrontierDrainOrder pins the strategy semantics: DFS drains deepest
// predicates first (globally), BFS shallowest first, and Generational
// drains the newest generation first, deepest-first within it.
func TestFrontierDrainOrder(t *testing.T) {
	cases := []struct {
		strategy Strategy
		want     []string
	}{
		{DFS, []string{"b1", "a1", "b0", "a0"}},
		{BFS, []string{"b0", "a0", "b1", "a1"}},
		{Generational, []string{"b1", "b0", "a1", "a0"}},
	}
	for _, c := range cases {
		got := foldTwoPaths(c.strategy)
		if len(got) != len(c.want) {
			t.Fatalf("%v: drained %v, want %v", c.strategy, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v: drain order %v, want %v", c.strategy, got, c.want)
				break
			}
		}
	}
}

// TestFrontierDedupsAttempts: folding the same path twice schedules its
// negations only once, and a duplicate path is not fresh.
func TestFrontierDedupsAttempts(t *testing.T) {
	f := newFrontier(Generational, 0, nil)
	path := []sym.Expr{
		sym.NewCmp(sym.OpEq, &sym.Var{ID: 0, Name: "x", W: 8}, sym.NewConst(1, 8)),
	}
	if !f.fold(nil, path, sym.Env{}, 0) {
		t.Fatal("first fold not fresh")
	}
	if f.pending() != 1 {
		t.Fatalf("pending = %d, want 1", f.pending())
	}
	if f.fold(nil, path, sym.Env{}, 0) {
		t.Fatal("duplicate path reported fresh")
	}
	if f.pending() != 1 {
		t.Fatalf("duplicate fold re-scheduled: pending = %d", f.pending())
	}
}

// BenchmarkFrontierFold is the regression benchmark for per-branch key
// construction cost: folding a path of depth d must be O(d) total — the
// seed code rebuilt an O(path)-sized signature per branch point, making
// every fold quadratic in path depth. allocs/op is the headline metric.
func BenchmarkFrontierFold(b *testing.B) {
	const depth = 64
	x := &sym.Var{ID: 0, Name: "x", W: 64}
	path := make([]sym.Expr, depth)
	for i := range path {
		path[i] = sym.NewCmp(sym.OpEq,
			sym.NewBin(sym.OpAnd, sym.NewBin(sym.OpShr, x, sym.NewConst(uint64(i), 64)), sym.NewConst(1, 64)),
			sym.NewConst(1, 64))
	}
	env := sym.Env{0: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := newFrontier(Generational, 0, nil)
		f.fold(nil, path, env, 0)
	}
}

// TestFrontierMaxDepth: predicates beyond MaxDepth are never scheduled.
func TestFrontierMaxDepth(t *testing.T) {
	f := newFrontier(Generational, 2, nil)
	mk := func(id int) sym.Expr {
		return sym.NewCmp(sym.OpEq, &sym.Var{ID: id, Name: "v", W: 8}, sym.NewConst(1, 8))
	}
	f.fold(nil, []sym.Expr{mk(0), mk(1), mk(2), mk(3)}, sym.Env{}, 0)
	if f.pending() != 2 {
		t.Fatalf("pending = %d, want 2 (MaxDepth)", f.pending())
	}
	for {
		it, ok := f.pop()
		if !ok {
			break
		}
		if it.depth >= 2 {
			t.Fatalf("scheduled negation at depth %d beyond MaxDepth 2", it.depth)
		}
	}
}
