package concolic

import (
	"sort"
	"sync"
)

// FleetMember is one node's exploration in a federated round: its engine
// (already declared and seeded by the node's scenario) under the node's
// identity.
type FleetMember struct {
	// ID identifies the member — the federation node ID. It labels the
	// member's frontier shard and keys per-node cross-round state.
	ID string
	// Engine is the member's fully prepared engine (handler + declared
	// symbolic inputs). Its per-engine options (MaxRuns, TimeBudget,
	// Strategy, State, Cancel) apply to this member alone; Workers is
	// ignored in fleet mode — the pool is shared.
	Engine *Engine
}

// ExploreFleet runs every member's exploration over one shared pool of
// workers. Each member keeps its own frontier shard, run budget and
// cross-round state, but the workers drain all shards together: when one
// node's frontier goes quiet the pool's capacity flows to the others, so
// a federated round costs max(node) wall-clock instead of sum(node).
//
// Reports are returned in member order. A nil or empty member list
// returns no reports.
func ExploreFleet(members []FleetMember, workers int) []*Report {
	if len(members) == 0 {
		return nil
	}
	ids := make([]string, len(members))
	engines := make([]*Engine, len(members))
	for i, m := range members {
		ids[i] = m.ID
		engines[i] = m.Engine
	}
	return newScheduler(ids, engines, workers).run()
}

// StateMap shards cross-round ExploreState by federation node ID, so
// repeated federated rounds are incremental per node: node A's explored
// paths never mask node B's, and each node's state stays valid exactly as
// long as that node's own policy configuration is stable.
//
// Safe for concurrent use.
type StateMap struct {
	mu sync.Mutex
	m  map[string]*ExploreState
}

// NewStateMap creates an empty per-node state map.
func NewStateMap() *StateMap {
	return &StateMap{m: make(map[string]*ExploreState)}
}

// For returns the node's state, allocating it on first use.
func (sm *StateMap) For(nodeID string) *ExploreState {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	st, ok := sm.m[nodeID]
	if !ok {
		st = NewExploreState()
		sm.m[nodeID] = st
	}
	return st
}

// Attach installs st as the node's state, replacing any existing one —
// the warm-handoff path: a replacement member inherits a frontier that
// was decoded off the wire rather than grown in this process.
func (sm *StateMap) Attach(nodeID string, st *ExploreState) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.m[nodeID] = st
}

// Peek returns the node's state without allocating (nil if none).
func (sm *StateMap) Peek(nodeID string) *ExploreState {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.m[nodeID]
}

// NodeIDs returns the IDs with allocated state, sorted.
func (sm *StateMap) NodeIDs() []string {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	ids := make([]string, 0, len(sm.m))
	for id := range sm.m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
