package concolic

import (
	"sync/atomic"
	"testing"
)

// fleetHandler records a three-branch path over one variable; 8 feasible
// paths, fully explorable.
func fleetHandler(calls *atomic.Int64) Handler {
	return func(rc *RunContext) any {
		calls.Add(1)
		x := rc.Input("x")
		n := 0
		for i := 0; i < 3; i++ {
			bit := Eq(And(Shr(x, Concrete(uint64(i), 32)), Concrete(1, 32)), Concrete(1, 32))
			if rc.Branch(bit) {
				n |= 1 << i
			}
		}
		return n
	}
}

func newFleetEngine(calls *atomic.Int64, opts Options) *Engine {
	e := NewEngine(fleetHandler(calls), opts)
	e.Var("x", 32, 0)
	return e
}

// TestExploreFleetMatchesSolo: a fleet member must discover exactly the
// paths a solo Explore of the same engine finds, regardless of how many
// members share the pool.
func TestExploreFleetMatchesSolo(t *testing.T) {
	var solo atomic.Int64
	want := newFleetEngine(&solo, Options{}).Explore()
	if len(want.Paths) != 8 {
		t.Fatalf("solo explore found %d paths, want 8", len(want.Paths))
	}

	var calls atomic.Int64
	members := []FleetMember{
		{ID: "node-a", Engine: newFleetEngine(&calls, Options{})},
		{ID: "node-b", Engine: newFleetEngine(&calls, Options{})},
		{ID: "node-c", Engine: newFleetEngine(&calls, Options{})},
	}
	reps := ExploreFleet(members, 4)
	if len(reps) != 3 {
		t.Fatalf("got %d reports, want 3", len(reps))
	}
	for i, rep := range reps {
		if len(rep.Paths) != len(want.Paths) {
			t.Errorf("member %d: %d paths, want %d", i, len(rep.Paths), len(want.Paths))
		}
		if rep.Runs != want.Runs {
			t.Errorf("member %d: %d runs, want %d", i, rep.Runs, want.Runs)
		}
	}
}

// TestExploreFleetPerMemberBudget: one member's exhausted budget must not
// stop the others.
func TestExploreFleetPerMemberBudget(t *testing.T) {
	var calls atomic.Int64
	members := []FleetMember{
		{ID: "tiny", Engine: newFleetEngine(&calls, Options{MaxRuns: 2})},
		{ID: "full", Engine: newFleetEngine(&calls, Options{})},
	}
	reps := ExploreFleet(members, 2)
	if reps[0].Runs > 2 {
		t.Errorf("tiny member ran %d times, budget was 2", reps[0].Runs)
	}
	if reps[0].Budget != "max-runs" {
		t.Errorf("tiny member budget = %q, want max-runs", reps[0].Budget)
	}
	if len(reps[1].Paths) != 8 {
		t.Errorf("full member found %d paths, want 8 (starved by sibling budget?)", len(reps[1].Paths))
	}
	if reps[1].Budget != "" {
		t.Errorf("full member budget = %q, want none", reps[1].Budget)
	}
}

// TestExploreFleetPerNodeState: warm per-node state must make a member's
// second round incremental without touching its siblings'.
func TestExploreFleetPerNodeState(t *testing.T) {
	sm := NewStateMap()
	var calls atomic.Int64
	round := func(withB bool) []*Report {
		members := []FleetMember{
			{ID: "a", Engine: newFleetEngine(&calls, Options{State: sm.For("a")})},
		}
		if withB {
			members = append(members, FleetMember{ID: "b", Engine: newFleetEngine(&calls, Options{State: sm.For("b")})})
		}
		return ExploreFleet(members, 2)
	}

	first := round(true)
	if len(first[0].Paths) != 8 || len(first[1].Paths) != 8 {
		t.Fatalf("cold round paths: a=%d b=%d, want 8/8", len(first[0].Paths), len(first[1].Paths))
	}

	second := round(false)
	if len(second[0].Paths) != 0 {
		t.Errorf("warm round for a reported %d new paths, want 0", len(second[0].Paths))
	}
	if second[0].SkippedNegations == 0 {
		t.Errorf("warm round for a skipped no negations")
	}
	if st := sm.Peek("b"); st == nil || st.Stats().Rounds != 1 {
		t.Errorf("node b state was touched by a's warm round")
	}
	if got := sm.NodeIDs(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("NodeIDs = %v, want [a b]", got)
	}
}
