package concolic

import (
	"fmt"

	"dice/internal/sym"
)

// Value is a concolic value: a concrete bitvector plus, when the value
// depends on a symbolic input, the expression computing it. The zero Value
// is concrete 0 with width 0 (treated as width 64 in operations).
type Value struct {
	C uint64   // concrete value, masked to W bits
	S sym.Expr // nil when the value is purely concrete
	W int      // bit width, 1..64
}

// Concrete wraps a plain value with no symbolic part.
func Concrete(v uint64, w int) Value {
	return Value{C: v & widthMask(w), W: w}
}

// Bool wraps a concrete boolean.
func Bool(b bool) Value {
	if b {
		return Value{C: 1, W: 1}
	}
	return Value{C: 0, W: 1}
}

// IsSymbolic reports whether v carries a symbolic expression.
func (v Value) IsSymbolic() bool { return v.S != nil }

// NonZero reports the concrete truth of v.
func (v Value) NonZero() bool { return v.C != 0 }

// expr returns the symbolic expression for v, materializing a constant
// when v is concrete.
func (v Value) expr() sym.Expr {
	if v.S != nil {
		return v.S
	}
	return sym.NewConst(v.C, v.width())
}

func (v Value) width() int {
	if v.W <= 0 {
		return 64
	}
	return v.W
}

func widthMask(w int) uint64 {
	if w <= 0 || w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// String renders the value with its symbolic part if any.
func (v Value) String() string {
	if v.S == nil {
		return fmt.Sprintf("%d:%d", v.C, v.width())
	}
	return fmt.Sprintf("%d:%d{%s}", v.C, v.width(), v.S)
}

// binOp applies op concretely and, if either operand is symbolic, builds
// the corresponding expression. The concrete path allocates nothing.
func binOp(op sym.BinOp, a, b Value) Value {
	w := a.width()
	if b.width() > w {
		w = b.width()
	}
	c := sym.EvalBinOp(op, a.C, b.C, w)
	if a.S == nil && b.S == nil {
		return Value{C: c, W: w}
	}
	return Value{C: c, S: sym.NewBin(op, a.expr(), b.expr()), W: w}
}

// Add returns a+b (mod 2^w).
func Add(a, b Value) Value { return binOp(sym.OpAdd, a, b) }

// Sub returns a-b (mod 2^w).
func Sub(a, b Value) Value { return binOp(sym.OpSub, a, b) }

// Mul returns a*b (mod 2^w).
func Mul(a, b Value) Value { return binOp(sym.OpMul, a, b) }

// Div returns a/b (unsigned; division by zero yields all-ones).
func Div(a, b Value) Value { return binOp(sym.OpDiv, a, b) }

// Mod returns a%b (a when b is zero).
func Mod(a, b Value) Value { return binOp(sym.OpMod, a, b) }

// And returns a&b.
func And(a, b Value) Value { return binOp(sym.OpAnd, a, b) }

// Or returns a|b.
func Or(a, b Value) Value { return binOp(sym.OpOr, a, b) }

// Xor returns a^b.
func Xor(a, b Value) Value { return binOp(sym.OpXor, a, b) }

// Shl returns a<<b (0 when b >= width).
func Shl(a, b Value) Value { return binOp(sym.OpShl, a, b) }

// Shr returns a>>b (0 when b >= width).
func Shr(a, b Value) Value { return binOp(sym.OpShr, a, b) }

// cmpOp applies an unsigned comparison producing a boolean Value. The
// concrete path allocates nothing.
func cmpOp(op sym.CmpOp, a, b Value) Value {
	w := a.width()
	if b.width() > w {
		w = b.width()
	}
	c := uint64(0)
	if sym.EvalCmpOp(op, a.C, b.C, w) {
		c = 1
	}
	if a.S == nil && b.S == nil {
		return Value{C: c, W: 1}
	}
	return Value{C: c, S: sym.NewCmp(op, a.expr(), b.expr()), W: 1}
}

// Eq returns a==b as a boolean Value.
func Eq(a, b Value) Value { return cmpOp(sym.OpEq, a, b) }

// Ne returns a!=b as a boolean Value.
func Ne(a, b Value) Value { return cmpOp(sym.OpNe, a, b) }

// Lt returns a<b (unsigned) as a boolean Value.
func Lt(a, b Value) Value { return cmpOp(sym.OpLt, a, b) }

// Le returns a<=b (unsigned) as a boolean Value.
func Le(a, b Value) Value { return cmpOp(sym.OpLe, a, b) }

// Gt returns a>b (unsigned) as a boolean Value.
func Gt(a, b Value) Value { return cmpOp(sym.OpGt, a, b) }

// Ge returns a>=b (unsigned) as a boolean Value.
func Ge(a, b Value) Value { return cmpOp(sym.OpGe, a, b) }

// BoolAnd returns the logical conjunction of two boolean Values.
func BoolAnd(a, b Value) Value {
	c := uint64(0)
	if a.C != 0 && b.C != 0 {
		c = 1
	}
	if a.S == nil && b.S == nil {
		return Value{C: c, W: 1}
	}
	return Value{C: c, S: sym.NewBool(sym.OpLAnd, boolExpr(a), boolExpr(b)), W: 1}
}

// BoolOr returns the logical disjunction of two boolean Values.
func BoolOr(a, b Value) Value {
	c := uint64(0)
	if a.C != 0 || b.C != 0 {
		c = 1
	}
	if a.S == nil && b.S == nil {
		return Value{C: c, W: 1}
	}
	return Value{C: c, S: sym.NewBool(sym.OpLOr, boolExpr(a), boolExpr(b)), W: 1}
}

// BoolNot returns the logical negation of a boolean Value.
func BoolNot(a Value) Value {
	c := uint64(0)
	if a.C == 0 {
		c = 1
	}
	if a.S == nil {
		return Value{C: c, W: 1}
	}
	return Value{C: c, S: sym.NewNot(boolExpr(a)), W: 1}
}

// boolExpr converts a Value's symbolic part to a boolean formula,
// inserting an explicit !=0 test for bitvector expressions.
func boolExpr(v Value) sym.Expr {
	e := v.expr()
	if e.IsBool() {
		return e
	}
	return sym.NewCmp(sym.OpNe, e, sym.NewConst(0, e.Width()))
}

// Truncate narrows v to w bits (both concrete and symbolic parts).
func Truncate(v Value, w int) Value {
	if w >= v.width() {
		return v
	}
	m := widthMask(w)
	if v.S == nil {
		return Value{C: v.C & m, W: w}
	}
	return Value{C: v.C & m, S: sym.NewBin(sym.OpAnd, v.S, sym.NewConst(m, v.width())), W: w}
}

// Extend widens v to w bits (zero extension; the symbolic part is
// unchanged because values are unsigned).
func Extend(v Value, w int) Value {
	if w <= v.width() {
		return v
	}
	return Value{C: v.C, S: v.S, W: w}
}
