// Package minimize shrinks a finding's concrete witness announcement by
// delta debugging (Zeller's ddmin, specialized to the BGP UPDATE shape):
// drop AS-path entries, drop communities, zero optional attributes, and
// widen the prefix toward the coarsest still-failing span. Every
// candidate is re-validated by execution — the caller's Oracle re-injects
// it end to end (a COW shadow fabric in-process, the
// shadow_open/inject_witness/query_oracle RPC sequence distributed) and
// accepts the step only if the original violation still fires with the
// same attribution fingerprint. The paper's value to operators is a
// concrete, actionable witness; the minimal form strips everything the
// fault does not actually depend on.
package minimize

import (
	"fmt"
	"strings"

	"dice/internal/bgp"
	"dice/internal/netaddr"
)

// Oracle re-executes one candidate witness end to end and reports
// whether the target violation still fires with the same attribution.
// It must be deterministic: the loop's greedy accept/reject decisions —
// and with them the minimal witness — are replayed identically by the
// in-process and distributed backends only if the oracle is.
type Oracle func(candidate *bgp.Update) (bool, error)

// Options bounds the minimization loop.
type Options struct {
	// MaxCandidates bounds oracle invocations per witness (0 = 256).
	// Hitting the bound returns the best witness found so far — a
	// truncated minimization is still a valid (just not minimal) witness.
	MaxCandidates int
	// MinPrefixBits floors prefix widening (0 = 1: the loop never
	// proposes the /0 default route, which tests nothing an operator
	// could act on).
	MinPrefixBits int
}

func (o Options) maxCandidates() int {
	if o.MaxCandidates <= 0 {
		return 256
	}
	return o.MaxCandidates
}

func (o Options) minPrefixBits() int {
	if o.MinPrefixBits <= 0 {
		return 1
	}
	return o.MinPrefixBits
}

// Size measures a witness along the dimensions minimization shrinks.
// A minimal witness is never larger than the original in any of them.
type Size struct {
	// PathASNs counts AS numbers across all AS-path segments.
	PathASNs int
	// Communities counts community words.
	Communities int
	// PrefixBits is the announced prefix's length — fewer bits is a
	// coarser (wider) span, i.e. the least specific announcement that
	// still triggers the fault.
	PrefixBits int
	// OptionalAttrs counts set optional attributes (MED, LOCAL_PREF,
	// aggregation marks, unknown transitive attrs).
	OptionalAttrs int
}

// SizeOf measures u.
func SizeOf(u *bgp.Update) Size {
	s := Size{Communities: len(u.Attrs.Communities)}
	for _, seg := range u.Attrs.ASPath {
		s.PathASNs += len(seg.ASNs)
	}
	if len(u.NLRI) > 0 {
		s.PrefixBits = u.NLRI[0].Bits()
	}
	if u.Attrs.HasMED {
		s.OptionalAttrs++
	}
	if u.Attrs.HasLocalPref {
		s.OptionalAttrs++
	}
	if u.Attrs.AtomicAggregate {
		s.OptionalAttrs++
	}
	if u.Attrs.Aggregator != nil {
		s.OptionalAttrs++
	}
	s.OptionalAttrs += len(u.Attrs.Unknown)
	return s
}

// LargerThan reports whether s exceeds o in any dimension.
func (s Size) LargerThan(o Size) bool {
	return s.PathASNs > o.PathASNs || s.Communities > o.Communities ||
		s.PrefixBits > o.PrefixBits || s.OptionalAttrs > o.OptionalAttrs
}

// Stats accounts one or more minimization runs (Add merges them; the
// federated Result carries the per-target aggregate).
type Stats struct {
	// Witnesses is the number of witnesses minimized; Shrunk counts how
	// many came out strictly smaller than they went in.
	Witnesses int
	Shrunk    int
	// Candidates counts oracle re-injections; Accepted the ones that
	// preserved the violation and became the new witness.
	Candidates int
	Accepted   int
	// Per-dimension reductions across all witnesses.
	ASNsRemoved        int
	CommunitiesRemoved int
	PrefixBitsWidened  int
	AttrsCleared       int
	// Truncated counts witnesses whose loop hit MaxCandidates before
	// reaching a fixpoint.
	Truncated int
}

// Add merges o into s.
func (s *Stats) Add(o *Stats) {
	s.Witnesses += o.Witnesses
	s.Shrunk += o.Shrunk
	s.Candidates += o.Candidates
	s.Accepted += o.Accepted
	s.ASNsRemoved += o.ASNsRemoved
	s.CommunitiesRemoved += o.CommunitiesRemoved
	s.PrefixBitsWidened += o.PrefixBitsWidened
	s.AttrsCleared += o.AttrsCleared
	s.Truncated += o.Truncated
}

func (s *Stats) String() string {
	return fmt.Sprintf("%d witness(es) minimized (%d shrunk, %d truncated): %d/%d candidate injections accepted; removed %d AS-path entries, %d communities, %d optional attrs; widened %d prefix bits",
		s.Witnesses, s.Shrunk, s.Truncated, s.Accepted, s.Candidates,
		s.ASNsRemoved, s.CommunitiesRemoved, s.AttrsCleared, s.PrefixBitsWidened)
}

// clone deep-copies a single-announcement witness.
func clone(u *bgp.Update) *bgp.Update {
	return &bgp.Update{
		Attrs: u.Attrs.Clone(),
		NLRI:  append([]netaddr.Prefix(nil), u.NLRI...),
	}
}

// Witness delta-debugs w down to a (1-)minimal announcement that the
// oracle still confirms. The input witness itself is never mutated.
// Every accepted shrink step is oracle-confirmed by construction, and
// when no step was accepted the unmodified copy of w is re-confirmed
// before returning — EXCEPT on two paths where the caller's own prior
// confirmation is the only guarantee: a witness shape the loop does not
// understand (multi-NLRI or withdraw-carrying, returned untouched) and
// a candidate budget that exhausts before the re-confirmation runs.
// Callers minimizing a witness they did not just confirm (e.g. loaded
// from disk) should CheckWitness it first. Greedy passes repeat until a
// fixpoint: one removal can unlock another (a community kept a filter
// clause alive; dropping it lets the path shrink too).
func Witness(w *bgp.Update, oracle Oracle, opts Options) (*bgp.Update, *Stats, error) {
	st := &Stats{Witnesses: 1}
	if len(w.NLRI) != 1 || len(w.Withdrawn) != 0 {
		// Witness announcements carry exactly one prefix (WitnessKey and
		// the propagation path both assume it); anything else is not a
		// shape this loop understands — hand it back untouched.
		return clone(w), st, nil
	}
	cur := clone(w)

	// try re-executes one candidate and promotes it on success. The
	// error aborts the whole loop: an oracle failure is an injection
	// failure (a broken shadow or a dead agent), not a rejection.
	budgetErr := fmt.Errorf("minimize: candidate budget exhausted")
	try := func(cand *bgp.Update) (bool, error) {
		if st.Candidates >= opts.maxCandidates() {
			return false, budgetErr
		}
		st.Candidates++
		ok, err := oracle(cand)
		if err != nil {
			return false, err
		}
		if ok {
			st.Accepted++
			cur = cand
		}
		return ok, nil
	}

	var loopErr error
pass:
	for {
		changed := false

		// AS path: try dropping one ASN at a time, rightmost first (the
		// far end of the path is the part import policies test least).
		for si := len(cur.Attrs.ASPath) - 1; si >= 0; si-- {
			for ai := len(cur.Attrs.ASPath[si].ASNs) - 1; ai >= 0; ai-- {
				cand := clone(cur)
				seg := &cand.Attrs.ASPath[si]
				seg.ASNs = append(seg.ASNs[:ai:ai], seg.ASNs[ai+1:]...)
				if len(seg.ASNs) == 0 {
					cand.Attrs.ASPath = append(cand.Attrs.ASPath[:si:si], cand.Attrs.ASPath[si+1:]...)
				}
				ok, err := try(cand)
				if err != nil {
					loopErr = err
					break pass
				}
				if ok {
					st.ASNsRemoved++
					changed = true
				}
			}
		}

		// Communities: drop one word at a time.
		for ci := len(cur.Attrs.Communities) - 1; ci >= 0; ci-- {
			cand := clone(cur)
			cand.Attrs.Communities = append(cand.Attrs.Communities[:ci:ci], cand.Attrs.Communities[ci+1:]...)
			ok, err := try(cand)
			if err != nil {
				loopErr = err
				break pass
			}
			if ok {
				st.CommunitiesRemoved++
				changed = true
			}
		}

		// Optional attributes: zero each delta the witness carries. Each
		// step returns how many attrs it cleared (0 = already zero) so
		// Stats.AttrsCleared reconciles with the SizeOf dimension — the
		// aggregate pair and the Unknown list clear more than one.
		for _, zero := range []func(*bgp.Update) int{
			func(u *bgp.Update) int {
				if !u.Attrs.HasMED {
					return 0
				}
				u.Attrs.HasMED, u.Attrs.MED = false, 0
				return 1
			},
			func(u *bgp.Update) int {
				if !u.Attrs.HasLocalPref {
					return 0
				}
				u.Attrs.HasLocalPref, u.Attrs.LocalPref = false, 0
				return 1
			},
			func(u *bgp.Update) int {
				n := 0
				if u.Attrs.AtomicAggregate {
					n++
				}
				if u.Attrs.Aggregator != nil {
					n++
				}
				u.Attrs.AtomicAggregate, u.Attrs.Aggregator = false, nil
				return n
			},
			func(u *bgp.Update) int {
				n := len(u.Attrs.Unknown)
				u.Attrs.Unknown = nil
				return n
			},
		} {
			cand := clone(cur)
			cleared := zero(cand)
			if cleared == 0 {
				continue
			}
			ok, err := try(cand)
			if err != nil {
				loopErr = err
				break pass
			}
			if ok {
				st.AttrsCleared += cleared
				changed = true
			}
		}

		// Prefix: widen toward the coarsest still-failing span. Coarsest
		// first — the first accepted length IS the coarsest, so one
		// linear scan settles the dimension for this pass.
		curBits := cur.NLRI[0].Bits()
		for bits := opts.minPrefixBits(); bits < curBits; bits++ {
			cand := clone(cur)
			cand.NLRI[0] = netaddr.PrefixFrom(cand.NLRI[0].Addr(), bits)
			ok, err := try(cand)
			if err != nil {
				loopErr = err
				break pass
			}
			if ok {
				st.PrefixBitsWidened += curBits - bits
				changed = true
				break
			}
		}

		if !changed {
			break
		}
	}
	if loopErr == budgetErr {
		st.Truncated++
		loopErr = nil
	}
	if loopErr != nil {
		return nil, st, loopErr
	}
	if st.Accepted == 0 {
		// Nothing was removable; confirm the original itself so the
		// returned witness is always oracle-validated.
		if st.Candidates < opts.maxCandidates() {
			st.Candidates++
			ok, err := oracle(cur)
			if err != nil {
				return nil, st, err
			}
			if !ok {
				return nil, st, fmt.Errorf("minimize: original witness no longer triggers its violation")
			}
		}
	}
	if SizeOf(w).LargerThan(SizeOf(cur)) {
		st.Shrunk++
	}
	return cur, st, nil
}

// Render formats a witness canonically for golden files, parity checks
// and operator reports: prefix, AS path, communities and the surviving
// optional attributes, in a fixed order.
func Render(u *bgp.Update) string {
	var b strings.Builder
	if len(u.NLRI) > 0 {
		b.WriteString(u.NLRI[0].String())
	} else {
		b.WriteString("<no-nlri>")
	}
	b.WriteString(" path=[")
	first := true
	for _, seg := range u.Attrs.ASPath {
		for _, as := range seg.ASNs {
			if !first {
				b.WriteByte(' ')
			}
			first = false
			fmt.Fprintf(&b, "%d", as)
		}
	}
	b.WriteString("]")
	if len(u.Attrs.Communities) > 0 {
		b.WriteString(" communities=[")
		for i, c := range u.Attrs.Communities {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d:%d", c>>16, c&0xffff)
		}
		b.WriteString("]")
	}
	if u.Attrs.HasMED {
		fmt.Fprintf(&b, " med=%d", u.Attrs.MED)
	}
	if u.Attrs.HasLocalPref {
		fmt.Fprintf(&b, " local_pref=%d", u.Attrs.LocalPref)
	}
	if u.Attrs.AtomicAggregate || u.Attrs.Aggregator != nil {
		b.WriteString(" aggregate")
	}
	if n := len(u.Attrs.Unknown); n > 0 {
		fmt.Fprintf(&b, " unknown_attrs=%d", n)
	}
	return b.String()
}
