package minimize

import (
	"fmt"
	"strings"
	"testing"

	"dice/internal/bgp"
	"dice/internal/netaddr"
)

// fatWitness is a deliberately oversized announcement: a long AS path, a
// load-bearing community among junk ones, optional attributes, and an
// over-specific prefix.
func fatWitness() *bgp.Update {
	return &bgp.Update{
		Attrs: bgp.Attrs{
			HasOrigin:    true,
			Origin:       bgp.OriginIGP,
			ASPath:       bgp.ASPath{{Type: bgp.ASSequence, ASNs: []uint16{64799, 64801, 64802, 64803}}},
			HasNextHop:   true,
			NextHop:      netaddr.AddrFrom4(10, 8, 0, 1),
			HasMED:       true,
			MED:          50,
			HasLocalPref: true,
			LocalPref:    120,
			Communities:  []uint32{bgp.MakeCommunity(64799, 1), bgp.CommunityNoExport, bgp.MakeCommunity(64799, 2)},
		},
		NLRI: []netaddr.Prefix{netaddr.MustParsePrefix("10.96.128.0/28")},
	}
}

// needyOracle accepts candidates that keep the NO_EXPORT community, keep
// the first path ASN, and stay inside 10.96.0.0/11 at /20 or longer —
// the shape of a filter-gated route leak.
func needyOracle(calls *int) Oracle {
	gate := netaddr.MustParsePrefix("10.96.0.0/11")
	return func(c *bgp.Update) (bool, error) {
		*calls++
		if !c.Attrs.HasCommunity(bgp.CommunityNoExport) {
			return false, nil
		}
		if c.Attrs.ASPath.FirstAS() != 64799 {
			return false, nil
		}
		p := c.NLRI[0]
		return gate.Covers(p) && p.Bits() >= 20, nil
	}
}

func TestWitnessShrinksToNeeds(t *testing.T) {
	calls := 0
	w := fatWitness()
	min, st, err := Witness(w, needyOracle(&calls), Options{})
	if err != nil {
		t.Fatal(err)
	}

	// The load-bearing parts survive.
	if !min.Attrs.HasCommunity(bgp.CommunityNoExport) {
		t.Errorf("minimal witness lost NO_EXPORT: %s", Render(min))
	}
	if min.Attrs.ASPath.FirstAS() != 64799 {
		t.Errorf("minimal witness lost the first-hop AS: %s", Render(min))
	}

	// Everything the oracle does not test is gone.
	if got := SizeOf(min); got.PathASNs != 1 || got.Communities != 1 || got.OptionalAttrs != 0 {
		t.Errorf("minimal witness kept removable parts: %+v (%s)", got, Render(min))
	}
	if min.NLRI[0].Bits() != 20 {
		t.Errorf("prefix not widened to the coarsest still-failing /20: %s", min.NLRI[0])
	}
	if SizeOf(min).LargerThan(SizeOf(w)) {
		t.Errorf("minimal witness larger than the original: %s vs %s", Render(min), Render(w))
	}
	if st.Shrunk != 1 || st.Witnesses != 1 {
		t.Errorf("stats did not record the shrink: %+v", st)
	}
	if st.Candidates != calls {
		t.Errorf("stats count %d candidates, oracle saw %d", st.Candidates, calls)
	}

	// The original must be untouched — minimization works on copies.
	if SizeOf(w) != SizeOf(fatWitness()) {
		t.Errorf("input witness mutated: %s", Render(w))
	}
}

func TestWitnessIrreducibleConfirmsOriginal(t *testing.T) {
	w := &bgp.Update{
		Attrs: bgp.Attrs{
			ASPath:      bgp.ASPath{{Type: bgp.ASSequence, ASNs: []uint16{64799}}},
			Communities: []uint32{bgp.CommunityNoExport},
		},
		NLRI: []netaddr.Prefix{netaddr.MustParsePrefix("10.96.0.0/20")},
	}
	calls := 0
	min, st, err := Witness(w, needyOracle(&calls), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if Render(min) != Render(w) {
		t.Errorf("irreducible witness changed: %s vs %s", Render(min), Render(w))
	}
	if st.Shrunk != 0 {
		t.Errorf("irreducible witness counted as shrunk: %+v", st)
	}
	if st.Accepted != 0 || calls != st.Candidates {
		t.Errorf("unexpected accounting: %+v vs %d calls", st, calls)
	}
}

func TestWitnessVanishedViolationErrors(t *testing.T) {
	w := fatWitness()
	never := func(*bgp.Update) (bool, error) { return false, nil }
	if _, _, err := Witness(w, never, Options{}); err == nil {
		t.Fatal("want error when even the original witness no longer fires")
	}
}

func TestWitnessOracleErrorAborts(t *testing.T) {
	w := fatWitness()
	boom := fmt.Errorf("agent gone")
	fail := func(*bgp.Update) (bool, error) { return false, boom }
	if _, _, err := Witness(w, fail, Options{}); err == nil || !strings.Contains(err.Error(), "agent gone") {
		t.Fatalf("oracle error not propagated: %v", err)
	}
}

func TestWitnessBudgetTruncates(t *testing.T) {
	calls := 0
	min, st, err := Witness(fatWitness(), needyOracle(&calls), Options{MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates > 3 {
		t.Errorf("budget overrun: %d candidates", st.Candidates)
	}
	if st.Truncated != 1 {
		t.Errorf("truncation not recorded: %+v", st)
	}
	if min == nil {
		t.Error("truncated minimization returned no witness")
	}
}

func TestWitnessFixpointAcrossDimensions(t *testing.T) {
	// The community can be dropped only after the path shrinks to 2 hops
	// (a coupled predicate): one greedy pass over communities alone would
	// keep it, so the loop must re-pass after the path shrinks.
	oracle := func(c *bgp.Update) (bool, error) {
		pathLen := SizeOf(c).PathASNs
		if pathLen > 2 && !c.Attrs.HasCommunity(bgp.CommunityNoExport) {
			return false, nil
		}
		return c.Attrs.ASPath.FirstAS() == 64799, nil
	}
	min, _, err := Witness(fatWitness(), oracle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := SizeOf(min); got.Communities != 0 || got.PathASNs != 1 {
		t.Errorf("fixpoint not reached: %s", Render(min))
	}
}

func TestRenderCanonical(t *testing.T) {
	got := Render(fatWitness())
	want := "10.96.128.0/28 path=[64799 64801 64802 64803] communities=[64799:1 65535:65281 64799:2] med=50 local_pref=120"
	if got != want {
		t.Errorf("Render:\n got  %s\n want %s", got, want)
	}
}
