// Package prop implements DiCE's declarative property language: the
// operator-stated cross-node invariants the paper checks against live
// federated nodes. A property names an invariant kind, optionally guards
// on the witness announcement (`when`) and on the route a node actually
// installed (`at`), and asserts one cross-node condition — spatial
// (`never installed`, `never blackholed`, `never stale`, `never
// reachable via AS`) or temporal over the per-wave delivery tail
// (`eventually converges within N steps`, `always quiet after wave W`).
//
// The language is lexed by internal/filter's exported token machinery
// and its route predicates are internal/filter expressions evaluated by
// the same evaluator the routing policies use, so the two languages
// share one vocabulary, one set of line-numbered errors, and one set of
// unknown-node drift guards. Compiled properties evaluate over Facts —
// the witness-attributed pre/post observations both backends collect —
// producing the exact violations the previously hard-coded oracles did.
package prop

import (
	"fmt"
	"strings"

	"dice/internal/filter"
)

// ParseError is the property language's line-numbered syntax error. It
// is the filter package's error type with Lang set to "property".
type ParseError = filter.ParseError

// Expr is a boolean property predicate. FilterPred wraps a filter
// expression (shared vocabulary); BoundaryPred and ViaPred are
// property-only leaves that need topology context (the resolved
// no-export boundary community, the forwarding path).
type Expr interface {
	propExpr()
	String() string
}

// FilterPred embeds one filter-language expression, evaluated over the
// witness or installed route via filter.EvalConcrete.
type FilterPred struct{ E filter.Expr }

func (*FilterPred) propExpr()        {}
func (e *FilterPred) String() string { return e.E.String() }

// BoundaryPred is `community boundary`: the subject carries the
// topology's resolved no-export boundary community, whatever its value.
type BoundaryPred struct{}

func (*BoundaryPred) propExpr()        {}
func (e *BoundaryPred) String() string { return "community boundary" }

// ViaPred is `via N`: the subject's AS path contains AS N.
type ViaPred struct{ AS uint16 }

func (*ViaPred) propExpr()        {}
func (e *ViaPred) String() string { return fmt.Sprintf("via %d", e.AS) }

// NotPred negates a predicate.
type NotPred struct{ X Expr }

func (*NotPred) propExpr()        {}
func (e *NotPred) String() string { return "! " + e.X.String() }

// AndPred is conjunction.
type AndPred struct{ X, Y Expr }

func (*AndPred) propExpr()        {}
func (e *AndPred) String() string { return "(" + e.X.String() + " && " + e.Y.String() + ")" }

// OrPred is disjunction.
type OrPred struct{ X, Y Expr }

func (*OrPred) propExpr()        {}
func (e *OrPred) String() string { return "(" + e.X.String() + " || " + e.Y.String() + ")" }

// BoolPred is a literal true/false.
type BoolPred bool

func (BoolPred) propExpr() {}
func (b BoolPred) String() string {
	if bool(b) {
		return "true"
	}
	return "false"
}

// Assertion is the invariant a property states.
type Assertion interface {
	assertion()
	String() string
}

// ConvergesAssertion is `eventually converges [within N steps]`. With no
// bound it asserts convergence inside the experiment's propagation
// budget (the oscillation oracle); with a bound it additionally rejects
// slow convergence past N delivery steps.
type ConvergesAssertion struct{ Within int }

func (*ConvergesAssertion) assertion() {}
func (a *ConvergesAssertion) String() string {
	if a.Within > 0 {
		return fmt.Sprintf("eventually converges within %d steps", a.Within)
	}
	return "eventually converges"
}

// NeverInstalledAssertion is `never installed`: no node (beyond the
// injection pair) may adopt the witness as its best route.
type NeverInstalledAssertion struct{}

func (*NeverInstalledAssertion) assertion()     {}
func (*NeverInstalledAssertion) String() string { return "never installed" }

// NeverBlackholedAssertion is `never blackholed`: no node that installed
// the witness may forward-trace two or more hops into a dead end.
type NeverBlackholedAssertion struct{}

func (*NeverBlackholedAssertion) assertion()     {}
func (*NeverBlackholedAssertion) String() string { return "never blackholed" }

// NeverStaleAssertion is `never stale`: the witness route must not
// survive its own WITHDRAW anywhere it was installed.
type NeverStaleAssertion struct{}

func (*NeverStaleAssertion) assertion()     {}
func (*NeverStaleAssertion) String() string { return "never stale" }

// NeverViaAssertion is `never reachable via N`: no forwarding path from
// a node that installed the witness may traverse a router in AS N.
type NeverViaAssertion struct{ AS uint16 }

func (*NeverViaAssertion) assertion() {}
func (a *NeverViaAssertion) String() string {
	return fmt.Sprintf("never reachable via %d", a.AS)
}

// QuietAfterAssertion is `always quiet after wave N`: the UPDATE
// propagation must deliver nothing past its Nth virtual-time wave.
type QuietAfterAssertion struct{ Wave int }

func (*QuietAfterAssertion) assertion() {}
func (a *QuietAfterAssertion) String() string {
	return fmt.Sprintf("always quiet after wave %d", a.Wave)
}

// Property is one parsed property definition.
type Property struct {
	Name   string
	Kind   string    // violation kind this property reports as
	When   Expr      // witness guard; nil means always
	At     Expr      // installed-route predicate; nil means any route
	Assert Assertion // the invariant
}

// String renders canonical one-line source that reparses to an equal
// Property (the round-trip the fuzz tests pin).
func (p *Property) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "property %s { kind %q;", p.Name, p.Kind)
	if p.When != nil {
		fmt.Fprintf(&b, " when %s;", p.When)
	}
	if p.At != nil {
		fmt.Fprintf(&b, " at %s;", p.At)
	}
	fmt.Fprintf(&b, " assert %s; }", p.Assert)
	return b.String()
}
