package prop

import (
	"testing"
)

// FuzzParseProperty mirrors FuzzParseTopology for the property
// language: malformed source must produce a line-numbered *ParseError
// (never a panic), and anything that parses must print to canonical
// source that reparses to the same canonical form (parse → print is a
// fixpoint after one round).
func FuzzParseProperty(f *testing.F) {
	for _, seed := range builtinSources {
		f.Add(seed)
	}
	f.Add(`property p { kind "k"; when (net ~ 10.0.0.0/8{8,24} && ! community (65000,1)); at via 65002; assert never reachable via 65003; }`)
	f.Add(`property p { kind "k"; assert eventually converges within 7 steps; }`)
	f.Add(`property p { kind "k"; assert always quiet after wave 2; }`)
	f.Add(`property p { kind "k"; when origin = igp; assert never installed; }`)
	f.Add("property p {\n\tkind \"k\";\n\tassert never stale;\n}\nproperty q { kind \"q\"; assert never stale; }")
	f.Add(`property broken {`)
	f.Add(`not a property`)

	f.Fuzz(func(t *testing.T, src string) {
		ps, err := ParseAll(src)
		if err != nil {
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("error %T is not *ParseError: %v", err, err)
			}
			if pe.Line < 1 {
				t.Fatalf("error without a line number: %v", err)
			}
			return
		}
		for _, p := range ps {
			printed := p.String()
			again, err := Parse(printed)
			if err != nil {
				t.Fatalf("canonical print %q rejected: %v", printed, err)
			}
			if again.String() != printed {
				t.Fatalf("print not a fixpoint:\n first: %s\nsecond: %s", printed, again.String())
			}
			// Compilation must never panic either; errors are fine
			// (e.g. an `at` clause on a phase-scoped assertion).
			if c, err := Compile(p); err == nil && c.Source() != printed {
				t.Fatalf("compiled source %q differs from print %q", c.Source(), printed)
			}
		}
	})
}
