package prop

import (
	"fmt"
	"strconv"

	"dice/internal/filter"
	"dice/internal/netaddr"
)

// Parse parses exactly one `property name { ... }` definition.
func Parse(src string) (*Property, error) {
	ps, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(ps) != 1 {
		return nil, &ParseError{Line: 1, Lang: "property",
			Msg: fmt.Sprintf("expected exactly one property, found %d", len(ps))}
	}
	return ps[0], nil
}

// ParseAll parses a sequence of property definitions.
func ParseAll(src string) ([]*Property, error) {
	toks, err := filter.Lex(src)
	if err != nil {
		if pe, ok := err.(*ParseError); ok && pe.Lang == "" {
			pe.Lang = "property"
		}
		return nil, err
	}
	p := &parser{toks: toks}
	var out []*Property
	for p.peek().Kind != filter.TokEOF {
		pr, err := p.property()
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	return out, nil
}

type parser struct {
	toks []filter.Token
	pos  int
}

func (p *parser) peek() filter.Token { return p.toks[p.pos] }

func (p *parser) next() filter.Token {
	t := p.toks[p.pos]
	if t.Kind != filter.TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.peek().Line, Lang: "property", Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k filter.TokenKind, what string) (filter.Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, p.errf("expected %s, found %s", what, t)
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.Kind != filter.TokIdent || t.Text != kw {
		return p.errf("expected %q, found %s", kw, t)
	}
	p.next()
	return nil
}

func (p *parser) number(bits int) (uint64, error) {
	t, err := p.expect(filter.TokNumber, "number")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(t.Text, 10, bits)
	if err != nil {
		return 0, &ParseError{Line: t.Line, Lang: "property",
			Msg: fmt.Sprintf("bad number %q: %v", t.Text, err)}
	}
	return v, nil
}

// property := "property" IDENT "{" clause* "}"
// clause   := "kind" STRING ";" | "when" expr ";" | "at" expr ";"
//
//	| "assert" assertion ";"
func (p *parser) property() (*Property, error) {
	if err := p.expectKeyword("property"); err != nil {
		return nil, err
	}
	name, err := p.expect(filter.TokIdent, "property name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(filter.TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	pr := &Property{Name: name.Text}
	for p.peek().Kind != filter.TokRBrace {
		t := p.peek()
		if t.Kind == filter.TokEOF {
			return nil, p.errf("unterminated property %q", pr.Name)
		}
		if t.Kind != filter.TokIdent {
			return nil, p.errf("expected clause, found %s", t)
		}
		switch t.Text {
		case "kind":
			p.next()
			ks, err := p.expect(filter.TokString, "kind string")
			if err != nil {
				return nil, err
			}
			if pr.Kind != "" {
				return nil, p.errf("duplicate kind clause")
			}
			if !validKind(ks.Text) {
				return nil, &ParseError{Line: ks.Line, Lang: "property",
					Msg: fmt.Sprintf("bad kind %q: want letters, digits, '-', '_' or '.'", ks.Text)}
			}
			pr.Kind = ks.Text
		case "when":
			p.next()
			if pr.When != nil {
				return nil, p.errf("duplicate when clause")
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			pr.When = e
		case "at":
			p.next()
			if pr.At != nil {
				return nil, p.errf("duplicate at clause")
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			pr.At = e
		case "assert":
			p.next()
			if pr.Assert != nil {
				return nil, p.errf("duplicate assert clause")
			}
			a, err := p.assertion()
			if err != nil {
				return nil, err
			}
			pr.Assert = a
		default:
			return nil, p.errf("unknown clause %q", t.Text)
		}
		if _, err := p.expect(filter.TokSemi, "';'"); err != nil {
			return nil, err
		}
	}
	if pr.Kind == "" {
		return nil, p.errf("property %q has no kind clause", pr.Name)
	}
	if pr.Assert == nil {
		return nil, p.errf("property %q has no assert clause", pr.Name)
	}
	p.next() // consume }
	return pr, nil
}

// validKind restricts kind strings to characters %q renders verbatim, so
// Property.String reparses to an equal Property.
func validKind(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '-' || c == '_' || c == '.' ||
			c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			continue
		}
		return false
	}
	return true
}

// assertion := "eventually" "converges" ("within" N "steps")?
//
//	| "never" ("installed" | "blackholed" | "stale" | "reachable" "via" N)
//	| "always" "quiet" "after" "wave" N
func (p *parser) assertion() (Assertion, error) {
	t := p.peek()
	if t.Kind != filter.TokIdent {
		return nil, p.errf("expected assertion, found %s", t)
	}
	switch t.Text {
	case "eventually":
		p.next()
		if err := p.expectKeyword("converges"); err != nil {
			return nil, err
		}
		a := &ConvergesAssertion{}
		if w := p.peek(); w.Kind == filter.TokIdent && w.Text == "within" {
			p.next()
			n, err := p.number(31)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				return nil, p.errf("within bound must be positive")
			}
			if err := p.expectKeyword("steps"); err != nil {
				return nil, err
			}
			a.Within = int(n)
		}
		return a, nil
	case "never":
		p.next()
		t2 := p.peek()
		if t2.Kind != filter.TokIdent {
			return nil, p.errf("expected assertion after never, found %s", t2)
		}
		switch t2.Text {
		case "installed":
			p.next()
			return &NeverInstalledAssertion{}, nil
		case "blackholed":
			p.next()
			return &NeverBlackholedAssertion{}, nil
		case "stale":
			p.next()
			return &NeverStaleAssertion{}, nil
		case "reachable":
			p.next()
			if err := p.expectKeyword("via"); err != nil {
				return nil, err
			}
			n, err := p.number(16)
			if err != nil {
				return nil, err
			}
			return &NeverViaAssertion{AS: uint16(n)}, nil
		}
		return nil, p.errf("unknown assertion %q after never", t2.Text)
	case "always":
		p.next()
		if err := p.expectKeyword("quiet"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("after"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("wave"); err != nil {
			return nil, err
		}
		n, err := p.number(31)
		if err != nil {
			return nil, err
		}
		return &QuietAfterAssertion{Wave: int(n)}, nil
	}
	return nil, p.errf("unknown assertion %q", t.Text)
}

// expr := andExpr ("||" andExpr)*
func (p *parser) expr() (Expr, error) {
	x, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == filter.TokOr {
		p.next()
		y, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		x = &OrPred{X: x, Y: y}
	}
	return x, nil
}

// andExpr := unary ("&&" unary)*
func (p *parser) andExpr() (Expr, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == filter.TokAnd {
		p.next()
		y, err := p.unary()
		if err != nil {
			return nil, err
		}
		x = &AndPred{X: x, Y: y}
	}
	return x, nil
}

// unary := "!" unary | primary
func (p *parser) unary() (Expr, error) {
	if p.peek().Kind == filter.TokNot {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &NotPred{X: x}, nil
	}
	return p.primary()
}

// primary := "(" expr ")" | "true" | "false"
//
//	| "community" "boundary" | "community" "(" n "," n ")"
//	| "via" N
//	| "net" "~" CIDR ("{" n "," n "}")?
//	| field cmpOp value
func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == filter.TokLParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(filter.TokRParen, "')'"); err != nil {
			return nil, err
		}
		return x, nil
	case t.Kind == filter.TokIdent && t.Text == "true":
		p.next()
		return BoolPred(true), nil
	case t.Kind == filter.TokIdent && t.Text == "false":
		p.next()
		return BoolPred(false), nil
	case t.Kind == filter.TokIdent && t.Text == "community":
		p.next()
		if b := p.peek(); b.Kind == filter.TokIdent && b.Text == "boundary" {
			p.next()
			return &BoundaryPred{}, nil
		}
		if _, err := p.expect(filter.TokLParen, "'(' or 'boundary'"); err != nil {
			return nil, err
		}
		as, err := p.number(16)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(filter.TokComma, "','"); err != nil {
			return nil, err
		}
		val, err := p.number(16)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(filter.TokRParen, "')'"); err != nil {
			return nil, err
		}
		return &FilterPred{E: &filter.CommunityExpr{AS: uint16(as), Value: uint16(val)}}, nil
	case t.Kind == filter.TokIdent && t.Text == "via":
		p.next()
		n, err := p.number(16)
		if err != nil {
			return nil, err
		}
		return &ViaPred{AS: uint16(n)}, nil
	case t.Kind == filter.TokIdent:
		field, ok := filter.FieldByName(t.Text)
		if !ok {
			return nil, p.errf("unknown field %q", t.Text)
		}
		p.next()
		op := p.peek()
		if field == filter.FieldNet {
			if op.Kind != filter.TokTilde {
				return nil, p.errf("net supports only '~', found %s", op)
			}
			p.next()
			return p.matchExpr()
		}
		var cmp filter.CmpKind
		switch op.Kind {
		case filter.TokEq:
			cmp = filter.CmpEq
		case filter.TokNe:
			cmp = filter.CmpNe
		case filter.TokLt:
			cmp = filter.CmpLt
		case filter.TokLe:
			cmp = filter.CmpLe
		case filter.TokGt:
			cmp = filter.CmpGt
		case filter.TokGe:
			cmp = filter.CmpGe
		default:
			return nil, p.errf("expected comparison operator, found %s", op)
		}
		p.next()
		// Origin comparisons accept symbolic names, like filter programs.
		if field == filter.FieldOrigin && p.peek().Kind == filter.TokIdent {
			name := p.next().Text
			var v uint64
			switch name {
			case "igp":
				v = 0
			case "egp":
				v = 1
			case "incomplete":
				v = 2
			default:
				return nil, p.errf("unknown origin %q", name)
			}
			return &FilterPred{E: &filter.CmpExpr{Field: field, Op: cmp, Value: v}}, nil
		}
		v, err := p.number(32)
		if err != nil {
			return nil, err
		}
		return &FilterPred{E: &filter.CmpExpr{Field: field, Op: cmp, Value: v}}, nil
	}
	return nil, p.errf("expected predicate, found %s", t)
}

// matchExpr parses the right side of `net ~`: CIDR with optional {lo,hi}.
func (p *parser) matchExpr() (Expr, error) {
	t, err := p.expect(filter.TokCIDR, "prefix literal")
	if err != nil {
		return nil, err
	}
	pref, perr := netaddr.ParsePrefix(t.Text)
	if perr != nil {
		return nil, &ParseError{Line: t.Line, Lang: "property", Msg: perr.Error()}
	}
	lo, hi := pref.Bits(), 32
	if p.peek().Kind == filter.TokLBrace {
		p.next()
		loV, err := p.number(8)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(filter.TokComma, "','"); err != nil {
			return nil, err
		}
		hiV, err := p.number(8)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(filter.TokRBrace, "'}'"); err != nil {
			return nil, err
		}
		lo, hi = int(loV), int(hiV)
		if lo < pref.Bits() || hi > 32 || lo > hi {
			return nil, p.errf("bad length range {%d,%d} for %s", lo, hi, pref)
		}
	}
	return &FilterPred{E: &filter.MatchExpr{Prefix: pref, LoLen: lo, HiLen: hi}}, nil
}
