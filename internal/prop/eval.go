package prop

import (
	"fmt"

	"dice/internal/bgp"
	"dice/internal/filter"
	"dice/internal/netaddr"
)

// Env is what a property predicate evaluates against: one route (the
// witness announcement for `when`, a node's installed best route for
// `at`) lifted into the filter evaluator's Subject, plus the
// property-only context — the flattened AS path for `via` and the
// topology's resolved boundary community for `community boundary`.
type Env struct {
	Subject  *filter.Subject
	ASNs     []uint16
	Boundary uint32
}

// NewEnv lifts concrete route data into an Env.
func NewEnv(prefix netaddr.Prefix, attrs *bgp.Attrs, boundary uint32) *Env {
	var asns []uint16
	for _, seg := range attrs.ASPath {
		asns = append(asns, seg.ASNs...)
	}
	return &Env{Subject: filter.SubjectFromRoute(prefix, attrs), ASNs: asns, Boundary: boundary}
}

// evalExpr evaluates a property predicate over env. Filter leaves go
// through filter.EvalConcrete so both languages share one evaluator.
func evalExpr(e Expr, env *Env) bool {
	switch t := e.(type) {
	case BoolPred:
		return bool(t)
	case *NotPred:
		return !evalExpr(t.X, env)
	case *AndPred:
		return evalExpr(t.X, env) && evalExpr(t.Y, env)
	case *OrPred:
		return evalExpr(t.X, env) || evalExpr(t.Y, env)
	case *FilterPred:
		return filter.EvalConcrete(t.E, env.Subject)
	case *BoundaryPred:
		for _, c := range env.Subject.Communities {
			if c == env.Boundary {
				return true
			}
		}
		return false
	case *ViaPred:
		for _, as := range env.ASNs {
			if as == t.AS {
				return true
			}
		}
		return false
	}
	// Compile rejects unknown nodes up front; reaching here means AST
	// drift inside this package. Same loud-failure rule as the filter
	// evaluator: never miscompile a predicate to false.
	panic(fmt.Sprintf("prop: unhandled predicate node %T", e))
}

// Phase is one propagation phase's telemetry (UPDATE or WITHDRAW): how
// many delivery steps ran, how many deliveries were still pending when
// the step budget hit (0 means converged), and the per-wave delivery
// counts.
type Phase struct {
	Steps   int
	Pending int
	Waves   []int
}

// NodeFacts describes one node (beyond the injection pair) that
// installed the witness as its best route, plus its forward trace.
// Route carries the installed route for `at` predicates when the
// backend observes it directly (in-process); AtMatch carries per-
// property `at` verdicts answered remotely (distributed query_oracle),
// indexed like the property list passed to Evaluate. With neither, `at`
// clauses conservatively match.
type NodeFacts struct {
	Name      string
	Hops      int
	Terminal  string
	Delivered bool
	Path      []string // forward-trace node names, origin first, terminal last
	Route     *Env
	AtMatch   []bool
}

// Facts is everything a witness check observed, in collection order:
// UPDATE propagation, per-node installation + forward traces, WITHDRAW
// propagation, surviving stale nodes. Both backends fill one of these
// and hand it to Evaluate, which is the entire oracle logic — so the
// backends cannot drift.
type Facts struct {
	Node     string // injection target (the node the witness was sent to)
	Peer     string // injecting peer
	Boundary uint32 // resolved no-export boundary community
	MaxSteps int    // per-phase propagation step budget
	Witness  *Env   // the witness announcement, for `when` guards

	Update Phase
	Nodes  []NodeFacts // sorted by name; only witness-installed nodes

	// Withdraw phase facts are meaningful only when Update converged
	// (collection stops early otherwise, like the original oracles).
	Withdraw Phase
	Stale    []string // sorted node names where the witness survived WITHDRAW

	// NodeAS resolves a node name to its AS number for `never reachable
	// via` assertions; nil disables via checks.
	NodeAS func(name string) (uint16, bool)
}

// Violation is one property violation. The caller owns witness
// attribution (source node, peer, prefix); Evaluate reports the
// violating node and rendered detail.
type Violation struct {
	Kind     string
	Node     string
	Hops     int
	Detail   string
	Waves    int
	WaveTail []int
}

// WaveTailLen bounds the per-wave delivery counts kept on a
// persistent-oscillation violation: the tail is what distinguishes
// genuine divergence from slow convergence, so only the final waves are
// retained.
const WaveTailLen = 8

// WaveTail returns the final (up to WaveTailLen) entries of waves.
// Shared by both backends so their oscillation verdicts render — and
// compare — identically.
func WaveTail(waves []int) []int {
	if len(waves) > WaveTailLen {
		waves = waves[len(waves)-WaveTailLen:]
	}
	return append([]int(nil), waves...)
}

// OscillationDetail renders the bounded-propagation verdict one way for
// both backends (the parity tests compare violation strings verbatim).
func OscillationDetail(phase string, maxSteps, pending int, waves []int) string {
	return fmt.Sprintf("%s after %d propagation steps (%d deliveries still pending); %d waves, tail deliveries %v",
		phase, maxSteps, pending, len(waves), WaveTail(waves))
}

// RouteLeakDetail renders the boundary-escape verdict — the exact
// string the hard-coded route-leak oracle produced, emitted when a
// `never installed` property is guarded by `when community boundary`.
func RouteLeakDetail(boundary uint32, source, at string) string {
	return fmt.Sprintf("advertisement carrying the no-export community (%d:%d) escaped AS boundary %s and was installed at %s",
		boundary>>16, boundary&0xffff, source, at)
}

// BlackholeDetail renders the forward-trace dead-end verdict.
func BlackholeDetail(from string, hops int, terminal string) string {
	return fmt.Sprintf("traffic from %s forward-traces %d hops and dead-ends at %s", from, hops, terminal)
}

// StaleDetail renders the survived-WITHDRAW verdict over the sorted
// stale node list.
func StaleDetail(stale []string) string {
	return fmt.Sprintf("witness route survived its own WITHDRAW at %v", stale)
}

// Evaluate runs every property over the collected facts, in four stages
// that reproduce the hard-coded oracle order exactly: (1) UPDATE
// convergence — when deliveries are still pending, only convergence
// assertions fire and evaluation stops (the remaining facts would be
// mid-churn noise); (2) temporal assertions over the converged UPDATE
// propagation; (3) per-node spatial assertions, nodes outer and
// properties inner, so one node's violations group together; (4)
// WITHDRAW convergence, then staleness. Within a stage, properties
// apply in list order — Merge puts the builtin kinds first, which is
// what makes property-produced snapshots byte-identical to the
// originals.
func Evaluate(props []*Compiled, f *Facts) []Violation {
	var out []Violation
	holds := make([]bool, len(props))
	for i, c := range props {
		holds[i] = c.WhenHolds(f.Witness)
	}

	if f.Update.Pending > 0 {
		for i, c := range props {
			if !holds[i] {
				continue
			}
			if _, ok := c.Assert.(*ConvergesAssertion); ok {
				out = append(out, Violation{
					Kind: c.Kind, Node: f.Node,
					Detail: OscillationDetail("no convergence", f.MaxSteps, f.Update.Pending, f.Update.Waves),
					Waves:  len(f.Update.Waves), WaveTail: WaveTail(f.Update.Waves),
				})
			}
		}
		return out
	}

	for i, c := range props {
		if !holds[i] {
			continue
		}
		switch a := c.Assert.(type) {
		case *ConvergesAssertion:
			if a.Within > 0 && f.Update.Steps > a.Within {
				out = append(out, Violation{
					Kind: c.Kind, Node: f.Node,
					Detail: fmt.Sprintf("converged in %d propagation steps, exceeding the %d-step bound; %d waves, tail deliveries %v",
						f.Update.Steps, a.Within, len(f.Update.Waves), WaveTail(f.Update.Waves)),
					Waves: len(f.Update.Waves), WaveTail: WaveTail(f.Update.Waves),
				})
			}
		case *QuietAfterAssertion:
			if len(f.Update.Waves) > a.Wave {
				out = append(out, Violation{
					Kind: c.Kind, Node: f.Node,
					Detail: fmt.Sprintf("deliveries continued past wave %d: %d waves, tail deliveries %v",
						a.Wave, len(f.Update.Waves), WaveTail(f.Update.Waves)),
					Waves: len(f.Update.Waves), WaveTail: WaveTail(f.Update.Waves),
				})
			}
		}
	}

	for ni := range f.Nodes {
		n := &f.Nodes[ni]
		for i, c := range props {
			if !holds[i] || !atMatches(c, i, n) {
				continue
			}
			switch a := c.Assert.(type) {
			case *NeverInstalledAssertion:
				detail := fmt.Sprintf("witness route was installed at %s, forbidden by property %s", n.Name, c.Name)
				if c.boundaryWhen {
					detail = RouteLeakDetail(f.Boundary, f.Node, n.Name)
				}
				out = append(out, Violation{Kind: c.Kind, Node: n.Name, Hops: n.Hops, Detail: detail})
			case *NeverBlackholedAssertion:
				if !n.Delivered && n.Hops >= 2 {
					out = append(out, Violation{
						Kind: c.Kind, Node: n.Name, Hops: n.Hops,
						Detail: BlackholeDetail(n.Name, n.Hops, n.Terminal),
					})
				}
			case *NeverViaAssertion:
				if f.NodeAS == nil {
					continue
				}
				for _, hop := range n.Path {
					if as, ok := f.NodeAS(hop); ok && as == a.AS {
						out = append(out, Violation{
							Kind: c.Kind, Node: n.Name, Hops: n.Hops,
							Detail: fmt.Sprintf("forwarding path from %s traverses %s (AS %d), forbidden by property %s",
								n.Name, hop, a.AS, c.Name),
						})
						break
					}
				}
			}
		}
	}

	if f.Withdraw.Pending > 0 {
		for i, c := range props {
			if !holds[i] {
				continue
			}
			if _, ok := c.Assert.(*ConvergesAssertion); ok {
				out = append(out, Violation{
					Kind: c.Kind, Node: f.Node,
					Detail: OscillationDetail("WITHDRAW did not converge", f.MaxSteps, f.Withdraw.Pending, f.Withdraw.Waves),
					Waves:  len(f.Withdraw.Waves), WaveTail: WaveTail(f.Withdraw.Waves),
				})
			}
		}
		return out
	}

	if len(f.Stale) > 0 {
		for i, c := range props {
			if !holds[i] {
				continue
			}
			if _, ok := c.Assert.(*NeverStaleAssertion); ok {
				out = append(out, Violation{Kind: c.Kind, Node: f.Stale[0], Detail: StaleDetail(f.Stale)})
			}
		}
	}
	return out
}

// atMatches evaluates a property's `at` predicate over one node's
// installed route, preferring the directly observed route, then the
// remotely answered verdict, then a conservative match.
func atMatches(c *Compiled, idx int, n *NodeFacts) bool {
	if c.At == nil {
		return true
	}
	if n.Route != nil {
		return evalExpr(c.At, n.Route)
	}
	if idx < len(n.AtMatch) {
		return n.AtMatch[idx]
	}
	return true
}
