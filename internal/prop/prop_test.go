package prop

import (
	"strings"
	"testing"

	"dice/internal/bgp"
	"dice/internal/netaddr"
)

func mustParse(t *testing.T, src string) *Property {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func mustCompile(t *testing.T, src string) *Compiled {
	t.Helper()
	c, err := Compile(mustParse(t, src))
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return c
}

func mustPrefix(t *testing.T, s string) netaddr.Prefix {
	t.Helper()
	p, err := netaddr.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		`property p1 { kind "route-leak"; when community boundary; assert never installed; }`,
		`property p2 { kind "stale-route"; assert never stale; }`,
		`property p3 { kind "slow"; assert eventually converges within 64 steps; }`,
		`property p4 { kind "osc"; assert eventually converges; }`,
		`property p5 { kind "quiet"; assert always quiet after wave 3; }`,
		`property p6 { kind "avoid"; assert never reachable via 65003; }`,
		`property p7 { kind "scoped"; when (net ~ 10.0.0.0/8{8,32} && ! community (65000,1)); at local_pref >= 200; assert never blackholed; }`,
		`property p8 { kind "guarded"; when (via 65001 || bgp_path.len > 3); assert never installed; }`,
		`property p9 { kind "orig"; when origin = 0; assert never installed; }`,
		`property p10 { kind "lit"; when true; at false; assert never installed; }`,
	}
	for _, src := range srcs {
		p := mustParse(t, src)
		printed := p.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", printed, err)
		}
		if p2.String() != printed {
			t.Fatalf("round trip not stable:\n first: %s\nsecond: %s", printed, p2.String())
		}
	}
}

func TestParseErrorsCarryLines(t *testing.T) {
	cases := []struct {
		src  string
		line int
		want string
	}{
		{"property p {\n kind 42;\n}", 2, "kind string"},
		{"property p { kind \"x\";\nassert never flies; }", 2, "unknown assertion"},
		{"property p { kind \"x\"; assert never stale; kind \"y\"; }", 1, "duplicate kind"},
		{"property p { assert never stale; }", 1, "no kind clause"},
		{"property p { kind \"x\"; }", 1, "no assert clause"},
		{"property p { kind \"x\"; when med @ 3; assert never stale; }", 1, "unexpected character"},
		{"property p { kind \"x\"; when fuel > 3; assert never stale; }", 1, "unknown field"},
		{"property p { kind \"bad kind\"; assert never stale; }", 1, "bad kind"},
		{"property p { kind \"x\"; assert eventually converges within 0 steps; }", 1, "must be positive"},
		{"property p { kind \"x\"; assert never stale;", 1, "unterminated"},
	}
	for _, tc := range cases {
		_, err := ParseAll(tc.src)
		if err == nil {
			t.Fatalf("ParseAll(%q): no error", tc.src)
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Fatalf("ParseAll(%q): error %T is not *ParseError", tc.src, err)
		}
		if pe.Line != tc.line {
			t.Errorf("ParseAll(%q): line %d, want %d", tc.src, pe.Line, tc.line)
		}
		if !strings.Contains(pe.Msg, tc.want) {
			t.Errorf("ParseAll(%q): msg %q, want containing %q", tc.src, pe.Msg, tc.want)
		}
		if !strings.HasPrefix(pe.Error(), "property: ") {
			t.Errorf("ParseAll(%q): error %q lacks property prefix", tc.src, pe.Error())
		}
	}
}

func TestCompileRejects(t *testing.T) {
	// An `at` clause on a non-node-scoped assertion is meaningless.
	p := mustParse(t, `property p { kind "x"; at med = 1; assert never stale; }`)
	if _, err := Compile(p); err == nil || !strings.Contains(err.Error(), "node-scoped") {
		t.Fatalf("Compile accepted at+stale: %v", err)
	}
	// Unknown predicate nodes are config errors, not silent false.
	type bogus struct{ Expr }
	p = mustParse(t, `property p { kind "x"; when true; assert never installed; }`)
	p.When = bogus{}
	if _, err := Compile(p); err == nil || !strings.Contains(err.Error(), "unhandled predicate node") {
		t.Fatalf("Compile accepted bogus predicate: %v", err)
	}
}

func witnessEnv(t *testing.T, communities []uint32, path []uint16) *Env {
	t.Helper()
	attrs := &bgp.Attrs{
		ASPath:      bgp.ASPath{{Type: bgp.ASSequence, ASNs: path}},
		Communities: communities,
	}
	return NewEnv(mustPrefix(t, "10.9.0.0/16"), attrs, bgp.MakeCommunity(65000, 999))
}

func TestPredicateEvaluation(t *testing.T) {
	env := witnessEnv(t, []uint32{bgp.MakeCommunity(65000, 999), 7}, []uint16{65002, 65001})
	cases := []struct {
		src  string
		want bool
	}{
		{`when community boundary`, true},
		{`when community (65000,999)`, true},
		{`when community (65000,998)`, false},
		{`when via 65001`, true},
		{`when via 65009`, false},
		{`when bgp_path.len = 2`, true},
		{`when net ~ 10.0.0.0/8`, true},
		{`when net ~ 11.0.0.0/8`, false},
		{`when (via 65001 && ! community (1,1))`, true},
		{`when (false || net.len >= 16)`, true},
	}
	for _, tc := range cases {
		c := mustCompile(t, `property p { kind "x"; `+tc.src+`; assert never installed; }`)
		if got := c.WhenHolds(env); got != tc.want {
			t.Errorf("%s: WhenHolds=%v, want %v", tc.src, got, tc.want)
		}
	}
	// Boundary predicate misses when the witness lacks the community.
	bare := witnessEnv(t, nil, []uint16{65002})
	c := mustCompile(t, `property p { kind "x"; when community boundary; assert never installed; }`)
	if c.WhenHolds(bare) {
		t.Error("boundary guard held without the boundary community")
	}
}

func factsFixture(t *testing.T) *Facts {
	boundary := bgp.MakeCommunity(65000, 999)
	return &Facts{
		Node: "r1", Peer: "ext", Boundary: boundary, MaxSteps: 64,
		Witness: witnessEnv(t, []uint32{boundary}, []uint16{65002}),
		Update:  Phase{Steps: 12, Waves: []int{4, 4, 4}},
		Nodes: []NodeFacts{
			{Name: "r2", Hops: 1, Terminal: "r1", Delivered: true, Path: []string{"r2", "r1"}},
			{Name: "r3", Hops: 2, Terminal: "r9", Delivered: false, Path: []string{"r3", "r2", "r9"}},
		},
		Withdraw: Phase{Steps: 6, Waves: []int{3, 3}},
		Stale:    []string{"r2", "r3"},
		NodeAS: func(name string) (uint16, bool) {
			switch name {
			case "r2":
				return 65002, true
			case "r9":
				return 65009, true
			}
			return 0, false
		},
	}
}

// TestEvaluateBuiltins pins the builtin oracle behaviors — and their
// exact detail strings — against a hand-built fact set.
func TestEvaluateBuiltins(t *testing.T) {
	f := factsFixture(t)
	vs := Evaluate(Builtins(), f)
	if len(vs) != 4 {
		t.Fatalf("got %d violations, want 4: %+v", len(vs), vs)
	}
	leak1, leak2, hole, stale := vs[0], vs[1], vs[2], vs[3]
	if leak1.Kind != "route-leak" || leak1.Node != "r2" ||
		leak1.Detail != RouteLeakDetail(f.Boundary, "r1", "r2") {
		t.Errorf("leak1 = %+v", leak1)
	}
	if leak2.Kind != "route-leak" || leak2.Node != "r3" {
		t.Errorf("leak2 = %+v", leak2)
	}
	if hole.Kind != "multi-hop-blackhole" || hole.Node != "r3" || hole.Hops != 2 ||
		hole.Detail != "traffic from r3 forward-traces 2 hops and dead-ends at r9" {
		t.Errorf("hole = %+v", hole)
	}
	if stale.Kind != "stale-route" || stale.Node != "r2" ||
		stale.Detail != "witness route survived its own WITHDRAW at [r2 r3]" {
		t.Errorf("stale = %+v", stale)
	}

	// Without the boundary community the route-leak guard gates out.
	f.Witness = witnessEnv(t, nil, []uint16{65002})
	vs = Evaluate(Builtins(), f)
	for _, v := range vs {
		if v.Kind == "route-leak" {
			t.Fatalf("route-leak fired without boundary community: %+v", v)
		}
	}
}

func TestEvaluateOscillationShortCircuits(t *testing.T) {
	f := factsFixture(t)
	f.Update.Pending = 3
	vs := Evaluate(Builtins(), f)
	if len(vs) != 1 || vs[0].Kind != "persistent-oscillation" || vs[0].Node != "r1" {
		t.Fatalf("got %+v, want single oscillation at r1", vs)
	}
	if vs[0].Detail != OscillationDetail("no convergence", 64, 3, f.Update.Waves) {
		t.Errorf("detail = %q", vs[0].Detail)
	}

	f = factsFixture(t)
	f.Withdraw.Pending = 2
	vs = Evaluate(Builtins(), f)
	last := vs[len(vs)-1]
	if last.Kind != "persistent-oscillation" ||
		last.Detail != OscillationDetail("WITHDRAW did not converge", 64, 2, f.Withdraw.Waves) {
		t.Fatalf("got %+v, want withdraw oscillation last", vs)
	}
	for _, v := range vs {
		if v.Kind == "stale-route" {
			t.Error("stale fired while WITHDRAW had pending deliveries")
		}
	}
}

func TestEvaluateTemporalAssertions(t *testing.T) {
	f := factsFixture(t)
	props := []*Compiled{
		mustCompile(t, `property fast { kind "slow-convergence"; assert eventually converges within 10 steps; }`),
		mustCompile(t, `property calm { kind "noisy"; assert always quiet after wave 2; }`),
		mustCompile(t, `property roomy { kind "fine"; assert eventually converges within 100 steps; }`),
		mustCompile(t, `property loose { kind "fine2"; assert always quiet after wave 3; }`),
	}
	vs := Evaluate(props, f)
	if len(vs) != 2 {
		t.Fatalf("got %+v, want slow-convergence and noisy", vs)
	}
	if vs[0].Kind != "slow-convergence" || !strings.Contains(vs[0].Detail, "exceeding the 10-step bound") {
		t.Errorf("vs[0] = %+v", vs[0])
	}
	if vs[1].Kind != "noisy" || !strings.Contains(vs[1].Detail, "past wave 2") {
		t.Errorf("vs[1] = %+v", vs[1])
	}
}

func TestEvaluateViaAndAt(t *testing.T) {
	f := factsFixture(t)
	props := []*Compiled{
		mustCompile(t, `property avoid { kind "via-leak"; assert never reachable via 65009; }`),
	}
	vs := Evaluate(props, f)
	if len(vs) != 1 || vs[0].Node != "r3" || !strings.Contains(vs[0].Detail, "traverses r9 (AS 65009)") {
		t.Fatalf("via: got %+v", vs)
	}

	// `at` over the installed route: only nodes whose route matches fire.
	f.Nodes[0].Route = witnessEnv(t, []uint32{bgp.MakeCommunity(2, 2)}, []uint16{65002})
	f.Nodes[1].Route = witnessEnv(t, nil, []uint16{65002})
	props = []*Compiled{
		mustCompile(t, `property tagged { kind "tagged-install"; at community (2,2); assert never installed; }`),
	}
	vs = Evaluate(props, f)
	if len(vs) != 1 || vs[0].Node != "r2" {
		t.Fatalf("at: got %+v", vs)
	}

	// Remote AtMatch verdicts substitute when the route is not local.
	f.Nodes[0].Route, f.Nodes[1].Route = nil, nil
	f.Nodes[0].AtMatch = []bool{false}
	f.Nodes[1].AtMatch = []bool{true}
	vs = Evaluate(props, f)
	if len(vs) != 1 || vs[0].Node != "r3" {
		t.Fatalf("AtMatch: got %+v", vs)
	}
}

func TestMerge(t *testing.T) {
	base := Builtins()
	if len(base) != 4 {
		t.Fatalf("Builtins() = %d entries", len(base))
	}
	wantKinds := []string{"persistent-oscillation", "route-leak", "multi-hop-blackhole", "stale-route"}
	for i, c := range base {
		if c.Kind != wantKinds[i] {
			t.Errorf("builtin[%d].Kind = %q, want %q", i, c.Kind, wantKinds[i])
		}
	}

	repl := mustCompile(t, BuiltinRouteLeakSource)
	extra := mustCompile(t, `property avoid { kind "via-leak"; assert never reachable via 65009; }`)
	merged := Merge([]*Compiled{extra, repl})
	if len(merged) != 5 {
		t.Fatalf("merged = %d entries", len(merged))
	}
	if merged[1] != repl {
		t.Error("custom route-leak did not replace the builtin in place")
	}
	if merged[4] != extra {
		t.Error("new-kind custom property did not append")
	}
	for i, want := range wantKinds {
		if merged[i].Kind != want {
			t.Errorf("merged[%d].Kind = %q, want %q", i, merged[i].Kind, want)
		}
	}
}

// TestBundledSourcesMatchBuiltins pins that the embedded .prop files ARE
// the builtin route-leak and stale-route oracles: loading them as
// operator properties swaps in equal definitions, which is what makes
// the golden-parity guarantee hold by construction.
func TestBundledSourcesMatchBuiltins(t *testing.T) {
	base := Builtins()
	leak := mustCompile(t, BuiltinRouteLeakSource)
	stale := mustCompile(t, BuiltinStaleRouteSource)
	if leak.Source() != base[1].Source() || leak.Kind != "route-leak" {
		t.Errorf("route_leak.prop compiles to %q, builtin is %q", leak.Source(), base[1].Source())
	}
	if stale.Source() != base[3].Source() || stale.Kind != "stale-route" {
		t.Errorf("stale_route.prop compiles to %q, builtin is %q", stale.Source(), base[3].Source())
	}
	if !leak.boundaryWhen {
		t.Error("bundled route-leak lost its boundary guard flag")
	}
}
