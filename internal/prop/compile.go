package prop

import (
	_ "embed"
	"fmt"
)

// Compiled is a validated, evaluable property. Compilation walks the
// AST once, rejecting node types the evaluator does not know (the same
// drift rule the filter evaluator enforces by panic — here it is a
// config error, because property sources arrive from topo.json and
// operator files).
type Compiled struct {
	Name   string
	Kind   string
	When   Expr
	At     Expr
	Assert Assertion

	// boundaryWhen marks a guard that is exactly `community boundary`:
	// its never-installed violations render the boundary-escape detail
	// the hard-coded route-leak oracle produced.
	boundaryWhen bool

	source string
}

// Source returns canonical one-line source for the property — what the
// coordinator ships to agents in hello.
func (c *Compiled) Source() string { return c.source }

// HasAt reports whether the property carries an `at` route predicate,
// which distributed checking must answer remotely (query_oracle
// WantProps, wire v4).
func (c *Compiled) HasAt() bool { return c.At != nil }

// Compile validates one parsed property.
func Compile(p *Property) (*Compiled, error) {
	if p.Kind == "" {
		return nil, fmt.Errorf("property %s: empty kind", p.Name)
	}
	if p.Assert == nil {
		return nil, fmt.Errorf("property %s: no assertion", p.Name)
	}
	for _, e := range []Expr{p.When, p.At} {
		if e == nil {
			continue
		}
		if err := checkExpr(e); err != nil {
			return nil, fmt.Errorf("property %s: %w", p.Name, err)
		}
	}
	switch p.Assert.(type) {
	case *ConvergesAssertion, *NeverInstalledAssertion, *NeverBlackholedAssertion,
		*NeverStaleAssertion, *NeverViaAssertion, *QuietAfterAssertion:
	default:
		return nil, fmt.Errorf("property %s: unhandled assertion node %T", p.Name, p.Assert)
	}
	if p.At != nil {
		switch p.Assert.(type) {
		case *NeverInstalledAssertion, *NeverBlackholedAssertion, *NeverViaAssertion:
		default:
			return nil, fmt.Errorf("property %s: at clause requires a node-scoped assertion (never installed/blackholed/reachable via), not %q",
				p.Name, p.Assert)
		}
	}
	_, boundary := p.When.(*BoundaryPred)
	return &Compiled{
		Name: p.Name, Kind: p.Kind, When: p.When, At: p.At, Assert: p.Assert,
		boundaryWhen: boundary, source: p.String(),
	}, nil
}

// checkExpr rejects predicate nodes the evaluator does not handle.
func checkExpr(e Expr) error {
	switch t := e.(type) {
	case BoolPred, *FilterPred, *BoundaryPred, *ViaPred:
		return nil
	case *NotPred:
		return checkExpr(t.X)
	case *AndPred:
		if err := checkExpr(t.X); err != nil {
			return err
		}
		return checkExpr(t.Y)
	case *OrPred:
		if err := checkExpr(t.X); err != nil {
			return err
		}
		return checkExpr(t.Y)
	}
	return fmt.Errorf("unhandled predicate node %T", e)
}

// WhenHolds evaluates the property's witness guard; properties without
// one always apply.
func (c *Compiled) WhenHolds(witness *Env) bool {
	if c.When == nil {
		return true
	}
	if witness == nil {
		return true
	}
	return evalExpr(c.When, witness)
}

// AtMatches evaluates the property's `at` route predicate over env;
// properties without one match any route. Agents answer query_oracle
// WantProps through this.
func (c *Compiled) AtMatches(env *Env) bool {
	if c.At == nil || env == nil {
		return true
	}
	return evalExpr(c.At, env)
}

// CompileSources parses and compiles a list of property sources (each
// entry may hold one or more definitions, like a topo.json `properties`
// array entry or a .prop file).
func CompileSources(srcs []string) ([]*Compiled, error) {
	var out []*Compiled
	for i, src := range srcs {
		ps, err := ParseAll(src)
		if err != nil {
			return nil, fmt.Errorf("properties[%d]: %w", i, err)
		}
		for _, p := range ps {
			c, err := Compile(p)
			if err != nil {
				return nil, fmt.Errorf("properties[%d]: %w", i, err)
			}
			out = append(out, c)
		}
	}
	return out, nil
}

// The two bundled re-expressions of previously hard-coded oracles. They
// are embedded source (not Go) deliberately: the builtin route-leak and
// stale-route oracles ARE these files, so golden parity between "hard
// coded" and "declared" is true by construction and re-proved by the
// tests that load the same files as external replacements.

//go:embed props/route_leak.prop
var BuiltinRouteLeakSource string

//go:embed props/stale_route.prop
var BuiltinStaleRouteSource string

// builtinSources is the full builtin oracle set in evaluation order:
// oscillation, route-leak, blackhole, stale. The order is part of the
// snapshot format — violations append in property list order.
var builtinSources = []string{
	`property convergence { kind "persistent-oscillation"; assert eventually converges; }`,
	BuiltinRouteLeakSource,
	`property forwarding_delivers { kind "multi-hop-blackhole"; assert never blackholed; }`,
	BuiltinStaleRouteSource,
}

// Builtins compiles the four builtin cross-node oracles.
func Builtins() []*Compiled {
	cs, err := CompileSources(builtinSources)
	if err != nil {
		panic(fmt.Sprintf("prop: builtin properties failed to compile: %v", err))
	}
	return cs
}

// Merge resolves operator properties against the builtins: a custom
// property whose kind matches a builtin replaces it in place (same
// evaluation position, so snapshot ordering is stable); customs with
// new kinds append after. Loading the bundled .prop files as custom
// properties therefore reproduces the builtin findings byte for byte —
// the parity guarantee the golden tests pin.
func Merge(custom []*Compiled) []*Compiled {
	base := Builtins()
	out := make([]*Compiled, 0, len(base)+len(custom))
	used := make([]bool, len(custom))
	for _, b := range base {
		replaced := false
		for i, c := range custom {
			if c.Kind == b.Kind {
				out = append(out, c)
				used[i] = true
				replaced = true
			}
		}
		if !replaced {
			out = append(out, b)
		}
	}
	for i, c := range custom {
		if !used[i] {
			out = append(out, c)
		}
	}
	return out
}
