package bgp

import (
	"fmt"
	"time"

	"dice/internal/netaddr"
)

// State is a BGP session FSM state (RFC 4271 §8.2.2).
type State int

// FSM states.
const (
	StateIdle State = iota
	StateConnect
	StateActive
	StateOpenSent
	StateOpenConfirm
	StateEstablished
)

var stateNames = [...]string{"Idle", "Connect", "Active", "OpenSent", "OpenConfirm", "Established"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// SessionConfig parameterizes one peering session.
type SessionConfig struct {
	LocalAS  uint16
	PeerAS   uint16 // 0 = accept any (not recommended; used in tests)
	RouterID netaddr.Addr
	HoldTime time.Duration // proposed hold time; 0 = 90s default
}

// SessionHooks are the callbacks a Session invokes. Send must deliver a
// wire-encoded message to the peer; the others notify the owner (router).
type SessionHooks struct {
	Send          func(wire []byte)
	OnEstablished func()
	OnUpdate      func(*Update)
	OnDown        func(reason string)
}

// Session is one BGP peering's finite-state machine. It is deliberately
// transport-agnostic: the owner feeds it transport events (ConnUp,
// Recv bytes, Tick for timers) and it emits messages through hooks.Send.
// Not safe for concurrent use; the router serializes access.
type Session struct {
	cfg   SessionConfig
	hooks SessionHooks

	state    State
	peerOpen *Open
	inbuf    []byte

	holdTime      time.Duration // negotiated
	holdDeadline  time.Time
	keepaliveTime time.Duration
	keepaliveDue  time.Time

	// Counters for the experiment harness.
	UpdatesIn  uint64
	UpdatesOut uint64
	MsgsIn     uint64
	MsgsOut    uint64
}

// NewSession creates a session in Idle.
func NewSession(cfg SessionConfig, hooks SessionHooks) *Session {
	if cfg.HoldTime == 0 {
		cfg.HoldTime = 90 * time.Second
	}
	return &Session{cfg: cfg, hooks: hooks, state: StateIdle}
}

// State returns the current FSM state.
func (s *Session) State() State { return s.state }

// PeerAS returns the AS number learned from the peer's OPEN (0 before).
func (s *Session) PeerAS() uint16 {
	if s.peerOpen == nil {
		return s.cfg.PeerAS
	}
	return s.peerOpen.AS
}

// Start moves Idle → Connect (ManualStart event).
func (s *Session) Start(now time.Time) {
	if s.state != StateIdle {
		return
	}
	s.state = StateConnect
}

// ConnUp signals that the transport connection is established
// (TcpConnectionConfirmed): the session sends OPEN and enters OpenSent.
func (s *Session) ConnUp(now time.Time) error {
	if s.state != StateConnect && s.state != StateActive {
		return fmt.Errorf("bgp: ConnUp in state %v", s.state)
	}
	if err := s.send(&Open{
		Version:  4,
		AS:       s.cfg.LocalAS,
		HoldTime: uint16(s.cfg.HoldTime / time.Second),
		RouterID: s.cfg.RouterID,
	}); err != nil {
		return err
	}
	s.state = StateOpenSent
	// RFC 4271: set hold timer to a large value while waiting for OPEN.
	s.holdDeadline = now.Add(4 * time.Minute)
	return nil
}

// ConnDown signals transport loss.
func (s *Session) ConnDown(reason string) {
	if s.state == StateIdle {
		return
	}
	prev := s.state
	s.reset()
	if prev == StateEstablished && s.hooks.OnDown != nil {
		s.hooks.OnDown("connection down: " + reason)
	}
}

// Recv feeds raw bytes from the transport. Complete messages are framed
// and processed; partial data is buffered.
func (s *Session) Recv(now time.Time, data []byte) error {
	s.inbuf = append(s.inbuf, data...)
	for {
		msg, rest, err := Frame(s.inbuf)
		if err == ErrTruncated {
			return nil
		}
		if err != nil {
			s.notifyAndClose(err)
			return err
		}
		s.inbuf = rest
		if err := s.handleWire(now, msg); err != nil {
			return err
		}
	}
}

func (s *Session) handleWire(now time.Time, wire []byte) error {
	m, err := Decode(wire)
	if err != nil {
		s.notifyAndClose(err)
		return err
	}
	s.MsgsIn++
	switch msg := m.(type) {
	case *Open:
		return s.handleOpen(now, msg)
	case *Keepalive:
		return s.handleKeepalive(now)
	case *Update:
		return s.handleUpdate(now, msg)
	case *Notification:
		prev := s.state
		s.reset()
		if s.hooks.OnDown != nil && prev != StateIdle {
			s.hooks.OnDown(fmt.Sprintf("notification received: code %d subcode %d", msg.Code, msg.Subcode))
		}
		return nil
	}
	return nil
}

func (s *Session) handleOpen(now time.Time, o *Open) error {
	if s.state != StateOpenSent && s.state != StateConnect && s.state != StateActive {
		err := protoErr(ErrCodeFSM, 0, "OPEN in state %v", s.state)
		s.notifyAndClose(err)
		return err
	}
	if s.cfg.PeerAS != 0 && o.AS != s.cfg.PeerAS {
		err := protoErr(ErrCodeOpenMessage, 2, "bad peer AS %d, want %d", o.AS, s.cfg.PeerAS)
		s.notifyAndClose(err)
		return err
	}
	s.peerOpen = o

	// Negotiate hold time: the smaller of proposed values (§4.2).
	peerHold := time.Duration(o.HoldTime) * time.Second
	s.holdTime = s.cfg.HoldTime
	if peerHold < s.holdTime {
		s.holdTime = peerHold
	}
	if s.holdTime > 0 {
		s.keepaliveTime = s.holdTime / 3
		s.holdDeadline = now.Add(s.holdTime)
		s.keepaliveDue = now.Add(s.keepaliveTime)
	}

	if s.state != StateOpenSent {
		// Passive open: we had not sent our OPEN yet.
		if err := s.send(&Open{
			Version:  4,
			AS:       s.cfg.LocalAS,
			HoldTime: uint16(s.cfg.HoldTime / time.Second),
			RouterID: s.cfg.RouterID,
		}); err != nil {
			return err
		}
	}
	if err := s.send(&Keepalive{}); err != nil {
		return err
	}
	s.state = StateOpenConfirm
	return nil
}

func (s *Session) handleKeepalive(now time.Time) error {
	switch s.state {
	case StateOpenConfirm:
		s.state = StateEstablished
		if s.holdTime > 0 {
			s.holdDeadline = now.Add(s.holdTime)
		}
		if s.hooks.OnEstablished != nil {
			s.hooks.OnEstablished()
		}
	case StateEstablished:
		if s.holdTime > 0 {
			s.holdDeadline = now.Add(s.holdTime)
		}
	default:
		err := protoErr(ErrCodeFSM, 0, "KEEPALIVE in state %v", s.state)
		s.notifyAndClose(err)
		return err
	}
	return nil
}

func (s *Session) handleUpdate(now time.Time, u *Update) error {
	if s.state != StateEstablished {
		err := protoErr(ErrCodeFSM, 0, "UPDATE in state %v", s.state)
		s.notifyAndClose(err)
		return err
	}
	s.UpdatesIn++
	if s.holdTime > 0 {
		s.holdDeadline = now.Add(s.holdTime)
	}
	if s.hooks.OnUpdate != nil {
		s.hooks.OnUpdate(u)
	}
	return nil
}

// SendUpdate transmits an UPDATE on an established session.
func (s *Session) SendUpdate(u *Update) error {
	if s.state != StateEstablished {
		return protoErr(ErrCodeFSM, 0, "SendUpdate in state %v", s.state)
	}
	s.UpdatesOut++
	return s.send(u)
}

// Tick advances timers: expires the hold timer (sending the mandated
// NOTIFICATION) and emits keepalives when due.
func (s *Session) Tick(now time.Time) {
	if s.state == StateIdle || s.holdTime == 0 {
		return
	}
	if !s.holdDeadline.IsZero() && now.After(s.holdDeadline) {
		s.notifyAndClose(protoErr(ErrCodeHoldTimer, 0, "hold timer expired"))
		return
	}
	if s.state == StateEstablished && !s.keepaliveDue.IsZero() && !now.Before(s.keepaliveDue) {
		_ = s.send(&Keepalive{})
		s.keepaliveDue = now.Add(s.keepaliveTime)
	}
}

// send encodes and transmits a message.
func (s *Session) send(m Message) error {
	wire, err := Encode(m)
	if err != nil {
		return err
	}
	s.MsgsOut++
	if s.hooks.Send != nil {
		s.hooks.Send(wire)
	}
	return nil
}

// CloneStateFrom copies the observable session state of orig into s: FSM
// state, negotiated timers, peer identity and counters. Used when forking
// a router checkpoint — the clone's sessions must look Established so
// exploration exercises the same code paths the live process would, while
// the clone's transport keeps its traffic off the wire.
func (s *Session) CloneStateFrom(orig *Session) {
	s.state = orig.state
	s.peerOpen = orig.peerOpen // immutable after decode
	s.holdTime = orig.holdTime
	s.keepaliveTime = orig.keepaliveTime
	s.holdDeadline = orig.holdDeadline
	s.keepaliveDue = orig.keepaliveDue
	s.UpdatesIn = orig.UpdatesIn
	s.UpdatesOut = orig.UpdatesOut
	s.MsgsIn = orig.MsgsIn
	s.MsgsOut = orig.MsgsOut
	s.inbuf = append([]byte(nil), orig.inbuf...)
}

// RestoreEstablished forces the session into Established with the given
// counters — used when rebuilding a router from a serialized checkpoint
// (the restored process behaves as the forked original would: sessions
// up, traffic diverted by the transport).
func (s *Session) RestoreEstablished(updatesIn, updatesOut uint64) {
	s.state = StateEstablished
	s.UpdatesIn = updatesIn
	s.UpdatesOut = updatesOut
	s.holdTime = 0 // timers disabled; restored clones are not ticked
}

// notifyAndClose sends the NOTIFICATION for a protocol error and drops to
// Idle.
func (s *Session) notifyAndClose(err error) {
	var code, subcode uint8 = ErrCodeCease, 0
	if pe, ok := err.(*Error); ok {
		code, subcode = pe.Code, pe.Subcode
	}
	_ = s.send(&Notification{Code: code, Subcode: subcode})
	prev := s.state
	s.reset()
	if s.hooks.OnDown != nil && prev != StateIdle {
		s.hooks.OnDown(err.Error())
	}
}

func (s *Session) reset() {
	s.state = StateIdle
	s.peerOpen = nil
	s.inbuf = nil
	s.holdDeadline = time.Time{}
	s.keepaliveDue = time.Time{}
}
