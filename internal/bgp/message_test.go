package bgp

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"dice/internal/netaddr"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }
func addr(s string) netaddr.Addr  { return netaddr.MustParseAddr(s) }

func baseAttrs() Attrs {
	return Attrs{
		HasOrigin:  true,
		Origin:     OriginIGP,
		ASPath:     ASPath{{Type: ASSequence, ASNs: []uint16{65001, 65002}}},
		HasNextHop: true,
		NextHop:    addr("192.0.2.1"),
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := &Open{
		Version:  4,
		AS:       65001,
		HoldTime: 90,
		RouterID: addr("10.0.0.1"),
		OptParams: []OptParam{
			{Type: 2, Value: []byte{1, 4, 0, 1, 0, 1}}, // capability-ish blob
		},
	}
	wire, err := Encode(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) < HeaderLen || wire[18] != MsgOpen {
		t.Fatalf("bad wire: %x", wire)
	}
	m, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*Open)
	if !reflect.DeepEqual(got, o) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, o)
	}
}

func TestOpenValidation(t *testing.T) {
	mk := func(mod func(*Open)) []byte {
		o := &Open{Version: 4, AS: 65001, HoldTime: 90, RouterID: addr("10.0.0.1")}
		mod(o)
		wire, err := Encode(o)
		if err != nil {
			t.Fatal(err)
		}
		return wire
	}
	if _, err := Decode(mk(func(o *Open) { o.Version = 3 })); err == nil {
		t.Error("version 3 should be rejected")
	}
	if _, err := Decode(mk(func(o *Open) { o.HoldTime = 2 })); err == nil {
		t.Error("hold time 2 should be rejected")
	}
	if _, err := Decode(mk(func(o *Open) { o.RouterID = 0 })); err == nil {
		t.Error("zero router ID should be rejected")
	}
	if _, err := Decode(mk(func(o *Open) { o.HoldTime = 0 })); err != nil {
		t.Errorf("hold time 0 (disabled) should be accepted: %v", err)
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	wire, err := Encode(&Keepalive{})
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != HeaderLen {
		t.Fatalf("keepalive length %d, want %d", len(wire), HeaderLen)
	}
	if _, err := Decode(wire); err != nil {
		t.Fatal(err)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := &Notification{Code: ErrCodeUpdateMessage, Subcode: ErrSubInvalidOrigin, Data: []byte{9}}
	wire, err := Encode(n)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.(*Notification); got.Code != n.Code || got.Subcode != n.Subcode || !bytes.Equal(got.Data, n.Data) {
		t.Fatalf("mismatch: %+v", got)
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := &Update{
		Withdrawn: []netaddr.Prefix{pfx("198.51.100.0/24")},
		Attrs: Attrs{
			HasOrigin:       true,
			Origin:          OriginEGP,
			ASPath:          ASPath{{Type: ASSequence, ASNs: []uint16{65001}}, {Type: ASSet, ASNs: []uint16{65002, 65003}}},
			HasNextHop:      true,
			NextHop:         addr("192.0.2.1"),
			HasMED:          true,
			MED:             50,
			HasLocalPref:    true,
			LocalPref:       200,
			AtomicAggregate: true,
			Aggregator:      &Aggregator{AS: 65009, Router: addr("10.9.9.9")},
			Communities:     []uint32{MakeCommunity(65001, 666), MakeCommunity(65001, 100)},
		},
		NLRI: []netaddr.Prefix{pfx("203.0.113.0/24"), pfx("10.0.0.0/8"), pfx("192.0.2.128/25")},
	}
	wire, err := Encode(u)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*Update)
	if !reflect.DeepEqual(got.Withdrawn, u.Withdrawn) {
		t.Errorf("withdrawn mismatch: %v", got.Withdrawn)
	}
	if !reflect.DeepEqual(got.NLRI, u.NLRI) {
		t.Errorf("nlri mismatch: %v", got.NLRI)
	}
	if got.Attrs.Origin != OriginEGP || !got.Attrs.HasMED || got.Attrs.MED != 50 ||
		!got.Attrs.HasLocalPref || got.Attrs.LocalPref != 200 || !got.Attrs.AtomicAggregate {
		t.Errorf("attrs mismatch: %+v", got.Attrs)
	}
	if got.Attrs.Aggregator == nil || got.Attrs.Aggregator.AS != 65009 {
		t.Errorf("aggregator mismatch: %+v", got.Attrs.Aggregator)
	}
	// Communities are canonically sorted on encode.
	if len(got.Attrs.Communities) != 2 || got.Attrs.Communities[0] != MakeCommunity(65001, 100) {
		t.Errorf("communities mismatch: %v", got.Attrs.Communities)
	}
	if got.Attrs.ASPath.String() != "65001 {65002,65003}" {
		t.Errorf("as path mismatch: %s", got.Attrs.ASPath)
	}
}

func TestUpdateMissingMandatory(t *testing.T) {
	for _, mod := range []func(*Attrs){
		func(a *Attrs) { a.HasOrigin = false },
		func(a *Attrs) { a.HasNextHop = false },
		func(a *Attrs) { a.ASPath = nil },
	} {
		a := baseAttrs()
		mod(&a)
		u := &Update{Attrs: a, NLRI: []netaddr.Prefix{pfx("203.0.113.0/24")}}
		wire, err := Encode(u)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(wire); err == nil {
			t.Errorf("update missing mandatory attribute accepted: %+v", a)
		}
	}
	// Withdraw-only UPDATE needs no attributes.
	u := &Update{Withdrawn: []netaddr.Prefix{pfx("203.0.113.0/24")}}
	wire, err := Encode(u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(wire); err != nil {
		t.Errorf("withdraw-only update rejected: %v", err)
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	good, _ := Encode(&Keepalive{})

	short := good[:10]
	if _, err := Decode(short); err == nil {
		t.Error("short message accepted")
	}

	badMarker := append([]byte(nil), good...)
	badMarker[0] = 0
	if _, err := Decode(badMarker); err == nil {
		t.Error("bad marker accepted")
	}

	badLen := append([]byte(nil), good...)
	badLen[16], badLen[17] = 0xff, 0xff
	if _, err := Decode(badLen); err == nil {
		t.Error("bad length accepted")
	}

	badType := append([]byte(nil), good...)
	badType[18] = 77
	if _, err := Decode(badType); err == nil {
		t.Error("bad type accepted")
	}

	kaBody := append([]byte(nil), good...)
	kaBody = append(kaBody, 0xAA)
	kaBody[17] = byte(len(kaBody))
	if _, err := Decode(kaBody); err == nil {
		t.Error("keepalive with body accepted")
	}
}

func TestDecodePrefixValidation(t *testing.T) {
	// prefix length 33
	u := []byte{33, 1, 2, 3, 4, 5}
	if _, err := decodePrefixes(u); err == nil {
		t.Error("prefix length 33 accepted")
	}
	// truncated
	if _, err := decodePrefixes([]byte{24, 1, 2}); err == nil {
		t.Error("truncated prefix accepted")
	}
	// host bits set: 10.0.0.1/8 encoded non-canonically is impossible in
	// 1 byte, use /24 with low bit garbage in third byte
	if _, err := decodePrefixes([]byte{23, 10, 0, 1}); err == nil {
		t.Error("host bits accepted")
	}
	// valid default route
	ps, err := decodePrefixes([]byte{0})
	if err != nil || len(ps) != 1 || ps[0].Bits() != 0 {
		t.Errorf("default route: %v %v", ps, err)
	}
}

func TestAttrValidation(t *testing.T) {
	// Duplicate attribute.
	var blob []byte
	blob = appendAttr(blob, FlagTransitive, AttrOrigin, []byte{0})
	blob = appendAttr(blob, FlagTransitive, AttrOrigin, []byte{1})
	if _, err := decodeAttrs(blob); err == nil {
		t.Error("duplicate ORIGIN accepted")
	}
	// Bad origin value.
	if _, err := decodeAttrs(appendAttr(nil, FlagTransitive, AttrOrigin, []byte{9})); err == nil {
		t.Error("origin 9 accepted")
	}
	// Bad flags on well-known attribute.
	if _, err := decodeAttrs(appendAttr(nil, FlagOptional, AttrOrigin, []byte{0})); err == nil {
		t.Error("optional ORIGIN accepted")
	}
	// Bad length.
	if _, err := decodeAttrs(appendAttr(nil, FlagTransitive, AttrOrigin, []byte{0, 0})); err == nil {
		t.Error("2-byte ORIGIN accepted")
	}
	// Unrecognized well-known (non-optional) attribute.
	if _, err := decodeAttrs(appendAttr(nil, FlagTransitive, 99, []byte{1})); err == nil {
		t.Error("unknown well-known attribute accepted")
	}
	// Unknown transitive optional is preserved with Partial bit.
	a, err := decodeAttrs(appendAttr(nil, FlagOptional|FlagTransitive, 99, []byte{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Unknown) != 1 || a.Unknown[0].Flags&FlagPartial == 0 {
		t.Errorf("unknown transitive not preserved: %+v", a.Unknown)
	}
	// Unknown non-transitive optional is dropped silently.
	a, err = decodeAttrs(appendAttr(nil, FlagOptional, 98, []byte{1}))
	if err != nil || len(a.Unknown) != 0 {
		t.Errorf("unknown non-transitive handling: %+v %v", a.Unknown, err)
	}
	// Bad next hop.
	nh := []byte{0, 0, 0, 0}
	if _, err := decodeAttrs(appendAttr(nil, FlagTransitive, AttrNextHop, nh)); err == nil {
		t.Error("0.0.0.0 next hop accepted")
	}
}

func TestASPathOps(t *testing.T) {
	p := ASPath{{Type: ASSequence, ASNs: []uint16{65001, 65002}}, {Type: ASSet, ASNs: []uint16{65004, 65003}}}
	if p.Length() != 3 { // seq(2) + set(1)
		t.Errorf("length = %d, want 3", p.Length())
	}
	if p.OriginAS() != 65003 { // smallest in trailing set
		t.Errorf("origin = %d", p.OriginAS())
	}
	if p.FirstAS() != 65001 {
		t.Errorf("first = %d", p.FirstAS())
	}
	if !p.Contains(65004) || p.Contains(64999) {
		t.Error("contains wrong")
	}

	q := p.Prepend(65000)
	if q.FirstAS() != 65000 || q.Length() != 4 {
		t.Errorf("prepend: %v", q)
	}
	// Original is unchanged (copy-on-prepend).
	if p.FirstAS() != 65001 {
		t.Error("prepend mutated the original")
	}

	seq := ASPath{{Type: ASSequence, ASNs: []uint16{65002}}}
	if got := seq.Prepend(65001); got.String() != "65001 65002" {
		t.Errorf("prepend to seq: %s", got)
	}
	var empty ASPath
	if empty.OriginAS() != 0 || empty.FirstAS() != 0 || empty.Length() != 0 {
		t.Error("empty path ops wrong")
	}
	if got := empty.Prepend(65001); got.String() != "65001" {
		t.Errorf("prepend to empty: %s", got)
	}
}

func TestASPathEncodingErrors(t *testing.T) {
	a := baseAttrs()
	a.ASPath = ASPath{{Type: ASSequence, ASNs: nil}}
	if _, err := a.encode(nil); err == nil {
		t.Error("empty segment encoded")
	}
	// Decoding malformed segments.
	if _, err := decodeASPath([]byte{9, 1, 0, 1}); err == nil {
		t.Error("bad segment type accepted")
	}
	if _, err := decodeASPath([]byte{2, 0}); err == nil {
		t.Error("empty segment accepted")
	}
	if _, err := decodeASPath([]byte{2, 2, 0, 1}); err == nil {
		t.Error("truncated segment accepted")
	}
}

func TestCommunities(t *testing.T) {
	c := MakeCommunity(65001, 666)
	as, v := SplitCommunity(c)
	if as != 65001 || v != 666 {
		t.Fatalf("split: %d:%d", as, v)
	}
	a := Attrs{Communities: []uint32{c}}
	if !a.HasCommunity(c) || a.HasCommunity(MakeCommunity(1, 1)) {
		t.Fatal("HasCommunity wrong")
	}
}

func TestFrame(t *testing.T) {
	w1, _ := Encode(&Keepalive{})
	w2, _ := Encode(&Notification{Code: 6})
	stream := append(append([]byte{}, w1...), w2...)

	msg, rest, err := Frame(stream)
	if err != nil || !bytes.Equal(msg, w1) {
		t.Fatalf("frame 1: %v", err)
	}
	msg, rest, err = Frame(rest)
	if err != nil || !bytes.Equal(msg, w2) || len(rest) != 0 {
		t.Fatalf("frame 2: %v", err)
	}
	if _, _, err := Frame(w1[:5]); err != ErrTruncated {
		t.Fatalf("short stream: %v", err)
	}
	bad := append([]byte(nil), w1...)
	bad[16], bad[17] = 0, 1
	if _, _, err := Frame(bad); err == nil || err == ErrTruncated {
		t.Fatalf("bad stream length: %v", err)
	}
}

func TestOriginString(t *testing.T) {
	if OriginString(OriginIGP) != "IGP" || OriginString(OriginEGP) != "EGP" ||
		OriginString(OriginIncomplete) != "Incomplete" || OriginString(7) == "" {
		t.Fatal("origin strings wrong")
	}
}

func TestAttrsClone(t *testing.T) {
	a := baseAttrs()
	a.Communities = []uint32{1, 2}
	a.Aggregator = &Aggregator{AS: 65001, Router: addr("1.2.3.4")}
	a.Unknown = []RawAttr{{Flags: FlagOptional | FlagTransitive, Code: 99, Value: []byte{1}}}
	b := a.Clone()
	b.ASPath[0].ASNs[0] = 1
	b.Communities[0] = 9
	b.Aggregator.AS = 1
	b.Unknown[0].Value[0] = 7
	if a.ASPath[0].ASNs[0] == 1 || a.Communities[0] == 9 || a.Aggregator.AS == 1 || a.Unknown[0].Value[0] == 7 {
		t.Fatal("clone shares memory with original")
	}
}

// Property: Update encode/decode round-trips for arbitrary valid prefixes.
func TestUpdateRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, lens []uint8) bool {
		n := len(addrs)
		if len(lens) < n {
			n = len(lens)
		}
		if n > 50 {
			n = 50
		}
		var nlri []netaddr.Prefix
		for i := 0; i < n; i++ {
			nlri = append(nlri, netaddr.PrefixFrom(netaddr.Addr(addrs[i]), int(lens[i]%33)))
		}
		u := &Update{Attrs: baseAttrs(), NLRI: nlri}
		if len(nlri) == 0 {
			u.Attrs = Attrs{}
		}
		wire, err := Encode(u)
		if err != nil {
			return false
		}
		m, err := Decode(wire)
		if err != nil {
			return false
		}
		got := m.(*Update)
		if len(got.NLRI) != len(nlri) {
			return false
		}
		for i := range nlri {
			if got.NLRI[i] != nlri[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeUpdate(b *testing.B) {
	u := &Update{Attrs: baseAttrs(), NLRI: []netaddr.Prefix{pfx("203.0.113.0/24"), pfx("10.0.0.0/8")}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeUpdate(b *testing.B) {
	u := &Update{Attrs: baseAttrs(), NLRI: []netaddr.Prefix{pfx("203.0.113.0/24"), pfx("10.0.0.0/8")}}
	wire, _ := Encode(u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: Decode never panics and never returns both a message and an
// error, for arbitrary byte soup — the robustness a daemon facing the
// open Internet needs.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		m, err := Decode(raw)
		if m != nil && err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: mutating any single byte of a valid UPDATE either still
// decodes (to possibly different content) or yields a clean error —
// never a panic, and header mutations are always caught.
func TestDecodeSingleByteMutation(t *testing.T) {
	u := &Update{Attrs: baseAttrs(), NLRI: []netaddr.Prefix{pfx("203.0.113.0/24")}}
	wire, err := Encode(u)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(wire); i++ {
		for _, delta := range []byte{1, 0x80, 0xff} {
			mut := append([]byte(nil), wire...)
			mut[i] ^= delta
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on mutation at byte %d: %v", i, r)
					}
				}()
				_, _ = Decode(mut)
			}()
		}
	}
}
