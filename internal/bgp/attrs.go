package bgp

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"dice/internal/netaddr"
)

// Path attribute type codes (RFC 4271 §5.1, RFC 1997 for COMMUNITY).
const (
	AttrOrigin          = 1
	AttrASPath          = 2
	AttrNextHop         = 3
	AttrMED             = 4
	AttrLocalPref       = 5
	AttrAtomicAggregate = 6
	AttrAggregator      = 7
	AttrCommunity       = 8
)

// Attribute flag bits (RFC 4271 §4.3).
const (
	FlagOptional   = 0x80
	FlagTransitive = 0x40
	FlagPartial    = 0x20
	FlagExtLen     = 0x10
)

// Origin codes (RFC 4271 §5.1.1).
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// OriginString renders an origin code the way BIRD's CLI does.
func OriginString(o uint8) string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	case OriginIncomplete:
		return "Incomplete"
	}
	return fmt.Sprintf("origin(%d)", o)
}

// AS path segment types (RFC 4271 §5.1.2).
const (
	ASSet      = 1
	ASSequence = 2
)

// ASPathSegment is one segment of an AS_PATH.
type ASPathSegment struct {
	Type uint8 // ASSet or ASSequence
	ASNs []uint16
}

// ASPath is an ordered list of segments.
type ASPath []ASPathSegment

// Length returns the AS path length used by the decision process
// (RFC 4271 §9.1.2.2: an AS_SET counts as 1 regardless of size).
func (p ASPath) Length() int {
	n := 0
	for _, seg := range p {
		if seg.Type == ASSet {
			n++
		} else {
			n += len(seg.ASNs)
		}
	}
	return n
}

// OriginAS returns the rightmost AS in the path — the AS that originated
// the route. Returns 0 for an empty path (locally originated).
func (p ASPath) OriginAS() uint16 {
	if len(p) == 0 {
		return 0
	}
	last := p[len(p)-1]
	if len(last.ASNs) == 0 {
		return 0
	}
	if last.Type == ASSet {
		// Any member may be the originator; pick the smallest for
		// determinism (consistent with how leak detection treats sets).
		min := last.ASNs[0]
		for _, as := range last.ASNs {
			if as < min {
				min = as
			}
		}
		return min
	}
	return last.ASNs[len(last.ASNs)-1]
}

// FirstAS returns the leftmost AS — the neighbor that sent the route.
func (p ASPath) FirstAS() uint16 {
	if len(p) == 0 || len(p[0].ASNs) == 0 {
		return 0
	}
	return p[0].ASNs[0]
}

// Contains reports whether as appears anywhere in the path (loop check,
// RFC 4271 §9.1.2).
func (p ASPath) Contains(as uint16) bool {
	for _, seg := range p {
		for _, a := range seg.ASNs {
			if a == as {
				return true
			}
		}
	}
	return false
}

// Prepend returns a copy of p with as prepended to the leading
// AS_SEQUENCE (creating one if needed), as done on eBGP export.
func (p ASPath) Prepend(as uint16) ASPath {
	if len(p) > 0 && p[0].Type == ASSequence && len(p[0].ASNs) < 255 {
		out := make(ASPath, len(p))
		copy(out, p)
		seq := make([]uint16, 0, len(p[0].ASNs)+1)
		seq = append(seq, as)
		seq = append(seq, p[0].ASNs...)
		out[0] = ASPathSegment{Type: ASSequence, ASNs: seq}
		return out
	}
	out := make(ASPath, 0, len(p)+1)
	out = append(out, ASPathSegment{Type: ASSequence, ASNs: []uint16{as}})
	return append(out, p...)
}

// Clone returns a deep copy of the path.
func (p ASPath) Clone() ASPath {
	out := make(ASPath, len(p))
	for i, seg := range p {
		out[i] = ASPathSegment{Type: seg.Type, ASNs: append([]uint16(nil), seg.ASNs...)}
	}
	return out
}

// String renders the path in the conventional "65001 65002 {65003,65004}"
// form.
func (p ASPath) String() string {
	var b strings.Builder
	for i, seg := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		if seg.Type == ASSet {
			b.WriteByte('{')
			for j, as := range seg.ASNs {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%d", as)
			}
			b.WriteByte('}')
		} else {
			for j, as := range seg.ASNs {
				if j > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%d", as)
			}
		}
	}
	return b.String()
}

// Aggregator is the AGGREGATOR attribute value (RFC 4271 §5.1.7).
type Aggregator struct {
	AS     uint16
	Router netaddr.Addr
}

// RawAttr preserves an unrecognized optional attribute for transit
// (RFC 4271 §5: unrecognized transitive attributes are passed along with
// the Partial bit set).
type RawAttr struct {
	Flags uint8
	Code  uint8
	Value []byte
}

// Attrs is the decoded path attribute set of an UPDATE.
type Attrs struct {
	HasOrigin bool
	Origin    uint8

	ASPath ASPath

	HasNextHop bool
	NextHop    netaddr.Addr

	HasMED bool
	MED    uint32

	HasLocalPref bool
	LocalPref    uint32

	AtomicAggregate bool
	Aggregator      *Aggregator

	Communities []uint32

	Unknown []RawAttr
}

// Clone returns a deep copy.
func (a Attrs) Clone() Attrs {
	out := a
	out.ASPath = a.ASPath.Clone()
	if a.Aggregator != nil {
		ag := *a.Aggregator
		out.Aggregator = &ag
	}
	out.Communities = append([]uint32(nil), a.Communities...)
	out.Unknown = make([]RawAttr, len(a.Unknown))
	for i, u := range a.Unknown {
		out.Unknown[i] = RawAttr{Flags: u.Flags, Code: u.Code, Value: append([]byte(nil), u.Value...)}
	}
	return out
}

// appendAttr writes one attribute with correct flags and length form.
func appendAttr(dst []byte, flags, code uint8, val []byte) []byte {
	if len(val) > 255 {
		flags |= FlagExtLen
	}
	dst = append(dst, flags, code)
	if flags&FlagExtLen != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(val)))
	} else {
		dst = append(dst, uint8(len(val)))
	}
	return append(dst, val...)
}

// encode serializes the attribute set in canonical (ascending type code)
// order.
func (a Attrs) encode(dst []byte) ([]byte, error) {
	if a.HasOrigin {
		if a.Origin > OriginIncomplete {
			return nil, protoErr(ErrCodeUpdateMessage, ErrSubInvalidOrigin, "origin %d", a.Origin)
		}
		dst = appendAttr(dst, FlagTransitive, AttrOrigin, []byte{a.Origin})
	}
	if a.ASPath != nil {
		var v []byte
		for _, seg := range a.ASPath {
			if len(seg.ASNs) == 0 || len(seg.ASNs) > 255 {
				return nil, protoErr(ErrCodeUpdateMessage, ErrSubMalformedASPath, "segment with %d ASNs", len(seg.ASNs))
			}
			v = append(v, seg.Type, uint8(len(seg.ASNs)))
			for _, as := range seg.ASNs {
				v = binary.BigEndian.AppendUint16(v, as)
			}
		}
		dst = appendAttr(dst, FlagTransitive, AttrASPath, v)
	}
	if a.HasNextHop {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], uint32(a.NextHop))
		dst = appendAttr(dst, FlagTransitive, AttrNextHop, v[:])
	}
	if a.HasMED {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], a.MED)
		dst = appendAttr(dst, FlagOptional, AttrMED, v[:])
	}
	if a.HasLocalPref {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], a.LocalPref)
		dst = appendAttr(dst, FlagTransitive, AttrLocalPref, v[:])
	}
	if a.AtomicAggregate {
		dst = appendAttr(dst, FlagTransitive, AttrAtomicAggregate, nil)
	}
	if a.Aggregator != nil {
		var v [6]byte
		binary.BigEndian.PutUint16(v[0:2], a.Aggregator.AS)
		binary.BigEndian.PutUint32(v[2:6], uint32(a.Aggregator.Router))
		dst = appendAttr(dst, FlagOptional|FlagTransitive, AttrAggregator, v[:])
	}
	if len(a.Communities) > 0 {
		comms := append([]uint32(nil), a.Communities...)
		sort.Slice(comms, func(i, j int) bool { return comms[i] < comms[j] })
		var v []byte
		for _, c := range comms {
			v = binary.BigEndian.AppendUint32(v, c)
		}
		dst = appendAttr(dst, FlagOptional|FlagTransitive, AttrCommunity, v)
	}
	for _, u := range a.Unknown {
		dst = appendAttr(dst, u.Flags, u.Code, u.Value)
	}
	return dst, nil
}

// decodeAttrs parses the path attribute block of an UPDATE with full
// RFC 4271 §6.3 validation: flag bits, length consistency with the
// attribute type, and duplicate detection.
func decodeAttrs(b []byte) (Attrs, error) {
	var a Attrs
	seen := map[uint8]bool{}
	for len(b) > 0 {
		if len(b) < 3 {
			return a, protoErr(ErrCodeUpdateMessage, ErrSubMalformedAttrList, "truncated attribute header")
		}
		flags, code := b[0], b[1]
		var alen int
		var hdr int
		if flags&FlagExtLen != 0 {
			if len(b) < 4 {
				return a, protoErr(ErrCodeUpdateMessage, ErrSubMalformedAttrList, "truncated extended length")
			}
			alen = int(binary.BigEndian.Uint16(b[2:4]))
			hdr = 4
		} else {
			alen = int(b[2])
			hdr = 3
		}
		if len(b) < hdr+alen {
			return a, protoErr(ErrCodeUpdateMessage, ErrSubAttrLength, "attribute %d overruns block", code)
		}
		val := b[hdr : hdr+alen]
		b = b[hdr+alen:]

		if seen[code] {
			return a, protoErr(ErrCodeUpdateMessage, ErrSubMalformedAttrList, "duplicate attribute %d", code)
		}
		seen[code] = true

		switch code {
		case AttrOrigin:
			if err := checkFlags(flags, FlagTransitive, code); err != nil {
				return a, err
			}
			if len(val) != 1 {
				return a, protoErr(ErrCodeUpdateMessage, ErrSubAttrLength, "ORIGIN length %d", len(val))
			}
			if val[0] > OriginIncomplete {
				return a, protoErr(ErrCodeUpdateMessage, ErrSubInvalidOrigin, "origin value %d", val[0])
			}
			a.HasOrigin, a.Origin = true, val[0]
		case AttrASPath:
			if err := checkFlags(flags, FlagTransitive, code); err != nil {
				return a, err
			}
			path, err := decodeASPath(val)
			if err != nil {
				return a, err
			}
			a.ASPath = path
		case AttrNextHop:
			if err := checkFlags(flags, FlagTransitive, code); err != nil {
				return a, err
			}
			if len(val) != 4 {
				return a, protoErr(ErrCodeUpdateMessage, ErrSubAttrLength, "NEXT_HOP length %d", len(val))
			}
			nh := netaddr.Addr(binary.BigEndian.Uint32(val))
			if nh == 0 || nh == 0xffffffff {
				return a, protoErr(ErrCodeUpdateMessage, ErrSubInvalidNextHop, "next hop %s", nh)
			}
			a.HasNextHop, a.NextHop = true, nh
		case AttrMED:
			if err := checkFlags(flags, FlagOptional, code); err != nil {
				return a, err
			}
			if len(val) != 4 {
				return a, protoErr(ErrCodeUpdateMessage, ErrSubAttrLength, "MED length %d", len(val))
			}
			a.HasMED, a.MED = true, binary.BigEndian.Uint32(val)
		case AttrLocalPref:
			if err := checkFlags(flags, FlagTransitive, code); err != nil {
				return a, err
			}
			if len(val) != 4 {
				return a, protoErr(ErrCodeUpdateMessage, ErrSubAttrLength, "LOCAL_PREF length %d", len(val))
			}
			a.HasLocalPref, a.LocalPref = true, binary.BigEndian.Uint32(val)
		case AttrAtomicAggregate:
			if err := checkFlags(flags, FlagTransitive, code); err != nil {
				return a, err
			}
			if len(val) != 0 {
				return a, protoErr(ErrCodeUpdateMessage, ErrSubAttrLength, "ATOMIC_AGGREGATE length %d", len(val))
			}
			a.AtomicAggregate = true
		case AttrAggregator:
			if err := checkFlags(flags, FlagOptional|FlagTransitive, code); err != nil {
				return a, err
			}
			if len(val) != 6 {
				return a, protoErr(ErrCodeUpdateMessage, ErrSubAttrLength, "AGGREGATOR length %d", len(val))
			}
			a.Aggregator = &Aggregator{
				AS:     binary.BigEndian.Uint16(val[0:2]),
				Router: netaddr.Addr(binary.BigEndian.Uint32(val[2:6])),
			}
		case AttrCommunity:
			if err := checkFlags(flags, FlagOptional|FlagTransitive, code); err != nil {
				return a, err
			}
			if len(val)%4 != 0 {
				return a, protoErr(ErrCodeUpdateMessage, ErrSubAttrLength, "COMMUNITY length %d", len(val))
			}
			for i := 0; i < len(val); i += 4 {
				a.Communities = append(a.Communities, binary.BigEndian.Uint32(val[i:i+4]))
			}
		default:
			if flags&FlagOptional == 0 {
				return a, protoErr(ErrCodeUpdateMessage, ErrSubUnrecognizedWellKnown, "well-known attribute %d", code)
			}
			if flags&FlagTransitive != 0 {
				// Pass along with Partial set (RFC 4271 §5).
				cp := make([]byte, len(val))
				copy(cp, val)
				a.Unknown = append(a.Unknown, RawAttr{Flags: flags | FlagPartial, Code: code, Value: cp})
			}
			// Unrecognized non-transitive optional attributes are quietly
			// ignored.
		}
	}
	return a, nil
}

// checkFlags validates the Optional/Transitive bits against the expected
// category for a known attribute (RFC 4271 §6.3, Attribute Flags Error).
func checkFlags(flags, want uint8, code uint8) error {
	if flags&(FlagOptional|FlagTransitive) != want {
		return protoErr(ErrCodeUpdateMessage, ErrSubAttrFlags, "attribute %d flags %#x want %#x", code, flags&0xc0, want)
	}
	return nil
}

func decodeASPath(val []byte) (ASPath, error) {
	// An empty AS_PATH (locally originated routes) decodes to an empty,
	// non-nil path so encode/decode round-trips preserve presence.
	p := ASPath{}
	for len(val) > 0 {
		if len(val) < 2 {
			return nil, protoErr(ErrCodeUpdateMessage, ErrSubMalformedASPath, "truncated segment header")
		}
		segType, n := val[0], int(val[1])
		if segType != ASSet && segType != ASSequence {
			return nil, protoErr(ErrCodeUpdateMessage, ErrSubMalformedASPath, "segment type %d", segType)
		}
		if n == 0 {
			return nil, protoErr(ErrCodeUpdateMessage, ErrSubMalformedASPath, "empty segment")
		}
		if len(val) < 2+2*n {
			return nil, protoErr(ErrCodeUpdateMessage, ErrSubMalformedASPath, "truncated segment")
		}
		seg := ASPathSegment{Type: segType, ASNs: make([]uint16, n)}
		for i := 0; i < n; i++ {
			seg.ASNs[i] = binary.BigEndian.Uint16(val[2+2*i : 4+2*i])
		}
		p = append(p, seg)
		val = val[2+2*n:]
	}
	return p, nil
}

// Well-known communities (RFC 1997). A route carrying NO_EXPORT must not
// be advertised beyond the receiving AS — the policy boundary the
// federated route-leak oracle checks.
const (
	CommunityNoExport    = 0xFFFFFF01
	CommunityNoAdvertise = 0xFFFFFF02
	CommunityNoExportSub = 0xFFFFFF03
)

// Community helpers: communities are conventionally rendered AS:value.

// MakeCommunity packs an (AS, value) pair into a COMMUNITY word.
func MakeCommunity(as, value uint16) uint32 {
	return uint32(as)<<16 | uint32(value)
}

// SplitCommunity unpacks a COMMUNITY word.
func SplitCommunity(c uint32) (as, value uint16) {
	return uint16(c >> 16), uint16(c)
}

// HasCommunity reports whether c is present in the set.
func (a Attrs) HasCommunity(c uint32) bool {
	for _, x := range a.Communities {
		if x == c {
			return true
		}
	}
	return false
}
