// Package bgp implements the BGP-4 protocol elements of RFC 4271 the DiCE
// case study needs: the four message types with full wire encoding and
// validation, path attributes, and the session finite-state machine. It is
// the Go stand-in for BIRD's BGP implementation.
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dice/internal/netaddr"
)

// Message type codes (RFC 4271 §4.1).
const (
	MsgOpen         = 1
	MsgUpdate       = 2
	MsgNotification = 3
	MsgKeepalive    = 4
)

// Header and message size limits (RFC 4271 §4.1).
const (
	HeaderLen = 19
	MaxMsgLen = 4096
)

// Notification error codes (RFC 4271 §4.5).
const (
	ErrCodeMessageHeader = 1
	ErrCodeOpenMessage   = 2
	ErrCodeUpdateMessage = 3
	ErrCodeHoldTimer     = 4
	ErrCodeFSM           = 5
	ErrCodeCease         = 6
)

// UPDATE message error subcodes (RFC 4271 §6.3).
const (
	ErrSubMalformedAttrList     = 1
	ErrSubUnrecognizedWellKnown = 2
	ErrSubMissingWellKnown      = 3
	ErrSubAttrFlags             = 4
	ErrSubAttrLength            = 5
	ErrSubInvalidOrigin         = 6
	ErrSubInvalidNextHop        = 8
	ErrSubOptionalAttr          = 9
	ErrSubInvalidNetwork        = 10
	ErrSubMalformedASPath       = 11
)

// Error is a protocol error that maps onto a NOTIFICATION.
type Error struct {
	Code    uint8
	Subcode uint8
	Msg     string
}

func (e *Error) Error() string {
	return fmt.Sprintf("bgp: code %d subcode %d: %s", e.Code, e.Subcode, e.Msg)
}

func protoErr(code, subcode uint8, format string, args ...any) error {
	return &Error{Code: code, Subcode: subcode, Msg: fmt.Sprintf(format, args...)}
}

// Message is any BGP message body.
type Message interface {
	// Type returns the message type code.
	Type() uint8
	// encodeBody appends the body (everything after the common header).
	encodeBody(dst []byte) ([]byte, error)
}

// Marker is the all-ones 16-byte header marker (RFC 4271 §4.1).
var marker = [16]byte{
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
}

// Encode serializes a full message including the header.
func Encode(m Message) ([]byte, error) {
	buf := make([]byte, HeaderLen, 64)
	copy(buf, marker[:])
	buf[18] = m.Type()
	buf, err := m.encodeBody(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) > MaxMsgLen {
		return nil, protoErr(ErrCodeMessageHeader, 1, "message length %d exceeds %d", len(buf), MaxMsgLen)
	}
	binary.BigEndian.PutUint16(buf[16:18], uint16(len(buf)))
	return buf, nil
}

// Decode parses one complete message from wire bytes. It validates the
// header per RFC 4271 §6.1 and the body per the per-type rules.
func Decode(wire []byte) (Message, error) {
	if len(wire) < HeaderLen {
		return nil, protoErr(ErrCodeMessageHeader, 2, "short message: %d bytes", len(wire))
	}
	for i := 0; i < 16; i++ {
		if wire[i] != 0xff {
			return nil, protoErr(ErrCodeMessageHeader, 1, "connection not synchronized (bad marker)")
		}
	}
	length := int(binary.BigEndian.Uint16(wire[16:18]))
	if length < HeaderLen || length > MaxMsgLen || length != len(wire) {
		return nil, protoErr(ErrCodeMessageHeader, 2, "bad message length %d (have %d bytes)", length, len(wire))
	}
	body := wire[HeaderLen:length]
	switch wire[18] {
	case MsgOpen:
		return decodeOpen(body)
	case MsgUpdate:
		return decodeUpdate(body)
	case MsgNotification:
		return decodeNotification(body)
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, protoErr(ErrCodeMessageHeader, 2, "keepalive with body")
		}
		return &Keepalive{}, nil
	default:
		return nil, protoErr(ErrCodeMessageHeader, 3, "bad message type %d", wire[18])
	}
}

// Open is the OPEN message (RFC 4271 §4.2).
type Open struct {
	Version  uint8
	AS       uint16
	HoldTime uint16
	RouterID netaddr.Addr
	// OptParams carries raw optional parameters (type, value).
	OptParams []OptParam
}

// OptParam is an OPEN optional parameter.
type OptParam struct {
	Type  uint8
	Value []byte
}

// Type implements Message.
func (*Open) Type() uint8 { return MsgOpen }

func (o *Open) encodeBody(dst []byte) ([]byte, error) {
	dst = append(dst, o.Version)
	dst = binary.BigEndian.AppendUint16(dst, o.AS)
	dst = binary.BigEndian.AppendUint16(dst, o.HoldTime)
	dst = binary.BigEndian.AppendUint32(dst, uint32(o.RouterID))
	var params []byte
	for _, p := range o.OptParams {
		if len(p.Value) > 255 {
			return nil, protoErr(ErrCodeOpenMessage, 0, "optional parameter too long")
		}
		params = append(params, p.Type, uint8(len(p.Value)))
		params = append(params, p.Value...)
	}
	if len(params) > 255 {
		return nil, protoErr(ErrCodeOpenMessage, 0, "optional parameters too long")
	}
	dst = append(dst, uint8(len(params)))
	dst = append(dst, params...)
	return dst, nil
}

func decodeOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, protoErr(ErrCodeMessageHeader, 2, "short OPEN body: %d", len(body))
	}
	o := &Open{
		Version:  body[0],
		AS:       binary.BigEndian.Uint16(body[1:3]),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		RouterID: netaddr.Addr(binary.BigEndian.Uint32(body[5:9])),
	}
	if o.Version != 4 {
		return nil, protoErr(ErrCodeOpenMessage, 1, "unsupported version %d", o.Version)
	}
	if o.HoldTime == 1 || o.HoldTime == 2 {
		return nil, protoErr(ErrCodeOpenMessage, 6, "unacceptable hold time %d", o.HoldTime)
	}
	if o.RouterID == 0 {
		return nil, protoErr(ErrCodeOpenMessage, 3, "bad BGP identifier")
	}
	optLen := int(body[9])
	rest := body[10:]
	if optLen != len(rest) {
		return nil, protoErr(ErrCodeOpenMessage, 0, "optional parameter length mismatch")
	}
	for len(rest) > 0 {
		if len(rest) < 2 {
			return nil, protoErr(ErrCodeOpenMessage, 0, "truncated optional parameter")
		}
		t, l := rest[0], int(rest[1])
		if len(rest) < 2+l {
			return nil, protoErr(ErrCodeOpenMessage, 0, "truncated optional parameter value")
		}
		val := make([]byte, l)
		copy(val, rest[2:2+l])
		o.OptParams = append(o.OptParams, OptParam{Type: t, Value: val})
		rest = rest[2+l:]
	}
	return o, nil
}

// Keepalive is the KEEPALIVE message (header only, RFC 4271 §4.4).
type Keepalive struct{}

// Type implements Message.
func (*Keepalive) Type() uint8 { return MsgKeepalive }

func (*Keepalive) encodeBody(dst []byte) ([]byte, error) { return dst, nil }

// Notification is the NOTIFICATION message (RFC 4271 §4.5).
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Type implements Message.
func (*Notification) Type() uint8 { return MsgNotification }

func (n *Notification) encodeBody(dst []byte) ([]byte, error) {
	dst = append(dst, n.Code, n.Subcode)
	return append(dst, n.Data...), nil
}

func decodeNotification(body []byte) (*Notification, error) {
	if len(body) < 2 {
		return nil, protoErr(ErrCodeMessageHeader, 2, "short NOTIFICATION body")
	}
	data := make([]byte, len(body)-2)
	copy(data, body[2:])
	return &Notification{Code: body[0], Subcode: body[1], Data: data}, nil
}

// Update is the UPDATE message (RFC 4271 §4.3): withdrawn routes, path
// attributes and announced NLRI.
type Update struct {
	Withdrawn []netaddr.Prefix
	Attrs     Attrs
	NLRI      []netaddr.Prefix
}

// Type implements Message.
func (*Update) Type() uint8 { return MsgUpdate }

func (u *Update) encodeBody(dst []byte) ([]byte, error) {
	wd, err := encodePrefixes(nil, u.Withdrawn)
	if err != nil {
		return nil, err
	}
	if len(wd) > 0xffff {
		return nil, protoErr(ErrCodeUpdateMessage, ErrSubMalformedAttrList, "withdrawn routes too long")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(wd)))
	dst = append(dst, wd...)

	at, err := u.Attrs.encode(nil)
	if err != nil {
		return nil, err
	}
	if len(at) > 0xffff {
		return nil, protoErr(ErrCodeUpdateMessage, ErrSubMalformedAttrList, "attributes too long")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(at)))
	dst = append(dst, at...)

	nl, err := encodePrefixes(nil, u.NLRI)
	if err != nil {
		return nil, err
	}
	return append(dst, nl...), nil
}

func decodeUpdate(body []byte) (*Update, error) {
	if len(body) < 4 {
		return nil, protoErr(ErrCodeUpdateMessage, ErrSubMalformedAttrList, "short UPDATE body")
	}
	u := &Update{}
	wdLen := int(binary.BigEndian.Uint16(body[0:2]))
	rest := body[2:]
	if len(rest) < wdLen {
		return nil, protoErr(ErrCodeUpdateMessage, ErrSubMalformedAttrList, "withdrawn length overruns body")
	}
	var err error
	u.Withdrawn, err = decodePrefixes(rest[:wdLen])
	if err != nil {
		return nil, err
	}
	rest = rest[wdLen:]
	if len(rest) < 2 {
		return nil, protoErr(ErrCodeUpdateMessage, ErrSubMalformedAttrList, "missing attribute length")
	}
	atLen := int(binary.BigEndian.Uint16(rest[0:2]))
	rest = rest[2:]
	if len(rest) < atLen {
		return nil, protoErr(ErrCodeUpdateMessage, ErrSubMalformedAttrList, "attribute length overruns body")
	}
	u.Attrs, err = decodeAttrs(rest[:atLen])
	if err != nil {
		return nil, err
	}
	u.NLRI, err = decodePrefixes(rest[atLen:])
	if err != nil {
		return nil, err
	}
	// RFC 4271 §6.3: an UPDATE announcing NLRI must carry the mandatory
	// well-known attributes.
	if len(u.NLRI) > 0 {
		if !u.Attrs.HasOrigin {
			return nil, protoErr(ErrCodeUpdateMessage, ErrSubMissingWellKnown, "missing ORIGIN")
		}
		if !u.Attrs.HasNextHop {
			return nil, protoErr(ErrCodeUpdateMessage, ErrSubMissingWellKnown, "missing NEXT_HOP")
		}
		if u.Attrs.ASPath == nil {
			return nil, protoErr(ErrCodeUpdateMessage, ErrSubMissingWellKnown, "missing AS_PATH")
		}
	}
	return u, nil
}

// encodePrefixes appends NLRI-encoded prefixes (RFC 4271 §4.3): a length
// octet followed by the minimal number of prefix octets.
func encodePrefixes(dst []byte, ps []netaddr.Prefix) ([]byte, error) {
	for _, p := range ps {
		bits := p.Bits()
		if !netaddr.IsValidLen(bits) {
			return nil, protoErr(ErrCodeUpdateMessage, ErrSubInvalidNetwork, "bad prefix length %d", bits)
		}
		dst = append(dst, uint8(bits))
		nb := (bits + 7) / 8
		a := uint32(p.Addr())
		for i := 0; i < nb; i++ {
			dst = append(dst, byte(a>>(24-8*i)))
		}
	}
	return dst, nil
}

// decodePrefixes parses NLRI-encoded prefixes, rejecting lengths > 32,
// truncated prefixes, and non-zero host bits (non-canonical encodings).
func decodePrefixes(b []byte) ([]netaddr.Prefix, error) {
	var out []netaddr.Prefix
	for len(b) > 0 {
		bits := int(b[0])
		if bits > 32 {
			return nil, protoErr(ErrCodeUpdateMessage, ErrSubInvalidNetwork, "prefix length %d", bits)
		}
		nb := (bits + 7) / 8
		if len(b) < 1+nb {
			return nil, protoErr(ErrCodeUpdateMessage, ErrSubInvalidNetwork, "truncated prefix")
		}
		var a uint32
		for i := 0; i < nb; i++ {
			a |= uint32(b[1+i]) << (24 - 8*i)
		}
		addr := netaddr.Addr(a)
		if addr&^netaddr.Mask(bits) != 0 {
			return nil, protoErr(ErrCodeUpdateMessage, ErrSubInvalidNetwork, "host bits set in %s/%d", addr, bits)
		}
		out = append(out, netaddr.PrefixFrom(addr, bits))
		b = b[1+nb:]
	}
	return out, nil
}

// ErrTruncated reports an incomplete message when framing from a stream.
var ErrTruncated = errors.New("bgp: truncated message")

// Frame splits the first complete message off a byte stream, returning the
// message bytes and the remainder. It returns ErrTruncated when more bytes
// are needed.
func Frame(stream []byte) (msg, rest []byte, err error) {
	if len(stream) < HeaderLen {
		return nil, stream, ErrTruncated
	}
	length := int(binary.BigEndian.Uint16(stream[16:18]))
	if length < HeaderLen || length > MaxMsgLen {
		return nil, stream, protoErr(ErrCodeMessageHeader, 2, "bad length %d in stream", length)
	}
	if len(stream) < length {
		return nil, stream, ErrTruncated
	}
	return stream[:length], stream[length:], nil
}
