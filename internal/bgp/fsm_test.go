package bgp

import (
	"testing"
	"time"

	"dice/internal/netaddr"
)

// pipePair wires two sessions back-to-back through in-memory buffers,
// simulating the netsim transport.
type pipePair struct {
	a, b     *Session
	aOut     [][]byte
	bOut     [][]byte
	now      time.Time
	aUpdates []*Update
	bUpdates []*Update
	aEstab   bool
	bEstab   bool
	aDown    []string
	bDown    []string
}

func newPipePair(t *testing.T) *pipePair {
	t.Helper()
	p := &pipePair{now: time.Unix(1e9, 0)}
	p.a = NewSession(SessionConfig{
		LocalAS: 65001, PeerAS: 65002, RouterID: addr("10.0.0.1"), HoldTime: 90 * time.Second,
	}, SessionHooks{
		Send:          func(w []byte) { p.aOut = append(p.aOut, w) },
		OnEstablished: func() { p.aEstab = true },
		OnUpdate:      func(u *Update) { p.aUpdates = append(p.aUpdates, u) },
		OnDown:        func(r string) { p.aDown = append(p.aDown, r) },
	})
	p.b = NewSession(SessionConfig{
		LocalAS: 65002, PeerAS: 65001, RouterID: addr("10.0.0.2"), HoldTime: 30 * time.Second,
	}, SessionHooks{
		Send:          func(w []byte) { p.bOut = append(p.bOut, w) },
		OnEstablished: func() { p.bEstab = true },
		OnUpdate:      func(u *Update) { p.bUpdates = append(p.bUpdates, u) },
		OnDown:        func(r string) { p.bDown = append(p.bDown, r) },
	})
	return p
}

// pump delivers queued bytes in both directions until quiescent.
func (p *pipePair) pump(t *testing.T) {
	t.Helper()
	for len(p.aOut) > 0 || len(p.bOut) > 0 {
		out := p.aOut
		p.aOut = nil
		for _, w := range out {
			if err := p.b.Recv(p.now, w); err != nil {
				t.Fatalf("b.Recv: %v", err)
			}
		}
		out = p.bOut
		p.bOut = nil
		for _, w := range out {
			if err := p.a.Recv(p.now, w); err != nil {
				t.Fatalf("a.Recv: %v", err)
			}
		}
	}
}

func (p *pipePair) establish(t *testing.T) {
	t.Helper()
	p.a.Start(p.now)
	p.b.Start(p.now)
	if err := p.a.ConnUp(p.now); err != nil {
		t.Fatal(err)
	}
	if err := p.b.ConnUp(p.now); err != nil {
		t.Fatal(err)
	}
	p.pump(t)
	if p.a.State() != StateEstablished || p.b.State() != StateEstablished {
		t.Fatalf("states: a=%v b=%v", p.a.State(), p.b.State())
	}
	if !p.aEstab || !p.bEstab {
		t.Fatal("OnEstablished not fired")
	}
}

func TestSessionEstablishment(t *testing.T) {
	p := newPipePair(t)
	p.establish(t)
	// Negotiated hold time is min(90, 30) = 30s on both ends.
	if p.a.holdTime != 30*time.Second || p.b.holdTime != 30*time.Second {
		t.Fatalf("hold times: a=%v b=%v", p.a.holdTime, p.b.holdTime)
	}
	if p.a.PeerAS() != 65002 || p.b.PeerAS() != 65001 {
		t.Fatal("peer AS wrong")
	}
}

func TestUpdateDelivery(t *testing.T) {
	p := newPipePair(t)
	p.establish(t)
	u := &Update{Attrs: baseAttrs(), NLRI: []netaddr.Prefix{pfx("203.0.113.0/24")}}
	if err := p.a.SendUpdate(u); err != nil {
		t.Fatal(err)
	}
	p.pump(t)
	if len(p.bUpdates) != 1 || p.bUpdates[0].NLRI[0].String() != "203.0.113.0/24" {
		t.Fatalf("updates at b: %+v", p.bUpdates)
	}
	if p.a.UpdatesOut != 1 || p.b.UpdatesIn != 1 {
		t.Fatal("counters wrong")
	}
}

func TestWrongPeerASRejected(t *testing.T) {
	p := newPipePair(t)
	// Reconfigure b to expect AS 64999.
	p.b.cfg.PeerAS = 64999
	p.a.Start(p.now)
	p.b.Start(p.now)
	_ = p.a.ConnUp(p.now)
	// a's OPEN arrives at b with AS 65001; b must reject and notify.
	out := p.aOut
	p.aOut = nil
	for _, w := range out {
		_ = p.b.Recv(p.now, w) // error expected internally
	}
	if p.b.State() != StateIdle {
		t.Fatalf("b state = %v, want Idle", p.b.State())
	}
	// b sent a NOTIFICATION.
	if len(p.bOut) == 0 {
		t.Fatal("no notification sent")
	}
	m, err := Decode(p.bOut[0])
	if err != nil {
		t.Fatal(err)
	}
	if n := m.(*Notification); n.Code != ErrCodeOpenMessage {
		t.Fatalf("notification code %d", n.Code)
	}
}

func TestUpdateBeforeEstablishedIsFSMError(t *testing.T) {
	p := newPipePair(t)
	p.a.Start(p.now)
	_ = p.a.ConnUp(p.now)
	p.aOut = nil
	wire, _ := Encode(&Update{})
	if err := p.a.Recv(p.now, wire); err == nil {
		t.Fatal("UPDATE in OpenSent accepted")
	}
	if p.a.State() != StateIdle {
		t.Fatalf("state = %v", p.a.State())
	}
}

func TestHoldTimerExpiry(t *testing.T) {
	p := newPipePair(t)
	p.establish(t)
	p.a.Tick(p.now.Add(31 * time.Second))
	if p.a.State() != StateIdle {
		t.Fatalf("state after hold expiry = %v", p.a.State())
	}
	if len(p.aDown) == 0 {
		t.Fatal("OnDown not fired")
	}
	// The hold-timer NOTIFICATION was emitted.
	found := false
	for _, w := range p.aOut {
		if m, err := Decode(w); err == nil {
			if n, ok := m.(*Notification); ok && n.Code == ErrCodeHoldTimer {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("hold timer notification not sent")
	}
}

func TestKeepaliveRefreshesHold(t *testing.T) {
	p := newPipePair(t)
	p.establish(t)
	// Keepalives exchanged at 10s (30/3) keep the session alive past 30s.
	for i := 1; i <= 5; i++ {
		p.now = p.now.Add(10 * time.Second)
		p.a.Tick(p.now)
		p.b.Tick(p.now)
		p.pump(t)
	}
	if p.a.State() != StateEstablished || p.b.State() != StateEstablished {
		t.Fatalf("session died despite keepalives: a=%v b=%v", p.a.State(), p.b.State())
	}
}

func TestNotificationDropsSession(t *testing.T) {
	p := newPipePair(t)
	p.establish(t)
	wire, _ := Encode(&Notification{Code: ErrCodeCease})
	if err := p.a.Recv(p.now, wire); err != nil {
		t.Fatal(err)
	}
	if p.a.State() != StateIdle {
		t.Fatalf("state = %v", p.a.State())
	}
	if len(p.aDown) != 1 {
		t.Fatalf("down events: %v", p.aDown)
	}
}

func TestConnDown(t *testing.T) {
	p := newPipePair(t)
	p.establish(t)
	p.a.ConnDown("link cut")
	if p.a.State() != StateIdle || len(p.aDown) != 1 {
		t.Fatalf("state=%v downs=%v", p.a.State(), p.aDown)
	}
	// ConnDown in Idle is a no-op.
	p.a.ConnDown("again")
	if len(p.aDown) != 1 {
		t.Fatal("duplicate down event")
	}
}

func TestPartialRecv(t *testing.T) {
	p := newPipePair(t)
	p.establish(t)
	u := &Update{Attrs: baseAttrs(), NLRI: []netaddr.Prefix{pfx("203.0.113.0/24")}}
	wire, _ := Encode(u)
	// Deliver byte by byte.
	for i := range wire {
		if err := p.b.Recv(p.now, wire[i:i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if len(p.bUpdates) != 1 {
		t.Fatalf("updates: %d", len(p.bUpdates))
	}
}

func TestSendUpdateRequiresEstablished(t *testing.T) {
	s := NewSession(SessionConfig{LocalAS: 1, RouterID: addr("1.1.1.1")}, SessionHooks{})
	if err := s.SendUpdate(&Update{}); err == nil {
		t.Fatal("SendUpdate in Idle accepted")
	}
}

// TestPassiveOpen: a session that has not sent its OPEN yet (Connect
// state) must respond to a peer's OPEN with its own OPEN + KEEPALIVE and
// reach Established (the FSM's passive path).
func TestPassiveOpen(t *testing.T) {
	p := newPipePair(t)
	p.a.Start(p.now)
	p.b.Start(p.now)
	// Only a initiates; b stays passive in Connect.
	if err := p.a.ConnUp(p.now); err != nil {
		t.Fatal(err)
	}
	p.pump(t)
	if p.a.State() != StateEstablished || p.b.State() != StateEstablished {
		t.Fatalf("passive establishment failed: a=%v b=%v", p.a.State(), p.b.State())
	}
}

// TestSessionRestartAfterDown: after a session drops, Start/ConnUp must
// bring it back up cleanly (Idle → ... → Established again).
func TestSessionRestartAfterDown(t *testing.T) {
	p := newPipePair(t)
	p.establish(t)
	p.a.ConnDown("flap")
	p.b.ConnDown("flap")
	if p.a.State() != StateIdle {
		t.Fatal("not idle after down")
	}
	p.a.Start(p.now)
	p.b.Start(p.now)
	if err := p.a.ConnUp(p.now); err != nil {
		t.Fatal(err)
	}
	if err := p.b.ConnUp(p.now); err != nil {
		t.Fatal(err)
	}
	p.pump(t)
	if p.a.State() != StateEstablished || p.b.State() != StateEstablished {
		t.Fatalf("restart failed: a=%v b=%v", p.a.State(), p.b.State())
	}
}
