// Incremental prefix solving: sibling negation queries from one explored
// path share all constraints but the last predicate — the prefix-sharing
// observation behind incremental SMT (push/pop) in CREST/KLEE-style
// engines. Instead of re-propagating the whole conjunction from scratch
// per query, the solver propagates each shared prefix once into an
// immutable state snapshot and answers a negation by cloning that
// snapshot and propagating only the delta predicate.
//
// Snapshots are chained: the entry for prefix[:i+1] is built by
// extending the entry for prefix[:i] with one constraint, so exploring a
// path of depth d costs O(d) incremental propagations in total, and
// sibling paths (which share every constraint up to their fork) reuse
// the chain across queries. Entries are keyed by prefix fingerprint with
// structural verification, so a fingerprint collision rebuilds instead
// of reusing a wrong snapshot.
package solver

import (
	"dice/internal/sym"
)

// prefixEntry is one propagated prefix snapshot. st is the state after
// propagating cs to fixpoint — treated as immutable once stored (queries
// clone it) — and is nil when the prefix alone is infeasible.
type prefixEntry struct {
	cs   []sym.Expr
	vars []*sym.Var
	st   *state
}

// prefixCacheCap bounds the per-solver snapshot cache. The cache is an
// optimization only: on overflow it is reset, and future prefixes are
// re-propagated from scratch.
const prefixCacheCap = 4096

// SolvePrefixed solves the conjunction cs, treating cs[:len(cs)-1] as a
// shared prefix and the final element as the delta predicate: the prefix
// is propagated once into the solver's snapshot chain and reused across
// queries instead of re-propagating the whole conjunction from scratch.
// cache, when non-nil, memoizes the full query exactly as SolveCached
// does. The scheduler routes every negation query through this entry
// point: all negations of one path hit the same chain, and sibling paths
// share it up to their fork. cs must not be mutated after the call (the
// snapshot chain keeps sub-slices of it).
func (s *Solver) SolvePrefixed(cache *Cache, cs []sym.Expr, hint sym.Env) (env sym.Env, res Result, hit bool) {
	if len(cs) == 0 {
		return sym.Env{}, Sat, false
	}
	var key Key
	if cache != nil {
		key = CacheKey(cs)
		if env, res, ok := cache.Lookup(key, cs); ok {
			return env, res, true
		}
	}
	prefix, delta := cs[:len(cs)-1], cs[len(cs)-1]
	pe := s.prefixFor(prefix)
	env, res = s.solveFromPrefix(pe, cs, delta, hint)
	if cache != nil {
		cache.Store(key, cs, env, res)
	}
	return env, res, false
}

// prefixFor returns the propagated snapshot for prefix, building missing
// chain links from the deepest cached ancestor.
func (s *Solver) prefixFor(prefix []sym.Expr) *prefixEntry {
	if s.prefixes == nil {
		s.prefixes = make(map[sym.Fingerprint]*prefixEntry, 64)
	}
	// Roll the per-level fingerprints once (integer work, no rendering).
	fps := s.fpScratch
	if cap(fps) < len(prefix)+1 {
		fps = make([]sym.Fingerprint, 0, len(prefix)*2+1)
	}
	fps = fps[:0]
	var f sym.Fingerprint
	fps = append(fps, f)
	for _, c := range prefix {
		f = f.Extend(c)
		fps = append(fps, f)
	}
	s.fpScratch = fps

	if e, ok := s.prefixes[fps[len(prefix)]]; ok && sym.PathsEqual(e.cs, prefix) {
		s.PrefixHits++
		return e
	}
	s.PrefixMisses++

	// Deepest cached ancestor, then extend one constraint at a time.
	start := 0
	cur := &prefixEntry{st: newState(0)}
	for i := len(prefix) - 1; i >= 1; i-- {
		if e, ok := s.prefixes[fps[i]]; ok && sym.PathsEqual(e.cs, prefix[:i]) {
			start, cur = i, e
			break
		}
	}
	for i := start; i < len(prefix); i++ {
		cur = s.extendPrefix(cur, prefix[:i+1])
		if len(s.prefixes) >= prefixCacheCap {
			s.prefixes = make(map[sym.Fingerprint]*prefixEntry, 64)
		}
		s.prefixes[fps[i+1]] = cur
	}
	return cur
}

// extendPrefix builds the snapshot for cs = parent.cs + one constraint.
func (s *Solver) extendPrefix(parent *prefixEntry, cs []sym.Expr) *prefixEntry {
	e := &prefixEntry{cs: cs}
	if parent.st == nil {
		return e // ancestor already infeasible; so is every extension
	}
	added := cs[len(cs)-1]
	e.vars, e.st = addVars(parent.vars, parent.st, added)
	// Propagate the delta; the parent state is already a fixpoint of the
	// shorter prefix, so if the delta refined nothing the extension is
	// converged too, and otherwise the fixpoint re-run starts from a
	// converged state (typically one cheap round, not the from-⊤ cascade).
	ch, ok := propagate(added, true, e.st)
	if !ok || (ch && !propagateAll(cs, e.st)) {
		e.st = nil
	}
	return e
}

// addVars clones st and extends vars/domains with the variables of e not
// already present. The parent's slices stay untouched (snapshots are
// immutable once stored).
func addVars(vars []*sym.Var, st *state, e sym.Expr) ([]*sym.Var, *state) {
	nv := make([]*sym.Var, len(vars), len(vars)+2)
	copy(nv, vars)
	nv = sym.Vars(e, nv)
	ns := st.clone()
	for _, v := range nv[len(vars):] {
		if _, ok := ns.iv[v.ID]; !ok {
			ns.iv[v.ID] = full(v.W)
		}
	}
	return nv, ns
}

// solveFromPrefix answers cs = prefix ∧ delta starting from the prefix
// snapshot: clone, propagate the delta, fixpoint, then search.
func (s *Solver) solveFromPrefix(pe *prefixEntry, cs []sym.Expr, delta sym.Expr, hint sym.Env) (sym.Env, Result) {
	s.Calls++
	if pe.st == nil {
		// The prefix alone is contradictory; no delta can rescue it.
		s.UnsatCount++
		return nil, Unsat
	}
	vars, st := addVars(pe.vars, pe.st, delta)
	ch, ok := propagate(delta, true, st)
	if !ok || (ch && !propagateAll(cs, st)) {
		s.UnsatCount++
		return nil, Unsat
	}
	budget := s.opts.MaxNodes
	complete := true
	env, ok := s.search(cs, vars, st, hint, &budget, &complete)
	if ok {
		s.SatCount++
		return env, Sat
	}
	if budget <= 0 || !complete {
		return nil, Unknown
	}
	s.UnsatCount++
	return nil, Unsat
}
