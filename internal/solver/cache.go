package solver

import (
	"sync"

	"dice/internal/sym"
)

// Key is the memo key for a constraint conjunction: its 128-bit rolling
// fingerprint (sym.FingerprintPath). Fingerprinting hashes precomputed
// node hashes — O(n) integer work, no rendering, no allocation — where
// the old key was the full string rendering of the conjunction.
type Key = sym.Fingerprint

// Cache memoizes Solve results keyed on constraint fingerprints. DiCE's
// online mode issues the same negation queries over and over: every
// round re-derives the same path conditions from the same seed, and
// different scenarios share sub-formulas. A shared Cache answers those
// repeats without search.
//
// Each entry keeps the keyed conjunction itself; lookups verify it with
// sym.PathsEqual (pointer-fast on the interned IR), so a fingerprint
// collision degrades to a cache miss, never a wrong answer.
//
// Sat results are cached with their model (any model is valid regardless
// of the hint the original query carried); Unsat results are cached as
// proofs. Unknown results are NOT cached — they depend on the node
// budget, and a later query may afford a bigger one.
//
// Safe for concurrent use; one Cache is typically shared by all workers
// of all rounds exploring a peer.
type Cache struct {
	mu         sync.Mutex
	entries    map[Key]cacheEntry
	hits       uint64
	misses     uint64
	collisions uint64
}

type cacheEntry struct {
	cs  []sym.Expr // keyed conjunction, for collision verification
	env sym.Env    // nil unless res == Sat
	res Result
}

// NewCache creates an empty solver memo cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[Key]cacheEntry)}
}

// CacheKey returns the memo key for a constraint conjunction.
func CacheKey(constraints []sym.Expr) Key {
	return sym.FingerprintPath(constraints)
}

// Lookup returns the memoized result for key, verifying that the stored
// conjunction structurally equals cs (a mismatching entry — a genuine
// fingerprint collision — reports a miss). The returned env is a copy;
// callers may mutate it freely.
func (c *Cache) Lookup(key Key, cs []sym.Expr) (sym.Env, Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, Unknown, false
	}
	if !sym.PathsEqual(e.cs, cs) {
		c.collisions++
		c.misses++
		return nil, Unknown, false
	}
	c.hits++
	var env sym.Env
	if e.env != nil {
		env = make(sym.Env, len(e.env))
		for k, v := range e.env {
			env[k] = v
		}
	}
	return env, e.res, true
}

// Store memoizes a result for the conjunction cs under key. Unknown
// results are ignored (budget-dependent).
func (c *Cache) Store(key Key, cs []sym.Expr, env sym.Env, res Result) {
	if res == Unknown {
		return
	}
	var copied sym.Env
	if res == Sat && env != nil {
		copied = make(sym.Env, len(env))
		for k, v := range env {
			copied[k] = v
		}
	}
	stored := make([]sym.Expr, len(cs))
	copy(stored, cs)
	c.mu.Lock()
	c.entries[key] = cacheEntry{cs: stored, env: copied, res: res}
	c.mu.Unlock()
}

// Stats returns cumulative hit/miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Collisions returns how many lookups found a fingerprint whose stored
// conjunction failed structural verification (expected ~0; a nonzero
// count is the collision check earning its keep).
func (c *Cache) Collisions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.collisions
}

// Len returns the number of memoized queries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// SolveCached answers the query from the cache when possible, otherwise
// solves with the hint and memoizes the outcome. cache may be nil (plain
// SolveHinted). hit reports whether the answer came from the cache.
func (s *Solver) SolveCached(cache *Cache, constraints []sym.Expr, hint sym.Env) (env sym.Env, res Result, hit bool) {
	if cache == nil {
		env, res = s.SolveHinted(constraints, hint)
		return env, res, false
	}
	key := CacheKey(constraints)
	if env, res, ok := cache.Lookup(key, constraints); ok {
		return env, res, true
	}
	env, res = s.SolveHinted(constraints, hint)
	cache.Store(key, constraints, env, res)
	return env, res, false
}
