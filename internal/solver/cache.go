package solver

import (
	"sync"

	"dice/internal/sym"
)

// Cache memoizes Solve results keyed on the canonical rendering of the
// constraint conjunction (sym.FormatPath — Expr.String is canonical, so
// structurally identical queries share a key). DiCE's online mode issues
// the same negation queries over and over: every round re-derives the
// same path conditions from the same seed, and different scenarios share
// sub-formulas. A shared Cache answers those repeats without search.
//
// Sat results are cached with their model (any model is valid regardless
// of the hint the original query carried); Unsat results are cached as
// proofs. Unknown results are NOT cached — they depend on the node
// budget, and a later query may afford a bigger one.
//
// Safe for concurrent use; one Cache is typically shared by all workers
// of all rounds exploring a peer.
type Cache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	env sym.Env // nil unless res == Sat
	res Result
}

// NewCache creates an empty solver memo cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]cacheEntry)}
}

// CacheKey returns the canonical memo key for a constraint conjunction.
func CacheKey(constraints []sym.Expr) string {
	return sym.FormatPath(constraints)
}

// Lookup returns the memoized result for key. The returned env is a copy;
// callers may mutate it freely.
func (c *Cache) Lookup(key string) (sym.Env, Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, Unknown, false
	}
	c.hits++
	var env sym.Env
	if e.env != nil {
		env = make(sym.Env, len(e.env))
		for k, v := range e.env {
			env[k] = v
		}
	}
	return env, e.res, true
}

// Store memoizes a result. Unknown results are ignored (budget-dependent).
func (c *Cache) Store(key string, env sym.Env, res Result) {
	if res == Unknown {
		return
	}
	var copied sym.Env
	if res == Sat && env != nil {
		copied = make(sym.Env, len(env))
		for k, v := range env {
			copied[k] = v
		}
	}
	c.mu.Lock()
	c.entries[key] = cacheEntry{env: copied, res: res}
	c.mu.Unlock()
}

// Stats returns cumulative hit/miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of memoized queries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// SolveCached answers the query from the cache when possible, otherwise
// solves with the hint and memoizes the outcome. cache may be nil (plain
// SolveHinted). hit reports whether the answer came from the cache.
func (s *Solver) SolveCached(cache *Cache, constraints []sym.Expr, hint sym.Env) (env sym.Env, res Result, hit bool) {
	if cache == nil {
		env, res = s.SolveHinted(constraints, hint)
		return env, res, false
	}
	key := CacheKey(constraints)
	if env, res, ok := cache.Lookup(key); ok {
		return env, res, true
	}
	env, res = s.SolveHinted(constraints, hint)
	cache.Store(key, env, res)
	return env, res, false
}
