package solver

import (
	"testing"

	"dice/internal/sym"
)

// maskedBit builds ((x >> k) & 1) — the router-shaped masked-field term.
func maskedBit(x sym.Expr, k uint64) sym.Expr {
	return sym.NewBin(sym.OpAnd, sym.NewBin(sym.OpShr, x, sym.NewConst(k, 64)), sym.NewConst(1, 64))
}

// TestAnalyzeFull64BitWidth: propagation over the full 64-bit domain must
// not wrap or truncate — the known-bits mask and interval must cover all
// 64 bits.
func TestAnalyzeFull64BitWidth(t *testing.T) {
	x := sym.NewVar(0, "x", 64)
	hi := uint64(1) << 63
	info, ok := Analyze([]sym.Expr{
		sym.NewCmp(sym.OpGe, x, sym.NewConst(hi, 64)),
		sym.NewCmp(sym.OpEq, maskedBit(x, 0), sym.NewConst(1, 64)),
	})
	if !ok {
		t.Fatal("feasible constraints reported contradictory")
	}
	v := info[0]
	if v.Width != 64 || v.Lo < hi || v.Hi != ^uint64(0) {
		t.Fatalf("VarInfo = %+v, want Lo >= 2^63, Hi = MaxUint64", v)
	}
	if v.One&1 != 1 {
		t.Fatalf("bit 0 not proven 1: One = %#x", v.One)
	}
	// Top-bit field: ((x >> 63) & 1) == 1 must prove the MSB.
	info, ok = Analyze([]sym.Expr{
		sym.NewCmp(sym.OpEq, maskedBit(x, 63), sym.NewConst(1, 64)),
	})
	if !ok {
		t.Fatal("MSB constraint reported contradictory")
	}
	if info[0].One != hi {
		t.Fatalf("MSB not proven: One = %#x, want %#x", info[0].One, hi)
	}
}

// TestPropagateBitsSingleBitNeFlip: a != on a single-bit field is the ==
// of the flipped bit, and must land in the known-bits domain.
func TestPropagateBitsSingleBitNeFlip(t *testing.T) {
	x := sym.NewVar(0, "x", 64)
	info, ok := Analyze([]sym.Expr{
		sym.NewCmp(sym.OpNe, maskedBit(x, 5), sym.NewConst(0, 64)),
	})
	if !ok {
		t.Fatal("single-bit != reported contradictory")
	}
	if info[0].One&(1<<5) == 0 {
		t.Fatalf("bit 5 not proven 1 from != 0: One = %#x", info[0].One)
	}
	info, ok = Analyze([]sym.Expr{
		sym.NewCmp(sym.OpNe, maskedBit(x, 5), sym.NewConst(1, 64)),
	})
	if !ok {
		t.Fatal("single-bit != 1 reported contradictory")
	}
	if info[0].Zero&(1<<5) == 0 {
		t.Fatalf("bit 5 not proven 0 from != 1: Zero = %#x", info[0].Zero)
	}
}

// TestPropagateBitsMaskOutsideField: a field compared against a value
// outside its mask can never hold — definite contradiction.
func TestPropagateBitsMaskOutsideField(t *testing.T) {
	x := sym.NewVar(0, "x", 32)
	_, ok := Analyze([]sym.Expr{
		sym.NewCmp(sym.OpEq,
			sym.NewBin(sym.OpAnd, x, sym.NewConst(0xF, 32)),
			sym.NewConst(0x10, 32)),
	})
	if ok {
		t.Fatal("(x & 0xF) == 0x10 not detected as contradictory")
	}
}

// TestBitsContradictionAcrossConstraints: two masked-field equalities
// that pin the same bit both ways are unsat even though each constraint's
// interval is satisfiable.
func TestBitsContradictionAcrossConstraints(t *testing.T) {
	x := v32(0, "x")
	requireUnsat(t,
		sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpAnd, x, c32(1)), c32(1)),
		sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpAnd, x, c32(3)), c32(2)),
	)
}

// TestCollectSideConstsMasksWidth: candidate constants derived by
// inverting an op must be masked to the variable's width — (x + 250) ==
// 10 at width 8 has the in-domain witness x == 16, which the unmasked
// derivation 10-250 (wrapping far past 2^8) used to miss as a candidate.
func TestCollectSideConstsMasksWidth(t *testing.T) {
	x := v8(0, "x")
	env := requireSat(t,
		sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpAdd, x, sym.NewConst(250, 8)), sym.NewConst(10, 8)),
	)
	if env[0] != 16 {
		t.Fatalf("x = %d, want 16", env[0])
	}
	var got []uint64
	collectSideConsts(
		sym.NewBin(sym.OpAdd, x, sym.NewConst(250, 8)), sym.NewConst(10, 8), 0, &got)
	for _, v := range got {
		if v > 0xFF {
			t.Fatalf("candidate %d exceeds the 8-bit domain", v)
		}
	}
	// Shift inversion: ((x >> 4) == 0xFF) at width 8 — the derived
	// candidate 0xFF<<4 wraps past the domain and must be masked in.
	got = got[:0]
	collectSideConsts(
		sym.NewBin(sym.OpShr, x, sym.NewConst(4, 8)), sym.NewConst(0xFF, 8), 0, &got)
	for _, v := range got {
		if v > 0xFF {
			t.Fatalf("shift candidate %d exceeds the 8-bit domain", v)
		}
	}
}

// TestCacheFingerprintCollisionVerified: a Lookup whose fingerprint
// matches a stored entry for a *different* conjunction must miss (and be
// counted as a collision), never return the wrong result.
func TestCacheFingerprintCollisionVerified(t *testing.T) {
	cache := NewCache()
	x := v32(0, "x")
	cs1 := []sym.Expr{sym.NewCmp(sym.OpEq, x, c32(1))}
	cs2 := []sym.Expr{sym.NewCmp(sym.OpEq, x, c32(2))}
	key := CacheKey(cs1)
	cache.Store(key, cs1, sym.Env{0: 1}, Sat)

	if _, _, ok := cache.Lookup(key, cs1); !ok {
		t.Fatal("exact lookup missed")
	}
	// Force the collision: same key, structurally different conjunction.
	if _, _, ok := cache.Lookup(key, cs2); ok {
		t.Fatal("collision lookup returned a foreign entry")
	}
	if cache.Collisions() != 1 {
		t.Fatalf("collisions = %d, want 1", cache.Collisions())
	}
}

// TestCacheDistinctKeysDistinctEntries: fingerprint keys separate
// structurally different conjunctions (no false sharing), including
// permutations — path conditions are order-sensitive.
func TestCacheDistinctKeysDistinctEntries(t *testing.T) {
	x := v32(0, "x")
	a := sym.NewCmp(sym.OpGt, x, c32(1))
	b := sym.NewCmp(sym.OpLt, x, c32(9))
	if CacheKey([]sym.Expr{a, b}) == CacheKey([]sym.Expr{b, a}) {
		t.Fatal("permuted conjunctions share a fingerprint")
	}
	if CacheKey([]sym.Expr{a}) == CacheKey([]sym.Expr{a, b}) {
		t.Fatal("prefix shares a fingerprint with its extension")
	}
}

// TestSolvePrefixedMatchesSolveHinted: the incremental prefix path must
// agree with the from-scratch path on both Sat models and Unsat proofs.
func TestSolvePrefixedMatchesSolveHinted(t *testing.T) {
	x := v32(0, "x")
	y := v8(1, "y")
	prefix := []sym.Expr{
		sym.NewCmp(sym.OpGt, x, c32(10)),
		sym.NewCmp(sym.OpLt, x, c32(100)),
		sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpAnd, x, c32(1)), c32(1)),
	}
	sat := sym.NewCmp(sym.OpEq, y, sym.NewConst(7, 8))
	unsat := sym.NewCmp(sym.OpGt, x, c32(200))

	s := New(Options{})
	env, res, hit := s.SolvePrefixed(nil, append(append([]sym.Expr{}, prefix...), sat), nil)
	if res != Sat || hit {
		t.Fatalf("sat delta: res=%v hit=%v", res, hit)
	}
	for _, c := range append(append([]sym.Expr{}, prefix...), sat) {
		if !sym.EvalBool(c, env) {
			t.Fatalf("model %v violates %v", env, c)
		}
	}
	if _, res, _ := s.SolvePrefixed(nil, append(append([]sym.Expr{}, prefix...), unsat), nil); res != Unsat {
		t.Fatalf("unsat delta: res=%v", res)
	}
}

// TestSolvePrefixedReusesSnapshots: sibling queries over the same prefix
// must hit the propagated snapshot instead of rebuilding the chain.
func TestSolvePrefixedReusesSnapshots(t *testing.T) {
	x := v32(0, "x")
	prefix := []sym.Expr{
		sym.NewCmp(sym.OpGt, x, c32(10)),
		sym.NewCmp(sym.OpLt, x, c32(1000)),
	}
	s := New(Options{})
	for i := uint64(0); i < 8; i++ {
		delta := sym.NewCmp(sym.OpNe, x, c32(20+i))
		if _, res, _ := s.SolvePrefixed(nil, append(append([]sym.Expr{}, prefix...), delta), nil); res != Sat {
			t.Fatalf("query %d: res=%v", i, res)
		}
	}
	if s.PrefixHits < 7 {
		t.Fatalf("prefix hits = %d, want >= 7 (snapshot not reused)", s.PrefixHits)
	}
}

// TestSolvePrefixedInfeasiblePrefix: a contradictory prefix answers every
// delta Unsat straight from the nil snapshot.
func TestSolvePrefixedInfeasiblePrefix(t *testing.T) {
	x := v32(0, "x")
	prefix := []sym.Expr{
		sym.NewCmp(sym.OpEq, x, c32(1)),
		sym.NewCmp(sym.OpEq, x, c32(2)),
	}
	s := New(Options{})
	cs := append(append([]sym.Expr{}, prefix...), sym.NewCmp(sym.OpGe, x, c32(0)))
	if _, res, _ := s.SolvePrefixed(nil, cs, nil); res != Unsat {
		t.Fatalf("res = %v, want Unsat", res)
	}
}

// TestSolvePrefixedCacheIntegration: repeated prefixed queries answer
// from the memo cache with the model intact.
func TestSolvePrefixedCacheIntegration(t *testing.T) {
	cache := NewCache()
	x := v32(0, "x")
	cs := []sym.Expr{
		sym.NewCmp(sym.OpGt, x, c32(10)),
		sym.NewCmp(sym.OpEq, x, c32(42)),
	}
	s := New(Options{})
	env, res, hit := s.SolvePrefixed(cache, cs, nil)
	if res != Sat || hit || env[0] != 42 {
		t.Fatalf("cold: env=%v res=%v hit=%v", env, res, hit)
	}
	env, res, hit = s.SolvePrefixed(cache, cs, nil)
	if res != Sat || !hit || env[0] != 42 {
		t.Fatalf("warm: env=%v res=%v hit=%v", env, res, hit)
	}
}
