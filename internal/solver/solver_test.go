package solver

import (
	"testing"
	"testing/quick"

	"dice/internal/sym"
)

func v32(id int, name string) *sym.Var { return &sym.Var{ID: id, Name: name, W: 32} }
func v8(id int, name string) *sym.Var  { return &sym.Var{ID: id, Name: name, W: 8} }
func c32(v uint64) sym.Expr            { return sym.NewConst(v, 32) }

func solve(t *testing.T, cs ...sym.Expr) (sym.Env, Result) {
	t.Helper()
	return New(Options{}).Solve(cs)
}

func requireSat(t *testing.T, cs ...sym.Expr) sym.Env {
	t.Helper()
	env, res := solve(t, cs...)
	if res != Sat {
		t.Fatalf("expected sat, got %v for %s", res, sym.FormatPath(cs))
	}
	for _, c := range cs {
		if !sym.EvalBool(c, env) {
			t.Fatalf("model %v does not satisfy %v", env, c)
		}
	}
	return env
}

func requireUnsat(t *testing.T, cs ...sym.Expr) {
	t.Helper()
	_, res := solve(t, cs...)
	if res != Unsat {
		t.Fatalf("expected unsat, got %v for %s", res, sym.FormatPath(cs))
	}
}

func TestSimpleEquality(t *testing.T) {
	x := v32(1, "x")
	env := requireSat(t, sym.NewCmp(sym.OpEq, x, c32(42)))
	if env[1] != 42 {
		t.Fatalf("x = %d, want 42", env[1])
	}
}

func TestRangeConjunction(t *testing.T) {
	x := v32(1, "x")
	env := requireSat(t,
		sym.NewCmp(sym.OpGt, x, c32(10)),
		sym.NewCmp(sym.OpLt, x, c32(13)),
	)
	if env[1] != 11 && env[1] != 12 {
		t.Fatalf("x = %d, want 11 or 12", env[1])
	}
}

func TestUnsatRange(t *testing.T) {
	x := v32(1, "x")
	requireUnsat(t,
		sym.NewCmp(sym.OpLt, x, c32(5)),
		sym.NewCmp(sym.OpGt, x, c32(10)),
	)
}

func TestUnsatContradiction(t *testing.T) {
	x := v32(1, "x")
	requireUnsat(t,
		sym.NewCmp(sym.OpEq, x, c32(1)),
		sym.NewCmp(sym.OpEq, x, c32(2)),
	)
}

func TestArithmeticInversion(t *testing.T) {
	x := v32(1, "x")
	// x + 100 == 142  =>  x == 42
	env := requireSat(t, sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpAdd, x, c32(100)), c32(142)))
	if env[1] != 42 {
		t.Fatalf("x = %d, want 42", env[1])
	}
	// x - 7 == 3  =>  x == 10
	env = requireSat(t, sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpSub, x, c32(7)), c32(3)))
	if env[1] != 10 {
		t.Fatalf("x = %d, want 10", env[1])
	}
}

func TestShiftInversion(t *testing.T) {
	x := v32(1, "x")
	// x >> 8 == 0xCB  => x in [0xCB00, 0xCBFF]
	env := requireSat(t, sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpShr, x, c32(8)), c32(0xCB)))
	if env[1]>>8 != 0xCB {
		t.Fatalf("x = %#x, want high byte 0xCB", env[1])
	}
}

func TestMaskConstraint(t *testing.T) {
	x := v32(1, "x")
	// (x & 0xff) == 0x42 — typical low-byte field extraction.
	env := requireSat(t, sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpAnd, x, c32(0xff)), c32(0x42)))
	if env[1]&0xff != 0x42 {
		t.Fatalf("x = %#x, want low byte 0x42", env[1])
	}
}

func TestTwoVariables(t *testing.T) {
	x, y := v32(1, "x"), v32(2, "y")
	env := requireSat(t,
		sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpAdd, x, y), c32(10)),
		sym.NewCmp(sym.OpEq, x, c32(3)),
	)
	if env[1] != 3 || env[2] != 7 {
		t.Fatalf("got x=%d y=%d, want 3,7", env[1], env[2])
	}
}

func TestNarrowWidthExhaustive(t *testing.T) {
	b := v8(1, "masklen")
	// Typical prefix-length predicate: 24 < len <= 32 and len != 25..31
	cs := []sym.Expr{
		sym.NewCmp(sym.OpGt, b, sym.NewConst(24, 8)),
		sym.NewCmp(sym.OpLe, b, sym.NewConst(32, 8)),
		sym.NewCmp(sym.OpNe, b, sym.NewConst(25, 8)),
		sym.NewCmp(sym.OpNe, b, sym.NewConst(26, 8)),
		sym.NewCmp(sym.OpNe, b, sym.NewConst(27, 8)),
		sym.NewCmp(sym.OpNe, b, sym.NewConst(28, 8)),
		sym.NewCmp(sym.OpNe, b, sym.NewConst(29, 8)),
		sym.NewCmp(sym.OpNe, b, sym.NewConst(30, 8)),
		sym.NewCmp(sym.OpNe, b, sym.NewConst(31, 8)),
	}
	env := requireSat(t, cs...)
	if env[1] != 32 {
		t.Fatalf("masklen = %d, want 32", env[1])
	}
}

func TestNarrowWidthUnsat(t *testing.T) {
	b := v8(1, "flag")
	requireUnsat(t,
		sym.NewCmp(sym.OpLt, b, sym.NewConst(2, 8)),
		sym.NewCmp(sym.OpNe, b, sym.NewConst(0, 8)),
		sym.NewCmp(sym.OpNe, b, sym.NewConst(1, 8)),
	)
}

func TestDisjunction(t *testing.T) {
	x := v32(1, "x")
	or := sym.NewBool(sym.OpLOr,
		sym.NewCmp(sym.OpEq, x, c32(5)),
		sym.NewCmp(sym.OpEq, x, c32(9)))
	env := requireSat(t, or)
	if env[1] != 5 && env[1] != 9 {
		t.Fatalf("x = %d, want 5 or 9", env[1])
	}
	// Force the second disjunct.
	env = requireSat(t, or, sym.NewCmp(sym.OpNe, x, c32(5)))
	if env[1] != 9 {
		t.Fatalf("x = %d, want 9", env[1])
	}
}

func TestNegatedDisjunction(t *testing.T) {
	x := v32(1, "x")
	or := sym.NewBool(sym.OpLOr,
		sym.NewCmp(sym.OpLt, x, c32(5)),
		sym.NewCmp(sym.OpGt, x, c32(9)))
	env := requireSat(t, sym.NewNot(or))
	if env[1] < 5 || env[1] > 9 {
		t.Fatalf("x = %d, want in [5,9]", env[1])
	}
}

func TestHintPreferred(t *testing.T) {
	x := v32(1, "x")
	s := New(Options{Hint: sym.Env{1: 77}})
	env, res := s.Solve([]sym.Expr{sym.NewCmp(sym.OpGt, x, c32(10))})
	if res != Sat {
		t.Fatalf("expected sat, got %v", res)
	}
	if env[1] != 77 {
		t.Fatalf("hint not honored: x = %d", env[1])
	}
}

func TestHintInfeasibleStillSolves(t *testing.T) {
	x := v32(1, "x")
	s := New(Options{Hint: sym.Env{1: 3}})
	env, res := s.Solve([]sym.Expr{sym.NewCmp(sym.OpGt, x, c32(10))})
	if res != Sat || env[1] <= 10 {
		t.Fatalf("got %v env=%v", res, env)
	}
}

func TestEmptyConstraints(t *testing.T) {
	env, res := solve(t)
	if res != Sat || len(env) != 0 {
		t.Fatalf("empty constraint set should be trivially sat, got %v %v", res, env)
	}
}

func TestConstantConstraints(t *testing.T) {
	if _, res := solve(t, sym.True); res != Sat {
		t.Fatal("true should be sat")
	}
	if _, res := solve(t, sym.False); res != Unsat {
		t.Fatal("false should be unsat")
	}
}

func TestPrefixContainmentConstraint(t *testing.T) {
	// The exact shape the BGP import filter produces:
	//   (addr & mask(16)) == 0x0A010000  — prefix inside 10.1.0.0/16
	addr := v32(1, "nlri.addr")
	env := requireSat(t, sym.NewCmp(sym.OpEq,
		sym.NewBin(sym.OpAnd, addr, c32(0xffff0000)),
		c32(0x0A010000)))
	if env[1]&0xffff0000 != 0x0A010000 {
		t.Fatalf("addr %#x not in 10.1.0.0/16", env[1])
	}
}

func TestPrefixNotInRange(t *testing.T) {
	// Negated containment: (addr & mask) != net — must find an address
	// outside the prefix.
	addr := v32(1, "nlri.addr")
	env := requireSat(t, sym.NewCmp(sym.OpNe,
		sym.NewBin(sym.OpAnd, addr, c32(0xffff0000)),
		c32(0x0A010000)))
	if env[1]&0xffff0000 == 0x0A010000 {
		t.Fatalf("addr %#x should be outside 10.1.0.0/16", env[1])
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New(Options{})
	x := v32(1, "x")
	s.Solve([]sym.Expr{sym.NewCmp(sym.OpEq, x, c32(1))})
	s.Solve([]sym.Expr{sym.False})
	if s.Calls != 2 || s.SatCount != 1 || s.UnsatCount != 1 {
		t.Fatalf("stats wrong: %+v", s)
	}
}

// Property: for random interval constraints on one variable, the solver's
// sat/unsat answer matches brute force over a sampled domain.
func TestSolverSoundOnIntervals(t *testing.T) {
	f := func(loRaw, hiRaw uint8) bool {
		lo, hi := uint64(loRaw), uint64(hiRaw)
		x := v8(1, "x")
		cs := []sym.Expr{
			sym.NewCmp(sym.OpGe, x, sym.NewConst(lo, 8)),
			sym.NewCmp(sym.OpLe, x, sym.NewConst(hi, 8)),
		}
		env, res := New(Options{}).Solve(cs)
		if lo <= hi {
			return res == Sat && env[1] >= lo && env[1] <= hi
		}
		return res == Unsat
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every Sat model actually satisfies the constraints (checked by
// direct evaluation) for random three-constraint systems.
func TestModelsAreValid(t *testing.T) {
	f := func(a, b, c uint16, ops [3]uint8) bool {
		x := v32(1, "x")
		vals := [3]uint64{uint64(a), uint64(b), uint64(c)}
		cs := make([]sym.Expr, 3)
		for i := range cs {
			cs[i] = sym.NewCmp(sym.CmpOp(ops[i]%6), x, c32(vals[i]))
		}
		env, res := New(Options{}).Solve(cs)
		if res != Sat {
			return true // unsat/unknown: nothing to validate
		}
		for _, cst := range cs {
			if !sym.EvalBool(cst, env) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Unsat answers on single-variable 8-bit systems are exact
// (verified by brute-force enumeration of all 256 values).
func TestUnsatIsExactForBytes(t *testing.T) {
	f := func(a, b, c uint8, ops [3]uint8) bool {
		x := v8(1, "x")
		vals := [3]uint64{uint64(a), uint64(b), uint64(c)}
		cs := make([]sym.Expr, 3)
		for i := range cs {
			cs[i] = sym.NewCmp(sym.CmpOp(ops[i]%6), x, sym.NewConst(vals[i], 8))
		}
		_, res := New(Options{}).Solve(cs)
		bruteSat := false
		for v := uint64(0); v < 256; v++ {
			ok := true
			for _, cst := range cs {
				if !sym.EvalBool(cst, sym.Env{1: v}) {
					ok = false
					break
				}
			}
			if ok {
				bruteSat = true
				break
			}
		}
		if bruteSat {
			return res == Sat
		}
		return res == Unsat
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolveEquality(b *testing.B) {
	x := v32(1, "x")
	cs := []sym.Expr{sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpAdd, x, c32(100)), c32(142))}
	for i := 0; i < b.N; i++ {
		if _, res := New(Options{}).Solve(cs); res != Sat {
			b.Fatal("unsat")
		}
	}
}

func BenchmarkSolvePrefixPredicate(b *testing.B) {
	addr := v32(1, "addr")
	ln := v8(2, "len")
	cs := []sym.Expr{
		sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpAnd, addr, c32(0xffff0000)), c32(0x0A010000)),
		sym.NewCmp(sym.OpGe, ln, sym.NewConst(16, 8)),
		sym.NewCmp(sym.OpLe, ln, sym.NewConst(24, 8)),
	}
	for i := 0; i < b.N; i++ {
		if _, res := New(Options{}).Solve(cs); res != Sat {
			b.Fatal("unsat")
		}
	}
}

func TestKnownBitsSingleBit(t *testing.T) {
	x := v32(1, "x")
	// ((x >> 5) & 1) == 1 ∧ ((x >> 2) & 1) == 0 ∧ x < 64
	env := requireSat(t,
		sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpAnd, sym.NewBin(sym.OpShr, x, c32(5)), c32(1)), c32(1)),
		sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpAnd, sym.NewBin(sym.OpShr, x, c32(2)), c32(1)), c32(0)),
		sym.NewCmp(sym.OpLt, x, c32(64)),
	)
	if env[1]>>5&1 != 1 || env[1]>>2&1 != 0 {
		t.Fatalf("bits wrong: %#b", env[1])
	}
}

func TestKnownBitsConflict(t *testing.T) {
	x := v32(1, "x")
	requireUnsat(t,
		sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpAnd, x, c32(0x10)), c32(0x10)),
		sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpAnd, x, c32(0x10)), c32(0)),
	)
}

func TestKnownBitsFieldOutsideMask(t *testing.T) {
	x := v32(1, "x")
	// (x & 0xf) == 0x1f is impossible: the field cannot exceed its mask.
	requireUnsat(t, sym.NewCmp(sym.OpEq, sym.NewBin(sym.OpAnd, x, c32(0xf)), c32(0x1f)))
}

func TestKnownBitsManyBits(t *testing.T) {
	x := v32(1, "x")
	// Pin 8 separate bits — the pattern from bit-branchy handlers.
	var cs []sym.Expr
	want := uint64(0xA5)
	for i := 0; i < 8; i++ {
		b := (want >> uint(i)) & 1
		cs = append(cs, sym.NewCmp(sym.OpEq,
			sym.NewBin(sym.OpAnd, sym.NewBin(sym.OpShr, x, c32(uint64(i))), c32(1)),
			c32(b)))
	}
	cs = append(cs, sym.NewCmp(sym.OpLt, x, c32(256)))
	env := requireSat(t, cs...)
	if env[1] != want {
		t.Fatalf("x = %#x, want %#x", env[1], want)
	}
}

func TestKnownBitsSingleBitNe(t *testing.T) {
	x := v32(1, "x")
	// ((x>>3)&1) != 0 is == 1 for a single-bit field.
	env := requireSat(t,
		sym.NewCmp(sym.OpNe, sym.NewBin(sym.OpAnd, sym.NewBin(sym.OpShr, x, c32(3)), c32(1)), c32(0)))
	if env[1]>>3&1 != 1 {
		t.Fatalf("bit 3 not set: %#x", env[1])
	}
}
