// Package solver finds concrete variable assignments satisfying a
// conjunction of sym boolean constraints. It plays the role STP plays for
// Oasis/Crest in the paper: given the path condition with one predicate
// negated, produce a new concrete input.
//
// The algorithm is interval constraint propagation over the expression DAG
// (forward evaluation + backward refinement for comparisons) followed by
// systematic backtracking search over the remaining variable domains, with
// a node budget so the concolic engine degrades gracefully on hard
// constraints rather than hanging exploration.
package solver

import (
	"sort"

	"dice/internal/sym"
)

// Interval is an inclusive unsigned range [Lo, Hi].
type Interval struct {
	Lo, Hi uint64
}

// full returns the complete domain for a width.
func full(w int) Interval {
	if w >= 64 {
		return Interval{0, ^uint64(0)}
	}
	return Interval{0, (uint64(1) << uint(w)) - 1}
}

func (iv Interval) empty() bool  { return iv.Lo > iv.Hi }
func (iv Interval) single() bool { return iv.Lo == iv.Hi }

// size returns the number of values in the interval, saturating at
// MaxUint64: the full 64-bit domain holds 2^64 values, which does not fit
// in a uint64 (Hi-Lo+1 would wrap to 0 and make the widest domain look
// like the most constrained one). Undefined if empty.
func (iv Interval) size() uint64 {
	d := iv.Hi - iv.Lo
	if d == ^uint64(0) {
		return d
	}
	return d + 1
}
func (iv Interval) contains(v uint64) bool {
	return v >= iv.Lo && v <= iv.Hi
}

func (iv Interval) intersect(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return Interval{lo, hi}
}

// domains maps variable IDs to their current interval.
type domains map[int]Interval

// bitpair tracks bits proven 1 (one) and proven 0 (zero) for a variable —
// a known-bits abstract domain that captures the (x & mask) == net and
// ((x >> k) & 1) == b predicates routers are full of, which plain
// intervals cannot represent.
type bitpair struct {
	one, zero uint64
}

// state is the solver's abstract store: an interval and a known-bits pair
// per variable. The two domains are kept mutually consistent by syncVar.
type state struct {
	iv   domains
	bits map[int]bitpair
}

func newState(n int) *state {
	return &state{iv: make(domains, n), bits: make(map[int]bitpair, n)}
}

func (st *state) clone() *state {
	c := &state{iv: make(domains, len(st.iv)), bits: make(map[int]bitpair, len(st.bits))}
	for k, v := range st.iv {
		c.iv[k] = v
	}
	for k, v := range st.bits {
		c.bits[k] = v
	}
	return c
}

// setBits merges new known bits for a var. It returns changed=false,
// ok=false on contradiction (a bit required to be both 0 and 1), and
// tightens the interval: any value with `one` bits set is >= one, and any
// value with `zero` bits clear is <= fullMask &^ zero.
func (st *state) setBits(id int, w int, one, zero uint64) (changed, ok bool) {
	m := full(w).Hi
	one &= m
	zero &= m
	cur := st.bits[id]
	nOne, nZero := cur.one|one, cur.zero|zero
	if nOne&nZero != 0 {
		return false, false
	}
	if nOne != cur.one || nZero != cur.zero {
		st.bits[id] = bitpair{nOne, nZero}
		changed = true
	}
	iv, okIv := st.iv[id]
	if !okIv {
		iv = full(w)
	}
	niv := iv.intersect(Interval{nOne, m &^ nZero})
	if niv.empty() {
		return changed, false
	}
	if niv != iv {
		st.iv[id] = niv
		changed = true
	}
	return changed, true
}

// project forces v to agree with the known bits of var id.
func (st *state) project(id int, v uint64) uint64 {
	bp := st.bits[id]
	return (v &^ bp.zero) | bp.one
}

// Options tunes the solver.
type Options struct {
	// MaxNodes bounds backtracking search nodes; 0 means DefaultMaxNodes.
	MaxNodes int
	// Hint suggests preferred values for variables (the concolic engine
	// passes the current concrete input so solutions stay close to it).
	Hint sym.Env
}

// DefaultMaxNodes is the default backtracking budget.
const DefaultMaxNodes = 200000

// Result of a Solve call.
type Result int

// Solve outcomes.
const (
	Unsat   Result = iota // proven or budget-exhausted unsatisfiable
	Sat                   // model found
	Unknown               // budget exhausted without a model or a proof
)

func (r Result) String() string {
	switch r {
	case Unsat:
		return "unsat"
	case Sat:
		return "sat"
	}
	return "unknown"
}

// Solver holds cross-call statistics and the propagated-prefix snapshot
// chain; methods are not safe for concurrent use — the concolic engine
// creates one Solver per worker.
type Solver struct {
	opts Options

	// Incremental prefix solving (prefix.go): propagated snapshots keyed
	// by prefix fingerprint, reused across sibling negation queries.
	prefixes  map[sym.Fingerprint]*prefixEntry
	fpScratch []sym.Fingerprint

	// Stats accumulate across Solve calls.
	Calls        int
	SatCount     int
	UnsatCount   int
	Nodes        int // total search nodes expanded
	PrefixHits   int // queries answered from a cached prefix snapshot
	PrefixMisses int // queries that had to extend or rebuild the chain
}

// New creates a solver with the given options.
func New(opts Options) *Solver {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = DefaultMaxNodes
	}
	return &Solver{opts: opts}
}

// Solve searches for an assignment satisfying every constraint. On Sat the
// returned env binds every variable occurring in the constraints.
func (s *Solver) Solve(constraints []sym.Expr) (sym.Env, Result) {
	return s.SolveHinted(constraints, s.opts.Hint)
}

// SolveHinted is Solve with a per-call hint (overriding Options.Hint), so
// one Solver can be reused across queries — the concolic scheduler keeps
// one per worker and passes each negation's parent assignment as the hint.
func (s *Solver) SolveHinted(constraints []sym.Expr, hint sym.Env) (sym.Env, Result) {
	s.Calls++

	var vars []*sym.Var
	for _, c := range constraints {
		vars = sym.Vars(c, vars)
	}
	st := newState(len(vars))
	for _, v := range vars {
		st.iv[v.ID] = full(v.W)
	}

	if !propagateAll(constraints, st) {
		s.UnsatCount++
		return nil, Unsat
	}

	budget := s.opts.MaxNodes
	complete := true
	env, ok := s.search(constraints, vars, st, hint, &budget, &complete)
	if ok {
		s.SatCount++
		return env, Sat
	}
	if budget <= 0 || !complete {
		return nil, Unknown
	}
	s.UnsatCount++
	return nil, Unsat
}

// VarInfo is the abstract region of one variable after propagation: an
// interval plus known bits. Used by oracles to describe input regions
// (e.g. "which prefix ranges can be leaked") without enumeration.
type VarInfo struct {
	Lo, Hi    uint64
	One, Zero uint64 // bits proven 1 / proven 0
	Width     int
}

// Analyze propagates the constraints and returns each variable's abstract
// region. feasible=false means the constraints are contradictory under
// the interval/bits abstraction (definitely unsat).
func Analyze(constraints []sym.Expr) (map[int]VarInfo, bool) {
	var vars []*sym.Var
	for _, c := range constraints {
		vars = sym.Vars(c, vars)
	}
	st := newState(len(vars))
	for _, v := range vars {
		st.iv[v.ID] = full(v.W)
	}
	if !propagateAll(constraints, st) {
		return nil, false
	}
	out := make(map[int]VarInfo, len(vars))
	for _, v := range vars {
		iv := st.iv[v.ID]
		bp := st.bits[v.ID]
		out[v.ID] = VarInfo{Lo: iv.Lo, Hi: iv.Hi, One: bp.one, Zero: bp.zero, Width: v.W}
	}
	return out, true
}

// propagateAll runs constraint propagation to a fixpoint. It returns false
// if any domain becomes empty (definite UNSAT under interval abstraction).
func propagateAll(constraints []sym.Expr, st *state) bool {
	for changed, rounds := true, 0; changed && rounds < 64; rounds++ {
		changed = false
		for _, c := range constraints {
			ch, ok := propagate(c, true, st)
			if !ok {
				return false
			}
			changed = changed || ch
		}
	}
	return true
}

// propagate refines domains so that formula e evaluates to want. The first
// return reports whether any domain changed; the second is false on UNSAT.
func propagate(e sym.Expr, want bool, st *state) (bool, bool) {
	switch t := e.(type) {
	case sym.BoolConst:
		return false, bool(t) == want
	case *sym.Not:
		return propagate(t.X, !want, st)
	case *sym.BoolBin:
		return propagateBool(t, want, st)
	case *sym.Cmp:
		return propagateCmp(t, want, st)
	}
	// Bitvector expression used as a condition: nonzero means true.
	if !e.IsBool() {
		cmp := sym.NewCmp(sym.OpNe, e, sym.NewConst(0, e.Width()))
		if c, ok := cmp.(*sym.Cmp); ok {
			return propagateCmp(c, want, st)
		}
		if bc, ok := cmp.(sym.BoolConst); ok {
			return false, bool(bc) == want
		}
	}
	return false, true
}

func propagateBool(t *sym.BoolBin, want bool, st *state) (bool, bool) {
	conjunctive := (t.Op == sym.OpLAnd && want) || (t.Op == sym.OpLOr && !want)
	if conjunctive {
		// Both sides are forced; propagate each.
		c1, ok := propagate(t.X, t.Op == sym.OpLAnd, st)
		if !ok {
			return c1, false
		}
		c2, ok := propagate(t.Y, t.Op == sym.OpLAnd, st)
		return c1 || c2, ok
	}
	// Disjunctive case: only refine when one branch is already impossible.
	forced := t.Op == sym.OpLOr // want=true for Or, want=false for And
	xv, xKnown := evalFormula(t.X, st)
	yv, yKnown := evalFormula(t.Y, st)
	if xKnown && xv != forced {
		return propagate(t.Y, forced, st)
	}
	if yKnown && yv != forced {
		return propagate(t.X, forced, st)
	}
	if xKnown && yKnown && xv != forced && yv != forced {
		return false, false
	}
	return false, true
}

// evalFormula decides a formula under current domains if possible.
func evalFormula(e sym.Expr, st *state) (val, known bool) {
	switch t := e.(type) {
	case sym.BoolConst:
		return bool(t), true
	case *sym.Not:
		v, k := evalFormula(t.X, st)
		return !v, k
	case *sym.BoolBin:
		xv, xk := evalFormula(t.X, st)
		yv, yk := evalFormula(t.Y, st)
		if t.Op == sym.OpLAnd {
			if xk && !xv || yk && !yv {
				return false, true
			}
			if xk && yk {
				return xv && yv, true
			}
		} else {
			if xk && xv || yk && yv {
				return true, true
			}
			if xk && yk {
				return xv || yv, true
			}
		}
		return false, false
	case *sym.Cmp:
		ix := evalInterval(t.X, st)
		iy := evalInterval(t.Y, st)
		return decideCmp(t.Op, ix, iy)
	}
	return false, false
}

// decideCmp decides op over two intervals when the intervals separate.
func decideCmp(op sym.CmpOp, x, y Interval) (val, known bool) {
	switch op {
	case sym.OpEq:
		if x.single() && y.single() && x.Lo == y.Lo {
			return true, true
		}
		if x.Hi < y.Lo || y.Hi < x.Lo {
			return false, true
		}
	case sym.OpNe:
		v, k := decideCmp(sym.OpEq, x, y)
		return !v, k
	case sym.OpLt:
		if x.Hi < y.Lo {
			return true, true
		}
		if x.Lo >= y.Hi {
			return false, true
		}
	case sym.OpLe:
		if x.Hi <= y.Lo {
			return true, true
		}
		if x.Lo > y.Hi {
			return false, true
		}
	case sym.OpGt:
		return decideCmp(sym.OpLt, y, x)
	case sym.OpGe:
		return decideCmp(sym.OpLe, y, x)
	}
	return false, false
}

// propagateCmp refines operand domains so the comparison has truth `want`.
func propagateCmp(t *sym.Cmp, want bool, st *state) (bool, bool) {
	op := t.Op
	if !want {
		op = op.Negated()
	}
	ix := evalInterval(t.X, st)
	iy := evalInterval(t.Y, st)
	if ix.empty() || iy.empty() {
		return false, false
	}

	var nx, ny Interval
	switch op {
	case sym.OpEq:
		both := ix.intersect(iy)
		nx, ny = both, both
	case sym.OpNe:
		nx, ny = ix, iy
		// Only useful refinement: exclude a singleton at a domain edge.
		if iy.single() {
			nx = excludeEdge(ix, iy.Lo)
		}
		if ix.single() {
			ny = excludeEdge(iy, ix.Lo)
		}
	case sym.OpLt:
		if iy.Hi == 0 {
			return false, false // nothing is < 0 unsigned
		}
		nx = ix.intersect(Interval{0, iy.Hi - 1})
		ny = iy
		if ix.Lo < ^uint64(0) {
			ny = iy.intersect(Interval{ix.Lo + 1, ^uint64(0)})
		}
	case sym.OpLe:
		nx = ix.intersect(Interval{0, iy.Hi})
		ny = iy.intersect(Interval{ix.Lo, ^uint64(0)})
	case sym.OpGt:
		if ix.Hi == 0 {
			return false, false
		}
		ny = iy.intersect(Interval{0, ix.Hi - 1})
		nx = ix
		if iy.Lo < ^uint64(0) {
			nx = ix.intersect(Interval{iy.Lo + 1, ^uint64(0)})
		}
	case sym.OpGe:
		nx = ix.intersect(Interval{iy.Lo, ^uint64(0)})
		ny = iy.intersect(Interval{0, ix.Hi})
	}
	if nx.empty() || ny.empty() {
		return false, false
	}
	c1, ok1 := backProp(t.X, nx, st)
	if !ok1 {
		return c1, false
	}
	c2, ok2 := backProp(t.Y, ny, st)
	if !ok2 {
		return c1 || c2, false
	}
	// Known-bits refinement for masked-field equalities.
	c3, ok3 := propagateBits(t.X, t.Y, op, st)
	if !ok3 {
		return c1 || c2 || c3, false
	}
	c4, ok4 := propagateBits(t.Y, t.X, op, st)
	return c1 || c2 || c3 || c4, ok4
}

// propagateBits refines known bits when `side` matches the masked-field
// pattern ((var >> shift) & mask) and `other` is a constant. Handles Eq
// directly and Ne on single-bit masks (which is Eq of the flipped bit).
func propagateBits(side, other sym.Expr, op sym.CmpOp, st *state) (bool, bool) {
	cst, ok := constValue(other, st)
	if !ok {
		return false, true
	}
	id, w, shift, mask, ok := extractMaskedVar(side)
	if !ok {
		return false, true
	}
	c := cst
	switch op {
	case sym.OpEq:
	case sym.OpNe:
		// Single-bit field: != b means == !b.
		if mask != 1 || c > 1 {
			return false, true
		}
		c ^= 1
	default:
		return false, true
	}
	if c&^mask != 0 {
		return false, false // field can never equal a value outside its mask
	}
	one := (c & mask) << shift
	zero := (mask &^ c) << shift
	return st.setBits(id, w, one, zero)
}

// constValue resolves e to a constant (literal or singleton domain).
func constValue(e sym.Expr, st *state) (uint64, bool) {
	if c, ok := e.(*sym.Const); ok {
		return c.V, true
	}
	if v, ok := e.(*sym.Var); ok {
		if iv, ok2 := st.iv[v.ID]; ok2 && iv.single() {
			return iv.Lo, true
		}
	}
	return 0, false
}

// extractMaskedVar matches e against the shape ((v >> shift) & mask),
// where shift/mask arise from any composition of right-shifts and
// and-masks with constants. Returns the variable, its width, and the
// effective shift and mask such that e == (v >> shift) & mask.
func extractMaskedVar(e sym.Expr) (id, w int, shift uint64, mask uint64, ok bool) {
	switch t := e.(type) {
	case *sym.Var:
		return t.ID, t.W, 0, full(t.W).Hi, true
	case *sym.Bin:
		switch t.Op {
		case sym.OpShr:
			k, isC := t.Y.(*sym.Const)
			if !isC || k.V >= 64 {
				return 0, 0, 0, 0, false
			}
			id, w, shift, mask, ok = extractMaskedVar(t.X)
			if !ok {
				return 0, 0, 0, 0, false
			}
			return id, w, shift + k.V, mask >> k.V, true
		case sym.OpAnd:
			if m, isC := t.Y.(*sym.Const); isC {
				id, w, shift, mask, ok = extractMaskedVar(t.X)
				if !ok {
					return 0, 0, 0, 0, false
				}
				return id, w, shift, mask & m.V, true
			}
			if m, isC := t.X.(*sym.Const); isC {
				id, w, shift, mask, ok = extractMaskedVar(t.Y)
				if !ok {
					return 0, 0, 0, 0, false
				}
				return id, w, shift, mask & m.V, true
			}
		}
	}
	return 0, 0, 0, 0, false
}

// excludeEdge removes v from iv when v sits on an edge of iv.
func excludeEdge(iv Interval, v uint64) Interval {
	if iv.single() && iv.Lo == v {
		return Interval{1, 0} // empty
	}
	if iv.Lo == v {
		return Interval{iv.Lo + 1, iv.Hi}
	}
	if iv.Hi == v {
		return Interval{iv.Lo, iv.Hi - 1}
	}
	return iv
}

// evalInterval computes a sound over-approximation of e's value range.
func evalInterval(e sym.Expr, st *state) Interval {
	switch t := e.(type) {
	case *sym.Var:
		if iv, ok := st.iv[t.ID]; ok {
			return iv
		}
		return full(t.W)
	case *sym.Const:
		return Interval{t.V, t.V}
	case sym.BoolConst:
		if bool(t) {
			return Interval{1, 1}
		}
		return Interval{0, 0}
	case *sym.Cmp, *sym.BoolBin, *sym.Not:
		if v, k := evalFormula(e, st); k {
			if v {
				return Interval{1, 1}
			}
			return Interval{0, 0}
		}
		return Interval{0, 1}
	case *sym.Bin:
		return evalBinInterval(t, st)
	}
	return full(e.Width())
}

func evalBinInterval(t *sym.Bin, st *state) Interval {
	x := evalInterval(t.X, st)
	y := evalInterval(t.Y, st)
	if x.empty() || y.empty() {
		return Interval{1, 0}
	}
	w := t.W
	top := full(w)
	switch t.Op {
	case sym.OpAdd:
		lo, loOv := addOv(x.Lo, y.Lo)
		hi, hiOv := addOv(x.Hi, y.Hi)
		if !loOv && !hiOv && hi <= top.Hi {
			return Interval{lo, hi}
		}
		return top
	case sym.OpSub:
		if x.Lo >= y.Hi { // no wraparound possible
			return Interval{x.Lo - y.Hi, x.Hi - y.Lo}
		}
		return top
	case sym.OpMul:
		hi, ov := mulOv(x.Hi, y.Hi)
		if !ov && hi <= top.Hi {
			lo, _ := mulOv(x.Lo, y.Lo)
			return Interval{lo, hi}
		}
		return top
	case sym.OpDiv:
		if y.Lo > 0 {
			return Interval{x.Lo / y.Hi, x.Hi / y.Lo}
		}
		return top // divisor may be 0 (defined as all-ones)
	case sym.OpMod:
		if y.Lo > 0 && y.Hi > 0 {
			// x mod y < y.Hi; also <= x.Hi.
			hi := y.Hi - 1
			if x.Hi < hi {
				hi = x.Hi
			}
			return Interval{0, hi}
		}
		return Interval{0, maxU(x.Hi, top.Hi)}
	case sym.OpAnd:
		hi := x.Hi
		if y.Hi < hi {
			hi = y.Hi
		}
		return Interval{0, hi}
	case sym.OpOr:
		lo := maxU(x.Lo, y.Lo)
		hi, ov := addOv(x.Hi, y.Hi)
		if ov || hi > top.Hi {
			hi = top.Hi
		}
		return Interval{lo, hi}
	case sym.OpXor:
		hi, ov := addOv(x.Hi, y.Hi)
		if ov || hi > top.Hi {
			hi = top.Hi
		}
		return Interval{0, hi}
	case sym.OpShl:
		if y.single() {
			sh := y.Lo
			if sh >= uint64(w) {
				return Interval{0, 0}
			}
			hi, ov := shlOv(x.Hi, sh)
			if !ov && hi <= top.Hi {
				lo, _ := shlOv(x.Lo, sh)
				return Interval{lo, hi}
			}
		}
		return top
	case sym.OpShr:
		if y.single() {
			sh := y.Lo
			if sh >= uint64(w) {
				return Interval{0, 0}
			}
			return Interval{x.Lo >> sh, x.Hi >> sh}
		}
		return Interval{0, x.Hi}
	}
	return top
}

func addOv(a, b uint64) (uint64, bool) {
	s := a + b
	return s, s < a
}

func mulOv(a, b uint64) (uint64, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	p := a * b
	return p, p/a != b
}

func shlOv(a, sh uint64) (uint64, bool) {
	if sh >= 64 {
		return 0, a != 0
	}
	r := a << sh
	return r, r>>sh != a
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// backProp pushes an allowed interval down through an expression to refine
// variable domains. Refinements must be sound (never exclude a satisfying
// value); where inversion is unsafe (wraparound, non-const operands) it
// refines nothing.
func backProp(e sym.Expr, allowed Interval, st *state) (bool, bool) {
	switch t := e.(type) {
	case *sym.Var:
		cur, ok := st.iv[t.ID]
		if !ok {
			cur = full(t.W)
		}
		nv := cur.intersect(allowed)
		if nv.empty() {
			return false, false
		}
		if nv != cur {
			st.iv[t.ID] = nv
			return true, true
		}
		return false, true
	case *sym.Const:
		if allowed.contains(t.V) {
			return false, true
		}
		return false, false
	case *sym.Bin:
		return backPropBin(t, allowed, st)
	}
	// Formulas and anything else: check feasibility only.
	iv := evalInterval(e, st)
	if iv.intersect(allowed).empty() {
		return false, false
	}
	return false, true
}

// constOrSingle reports whether e is a constant or has a singleton domain
// under doms, and returns its value. Singleton domains let backProp invert
// ops like x+y once propagation pins one operand (e.g. x==3 ∧ x+y==10).
func constOrSingle(e sym.Expr, st *state) (uint64, bool) {
	if c, ok := e.(*sym.Const); ok {
		return c.V, true
	}
	if v, ok := e.(*sym.Var); ok {
		if iv, ok2 := st.iv[v.ID]; ok2 && iv.single() {
			return iv.Lo, true
		}
	}
	return 0, false
}

func backPropBin(t *sym.Bin, allowed Interval, st *state) (bool, bool) {
	// Feasibility check first.
	iv := evalBinInterval(t, st)
	if iv.intersect(allowed).empty() {
		return false, false
	}
	yVal, yConst := constOrSingle(t.Y, st)
	xVal, xConst := constOrSingle(t.X, st)
	w := t.W
	top := full(w)
	yVal &= top.Hi
	xVal &= top.Hi

	switch t.Op {
	case sym.OpAdd:
		if yConst {
			// x + c in [lo,hi]  =>  x in [lo-c, hi-c] when no wrap occurs.
			if allowed.Lo >= yVal && allowed.Hi >= yVal && allowed.Hi <= top.Hi {
				return backProp(t.X, Interval{allowed.Lo - yVal, allowed.Hi - yVal}, st)
			}
		}
		if xConst {
			if allowed.Lo >= xVal && allowed.Hi >= xVal && allowed.Hi <= top.Hi {
				return backProp(t.Y, Interval{allowed.Lo - xVal, allowed.Hi - xVal}, st)
			}
		}
	case sym.OpSub:
		if yConst {
			// x - c in [lo,hi] => x in [lo+c, hi+c] when no overflow.
			lo, ov1 := addOv(allowed.Lo, yVal)
			hi, ov2 := addOv(allowed.Hi, yVal)
			if !ov1 && !ov2 && hi <= top.Hi {
				return backProp(t.X, Interval{lo, hi}, st)
			}
		}
		if xConst {
			// c - y in [lo,hi] => y in [c-hi, c-lo] when no wrap.
			if xVal >= allowed.Hi && allowed.Hi >= allowed.Lo {
				return backProp(t.Y, Interval{xVal - allowed.Hi, xVal - allowed.Lo}, st)
			}
		}
	case sym.OpShr:
		if yConst && yVal < uint64(w) {
			// x >> c in [lo,hi] => x in [lo<<c, ((hi+1)<<c)-1].
			lo, ov1 := shlOv(allowed.Lo, yVal)
			hiBase, ov2 := shlOv(allowed.Hi+1, yVal)
			if !ov1 && !ov2 && allowed.Hi < top.Hi {
				hi := hiBase - 1
				if hi > top.Hi {
					hi = top.Hi
				}
				return backProp(t.X, Interval{lo, hi}, st)
			}
			if !ov1 {
				return backProp(t.X, Interval{lo, top.Hi}, st)
			}
		}
	case sym.OpShl:
		if yConst && yVal < uint64(w) {
			// x << c in [lo,hi] => x in [lo>>c, hi>>c] (for the non-wrapped part).
			return backProp(t.X, Interval{allowed.Lo >> yVal, top.Hi >> yVal}, st)
		}
	case sym.OpDiv:
		if yConst && yVal > 0 {
			// x / c in [lo,hi] => x in [lo*c, hi*c + c - 1].
			lo, ov1 := mulOv(allowed.Lo, yVal)
			hiP, ov2 := mulOv(allowed.Hi, yVal)
			if !ov1 && !ov2 {
				hi, ov3 := addOv(hiP, yVal-1)
				if ov3 || hi > top.Hi {
					hi = top.Hi
				}
				return backProp(t.X, Interval{lo, hi}, st)
			}
		}
	case sym.OpAnd:
		if yConst && yVal == top.Hi {
			return backProp(t.X, allowed, st)
		}
		if yConst {
			// x & m in [lo,hi]: refine only the trivial hi bound x&m <= m.
			if allowed.Lo > yVal {
				return false, false
			}
		}
	case sym.OpMul:
		if yConst && yVal > 0 {
			// x * c in [lo,hi] => x in [ceil(lo/c), hi/c] (non-wrapped part only
			// is unsound to assume in general, so only refine when the forward
			// interval proved no overflow).
			fwd := evalBinInterval(t, st)
			if fwd.Hi <= top.Hi && fwd.Hi >= fwd.Lo {
				lo := (allowed.Lo + yVal - 1) / yVal
				hi := allowed.Hi / yVal
				if lo > hi {
					return false, false
				}
				return backProp(t.X, Interval{lo, hi}, st)
			}
		}
	}
	return false, true
}

// search assigns remaining variables by backtracking. complete is cleared
// whenever a subtree is pruned without exhausting it, so a failed search
// with *complete still true is a genuine Unsat proof.
func (s *Solver) search(constraints []sym.Expr, vars []*sym.Var, st *state, hint sym.Env, budget *int, complete *bool) (sym.Env, bool) {
	if *budget <= 0 {
		*complete = false
		return nil, false
	}
	*budget--
	s.Nodes++

	// Find the most-constrained unassigned variable.
	var pick *sym.Var
	var pickSize uint64
	for _, v := range vars {
		iv := st.iv[v.ID]
		if iv.single() {
			continue
		}
		sz := iv.size()
		if pick == nil || sz < pickSize {
			pick, pickSize = v, sz
		}
	}
	if pick == nil {
		// All variables fixed: verify concretely.
		env := make(sym.Env, len(vars))
		for _, v := range vars {
			env[v.ID] = st.iv[v.ID].Lo
		}
		for _, c := range constraints {
			if !sym.EvalBool(c, env) {
				return nil, false
			}
		}
		return env, true
	}

	for _, val := range s.candidates(pick, st, constraints, hint) {
		nd := st.clone()
		nd.iv[pick.ID] = Interval{val, val}
		if !propagateAll(constraints, nd) {
			continue
		}
		if env, ok := s.search(constraints, vars, nd, hint, budget, complete); ok {
			return env, true
		}
		if *budget <= 0 {
			*complete = false
			return nil, false
		}
	}

	// Candidates failed; if the domain is small, enumerate it exhaustively
	// so Unsat answers are exact for narrow variables (flags, lengths).
	iv := st.iv[pick.ID]
	if iv.size() <= 256 {
		for val := iv.Lo; ; val++ {
			nd := st.clone()
			nd.iv[pick.ID] = Interval{val, val}
			if propagateAll(constraints, nd) {
				if env, ok := s.search(constraints, vars, nd, hint, budget, complete); ok {
					return env, true
				}
			}
			if val == iv.Hi || *budget <= 0 {
				break
			}
		}
		return nil, false
	}
	// Large domain left unexplored: cannot claim Unsat.
	*complete = false
	return nil, false
}

// candidates proposes trial values for v: the hint and comparison
// constants (±1) projected onto v's known bits, then domain edges and the
// midpoint. Projection matters: with bit constraints like
// (x>>3)&1 == 1 recorded, every candidate is made consistent with them,
// so masked-field predicates (the common router shape) solve in one try.
func (s *Solver) candidates(v *sym.Var, st *state, constraints []sym.Expr, hint sym.Env) []uint64 {
	iv := st.iv[v.ID]
	seen := make(map[uint64]bool, 16)
	var out []uint64
	add := func(val uint64) {
		val = st.project(v.ID, val)
		if iv.contains(val) && !seen[val] {
			seen[val] = true
			out = append(out, val)
		}
	}
	if hint != nil {
		if hv, ok := hint[v.ID]; ok {
			add(hv)
		}
	}
	var consts []uint64
	for _, c := range constraints {
		collectComparisonConsts(c, v.ID, &consts)
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i] < consts[j] })
	for _, cv := range consts {
		add(cv)
		if cv > 0 {
			add(cv - 1)
		}
		add(cv + 1)
	}
	add(iv.Lo)
	add(iv.Hi)
	add(iv.Lo + (iv.Hi-iv.Lo)/2)
	return out
}

// collectComparisonConsts gathers constants compared (directly or through
// one arithmetic level) against variable id.
func collectComparisonConsts(e sym.Expr, id int, out *[]uint64) {
	switch t := e.(type) {
	case *sym.Not:
		collectComparisonConsts(t.X, id, out)
	case *sym.BoolBin:
		collectComparisonConsts(t.X, id, out)
		collectComparisonConsts(t.Y, id, out)
	case *sym.Cmp:
		collectSideConsts(t.X, t.Y, id, out)
		collectSideConsts(t.Y, t.X, id, out)
	}
}

// collectSideConsts records const values from `other` when `side` mentions
// variable id (possibly through a const-op), inverting one op level.
// Every derived candidate is masked to the variable's width: inversions
// like c-k and c<<k can wrap past the domain, and an out-of-domain
// candidate is rejected by the interval check downstream — wasting the
// slot on a value whose in-domain projection would have satisfied the
// wrapped arithmetic.
func collectSideConsts(side, other sym.Expr, id int, out *[]uint64) {
	c, ok := other.(*sym.Const)
	if !ok {
		return
	}
	switch t := side.(type) {
	case *sym.Var:
		if t.ID == id {
			*out = append(*out, c.V&full(t.W).Hi)
		}
	case *sym.Bin:
		v, vok := t.X.(*sym.Var)
		k, kok := t.Y.(*sym.Const)
		if !vok || !kok || v.ID != id {
			return
		}
		m := full(v.W).Hi
		switch t.Op {
		case sym.OpAdd:
			*out = append(*out, (c.V-k.V)&m)
		case sym.OpSub:
			*out = append(*out, (c.V+k.V)&m)
		case sym.OpAnd:
			*out = append(*out, c.V&m, (c.V|^k.V)&m)
		case sym.OpShr:
			if k.V < 64 {
				*out = append(*out, (c.V<<k.V)&m)
			}
		case sym.OpShl:
			if k.V < 64 {
				*out = append(*out, (c.V>>k.V)&m)
			}
		case sym.OpDiv:
			if k.V != 0 {
				*out = append(*out, (c.V*k.V)&m)
			}
		case sym.OpMod:
			*out = append(*out, c.V&m)
		}
	}
}
