package solver

import (
	"testing"

	"dice/internal/sym"
)

// TestIntervalSizeSaturates is the regression test for the Hi-Lo+1
// overflow: the full 64-bit domain must not report size 0 (which made the
// widest variable look like the most constrained one and qualified a
// 2^64-value domain for exhaustive enumeration).
func TestIntervalSizeSaturates(t *testing.T) {
	cases := []struct {
		iv   Interval
		want uint64
	}{
		{Interval{0, ^uint64(0)}, ^uint64(0)}, // full domain: saturates
		{Interval{1, ^uint64(0)}, ^uint64(0)}, // 2^64-1 values: exact
		{Interval{0, 0}, 1},
		{Interval{5, 10}, 6},
	}
	for _, c := range cases {
		if got := c.iv.size(); got != c.want {
			t.Errorf("size(%v) = %d, want %d", c.iv, got, c.want)
		}
	}
}

// TestSolve64BitVariable: a full-width variable must not derail variable
// selection; the solver still finds models over mixed-width constraints.
func TestSolve64BitVariable(t *testing.T) {
	x := &sym.Var{ID: 0, Name: "x", W: 64}
	y := v8(1, "y")
	env := requireSat(t,
		sym.NewCmp(sym.OpNe, x, sym.NewConst(5, 64)),
		sym.NewCmp(sym.OpEq, y, sym.NewConst(7, 8)))
	if env[0] == 5 || env[1] != 7 {
		t.Fatalf("bad model %v", env)
	}
}

func TestCacheMemoizesSatAndUnsat(t *testing.T) {
	cache := NewCache()
	x := v32(0, "x")
	sat := []sym.Expr{sym.NewCmp(sym.OpEq, x, c32(9))}
	unsat := []sym.Expr{
		sym.NewCmp(sym.OpEq, x, c32(1)),
		sym.NewCmp(sym.OpEq, x, c32(2)),
	}

	s := New(Options{})
	env, res, hit := s.SolveCached(cache, sat, nil)
	if res != Sat || hit || env[0] != 9 {
		t.Fatalf("cold sat: env=%v res=%v hit=%v", env, res, hit)
	}
	if _, res, hit = s.SolveCached(cache, unsat, nil); res != Unsat || hit {
		t.Fatalf("cold unsat: res=%v hit=%v", res, hit)
	}
	callsBefore := s.Calls

	// A different Solver instance must also hit: the key is the formula.
	s2 := New(Options{})
	env, res, hit = s2.SolveCached(cache, sat, nil)
	if res != Sat || !hit || env[0] != 9 {
		t.Fatalf("warm sat: env=%v res=%v hit=%v", env, res, hit)
	}
	if _, res, hit = s2.SolveCached(cache, unsat, nil); res != Unsat || !hit {
		t.Fatalf("warm unsat: res=%v hit=%v", res, hit)
	}
	if s2.Calls != 0 {
		t.Fatalf("cache hit still invoked the solver: %d calls", s2.Calls)
	}
	if s.Calls != callsBefore {
		t.Fatalf("original solver touched on warm path")
	}
	if hits, misses := cache.Stats(); hits != 2 || misses != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 2/2", hits, misses)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", cache.Len())
	}
}

// TestCacheReturnsCopies: mutating a cached model must not corrupt the
// cache (the concolic engine merges hint values into returned envs).
func TestCacheReturnsCopies(t *testing.T) {
	cache := NewCache()
	x := v32(0, "x")
	cs := []sym.Expr{sym.NewCmp(sym.OpEq, x, c32(3))}
	s := New(Options{})
	env, _, _ := s.SolveCached(cache, cs, nil)
	env[0] = 999
	env[42] = 1
	env2, res, hit := s.SolveCached(cache, cs, nil)
	if !hit || res != Sat || env2[0] != 3 {
		t.Fatalf("cached model corrupted: %v (res=%v hit=%v)", env2, res, hit)
	}
	if _, ok := env2[42]; ok {
		t.Fatal("foreign key leaked into cached model")
	}
}

func TestCacheNilIsTransparent(t *testing.T) {
	x := v32(0, "x")
	s := New(Options{})
	env, res, hit := s.SolveCached(nil, []sym.Expr{sym.NewCmp(sym.OpEq, x, c32(4))}, nil)
	if res != Sat || hit || env[0] != 4 {
		t.Fatalf("nil cache: env=%v res=%v hit=%v", env, res, hit)
	}
}

// TestSolveHintedReusable: one Solver serves many queries with different
// hints (the per-worker reuse pattern) and honors each hint.
func TestSolveHintedReusable(t *testing.T) {
	x := v32(0, "x")
	s := New(Options{})
	cs := []sym.Expr{sym.NewCmp(sym.OpGt, x, c32(10))}
	for _, want := range []uint64{11, 500, 77} {
		env, res := s.SolveHinted(cs, sym.Env{0: want})
		if res != Sat || env[0] != want {
			t.Fatalf("hint %d ignored: env=%v res=%v", want, env, res)
		}
	}
	if s.Calls != 3 {
		t.Fatalf("calls = %d, want 3", s.Calls)
	}
}
