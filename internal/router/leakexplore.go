package router

import (
	"fmt"
	"sort"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/filter"
	"dice/internal/netaddr"
	"dice/internal/rib"
)

// This file carries the instrumented handler for the "routeleak"
// scenario: the symbolic input is the (prefix, AS-path origin, community)
// triple crossing a policy edge, so exploration can steer an announcement
// onto any community a policy tests — in particular the RFC 1997
// NO_EXPORT community whose escape past an AS boundary is the federated
// route-leak oracle.

// SymbolicLeakVars names the routeleak scenario's input model.
type SymbolicLeakVars struct {
	Addr      string // 32-bit NLRI network address
	Len       string // 8-bit NLRI mask length
	OriginAS  string // 16-bit origin AS of the presented AS path
	Community string // 32-bit community word carried by the announcement
}

// StandardLeakVars is the canonical naming used by the DiCE engine.
var StandardLeakVars = SymbolicLeakVars{
	Addr:      "leak.addr",
	Len:       "leak.len",
	OriginAS:  "leak.origin_as",
	Community: "leak.community",
}

// DeclareLeakInputs registers the routeleak input model on an engine,
// seeding from the observed UPDATE's first NLRI, path origin and first
// community (0 = none).
func DeclareLeakInputs(eng *concolic.Engine, seed *bgp.Update) error {
	if len(seed.NLRI) == 0 {
		return fmt.Errorf("router: seed update has no NLRI")
	}
	p := seed.NLRI[0]
	var comm uint64
	if len(seed.Attrs.Communities) > 0 {
		comm = uint64(seed.Attrs.Communities[0])
	}
	eng.Var(StandardLeakVars.Addr, 32, uint64(uint32(p.Addr())))
	eng.Var(StandardLeakVars.Len, 8, uint64(p.Bits()))
	eng.Var(StandardLeakVars.OriginAS, 16, uint64(seed.Attrs.ASPath.OriginAS()))
	eng.Var(StandardLeakVars.Community, 32, comm)
	return nil
}

// LeakOutcome is the instrumented leak handler's result for one explored
// input, consumed by the routeleak oracles.
type LeakOutcome struct {
	Peer     string
	Prefix   netaddr.Prefix
	OriginAS uint16 // concrete origin AS this run presented
	// Community is the community word the announcement carried this run
	// (0 = none; by the SymCommunity convention a zero slot is absent).
	Community   uint32
	Accepted    bool
	BestChanged bool
	// SpreadTo lists peers the clone's export policy re-announces the
	// route to. Export filters are evaluated concolically, so a
	// community-conditioned export clause (e.g. "reject NO_EXPORT")
	// contributes branches the engine can negate.
	SpreadTo []string
}

// leakPath builds the AS path the peer presents: [peerAS] when the peer
// itself originates, [peerAS origin] otherwise. The path *structure*
// stays concrete (only the origin AS value is symbolic); recorded
// constraints never mention path length, so the concrete length switch
// below cannot make them imprecise — and every oracle witness is
// re-validated by execution anyway.
func leakPath(peerAS, origin uint16) bgp.ASPath {
	if origin == peerAS || origin == 0 {
		return bgp.ASPath{{Type: bgp.ASSequence, ASNs: []uint16{peerAS}}}
	}
	return bgp.ASPath{{Type: bgp.ASSequence, ASNs: []uint16{peerAS, origin}}}
}

// withoutCommunity returns comms minus one occurrence of the
// materialized symbolic word c — unless the seed genuinely carried c, in
// which case it is a real concrete community and stays.
func withoutCommunity(comms []uint32, c uint32, seed *bgp.Attrs) []uint32 {
	if c == 0 || seed.HasCommunity(c) {
		return comms
	}
	out := make([]uint32, 0, len(comms))
	dropped := false
	for _, x := range comms {
		if !dropped && x == c {
			dropped = true
			continue
		}
		out = append(out, x)
	}
	return out
}

// HandleLeakConcolic is the routeleak scenario's instrumented handler: it
// processes one exploratory announcement whose prefix, path origin and
// community are engine-chosen, against this (cloned) router's live state.
// Constraints flow through rc; outbound messages flow to the clone's
// capture transport.
func (r *Router) HandleLeakConcolic(rc *concolic.RunContext, peerName string, seed *bgp.Update) LeakOutcome {
	ps, ok := r.peers[peerName]
	if !ok || len(seed.NLRI) == 0 {
		return LeakOutcome{Peer: peerName}
	}

	addrV := rc.Input(StandardLeakVars.Addr)
	lenV := rc.Input(StandardLeakVars.Len)
	originV := rc.Input(StandardLeakVars.OriginAS)
	commV := rc.Input(StandardLeakVars.Community)

	// Well-formedness: valid mask length, and the peer's own loop
	// prevention guarantees it never presents a path containing our AS.
	rc.Assume(concolic.Le(lenV, concolic.Concrete(32, 8)))
	rc.Assume(concolic.Ne(originV, concolic.Concrete(uint64(r.cfg.LocalAS), 16)))
	// The NLRI encoding canonicalizes host bits; model that by masking.
	maskC := concolic.Concrete(uint64(uint32(netaddr.Mask(int(lenV.C)))), 32)
	netV := concolic.And(addrV, maskC)

	// Materialize the concrete message this run processes.
	prefix := netaddr.PrefixFrom(netaddr.Addr(uint32(netV.C)), int(lenV.C))
	attrs := seed.Attrs.Clone()
	attrs.ASPath = leakPath(ps.peer.AS, uint16(originV.C))
	comm := uint32(commV.C)
	if comm != 0 && !attrs.HasCommunity(comm) {
		attrs.Communities = append(attrs.Communities, comm)
	}

	r.counters.UpdatesProcessed++

	subj := filter.SubjectFromRoute(prefix, &attrs)
	subj.NetAddr = netV
	subj.NetLen = lenV
	subj.OriginAS = originV
	subj.SymCommunity = commV
	// The subject's concrete community set must hold only the seed's own
	// communities: the engine-chosen word travels exclusively through the
	// symbolic slot. Leaving the materialized value in the concrete set
	// would let a community clause match it concretely — recording no
	// constraint — and silently drop the path condition's dependence on
	// the symbolic community.
	subj.Communities = seed.Attrs.Communities

	out := LeakOutcome{Peer: peerName, Prefix: prefix, OriginAS: uint16(originV.C), Community: comm}
	disp, finalAttrs := r.importRouteConcolic(ps, subj, &attrs, rc)
	if disp != filter.Accept {
		return out
	}
	out.Accepted = true
	ch := r.loc.Insert(&rib.Route{
		Prefix:       prefix,
		Attrs:        finalAttrs,
		PeerRouterID: ps.peer.Addr,
		PeerAS:       ps.peer.AS,
		EBGP:         ps.peer.AS != r.cfg.LocalAS,
	})
	out.BestChanged = ch.Changed()
	if ch.Changed() {
		// Consequences propagate into the capture sink, never the wire.
		r.propagate(peerName, ch)
		// Export policies evaluated concolically: which peers would this
		// route spread to, and under what input conditions? Prefix, path
		// origin and the community slot stay symbolic, so a "reject
		// NO_EXPORT" export clause becomes a negatable branch.
		exSubj := filter.SubjectFromRoute(prefix, &finalAttrs)
		exSubj.NetAddr = netV
		exSubj.NetLen = lenV
		exSubj.OriginAS = originV
		exSubj.SymCommunity = commV
		// Same rule as the import subject: exclude the materialized
		// symbolic word from the concrete set (import-verdict-added
		// communities are genuinely concrete and stay).
		exSubj.Communities = withoutCommunity(finalAttrs.Communities, comm, &seed.Attrs)
		// Sorted: the export filters run under the recording context, so
		// peer order becomes path-constraint order.
		for _, name := range r.peerNames() {
			other := r.peers[name]
			if name == peerName {
				continue
			}
			if finalAttrs.ASPath.FirstAS() == other.peer.AS {
				continue // split horizon (the AS path structure stays concrete)
			}
			ef := other.peer.Export
			if ef == nil {
				ef = filter.AcceptAll
			}
			if v := filter.Run(ef, exSubj, rc); v.Disposition == filter.Accept {
				out.SpreadTo = append(out.SpreadTo, name)
			}
		}
		sort.Strings(out.SpreadTo)
	}
	return out
}
