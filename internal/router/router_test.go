package router

import (
	"testing"
	"time"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/config"
	"dice/internal/netaddr"
	"dice/internal/netsim"
	"dice/internal/rib"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }
func ip(s string) netaddr.Addr    { return netaddr.MustParseAddr(s) }

// testNet is a small harness: routers attached to a netsim network.
type testNet struct {
	net     *netsim.Network
	routers map[string]*Router
}

func newTestNet(t *testing.T, configs map[string]string, links [][2]string) *testNet {
	t.Helper()
	tn := &testNet{
		net:     netsim.New(time.Unix(1e9, 0)),
		routers: map[string]*Router{},
	}
	for name, src := range configs {
		cfg, err := config.Parse(src)
		if err != nil {
			t.Fatalf("config %s: %v", name, err)
		}
		r := New(name, cfg, tn.net)
		tn.routers[name] = r
		if err := tn.net.AddNode(name, r); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range links {
		if err := tn.net.Connect(l[0], l[1], time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range tn.routers {
		if err := r.Start(tn.net.Now()); err != nil {
			t.Fatal(err)
		}
	}
	tn.net.Run(0)
	return tn
}

// twoRouterConfigs builds a simple A(65001) -- B(65002) pair.
func twoRouterConfigs() map[string]string {
	return map[string]string{
		"a": `
			router id 10.0.0.1; local as 65001;
			network 10.1.0.0/16;
			peer b { remote 10.0.0.2 as 65002; }`,
		"b": `
			router id 10.0.0.2; local as 65002;
			peer a { remote 10.0.0.1 as 65001; }`,
	}
}

func TestSessionsEstablish(t *testing.T) {
	tn := newTestNet(t, twoRouterConfigs(), [][2]string{{"a", "b"}})
	for name, r := range tn.routers {
		for peer := range r.peers {
			if st := r.Session(peer).State(); st != bgp.StateEstablished {
				t.Fatalf("%s->%s state %v", name, peer, st)
			}
		}
	}
}

func TestNetworkAnnouncement(t *testing.T) {
	tn := newTestNet(t, twoRouterConfigs(), [][2]string{{"a", "b"}})
	// b must have learned a's network with a's AS prepended.
	rt := tn.routers["b"].RIB().Best(pfx("10.1.0.0/16"))
	if rt == nil {
		t.Fatal("b did not learn 10.1.0.0/16")
	}
	if rt.Attrs.ASPath.String() != "65001" {
		t.Fatalf("as path: %s", rt.Attrs.ASPath)
	}
	if rt.OriginAS() != 65001 {
		t.Fatalf("origin AS: %d", rt.OriginAS())
	}
	if rt.Attrs.NextHop != ip("10.0.0.1") {
		t.Fatalf("next hop: %v", rt.Attrs.NextHop)
	}
	if rt.Attrs.HasLocalPref {
		t.Fatal("LOCAL_PREF must not cross eBGP")
	}
}

func TestUpdatePropagationChain(t *testing.T) {
	// a -- b -- c: c must learn a's route with path "65002 65001".
	configs := map[string]string{
		"a": `router id 10.0.0.1; local as 65001; network 10.1.0.0/16;
			peer b { remote 10.0.0.2 as 65002; }`,
		"b": `router id 10.0.0.2; local as 65002;
			peer a { remote 10.0.0.1 as 65001; }
			peer c { remote 10.0.0.3 as 65003; }`,
		"c": `router id 10.0.0.3; local as 65003;
			peer b { remote 10.0.0.2 as 65002; }`,
	}
	tn := newTestNet(t, configs, [][2]string{{"a", "b"}, {"b", "c"}})
	rt := tn.routers["c"].RIB().Best(pfx("10.1.0.0/16"))
	if rt == nil {
		t.Fatal("c did not learn the route")
	}
	if rt.Attrs.ASPath.String() != "65002 65001" {
		t.Fatalf("as path at c: %s", rt.Attrs.ASPath)
	}
}

func TestLoopPrevention(t *testing.T) {
	// Triangle a-b-c, all different ASes; routes must not loop.
	configs := map[string]string{
		"a": `router id 10.0.0.1; local as 65001; network 10.1.0.0/16;
			peer b { remote 10.0.0.2 as 65002; }
			peer c { remote 10.0.0.3 as 65003; }`,
		"b": `router id 10.0.0.2; local as 65002;
			peer a { remote 10.0.0.1 as 65001; }
			peer c { remote 10.0.0.3 as 65003; }`,
		"c": `router id 10.0.0.3; local as 65003;
			peer a { remote 10.0.0.1 as 65001; }
			peer b { remote 10.0.0.2 as 65002; }`,
	}
	tn := newTestNet(t, configs, [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}})
	// a must never install a route to its own prefix via b or c.
	rt := tn.routers["a"].RIB().Best(pfx("10.1.0.0/16"))
	if rt == nil || !rt.Local {
		t.Fatalf("a's own network hijacked internally: %v", rt)
	}
	// b and c both have the route.
	if tn.routers["b"].RIB().Best(pfx("10.1.0.0/16")) == nil ||
		tn.routers["c"].RIB().Best(pfx("10.1.0.0/16")) == nil {
		t.Fatal("propagation incomplete")
	}
}

func TestImportFilterRejects(t *testing.T) {
	configs := map[string]string{
		"a": `router id 10.0.0.1; local as 65001;
			network 10.1.0.0/16;
			network 192.168.7.0/24;
			peer b { remote 10.0.0.2 as 65002; }`,
		"b": `router id 10.0.0.2; local as 65002;
			filter no_private {
				if net ~ 192.168.0.0/16 then reject;
				accept;
			}
			peer a { remote 10.0.0.1 as 65001; import filter no_private; }`,
	}
	tn := newTestNet(t, configs, [][2]string{{"a", "b"}})
	b := tn.routers["b"]
	if b.RIB().Best(pfx("10.1.0.0/16")) == nil {
		t.Fatal("allowed route missing")
	}
	if b.RIB().Best(pfx("192.168.7.0/24")) != nil {
		t.Fatal("filtered route installed")
	}
	if c := b.Counters(); c.RoutesRejected == 0 || c.RoutesAccepted == 0 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestWithdrawPropagates(t *testing.T) {
	tn := newTestNet(t, twoRouterConfigs(), [][2]string{{"a", "b"}})
	a, b := tn.routers["a"], tn.routers["b"]
	if b.RIB().Best(pfx("10.1.0.0/16")) == nil {
		t.Fatal("setup: route missing")
	}
	// a withdraws its network by sending an explicit withdraw via peer
	// session (simulate by delivering an UPDATE from a's session).
	sess := a.Session("b")
	if err := sess.SendUpdate(&bgp.Update{Withdrawn: []netaddr.Prefix{pfx("10.1.0.0/16")}}); err != nil {
		t.Fatal(err)
	}
	tn.net.Run(0)
	if b.RIB().Best(pfx("10.1.0.0/16")) != nil {
		t.Fatal("withdraw not processed")
	}
}

func TestLastObservedRetained(t *testing.T) {
	tn := newTestNet(t, twoRouterConfigs(), [][2]string{{"a", "b"}})
	u := tn.routers["b"].LastObserved("a")
	if u == nil || len(u.NLRI) != 1 || u.NLRI[0] != pfx("10.1.0.0/16") {
		t.Fatalf("last observed: %+v", u)
	}
}

func TestEncodeStateDeterministic(t *testing.T) {
	tn := newTestNet(t, twoRouterConfigs(), [][2]string{{"a", "b"}})
	b := tn.routers["b"]
	s1 := b.EncodeState()
	s2 := b.EncodeState()
	if string(s1) != string(s2) {
		t.Fatal("EncodeState must be deterministic")
	}
	if len(s1) < 16 {
		t.Fatal("state suspiciously small")
	}
}

func TestCloneIsolation(t *testing.T) {
	tn := newTestNet(t, twoRouterConfigs(), [][2]string{{"a", "b"}})
	b := tn.routers["b"]
	sink := netsim.NewCaptureSink()
	clone := b.Clone(sink)

	// The clone sees the same RIB...
	if clone.RIB().Best(pfx("10.1.0.0/16")) == nil {
		t.Fatal("clone missing parent route")
	}
	// ...but mutations do not leak back.
	clone.RIB().Insert(testRoute("203.0.113.0/24"))
	if b.RIB().Best(pfx("203.0.113.0/24")) != nil {
		t.Fatal("clone mutation leaked to parent")
	}
	// Clone sessions look established.
	if clone.Session("a").State() != bgp.StateEstablished {
		t.Fatal("clone session not established")
	}
	// Clone output goes to the sink, not the network.
	before := tn.net.Pending()
	err := clone.Session("a").SendUpdate(&bgp.Update{Withdrawn: []netaddr.Prefix{pfx("10.1.0.0/16")}})
	if err != nil {
		t.Fatal(err)
	}
	if tn.net.Pending() != before {
		t.Fatal("clone message reached the live network")
	}
	if sink.Count() != 1 {
		t.Fatalf("sink count = %d", sink.Count())
	}
}

// testRoute builds a throwaway route value.
func testRoute(p string) *rib.Route {
	return &rib.Route{
		Prefix: pfx(p),
		Attrs: bgp.Attrs{
			HasOrigin: true, Origin: bgp.OriginIGP,
			ASPath:     bgp.ASPath{{Type: bgp.ASSequence, ASNs: []uint16{65009}}},
			HasNextHop: true, NextHop: ip("10.9.9.9"),
		},
		PeerRouterID: ip("10.9.9.9"),
		PeerAS:       65009,
		EBGP:         true,
	}
}

func TestConcolicHandlerExploresFilter(t *testing.T) {
	// Provider with a customer filter that has a hole: it accepts any
	// /25-or-longer prefix regardless of ownership.
	configs := map[string]string{
		"provider": `
			router id 10.0.0.2; local as 65002;
			filter customer_in {
				if net ~ 10.7.0.0/16 then accept;
				if net.len >= 25 then accept;
				reject;
			}
			peer customer { remote 10.0.0.1 as 65001; import filter customer_in; }`,
		"customer": `
			router id 10.0.0.1; local as 65001;
			network 10.7.0.0/16;
			peer provider { remote 10.0.0.2 as 65002; }`,
	}
	tn := newTestNet(t, configs, [][2]string{{"provider", "customer"}})
	provider := tn.routers["provider"]
	seed := provider.LastObserved("customer")
	if seed == nil {
		t.Fatal("no observed update to seed from")
	}

	sink := netsim.NewCaptureSink()
	handler := func(rc *concolic.RunContext) any {
		clone := provider.Clone(sink)
		return clone.HandleUpdateConcolic(rc, "customer", seed)
	}
	eng := concolic.NewEngine(handler, concolic.Options{MaxRuns: 500})
	if err := DeclareSymbolicInputs(eng, seed); err != nil {
		t.Fatal(err)
	}
	rep := eng.Explore()

	if len(rep.Paths) < 3 {
		t.Fatalf("too few paths: %d", len(rep.Paths))
	}
	// Exploration must find an accepted prefix outside the customer's
	// legitimate space (the leak through the net.len >= 25 hole).
	leak := false
	for _, p := range rep.Paths {
		out, ok := p.Output.(ExplorationOutcome)
		if !ok || !out.Accepted {
			continue
		}
		if !pfx("10.7.0.0/16").Covers(out.Prefix) {
			leak = true
		}
	}
	if !leak {
		t.Fatalf("exploration did not find the filter hole in %d paths", len(rep.Paths))
	}
	// Live provider state untouched by exploration.
	if provider.RIB().Best(pfx("10.7.0.0/16")) == nil {
		t.Fatal("live RIB damaged by exploration")
	}
}

// TestRouterRobustUnderRandomStreams: property-style robustness — a
// random stream of announces/withdraws (including duplicates, unknown
// withdrawals and repeated prefixes) never panics and keeps the RIB
// counters consistent with a reference map.
func TestRouterRobustUnderRandomStreams(t *testing.T) {
	tn := newTestNet(t, twoRouterConfigs(), [][2]string{{"a", "b"}})
	a, b := tn.routers["a"], tn.routers["b"]
	sess := a.Session("b")

	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}

	ref := map[netaddr.Prefix]bool{}
	for i := 0; i < 2000; i++ {
		addr := netaddr.Addr(uint32(next()))
		bits := int(next() % 25)
		p := netaddr.PrefixFrom(addr, bits)
		if next()%10 < 3 {
			if err := sess.SendUpdate(&bgp.Update{Withdrawn: []netaddr.Prefix{p}}); err != nil {
				t.Fatal(err)
			}
			delete(ref, p)
		} else {
			u := &bgp.Update{
				Attrs: bgp.Attrs{
					HasOrigin:  true,
					Origin:     uint8(next() % 3),
					ASPath:     bgp.ASPath{{Type: bgp.ASSequence, ASNs: []uint16{65001, uint16(next()%60000 + 1)}}},
					HasNextHop: true,
					NextHop:    ip("10.0.0.1"),
				},
				NLRI: []netaddr.Prefix{p},
			}
			if err := sess.SendUpdate(u); err != nil {
				t.Fatal(err)
			}
			ref[p] = true
		}
		if i%64 == 0 {
			tn.net.Run(0)
		}
	}
	tn.net.Run(0)

	// b's view: every announced prefix present, every withdrawn gone
	// (modulo b's own originated/learned baseline of 1 prefix from a).
	for p, want := range ref {
		got := b.RIB().Best(p) != nil
		// a's own network may overlap random prefixes; skip that one.
		if p == pfx("10.1.0.0/16") {
			continue
		}
		if got != want {
			t.Fatalf("prefix %v: present=%v want=%v", p, got, want)
		}
	}
}
