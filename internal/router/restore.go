package router

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dice/internal/bgp"
	"dice/internal/config"
	"dice/internal/netaddr"
	"dice/internal/netsim"
	"dice/internal/rib"
)

// DecodeState reconstructs a router from a checkpoint produced by
// EncodeState (or by concatenating EncodeStateChunks). This is what makes
// the §2.4 vision concrete: a remote node can checkpoint its state, ship
// the (self-contained) bytes, and exploration can "process these messages
// in isolation over their checkpointed states" on another machine —
// without sharing its configuration beyond what the checkpoint contains.
//
// The restored router comes up with all sessions in Established (the
// state a forked process would be in) and its transport set to tr, which
// is normally a capture sink so restored state stays isolated.
func DecodeState(name string, cfg *config.Config, tr netsim.Transport, state []byte) (*Router, error) {
	r := &Router{
		cfg:           cfg,
		name:          name,
		transport:     tr,
		loc:           rib.New(),
		peers:         make(map[string]*peerState, len(cfg.Peers)),
		lastObserved:  make(map[string]*bgp.Update),
		lastAnnounced: make(map[string]*bgp.Update),
	}
	for _, pc := range cfg.Peers {
		r.addPeer(pc)
	}

	// Meta chunk: magic + prefix count + per-peer counters in sorted
	// peer-name order.
	if len(state) < 8 || string(state[0:4]) != "RTR1" {
		return nil, fmt.Errorf("router: bad checkpoint magic")
	}
	wantPrefixes := int(binary.BigEndian.Uint32(state[4:8]))
	off := 8

	names := make([]string, 0, len(r.peers))
	for n := range r.peers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		// name bytes + NUL + 2 x u64
		if len(state) < off+len(n)+1+16 {
			return nil, fmt.Errorf("router: truncated session block for %q", n)
		}
		if string(state[off:off+len(n)]) != n || state[off+len(n)] != 0 {
			return nil, fmt.Errorf("router: checkpoint peer mismatch at %q (config drift?)", n)
		}
		off += len(n) + 1
		sess := r.peers[n].sess
		sess.RestoreEstablished(
			binary.BigEndian.Uint64(state[off:off+8]),
			binary.BigEndian.Uint64(state[off+8:off+16]),
		)
		off += 16
	}

	// Route buckets: repeated prefix records until the state ends.
	seen := 0
	for off < len(state) {
		if len(state) < off+7 {
			return nil, fmt.Errorf("router: truncated prefix record at %d", off)
		}
		addr := netaddr.Addr(binary.BigEndian.Uint32(state[off : off+4]))
		bits := int(state[off+4])
		ncand := int(binary.BigEndian.Uint16(state[off+5 : off+7]))
		off += 7
		if !netaddr.IsValidLen(bits) {
			return nil, fmt.Errorf("router: bad prefix length %d", bits)
		}
		prefix := netaddr.PrefixFrom(addr, bits)
		for c := 0; c < ncand; c++ {
			if len(state) < off+11 {
				return nil, fmt.Errorf("router: truncated candidate at %d", off)
			}
			peerID := netaddr.Addr(binary.BigEndian.Uint32(state[off : off+4]))
			peerAS := binary.BigEndian.Uint16(state[off+4 : off+6])
			flags := state[off+6]
			wireLen := int(binary.BigEndian.Uint32(state[off+7 : off+11]))
			off += 11
			if len(state) < off+wireLen {
				return nil, fmt.Errorf("router: truncated route wire at %d", off)
			}
			m, err := bgp.Decode(state[off : off+wireLen])
			if err != nil {
				return nil, fmt.Errorf("router: corrupt route in checkpoint: %w", err)
			}
			off += wireLen
			u, ok := m.(*bgp.Update)
			if !ok || len(u.NLRI) != 1 || u.NLRI[0] != prefix {
				return nil, fmt.Errorf("router: checkpoint route/prefix mismatch at %s", prefix)
			}
			r.loc.Insert(&rib.Route{
				Prefix:       prefix,
				Attrs:        u.Attrs,
				PeerRouterID: peerID,
				PeerAS:       peerAS,
				EBGP:         flags&1 != 0,
				Local:        flags&2 != 0,
			})
		}
		seen++
	}
	if seen != wantPrefixes {
		return nil, fmt.Errorf("router: checkpoint declares %d prefixes, found %d", wantPrefixes, seen)
	}
	return r, nil
}
