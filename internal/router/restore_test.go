package router

import (
	"testing"

	"dice/internal/bgp"
	"dice/internal/netaddr"
	"dice/internal/netsim"
)

func TestDecodeStateRoundTrip(t *testing.T) {
	tn := newTestNet(t, twoRouterConfigs(), [][2]string{{"a", "b"}})
	b := tn.routers["b"]

	state := b.EncodeState()
	restored, err := DecodeState("b", b.Config(), netsim.NewCaptureSink(), state)
	if err != nil {
		t.Fatal(err)
	}
	// Same RIB contents.
	if restored.RIB().Prefixes() != b.RIB().Prefixes() || restored.RIB().Routes() != b.RIB().Routes() {
		t.Fatalf("RIB size mismatch: %d/%d vs %d/%d",
			restored.RIB().Prefixes(), restored.RIB().Routes(),
			b.RIB().Prefixes(), b.RIB().Routes())
	}
	orig := b.RIB().Dump()
	got := restored.RIB().Dump()
	for i := range orig {
		if orig[i].Prefix != got[i].Prefix || orig[i].PeerRouterID != got[i].PeerRouterID ||
			orig[i].Attrs.ASPath.String() != got[i].Attrs.ASPath.String() {
			t.Fatalf("route %d mismatch:\n%v\n%v", i, orig[i], got[i])
		}
	}
	// Sessions restored established with counters.
	sess := restored.Session("a")
	if sess.State() != bgp.StateEstablished {
		t.Fatalf("restored session state %v", sess.State())
	}
	if sess.UpdatesIn != b.Session("a").UpdatesIn {
		t.Fatal("session counters lost")
	}
	// Re-encoding the restored router reproduces the checkpoint exactly.
	if string(restored.EncodeState()) != string(state) {
		t.Fatal("restore is not a fixed point of encode")
	}
}

func TestDecodeStateWithLocalRoutes(t *testing.T) {
	// Router "a" originates a network (local route, empty AS path) — the
	// encoding must round-trip it.
	tn := newTestNet(t, twoRouterConfigs(), [][2]string{{"a", "b"}})
	a := tn.routers["a"]
	state := a.EncodeState()
	restored, err := DecodeState("a", a.Config(), netsim.NewCaptureSink(), state)
	if err != nil {
		t.Fatal(err)
	}
	rt := restored.RIB().Best(pfx("10.1.0.0/16"))
	if rt == nil || !rt.Local {
		t.Fatalf("local route lost: %v", rt)
	}
}

func TestDecodeStateRejectsGarbage(t *testing.T) {
	tn := newTestNet(t, twoRouterConfigs(), [][2]string{{"a", "b"}})
	b := tn.routers["b"]
	state := b.EncodeState()

	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     append([]byte("XXXX"), state[4:]...),
		"truncated":     state[:len(state)-3],
		"short meta":    state[:6],
		"corrupt route": append(append([]byte{}, state[:len(state)-10]...), 0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0, 0, 0),
	}
	for name, bad := range cases {
		if _, err := DecodeState("b", b.Config(), netsim.NewCaptureSink(), bad); err == nil {
			t.Errorf("%s: DecodeState accepted corrupt state", name)
		}
	}
}

func TestRestoredRouterIsolated(t *testing.T) {
	tn := newTestNet(t, twoRouterConfigs(), [][2]string{{"a", "b"}})
	b := tn.routers["b"]
	sink := netsim.NewCaptureSink()
	restored, err := DecodeState("b", b.Config(), sink, b.EncodeState())
	if err != nil {
		t.Fatal(err)
	}
	// The restored router's sends land in the sink only.
	before := tn.net.Pending()
	if err := restored.Session("a").SendUpdate(&bgp.Update{Withdrawn: []netaddr.Prefix{pfx("10.1.0.0/16")}}); err != nil {
		t.Fatal(err)
	}
	if tn.net.Pending() != before {
		t.Fatal("restored router leaked onto the live network")
	}
	if sink.Count() != 1 {
		t.Fatalf("sink count = %d", sink.Count())
	}
}
