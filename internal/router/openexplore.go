package router

import (
	"time"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/netaddr"
)

// The paper explores UPDATE messages only: "the other state changing
// messages are only responsible for establishing or tearing down peerings
// and we leave them for future work" (§3.2). This file implements that
// future work: concolic exploration of OPEN-message handling, covering
// the session FSM's acceptance and rejection paths.

// OpenOutcome reports how the session FSM handled one explored OPEN.
type OpenOutcome struct {
	Peer        string
	Established bool
	// NotifyCode/NotifySubcode identify the rejection when not established
	// (RFC 4271 OPEN Message Error subcodes).
	NotifyCode    uint8
	NotifySubcode uint8
}

// OpenVars is the symbolic input model for an OPEN message: every
// fixed-size header field the FSM inspects.
type OpenVars struct {
	Version  string
	AS       string
	HoldTime string
	RouterID string
}

// StandardOpenVars is the canonical naming.
var StandardOpenVars = OpenVars{
	Version:  "open.version",
	AS:       "open.as",
	HoldTime: "open.holdtime",
	RouterID: "open.router_id",
}

// DeclareOpenInputs registers the OPEN input model, seeded from a
// well-formed OPEN the peer would legitimately send.
func DeclareOpenInputs(eng *concolic.Engine, seed *bgp.Open) {
	eng.Var(StandardOpenVars.Version, 8, uint64(seed.Version))
	eng.Var(StandardOpenVars.AS, 16, uint64(seed.AS))
	eng.Var(StandardOpenVars.HoldTime, 16, uint64(seed.HoldTime))
	eng.Var(StandardOpenVars.RouterID, 32, uint64(uint32(seed.RouterID)))
}

// HandleOpenConcolic is the instrumented OPEN handler: it mirrors the
// session's validation pipeline (decodeOpen + handleOpen) over symbolic
// fields, recording one constraint per check, then drives a real throwaway
// session with the materialized message to confirm the outcome concretely
// (the same dual concrete/instrumented structure as the UPDATE handler).
func (r *Router) HandleOpenConcolic(rc *concolic.RunContext, peerName string) OpenOutcome {
	ps, ok := r.peers[peerName]
	if !ok {
		return OpenOutcome{Peer: peerName}
	}

	verV := rc.Input(StandardOpenVars.Version)
	asV := rc.Input(StandardOpenVars.AS)
	htV := rc.Input(StandardOpenVars.HoldTime)
	ridV := rc.Input(StandardOpenVars.RouterID)

	out := OpenOutcome{Peer: peerName}

	// The branch structure below mirrors the checks in bgp.decodeOpen and
	// Session.handleOpen, in order.
	if rc.Branch(concolic.Ne(verV, concolic.Concrete(4, 8))) {
		out.NotifyCode, out.NotifySubcode = bgp.ErrCodeOpenMessage, 1 // unsupported version
		return r.confirmOpen(ps, verV, asV, htV, ridV, out)
	}
	if rc.Branch(concolic.BoolOr(
		concolic.Eq(htV, concolic.Concrete(1, 16)),
		concolic.Eq(htV, concolic.Concrete(2, 16)))) {
		out.NotifyCode, out.NotifySubcode = bgp.ErrCodeOpenMessage, 6 // unacceptable hold time
		return r.confirmOpen(ps, verV, asV, htV, ridV, out)
	}
	if rc.Branch(concolic.Eq(ridV, concolic.Concrete(0, 32))) {
		out.NotifyCode, out.NotifySubcode = bgp.ErrCodeOpenMessage, 3 // bad BGP identifier
		return r.confirmOpen(ps, verV, asV, htV, ridV, out)
	}
	if rc.Branch(concolic.Ne(asV, concolic.Concrete(uint64(ps.peer.AS), 16))) {
		out.NotifyCode, out.NotifySubcode = bgp.ErrCodeOpenMessage, 2 // bad peer AS
		return r.confirmOpen(ps, verV, asV, htV, ridV, out)
	}
	out.Established = true
	return r.confirmOpen(ps, verV, asV, htV, ridV, out)
}

// confirmOpen validates the predicted outcome by driving a real session
// with the concrete message. A disagreement panics: it would mean the
// instrumented model diverged from the executable FSM.
func (r *Router) confirmOpen(ps *peerState, verV, asV, htV, ridV concolic.Value, predicted OpenOutcome) OpenOutcome {
	var gotEstablished bool
	var gotCode, gotSub uint8

	sess := bgp.NewSession(bgp.SessionConfig{
		LocalAS:  r.cfg.LocalAS,
		PeerAS:   ps.peer.AS,
		RouterID: r.cfg.RouterID,
	}, bgp.SessionHooks{
		Send: func(wire []byte) {
			if m, err := bgp.Decode(wire); err == nil {
				if n, ok := m.(*bgp.Notification); ok {
					gotCode, gotSub = n.Code, n.Subcode
				}
			}
		},
	})
	now := time.Unix(0, 0)
	sess.Start(now)
	_ = sess.ConnUp(now)

	open := &bgp.Open{
		Version:  uint8(verV.C),
		AS:       uint16(asV.C),
		HoldTime: uint16(htV.C),
		RouterID: netaddr.Addr(uint32(ridV.C)),
	}
	// Encode tolerates any field values (they are fixed-size); decoding
	// applies the FSM-visible validation.
	wire, err := bgp.Encode(open)
	if err == nil {
		_ = sess.Recv(now, wire)
	}
	// After our OPEN is processed the session either reached OpenConfirm
	// (it sent its KEEPALIVE; deliver one back to complete establishment)
	// or dropped to Idle with a NOTIFICATION.
	if sess.State() == bgp.StateOpenConfirm {
		ka, _ := bgp.Encode(&bgp.Keepalive{})
		_ = sess.Recv(now, ka)
	}
	gotEstablished = sess.State() == bgp.StateEstablished

	if gotEstablished != predicted.Established {
		panic("router: instrumented OPEN model diverged from the session FSM")
	}
	if !gotEstablished && (gotCode != predicted.NotifyCode || gotSub != predicted.NotifySubcode) {
		panic("router: instrumented OPEN model predicted the wrong notification")
	}
	return predicted
}
