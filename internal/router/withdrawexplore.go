package router

import (
	"fmt"
	"sort"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/netaddr"
	"dice/internal/rib"
)

// The paper explores the announcement side of UPDATE messages; this file
// extends the instrumented surface to the withdrawal side: which
// WITHDRAWN-routes fields can a peer send to change the node's routing,
// and what spreads when it does? A withdraw is the other half of the
// YouTube incident's cleanup — and a misbehaving peer flapping withdraws
// is a classic availability attack — so the same concolic machinery
// applies: prefix fields become symbolic, the RIB's reaction is the
// explored behavior.

// WithdrawOutcome reports how the clone handled one explored withdraw.
type WithdrawOutcome struct {
	Peer   string
	Prefix netaddr.Prefix // materialized withdrawn prefix
	// Removed reports that a route this peer had contributed was removed.
	Removed bool
	// BestChanged reports that the removal changed the best path (the
	// withdraw would steer or stop traffic).
	BestChanged bool
	// Blackholed reports that no alternative route remained: the prefix
	// lost reachability entirely (vs. falling back to another path).
	Blackholed bool
	// PropagatedTo lists peers the resulting withdraw/update was
	// re-announced to (captured, never sent — isolation invariant).
	PropagatedTo []string
}

// WithdrawVars is the symbolic input model for a route withdrawal: the
// withdrawn prefix's address and mask length.
type WithdrawVars struct {
	Addr string // 32-bit withdrawn network address
	Len  string // 8-bit withdrawn mask length
}

// StandardWithdrawVars is the canonical naming.
var StandardWithdrawVars = WithdrawVars{
	Addr: "wdr.addr",
	Len:  "wdr.len",
}

// DeclareWithdrawInputs registers the withdraw input model, seeded from
// an observed UPDATE: the first withdrawn prefix if the message carried
// one, else its first NLRI (withdrawing what was just announced).
func DeclareWithdrawInputs(eng *concolic.Engine, seed *bgp.Update) error {
	var p netaddr.Prefix
	switch {
	case len(seed.Withdrawn) > 0:
		p = seed.Withdrawn[0]
	case len(seed.NLRI) > 0:
		p = seed.NLRI[0]
	default:
		return fmt.Errorf("router: seed update carries neither withdrawn routes nor NLRI")
	}
	eng.Var(StandardWithdrawVars.Addr, 32, uint64(uint32(p.Addr())))
	eng.Var(StandardWithdrawVars.Len, 8, uint64(p.Bits()))
	return nil
}

// maxWithdrawTargets bounds how many of the peer's contributed routes the
// instrumented handler enumerates as explorable withdraw targets.
const maxWithdrawTargets = 16

// routesFromPeer returns up to limit prefixes this peer contributed to
// the Loc-RIB, in trie order.
func (r *Router) routesFromPeer(peerRouterID netaddr.Addr, limit int) []netaddr.Prefix {
	var out []netaddr.Prefix
	r.loc.WalkAll(func(p netaddr.Prefix, candidates []*rib.Route) bool {
		for _, c := range candidates {
			if c.PeerRouterID == peerRouterID && !c.Local {
				out = append(out, p)
				break
			}
		}
		return len(out) < limit
	})
	return out
}

// HandleWithdrawConcolic is the instrumented withdraw handler: it
// processes a single exploratory withdrawal with the prefix fields
// symbolic, against this (cloned) router's live state. The RIB's
// withdraw lookup is an exact match over the peer's contributed routes,
// so the branch structure enumerates those routes (bounded) and branches
// on whether the symbolic prefix names each one; the concrete RIB
// operation then confirms the prediction.
func (r *Router) HandleWithdrawConcolic(rc *concolic.RunContext, peerName string, seed *bgp.Update) WithdrawOutcome {
	ps, ok := r.peers[peerName]
	if !ok {
		return WithdrawOutcome{Peer: peerName}
	}

	addrV := rc.Input(StandardWithdrawVars.Addr)
	lenV := rc.Input(StandardWithdrawVars.Len)

	// Well-formedness the wire format guarantees.
	rc.Assume(concolic.Le(lenV, concolic.Concrete(32, 8)))
	// The encoding canonicalizes host bits; model that by masking.
	maskC := concolic.Concrete(uint64(uint32(netaddr.Mask(int(lenV.C)))), 32)
	netV := concolic.And(addrV, maskC)

	prefix := netaddr.PrefixFrom(netaddr.Addr(uint32(netV.C)), int(lenV.C))
	out := WithdrawOutcome{Peer: peerName, Prefix: prefix}
	r.counters.UpdatesProcessed++

	targets := r.routesFromPeer(ps.peer.Addr, maxWithdrawTargets+1)
	truncated := len(targets) > maxWithdrawTargets
	if truncated {
		targets = targets[:maxWithdrawTargets]
		rc.Note("withdraw targets truncated to %d of the peer's routes", maxWithdrawTargets)
	}
	matched := false
	inTargets := false
	for _, target := range targets {
		if target == prefix {
			inTargets = true
		}
		hit := concolic.BoolAnd(
			concolic.Eq(netV, concolic.Concrete(uint64(uint32(target.Addr())), 32)),
			concolic.Eq(lenV, concolic.Concrete(uint64(target.Bits()), 8)))
		if rc.Branch(hit) {
			matched = true
			break
		}
	}

	// Concrete execution: the real RIB withdraw. Over the enumerated
	// targets the branch prediction must agree with the RIB's effect (a
	// divergence would mean the instrumented model lies about the
	// executable behavior); a route beyond the truncation bound may still
	// be withdrawn concretely — the path constraint then simply does not
	// pin the prefix.
	routesBefore := r.loc.Routes()
	ch := r.loc.Withdraw(prefix, ps.peer.Addr)
	out.Removed = r.loc.Routes() < routesBefore
	if matched != inTargets || (matched && !out.Removed) || (!matched && out.Removed && !truncated) {
		panic("router: instrumented withdraw model diverged from the RIB")
	}
	if !out.Removed {
		return out
	}
	r.counters.RoutesWithdrawn++
	out.BestChanged = ch.Changed()
	out.Blackholed = ch.Changed() && ch.New == nil
	if ch.Changed() {
		// Consequences propagate into the capture sink, never the wire.
		r.propagate(peerName, ch)
		for name, other := range r.peers {
			if name != peerName && other.sess.State() == bgp.StateEstablished {
				out.PropagatedTo = append(out.PropagatedTo, name)
			}
		}
		sort.Strings(out.PropagatedTo)
	}
	return out
}
