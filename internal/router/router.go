// Package router implements the BGP daemon — the Go equivalent of BIRD's
// BGP implementation that the paper integrates DiCE with. It ties together
// the wire protocol (bgp), routing tables (rib), policy filters (filter)
// and configuration (config) over a netsim transport.
//
// The router carries both processing paths the paper's modified Oasis
// provides in one executable (§3.2): the plain concrete UPDATE pipeline
// used in normal operation (zero instrumentation overhead), and the
// instrumented concolic pipeline (HandleUpdateConcolic) that DiCE invokes
// on checkpoint clones during exploration.
package router

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/config"
	"dice/internal/filter"
	"dice/internal/netaddr"
	"dice/internal/netsim"
	"dice/internal/rib"
)

// Counters aggregates the router's processing statistics, used by the
// §4.1 throughput experiments.
type Counters struct {
	UpdatesProcessed uint64 // UPDATE messages handled
	RoutesAccepted   uint64 // NLRI accepted by import policy
	RoutesRejected   uint64 // NLRI rejected by import policy
	RoutesWithdrawn  uint64
	UpdatesSent      uint64
}

// peerState couples a configured peer with its live session.
type peerState struct {
	peer *config.Peer
	sess *bgp.Session
}

// Router is one BGP speaker on the virtual network. Methods must be
// called from the netsim event loop goroutine (the simulator is the
// serialization point, mirroring BIRD's single-threaded core).
type Router struct {
	cfg       *config.Config
	name      string
	transport netsim.Transport
	loc       rib.RouteTable
	peers     map[string]*peerState // keyed by peer (node) name
	peerOrder []string              // keys of peers, sorted; maintained by addPeer
	counters  Counters

	// LastObserved retains the most recent UPDATE per peer; DiCE derives
	// its symbolic input templates from these (§2.3 "feeds it with a
	// previously observed input"). lastAnnounced additionally retains the
	// most recent NLRI-carrying UPDATE: scenarios that need an
	// announcement template (update, routeleak) seed from it, so a
	// replayed history that happens to end in a withdraw still leaves a
	// usable seed.
	lastObserved  map[string]*bgp.Update
	lastAnnounced map[string]*bgp.Update
}

// New creates a router from its configuration. name is its netsim node
// name; peers' config names must match their node names.
func New(name string, cfg *config.Config, tr netsim.Transport) *Router {
	r := &Router{
		cfg:           cfg,
		name:          name,
		transport:     tr,
		loc:           rib.New(),
		peers:         make(map[string]*peerState, len(cfg.Peers)),
		lastObserved:  make(map[string]*bgp.Update),
		lastAnnounced: make(map[string]*bgp.Update),
	}
	for _, pc := range cfg.Peers {
		r.addPeer(pc)
	}
	for _, n := range cfg.Networks {
		r.loc.Insert(&rib.Route{
			Prefix: n,
			Attrs: bgp.Attrs{
				HasOrigin:  true,
				Origin:     bgp.OriginIGP,
				ASPath:     bgp.ASPath{},
				HasNextHop: true,
				NextHop:    cfg.RouterID,
			},
			Local: true,
		})
	}
	return r
}

func (r *Router) addPeer(pc *config.Peer) {
	ps := &peerState{peer: pc}
	peerName := pc.Name
	ps.sess = bgp.NewSession(bgp.SessionConfig{
		LocalAS:  r.cfg.LocalAS,
		PeerAS:   pc.AS,
		RouterID: r.cfg.RouterID,
		HoldTime: pc.HoldTime,
	}, bgp.SessionHooks{
		Send: func(wire []byte) {
			r.counters.UpdatesSent += boolToU64(wire[18] == bgp.MsgUpdate)
			r.transport.Send(r.name, peerName, wire)
		},
		OnEstablished: func() { r.onEstablished(peerName) },
		OnUpdate:      func(u *bgp.Update) { r.onUpdate(peerName, u) },
		OnDown:        func(reason string) { r.onDown(peerName, reason) },
	})
	r.peers[peerName] = ps
	at := sort.SearchStrings(r.peerOrder, peerName)
	r.peerOrder = append(r.peerOrder, "")
	copy(r.peerOrder[at+1:], r.peerOrder[at:])
	r.peerOrder[at] = peerName
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Name returns the router's node name.
func (r *Router) Name() string { return r.name }

// Config returns the router's configuration.
func (r *Router) Config() *config.Config { return r.cfg }

// RIB exposes the Loc-RIB (read-only use expected).
func (r *Router) RIB() rib.RouteTable { return r.loc }

// Counters returns a copy of the processing counters.
func (r *Router) Counters() Counters { return r.counters }

// Session returns the session for a peer name (nil if unknown).
func (r *Router) Session(peer string) *bgp.Session {
	if ps, ok := r.peers[peer]; ok {
		return ps.sess
	}
	return nil
}

// LastObserved returns the most recent UPDATE received from peer.
func (r *Router) LastObserved(peer string) *bgp.Update {
	return r.lastObserved[peer]
}

// LastAnnounced returns the most recent NLRI-carrying UPDATE received
// from peer — the seed for scenarios that explore announcements.
func (r *Router) LastAnnounced(peer string) *bgp.Update {
	return r.lastAnnounced[peer]
}

// PeerNameByAddr returns the configured peer whose remote address is a
// ("" if none) — the reverse of the RIB's PeerRouterID provenance, used
// by the federated forward-trace oracle to walk a route back toward the
// neighbor that advertised it.
func (r *Router) PeerNameByAddr(a netaddr.Addr) string {
	for name, ps := range r.peers {
		if ps.peer.Addr == a {
			return name
		}
	}
	return ""
}

// peerNames returns the configured peer names sorted. Every loop whose
// body sends messages walks peers through this instead of the map: map
// iteration order would leak into the netsim enqueue sequence — the
// tie-break between same-timestamp deliveries — and the same witness
// injected into the same fabric could take a different number of
// deliveries to converge run to run, which the trace-replay golden
// harness (and the distributed parity contract on PropagationSteps)
// cannot tolerate. The order is maintained by addPeer (the peer set is
// fixed after construction), so the hot callers — propagate on every
// best-route change, Tick on every timer advance — pay no per-call sort
// or allocation.
func (r *Router) peerNames() []string {
	return r.peerOrder
}

// Start begins all peering sessions at virtual time now.
func (r *Router) Start(now time.Time) error {
	for _, name := range r.peerNames() {
		ps := r.peers[name]
		ps.sess.Start(now)
		if err := ps.sess.ConnUp(now); err != nil {
			return fmt.Errorf("router %s: peer %s: %w", r.name, name, err)
		}
	}
	return nil
}

// Deliver implements netsim.Receiver: bytes arriving from a peer node.
func (r *Router) Deliver(now time.Time, from string, data []byte) {
	ps, ok := r.peers[from]
	if !ok {
		return // not a configured peer; drop
	}
	_ = ps.sess.Recv(now, data) // protocol errors already notified peer
}

// Tick advances all session timers (sorted: a timer firing can emit a
// KEEPALIVE, and emission order is part of the deterministic contract).
func (r *Router) Tick(now time.Time) {
	for _, name := range r.peerNames() {
		r.peers[name].sess.Tick(now)
	}
}

// onEstablished announces the current table to the new peer.
func (r *Router) onEstablished(peerName string) {
	ps := r.peers[peerName]
	r.loc.Walk(func(rt *rib.Route) bool {
		if u := r.exportUpdate(ps, rt); u != nil {
			_ = ps.sess.SendUpdate(u)
		}
		return true
	})
}

func (r *Router) onDown(peerName string, reason string) {
	ps, ok := r.peers[peerName]
	if !ok {
		return
	}
	changes := r.loc.WithdrawPeer(ps.peer.Addr)
	for _, ch := range changes {
		r.propagate(peerName, ch)
	}
}

// onUpdate is the concrete (fast-path) UPDATE handler.
func (r *Router) onUpdate(peerName string, u *bgp.Update) {
	r.counters.UpdatesProcessed++
	r.lastObserved[peerName] = u
	if len(u.NLRI) > 0 {
		r.lastAnnounced[peerName] = u
	}
	ps := r.peers[peerName]

	for _, w := range u.Withdrawn {
		ch := r.loc.Withdraw(w, ps.peer.Addr)
		if ch.Changed() {
			r.counters.RoutesWithdrawn++
			r.propagate(peerName, ch)
		}
	}
	for _, nlri := range u.NLRI {
		disp, attrs := r.importRoute(ps, nlri, &u.Attrs, filter.ConcreteBrancher{})
		if disp != filter.Accept {
			r.counters.RoutesRejected++
			// Policy rejection of a previously accepted route acts as a
			// withdraw (route becomes ineligible).
			ch := r.loc.Withdraw(nlri, ps.peer.Addr)
			if ch.Changed() {
				r.propagate(peerName, ch)
			}
			continue
		}
		r.counters.RoutesAccepted++
		ch := r.loc.Insert(&rib.Route{
			Prefix:       nlri,
			Attrs:        attrs,
			PeerRouterID: ps.peer.Addr,
			PeerAS:       ps.sess.PeerAS(),
			EBGP:         ps.sess.PeerAS() != r.cfg.LocalAS,
		})
		if ch.Changed() {
			r.propagate(peerName, ch)
		}
	}
}

// importRoute runs validation + import policy for one NLRI. The Brancher
// parameter is the instrumentation seam: ConcreteBrancher in normal
// operation, the concolic RunContext during exploration.
func (r *Router) importRoute(ps *peerState, nlri netaddr.Prefix, attrs *bgp.Attrs, br filter.Brancher) (filter.Disposition, bgp.Attrs) {
	// RFC 4271 §9.1.2: drop paths containing our own AS (loop).
	if attrs.ASPath.Contains(r.cfg.LocalAS) {
		return filter.Reject, bgp.Attrs{}
	}
	f := ps.peer.Import
	if f == nil {
		f = filter.AcceptAll
	}
	subj := filter.SubjectFromRoute(nlri, attrs)
	verdict := filter.Run(f, subj, br)
	if verdict.Disposition != filter.Accept {
		return filter.Reject, bgp.Attrs{}
	}
	out := attrs.Clone()
	verdict.Apply(&out)
	return filter.Accept, out
}

// importRouteConcolic is importRoute with a symbolic subject: the fields
// DiCE marked symbolic are taken from the RunContext instead of the
// concrete message.
func (r *Router) importRouteConcolic(ps *peerState, subj *filter.Subject, attrs *bgp.Attrs, rc *concolic.RunContext) (filter.Disposition, bgp.Attrs) {
	// The AS-path loop check concerns the path structure, which stays
	// concrete in the DiCE input model.
	if attrs.ASPath.Contains(r.cfg.LocalAS) {
		return filter.Reject, bgp.Attrs{}
	}
	f := ps.peer.Import
	if f == nil {
		f = filter.AcceptAll
	}
	verdict := filter.Run(f, subj, rc)
	if verdict.Disposition != filter.Accept {
		return filter.Reject, bgp.Attrs{}
	}
	out := attrs.Clone()
	verdict.Apply(&out)
	return filter.Accept, out
}

// propagate exports a best-route change to every established peer other
// than the one it came from.
func (r *Router) propagate(fromPeer string, ch rib.Change) {
	for _, name := range r.peerNames() {
		ps := r.peers[name]
		if name == fromPeer || ps.sess.State() != bgp.StateEstablished {
			continue
		}
		var u *bgp.Update
		if ch.New == nil {
			u = &bgp.Update{Withdrawn: []netaddr.Prefix{ch.Prefix}}
		} else {
			u = r.exportUpdate(ps, ch.New)
			if u == nil {
				// Export policy dropped it: withdraw any previous
				// announcement of this prefix to the peer.
				u = &bgp.Update{Withdrawn: []netaddr.Prefix{ch.Prefix}}
			}
		}
		_ = ps.sess.SendUpdate(u)
	}
}

// exportUpdate applies export policy and eBGP attribute rewriting for one
// route toward a peer; nil means the route is not exported.
func (r *Router) exportUpdate(ps *peerState, rt *rib.Route) *bgp.Update {
	// Split-horizon: never export a route back toward the AS it came
	// from (first AS in path == peer's AS).
	if rt.Attrs.ASPath.FirstAS() == ps.peer.AS {
		return nil
	}
	f := ps.peer.Export
	if f == nil {
		f = filter.AcceptAll
	}
	subj := filter.SubjectFromRoute(rt.Prefix, &rt.Attrs)
	verdict := filter.Run(f, subj, filter.ConcreteBrancher{})
	if verdict.Disposition != filter.Accept {
		return nil
	}
	attrs := rt.Attrs.Clone()
	verdict.Apply(&attrs)

	ebgp := ps.peer.AS != r.cfg.LocalAS
	if ebgp {
		attrs.ASPath = attrs.ASPath.Prepend(r.cfg.LocalAS)
		attrs.HasLocalPref = false // LOCAL_PREF is intra-AS only
		attrs.LocalPref = 0
		attrs.HasNextHop = true
		attrs.NextHop = r.cfg.RouterID // next-hop-self on the virtual net
	}
	if !attrs.HasOrigin {
		attrs.HasOrigin, attrs.Origin = true, bgp.OriginIGP
	}
	return &bgp.Update{Attrs: attrs, NLRI: []netaddr.Prefix{rt.Prefix}}
}

// --- Checkpoint support ------------------------------------------------------

// EncodeStateChunks serializes the router's complete mutable state (the
// Loc-RIB with all candidates, plus session counters) as stable regions:
// one chunk per /12 address bucket of the RIB and one metadata chunk.
// Mutating routes in one bucket leaves every other chunk byte-identical,
// which is what makes checkpoint COW sharing behave like fork()'s — a
// route insertion must not "shift" unrelated memory.
func (r *Router) EncodeStateChunks() [][]byte {
	// 4096 buckets (top 12 address bits): at full table scale each bucket
	// holds a few dozen routes ≈ one or two 4 KiB pages, matching the
	// granularity at which fork()'s COW dirties real heap pages.
	buckets := make([][]byte, 4096)
	r.loc.WalkAll(func(p netaddr.Prefix, candidates []*rib.Route) bool {
		b := int(uint32(p.Addr()) >> 20)
		out := buckets[b]
		out = binary.BigEndian.AppendUint32(out, uint32(p.Addr()))
		out = append(out, uint8(p.Bits()))
		out = binary.BigEndian.AppendUint16(out, uint16(len(candidates)))
		// Deterministic candidate order: by peer router ID, locals first.
		sorted := append([]*rib.Route(nil), candidates...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].Local != sorted[j].Local {
				return sorted[i].Local
			}
			return sorted[i].PeerRouterID < sorted[j].PeerRouterID
		})
		for _, rt := range sorted {
			out = binary.BigEndian.AppendUint32(out, uint32(rt.PeerRouterID))
			out = binary.BigEndian.AppendUint16(out, rt.PeerAS)
			flags := uint8(0)
			if rt.EBGP {
				flags |= 1
			}
			if rt.Local {
				flags |= 2
			}
			out = append(out, flags)
			wire, err := bgp.Encode(&bgp.Update{Attrs: rt.Attrs, NLRI: []netaddr.Prefix{rt.Prefix}})
			if err != nil {
				panic(fmt.Sprintf("router: unencodable route state: %v", err))
			}
			out = binary.BigEndian.AppendUint32(out, uint32(len(wire)))
			out = append(out, wire...)
		}
		buckets[b] = out
		return true
	})

	// Metadata chunk: identity + session counters.
	var meta []byte
	meta = append(meta, 'R', 'T', 'R', '1')
	meta = binary.BigEndian.AppendUint32(meta, uint32(r.loc.Prefixes()))
	names := make([]string, 0, len(r.peers))
	for name := range r.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := r.peers[name].sess
		meta = append(meta, []byte(name)...)
		meta = append(meta, 0)
		meta = binary.BigEndian.AppendUint64(meta, s.UpdatesIn)
		meta = binary.BigEndian.AppendUint64(meta, s.UpdatesOut)
	}

	chunks := make([][]byte, 0, 4097)
	chunks = append(chunks, meta)
	for _, b := range buckets {
		if len(b) > 0 {
			chunks = append(chunks, b)
		}
	}
	return chunks
}

// EncodeState implements checkpoint.Checkpointable by concatenating the
// chunked encoding.
func (r *Router) EncodeState() []byte {
	var out []byte
	for _, c := range r.EncodeStateChunks() {
		out = append(out, c...)
	}
	return out
}

// CloneCOW produces an isolated copy-on-write clone: the RIB is an
// overlay over this router's table, so creation is O(peers), independent
// of table size — exactly fork()'s cost model, which the §4.1 overhead
// measurements depend on. The receiver MUST NOT be mutated while COW
// clones are alive; DiCE guarantees this by only COW-cloning the frozen
// checkpoint router.
func (r *Router) CloneCOW(tr netsim.Transport) *Router {
	base, ok := r.loc.(*rib.Table)
	if !ok {
		// Already an overlay (clone of a clone): fall back to deep copy.
		return r.Clone(tr)
	}
	c := &Router{
		cfg:           r.cfg,
		name:          r.name,
		transport:     tr,
		loc:           rib.NewOverlay(base),
		peers:         make(map[string]*peerState, len(r.peers)),
		counters:      r.counters,
		lastObserved:  make(map[string]*bgp.Update, len(r.lastObserved)),
		lastAnnounced: make(map[string]*bgp.Update, len(r.lastAnnounced)),
	}
	for _, pc := range r.cfg.Peers {
		c.addPeer(pc)
	}
	for k, v := range r.lastObserved {
		c.lastObserved[k] = v
	}
	for k, v := range r.lastAnnounced {
		c.lastAnnounced[k] = v
	}
	for name, ps := range r.peers {
		c.peers[name].forceEstablished(ps.sess)
	}
	return c
}

// Clone produces an isolated deep copy of the router over the given
// transport (normally a netsim.CaptureSink): the fork() analogue with
// eager copying, used where the clone must be fully independent (taking
// the checkpoint itself, memory accounting). The clone shares no mutable
// state with the parent; configuration is shared because it is immutable
// after parse.
func (r *Router) Clone(tr netsim.Transport) *Router {
	c := &Router{
		cfg:           r.cfg,
		name:          r.name,
		transport:     tr,
		loc:           rib.New(),
		peers:         make(map[string]*peerState, len(r.peers)),
		counters:      r.counters,
		lastObserved:  make(map[string]*bgp.Update, len(r.lastObserved)),
		lastAnnounced: make(map[string]*bgp.Update, len(r.lastAnnounced)),
	}
	for _, pc := range r.cfg.Peers {
		c.addPeer(pc)
	}
	// Deep-copy the RIB.
	r.loc.WalkAll(func(p netaddr.Prefix, candidates []*rib.Route) bool {
		for _, rt := range candidates {
			c.loc.Insert(&rib.Route{
				Prefix:       rt.Prefix,
				Attrs:        rt.Attrs.Clone(),
				PeerRouterID: rt.PeerRouterID,
				PeerAS:       rt.PeerAS,
				EBGP:         rt.EBGP,
				Local:        rt.Local,
			})
		}
		return true
	})
	for k, v := range r.lastObserved {
		c.lastObserved[k] = v // messages are treated as immutable
	}
	for k, v := range r.lastAnnounced {
		c.lastAnnounced[k] = v
	}
	// Clone sessions come up Established-equivalent: the clone processes
	// exploration messages as if the sessions were live, but its sends go
	// to the capture transport only.
	for name, ps := range r.peers {
		c.peers[name].forceEstablished(ps.sess)
	}
	return c
}

// forceEstablished puts a cloned session directly into Established with
// counters copied from the original — the state a forked BIRD would be in.
func (ps *peerState) forceEstablished(orig *bgp.Session) {
	ps.sess.CloneStateFrom(orig)
}

// --- DiCE instrumentation hooks ----------------------------------------------

// ExplorationOutcome is the instrumented handler's result for one
// explored input, consumed by the DiCE oracles.
type ExplorationOutcome struct {
	Peer     string
	Prefix   netaddr.Prefix
	Accepted bool
	OriginAS uint16
	// BestChanged reports whether the route became the new best path in
	// the clone's RIB (i.e. it would steer traffic).
	BestChanged bool
	// PrevOriginAS is the origin AS of the route previously selected for
	// this prefix (0 if none) — the oracle's hijack comparison input.
	PrevOriginAS uint16
	PrevExisted  bool
	// SpreadTo lists the peers to which the clone's export policy would
	// re-announce the route — the condition under which a local
	// misconfiguration becomes an Internet-wide incident (the PCCW side
	// of the YouTube hijack). Export filters are evaluated concolically,
	// so their branches join the explored path condition.
	SpreadTo []string
}

// SymbolicUpdateVars declares the standard DiCE input model for a seed
// UPDATE: NLRI address and mask length plus small attribute fields are
// symbolic (§3.2), keeping every generated message syntactically valid.
type SymbolicUpdateVars struct {
	Addr      string // 32-bit NLRI network address
	Len       string // 8-bit NLRI mask length
	Origin    string // 8-bit ORIGIN code
	MED       string // 32-bit MED
	LocalPref string // 32-bit LOCAL_PREF
}

// StandardVars is the canonical naming used by the DiCE engine.
var StandardVars = SymbolicUpdateVars{
	Addr:      "nlri.addr",
	Len:       "nlri.len",
	Origin:    "attr.origin",
	MED:       "attr.med",
	LocalPref: "attr.local_pref",
}

// DeclareSymbolicInputs registers the input model on an engine, seeding
// each variable from the observed UPDATE's first NLRI and attributes.
func DeclareSymbolicInputs(eng *concolic.Engine, seed *bgp.Update) error {
	if len(seed.NLRI) == 0 {
		return fmt.Errorf("router: seed update has no NLRI")
	}
	p := seed.NLRI[0]
	var medSeed, lpSeed uint64
	if seed.Attrs.HasMED {
		medSeed = uint64(seed.Attrs.MED)
	}
	if seed.Attrs.HasLocalPref {
		lpSeed = uint64(seed.Attrs.LocalPref)
	} else {
		lpSeed = 100
	}
	eng.Var(StandardVars.Addr, 32, uint64(uint32(p.Addr())))
	eng.Var(StandardVars.Len, 8, uint64(p.Bits()))
	eng.Var(StandardVars.Origin, 8, uint64(seed.Attrs.Origin))
	eng.Var(StandardVars.MED, 32, medSeed)
	eng.Var(StandardVars.LocalPref, 32, lpSeed)
	return nil
}

// HandleUpdateConcolic is the instrumented UPDATE handler: it processes a
// single exploratory input built from the seed message with the symbolic
// fields replaced by engine-chosen values, against this (cloned) router's
// live state. Constraints flow through rc; outbound messages flow to the
// clone's capture transport.
func (r *Router) HandleUpdateConcolic(rc *concolic.RunContext, peerName string, seed *bgp.Update) ExplorationOutcome {
	ps, ok := r.peers[peerName]
	if !ok || len(seed.NLRI) == 0 {
		return ExplorationOutcome{Peer: peerName}
	}

	addrV := rc.Input(StandardVars.Addr)
	lenV := rc.Input(StandardVars.Len)
	originV := rc.Input(StandardVars.Origin)
	medV := rc.Input(StandardVars.MED)
	lpV := rc.Input(StandardVars.LocalPref)

	// Well-formedness the wire format guarantees: these are assumptions,
	// not explorable branches — DiCE only generates valid messages.
	rc.Assume(concolic.Le(lenV, concolic.Concrete(32, 8)))
	rc.Assume(concolic.Le(originV, concolic.Concrete(bgp.OriginIncomplete, 8)))
	// The NLRI encoding canonicalizes host bits; model that by masking.
	maskC := concolic.Concrete(uint64(uint32(netaddr.Mask(int(lenV.C)))), 32)
	netV := concolic.And(addrV, maskC)

	// Materialize the concrete message this run processes.
	prefix := netaddr.PrefixFrom(netaddr.Addr(uint32(netV.C)), int(lenV.C))
	attrs := seed.Attrs.Clone()
	attrs.Origin = uint8(originV.C)
	attrs.HasMED, attrs.MED = true, uint32(medV.C)
	attrs.HasLocalPref, attrs.LocalPref = true, uint32(lpV.C)

	r.counters.UpdatesProcessed++

	// Build the symbolic filter subject: concolic where DiCE marked
	// fields symbolic, concrete elsewhere.
	subj := filter.SubjectFromRoute(prefix, &attrs)
	subj.NetAddr = netV
	subj.NetLen = lenV
	subj.Origin = originV
	subj.MED = medV
	subj.LocalPref = lpV

	out := ExplorationOutcome{Peer: peerName, Prefix: prefix, OriginAS: attrs.ASPath.OriginAS()}
	// The §4.2 oracle compares against the route currently steering this
	// address range: the longest prefix covering the announcement. This
	// catches both exact-prefix origin changes and the YouTube-style
	// more-specific hijack (a /24 punched into a victim's /22).
	if prev := r.loc.CoveringBest(prefix); prev != nil {
		out.PrevExisted = true
		out.PrevOriginAS = prev.OriginAS()
	}

	disp, finalAttrs := r.importRouteConcolic(ps, subj, &attrs, rc)
	if disp != filter.Accept {
		return out
	}
	out.Accepted = true
	ch := r.loc.Insert(&rib.Route{
		Prefix:       prefix,
		Attrs:        finalAttrs,
		PeerRouterID: ps.peer.Addr,
		PeerAS:       ps.peer.AS,
		EBGP:         ps.peer.AS != r.cfg.LocalAS,
	})
	out.BestChanged = ch.Changed()
	if ch.Changed() {
		// Consequences propagate into the capture sink, never the wire.
		r.propagate(peerName, ch)
		// Export policies evaluated concolically: which peers would this
		// route spread to, and under what input conditions? The NLRI
		// fields stay symbolic; attribute fields are concrete after the
		// import policy's modifications.
		exSubj := filter.SubjectFromRoute(prefix, &finalAttrs)
		exSubj.NetAddr = subj.NetAddr
		exSubj.NetLen = subj.NetLen
		// Sorted: the export filters run under the recording context, so
		// peer order becomes path-constraint order.
		for _, name := range r.peerNames() {
			other := r.peers[name]
			if name == peerName {
				continue
			}
			if finalAttrs.ASPath.FirstAS() == other.peer.AS {
				continue // split horizon (the AS path stays concrete)
			}
			ef := other.peer.Export
			if ef == nil {
				ef = filter.AcceptAll
			}
			if v := filter.Run(ef, exSubj, rc); v.Disposition == filter.Accept {
				out.SpreadTo = append(out.SpreadTo, name)
			}
		}
		sort.Strings(out.SpreadTo)
	}
	return out
}

// HandleUpdateConcrete processes one UPDATE against this (cloned) router
// with no symbolic instrumentation and reports the outcome. Used by the
// raw-bytes-marking ablation, where generated messages are decoded from
// mutated wire bytes and only the surviving valid ones reach policy code.
func (r *Router) HandleUpdateConcrete(peerName string, u *bgp.Update) ExplorationOutcome {
	ps, ok := r.peers[peerName]
	if !ok || len(u.NLRI) == 0 {
		return ExplorationOutcome{Peer: peerName}
	}
	prefix := u.NLRI[0]
	r.counters.UpdatesProcessed++
	out := ExplorationOutcome{Peer: peerName, Prefix: prefix, OriginAS: u.Attrs.ASPath.OriginAS()}
	if prev := r.loc.CoveringBest(prefix); prev != nil {
		out.PrevExisted = true
		out.PrevOriginAS = prev.OriginAS()
	}
	disp, attrs := r.importRoute(ps, prefix, &u.Attrs, filter.ConcreteBrancher{})
	if disp != filter.Accept {
		return out
	}
	out.Accepted = true
	ch := r.loc.Insert(&rib.Route{
		Prefix:       prefix,
		Attrs:        attrs,
		PeerRouterID: ps.peer.Addr,
		PeerAS:       ps.peer.AS,
		EBGP:         ps.peer.AS != r.cfg.LocalAS,
	})
	out.BestChanged = ch.Changed()
	if ch.Changed() {
		r.propagate(peerName, ch)
	}
	return out
}
