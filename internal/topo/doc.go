// Package topo generates internet-like AS-relationship topologies for
// federated exploration at realistic scale (1k–10k nodes), replacing the
// toy line/mesh fixtures when DiCE is benchmarked or stress-tested.
//
// The generator follows the standard three-tier model: a small clique of
// tier-1 core ASes peering with each other, a layer of transit ASes
// buying from the core (and occasionally peering laterally), and a large
// population of stub ASes buying from transits. Every edge carries a
// customer/provider or peer/peer relationship, and each node's policy is
// compiled to internal/filter rules implementing the Gao–Rexford export
// conditions: routes learned from a peer or a provider are tagged with a
// relationship community at import and rejected by the export filter
// toward any other peer or provider, so only customer routes and locally
// originated networks propagate upward or sideways — all generated
// routing trees are valley-free by construction.
//
// Generation is fully deterministic: the same Spec (seed included)
// produces a byte-identical topology, so a JSON dump of a generated
// topology is a reproducible artifact (see EncodeJSON).
package topo
