package topo

import (
	"bytes"
	"strings"
	"testing"

	"dice/internal/bgp"
	"dice/internal/config"
	"dice/internal/core"
	"dice/internal/filter"
	"dice/internal/netaddr"
)

func mustGenerate(t *testing.T, spec Spec) (*core.Topology, *Layout) {
	t.Helper()
	topo, lay, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return topo, lay
}

// TestGenerateDeterministic: the Spec is the topology's identity — the
// same spec renders byte-identical topo.json, a different seed does not.
func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Seed: 7, Nodes: 200}
	a, _ := mustGenerate(t, spec)
	b, _ := mustGenerate(t, spec)
	ja, err := EncodeJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := EncodeJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatal("same spec generated different topologies")
	}
	c, _ := mustGenerate(t, Spec{Seed: 8, Nodes: 200})
	jc, err := EncodeJSON(c)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ja, jc) {
		t.Fatal("different seeds generated identical topologies")
	}
	d, _ := mustGenerate(t, Spec{Seed: 7, Nodes: 200, PolicyClauses: 4})
	jd, err := EncodeJSON(d)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ja, jd) {
		t.Fatal("policy clauses did not change the generated configs")
	}
	if _, _, err := Generate(Spec{Seed: 1, Nodes: 200, PolicyClauses: 33}); err == nil {
		t.Error("generation above the policy-clause cap succeeded")
	}
}

// TestGenerateRoundTripsThroughParser: generator output is a valid
// topology file — EncodeJSON → ParseTopology → EncodeJSON is a fixpoint.
func TestGenerateRoundTripsThroughParser(t *testing.T) {
	topo, _ := mustGenerate(t, Spec{Seed: 3, Nodes: 120})
	raw, err := EncodeJSON(topo)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := core.ParseTopology(raw)
	if err != nil {
		t.Fatalf("generated topology rejected by the parser: %v", err)
	}
	again, err := EncodeJSON(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again) {
		t.Fatal("parse → encode not a fixpoint on generated output")
	}
}

// TestGenerateTierCounts: the tier assignment matches the spec's knobs.
func TestGenerateTierCounts(t *testing.T) {
	spec := Spec{Seed: 1, Nodes: 500, CoreSize: 5, TransitFrac: 0.1}
	topo, lay := mustGenerate(t, spec)
	if len(lay.Core) != 5 {
		t.Errorf("core size %d, want 5", len(lay.Core))
	}
	wantTransit := int(float64(500-5) * spec.TransitFrac)
	if len(lay.Transit) != wantTransit {
		t.Errorf("transit count %d, want %d", len(lay.Transit), wantTransit)
	}
	if got := len(lay.Core) + len(lay.Transit) + len(lay.Stub); got != 500 {
		t.Errorf("tiers sum to %d nodes, want 500", got)
	}
	if len(topo.Nodes) != 500 {
		t.Errorf("topology has %d nodes", len(topo.Nodes))
	}
	for _, n := range topo.Nodes {
		if lay.Tier(n.Name) == 0 {
			t.Fatalf("node %s in no tier", n.Name)
		}
	}
}

// TestGenerateConnected: every generated graph is connected — each stub
// reaches the core clique through its providers.
func TestGenerateConnected(t *testing.T) {
	for _, nodes := range []int{MinNodes, 200, 1000} {
		topo, _ := mustGenerate(t, Spec{Seed: 11, Nodes: nodes})
		adj := make(map[string][]string)
		for _, e := range topo.Edges {
			adj[e.A] = append(adj[e.A], e.B)
			adj[e.B] = append(adj[e.B], e.A)
		}
		seen := map[string]bool{topo.Nodes[0].Name: true}
		queue := []string{topo.Nodes[0].Name}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, m := range adj[n] {
				if !seen[m] {
					seen[m] = true
					queue = append(queue, m)
				}
			}
		}
		if len(seen) != nodes {
			t.Errorf("%d nodes: BFS reached %d", nodes, len(seen))
		}
	}
}

// routeTagged builds a filter subject for a route carrying the given
// relationship tags.
func routeTagged(rels ...Relationship) *filter.Subject {
	attrs := &bgp.Attrs{}
	for _, r := range rels {
		attrs.Communities = append(attrs.Communities, bgp.MakeCommunity(RelationshipAS, uint16(r)))
	}
	return filter.SubjectFromRoute(netaddr.MustParsePrefix("10.85.3.0/24"), attrs)
}

// TestGenerateValleyFree: the emitted export policies implement the
// Gao–Rexford conditions on every single edge — routes tagged as learned
// from a peer or provider are rejected toward any peer or provider,
// customer routes and untagged local networks pass everywhere. Per-edge
// enforcement plus the import tagging gives valley-freedom of every
// propagation path by induction.
func TestGenerateValleyFree(t *testing.T) {
	for _, spec := range []Spec{
		{Seed: 5, Nodes: 300},
		{Seed: 5, Nodes: 120, PolicyClauses: 6},
	} {
		testValleyFree(t, spec)
	}
}

func testValleyFree(t *testing.T, spec Spec) {
	topo, lay := mustGenerate(t, spec)
	for _, n := range topo.Nodes {
		cfg, err := config.Parse(strings.Join(n.Config, "\n"))
		if err != nil {
			t.Fatalf("node %s config: %v", n.Name, err)
		}
		for _, p := range cfg.Peers {
			relToPeer := lay.Rel[n.Name][p.Name]
			if relToPeer == RelNone {
				t.Fatalf("edge %s-%s has no relationship", n.Name, p.Name)
			}
			if p.Export == nil {
				t.Fatalf("node %s peer %s: no export filter", n.Name, p.Name)
			}
			if p.Import == nil {
				t.Fatalf("node %s peer %s: no import filter", n.Name, p.Name)
			}
			run := func(subj *filter.Subject) filter.Disposition {
				return filter.Run(p.Export, subj, filter.ConcreteBrancher{}).Disposition
			}
			toUpstream := relToPeer == RelPeer || relToPeer == RelProvider
			for _, tc := range []struct {
				name string
				subj *filter.Subject
				// leaked = the export must reject it toward peers/providers
				leaked bool
			}{
				{"local", routeTagged(), false},
				{"from-customer", routeTagged(RelCustomer), false},
				{"from-peer", routeTagged(RelPeer), true},
				{"from-provider", routeTagged(RelProvider), true},
				{"mixed-path", routeTagged(RelCustomer, RelProvider), true},
			} {
				got := run(tc.subj)
				want := filter.Accept
				if toUpstream && tc.leaked {
					want = filter.Reject
				}
				if got != want {
					t.Errorf("node %s -> %s (%v): %s route got %v, want %v",
						n.Name, p.Name, relToPeer, tc.name, got, want)
				}
			}
			// Import filters must tag the relationship the edge carries.
			v := filter.Run(p.Import, routeTagged(), filter.ConcreteBrancher{})
			if v.Disposition != filter.Accept {
				t.Errorf("node %s import from %s rejected a clean route", n.Name, p.Name)
				continue
			}
			wantTag := bgp.MakeCommunity(RelationshipAS, uint16(relToPeer))
			tagged := false
			for _, c := range v.AddCommunities {
				if c == wantTag {
					tagged = true
				}
			}
			if !tagged {
				t.Errorf("node %s import from %s (%v) does not tag the relationship",
					n.Name, p.Name, relToPeer)
			}
		}
	}
}

// TestGenerateBuildsAndConverges: a small generated topology builds a
// working fabric; after convergence the provider side of every explore
// target has an announcement from its customer to seed exploration with.
func TestGenerateBuildsAndConverges(t *testing.T) {
	topo, _ := mustGenerate(t, Spec{Seed: 9, Nodes: 24})
	if len(topo.Explore) == 0 {
		t.Fatal("no explore targets generated")
	}
	fab, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range topo.Explore {
		r := fab.Routers[tg.Node]
		if r == nil {
			t.Fatalf("explore target node %s not in fabric", tg.Node)
		}
		if r.LastAnnounced(tg.Peer) == nil {
			t.Errorf("target %s/%s: no announcement from the customer after convergence", tg.Node, tg.Peer)
		}
		if r.RIB().Prefixes() == 0 {
			t.Errorf("node %s converged with an empty RIB", tg.Node)
		}
	}
}

// TestGenerateAtScale: the full supported range stays valid — 10k nodes
// generate, every config parses, and the bounds are enforced.
func TestGenerateAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node generation in short mode")
	}
	topo, lay := mustGenerate(t, Spec{Seed: 42, Nodes: MaxNodes})
	if len(topo.Nodes) != MaxNodes {
		t.Fatalf("generated %d nodes", len(topo.Nodes))
	}
	if len(lay.Core) != 8 {
		t.Errorf("10k topology core size %d, want 8", len(lay.Core))
	}
	for _, n := range topo.Nodes {
		if _, err := config.Parse(strings.Join(n.Config, "\n")); err != nil {
			t.Fatalf("node %s config: %v", n.Name, err)
		}
	}
	if _, _, err := Generate(Spec{Seed: 1, Nodes: MaxNodes + 1}); err == nil {
		t.Error("generation above MaxNodes succeeded")
	}
	if _, _, err := Generate(Spec{Seed: 1, Nodes: MinNodes - 1}); err == nil {
		t.Error("generation below MinNodes succeeded")
	}
}
