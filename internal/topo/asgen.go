package topo

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"dice/internal/core"
)

// Relationship classifies one directed edge end from a node's point of
// view: what the neighbor is to me.
type Relationship int

// Edge relationships (from the owning node's perspective).
const (
	RelNone     Relationship = iota
	RelCustomer              // neighbor buys transit from me
	RelProvider              // I buy transit from the neighbor
	RelPeer                  // settlement-free peering
)

func (r Relationship) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelProvider:
		return "provider"
	case RelPeer:
		return "peer"
	}
	return "none"
}

// RelationshipAS is the community AS used to tag where a route was
// learned; the values are the Relationship constants. 64800 sits in the
// private range and collides with neither generated ASNs nor the
// RFC 1997 NO_EXPORT boundary the leak oracle watches.
const RelationshipAS = 64800

// Spec parameterizes a generated AS topology. The zero value of every
// optional field selects a scale-appropriate default; Seed and Nodes are
// the identity of the topology — equal Specs generate byte-identical
// topologies.
type Spec struct {
	Seed  int64
	Nodes int // total AS count, MinNodes..MaxNodes

	// CoreSize is the tier-1 clique size (0 = 4 below 2000 nodes, 8 at
	// or above).
	CoreSize int
	// TransitFrac is the fraction of non-core nodes acting as tier-2
	// transits (0 = 0.2).
	TransitFrac float64
	// ExploreTargets is how many provider→customer routeleak targets to
	// emit (0 = 4, capped by the number of transits).
	ExploreTargets int
	// PolicyClauses adds that many extra prefix-guard clauses (each over
	// a distinct /16 of the generated network space) ahead of the
	// catch-all in every in_customer filter, 0..32. Each clause is one
	// more branch the concolic engine explores per target — the knob the
	// replica-scaling benchmarks turn to size per-target work.
	PolicyClauses int
}

// Generated node count bounds. The floor keeps all three tiers populated;
// the ceiling is the 10k-node scale the replica benchmarks run at.
const (
	MinNodes = 8
	MaxNodes = 10000
)

// Layout records the tier assignment and edge relationships behind a
// generated topology, for tests and tooling; the topology itself only
// carries the compiled configs.
type Layout struct {
	Core    []string // tier-1 node names
	Transit []string // tier-2
	Stub    []string // tier-3
	// Rel[node][neighbor] is the neighbor's relationship to node.
	Rel map[string]map[string]Relationship
}

// Tier returns which tier a node belongs to (1, 2 or 3), or 0 if the
// node is unknown.
func (l *Layout) Tier(node string) int {
	for _, n := range l.Core {
		if n == node {
			return 1
		}
	}
	for _, n := range l.Transit {
		if n == node {
			return 2
		}
	}
	for _, n := range l.Stub {
		if n == node {
			return 3
		}
	}
	return 0
}

// asNode is the construction-time view of one AS.
type asNode struct {
	idx  int
	asn  int
	name string
	rid  string // router id, also the peering address neighbors dial
	pfx  string // originated network
}

func makeNode(i int) asNode {
	// Router ids live in 10.[40,79].x.1, originated networks in
	// 10.[80,119].x.0/24 — disjoint spans, so a generated filter over
	// the network space never matches a peering address.
	return asNode{
		idx:  i,
		asn:  1000 + i,
		name: fmt.Sprintf("as%d", 1000+i),
		rid:  fmt.Sprintf("10.%d.%d.1", 40+i/256, i%256),
		pfx:  fmt.Sprintf("10.%d.%d.0/24", 80+i/256, i%256),
	}
}

// Generate builds a deterministic three-tier AS topology from spec. The
// returned Layout describes the tier assignment and per-edge
// relationships the compiled policies implement.
func Generate(spec Spec) (*core.Topology, *Layout, error) {
	if spec.Nodes < MinNodes || spec.Nodes > MaxNodes {
		return nil, nil, fmt.Errorf("topo: %d nodes outside [%d, %d]", spec.Nodes, MinNodes, MaxNodes)
	}
	coreSize := spec.CoreSize
	if coreSize == 0 {
		coreSize = 4
		if spec.Nodes >= 2000 {
			coreSize = 8
		}
	}
	if coreSize < 2 || coreSize >= spec.Nodes {
		return nil, nil, fmt.Errorf("topo: core size %d for %d nodes", coreSize, spec.Nodes)
	}
	frac := spec.TransitFrac
	if frac == 0 {
		frac = 0.2
	}
	if frac < 0 || frac > 1 {
		return nil, nil, fmt.Errorf("topo: transit fraction %v outside [0, 1]", frac)
	}
	if spec.PolicyClauses < 0 || spec.PolicyClauses > 32 {
		return nil, nil, fmt.Errorf("topo: %d policy clauses outside [0, 32]", spec.PolicyClauses)
	}
	nTransit := int(float64(spec.Nodes-coreSize) * frac)
	if nTransit < 1 {
		nTransit = 1
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	nodes := make([]asNode, spec.Nodes)
	for i := range nodes {
		nodes[i] = makeNode(i)
	}
	lay := &Layout{Rel: make(map[string]map[string]Relationship, spec.Nodes)}
	rel := func(a, b asNode, ab Relationship) {
		// Record b's relationship to a and the inverse for b.
		ba := ab
		switch ab {
		case RelCustomer:
			ba = RelProvider
		case RelProvider:
			ba = RelCustomer
		}
		if lay.Rel[a.name] == nil {
			lay.Rel[a.name] = make(map[string]Relationship)
		}
		if lay.Rel[b.name] == nil {
			lay.Rel[b.name] = make(map[string]Relationship)
		}
		lay.Rel[a.name][b.name] = ab
		lay.Rel[b.name][a.name] = ba
	}

	var edges []core.TopoEdge
	addEdge := func(a, b asNode, r Relationship) {
		// r is b's relationship to a (RelCustomer: b buys from a).
		rel(a, b, r)
		edges = append(edges, core.TopoEdge{A: a.name, B: b.name, LatencyMS: 1 + rng.Intn(4)})
	}

	// Tier 1: full peering clique.
	tier1 := nodes[:coreSize]
	for i := range tier1 {
		lay.Core = append(lay.Core, tier1[i].name)
		for j := i + 1; j < len(tier1); j++ {
			addEdge(tier1[i], tier1[j], RelPeer)
		}
	}
	// Tier 2: transits buy from one or two core ASes, occasionally
	// peering with an earlier transit.
	tier2 := nodes[coreSize : coreSize+nTransit]
	for i := range tier2 {
		t := tier2[i]
		lay.Transit = append(lay.Transit, t.name)
		first := rng.Intn(coreSize)
		addEdge(tier1[first], t, RelCustomer)
		if coreSize > 1 && rng.Intn(2) == 1 {
			second := rng.Intn(coreSize - 1)
			if second >= first {
				second++
			}
			addEdge(tier1[second], t, RelCustomer)
		}
		if i > 0 && rng.Float64() < 0.3 {
			addEdge(tier2[rng.Intn(i)], t, RelPeer)
		}
	}
	// Tier 3: stubs buy from one or two transits.
	for _, s := range nodes[coreSize+nTransit:] {
		lay.Stub = append(lay.Stub, s.name)
		first := rng.Intn(nTransit)
		addEdge(tier2[first], s, RelCustomer)
		if nTransit > 1 && rng.Intn(3) == 0 {
			second := rng.Intn(nTransit - 1)
			if second >= first {
				second++
			}
			addEdge(tier2[second], s, RelCustomer)
		}
	}

	byName := make(map[string]asNode, len(nodes))
	for _, n := range nodes {
		byName[n.name] = n
	}
	topoNodes := make([]core.TopoNode, len(nodes))
	for i, n := range nodes {
		topoNodes[i] = core.TopoNode{Name: n.name, Config: nodeConfig(n, byName, lay.Rel[n.name], spec.PolicyClauses)}
	}

	// Explore targets: provider-side routeleak exploration of customer
	// edges, one per transit, in deterministic tier order.
	nTargets := spec.ExploreTargets
	if nTargets == 0 {
		nTargets = 4
	}
	var explore []core.ExploreTarget
	for _, tn := range lay.Transit {
		if len(explore) >= nTargets {
			break
		}
		if c := firstCustomer(lay.Rel[tn], byName); c != "" {
			explore = append(explore, core.ExploreTarget{Node: tn, Peer: c, Scenario: core.ScenarioRouteLeak})
		}
	}

	t := &core.Topology{
		Name:    fmt.Sprintf("asgen-%d-seed%d", spec.Nodes, spec.Seed),
		Nodes:   topoNodes,
		Edges:   edges,
		Explore: explore,
	}
	return t, lay, nil
}

// firstCustomer returns the lowest-indexed customer neighbor, or "".
func firstCustomer(rels map[string]Relationship, byName map[string]asNode) string {
	best := ""
	for nb, r := range rels {
		if r != RelCustomer {
			continue
		}
		if best == "" || byName[nb].idx < byName[best].idx {
			best = nb
		}
	}
	return best
}

// nodeConfig compiles one AS's policy to the BIRD-style config grammar.
// Import filters tag the relationship community; export filters enforce
// the Gao–Rexford conditions: everything to customers, only
// customer-learned routes (and local networks, which carry no tags) to
// peers and providers.
func nodeConfig(n asNode, byName map[string]asNode, rels map[string]Relationship, clauses int) []string {
	cfg := []string{
		fmt.Sprintf("router id %s;", n.rid),
		fmt.Sprintf("local as %d;", n.asn),
		fmt.Sprintf("network %s;", n.pfx),
	}
	used := map[Relationship]bool{}
	hasCustomer := false
	for _, r := range rels {
		used[r] = true
		if r == RelCustomer {
			hasCustomer = true
		}
	}
	if used[RelCustomer] {
		// Customers may only announce the generated network space; the
		// prefix guards are also the branches the leak scenario explores.
		// The optional extra clauses each cover one /16 of that space and
		// tag which clause admitted the route, so every clause is a
		// distinct reachable path for the concolic engine.
		cfg = append(cfg, "filter in_customer {")
		for j := 0; j < clauses; j++ {
			cfg = append(cfg,
				fmt.Sprintf("    if net ~ 10.%d.0.0/16{17,24} then {", 80+j),
				fmt.Sprintf("        add community (%d,%d);", RelationshipAS, RelCustomer),
				fmt.Sprintf("        add community (%d,%d);", RelationshipAS+1, j),
				"        accept;",
				"    }",
			)
		}
		cfg = append(cfg,
			"    if net ~ 10.0.0.0/8{9,30} then {",
			fmt.Sprintf("        add community (%d,%d);", RelationshipAS, RelCustomer),
			"        accept;",
			"    }",
			"    reject;",
			"}",
		)
	}
	if used[RelPeer] {
		cfg = append(cfg,
			"filter in_peer {",
			fmt.Sprintf("    add community (%d,%d);", RelationshipAS, RelPeer),
			"    accept;",
			"}",
		)
	}
	if used[RelProvider] {
		cfg = append(cfg,
			"filter in_provider {",
			fmt.Sprintf("    add community (%d,%d);", RelationshipAS, RelProvider),
			"    accept;",
			"}",
		)
	}
	if hasCustomer {
		cfg = append(cfg,
			"filter out_customer {",
			"    accept;",
			"}",
		)
	}
	if used[RelPeer] || used[RelProvider] {
		cfg = append(cfg,
			"filter out_upstream {",
			fmt.Sprintf("    if community (%d,%d) then reject;", RelationshipAS, RelPeer),
			fmt.Sprintf("    if community (%d,%d) then reject;", RelationshipAS, RelProvider),
			"    accept;",
			"}",
		)
	}

	names := make([]string, 0, len(rels))
	for nb := range rels {
		names = append(names, nb)
	}
	sort.Slice(names, func(i, j int) bool { return byName[names[i]].idx < byName[names[j]].idx })
	for _, nb := range names {
		p := byName[nb]
		var imp, exp string
		switch rels[nb] {
		case RelCustomer:
			imp, exp = "in_customer", "out_customer"
		case RelPeer:
			imp, exp = "in_peer", "out_upstream"
		case RelProvider:
			imp, exp = "in_provider", "out_upstream"
		}
		cfg = append(cfg, fmt.Sprintf("peer %s { remote %s as %d; import filter %s; export filter %s; }",
			p.name, p.rid, p.asn, imp, exp))
	}
	return cfg
}

// EncodeJSON renders a topology to the canonical JSON used by topology
// files: indented, field order fixed by the struct definitions, trailing
// newline. Equal topologies encode byte-identically, so a generated
// topo.json is a reproducible artifact of its Spec.
func EncodeJSON(t *core.Topology) ([]byte, error) {
	out, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
