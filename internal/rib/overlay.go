package rib

import (
	"sort"

	"dice/internal/netaddr"
)

// RouteTable is the routing-table interface the router programs against.
// *Table (the real Loc-RIB) and *Overlay (a copy-on-write view used by
// exploration clones) both implement it.
type RouteTable interface {
	Insert(r *Route) Change
	Withdraw(p netaddr.Prefix, peerRouterID netaddr.Addr) Change
	WithdrawPeer(peerRouterID netaddr.Addr) []Change
	Best(p netaddr.Prefix) *Route
	Candidates(p netaddr.Prefix) []*Route
	CoveringBest(p netaddr.Prefix) *Route
	LongestMatch(a netaddr.Addr) *Route
	Walk(fn func(*Route) bool)
	WalkAll(fn func(p netaddr.Prefix, candidates []*Route) bool)
	WalkCovered(p netaddr.Prefix, fn func(*Route) bool)
	Dump() []*Route
	Prefixes() int
	Routes() int
}

var (
	_ RouteTable = (*Table)(nil)
	_ RouteTable = (*Overlay)(nil)
)

// Overlay is a copy-on-write view over an immutable base Table: reads
// fall through to the base; the first write to a prefix copies its
// candidate set into a private table. This is the fork()-COW analogue
// that makes exploration clones O(1) to create regardless of table size —
// the property the paper's §4.1 overhead numbers depend on.
//
// The base MUST NOT be mutated while overlays over it are alive (DiCE
// freezes the checkpoint router for exactly this reason).
type Overlay struct {
	base  *Table
	local *Table
	owned map[netaddr.Prefix]bool

	dPrefixes int // prefix-count delta vs base
	dRoutes   int // route-count delta vs base
}

// NewOverlay creates a COW view over base.
func NewOverlay(base *Table) *Overlay {
	return &Overlay{
		base:  base,
		local: New(),
		owned: make(map[netaddr.Prefix]bool),
	}
}

// own copies the base candidate set for p into the private table (once).
func (o *Overlay) own(p netaddr.Prefix) {
	if o.owned[p] {
		return
	}
	o.owned[p] = true
	for _, c := range o.base.Candidates(p) {
		// Candidates returns a fresh slice; the routes themselves are
		// shared (they are immutable once inserted).
		o.local.Insert(c)
	}
}

// Insert implements RouteTable.
func (o *Overlay) Insert(r *Route) Change {
	o.own(r.Prefix)
	beforeP, beforeR := o.local.Prefixes(), o.local.Routes()
	ch := o.local.Insert(r)
	o.dPrefixes += o.local.Prefixes() - beforeP
	o.dRoutes += o.local.Routes() - beforeR
	return ch
}

// Withdraw implements RouteTable.
func (o *Overlay) Withdraw(p netaddr.Prefix, peerRouterID netaddr.Addr) Change {
	o.own(p)
	beforeP, beforeR := o.local.Prefixes(), o.local.Routes()
	ch := o.local.Withdraw(p, peerRouterID)
	o.dPrefixes += o.local.Prefixes() - beforeP
	o.dRoutes += o.local.Routes() - beforeR
	return ch
}

// WithdrawPeer implements RouteTable. It owns every base prefix carrying
// a route from the peer first (rare on clones: sessions do not flap
// during a single exploration run).
func (o *Overlay) WithdrawPeer(peerRouterID netaddr.Addr) []Change {
	o.base.WalkAll(func(p netaddr.Prefix, candidates []*Route) bool {
		for _, c := range candidates {
			if c.PeerRouterID == peerRouterID && !c.Local {
				o.own(p)
				break
			}
		}
		return true
	})
	beforeP, beforeR := o.local.Prefixes(), o.local.Routes()
	chs := o.local.WithdrawPeer(peerRouterID)
	o.dPrefixes += o.local.Prefixes() - beforeP
	o.dRoutes += o.local.Routes() - beforeR
	return chs
}

// Best implements RouteTable.
func (o *Overlay) Best(p netaddr.Prefix) *Route {
	if o.owned[p] {
		return o.local.Best(p)
	}
	return o.base.Best(p)
}

// Candidates implements RouteTable.
func (o *Overlay) Candidates(p netaddr.Prefix) []*Route {
	if o.owned[p] {
		return o.local.Candidates(p)
	}
	return o.base.Candidates(p)
}

// CoveringBest implements RouteTable: the longest covering prefix with a
// best route, consulting the owned set per candidate prefix length.
func (o *Overlay) CoveringBest(p netaddr.Prefix) *Route {
	for bits := p.Bits(); bits >= 0; bits-- {
		q := netaddr.PrefixFrom(p.Addr(), bits)
		if r := o.Best(q); r != nil {
			return r
		}
	}
	return nil
}

// LongestMatch implements RouteTable.
func (o *Overlay) LongestMatch(a netaddr.Addr) *Route {
	return o.CoveringBest(netaddr.PrefixFrom(a, 32))
}

// WalkAll implements RouteTable: base entries (minus owned) merged with
// local entries, in prefix order.
func (o *Overlay) WalkAll(fn func(p netaddr.Prefix, candidates []*Route) bool) {
	type entry struct {
		p netaddr.Prefix
		c []*Route
	}
	var merged []entry
	o.base.WalkAll(func(p netaddr.Prefix, c []*Route) bool {
		if !o.owned[p] {
			merged = append(merged, entry{p, c})
		}
		return true
	})
	o.local.WalkAll(func(p netaddr.Prefix, c []*Route) bool {
		merged = append(merged, entry{p, c})
		return true
	})
	sort.Slice(merged, func(i, j int) bool { return merged[i].p.Compare(merged[j].p) < 0 })
	for _, e := range merged {
		if !fn(e.p, e.c) {
			return
		}
	}
}

// Walk implements RouteTable (best routes in prefix order).
func (o *Overlay) Walk(fn func(*Route) bool) {
	o.WalkAll(func(p netaddr.Prefix, candidates []*Route) bool {
		var best *Route
		if o.owned[p] {
			best = o.local.Best(p)
		} else {
			best = o.base.Best(p)
		}
		if best != nil {
			return fn(best)
		}
		return true
	})
}

// WalkCovered implements RouteTable.
func (o *Overlay) WalkCovered(p netaddr.Prefix, fn func(*Route) bool) {
	o.Walk(func(r *Route) bool {
		if p.Covers(r.Prefix) {
			return fn(r)
		}
		return true
	})
}

// Dump implements RouteTable.
func (o *Overlay) Dump() []*Route {
	var out []*Route
	o.Walk(func(r *Route) bool {
		out = append(out, r)
		return true
	})
	return out
}

// Prefixes implements RouteTable.
func (o *Overlay) Prefixes() int { return o.base.Prefixes() + o.dPrefixes }

// Routes implements RouteTable.
func (o *Overlay) Routes() int { return o.base.Routes() + o.dRoutes }

// OwnedPrefixes reports how many prefixes the overlay privately owns —
// the COW "dirtied pages" analogue, used by memory accounting.
func (o *Overlay) OwnedPrefixes() int { return len(o.owned) }
