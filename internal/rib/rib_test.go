package rib

import (
	"testing"
	"testing/quick"

	"dice/internal/bgp"
	"dice/internal/netaddr"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }
func ip(s string) netaddr.Addr    { return netaddr.MustParseAddr(s) }

// mkRoute builds a route with the given origin AS at the end of the path.
func mkRoute(prefix string, peerID string, peerAS uint16, pathASNs ...uint16) *Route {
	return &Route{
		Prefix: pfx(prefix),
		Attrs: bgp.Attrs{
			HasOrigin:  true,
			Origin:     bgp.OriginIGP,
			ASPath:     bgp.ASPath{{Type: bgp.ASSequence, ASNs: pathASNs}},
			HasNextHop: true,
			NextHop:    ip(peerID),
		},
		PeerRouterID: ip(peerID),
		PeerAS:       peerAS,
		EBGP:         true,
	}
}

func TestInsertLookup(t *testing.T) {
	tb := New()
	r := mkRoute("203.0.113.0/24", "10.0.0.1", 65001, 65001)
	ch := tb.Insert(r)
	if !ch.Changed() || ch.New != r {
		t.Fatalf("insert change: %+v", ch)
	}
	if got := tb.Best(pfx("203.0.113.0/24")); got != r {
		t.Fatal("Best did not return inserted route")
	}
	if tb.Prefixes() != 1 || tb.Routes() != 1 {
		t.Fatalf("counts: %d/%d", tb.Prefixes(), tb.Routes())
	}
	if got := tb.Best(pfx("203.0.113.0/25")); got != nil {
		t.Fatal("more specific should not match exact lookup")
	}
}

func TestImplicitWithdraw(t *testing.T) {
	tb := New()
	r1 := mkRoute("203.0.113.0/24", "10.0.0.1", 65001, 65001)
	r2 := mkRoute("203.0.113.0/24", "10.0.0.1", 65001, 65001, 65005)
	tb.Insert(r1)
	ch := tb.Insert(r2) // same peer: replaces r1
	if tb.Routes() != 1 {
		t.Fatalf("routes = %d, want 1 (implicit withdraw)", tb.Routes())
	}
	if ch.New != r2 {
		t.Fatal("replacement not selected")
	}
}

func TestWithdraw(t *testing.T) {
	tb := New()
	r1 := mkRoute("203.0.113.0/24", "10.0.0.1", 65001, 65001)
	r2 := mkRoute("203.0.113.0/24", "10.0.0.2", 65002, 65002)
	tb.Insert(r1)
	tb.Insert(r2)

	ch := tb.Withdraw(pfx("203.0.113.0/24"), ip("10.0.0.1"))
	if ch.New == nil || ch.New.PeerRouterID != ip("10.0.0.2") {
		t.Fatalf("after withdraw best = %+v", ch.New)
	}
	ch = tb.Withdraw(pfx("203.0.113.0/24"), ip("10.0.0.2"))
	if ch.New != nil || tb.Prefixes() != 0 {
		t.Fatal("prefix should be gone")
	}
	// Withdrawing a non-existent route is a no-op.
	ch = tb.Withdraw(pfx("198.51.100.0/24"), ip("10.0.0.1"))
	if ch.Changed() {
		t.Fatal("withdraw of missing route changed something")
	}
}

func TestDecisionLocalPref(t *testing.T) {
	tb := New()
	lo := mkRoute("203.0.113.0/24", "10.0.0.1", 65001, 65001)
	hi := mkRoute("203.0.113.0/24", "10.0.0.2", 65002, 65002, 65003)
	hi.Attrs.HasLocalPref, hi.Attrs.LocalPref = true, 200
	tb.Insert(lo)
	tb.Insert(hi)
	if best := tb.Best(pfx("203.0.113.0/24")); best != hi {
		t.Fatalf("LOCAL_PREF 200 should beat shorter path: got %v", best)
	}
}

func TestDecisionASPathLength(t *testing.T) {
	tb := New()
	long := mkRoute("203.0.113.0/24", "10.0.0.1", 65001, 65001, 65002, 65003)
	short := mkRoute("203.0.113.0/24", "10.0.0.2", 65002, 65002)
	tb.Insert(long)
	tb.Insert(short)
	if best := tb.Best(pfx("203.0.113.0/24")); best != short {
		t.Fatalf("shorter AS path should win: got %v", best)
	}
}

func TestDecisionASSetCountsAsOne(t *testing.T) {
	tb := New()
	seqTwo := mkRoute("203.0.113.0/24", "10.0.0.1", 65001, 65001, 65009)
	setRoute := mkRoute("203.0.113.0/24", "10.0.0.2", 65002, 65002)
	setRoute.Attrs.ASPath = append(setRoute.Attrs.ASPath,
		bgp.ASPathSegment{Type: bgp.ASSet, ASNs: []uint16{65003, 65004, 65005}})
	// setRoute length = 1 (seq) + 1 (set) = 2 == seqTwo length 2; falls to
	// origin/router-id tiebreak → lower router ID 10.0.0.1 wins.
	tb.Insert(seqTwo)
	tb.Insert(setRoute)
	if best := tb.Best(pfx("203.0.113.0/24")); best != seqTwo {
		t.Fatalf("tiebreak wrong: got %v", best)
	}
}

func TestDecisionOrigin(t *testing.T) {
	tb := New()
	igp := mkRoute("203.0.113.0/24", "10.0.0.2", 65002, 65002)
	egp := mkRoute("203.0.113.0/24", "10.0.0.1", 65001, 65001)
	egp.Attrs.Origin = bgp.OriginEGP
	tb.Insert(egp)
	tb.Insert(igp)
	if best := tb.Best(pfx("203.0.113.0/24")); best != igp {
		t.Fatalf("IGP origin should win: got %v", best)
	}
}

func TestDecisionMEDSameNeighborOnly(t *testing.T) {
	tb := New()
	// Same neighbor AS: lower MED wins.
	a := mkRoute("203.0.113.0/24", "10.0.0.1", 65001, 65001)
	a.Attrs.HasMED, a.Attrs.MED = true, 50
	b := mkRoute("203.0.113.0/24", "10.0.0.2", 65001, 65001)
	b.Attrs.HasMED, b.Attrs.MED = true, 10
	tb.Insert(a)
	tb.Insert(b)
	if best := tb.Best(pfx("203.0.113.0/24")); best != b {
		t.Fatalf("lower MED should win: got %v", best)
	}

	// Different neighbor AS: MED ignored; router-id decides.
	tb2 := New()
	c := mkRoute("203.0.113.0/24", "10.0.0.1", 65001, 65001)
	c.Attrs.HasMED, c.Attrs.MED = true, 500
	d := mkRoute("203.0.113.0/24", "10.0.0.2", 65002, 65002)
	d.Attrs.HasMED, d.Attrs.MED = true, 1
	tb2.Insert(c)
	tb2.Insert(d)
	if best := tb2.Best(pfx("203.0.113.0/24")); best != c {
		t.Fatalf("MED must not compare across ASes: got %v", best)
	}
}

func TestDecisionEBGPOverIBGP(t *testing.T) {
	tb := New()
	i := mkRoute("203.0.113.0/24", "10.0.0.1", 65000, 65009)
	i.EBGP = false
	e := mkRoute("203.0.113.0/24", "10.0.0.2", 65002, 65009)
	tb.Insert(i)
	tb.Insert(e)
	if best := tb.Best(pfx("203.0.113.0/24")); best != e {
		t.Fatalf("eBGP should win: got %v", best)
	}
}

func TestDecisionLocalWins(t *testing.T) {
	tb := New()
	learned := mkRoute("203.0.113.0/24", "10.0.0.1", 65001, 65001)
	local := &Route{Prefix: pfx("203.0.113.0/24"), Local: true}
	tb.Insert(learned)
	tb.Insert(local)
	if best := tb.Best(pfx("203.0.113.0/24")); best != local {
		t.Fatalf("local route should win: got %v", best)
	}
}

func TestLongestMatch(t *testing.T) {
	tb := New()
	r8 := mkRoute("10.0.0.0/8", "10.0.0.1", 65001, 65001)
	r16 := mkRoute("10.1.0.0/16", "10.0.0.1", 65001, 65001)
	r24 := mkRoute("10.1.2.0/24", "10.0.0.1", 65001, 65001)
	tb.Insert(r8)
	tb.Insert(r16)
	tb.Insert(r24)

	cases := []struct {
		addr string
		want *Route
	}{
		{"10.1.2.3", r24},
		{"10.1.9.9", r16},
		{"10.9.9.9", r8},
		{"11.0.0.1", nil},
	}
	for _, c := range cases {
		if got := tb.LongestMatch(ip(c.addr)); got != c.want {
			t.Errorf("LongestMatch(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestCoveringBest(t *testing.T) {
	tb := New()
	r16 := mkRoute("10.1.0.0/16", "10.0.0.1", 65001, 65001)
	tb.Insert(r16)
	if got := tb.CoveringBest(pfx("10.1.2.0/24")); got != r16 {
		t.Fatalf("CoveringBest(/24) = %v, want /16 route", got)
	}
	if got := tb.CoveringBest(pfx("10.1.0.0/16")); got != r16 {
		t.Fatalf("CoveringBest(exact) = %v", got)
	}
	if got := tb.CoveringBest(pfx("10.0.0.0/8")); got != nil {
		t.Fatalf("CoveringBest(less specific) = %v, want nil", got)
	}
}

func TestWalkCovered(t *testing.T) {
	tb := New()
	tb.Insert(mkRoute("10.1.0.0/16", "10.0.0.1", 65001, 65001))
	tb.Insert(mkRoute("10.1.2.0/24", "10.0.0.1", 65001, 65001))
	tb.Insert(mkRoute("192.168.0.0/16", "10.0.0.1", 65001, 65001))
	var got []string
	tb.WalkCovered(pfx("10.0.0.0/8"), func(r *Route) bool {
		got = append(got, r.Prefix.String())
		return true
	})
	if len(got) != 2 {
		t.Fatalf("covered walk found %v", got)
	}
}

func TestWithdrawPeer(t *testing.T) {
	tb := New()
	tb.Insert(mkRoute("10.1.0.0/16", "10.0.0.1", 65001, 65001))
	tb.Insert(mkRoute("10.2.0.0/16", "10.0.0.1", 65001, 65001))
	tb.Insert(mkRoute("10.2.0.0/16", "10.0.0.2", 65002, 65002))
	changes := tb.WithdrawPeer(ip("10.0.0.1"))
	if len(changes) != 2 {
		t.Fatalf("changes = %d, want 2", len(changes))
	}
	if tb.Best(pfx("10.1.0.0/16")) != nil {
		t.Fatal("10.1/16 should be gone")
	}
	if b := tb.Best(pfx("10.2.0.0/16")); b == nil || b.PeerRouterID != ip("10.0.0.2") {
		t.Fatalf("10.2/16 best = %v", b)
	}
}

func TestDumpSorted(t *testing.T) {
	tb := New()
	tb.Insert(mkRoute("192.168.0.0/16", "10.0.0.1", 65001, 65001))
	tb.Insert(mkRoute("10.0.0.0/8", "10.0.0.1", 65001, 65001))
	tb.Insert(mkRoute("10.0.0.0/16", "10.0.0.1", 65001, 65001))
	d := tb.Dump()
	if len(d) != 3 || d[0].Prefix.String() != "10.0.0.0/8" || d[1].Prefix.String() != "10.0.0.0/16" {
		t.Fatalf("dump order: %v", d)
	}
}

func TestRouteString(t *testing.T) {
	r := mkRoute("10.0.0.0/8", "10.0.0.1", 65001, 65001)
	r.Attrs.HasLocalPref, r.Attrs.LocalPref = true, 100
	r.Attrs.HasMED, r.Attrs.MED = true, 5
	s := r.String()
	for _, want := range []string{"10.0.0.0/8", "65001", "IGP", "local-pref 100", "med 5"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property: the trie agrees with a reference map for arbitrary
// insert/withdraw sequences (exact-match semantics).
func TestTrieMatchesReferenceMap(t *testing.T) {
	f := func(ops []struct {
		Addr     uint32
		Bits     uint8
		Peer     uint8
		Withdraw bool
	}) bool {
		tb := New()
		ref := map[netaddr.Prefix]map[netaddr.Addr]bool{}
		for _, op := range ops {
			p := netaddr.PrefixFrom(netaddr.Addr(op.Addr), int(op.Bits%33))
			peer := netaddr.AddrFrom4(10, 0, 0, op.Peer)
			if op.Withdraw {
				tb.Withdraw(p, peer)
				if m := ref[p]; m != nil {
					delete(m, peer)
					if len(m) == 0 {
						delete(ref, p)
					}
				}
			} else {
				r := mkRoute(p.String(), peer.String(), uint16(op.Peer)+1, uint16(op.Peer)+1)
				tb.Insert(r)
				if ref[p] == nil {
					ref[p] = map[netaddr.Addr]bool{}
				}
				ref[p][peer] = true
			}
		}
		if tb.Prefixes() != len(ref) {
			return false
		}
		total := 0
		for p, peers := range ref {
			total += len(peers)
			if tb.Best(p) == nil {
				return false
			}
			if len(tb.Candidates(p)) != len(peers) {
				return false
			}
		}
		return tb.Routes() == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: better() is a strict total order on routes with distinct
// router IDs (antisymmetric and total), which selectBest requires.
func TestBetterIsStrictOrder(t *testing.T) {
	f := func(lpA, lpB uint32, pathLenA, pathLenB, originA, originB uint8, idA, idB uint8) bool {
		if idA == idB {
			return true
		}
		mk := func(lp uint32, plen, origin, id uint8) *Route {
			asns := make([]uint16, int(plen%5)+1)
			for i := range asns {
				asns[i] = uint16(i) + 1
			}
			return &Route{
				Prefix: pfx("10.0.0.0/8"),
				Attrs: bgp.Attrs{
					HasLocalPref: true,
					LocalPref:    lp % 1000,
					Origin:       origin % 3,
					HasOrigin:    true,
					ASPath:       bgp.ASPath{{Type: bgp.ASSequence, ASNs: asns}},
				},
				PeerRouterID: netaddr.AddrFrom4(10, 0, 0, id),
				PeerAS:       100,
				EBGP:         true,
			}
		}
		a := mk(lpA, pathLenA, originA, idA)
		b := mk(lpB, pathLenB, originB, idB)
		return better(a, b) != better(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tb := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := netaddr.PrefixFrom(netaddr.Addr(uint32(i)<<8), 24)
		tb.Insert(&Route{
			Prefix:       p,
			Attrs:        bgp.Attrs{ASPath: bgp.ASPath{{Type: bgp.ASSequence, ASNs: []uint16{65001}}}},
			PeerRouterID: ip("10.0.0.1"),
			PeerAS:       65001,
			EBGP:         true,
		})
	}
}

func BenchmarkLongestMatch(b *testing.B) {
	tb := New()
	for i := 0; i < 100000; i++ {
		p := netaddr.PrefixFrom(netaddr.Addr(uint32(i)<<12), 20)
		tb.Insert(mkRoute(p.String(), "10.0.0.1", 65001, 65001))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.LongestMatch(netaddr.Addr(uint32(i) * 2654435761))
	}
}
