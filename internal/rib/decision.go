package rib

// The BGP decision process (RFC 4271 §9.1.2.2), in BIRD's ordering:
//
//  1. Locally originated routes win.
//  2. Highest LOCAL_PREF (default 100 when absent).
//  3. Shortest AS_PATH (AS_SET counts as 1).
//  4. Lowest ORIGIN (IGP < EGP < Incomplete).
//  5. Lowest MED, compared only between routes from the same neighbor AS
//     (missing MED treated as 0, i.e. best).
//  6. eBGP-learned preferred over iBGP-learned.
//  7. Lowest peer router ID (the deterministic tiebreak).

// defaultLocalPref is assumed when LOCAL_PREF is absent (RFC 4271 §9.1.1
// leaves this to policy; 100 is the universal vendor default).
const defaultLocalPref = 100

func localPref(r *Route) uint32 {
	if r.Attrs.HasLocalPref {
		return r.Attrs.LocalPref
	}
	return defaultLocalPref
}

func med(r *Route) uint32 {
	if r.Attrs.HasMED {
		return r.Attrs.MED
	}
	return 0
}

// better reports whether a is preferred over b by the decision process.
func better(a, b *Route) bool {
	// Step 1: local routes first.
	if a.Local != b.Local {
		return a.Local
	}
	// Step 2: LOCAL_PREF, higher wins.
	if la, lb := localPref(a), localPref(b); la != lb {
		return la > lb
	}
	// Step 3: AS_PATH length, shorter wins.
	if pa, pb := a.Attrs.ASPath.Length(), b.Attrs.ASPath.Length(); pa != pb {
		return pa < pb
	}
	// Step 4: ORIGIN, lower wins.
	if a.Attrs.Origin != b.Attrs.Origin {
		return a.Attrs.Origin < b.Attrs.Origin
	}
	// Step 5: MED, lower wins, only comparable from the same neighbor AS.
	if a.PeerAS == b.PeerAS {
		if ma, mb := med(a), med(b); ma != mb {
			return ma < mb
		}
	}
	// Step 6: eBGP over iBGP.
	if a.EBGP != b.EBGP {
		return a.EBGP
	}
	// Step 7: lowest peer router ID.
	return a.PeerRouterID < b.PeerRouterID
}

// selectBest reruns best-path selection over the candidate set.
func (e *entry) selectBest() {
	var best *Route
	for _, c := range e.candidates {
		if best == nil || better(c, best) {
			best = c
		}
	}
	e.best = best
}
