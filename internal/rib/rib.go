// Package rib implements the Routing Information Bases of a BGP speaker:
// per-peer Adj-RIB-In tables and the Loc-RIB with the RFC 4271 §9.1
// decision process. Prefix storage is a binary radix trie, so exact
// lookups, longest-prefix matches and covered/covering scans are all
// O(prefix length).
package rib

import (
	"fmt"
	"sort"
	"strings"

	"dice/internal/bgp"
	"dice/internal/netaddr"
)

// Route is one path to a prefix as learned from a peer (or injected
// locally).
type Route struct {
	Prefix netaddr.Prefix
	Attrs  bgp.Attrs

	// Peer identity for the decision process and implicit withdraws.
	PeerRouterID netaddr.Addr
	PeerAS       uint16
	EBGP         bool

	// Local marks routes originated by this router (static/network
	// statements); they win over learned routes.
	Local bool
}

// OriginAS returns the AS that originated this route: the rightmost AS of
// the AS_PATH, or the local AS marker 0 for locally originated routes.
func (r *Route) OriginAS() uint16 { return r.Attrs.ASPath.OriginAS() }

// String renders the route like a routing table line.
func (r *Route) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s via %s", r.Prefix, r.Attrs.NextHop)
	fmt.Fprintf(&b, " as-path [%s]", r.Attrs.ASPath)
	fmt.Fprintf(&b, " origin %s", bgp.OriginString(r.Attrs.Origin))
	if r.Attrs.HasLocalPref {
		fmt.Fprintf(&b, " local-pref %d", r.Attrs.LocalPref)
	}
	if r.Attrs.HasMED {
		fmt.Fprintf(&b, " med %d", r.Attrs.MED)
	}
	return b.String()
}

// node is a binary radix-trie node. Entries live at the node whose depth
// equals the prefix length.
type node struct {
	children [2]*node
	entry    *entry
}

// entry keeps all candidate routes for one prefix plus the selected best.
type entry struct {
	prefix     netaddr.Prefix
	candidates []*Route
	best       *Route
}

// Table is a Loc-RIB: all candidate routes per prefix with best-path
// selection. Not safe for concurrent use; the router serializes access.
type Table struct {
	root     *node
	prefixes int // number of prefixes with at least one candidate
	routes   int // total candidate routes
}

// New creates an empty table.
func New() *Table {
	return &Table{root: &node{}}
}

// Prefixes returns the number of distinct prefixes present.
func (t *Table) Prefixes() int { return t.prefixes }

// Routes returns the total number of candidate routes.
func (t *Table) Routes() int { return t.routes }

// find walks to the node for p, optionally creating missing nodes.
func (t *Table) find(p netaddr.Prefix, create bool) *node {
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		b := p.Bit(i)
		if n.children[b] == nil {
			if !create {
				return nil
			}
			n.children[b] = &node{}
		}
		n = n.children[b]
	}
	return n
}

// Change describes the effect of an insert/withdraw on the best route.
type Change struct {
	Prefix   netaddr.Prefix
	Old, New *Route // nil means no best route before/after
}

// Changed reports whether the best route actually changed.
func (c Change) Changed() bool { return c.Old != c.New }

// Insert adds (or replaces — the implicit withdraw of RFC 4271 §3.1) the
// route from the given peer and reruns selection for the prefix.
func (t *Table) Insert(r *Route) Change {
	n := t.find(r.Prefix, true)
	if n.entry == nil {
		n.entry = &entry{prefix: r.Prefix}
		t.prefixes++
	}
	e := n.entry
	old := e.best
	replaced := false
	for i, c := range e.candidates {
		if sameSource(c, r) {
			e.candidates[i] = r
			replaced = true
			break
		}
	}
	if !replaced {
		e.candidates = append(e.candidates, r)
		t.routes++
	}
	e.selectBest()
	return Change{Prefix: r.Prefix, Old: old, New: e.best}
}

// Withdraw removes the route for p learned from the given peer.
func (t *Table) Withdraw(p netaddr.Prefix, peerRouterID netaddr.Addr) Change {
	n := t.find(p, false)
	if n == nil || n.entry == nil {
		return Change{Prefix: p}
	}
	e := n.entry
	old := e.best
	for i, c := range e.candidates {
		if c.PeerRouterID == peerRouterID && !c.Local {
			e.candidates = append(e.candidates[:i], e.candidates[i+1:]...)
			t.routes--
			break
		}
	}
	if len(e.candidates) == 0 {
		n.entry = nil
		t.prefixes--
		return Change{Prefix: p, Old: old, New: nil}
	}
	e.selectBest()
	return Change{Prefix: p, Old: old, New: e.best}
}

// WithdrawPeer removes every route learned from a peer (session down).
// It returns the changes for prefixes whose best route changed.
func (t *Table) WithdrawPeer(peerRouterID netaddr.Addr) []Change {
	var changes []Change
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if e := n.entry; e != nil {
			old := e.best
			kept := e.candidates[:0]
			for _, c := range e.candidates {
				if c.PeerRouterID == peerRouterID && !c.Local {
					t.routes--
				} else {
					kept = append(kept, c)
				}
			}
			e.candidates = kept
			if len(e.candidates) == 0 {
				n.entry = nil
				t.prefixes--
				if old != nil {
					changes = append(changes, Change{Prefix: e.prefix, Old: old})
				}
			} else {
				e.selectBest()
				if e.best != old {
					changes = append(changes, Change{Prefix: e.prefix, Old: old, New: e.best})
				}
			}
		}
		walk(n.children[0])
		walk(n.children[1])
	}
	walk(t.root)
	return changes
}

// sameSource reports whether two candidates come from the same source and
// therefore replace one another.
func sameSource(a, b *Route) bool {
	if a.Local != b.Local {
		return false
	}
	if a.Local {
		return true
	}
	return a.PeerRouterID == b.PeerRouterID
}

// Best returns the selected route for exactly prefix p, or nil.
func (t *Table) Best(p netaddr.Prefix) *Route {
	n := t.find(p, false)
	if n == nil || n.entry == nil {
		return nil
	}
	return n.entry.best
}

// Candidates returns all candidate routes for exactly prefix p.
func (t *Table) Candidates(p netaddr.Prefix) []*Route {
	n := t.find(p, false)
	if n == nil || n.entry == nil {
		return nil
	}
	return append([]*Route(nil), n.entry.candidates...)
}

// LongestMatch returns the best route of the most specific prefix
// containing addr, or nil if none.
func (t *Table) LongestMatch(a netaddr.Addr) *Route {
	n := t.root
	var last *Route
	for i := 0; ; i++ {
		if n.entry != nil && n.entry.best != nil {
			last = n.entry.best
		}
		if i >= 32 {
			break
		}
		b := int(a>>(31-uint(i))) & 1
		if n.children[b] == nil {
			break
		}
		n = n.children[b]
	}
	return last
}

// CoveringBest returns the best route for the longest prefix that covers p
// (including p itself), or nil.
func (t *Table) CoveringBest(p netaddr.Prefix) *Route {
	n := t.root
	var last *Route
	for i := 0; ; i++ {
		if n.entry != nil && n.entry.best != nil {
			last = n.entry.best
		}
		if i >= p.Bits() {
			break
		}
		b := p.Bit(i)
		if n.children[b] == nil {
			break
		}
		n = n.children[b]
	}
	return last
}

// Walk visits the best route of every prefix in address order.
func (t *Table) Walk(fn func(*Route) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n == nil {
			return true
		}
		if n.entry != nil && n.entry.best != nil {
			if !fn(n.entry.best) {
				return false
			}
		}
		return walk(n.children[0]) && walk(n.children[1])
	}
	walk(t.root)
}

// WalkCovered visits best routes of prefixes covered by p (p itself and
// more-specifics).
func (t *Table) WalkCovered(p netaddr.Prefix, fn func(*Route) bool) {
	n := t.find(p, false)
	if n == nil {
		return
	}
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n == nil {
			return true
		}
		if n.entry != nil && n.entry.best != nil {
			if !fn(n.entry.best) {
				return false
			}
		}
		return walk(n.children[0]) && walk(n.children[1])
	}
	walk(n)
}

// WalkAll visits every prefix with its full candidate set in trie
// (address) order — used by checkpoint serialization, which needs the
// complete state, not just selected routes.
func (t *Table) WalkAll(fn func(p netaddr.Prefix, candidates []*Route) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n == nil {
			return true
		}
		if n.entry != nil && len(n.entry.candidates) > 0 {
			if !fn(n.entry.prefix, n.entry.candidates) {
				return false
			}
		}
		return walk(n.children[0]) && walk(n.children[1])
	}
	walk(t.root)
}

// Dump returns all best routes sorted by prefix, for tests and the CLI.
func (t *Table) Dump() []*Route {
	var out []*Route
	t.Walk(func(r *Route) bool {
		out = append(out, r)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}
