package rib

import (
	"testing"
	"testing/quick"

	"dice/internal/netaddr"
)

func baseWithRoutes(t *testing.T) *Table {
	t.Helper()
	tb := New()
	tb.Insert(mkRoute("10.0.0.0/8", "10.0.0.1", 65001, 65001))
	tb.Insert(mkRoute("10.1.0.0/16", "10.0.0.1", 65001, 65001))
	tb.Insert(mkRoute("192.168.0.0/16", "10.0.0.2", 65002, 65002))
	return tb
}

func TestOverlayReadsFallThrough(t *testing.T) {
	base := baseWithRoutes(t)
	o := NewOverlay(base)
	if o.Best(pfx("10.0.0.0/8")) != base.Best(pfx("10.0.0.0/8")) {
		t.Fatal("read did not fall through")
	}
	if o.Prefixes() != base.Prefixes() || o.Routes() != base.Routes() {
		t.Fatal("counts differ before any write")
	}
	if o.CoveringBest(pfx("10.1.2.0/24")) != base.Best(pfx("10.1.0.0/16")) {
		t.Fatal("covering lookup wrong")
	}
	if o.LongestMatch(ip("10.1.2.3")) != base.Best(pfx("10.1.0.0/16")) {
		t.Fatal("longest match wrong")
	}
}

func TestOverlayWriteDoesNotTouchBase(t *testing.T) {
	base := baseWithRoutes(t)
	beforeRoutes := base.Routes()
	o := NewOverlay(base)

	o.Insert(mkRoute("10.1.0.0/16", "10.0.0.9", 65009, 65009))
	if base.Routes() != beforeRoutes {
		t.Fatal("overlay write leaked into base")
	}
	// Overlay sees both candidates.
	if got := len(o.Candidates(pfx("10.1.0.0/16"))); got != 2 {
		t.Fatalf("overlay candidates = %d, want 2", got)
	}
	if got := len(base.Candidates(pfx("10.1.0.0/16"))); got != 1 {
		t.Fatalf("base candidates = %d, want 1", got)
	}
	if o.Routes() != beforeRoutes+1 {
		t.Fatalf("overlay route count %d, want %d", o.Routes(), beforeRoutes+1)
	}
	if o.OwnedPrefixes() != 1 {
		t.Fatalf("owned = %d", o.OwnedPrefixes())
	}
}

func TestOverlayWithdraw(t *testing.T) {
	base := baseWithRoutes(t)
	o := NewOverlay(base)
	ch := o.Withdraw(pfx("192.168.0.0/16"), ip("10.0.0.2"))
	if !ch.Changed() {
		t.Fatal("withdraw did not change best")
	}
	if o.Best(pfx("192.168.0.0/16")) != nil {
		t.Fatal("overlay still sees withdrawn route")
	}
	if base.Best(pfx("192.168.0.0/16")) == nil {
		t.Fatal("withdraw leaked into base")
	}
	if o.Prefixes() != base.Prefixes()-1 {
		t.Fatalf("prefix count %d, want %d", o.Prefixes(), base.Prefixes()-1)
	}
}

func TestOverlayNewPrefix(t *testing.T) {
	base := baseWithRoutes(t)
	o := NewOverlay(base)
	o.Insert(mkRoute("172.16.0.0/12", "10.0.0.9", 65009, 65009))
	if o.Best(pfx("172.16.0.0/12")) == nil {
		t.Fatal("new prefix missing in overlay")
	}
	if base.Best(pfx("172.16.0.0/12")) != nil {
		t.Fatal("new prefix leaked into base")
	}
	if o.Prefixes() != base.Prefixes()+1 {
		t.Fatal("prefix delta wrong")
	}
}

func TestOverlayWalkMergesSorted(t *testing.T) {
	base := baseWithRoutes(t)
	o := NewOverlay(base)
	o.Insert(mkRoute("11.0.0.0/8", "10.0.0.9", 65009, 65009))
	o.Withdraw(pfx("192.168.0.0/16"), ip("10.0.0.2"))

	var got []string
	o.Walk(func(r *Route) bool {
		got = append(got, r.Prefix.String())
		return true
	})
	want := []string{"10.0.0.0/8", "10.1.0.0/16", "11.0.0.0/8"}
	if len(got) != len(want) {
		t.Fatalf("walk: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order: %v", got)
		}
	}
	if d := o.Dump(); len(d) != 3 {
		t.Fatalf("dump: %v", d)
	}
}

func TestOverlayWithdrawPeer(t *testing.T) {
	base := baseWithRoutes(t)
	o := NewOverlay(base)
	chs := o.WithdrawPeer(ip("10.0.0.1"))
	if len(chs) != 2 {
		t.Fatalf("changes = %d, want 2", len(chs))
	}
	if o.Best(pfx("10.0.0.0/8")) != nil || o.Best(pfx("10.1.0.0/16")) != nil {
		t.Fatal("peer routes still visible in overlay")
	}
	if base.Best(pfx("10.0.0.0/8")) == nil {
		t.Fatal("base mutated")
	}
}

func TestOverlayCoveringAcrossBaseAndLocal(t *testing.T) {
	base := baseWithRoutes(t)
	o := NewOverlay(base)
	// Insert a more specific local route; covering lookups for an even
	// more specific prefix must find the local one, not the base /16.
	loc := mkRoute("10.1.2.0/24", "10.0.0.9", 65009, 65009)
	o.Insert(loc)
	if got := o.CoveringBest(pfx("10.1.2.128/25")); got != loc {
		t.Fatalf("covering = %v, want local /24", got)
	}
	// And after withdrawing an owned base prefix, covering falls back.
	o.Withdraw(pfx("10.1.0.0/16"), ip("10.0.0.1"))
	if got := o.CoveringBest(pfx("10.1.3.0/24")); got == nil || got.Prefix != pfx("10.0.0.0/8") {
		t.Fatalf("covering after withdraw = %v, want /8", got)
	}
}

// Property: an Overlay behaves exactly like a deep copy of the base under
// an arbitrary sequence of inserts/withdraws (observational equivalence).
func TestOverlayEquivalentToDeepCopy(t *testing.T) {
	f := func(ops []struct {
		Addr     uint32
		Bits     uint8
		Peer     uint8
		Withdraw bool
	}) bool {
		base := New()
		base.Insert(mkRoute("10.0.0.0/8", "10.0.0.1", 65001, 65001))
		base.Insert(mkRoute("20.0.0.0/8", "10.0.0.2", 65002, 65002))

		// Deep copy reference.
		ref := New()
		base.WalkAll(func(p netaddr.Prefix, cs []*Route) bool {
			for _, c := range cs {
				ref.Insert(c)
			}
			return true
		})
		o := NewOverlay(base)

		if len(ops) > 40 {
			ops = ops[:40]
		}
		for _, op := range ops {
			p := netaddr.PrefixFrom(netaddr.Addr(op.Addr), int(op.Bits%33))
			peer := netaddr.AddrFrom4(10, 0, 0, op.Peer)
			if op.Withdraw {
				ref.Withdraw(p, peer)
				o.Withdraw(p, peer)
			} else {
				r := mkRoute(p.String(), peer.String(), uint16(op.Peer)+1, uint16(op.Peer)+1)
				ref.Insert(r)
				o.Insert(r)
			}
		}
		if ref.Prefixes() != o.Prefixes() || ref.Routes() != o.Routes() {
			return false
		}
		refDump := ref.Dump()
		oDump := o.Dump()
		if len(refDump) != len(oDump) {
			return false
		}
		for i := range refDump {
			if refDump[i].Prefix != oDump[i].Prefix ||
				refDump[i].PeerRouterID != oDump[i].PeerRouterID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkOverlayCreate(b *testing.B) {
	base := New()
	for i := 0; i < 100000; i++ {
		base.Insert(mkRoute(netaddr.PrefixFrom(netaddr.Addr(uint32(i)<<12), 20).String(), "10.0.0.1", 65001, 65001))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := NewOverlay(base)
		_ = o
	}
}

func BenchmarkOverlayInsertOne(b *testing.B) {
	base := New()
	for i := 0; i < 100000; i++ {
		base.Insert(mkRoute(netaddr.PrefixFrom(netaddr.Addr(uint32(i)<<12), 20).String(), "10.0.0.1", 65001, 65001))
	}
	r := mkRoute("203.0.113.0/24", "10.0.0.9", 65009, 65009)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := NewOverlay(base)
		o.Insert(r)
	}
}
