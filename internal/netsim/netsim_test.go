package netsim

import (
	"fmt"
	"testing"
	"time"
)

type recorder struct {
	got []string
}

func (r *recorder) Deliver(now time.Time, from string, data []byte) {
	r.got = append(r.got, fmt.Sprintf("%s:%s", from, data))
}

func start() time.Time { return time.Unix(1e9, 0) }

func TestBasicDelivery(t *testing.T) {
	n := New(start())
	a, b := &recorder{}, &recorder{}
	if err := n.AddNode("a", a); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("b", b); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("a", "b", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	n.Send("a", "b", []byte("hello"))
	if got := n.Run(0); got != 1 {
		t.Fatalf("deliveries = %d", got)
	}
	if len(b.got) != 1 || b.got[0] != "a:hello" {
		t.Fatalf("b got %v", b.got)
	}
	if len(a.got) != 0 {
		t.Fatal("a should receive nothing")
	}
	// Clock advanced by link latency.
	if n.Now() != start().Add(time.Millisecond) {
		t.Fatalf("clock = %v", n.Now())
	}
}

func TestDuplicateNodeAndLink(t *testing.T) {
	n := New(start())
	n.AddNode("a", &recorder{})
	if err := n.AddNode("a", &recorder{}); err == nil {
		t.Error("duplicate node accepted")
	}
	n.AddNode("b", &recorder{})
	n.Connect("a", "b", 0)
	if err := n.Connect("b", "a", 0); err == nil {
		t.Error("duplicate link accepted")
	}
	if err := n.Connect("a", "zzz", 0); err == nil {
		t.Error("link to unknown node accepted")
	}
}

func TestNoLinkDrops(t *testing.T) {
	n := New(start())
	a, b := &recorder{}, &recorder{}
	n.AddNode("a", a)
	n.AddNode("b", b)
	n.Send("a", "b", []byte("x")) // no link: dropped
	if n.Run(0) != 0 || len(b.got) != 0 {
		t.Fatal("message crossed a missing link")
	}
}

func TestFIFOOrderingAtSameTime(t *testing.T) {
	n := New(start())
	b := &recorder{}
	n.AddNode("a", &recorder{})
	n.AddNode("b", b)
	n.Connect("a", "b", time.Millisecond)
	for i := 0; i < 10; i++ {
		n.Send("a", "b", []byte{byte('0' + i)})
	}
	n.Run(0)
	for i := 0; i < 10; i++ {
		want := fmt.Sprintf("a:%c", '0'+i)
		if b.got[i] != want {
			t.Fatalf("order broken at %d: %v", i, b.got)
		}
	}
}

func TestLatencyOrdering(t *testing.T) {
	n := New(start())
	c := &recorder{}
	n.AddNode("a", &recorder{})
	n.AddNode("b", &recorder{})
	n.AddNode("c", c)
	n.Connect("a", "c", 10*time.Millisecond)
	n.Connect("b", "c", time.Millisecond)
	n.Send("a", "c", []byte("slow"))
	n.Send("b", "c", []byte("fast"))
	n.Run(0)
	if c.got[0] != "b:fast" || c.got[1] != "a:slow" {
		t.Fatalf("latency ordering wrong: %v", c.got)
	}
}

func TestRunUntil(t *testing.T) {
	n := New(start())
	b := &recorder{}
	n.AddNode("a", &recorder{})
	n.AddNode("b", b)
	n.Connect("a", "b", 5*time.Millisecond)
	n.Send("a", "b", []byte("1"))
	n.Advance(0)

	// Deadline before delivery: nothing arrives, clock at deadline.
	if got := n.RunUntil(start().Add(2 * time.Millisecond)); got != 0 {
		t.Fatalf("early deliveries = %d", got)
	}
	if n.Now() != start().Add(2*time.Millisecond) {
		t.Fatalf("clock = %v", n.Now())
	}
	if got := n.RunUntil(start().Add(10 * time.Millisecond)); got != 1 {
		t.Fatalf("deliveries = %d", got)
	}
	if n.Pending() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestStats(t *testing.T) {
	n := New(start())
	n.AddNode("a", &recorder{})
	n.AddNode("b", &recorder{})
	n.Connect("a", "b", 0)
	n.Send("a", "b", []byte("xyz"))
	n.Send("a", "b", []byte("pq"))
	st := n.Stats("a", "b")
	if st.Messages != 2 || st.Bytes != 5 {
		t.Fatalf("stats: %+v", st)
	}
	if st := n.Stats("b", "a"); st.Messages != 0 {
		t.Fatalf("reverse stats: %+v", st)
	}
}

func TestInterception(t *testing.T) {
	n := New(start())
	b := &recorder{}
	n.AddNode("a", &recorder{})
	n.AddNode("b", b)
	n.Connect("a", "b", 0)

	sink := n.Intercept("a")
	n.Send("a", "b", []byte("secret"))
	n.Run(0)
	if len(b.got) != 0 {
		t.Fatal("intercepted message leaked to the live network")
	}
	if sink.Count() != 1 || string(sink.Messages()[0].Data) != "secret" {
		t.Fatalf("sink: %+v", sink.Messages())
	}

	n.Release("a")
	n.Send("a", "b", []byte("open"))
	n.Run(0)
	if len(b.got) != 1 {
		t.Fatal("released node still intercepted")
	}
}

func TestCaptureSinkStandalone(t *testing.T) {
	sink := NewCaptureSink()
	var tr Transport = sink
	tr.Send("clone", "peer", []byte("explore"))
	if sink.Count() != 1 {
		t.Fatal("capture failed")
	}
	msgs := sink.Messages()
	if msgs[0].From != "clone" || msgs[0].To != "peer" {
		t.Fatalf("capture meta: %+v", msgs[0])
	}
	// Mutating the returned slice's data must not corrupt the sink copy...
	msgs[0].Data[0] = 'X'
	if string(sink.Messages()[0].Data) != "Xxplore" {
		// Data is shared per message (documented snapshot of slice, not
		// deep copy) — the sink captured its own copy of the original.
	}
	sink.Reset()
	if sink.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestDataIsolation(t *testing.T) {
	// The network must copy payloads: sender reuse of the buffer must not
	// corrupt in-flight messages.
	n := New(start())
	b := &recorder{}
	n.AddNode("a", &recorder{})
	n.AddNode("b", b)
	n.Connect("a", "b", time.Millisecond)
	buf := []byte("AAAA")
	n.Send("a", "b", buf)
	buf[0] = 'Z'
	n.Run(0)
	if b.got[0] != "a:AAAA" {
		t.Fatalf("payload corrupted: %v", b.got)
	}
}

func TestReceiverFunc(t *testing.T) {
	var got string
	r := ReceiverFunc(func(now time.Time, from string, data []byte) { got = from + ":" + string(data) })
	r.Deliver(start(), "x", []byte("y"))
	if got != "x:y" {
		t.Fatal("ReceiverFunc adapter broken")
	}
}

func BenchmarkSendDeliver(b *testing.B) {
	n := New(start())
	sinkNode := ReceiverFunc(func(time.Time, string, []byte) {})
	n.AddNode("a", sinkNode)
	n.AddNode("b", sinkNode)
	n.Connect("a", "b", time.Microsecond)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send("a", "b", payload)
		n.Step()
	}
}
