// Package netsim is an in-memory virtual network: named nodes joined by
// duplex links with configurable latency, a virtual clock, and a
// deterministic event queue. It replaces the Linux virtual interfaces of
// the paper's testbed (Figure 2).
//
// Isolation for DiCE (§2.3: "DiCE intercepts the messages generated
// during exploration") is provided two ways: exploration clones are simply
// never attached to the network (their transport is a CaptureSink), and a
// live node can additionally be switched into intercept mode, which
// diverts its outbound traffic into a sink instead of the wire.
package netsim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Transport lets a protocol stack send bytes toward a named peer. Both
// the Network (live) and CaptureSink (exploration) implement it.
type Transport interface {
	Send(from, to string, data []byte)
}

// Receiver is implemented by node protocol stacks.
type Receiver interface {
	// Deliver hands the node bytes that arrived from a peer at virtual
	// time now.
	Deliver(now time.Time, from string, data []byte)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(now time.Time, from string, data []byte)

// Deliver implements Receiver.
func (f ReceiverFunc) Deliver(now time.Time, from string, data []byte) { f(now, from, data) }

// event is one scheduled delivery.
type event struct {
	at   time.Time
	seq  uint64 // FIFO tiebreak for identical timestamps
	from string
	to   string
	data []byte
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// LinkStats counts traffic over one direction of a link.
type LinkStats struct {
	Messages uint64
	Bytes    uint64
}

type linkKey struct{ a, b string }

type link struct {
	latency time.Duration
	stats   map[string]*LinkStats // keyed by sender
}

// Network is the virtual network. Safe for concurrent Send; Run/Step must
// be called from one goroutine.
type Network struct {
	mu        sync.Mutex
	nodes     map[string]Receiver
	links     map[linkKey]*link
	queue     eventQueue
	seq       uint64
	now       time.Time
	intercept map[string]*CaptureSink

	// Delivered counts total deliveries (for tests).
	Delivered uint64
}

// New creates an empty network with the virtual clock at start.
func New(start time.Time) *Network {
	return &Network{
		nodes:     make(map[string]Receiver),
		links:     make(map[linkKey]*link),
		now:       start,
		intercept: make(map[string]*CaptureSink),
	}
}

// Now returns the current virtual time.
func (n *Network) Now() time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// AddNode attaches a receiver under a unique name.
func (n *Network) AddNode(name string, r Receiver) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[name]; dup {
		return fmt.Errorf("netsim: duplicate node %q", name)
	}
	n.nodes[name] = r
	return nil
}

func key(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Connect creates a duplex link between two existing nodes.
func (n *Network) Connect(a, b string, latency time.Duration) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[a]; !ok {
		return fmt.Errorf("netsim: unknown node %q", a)
	}
	if _, ok := n.nodes[b]; !ok {
		return fmt.Errorf("netsim: unknown node %q", b)
	}
	k := key(a, b)
	if _, dup := n.links[k]; dup {
		return fmt.Errorf("netsim: duplicate link %s-%s", a, b)
	}
	n.links[k] = &link{
		latency: latency,
		stats:   map[string]*LinkStats{a: {}, b: {}},
	}
	return nil
}

// Linked reports whether a and b share a link.
func (n *Network) Linked(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.links[key(a, b)]
	return ok
}

// Stats returns the traffic counters for the a→b direction.
func (n *Network) Stats(from, to string) LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[key(from, to)]
	if !ok {
		return LinkStats{}
	}
	return *l.stats[from]
}

// Send implements Transport: it enqueues a delivery across the link.
// Sends from an intercepted node are captured instead. Sends over missing
// links are dropped (like an unplugged cable), keeping exploration safe.
func (n *Network) Send(from, to string, data []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if sink, ok := n.intercept[from]; ok {
		sink.capture(from, to, data)
		return
	}
	l, ok := n.links[key(from, to)]
	if !ok {
		return
	}
	st := l.stats[from]
	st.Messages++
	st.Bytes += uint64(len(data))
	cp := make([]byte, len(data))
	copy(cp, data)
	n.seq++
	heap.Push(&n.queue, &event{
		at:   n.now.Add(l.latency),
		seq:  n.seq,
		from: from,
		to:   to,
		data: cp,
	})
}

// Intercept diverts all future sends from node into the returned sink —
// the live-system isolation switch.
func (n *Network) Intercept(node string) *CaptureSink {
	n.mu.Lock()
	defer n.mu.Unlock()
	sink := NewCaptureSink()
	n.intercept[node] = sink
	return sink
}

// Release removes an interception.
func (n *Network) Release(node string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.intercept, node)
}

// Step delivers the next queued event, advancing the virtual clock.
// It returns false when the queue is empty.
func (n *Network) Step() bool {
	n.mu.Lock()
	if len(n.queue) == 0 {
		n.mu.Unlock()
		return false
	}
	e := heap.Pop(&n.queue).(*event)
	if e.at.After(n.now) {
		n.now = e.at
	}
	r, ok := n.nodes[e.to]
	now := n.now
	n.Delivered++
	n.mu.Unlock()

	if ok {
		r.Deliver(now, e.from, e.data)
	}
	return true
}

// Run processes events until the queue drains or limit deliveries occur
// (limit <= 0 means no limit). It returns the number of deliveries.
func (n *Network) Run(limit int) int {
	count := 0
	for limit <= 0 || count < limit {
		if !n.Step() {
			break
		}
		count++
	}
	return count
}

// RunUntil processes events with timestamps <= deadline, then advances the
// clock to the deadline.
func (n *Network) RunUntil(deadline time.Time) int {
	count := 0
	for {
		n.mu.Lock()
		if len(n.queue) == 0 || n.queue[0].at.After(deadline) {
			if deadline.After(n.now) {
				n.now = deadline
			}
			n.mu.Unlock()
			return count
		}
		n.mu.Unlock()
		if !n.Step() {
			return count
		}
		count++
	}
}

// Advance moves the virtual clock forward without delivering anything
// (for timer-driven protocol ticks).
func (n *Network) Advance(d time.Duration) time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.now = n.now.Add(d)
	return n.now
}

// Pending returns the number of queued deliveries.
func (n *Network) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// CapturedMessage is one message diverted during exploration.
type CapturedMessage struct {
	From, To string
	Data     []byte
}

// CaptureSink collects messages that exploration clones (or intercepted
// live nodes) attempt to send. It implements Transport so a cloned router
// can be wired to it transparently.
type CaptureSink struct {
	mu   sync.Mutex
	msgs []CapturedMessage
}

// NewCaptureSink creates an empty sink.
func NewCaptureSink() *CaptureSink {
	return &CaptureSink{}
}

// Send implements Transport by capturing.
func (s *CaptureSink) Send(from, to string, data []byte) {
	s.capture(from, to, data)
}

func (s *CaptureSink) capture(from, to string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.msgs = append(s.msgs, CapturedMessage{From: from, To: to, Data: cp})
	s.mu.Unlock()
}

// Messages returns a snapshot of captured messages.
func (s *CaptureSink) Messages() []CapturedMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]CapturedMessage(nil), s.msgs...)
}

// Count returns the number of captured messages.
func (s *CaptureSink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

// Reset clears the sink.
func (s *CaptureSink) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = nil
}
