package filter

import (
	"testing"

	"dice/internal/bgp"
	"dice/internal/concolic"
)

// TestSymbolicCommunityExplorable: with the SymCommunity slot set, a
// community-conditioned clause becomes a negatable branch — exploration
// must discover both the rejecting (community present) and accepting
// (absent) paths from a seed that carries no community.
func TestSymbolicCommunityExplorable(t *testing.T) {
	f, err := Parse(`filter no_export_out {
		if community (65535,65281) then reject;
		accept;
	}`)
	if err != nil {
		t.Fatal(err)
	}

	handler := func(rc *concolic.RunContext) any {
		subj := &Subject{SymCommunity: rc.Input("community")}
		v := Run(f, subj, rc)
		return v.Disposition == Accept
	}
	eng := concolic.NewEngine(handler, concolic.Options{})
	eng.Var("community", 32, 0) // seed: no community

	rep := eng.Explore()
	if len(rep.Paths) != 2 {
		t.Fatalf("explored %d paths, want 2 (community set / unset)", len(rep.Paths))
	}
	sawReject := false
	for _, p := range rep.Paths {
		accepted := p.Output.(bool)
		carried := uint32(p.Env[0]) == bgp.CommunityNoExport
		if carried && accepted {
			t.Errorf("env %v: NO_EXPORT carried but filter accepted", p.Env)
		}
		if carried {
			sawReject = true
		}
	}
	if !sawReject {
		t.Error("exploration never steered the community slot onto NO_EXPORT")
	}
}

// TestSymbolicCommunityConcreteHit: a concrete membership hit must stay
// constraint-free even when the symbolic slot is present.
func TestSymbolicCommunityConcreteHit(t *testing.T) {
	f, err := Parse(`filter x {
		if community (65001,7) then accept;
		reject;
	}`)
	if err != nil {
		t.Fatal(err)
	}
	handler := func(rc *concolic.RunContext) any {
		subj := &Subject{
			Communities:  []uint32{bgp.MakeCommunity(65001, 7)},
			SymCommunity: rc.Input("community"),
		}
		return Run(f, subj, rc).Disposition == Accept
	}
	eng := concolic.NewEngine(handler, concolic.Options{})
	eng.Var("community", 32, 0)
	rep := eng.Explore()
	if len(rep.Paths) != 1 {
		t.Fatalf("explored %d paths, want 1 (concrete hit records no branch)", len(rep.Paths))
	}
	if !rep.Paths[0].Output.(bool) {
		t.Error("concrete community hit did not accept")
	}
}
