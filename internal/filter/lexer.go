// Package filter implements a BIRD-inspired routing policy language: a
// lexer, a recursive-descent parser and an interpreter.
//
// The interpreter is the piece that makes DiCE's "code × configuration"
// exploration work: it evaluates filter programs over concolic values
// (concolic.Value), reporting every `if` condition through a Brancher.
// When the Brancher is a concolic RunContext, the constraints of the
// *interpreted configuration* are recorded exactly like constraints of
// compiled-in code — mirroring how the paper's CIL instrumentation of
// BIRD's config interpreter lets Oasis record constraints for the
// interpreted configuration (§3.2).
//
// The token machinery (TokenKind, Token, Lex, ParseError) is exported:
// internal/prop parses the property language over the same tokens, so
// both languages share comments, CIDR literals, operators and
// line-numbered errors.
package filter

import (
	"fmt"
	"strings"
)

// TokenKind enumerates token kinds.
type TokenKind int

// Token kinds produced by Lex.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString // "..." (property language only; filters never emit one)
	TokCIDR   // 10.0.0.0/8
	TokLBrace // {
	TokRBrace // }
	TokLParen // (
	TokRParen // )
	TokSemi   // ;
	TokComma  // ,
	TokEq     // =
	TokNe     // !=
	TokLt     // <
	TokLe     // <=
	TokGt     // >
	TokGe     // >=
	TokTilde  // ~
	TokNot    // !
	TokAnd    // &&
	TokOr     // ||
	TokDot    // .
)

// Token is one lexed token. Text of a TokString is the unquoted string
// content.
type Token struct {
	Kind TokenKind
	Text string
	Line int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// ParseError reports a syntax error with its line. Lang names the
// language for the error prefix; empty reads as "filter" (internal/prop
// sets "property").
type ParseError struct {
	Line int
	Msg  string
	Lang string
}

func (e *ParseError) Error() string {
	lang := e.Lang
	if lang == "" {
		lang = "filter"
	}
	return fmt.Sprintf("%s: line %d: %s", lang, e.Line, e.Msg)
}

// Lex tokenizes src. CIDR literals (addr/len) are recognized as single
// tokens so parsers stay simple; double-quoted strings become TokString
// tokens (used by the property language).
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#': // comment to end of line
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '{':
			toks = append(toks, Token{TokLBrace, "{", line})
			i++
		case c == '}':
			toks = append(toks, Token{TokRBrace, "}", line})
			i++
		case c == '(':
			toks = append(toks, Token{TokLParen, "(", line})
			i++
		case c == ')':
			toks = append(toks, Token{TokRParen, ")", line})
			i++
		case c == ';':
			toks = append(toks, Token{TokSemi, ";", line})
			i++
		case c == ',':
			toks = append(toks, Token{TokComma, ",", line})
			i++
		case c == '~':
			toks = append(toks, Token{TokTilde, "~", line})
			i++
		case c == '=':
			toks = append(toks, Token{TokEq, "=", line})
			i++
		case c == '"':
			j := i + 1
			for j < n && src[j] != '"' && src[j] != '\n' {
				j++
			}
			if j >= n || src[j] != '"' {
				return nil, &ParseError{Line: line, Msg: "unterminated string"}
			}
			toks = append(toks, Token{TokString, src[i+1 : j], line})
			i = j + 1
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, Token{TokNe, "!=", line})
				i += 2
			} else {
				toks = append(toks, Token{TokNot, "!", line})
				i++
			}
		case c == '<':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, Token{TokLe, "<=", line})
				i += 2
			} else {
				toks = append(toks, Token{TokLt, "<", line})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, Token{TokGe, ">=", line})
				i += 2
			} else {
				toks = append(toks, Token{TokGt, ">", line})
				i++
			}
		case c == '&':
			if i+1 < n && src[i+1] == '&' {
				toks = append(toks, Token{TokAnd, "&&", line})
				i += 2
			} else {
				return nil, &ParseError{Line: line, Msg: "single '&'"}
			}
		case c == '|':
			if i+1 < n && src[i+1] == '|' {
				toks = append(toks, Token{TokOr, "||", line})
				i += 2
			} else {
				return nil, &ParseError{Line: line, Msg: "single '|'"}
			}
		case c >= '0' && c <= '9':
			j := i
			dots := 0
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				if src[j] == '.' {
					dots++
				}
				j++
			}
			text := src[i:j]
			// A dotted quad followed by /len is a CIDR literal.
			if dots == 3 && j < n && src[j] == '/' {
				k := j + 1
				for k < n && src[k] >= '0' && src[k] <= '9' {
					k++
				}
				toks = append(toks, Token{TokCIDR, src[i:k], line})
				i = k
				break
			}
			if dots > 0 {
				return nil, &ParseError{Line: line, Msg: fmt.Sprintf("bad numeric token %q", text)}
			}
			toks = append(toks, Token{TokNumber, text, line})
			i = j
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i
			for j < n && (src[j] == '_' || src[j] == '.' ||
				src[j] >= 'a' && src[j] <= 'z' || src[j] >= 'A' && src[j] <= 'Z' ||
				src[j] >= '0' && src[j] <= '9') {
				j++
			}
			// Trim a trailing dot (e.g. "net." would be malformed anyway).
			text := src[i:j]
			if strings.HasSuffix(text, ".") {
				return nil, &ParseError{Line: line, Msg: fmt.Sprintf("identifier %q ends with dot", text)}
			}
			toks = append(toks, Token{TokIdent, text, line})
			i = j
		default:
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, Token{TokEOF, "", line})
	return toks, nil
}
