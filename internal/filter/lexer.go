// Package filter implements a BIRD-inspired routing policy language: a
// lexer, a recursive-descent parser and an interpreter.
//
// The interpreter is the piece that makes DiCE's "code × configuration"
// exploration work: it evaluates filter programs over concolic values
// (concolic.Value), reporting every `if` condition through a Brancher.
// When the Brancher is a concolic RunContext, the constraints of the
// *interpreted configuration* are recorded exactly like constraints of
// compiled-in code — mirroring how the paper's CIL instrumentation of
// BIRD's config interpreter lets Oasis record constraints for the
// interpreted configuration (§3.2).
package filter

import (
	"fmt"
	"strings"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokCIDR   // 10.0.0.0/8
	tokLBrace // {
	tokRBrace // }
	tokLParen // (
	tokRParen // )
	tokSemi   // ;
	tokComma  // ,
	tokEq     // =
	tokNe     // !=
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
	tokTilde  // ~
	tokNot    // !
	tokAnd    // &&
	tokOr     // ||
	tokDot    // .
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// ParseError reports a syntax error with its line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("filter: line %d: %s", e.Line, e.Msg)
}

// lex tokenizes src. CIDR literals (addr/len) are recognized as single
// tokens so the parser stays simple.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#': // comment to end of line
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", line})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", line})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", line})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", line})
			i++
		case c == ';':
			toks = append(toks, token{tokSemi, ";", line})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", line})
			i++
		case c == '~':
			toks = append(toks, token{tokTilde, "~", line})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", line})
			i++
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokNe, "!=", line})
				i += 2
			} else {
				toks = append(toks, token{tokNot, "!", line})
				i++
			}
		case c == '<':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokLe, "<=", line})
				i += 2
			} else {
				toks = append(toks, token{tokLt, "<", line})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokGe, ">=", line})
				i += 2
			} else {
				toks = append(toks, token{tokGt, ">", line})
				i++
			}
		case c == '&':
			if i+1 < n && src[i+1] == '&' {
				toks = append(toks, token{tokAnd, "&&", line})
				i += 2
			} else {
				return nil, &ParseError{line, "single '&'"}
			}
		case c == '|':
			if i+1 < n && src[i+1] == '|' {
				toks = append(toks, token{tokOr, "||", line})
				i += 2
			} else {
				return nil, &ParseError{line, "single '|'"}
			}
		case c >= '0' && c <= '9':
			j := i
			dots := 0
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				if src[j] == '.' {
					dots++
				}
				j++
			}
			text := src[i:j]
			// A dotted quad followed by /len is a CIDR literal.
			if dots == 3 && j < n && src[j] == '/' {
				k := j + 1
				for k < n && src[k] >= '0' && src[k] <= '9' {
					k++
				}
				toks = append(toks, token{tokCIDR, src[i:k], line})
				i = k
				break
			}
			if dots > 0 {
				return nil, &ParseError{line, fmt.Sprintf("bad numeric token %q", text)}
			}
			toks = append(toks, token{tokNumber, text, line})
			i = j
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i
			for j < n && (src[j] == '_' || src[j] == '.' ||
				src[j] >= 'a' && src[j] <= 'z' || src[j] >= 'A' && src[j] <= 'Z' ||
				src[j] >= '0' && src[j] <= '9') {
				j++
			}
			// Trim a trailing dot (e.g. "net." would be malformed anyway).
			text := src[i:j]
			if strings.HasSuffix(text, ".") {
				return nil, &ParseError{line, fmt.Sprintf("identifier %q ends with dot", text)}
			}
			toks = append(toks, token{tokIdent, text, line})
			i = j
		default:
			return nil, &ParseError{line, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}
