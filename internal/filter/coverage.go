package filter

import (
	"fmt"
	"sort"
	"sync"

	"dice/internal/bgp"
)

// Coverage accumulates, across many filter evaluations, how often each
// `if` site's condition evaluated true and false. DiCE exploration drives
// evaluations down every feasible path, so after exploration the coverage
// table exposes configuration defects: conditions that can never be true
// (dead accept/reject clauses) or never false (redundant guards).
// Safe for concurrent use (exploration may run parallel workers).
type Coverage struct {
	mu    sync.Mutex
	sites map[string]*SiteCount
	order []string
}

// SiteCount is the outcome tally of one `if` site.
type SiteCount struct {
	Site  string // structural position, e.g. "2" or "2.then.0"
	Cond  string // the condition's source form
	True  int
	False int
}

// NewCoverage creates an empty coverage table.
func NewCoverage() *Coverage {
	return &Coverage{sites: make(map[string]*SiteCount)}
}

func (c *Coverage) record(site, cond string, taken bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sc, ok := c.sites[site]
	if !ok {
		sc = &SiteCount{Site: site, Cond: cond}
		c.sites[site] = sc
		c.order = append(c.order, site)
	}
	if taken {
		sc.True++
	} else {
		sc.False++
	}
}

// Sites returns the tallies in structural order.
func (c *Coverage) Sites() []SiteCount {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := append([]string(nil), c.order...)
	sort.Strings(keys)
	out := make([]SiteCount, 0, len(keys))
	for _, k := range keys {
		out = append(out, *c.sites[k])
	}
	return out
}

// Dead returns the sites that never took one of their directions across
// all recorded evaluations: cond never true means the guarded clause is
// dead; never false means the guard is redundant on every explored path.
func (c *Coverage) Dead() []SiteCount {
	var out []SiteCount
	for _, sc := range c.Sites() {
		if sc.True == 0 || sc.False == 0 {
			out = append(out, sc)
		}
	}
	return out
}

// RunWithCoverage evaluates the filter like Run while tallying each `if`
// site's outcome into cov (which may be shared across runs).
func RunWithCoverage(f *Filter, subj *Subject, br Brancher, cov *Coverage) Verdict {
	v := Verdict{Disposition: Reject}
	runStmtsCov(f.Stmts, subj, br, &v, cov, "")
	return v
}

// runStmtsCov mirrors runStmts with per-site accounting.
func runStmtsCov(stmts []Stmt, subj *Subject, br Brancher, v *Verdict, cov *Coverage, prefix string) bool {
	for i, s := range stmts {
		switch st := s.(type) {
		case *ActionStmt:
			v.Disposition = st.Disposition
			return true
		case *SetStmt:
			switch st.Field {
			case FieldLocalPref:
				val := uint32(st.Value)
				v.SetLocalPref = &val
			case FieldMED:
				val := uint32(st.Value)
				v.SetMED = &val
			case FieldOrigin:
				val := uint8(st.Value)
				v.SetOrigin = &val
			}
		case *AddCommunityStmt:
			v.AddCommunities = append(v.AddCommunities, bgp.MakeCommunity(st.AS, st.Value))
		case *IfStmt:
			site := fmt.Sprintf("%s%d", prefix, i)
			cond := evalExpr(st.Cond, subj)
			v.BranchesTaken++
			taken := br.Branch(cond)
			cov.record(site, st.Cond.String(), taken)
			if taken {
				if runStmtsCov(st.Then, subj, br, v, cov, site+".then.") {
					return true
				}
			} else if len(st.Else) > 0 {
				if runStmtsCov(st.Else, subj, br, v, cov, site+".else.") {
					return true
				}
			}
		}
	}
	return false
}
