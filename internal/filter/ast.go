package filter

import (
	"fmt"
	"strings"

	"dice/internal/netaddr"
)

// Field names the route properties a filter can test or set.
type Field int

// Fields available in filter programs.
const (
	FieldNet       Field = iota // net            — the NLRI prefix (address part)
	FieldNetLen                 // net.len        — the NLRI prefix length
	FieldPathLen                // bgp_path.len   — AS path length
	FieldOriginAS               // bgp_path.origin— originating AS (rightmost)
	FieldFirstAS                // bgp_path.first — neighboring AS (leftmost)
	FieldOrigin                 // origin         — ORIGIN attribute (igp/egp/incomplete)
	FieldLocalPref              // local_pref
	FieldMED                    // med
)

var fieldNames = map[string]Field{
	"net":             FieldNet,
	"net.len":         FieldNetLen,
	"bgp_path.len":    FieldPathLen,
	"bgp_path.origin": FieldOriginAS,
	"bgp_path.first":  FieldFirstAS,
	"origin":          FieldOrigin,
	"local_pref":      FieldLocalPref,
	"med":             FieldMED,
}

// FieldByName resolves a source-level field name ("net.len", "med", ...)
// to its Field. The property language (internal/prop) shares the filter
// field vocabulary through this lookup.
func FieldByName(name string) (Field, bool) {
	f, ok := fieldNames[name]
	return f, ok
}

func (f Field) String() string {
	for name, v := range fieldNames {
		if v == f {
			return name
		}
	}
	return fmt.Sprintf("field(%d)", int(f))
}

// CmpKind is a comparison operator in the filter language.
type CmpKind int

// Comparison operators.
const (
	CmpEq CmpKind = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

var cmpNames = [...]string{"=", "!=", "<", "<=", ">", ">="}

func (c CmpKind) String() string { return cmpNames[c] }

// Expr is a boolean filter expression.
type Expr interface {
	exprNode()
	String() string
}

// CmpExpr compares a numeric field with a constant.
type CmpExpr struct {
	Field Field
	Op    CmpKind
	Value uint64
}

func (*CmpExpr) exprNode() {}
func (e *CmpExpr) String() string {
	return fmt.Sprintf("%s %s %d", e.Field, e.Op, e.Value)
}

// MatchExpr tests `net ~ prefix{lo,hi}`: the route's prefix lies inside
// Prefix and its length is within [LoLen, HiLen]. A bare prefix literal
// means {bits, 32} (any more-specific route, BIRD's subnet match).
type MatchExpr struct {
	Prefix netaddr.Prefix
	LoLen  int
	HiLen  int
}

func (*MatchExpr) exprNode() {}
func (e *MatchExpr) String() string {
	return fmt.Sprintf("net ~ %s{%d,%d}", e.Prefix, e.LoLen, e.HiLen)
}

// CommunityExpr tests membership of a community value.
type CommunityExpr struct {
	AS    uint16
	Value uint16
}

func (*CommunityExpr) exprNode() {}
func (e *CommunityExpr) String() string {
	return fmt.Sprintf("community (%d,%d)", e.AS, e.Value)
}

// BoolLit is a literal true/false.
type BoolLit bool

func (BoolLit) exprNode() {}
func (b BoolLit) String() string {
	if bool(b) {
		return "true"
	}
	return "false"
}

// NotExpr negates an expression.
type NotExpr struct{ X Expr }

func (*NotExpr) exprNode()        {}
func (e *NotExpr) String() string { return "! " + e.X.String() }

// AndExpr is conjunction.
type AndExpr struct{ X, Y Expr }

func (*AndExpr) exprNode()        {}
func (e *AndExpr) String() string { return "(" + e.X.String() + " && " + e.Y.String() + ")" }

// OrExpr is disjunction.
type OrExpr struct{ X, Y Expr }

func (*OrExpr) exprNode()        {}
func (e *OrExpr) String() string { return "(" + e.X.String() + " || " + e.Y.String() + ")" }

// Stmt is a filter statement.
type Stmt interface {
	stmtNode()
	String() string
}

// Disposition is the terminal action of a filter run.
type Disposition int

// Dispositions.
const (
	// Reject drops the route (also the default when a filter falls off
	// the end, matching BIRD).
	Reject Disposition = iota
	// Accept lets the route through with any modifications applied.
	Accept
)

func (d Disposition) String() string {
	if d == Accept {
		return "accept"
	}
	return "reject"
}

// ActionStmt is `accept;` or `reject;`.
type ActionStmt struct{ Disposition Disposition }

func (*ActionStmt) stmtNode()        {}
func (s *ActionStmt) String() string { return s.Disposition.String() + ";" }

// IfStmt is `if expr then { ... } [else { ... }]`.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (*IfStmt) stmtNode() {}
func (s *IfStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "if %s then { ", s.Cond)
	for _, st := range s.Then {
		b.WriteString(st.String())
		b.WriteByte(' ')
	}
	b.WriteByte('}')
	if len(s.Else) > 0 {
		b.WriteString(" else { ")
		for _, st := range s.Else {
			b.WriteString(st.String())
			b.WriteByte(' ')
		}
		b.WriteByte('}')
	}
	return b.String()
}

// SetStmt is `set field value;` for local_pref, med and origin.
type SetStmt struct {
	Field Field
	Value uint64
}

func (*SetStmt) stmtNode()        {}
func (s *SetStmt) String() string { return fmt.Sprintf("set %s %d;", s.Field, s.Value) }

// AddCommunityStmt is `add community (as, value);`.
type AddCommunityStmt struct {
	AS    uint16
	Value uint16
}

func (*AddCommunityStmt) stmtNode() {}
func (s *AddCommunityStmt) String() string {
	return fmt.Sprintf("add community (%d,%d);", s.AS, s.Value)
}

// Filter is a named, parsed filter program.
type Filter struct {
	Name  string
	Stmts []Stmt
}

// String reconstructs approximate source for debugging.
func (f *Filter) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "filter %s { ", f.Name)
	for _, s := range f.Stmts {
		b.WriteString(s.String())
		b.WriteByte(' ')
	}
	b.WriteByte('}')
	return b.String()
}

// AcceptAll is the identity filter (used when a peer has no policy).
var AcceptAll = &Filter{Name: "accept-all", Stmts: []Stmt{&ActionStmt{Disposition: Accept}}}

// RejectAll drops everything.
var RejectAll = &Filter{Name: "reject-all", Stmts: []Stmt{&ActionStmt{Disposition: Reject}}}
