package filter

import (
	"strings"
	"testing"

	"dice/internal/bgp"
)

// mustPanic runs fn and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want panic containing %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want message containing %q", r, want)
		}
	}()
	fn()
}

// bogusExpr stands in for an AST node added after the evaluator was
// written — the drift case the default panic guards against.
type bogusExpr struct{}

func (bogusExpr) exprNode()      {}
func (bogusExpr) String() string { return "bogus" }

// TestUnknownFieldPanics pins the satellite bugfix: a Field value the
// evaluator does not know must fail loudly, never read as Concrete(0, 32)
// (which would make `future_field = 0` silently hold on every route).
func TestUnknownFieldPanics(t *testing.T) {
	s := subj("10.0.0.0/24", 65001)
	future := Field(len(fieldNames) + 7)
	mustPanic(t, "unhandled field", func() {
		fieldValue(future, s)
	})
	// The same drift reached through a full expression evaluation.
	mustPanic(t, "unhandled field", func() {
		evalExpr(&CmpExpr{Field: future, Op: CmpEq, Value: 0}, s)
	})
}

// TestUnknownExprPanics pins the companion fix: an expression node without
// an evaluator case must not evaluate as false.
func TestUnknownExprPanics(t *testing.T) {
	s := subj("10.0.0.0/24", 65001)
	mustPanic(t, "unhandled expression node", func() {
		evalExpr(bogusExpr{}, s)
	})
}

// TestUnknownCmpOpPanics covers the inner operator switch, which used to
// fall through to the same silent Bool(false).
func TestUnknownCmpOpPanics(t *testing.T) {
	s := subj("10.0.0.0/24", 65001)
	mustPanic(t, "unhandled comparison operator", func() {
		evalExpr(&CmpExpr{Field: FieldMED, Op: CmpKind(42), Value: 1}, s)
	})
}

// TestApplySetterCombinations exercises every combination of the three
// attribute setters with zero values: after Apply, exactly the attributes
// that were set must report Has*, so `set origin 0` (igp) is
// distinguishable from "origin never set".
func TestApplySetterCombinations(t *testing.T) {
	zero32 := uint32(0)
	zero8 := uint8(0)
	for mask := 0; mask < 8; mask++ {
		setLP := mask&1 != 0
		setMED := mask&2 != 0
		setOrigin := mask&4 != 0
		v := Verdict{Disposition: Accept}
		if setLP {
			v.SetLocalPref = &zero32
		}
		if setMED {
			v.SetMED = &zero32
		}
		if setOrigin {
			v.SetOrigin = &zero8
		}
		var attrs bgp.Attrs
		v.Apply(&attrs)
		if attrs.HasLocalPref != setLP || attrs.LocalPref != 0 {
			t.Errorf("mask %03b: HasLocalPref=%v LocalPref=%d, want set=%v value=0",
				mask, attrs.HasLocalPref, attrs.LocalPref, setLP)
		}
		if attrs.HasMED != setMED || attrs.MED != 0 {
			t.Errorf("mask %03b: HasMED=%v MED=%d, want set=%v value=0",
				mask, attrs.HasMED, attrs.MED, setMED)
		}
		if attrs.HasOrigin != setOrigin || attrs.Origin != 0 {
			t.Errorf("mask %03b: HasOrigin=%v Origin=%d, want set=%v value=0",
				mask, attrs.HasOrigin, attrs.Origin, setOrigin)
		}
	}
}
