package filter

import (
	"fmt"
	"strconv"

	"dice/internal/netaddr"
)

// Parse parses one `filter name { ... }` definition.
func Parse(src string) (*Filter, error) {
	fs, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(fs) != 1 {
		return nil, &ParseError{Line: 1, Msg: fmt.Sprintf("expected exactly one filter, found %d", len(fs))}
	}
	return fs[0], nil
}

// ParseAll parses a sequence of filter definitions.
func ParseAll(src string) ([]*Filter, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []*Filter
	for p.peek().Kind != TokEOF {
		f, err := p.filter()
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.peek().Line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k TokenKind, what string) (Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, p.errf("expected %s, found %s", what, t)
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.Kind != TokIdent || t.Text != kw {
		return p.errf("expected %q, found %s", kw, t)
	}
	p.next()
	return nil
}

// filter := "filter" IDENT "{" stmt* "}"
func (p *parser) filter() (*Filter, error) {
	if err := p.expectKeyword("filter"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "filter name")
	if err != nil {
		return nil, err
	}
	stmts, err := p.block()
	if err != nil {
		return nil, err
	}
	return &Filter{Name: name.Text, Stmts: stmts}, nil
}

// block := "{" stmt* "}"
func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.peek().Kind != TokRBrace {
		if p.peek().Kind == TokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // consume }
	return stmts, nil
}

// stmt := "accept" ";" | "reject" ";" | "if" ... | "set" ... | "add" ...
func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return nil, p.errf("expected statement, found %s", t)
	}
	switch t.Text {
	case "accept":
		p.next()
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &ActionStmt{Disposition: Accept}, nil
	case "reject":
		p.next()
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &ActionStmt{Disposition: Reject}, nil
	case "if":
		return p.ifStmt()
	case "set":
		return p.setStmt()
	case "add":
		return p.addStmt()
	}
	return nil, p.errf("unknown statement %q", t.Text)
}

// ifStmt := "if" expr "then" (block | stmt) ("else" (block | stmt))?
func (p *parser) ifStmt() (Stmt, error) {
	p.next() // if
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	thenStmts, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	var elseStmts []Stmt
	if p.peek().Kind == TokIdent && p.peek().Text == "else" {
		p.next()
		elseStmts, err = p.blockOrStmt()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Cond: cond, Then: thenStmts, Else: elseStmts}, nil
}

func (p *parser) blockOrStmt() ([]Stmt, error) {
	if p.peek().Kind == TokLBrace {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

// setStmt := "set" field (number | originName) ";"
func (p *parser) setStmt() (Stmt, error) {
	p.next() // set
	ft, err := p.expect(TokIdent, "field name")
	if err != nil {
		return nil, err
	}
	field, ok := fieldNames[ft.Text]
	if !ok {
		return nil, p.errf("unknown field %q", ft.Text)
	}
	switch field {
	case FieldLocalPref, FieldMED:
		v, err := p.number(32)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &SetStmt{Field: field, Value: v}, nil
	case FieldOrigin:
		t := p.peek()
		var v uint64
		switch {
		case t.Kind == TokIdent && t.Text == "igp":
			v = 0
		case t.Kind == TokIdent && t.Text == "egp":
			v = 1
		case t.Kind == TokIdent && t.Text == "incomplete":
			v = 2
		case t.Kind == TokNumber:
			n, err := p.number(8)
			if err != nil {
				return nil, err
			}
			if n > 2 {
				return nil, p.errf("origin value %d out of range", n)
			}
			v = n
			if _, err := p.expect(TokSemi, "';'"); err != nil {
				return nil, err
			}
			return &SetStmt{Field: field, Value: v}, nil
		default:
			return nil, p.errf("expected origin value, found %s", t)
		}
		p.next()
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &SetStmt{Field: field, Value: v}, nil
	default:
		return nil, p.errf("field %q cannot be set", ft.Text)
	}
}

// addStmt := "add" "community" "(" number "," number ")" ";"
func (p *parser) addStmt() (Stmt, error) {
	p.next() // add
	if err := p.expectKeyword("community"); err != nil {
		return nil, err
	}
	as, val, err := p.communityPair()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi, "';'"); err != nil {
		return nil, err
	}
	return &AddCommunityStmt{AS: as, Value: val}, nil
}

func (p *parser) communityPair() (uint16, uint16, error) {
	if _, err := p.expect(TokLParen, "'('"); err != nil {
		return 0, 0, err
	}
	as, err := p.number(16)
	if err != nil {
		return 0, 0, err
	}
	if _, err := p.expect(TokComma, "','"); err != nil {
		return 0, 0, err
	}
	val, err := p.number(16)
	if err != nil {
		return 0, 0, err
	}
	if _, err := p.expect(TokRParen, "')'"); err != nil {
		return 0, 0, err
	}
	return uint16(as), uint16(val), nil
}

func (p *parser) number(bits int) (uint64, error) {
	t, err := p.expect(TokNumber, "number")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(t.Text, 10, bits)
	if err != nil {
		return 0, &ParseError{Line: t.Line, Msg: fmt.Sprintf("bad number %q: %v", t.Text, err)}
	}
	return v, nil
}

// expr := andExpr ("||" andExpr)*
func (p *parser) expr() (Expr, error) {
	x, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokOr {
		p.next()
		y, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		x = &OrExpr{X: x, Y: y}
	}
	return x, nil
}

// andExpr := unary ("&&" unary)*
func (p *parser) andExpr() (Expr, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokAnd {
		p.next()
		y, err := p.unary()
		if err != nil {
			return nil, err
		}
		x = &AndExpr{X: x, Y: y}
	}
	return x, nil
}

// unary := "!" unary | primary
func (p *parser) unary() (Expr, error) {
	if p.peek().Kind == TokNot {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	}
	return p.primary()
}

// primary := "(" expr ")" | "true" | "false"
//
//	| "community" "(" n "," n ")"
//	| field cmpOp number
//	| "net" "~" CIDR ("{" n "," n "}")?
func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokLParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		return x, nil
	case t.Kind == TokIdent && t.Text == "true":
		p.next()
		return BoolLit(true), nil
	case t.Kind == TokIdent && t.Text == "false":
		p.next()
		return BoolLit(false), nil
	case t.Kind == TokIdent && t.Text == "community":
		p.next()
		as, val, err := p.communityPair()
		if err != nil {
			return nil, err
		}
		return &CommunityExpr{AS: as, Value: val}, nil
	case t.Kind == TokIdent:
		field, ok := fieldNames[t.Text]
		if !ok {
			return nil, p.errf("unknown field %q", t.Text)
		}
		p.next()
		op := p.peek()
		if field == FieldNet {
			if op.Kind != TokTilde {
				return nil, p.errf("net supports only '~', found %s", op)
			}
			p.next()
			return p.matchExpr()
		}
		var cmp CmpKind
		switch op.Kind {
		case TokEq:
			cmp = CmpEq
		case TokNe:
			cmp = CmpNe
		case TokLt:
			cmp = CmpLt
		case TokLe:
			cmp = CmpLe
		case TokGt:
			cmp = CmpGt
		case TokGe:
			cmp = CmpGe
		default:
			return nil, p.errf("expected comparison operator, found %s", op)
		}
		p.next()
		// Origin comparisons accept symbolic names.
		if field == FieldOrigin && p.peek().Kind == TokIdent {
			name := p.next().Text
			var v uint64
			switch name {
			case "igp":
				v = 0
			case "egp":
				v = 1
			case "incomplete":
				v = 2
			default:
				return nil, p.errf("unknown origin %q", name)
			}
			return &CmpExpr{Field: field, Op: cmp, Value: v}, nil
		}
		v, err := p.number(32)
		if err != nil {
			return nil, err
		}
		return &CmpExpr{Field: field, Op: cmp, Value: v}, nil
	}
	return nil, p.errf("expected expression, found %s", t)
}

// matchExpr parses the right side of `net ~`: CIDR with optional {lo,hi}.
func (p *parser) matchExpr() (Expr, error) {
	t, err := p.expect(TokCIDR, "prefix literal")
	if err != nil {
		return nil, err
	}
	pref, perr := netaddr.ParsePrefix(t.Text)
	if perr != nil {
		return nil, &ParseError{Line: t.Line, Msg: perr.Error()}
	}
	lo, hi := pref.Bits(), 32
	if p.peek().Kind == TokLBrace {
		p.next()
		loV, err := p.number(8)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma, "','"); err != nil {
			return nil, err
		}
		hiV, err := p.number(8)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBrace, "'}'"); err != nil {
			return nil, err
		}
		lo, hi = int(loV), int(hiV)
		if lo < pref.Bits() || hi > 32 || lo > hi {
			return nil, p.errf("bad length range {%d,%d} for %s", lo, hi, pref)
		}
	}
	return &MatchExpr{Prefix: pref, LoLen: lo, HiLen: hi}, nil
}
