package filter

import (
	"fmt"
	"strconv"

	"dice/internal/netaddr"
)

// Parse parses one `filter name { ... }` definition.
func Parse(src string) (*Filter, error) {
	fs, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(fs) != 1 {
		return nil, &ParseError{1, fmt.Sprintf("expected exactly one filter, found %d", len(fs))}
	}
	return fs[0], nil
}

// ParseAll parses a sequence of filter definitions.
func ParseAll(src string) ([]*Filter, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []*Filter
	for p.peek().kind != tokEOF {
		f, err := p.filter()
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{p.peek().line, fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, p.errf("expected %s, found %s", what, t)
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokIdent || t.text != kw {
		return p.errf("expected %q, found %s", kw, t)
	}
	p.next()
	return nil
}

// filter := "filter" IDENT "{" stmt* "}"
func (p *parser) filter() (*Filter, error) {
	if err := p.expectKeyword("filter"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "filter name")
	if err != nil {
		return nil, err
	}
	stmts, err := p.block()
	if err != nil {
		return nil, err
	}
	return &Filter{Name: name.text, Stmts: stmts}, nil
}

// block := "{" stmt* "}"
func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.peek().kind != tokRBrace {
		if p.peek().kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // consume }
	return stmts, nil
}

// stmt := "accept" ";" | "reject" ";" | "if" ... | "set" ... | "add" ...
func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errf("expected statement, found %s", t)
	}
	switch t.text {
	case "accept":
		p.next()
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return &ActionStmt{Disposition: Accept}, nil
	case "reject":
		p.next()
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return &ActionStmt{Disposition: Reject}, nil
	case "if":
		return p.ifStmt()
	case "set":
		return p.setStmt()
	case "add":
		return p.addStmt()
	}
	return nil, p.errf("unknown statement %q", t.text)
}

// ifStmt := "if" expr "then" (block | stmt) ("else" (block | stmt))?
func (p *parser) ifStmt() (Stmt, error) {
	p.next() // if
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	thenStmts, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	var elseStmts []Stmt
	if p.peek().kind == tokIdent && p.peek().text == "else" {
		p.next()
		elseStmts, err = p.blockOrStmt()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Cond: cond, Then: thenStmts, Else: elseStmts}, nil
}

func (p *parser) blockOrStmt() ([]Stmt, error) {
	if p.peek().kind == tokLBrace {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

// setStmt := "set" field (number | originName) ";"
func (p *parser) setStmt() (Stmt, error) {
	p.next() // set
	ft, err := p.expect(tokIdent, "field name")
	if err != nil {
		return nil, err
	}
	field, ok := fieldNames[ft.text]
	if !ok {
		return nil, p.errf("unknown field %q", ft.text)
	}
	switch field {
	case FieldLocalPref, FieldMED:
		v, err := p.number(32)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return &SetStmt{Field: field, Value: v}, nil
	case FieldOrigin:
		t := p.peek()
		var v uint64
		switch {
		case t.kind == tokIdent && t.text == "igp":
			v = 0
		case t.kind == tokIdent && t.text == "egp":
			v = 1
		case t.kind == tokIdent && t.text == "incomplete":
			v = 2
		case t.kind == tokNumber:
			n, err := p.number(8)
			if err != nil {
				return nil, err
			}
			if n > 2 {
				return nil, p.errf("origin value %d out of range", n)
			}
			v = n
			if _, err := p.expect(tokSemi, "';'"); err != nil {
				return nil, err
			}
			return &SetStmt{Field: field, Value: v}, nil
		default:
			return nil, p.errf("expected origin value, found %s", t)
		}
		p.next()
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return &SetStmt{Field: field, Value: v}, nil
	default:
		return nil, p.errf("field %q cannot be set", ft.text)
	}
}

// addStmt := "add" "community" "(" number "," number ")" ";"
func (p *parser) addStmt() (Stmt, error) {
	p.next() // add
	if err := p.expectKeyword("community"); err != nil {
		return nil, err
	}
	as, val, err := p.communityPair()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &AddCommunityStmt{AS: as, Value: val}, nil
}

func (p *parser) communityPair() (uint16, uint16, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return 0, 0, err
	}
	as, err := p.number(16)
	if err != nil {
		return 0, 0, err
	}
	if _, err := p.expect(tokComma, "','"); err != nil {
		return 0, 0, err
	}
	val, err := p.number(16)
	if err != nil {
		return 0, 0, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return 0, 0, err
	}
	return uint16(as), uint16(val), nil
}

func (p *parser) number(bits int) (uint64, error) {
	t, err := p.expect(tokNumber, "number")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(t.text, 10, bits)
	if err != nil {
		return 0, &ParseError{t.line, fmt.Sprintf("bad number %q: %v", t.text, err)}
	}
	return v, nil
}

// expr := andExpr ("||" andExpr)*
func (p *parser) expr() (Expr, error) {
	x, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOr {
		p.next()
		y, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		x = &OrExpr{X: x, Y: y}
	}
	return x, nil
}

// andExpr := unary ("&&" unary)*
func (p *parser) andExpr() (Expr, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAnd {
		p.next()
		y, err := p.unary()
		if err != nil {
			return nil, err
		}
		x = &AndExpr{X: x, Y: y}
	}
	return x, nil
}

// unary := "!" unary | primary
func (p *parser) unary() (Expr, error) {
	if p.peek().kind == tokNot {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	}
	return p.primary()
}

// primary := "(" expr ")" | "true" | "false"
//
//	| "community" "(" n "," n ")"
//	| field cmpOp number
//	| "net" "~" CIDR ("{" n "," n "}")?
func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tokIdent && t.text == "true":
		p.next()
		return BoolLit(true), nil
	case t.kind == tokIdent && t.text == "false":
		p.next()
		return BoolLit(false), nil
	case t.kind == tokIdent && t.text == "community":
		p.next()
		as, val, err := p.communityPair()
		if err != nil {
			return nil, err
		}
		return &CommunityExpr{AS: as, Value: val}, nil
	case t.kind == tokIdent:
		field, ok := fieldNames[t.text]
		if !ok {
			return nil, p.errf("unknown field %q", t.text)
		}
		p.next()
		op := p.peek()
		if field == FieldNet {
			if op.kind != tokTilde {
				return nil, p.errf("net supports only '~', found %s", op)
			}
			p.next()
			return p.matchExpr()
		}
		var cmp CmpKind
		switch op.kind {
		case tokEq:
			cmp = CmpEq
		case tokNe:
			cmp = CmpNe
		case tokLt:
			cmp = CmpLt
		case tokLe:
			cmp = CmpLe
		case tokGt:
			cmp = CmpGt
		case tokGe:
			cmp = CmpGe
		default:
			return nil, p.errf("expected comparison operator, found %s", op)
		}
		p.next()
		// Origin comparisons accept symbolic names.
		if field == FieldOrigin && p.peek().kind == tokIdent {
			name := p.next().text
			var v uint64
			switch name {
			case "igp":
				v = 0
			case "egp":
				v = 1
			case "incomplete":
				v = 2
			default:
				return nil, p.errf("unknown origin %q", name)
			}
			return &CmpExpr{Field: field, Op: cmp, Value: v}, nil
		}
		v, err := p.number(32)
		if err != nil {
			return nil, err
		}
		return &CmpExpr{Field: field, Op: cmp, Value: v}, nil
	}
	return nil, p.errf("expected expression, found %s", t)
}

// matchExpr parses the right side of `net ~`: CIDR with optional {lo,hi}.
func (p *parser) matchExpr() (Expr, error) {
	t, err := p.expect(tokCIDR, "prefix literal")
	if err != nil {
		return nil, err
	}
	pref, perr := netaddr.ParsePrefix(t.text)
	if perr != nil {
		return nil, &ParseError{t.line, perr.Error()}
	}
	lo, hi := pref.Bits(), 32
	if p.peek().kind == tokLBrace {
		p.next()
		loV, err := p.number(8)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma, "','"); err != nil {
			return nil, err
		}
		hiV, err := p.number(8)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBrace, "'}'"); err != nil {
			return nil, err
		}
		lo, hi = int(loV), int(hiV)
		if lo < pref.Bits() || hi > 32 || lo > hi {
			return nil, p.errf("bad length range {%d,%d} for %s", lo, hi, pref)
		}
	}
	return &MatchExpr{Prefix: pref, LoLen: lo, HiLen: hi}, nil
}
