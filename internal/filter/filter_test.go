package filter

import (
	"strings"
	"testing"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/netaddr"
)

func mustParse(t *testing.T, src string) *Filter {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return f
}

func subj(prefix string, pathASNs ...uint16) *Subject {
	attrs := &bgp.Attrs{
		HasOrigin:  true,
		Origin:     bgp.OriginIGP,
		ASPath:     bgp.ASPath{{Type: bgp.ASSequence, ASNs: pathASNs}},
		HasNextHop: true,
		NextHop:    netaddr.MustParseAddr("192.0.2.1"),
	}
	return SubjectFromRoute(netaddr.MustParsePrefix(prefix), attrs)
}

func run(t *testing.T, f *Filter, s *Subject) Verdict {
	t.Helper()
	return Run(f, s, ConcreteBrancher{})
}

func TestParseSimple(t *testing.T) {
	f := mustParse(t, `
		filter customer_in {
			# filter comment
			if net ~ 203.0.113.0/24 then accept;
			reject;
		}`)
	if f.Name != "customer_in" || len(f.Stmts) != 2 {
		t.Fatalf("parsed: %s", f)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",                                         // no filter
		"filter x",                                 // no body
		"filter x { accept }",                      // missing semi
		"filter x { if net ~ bad then accept; }",   // bad prefix
		"filter x { if frob = 1 then accept; }",    // unknown field
		"filter x { bogus; }",                      // unknown statement
		"filter x { if net = 1 then accept; }",     // net needs ~
		"filter x { set net 1; }",                  // net not settable
		"filter x { if net.len & 1 then accept; }", // single &
		"filter x { if net ~ 10.0.0.0/8{4,33} then accept; }", // bad range
		"filter x { set origin 9; }",                          // origin out of range
		"filter x { if net ~ 10.0.0.1/8 then accept; }",       // host bits
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestPrefixMatch(t *testing.T) {
	f := mustParse(t, `filter f { if net ~ 10.0.0.0/8 then accept; reject; }`)
	if v := run(t, f, subj("10.1.2.0/24", 65001)); v.Disposition != Accept {
		t.Error("10.1.2.0/24 should match 10/8 subnet")
	}
	if v := run(t, f, subj("10.0.0.0/8", 65001)); v.Disposition != Accept {
		t.Error("exact prefix should match")
	}
	if v := run(t, f, subj("11.0.0.0/8", 65001)); v.Disposition != Reject {
		t.Error("11/8 must not match 10/8")
	}
}

func TestPrefixMatchWithRange(t *testing.T) {
	f := mustParse(t, `filter f { if net ~ 10.0.0.0/8{16,24} then accept; reject; }`)
	cases := map[string]Disposition{
		"10.1.0.0/16":   Accept,
		"10.1.2.0/24":   Accept,
		"10.0.0.0/8":    Reject, // too short
		"10.1.2.128/25": Reject, // too long
		"11.0.0.0/16":   Reject, // outside
	}
	for p, want := range cases {
		if v := run(t, f, subj(p, 65001)); v.Disposition != want {
			t.Errorf("%s: got %v, want %v", p, v.Disposition, want)
		}
	}
}

func TestNumericFields(t *testing.T) {
	f := mustParse(t, `
		filter f {
			if net.len > 24 then reject;
			if bgp_path.len > 3 then reject;
			if bgp_path.origin = 64999 then reject;
			accept;
		}`)
	if v := run(t, f, subj("10.0.0.0/25", 65001)); v.Disposition != Reject {
		t.Error("/25 should be rejected")
	}
	if v := run(t, f, subj("10.0.0.0/24", 65001, 65002, 65003, 65004)); v.Disposition != Reject {
		t.Error("long path should be rejected")
	}
	if v := run(t, f, subj("10.0.0.0/24", 65001, 64999)); v.Disposition != Reject {
		t.Error("blacklisted origin AS should be rejected")
	}
	if v := run(t, f, subj("10.0.0.0/24", 65001)); v.Disposition != Accept {
		t.Error("clean route should be accepted")
	}
}

func TestDefaultIsReject(t *testing.T) {
	f := mustParse(t, `filter f { if net.len = 0 then accept; }`)
	if v := run(t, f, subj("10.0.0.0/8", 65001)); v.Disposition != Reject {
		t.Error("falling off the end should reject")
	}
}

func TestBooleanOperators(t *testing.T) {
	f := mustParse(t, `
		filter f {
			if net ~ 10.0.0.0/8 && net.len <= 24 then accept;
			if net ~ 192.168.0.0/16 || net ~ 172.16.0.0/12 then accept;
			if ! (bgp_path.len >= 1) then accept;
			reject;
		}`)
	if v := run(t, f, subj("10.1.0.0/16", 65001)); v.Disposition != Accept {
		t.Error("and-clause should accept")
	}
	if v := run(t, f, subj("10.1.2.0/30", 65001)); v.Disposition != Reject {
		t.Error("and-clause should reject long prefixes")
	}
	if v := run(t, f, subj("172.20.0.0/16", 65001)); v.Disposition != Accept {
		t.Error("or-clause should accept")
	}
	if v := run(t, f, subj("8.8.8.0/24")); v.Disposition != Accept {
		t.Error("empty path should accept via negation clause")
	}
}

func TestIfElse(t *testing.T) {
	f := mustParse(t, `
		filter f {
			if net.len > 24 then { reject; } else { set local_pref 200; }
			accept;
		}`)
	v := run(t, f, subj("10.0.0.0/24", 65001))
	if v.Disposition != Accept || v.SetLocalPref == nil || *v.SetLocalPref != 200 {
		t.Fatalf("verdict: %+v", v)
	}
	if v := run(t, f, subj("10.0.0.0/25", 65001)); v.Disposition != Reject {
		t.Error("else branch wrong")
	}
}

func TestSetAndApply(t *testing.T) {
	f := mustParse(t, `
		filter f {
			set local_pref 300;
			set med 42;
			set origin egp;
			add community (65001, 666);
			accept;
		}`)
	v := run(t, f, subj("10.0.0.0/24", 65001))
	if v.Disposition != Accept {
		t.Fatal("should accept")
	}
	attrs := bgp.Attrs{HasOrigin: true, Origin: bgp.OriginIGP}
	v.Apply(&attrs)
	if !attrs.HasLocalPref || attrs.LocalPref != 300 {
		t.Error("local_pref not applied")
	}
	if !attrs.HasMED || attrs.MED != 42 {
		t.Error("med not applied")
	}
	if attrs.Origin != bgp.OriginEGP {
		t.Error("origin not applied")
	}
	if !attrs.HasCommunity(bgp.MakeCommunity(65001, 666)) {
		t.Error("community not applied")
	}
	// Idempotent community add.
	v.Apply(&attrs)
	if len(attrs.Communities) != 1 {
		t.Error("community duplicated")
	}
}

func TestCommunityTest(t *testing.T) {
	f := mustParse(t, `
		filter f {
			if community (65001, 666) then reject;
			accept;
		}`)
	s := subj("10.0.0.0/24", 65001)
	s.Communities = []uint32{bgp.MakeCommunity(65001, 666)}
	if v := run(t, f, s); v.Disposition != Reject {
		t.Error("blackhole community should reject")
	}
	s.Communities = nil
	if v := run(t, f, s); v.Disposition != Accept {
		t.Error("clean route should accept")
	}
}

func TestOriginComparison(t *testing.T) {
	f := mustParse(t, `filter f { if origin = incomplete then reject; accept; }`)
	s := subj("10.0.0.0/24", 65001)
	s.Origin = concolic.Concrete(uint64(bgp.OriginIncomplete), 8)
	if v := run(t, f, s); v.Disposition != Reject {
		t.Error("incomplete origin should reject")
	}
}

func TestParseAllMultiple(t *testing.T) {
	fs, err := ParseAll(`
		filter a { accept; }
		filter b { reject; }
	`)
	if err != nil || len(fs) != 2 || fs[0].Name != "a" || fs[1].Name != "b" {
		t.Fatalf("ParseAll: %v %v", fs, err)
	}
}

// TestConcolicBranchRecording: with symbolic subject fields, every `if`
// records exactly one path constraint through the Brancher — the property
// DiCE's exploration relies on.
func TestConcolicBranchRecording(t *testing.T) {
	f := mustParse(t, `
		filter f {
			if net ~ 10.0.0.0/8 then reject;
			if net.len > 24 then reject;
			accept;
		}`)
	handler := func(rc *concolic.RunContext) any {
		s := subj("192.0.2.0/24", 65001)
		s.NetAddr = rc.Input("addr")
		s.NetLen = rc.Input("len")
		v := Run(f, s, rc)
		return v.Disposition
	}
	eng := concolic.NewEngine(handler, concolic.Options{})
	eng.Var("addr", 32, uint64(uint32(netaddr.MustParseAddr("192.0.2.0"))))
	eng.Var("len", 8, 24)
	rep := eng.Explore()

	// Paths: [match 10/8 → reject], [no match, len>24 → reject],
	// [no match, len<=24 → accept]. Plus length-range interaction of the
	// match expression itself... At minimum both dispositions must appear
	// and at least 3 distinct paths.
	if len(rep.Paths) < 3 {
		t.Fatalf("explored %d paths, want >= 3", len(rep.Paths))
	}
	sawAccept, sawReject := false, false
	for _, p := range rep.Paths {
		switch p.Output.(Disposition) {
		case Accept:
			sawAccept = true
		case Reject:
			sawReject = true
		}
	}
	if !sawAccept || !sawReject {
		t.Fatalf("missing disposition: accept=%v reject=%v", sawAccept, sawReject)
	}
}

// TestExplorationFindsAcceptedLeak is the §4.2 scenario in miniature: a
// filter that is supposed to only accept customer space but has a hole.
func TestExplorationFindsAcceptedLeak(t *testing.T) {
	// Intended: accept only 10.7.0.0/16. Actual: operator fat-fingered an
	// extra accept for any /24 or longer — the misconfiguration.
	f := mustParse(t, `
		filter broken_customer_in {
			if net ~ 10.7.0.0/16 then accept;
			if net.len >= 24 then accept;
			reject;
		}`)
	handler := func(rc *concolic.RunContext) any {
		s := subj("10.7.1.0/24", 65007)
		s.NetAddr = rc.Input("addr")
		s.NetLen = rc.Input("len")
		rc.Assume(concolic.Le(s.NetLen, concolic.Concrete(32, 8)))
		v := Run(f, s, rc)
		if v.Disposition == Accept {
			// Report the accepted (addr, len) pair.
			return [2]uint64{rc.Env()[0], rc.Env()[1]}
		}
		return nil
	}
	eng := concolic.NewEngine(handler, concolic.Options{})
	eng.Var("addr", 32, uint64(uint32(netaddr.MustParseAddr("10.7.1.0"))))
	eng.Var("len", 8, 24)
	rep := eng.Explore()

	leak := false
	for _, p := range rep.Paths {
		if pair, ok := p.Output.([2]uint64); ok {
			addr := netaddr.Addr(uint32(pair[0]))
			inside := netaddr.MustParsePrefix("10.7.0.0/16").Contains(addr)
			if !inside {
				leak = true // accepted something outside customer space
			}
		}
	}
	if !leak {
		t.Fatal("exploration failed to find the route leak")
	}
}

func TestFilterStringRoundTrips(t *testing.T) {
	src := `filter f { if net ~ 10.0.0.0/8{8,24} && net.len > 9 then { set local_pref 200; accept; } else reject; add community (65001,666); }`
	f := mustParse(t, src)
	s := f.String()
	for _, frag := range []string{"10.0.0.0/8{8,24}", "local_pref", "community", "else"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	// The printed form must itself parse (idempotence of the surface syntax).
	if _, err := Parse(s); err != nil {
		t.Fatalf("reparse of String() failed: %v\n%s", err, s)
	}
}

func TestAcceptAllRejectAll(t *testing.T) {
	if v := run(t, AcceptAll, subj("10.0.0.0/8", 65001)); v.Disposition != Accept {
		t.Error("AcceptAll broken")
	}
	if v := run(t, RejectAll, subj("10.0.0.0/8", 65001)); v.Disposition != Reject {
		t.Error("RejectAll broken")
	}
}

func BenchmarkRunConcrete(b *testing.B) {
	f, err := Parse(`
		filter f {
			if net ~ 10.0.0.0/8{16,24} then { set local_pref 200; accept; }
			if bgp_path.len > 10 then reject;
			if bgp_path.origin = 64999 then reject;
			accept;
		}`)
	if err != nil {
		b.Fatal(err)
	}
	s := subj("10.1.0.0/16", 65001, 65002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(f, s, ConcreteBrancher{})
	}
}
