package filter

import (
	"fmt"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/netaddr"
)

// Brancher reports conditional outcomes during filter evaluation. The
// concolic engine's RunContext implements it (recording a path constraint
// per `if`); ConcreteBrancher just evaluates. This single seam is what
// turns the configuration interpreter into explorable code.
type Brancher interface {
	Branch(cond concolic.Value) bool
}

// ConcreteBrancher evaluates conditions with no constraint recording —
// the router's zero-overhead fast path while not exploring.
type ConcreteBrancher struct{}

// Branch implements Brancher.
func (ConcreteBrancher) Branch(cond concolic.Value) bool { return cond.NonZero() }

// Subject is the route being filtered, lifted to concolic values. During
// normal operation every Value is concrete; during exploration the fields
// DiCE marked symbolic carry expressions.
type Subject struct {
	NetAddr   concolic.Value // 32-bit network address
	NetLen    concolic.Value // 8-bit prefix length
	PathLen   concolic.Value // 16-bit AS path length
	OriginAS  concolic.Value // 16-bit originating AS
	FirstAS   concolic.Value // 16-bit neighbor AS
	Origin    concolic.Value // 8-bit ORIGIN code
	LocalPref concolic.Value // 32-bit
	MED       concolic.Value // 32-bit

	// Communities is the route's concrete community set; membership
	// tests over it never record constraints.
	Communities []uint32

	// SymCommunity is an optional extra community slot whose 32-bit value
	// is symbolic (the routeleak scenario's input model: the community
	// crossing a policy edge becomes one engine-chosen word). W == 0
	// means the slot is absent and community tests stay fully concrete.
	// By convention the materialized message carries the slot's concrete
	// value only when it is non-zero, so the solver can express "no
	// matching community" by choosing 0.
	SymCommunity concolic.Value
}

// SubjectFromRoute lifts concrete route data into a Subject.
func SubjectFromRoute(prefix netaddr.Prefix, attrs *bgp.Attrs) *Subject {
	var lp, med uint64
	if attrs.HasLocalPref {
		lp = uint64(attrs.LocalPref)
	} else {
		lp = 100
	}
	if attrs.HasMED {
		med = uint64(attrs.MED)
	}
	return &Subject{
		NetAddr:     concolic.Concrete(uint64(uint32(prefix.Addr())), 32),
		NetLen:      concolic.Concrete(uint64(prefix.Bits()), 8),
		PathLen:     concolic.Concrete(uint64(attrs.ASPath.Length()), 16),
		OriginAS:    concolic.Concrete(uint64(attrs.ASPath.OriginAS()), 16),
		FirstAS:     concolic.Concrete(uint64(attrs.ASPath.FirstAS()), 16),
		Origin:      concolic.Concrete(uint64(attrs.Origin), 8),
		LocalPref:   concolic.Concrete(lp, 32),
		MED:         concolic.Concrete(med, 32),
		Communities: attrs.Communities,
	}
}

// Verdict is the outcome of running a filter over a subject.
type Verdict struct {
	Disposition Disposition

	// Attribute modifications (applied only on Accept).
	SetLocalPref   *uint32
	SetMED         *uint32
	SetOrigin      *uint8
	AddCommunities []uint32

	// Stats for the harness.
	BranchesTaken int
}

// Apply writes the verdict's modifications into attrs.
func (v *Verdict) Apply(attrs *bgp.Attrs) {
	if v.SetLocalPref != nil {
		attrs.HasLocalPref, attrs.LocalPref = true, *v.SetLocalPref
	}
	if v.SetMED != nil {
		attrs.HasMED, attrs.MED = true, *v.SetMED
	}
	if v.SetOrigin != nil {
		attrs.HasOrigin, attrs.Origin = true, *v.SetOrigin
	}
	for _, c := range v.AddCommunities {
		if !attrs.HasCommunity(c) {
			attrs.Communities = append(attrs.Communities, c)
		}
	}
}

// Run evaluates the filter over subj, reporting conditionals through br.
// Falling off the end rejects, like BIRD.
func Run(f *Filter, subj *Subject, br Brancher) Verdict {
	v := Verdict{Disposition: Reject}
	runStmts(f.Stmts, subj, br, &v)
	return v
}

// runStmts executes statements until a terminal action; returns true when
// a terminal action fired.
func runStmts(stmts []Stmt, subj *Subject, br Brancher, v *Verdict) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ActionStmt:
			v.Disposition = st.Disposition
			return true
		case *SetStmt:
			switch st.Field {
			case FieldLocalPref:
				val := uint32(st.Value)
				v.SetLocalPref = &val
			case FieldMED:
				val := uint32(st.Value)
				v.SetMED = &val
			case FieldOrigin:
				val := uint8(st.Value)
				v.SetOrigin = &val
			}
		case *AddCommunityStmt:
			v.AddCommunities = append(v.AddCommunities, bgp.MakeCommunity(st.AS, st.Value))
		case *IfStmt:
			cond := evalExpr(st.Cond, subj)
			v.BranchesTaken++
			if br.Branch(cond) {
				if runStmts(st.Then, subj, br, v) {
					return true
				}
			} else if len(st.Else) > 0 {
				if runStmts(st.Else, subj, br, v) {
					return true
				}
			}
		}
	}
	return false
}

// evalExpr computes a boolean concolic Value for an expression. The whole
// condition of an `if` becomes one recorded branch predicate, mirroring
// how BIRD's interpreter evaluates a parsed condition then branches once.
func evalExpr(e Expr, subj *Subject) concolic.Value {
	switch t := e.(type) {
	case BoolLit:
		return concolic.Bool(bool(t))
	case *NotExpr:
		return concolic.BoolNot(evalExpr(t.X, subj))
	case *AndExpr:
		return concolic.BoolAnd(evalExpr(t.X, subj), evalExpr(t.Y, subj))
	case *OrExpr:
		return concolic.BoolOr(evalExpr(t.X, subj), evalExpr(t.Y, subj))
	case *CmpExpr:
		lhs := fieldValue(t.Field, subj)
		rhs := concolic.Concrete(t.Value, lhs.W)
		switch t.Op {
		case CmpEq:
			return concolic.Eq(lhs, rhs)
		case CmpNe:
			return concolic.Ne(lhs, rhs)
		case CmpLt:
			return concolic.Lt(lhs, rhs)
		case CmpLe:
			return concolic.Le(lhs, rhs)
		case CmpGt:
			return concolic.Gt(lhs, rhs)
		case CmpGe:
			return concolic.Ge(lhs, rhs)
		}
		panic(fmt.Sprintf("filter: unhandled comparison operator %d in %T", int(t.Op), t))
	case *MatchExpr:
		// net ~ P{lo,hi}:
		//   (addr & mask(P.bits)) == P.addr && lo <= len && len <= hi
		mask := concolic.Concrete(uint64(uint32(netaddr.Mask(t.Prefix.Bits()))), 32)
		net := concolic.Concrete(uint64(uint32(t.Prefix.Addr())), 32)
		inNet := concolic.Eq(concolic.And(subj.NetAddr, mask), net)
		geLo := concolic.Ge(subj.NetLen, concolic.Concrete(uint64(t.LoLen), 8))
		leHi := concolic.Le(subj.NetLen, concolic.Concrete(uint64(t.HiLen), 8))
		return concolic.BoolAnd(inNet, concolic.BoolAnd(geLo, leHi))
	case *CommunityExpr:
		// Concrete set membership first; a hit needs no constraint.
		want := bgp.MakeCommunity(t.AS, t.Value)
		for _, c := range subj.Communities {
			if c == want {
				return concolic.Bool(true)
			}
		}
		// The symbolic slot turns the residual membership test into an
		// explorable equality: the engine can steer the slot onto (or off)
		// any community a policy tests.
		if subj.SymCommunity.W != 0 {
			return concolic.Eq(subj.SymCommunity, concolic.Concrete(uint64(want), 32))
		}
		return concolic.Bool(false)
	}
	// An expression node the evaluator does not know is AST drift: a new
	// node type was added without a case here. Evaluating it as `false`
	// would silently miscompile every policy using it, so fail loudly.
	panic(fmt.Sprintf("filter: unhandled expression node %T", e))
}

// EvalConcrete evaluates one filter expression over a fully concrete
// subject with no constraint recording. The property language
// (internal/prop) evaluates its witness and route predicates through
// here, so both languages share a single evaluator — and its
// unknown-node drift guards.
func EvalConcrete(e Expr, subj *Subject) bool {
	return evalExpr(e, subj).NonZero()
}

func fieldValue(f Field, subj *Subject) concolic.Value {
	switch f {
	case FieldNetLen:
		return subj.NetLen
	case FieldPathLen:
		return subj.PathLen
	case FieldOriginAS:
		return subj.OriginAS
	case FieldFirstAS:
		return subj.FirstAS
	case FieldOrigin:
		return subj.Origin
	case FieldLocalPref:
		return subj.LocalPref
	case FieldMED:
		return subj.MED
	case FieldNet:
		return subj.NetAddr
	}
	// Same drift guard as evalExpr: an unknown field must never read as
	// Concrete(0, 32), or comparisons against it silently hold/fail on a
	// value the route does not carry.
	panic(fmt.Sprintf("filter: unhandled field %v", f))
}
