package config

import (
	"strings"
	"testing"
	"time"

	"dice/internal/netaddr"
)

const sample = `
# Provider router (Figure 2 of the paper)
router id 10.0.0.2;
local as 65002;

filter customer_in {
    if net ~ 10.7.0.0/16 then accept;
    reject;
}

filter transit_in {
    if bgp_path.len > 32 then reject;
    accept;
}

anycast 192.88.99.0/24;

network 10.2.0.0/16;

peer customer {
    remote 10.0.0.1 as 65001;
    import filter customer_in;
    hold 30;
}

peer internet {
    remote 10.0.0.3 as 65003;
    import filter transit_in;
    export filter transit_in;
}
`

func TestParseSample(t *testing.T) {
	cfg, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RouterID != netaddr.MustParseAddr("10.0.0.2") || cfg.LocalAS != 65002 {
		t.Fatalf("identity: %v AS%d", cfg.RouterID, cfg.LocalAS)
	}
	if len(cfg.Filters) != 2 {
		t.Fatalf("filters: %d", len(cfg.Filters))
	}
	if len(cfg.Peers) != 2 {
		t.Fatalf("peers: %d", len(cfg.Peers))
	}
	cust := cfg.FindPeer("customer")
	if cust == nil || cust.AS != 65001 || cust.Addr != netaddr.MustParseAddr("10.0.0.1") {
		t.Fatalf("customer peer: %+v", cust)
	}
	if cust.Import == nil || cust.Import.Name != "customer_in" {
		t.Fatalf("customer import: %+v", cust.Import)
	}
	if cust.Export != nil {
		t.Fatal("customer export should be nil (accept all)")
	}
	if cust.HoldTime != 30*time.Second {
		t.Fatalf("hold time: %v", cust.HoldTime)
	}
	inet := cfg.FindPeer("internet")
	if inet == nil || inet.Export == nil || inet.Export.Name != "transit_in" {
		t.Fatalf("internet peer: %+v", inet)
	}
	if len(cfg.Networks) != 1 || cfg.Networks[0].String() != "10.2.0.0/16" {
		t.Fatalf("networks: %v", cfg.Networks)
	}
	if len(cfg.Anycast) != 1 {
		t.Fatalf("anycast: %v", cfg.Anycast)
	}
	if cfg.FindPeer("missing") != nil {
		t.Fatal("FindPeer should return nil for unknown names")
	}
}

func TestIsAnycast(t *testing.T) {
	cfg, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.IsAnycast(netaddr.MustParsePrefix("192.88.99.0/24")) {
		t.Error("exact anycast prefix not detected")
	}
	if !cfg.IsAnycast(netaddr.MustParsePrefix("192.88.99.128/25")) {
		t.Error("anycast more-specific not detected")
	}
	if cfg.IsAnycast(netaddr.MustParsePrefix("192.88.0.0/16")) {
		t.Error("covering prefix wrongly detected as anycast")
	}
	if cfg.IsAnycast(netaddr.MustParsePrefix("8.8.8.0/24")) {
		t.Error("unrelated prefix detected as anycast")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing router id": "local as 1;",
		"missing local as":  "router id 1.1.1.1;",
		"bad router id":     "router id banana; local as 1;",
		"bad as":            "router id 1.1.1.1; local as 99999999;",
		"unknown statement": "router id 1.1.1.1; local as 1; frobnicate;",
		"bad network":       "router id 1.1.1.1; local as 1; network 1.2.3.4;",
		"unknown filter ref": `router id 1.1.1.1; local as 1;
			peer x { remote 2.2.2.2 as 2; import filter nope; }`,
		"peer missing remote": `router id 1.1.1.1; local as 1;
			peer x { import filter f; } filter f { accept; }`,
		"duplicate peer": `router id 1.1.1.1; local as 1;
			peer x { remote 2.2.2.2 as 2; } peer x { remote 3.3.3.3 as 3; }`,
		"duplicate filter": `router id 1.1.1.1; local as 1;
			filter f { accept; } filter f { reject; }`,
		"bad peer option": `router id 1.1.1.1; local as 1;
			peer x { remote 2.2.2.2 as 2; bogus option; }`,
		"bad filter body": `router id 1.1.1.1; local as 1;
			filter f { if frob > 1 then accept; }`,
		"bad hold": `router id 1.1.1.1; local as 1;
			peer x { remote 2.2.2.2 as 2; hold banana; }`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
	# leading comment
	router id 1.1.1.1;   # trailing comment
	local as 7;
	`
	cfg, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LocalAS != 7 {
		t.Fatalf("AS = %d", cfg.LocalAS)
	}
}

func TestFilterBodyBracesDoNotConfuseSplitter(t *testing.T) {
	src := `
	router id 1.1.1.1;
	local as 7;
	filter f {
	    if net ~ 10.0.0.0/8{8,24} then { accept; } else { reject; }
	}
	peer p { remote 2.2.2.2 as 9; import filter f; }
	`
	cfg, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Filters["f"] == nil || cfg.FindPeer("p") == nil {
		t.Fatal("nested braces broke statement splitting")
	}
	if !strings.Contains(cfg.Filters["f"].String(), "10.0.0.0/8{8,24}") {
		t.Fatalf("filter content lost: %s", cfg.Filters["f"])
	}
}
