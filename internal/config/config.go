// Package config parses the daemon configuration: router identity, peers
// with their import/export policies, locally originated networks, and the
// anycast allowlist DiCE uses to suppress hijack false positives (§4.2).
//
// The format is BIRD-inspired:
//
//	router id 10.0.0.2;
//	local as 65002;
//
//	filter customer_in {
//	    if net ~ 10.7.0.0/16 then accept;
//	    reject;
//	}
//
//	anycast 192.88.99.0/24;
//
//	network 10.2.0.0/16;
//
//	peer customer {
//	    remote 10.0.0.1 as 65001;
//	    import filter customer_in;
//	    export filter accept_all;
//	}
package config

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"dice/internal/filter"
	"dice/internal/netaddr"
)

// Peer describes one configured peering.
type Peer struct {
	Name   string
	Addr   netaddr.Addr // remote router ID / address on the virtual net
	AS     uint16
	Import *filter.Filter // nil = accept all
	Export *filter.Filter // nil = accept all

	// HoldTime overrides the session hold time (0 = default 90s).
	HoldTime time.Duration
}

// Config is a parsed daemon configuration.
type Config struct {
	RouterID netaddr.Addr
	LocalAS  uint16
	Peers    []*Peer
	Filters  map[string]*filter.Filter
	Networks []netaddr.Prefix // locally originated
	Anycast  []netaddr.Prefix // known-anycast space (oracle FP suppression)
}

// FindPeer returns the peer with the given name, or nil.
func (c *Config) FindPeer(name string) *Peer {
	for _, p := range c.Peers {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// IsAnycast reports whether p lies inside configured anycast space.
func (c *Config) IsAnycast(p netaddr.Prefix) bool {
	for _, a := range c.Anycast {
		if a.Covers(p) {
			return true
		}
	}
	return false
}

// Parse parses a configuration document.
func Parse(src string) (*Config, error) {
	cfg := &Config{Filters: map[string]*filter.Filter{}}
	lines := splitStatements(src)
	for _, st := range lines {
		if err := parseStatement(cfg, st); err != nil {
			return nil, err
		}
	}
	if cfg.RouterID == 0 {
		return nil, fmt.Errorf("config: missing 'router id'")
	}
	if cfg.LocalAS == 0 {
		return nil, fmt.Errorf("config: missing 'local as'")
	}
	seen := map[string]bool{}
	for _, p := range cfg.Peers {
		if seen[p.Name] {
			return nil, fmt.Errorf("config: duplicate peer %q", p.Name)
		}
		seen[p.Name] = true
	}
	return cfg, nil
}

// statement is a top-level chunk: either a single `... ;` line or a
// block `keyword name { ... }`.
type statement struct {
	text string
	line int
}

// splitStatements cuts the source into top-level statements, keeping
// brace-blocks (filters, peers) intact.
func splitStatements(src string) []statement {
	var out []statement
	var buf strings.Builder
	depth := 0
	line := 1
	startLine := 1
	flush := func() {
		s := strings.TrimSpace(buf.String())
		if s != "" {
			out = append(out, statement{text: s, line: startLine})
		}
		buf.Reset()
		startLine = line
	}
	inComment := false
	for _, r := range src {
		if r == '\n' {
			line++
			inComment = false
			buf.WriteRune(' ')
			continue
		}
		if inComment {
			continue
		}
		switch r {
		case '#':
			inComment = true
		case '{':
			depth++
			buf.WriteRune(r)
		case '}':
			depth--
			buf.WriteRune(r)
			if depth == 0 {
				flush()
			}
		case ';':
			if depth == 0 {
				flush()
			} else {
				buf.WriteRune(r)
			}
		default:
			if buf.Len() == 0 && r != ' ' && r != '\t' {
				startLine = line
			}
			buf.WriteRune(r)
		}
	}
	flush()
	return out
}

func parseStatement(cfg *Config, st statement) error {
	fields := strings.Fields(st.text)
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case "router":
		if len(fields) != 3 || fields[1] != "id" {
			return fmt.Errorf("config: line %d: usage: router id <addr>", st.line)
		}
		a, err := netaddr.ParseAddr(fields[2])
		if err != nil {
			return fmt.Errorf("config: line %d: %v", st.line, err)
		}
		cfg.RouterID = a
	case "local":
		if len(fields) != 3 || fields[1] != "as" {
			return fmt.Errorf("config: line %d: usage: local as <asn>", st.line)
		}
		as, err := strconv.ParseUint(fields[2], 10, 16)
		if err != nil {
			return fmt.Errorf("config: line %d: bad AS %q", st.line, fields[2])
		}
		cfg.LocalAS = uint16(as)
	case "network":
		if len(fields) != 2 {
			return fmt.Errorf("config: line %d: usage: network <prefix>", st.line)
		}
		p, err := netaddr.ParsePrefix(fields[1])
		if err != nil {
			return fmt.Errorf("config: line %d: %v", st.line, err)
		}
		cfg.Networks = append(cfg.Networks, p)
	case "anycast":
		if len(fields) != 2 {
			return fmt.Errorf("config: line %d: usage: anycast <prefix>", st.line)
		}
		p, err := netaddr.ParsePrefix(fields[1])
		if err != nil {
			return fmt.Errorf("config: line %d: %v", st.line, err)
		}
		cfg.Anycast = append(cfg.Anycast, p)
	case "filter":
		f, err := filter.Parse(st.text)
		if err != nil {
			return fmt.Errorf("config: line %d: %v", st.line, err)
		}
		if _, dup := cfg.Filters[f.Name]; dup {
			return fmt.Errorf("config: line %d: duplicate filter %q", st.line, f.Name)
		}
		cfg.Filters[f.Name] = f
	case "peer":
		return parsePeer(cfg, st)
	default:
		return fmt.Errorf("config: line %d: unknown statement %q", st.line, fields[0])
	}
	return nil
}

func parsePeer(cfg *Config, st statement) error {
	open := strings.IndexByte(st.text, '{')
	if open < 0 || !strings.HasSuffix(strings.TrimSpace(st.text), "}") {
		return fmt.Errorf("config: line %d: peer requires a block", st.line)
	}
	head := strings.Fields(st.text[:open])
	if len(head) != 2 {
		return fmt.Errorf("config: line %d: usage: peer <name> { ... }", st.line)
	}
	p := &Peer{Name: head[1]}
	body := strings.TrimSpace(st.text[open+1 : strings.LastIndexByte(st.text, '}')])
	for _, item := range strings.Split(body, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		f := strings.Fields(item)
		switch {
		case f[0] == "remote" && len(f) == 4 && f[2] == "as":
			a, err := netaddr.ParseAddr(f[1])
			if err != nil {
				return fmt.Errorf("config: line %d: %v", st.line, err)
			}
			as, err := strconv.ParseUint(f[3], 10, 16)
			if err != nil {
				return fmt.Errorf("config: line %d: bad AS %q", st.line, f[3])
			}
			p.Addr, p.AS = a, uint16(as)
		case f[0] == "import" && len(f) == 3 && f[1] == "filter":
			flt, ok := cfg.Filters[f[2]]
			if !ok {
				return fmt.Errorf("config: line %d: unknown filter %q", st.line, f[2])
			}
			p.Import = flt
		case f[0] == "export" && len(f) == 3 && f[1] == "filter":
			flt, ok := cfg.Filters[f[2]]
			if !ok {
				return fmt.Errorf("config: line %d: unknown filter %q", st.line, f[2])
			}
			p.Export = flt
		case f[0] == "hold" && len(f) == 2:
			secs, err := strconv.Atoi(f[1])
			if err != nil || secs < 0 {
				return fmt.Errorf("config: line %d: bad hold time %q", st.line, f[1])
			}
			p.HoldTime = time.Duration(secs) * time.Second
		default:
			return fmt.Errorf("config: line %d: unknown peer option %q", st.line, item)
		}
	}
	if p.Addr == 0 || p.AS == 0 {
		return fmt.Errorf("config: line %d: peer %q missing 'remote <addr> as <asn>'", st.line, p.Name)
	}
	cfg.Peers = append(cfg.Peers, p)
	return nil
}
