package trace

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"dice/internal/bgp"
	"dice/internal/netaddr"
)

func genSmall(t *testing.T) []Record {
	t.Helper()
	cfg := DefaultGenConfig()
	cfg.TableSize = 500
	cfg.UpdateCount = 200
	cfg.Duration = time.Minute
	return Generate(cfg)
}

func TestGenerateShape(t *testing.T) {
	recs := genSmall(t)
	dump, updates := Split(recs)
	if len(dump) != 500 {
		t.Fatalf("dump size = %d", len(dump))
	}
	if len(updates) != 200 {
		t.Fatalf("updates = %d", len(updates))
	}
	// Dump prefixes are distinct.
	seen := map[netaddr.Prefix]bool{}
	for _, r := range dump {
		if seen[r.Prefix] {
			t.Fatalf("duplicate dump prefix %v", r.Prefix)
		}
		seen[r.Prefix] = true
		if r.At != 0 || r.Kind != KindDump {
			t.Fatalf("bad dump record: %+v", r)
		}
		if !r.Attrs.HasOrigin || !r.Attrs.HasNextHop || r.Attrs.ASPath == nil {
			t.Fatalf("dump record missing mandatory attrs: %+v", r.Attrs)
		}
		if r.Attrs.ASPath.FirstAS() != 65003 {
			t.Fatalf("path must start at peer AS: %v", r.Attrs.ASPath)
		}
	}
	// Updates are time-ordered within the window.
	var last time.Duration
	withdraws := 0
	for _, r := range updates {
		if r.At < last {
			t.Fatal("updates out of order")
		}
		last = r.At
		if r.At > time.Minute {
			t.Fatalf("update at %v beyond duration", r.At)
		}
		if r.Kind == KindWithdraw {
			withdraws++
		}
	}
	if withdraws == 0 || withdraws > 60 {
		t.Fatalf("withdraw count suspicious: %d", withdraws)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genSmall(t)
	b := genSmall(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must generate identical traces")
	}
	cfg := DefaultGenConfig()
	cfg.TableSize, cfg.UpdateCount, cfg.Duration = 500, 200, time.Minute
	cfg.Seed = 2
	c := Generate(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds must differ")
	}
}

func TestPrefixLengthDistribution(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.TableSize = 20000
	cfg.UpdateCount = 0
	recs := Generate(cfg)
	counts := map[int]int{}
	for _, r := range recs {
		counts[r.Prefix.Bits()]++
	}
	// /24 should dominate (~40%+), like the real table.
	if frac := float64(counts[24]) / float64(len(recs)); frac < 0.35 || frac > 0.75 {
		t.Fatalf("/24 fraction = %v, want ~0.42", frac)
	}
	// No prefixes longer than /24 or shorter than /8 in the dump.
	for bits := range counts {
		if bits < 8 || bits > 24 {
			t.Fatalf("unexpected prefix length %d", bits)
		}
	}
}

func TestRoutableSpace(t *testing.T) {
	recs := genSmall(t)
	for _, r := range recs {
		first := byte(uint32(r.Prefix.Addr()) >> 24)
		if first == 0 || first == 127 || first >= 224 {
			t.Fatalf("prefix %v outside routable space", r.Prefix)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := genSmall(t)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("count: %d vs %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].At != recs[i].At || got[i].Kind != recs[i].Kind || got[i].Prefix != recs[i].Prefix {
			t.Fatalf("record %d header mismatch: %+v vs %+v", i, got[i], recs[i])
		}
		if got[i].Kind != KindWithdraw {
			a, b := got[i].Attrs, recs[i].Attrs
			if a.Origin != b.Origin || a.ASPath.String() != b.ASPath.String() ||
				a.NextHop != b.NextHop || a.HasMED != b.HasMED || a.MED != b.MED {
				t.Fatalf("record %d attrs mismatch:\n%+v\n%+v", i, a, b)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Correct magic, truncated body.
	var buf bytes.Buffer
	Write(&buf, genSmall(t))
	trunc := buf.Bytes()[:40]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestToUpdate(t *testing.T) {
	recs := genSmall(t)
	_, updates := Split(recs)
	for _, r := range updates {
		u := ToUpdate(r)
		if r.Kind == KindWithdraw {
			if len(u.Withdrawn) != 1 || len(u.NLRI) != 0 {
				t.Fatalf("withdraw update wrong: %+v", u)
			}
		} else {
			if len(u.NLRI) != 1 || u.NLRI[0] != r.Prefix {
				t.Fatalf("announce update wrong: %+v", u)
			}
			// The produced update must be wire-valid.
			if _, err := bgp.Encode(u); err != nil {
				t.Fatalf("update not encodable: %v", err)
			}
		}
	}
}

func TestReplayer(t *testing.T) {
	recs := genSmall(t)
	rp := NewReplayer(recs)
	if rp.Remaining() != len(recs) {
		t.Fatal("remaining wrong")
	}
	n := 0
	for {
		_, ok := rp.Next()
		if !ok {
			break
		}
		n++
	}
	if n != len(recs) {
		t.Fatalf("replayed %d of %d", n, len(recs))
	}
	rp.Rewind()
	if _, ok := rp.Next(); !ok {
		t.Fatal("rewind failed")
	}
}

func BenchmarkGenerate10k(b *testing.B) {
	cfg := DefaultGenConfig()
	cfg.TableSize = 10000
	cfg.UpdateCount = 1000
	for i := 0; i < b.N; i++ {
		if got := Generate(cfg); len(got) != 11000 {
			b.Fatal("bad size")
		}
	}
}

func BenchmarkWriteRead(b *testing.B) {
	cfg := DefaultGenConfig()
	cfg.TableSize = 1000
	cfg.UpdateCount = 100
	recs := Generate(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
