// Package trace provides BGP trace capture and replay: an MRT-like binary
// format, a deterministic synthetic generator that stands in for the
// RouteViews trace used in the paper's evaluation (a full table dump of
// 319,355 prefixes plus a 15-minute update trace), and helpers to turn
// records into UPDATE messages.
//
// The substitution is documented in DESIGN.md: the experiments use the
// trace only as a bulk table-load workload and a steady update stream;
// the generator reproduces both load patterns with realistic prefix-length
// and AS-path-length distributions at configurable scale.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"dice/internal/bgp"
	"dice/internal/netaddr"
)

// Kind tags a trace record.
type Kind uint8

// Record kinds.
const (
	// KindDump is a full-table (RIB) entry at trace start.
	KindDump Kind = iota
	// KindAnnounce is an incremental route announcement.
	KindAnnounce
	// KindWithdraw is an incremental route withdrawal.
	KindWithdraw
)

func (k Kind) String() string {
	switch k {
	case KindDump:
		return "dump"
	case KindAnnounce:
		return "announce"
	case KindWithdraw:
		return "withdraw"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one trace entry. At is the offset from trace start.
type Record struct {
	At     time.Duration
	Kind   Kind
	Prefix netaddr.Prefix
	Attrs  bgp.Attrs // valid for Dump and Announce
}

// magic identifies the MRT-lite file format.
var magic = [8]byte{'D', 'I', 'C', 'E', 'T', 'R', 'C', '1'}

// ErrBadFormat reports a malformed trace file.
var ErrBadFormat = errors.New("trace: bad format")

// Write serializes records to w.
func Write(w io.Writer, records []Record) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(records)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, 128)
	for i := range records {
		r := &records[i]
		buf = buf[:0]
		buf = append(buf, uint8(r.Kind))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.At))
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.Prefix.Addr()))
		buf = append(buf, uint8(r.Prefix.Bits()))
		if r.Kind != KindWithdraw {
			attrBytes, err := encodeAttrsBlock(r.Attrs)
			if err != nil {
				return err
			}
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(attrBytes)))
			buf = append(buf, attrBytes...)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Read parses a trace file written by Write.
func Read(r io.Reader) ([]Record, error) {
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	count := binary.BigEndian.Uint32(hdr[:])
	// The count is untrusted input: a corrupt header must not size an
	// allocation (a 12-byte file claiming 2^32 records would OOM before
	// the first short read errored). Grow from a bounded capacity and
	// let truncation fail record by record.
	capHint := count
	if capHint > 4096 {
		capHint = 4096
	}
	records := make([]Record, 0, capHint)
	var fixed [14]byte // kind(1) + at(8) + addr(4) + bits(1)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(r, fixed[:]); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
		}
		rec := Record{
			Kind: Kind(fixed[0]),
			At:   time.Duration(binary.BigEndian.Uint64(fixed[1:9])),
		}
		if rec.Kind > KindWithdraw {
			return nil, fmt.Errorf("%w: record %d: kind %d", ErrBadFormat, i, fixed[0])
		}
		addr := netaddr.Addr(binary.BigEndian.Uint32(fixed[9:13]))
		bits := int(fixed[13])
		if !netaddr.IsValidLen(bits) {
			return nil, fmt.Errorf("%w: record %d: prefix length %d", ErrBadFormat, i, bits)
		}
		rec.Prefix = netaddr.PrefixFrom(addr, bits)
		if rec.Kind != KindWithdraw {
			var alen [2]byte
			if _, err := io.ReadFull(r, alen[:]); err != nil {
				return nil, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
			}
			ab := make([]byte, binary.BigEndian.Uint16(alen[:]))
			if _, err := io.ReadFull(r, ab); err != nil {
				return nil, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
			}
			attrs, err := decodeAttrsBlock(ab)
			if err != nil {
				return nil, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
			}
			rec.Attrs = attrs
		}
		records = append(records, rec)
	}
	return records, nil
}

// encodeAttrsBlock reuses the BGP wire encoding of a full UPDATE carrying
// only attributes, stripping the fixed parts.
func encodeAttrsBlock(a bgp.Attrs) ([]byte, error) {
	u := &bgp.Update{Attrs: a, NLRI: []netaddr.Prefix{netaddr.PrefixFrom(0, 32)}}
	wire, err := bgp.Encode(u)
	if err != nil {
		return nil, err
	}
	// Layout: header(19) wdlen(2) attrlen(2) attrs... nlri(5 bytes for /32)
	attrLen := int(binary.BigEndian.Uint16(wire[21:23]))
	return wire[23 : 23+attrLen], nil
}

func decodeAttrsBlock(b []byte) (bgp.Attrs, error) {
	// Rebuild a minimal UPDATE around the block and decode it.
	body := make([]byte, 0, len(b)+32)
	body = binary.BigEndian.AppendUint16(body, 0) // no withdrawn
	body = binary.BigEndian.AppendUint16(body, uint16(len(b)))
	body = append(body, b...)
	body = append(body, 32, 0, 0, 0, 0) // NLRI 0.0.0.0/32 placeholder
	msg := make([]byte, 0, len(body)+bgp.HeaderLen)
	for i := 0; i < 16; i++ {
		msg = append(msg, 0xff)
	}
	msg = binary.BigEndian.AppendUint16(msg, uint16(bgp.HeaderLen+len(body)))
	msg = append(msg, bgp.MsgUpdate)
	msg = append(msg, body...)
	m, err := bgp.Decode(msg)
	if err != nil {
		return bgp.Attrs{}, err
	}
	return m.(*bgp.Update).Attrs, nil
}

// GenConfig parameterizes the synthetic RouteViews-style generator.
type GenConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// TableSize is the number of prefixes in the initial full dump.
	// The paper's trace has 319,355; experiments scale this down.
	TableSize int
	// UpdateCount is the number of incremental updates following the dump.
	UpdateCount int
	// Duration spreads the incremental updates over this interval
	// (paper: 15 minutes).
	Duration time.Duration
	// WithdrawFraction is the fraction of updates that are withdrawals
	// (RouteViews traces run roughly 10%).
	WithdrawFraction float64
	// PeerAS is the first AS on every path (the peer the trace was
	// captured from).
	PeerAS uint16
	// NextHop is the next-hop carried on announcements.
	NextHop netaddr.Addr
}

// DefaultGenConfig mirrors the paper's workload at full scale.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:             1,
		TableSize:        319355,
		UpdateCount:      250, // the trace runs ~0.28 updates/s over 15 min (§4.1)
		Duration:         15 * time.Minute,
		WithdrawFraction: 0.1,
		PeerAS:           65003,
		NextHop:          netaddr.AddrFrom4(10, 0, 0, 3),
	}
}

// prefixLenDist approximates the global-table prefix length distribution:
// dominated by /24 with mass at /16, /19-/23 and a tail of short prefixes.
var prefixLenDist = []struct {
	bits   int
	weight int
}{
	{8, 1}, {10, 1}, {11, 1}, {12, 2}, {13, 2}, {14, 3}, {15, 3},
	{16, 10}, {17, 4}, {18, 5}, {19, 7}, {20, 8}, {21, 8}, {22, 12},
	{23, 10}, {24, 55},
}

var prefixLenTotal = func() int {
	t := 0
	for _, e := range prefixLenDist {
		t += e.weight
	}
	return t
}()

func randPrefixLen(rng *rand.Rand) int {
	n := rng.Intn(prefixLenTotal)
	for _, e := range prefixLenDist {
		n -= e.weight
		if n < 0 {
			return e.bits
		}
	}
	return 24
}

// randPrefix draws a canonical prefix in globally-routable-looking space
// (first octet 1..223, avoiding 0, loopback and multicast).
func randPrefix(rng *rand.Rand) netaddr.Prefix {
	bits := randPrefixLen(rng)
	for {
		a := netaddr.Addr(rng.Uint32())
		first := byte(a >> 24)
		if first == 0 || first == 127 || first >= 224 {
			continue
		}
		return netaddr.PrefixFrom(a, bits)
	}
}

// randPath builds an AS path starting at peerAS with a realistic length
// (2..6, geometric-ish).
func randPath(rng *rand.Rand, peerAS uint16) bgp.ASPath {
	n := 2
	for n < 6 && rng.Float64() < 0.55 {
		n++
	}
	asns := make([]uint16, n)
	asns[0] = peerAS
	for i := 1; i < n; i++ {
		asns[i] = uint16(rng.Intn(64000) + 1000)
	}
	return bgp.ASPath{{Type: bgp.ASSequence, ASNs: asns}}
}

func randAttrs(rng *rand.Rand, cfg GenConfig) bgp.Attrs {
	a := bgp.Attrs{
		HasOrigin:  true,
		Origin:     uint8(rng.Intn(3)),
		ASPath:     randPath(rng, cfg.PeerAS),
		HasNextHop: true,
		NextHop:    cfg.NextHop,
	}
	if rng.Float64() < 0.3 {
		a.HasMED, a.MED = true, uint32(rng.Intn(200))
	}
	if rng.Float64() < 0.2 {
		a.Communities = []uint32{bgp.MakeCommunity(cfg.PeerAS, uint16(rng.Intn(1000)))}
	}
	return a
}

// Generate produces a deterministic synthetic trace: a full dump of
// cfg.TableSize distinct prefixes at t=0 followed by cfg.UpdateCount
// incremental updates spread over cfg.Duration.
func Generate(cfg GenConfig) []Record {
	rng := rand.New(rand.NewSource(cfg.Seed))
	records := make([]Record, 0, cfg.TableSize+cfg.UpdateCount)

	seen := make(map[netaddr.Prefix]bool, cfg.TableSize)
	table := make([]netaddr.Prefix, 0, cfg.TableSize)
	for len(table) < cfg.TableSize {
		p := randPrefix(rng)
		if seen[p] {
			continue
		}
		seen[p] = true
		table = append(table, p)
		records = append(records, Record{
			At:     0,
			Kind:   KindDump,
			Prefix: p,
			Attrs:  randAttrs(rng, cfg),
		})
	}

	if cfg.UpdateCount > 0 && cfg.Duration <= 0 {
		cfg.Duration = 15 * time.Minute
	}
	withdrawn := map[netaddr.Prefix]bool{}
	for i := 0; i < cfg.UpdateCount; i++ {
		at := time.Duration(float64(cfg.Duration) * float64(i) / float64(cfg.UpdateCount))
		var p netaddr.Prefix
		fresh := len(table) == 0 || rng.Float64() < 0.15
		if fresh {
			p = randPrefix(rng)
		} else {
			p = table[rng.Intn(len(table))]
		}
		if !fresh && !withdrawn[p] && rng.Float64() < cfg.WithdrawFraction {
			withdrawn[p] = true
			records = append(records, Record{At: at, Kind: KindWithdraw, Prefix: p})
			continue
		}
		delete(withdrawn, p)
		records = append(records, Record{
			At:     at,
			Kind:   KindAnnounce,
			Prefix: p,
			Attrs:  randAttrs(rng, cfg),
		})
	}
	return records
}

// ToUpdate converts one record into an UPDATE message.
func ToUpdate(r Record) *bgp.Update {
	if r.Kind == KindWithdraw {
		return &bgp.Update{Withdrawn: []netaddr.Prefix{r.Prefix}}
	}
	return &bgp.Update{Attrs: r.Attrs, NLRI: []netaddr.Prefix{r.Prefix}}
}

// Split separates a trace into the initial dump and the update stream.
func Split(records []Record) (dump, updates []Record) {
	for _, r := range records {
		if r.Kind == KindDump {
			dump = append(dump, r)
		} else {
			updates = append(updates, r)
		}
	}
	return dump, updates
}

// Replayer iterates a trace against a callback in timestamp order,
// reporting virtual time offsets so callers can drive netsim clocks.
type Replayer struct {
	records []Record
	pos     int
}

// NewReplayer creates a replayer over records (assumed time-ordered).
func NewReplayer(records []Record) *Replayer {
	return &Replayer{records: records}
}

// Next returns the next record, or false at end of trace.
func (rp *Replayer) Next() (Record, bool) {
	if rp.pos >= len(rp.records) {
		return Record{}, false
	}
	r := rp.records[rp.pos]
	rp.pos++
	return r, true
}

// Remaining reports how many records are left.
func (rp *Replayer) Remaining() int { return len(rp.records) - rp.pos }

// Rewind restarts the replayer.
func (rp *Replayer) Rewind() { rp.pos = 0 }
