package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// fuzzSeeds covers every structural region of the format: a valid
// two-record file, truncations at each boundary, and corruptions of the
// fields Read validates (magic, kind, prefix length, attr block).
func fuzzSeeds(t interface{ Helper() }) [][]byte {
	t.Helper()
	cfg := DefaultGenConfig()
	cfg.TableSize = 1
	cfg.UpdateCount = 1
	cfg.Duration = time.Second
	var valid bytes.Buffer
	if err := Write(&valid, Generate(cfg)); err != nil {
		panic(err)
	}
	v := valid.Bytes()
	seeds := [][]byte{
		v,
		{},
		v[:4],              // truncated magic
		v[:len(magic)],     // magic only, no count
		v[:len(magic)+4],   // count but no records
		v[:len(v)-1],       // truncated final record
		v[:len(magic)+4+7], // truncated fixed header of record 0
	}
	badMagic := append([]byte(nil), v...)
	badMagic[0] ^= 0xff
	badKind := append([]byte(nil), v...)
	badKind[len(magic)+4] = 0x7f
	badBits := append([]byte(nil), v...)
	badBits[len(magic)+4+13] = 99
	hugeCount := append([]byte(nil), v[:len(magic)]...)
	hugeCount = append(hugeCount, 0xff, 0xff, 0xff, 0xff)
	return append(seeds, badMagic, badKind, badBits, hugeCount)
}

// FuzzTraceRead: whatever bytes arrive, Read must either parse them or
// return an error — never panic, and never spin. Parsed records must
// re-encode and re-parse to the same result (the codec is canonical).
func FuzzTraceRead(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
				t.Fatalf("Read error is not ErrBadFormat/EOF: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, records); err != nil {
			t.Fatalf("re-encode of parsed records failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-parse of re-encoded records failed: %v", err)
		}
		if !reflect.DeepEqual(normalize(records), normalize(again)) {
			t.Fatalf("codec not canonical:\n first: %+v\n again: %+v", records, again)
		}
	})
}

// normalize folds nil and empty slices together for DeepEqual.
func normalize(rs []Record) []Record {
	if len(rs) == 0 {
		return nil
	}
	return rs
}

// TestWriteReadRoundTripProperty: for a spread of generator shapes and
// seeds, Write→Read returns the records unchanged — the property the
// replay harness stands on (a committed trace replays exactly what the
// recorder saw).
func TestWriteReadRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 25; i++ {
		cfg := GenConfig{
			Seed:             rng.Int63(),
			TableSize:        rng.Intn(80),
			UpdateCount:      rng.Intn(60),
			Duration:         time.Duration(1+rng.Intn(300)) * time.Second,
			WithdrawFraction: rng.Float64() * 0.5,
			PeerAS:           uint16(1 + rng.Intn(65000)),
			NextHop:          DefaultGenConfig().NextHop,
		}
		records := Generate(cfg)
		var buf bytes.Buffer
		if err := Write(&buf, records); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(records)) {
			t.Fatalf("round trip changed records for cfg %+v", cfg)
		}
	}
}

// TestReadRejectsSeedCorpus pins the malformed-input seeds as plain unit
// cases: each must error (not panic) even when the fuzzer is not run.
func TestReadRejectsSeedCorpus(t *testing.T) {
	valid := 0
	for i, seed := range fuzzSeeds(t) {
		_, err := Read(bytes.NewReader(seed))
		if err == nil {
			valid++
			continue
		}
		if !errors.Is(err, ErrBadFormat) {
			t.Errorf("seed %d: error %v does not wrap ErrBadFormat", i, err)
		}
	}
	if valid != 1 {
		t.Errorf("%d seeds parsed cleanly, want exactly the one valid file", valid)
	}
}
