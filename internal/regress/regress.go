// Package regress is the golden-file half of the regression harness:
// a federated round — in-process or distributed, live or replayed from
// a recorded trace — renders to a canonical finding snapshot
// (core.FederatedResult.Snapshot / dist.RoundResult.Snapshot), and this
// package diffs that against a committed golden file. A mismatch fails
// with a diff-style message naming the first divergent finding, so a
// replayed history that stops (or starts) producing a finding is caught
// at the exact line that changed. Tests pass -update to regenerate the
// committed files; cmd/dice exposes the same compare/update pair as
// -golden / -update-golden.
package regress

import (
	"fmt"
	"os"
	"strings"
)

// Compare diffs a snapshot against the golden lines. On divergence the
// error names the first divergent line (1-based), quotes the want/got
// pair diff-style, and includes the nearest enclosing "target" line so
// the finding is attributable without opening the file.
func Compare(got, want []string) error {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			return divergence(got, want, i)
		}
	}
	if len(got) != len(want) {
		return divergence(got, want, n)
	}
	return nil
}

// divergence renders the first-divergent-line error. i may be one past
// the end of either slice (a missing or extra tail).
func divergence(got, want []string, i int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "finding snapshot diverges from golden at line %d", i+1)
	if ctx := enclosingTarget(want, got, i); ctx != "" {
		fmt.Fprintf(&b, " (under %q)", ctx)
	}
	b.WriteString(":\n")
	if i < len(want) {
		fmt.Fprintf(&b, "- %s\n", want[i])
	} else {
		fmt.Fprintf(&b, "- <end of golden: %d line(s), got %d>\n", len(want), len(got))
	}
	if i < len(got) {
		fmt.Fprintf(&b, "+ %s", got[i])
	} else {
		fmt.Fprintf(&b, "+ <end of snapshot: %d line(s), golden has %d>", len(got), len(want))
	}
	return fmt.Errorf("%s", b.String())
}

// enclosingTarget finds the nearest preceding top-level section line
// ("target ...", "violations") shared by both sides, for context.
func enclosingTarget(want, got []string, i int) string {
	lines := want
	if i >= len(lines) {
		lines = got
	}
	for j := i; j >= 0 && j < len(lines); j-- {
		if !strings.HasPrefix(lines[j], " ") && !strings.HasPrefix(lines[j], "#") {
			return lines[j]
		}
	}
	return ""
}

// Load reads a golden file into lines (trailing newline tolerated).
func Load(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := strings.TrimSuffix(string(b), "\n")
	if s == "" {
		return nil, nil
	}
	return strings.Split(s, "\n"), nil
}

// Save writes lines as a golden file, newline-terminated.
func Save(path string, lines []string) error {
	return os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644)
}

// Check is the harness entry point: with update set it (re)writes the
// golden file and succeeds; otherwise it loads the file and compares.
// A missing golden file fails with a hint to run with update.
func Check(path string, got []string, update bool) error {
	if update {
		return Save(path, got)
	}
	want, err := Load(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("golden file %s missing (regenerate with the harness's update flag): %w", path, err)
		}
		return err
	}
	if err := Compare(got, want); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
