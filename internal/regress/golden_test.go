package regress_test

import (
	"bufio"
	"flag"
	"os"
	"testing"

	"dice/internal/concolic"
	"dice/internal/core"
	"dice/internal/prop"
	"dice/internal/regress"
	"dice/internal/trace"
)

// The golden regression suite: each committed example carries a
// findings.golden snapshot of its federated round (with witness
// minimization on), and these tests fail — naming the first divergent
// finding — whenever a code change alters what the round reports.
// Regenerate after an intentional change with
//
//	go test ./internal/regress -run TestGolden -update
//
// The same snapshots are reachable from the CLI:
//
//	dice -topology examples/<x>/topo.json -minimize -golden examples/<x>/findings.golden

var update = flag.Bool("update", false, "rewrite the committed example golden files")

// exampleOpts mirrors cmd/dice defaults (-runs 2000) plus -minimize, so
// the committed goldens verify against both this suite and the CLI
// invocation documented in examples/replay/README.md. The run budget
// exhausts the frontier on every example filter, making the finding set
// independent of worker scheduling.
func exampleOpts() core.FederatedOptions {
	return core.FederatedOptions{
		Engine:   concolic.Options{MaxRuns: 2000},
		Workers:  2,
		Minimize: true,
	}
}

func goldenRound(t *testing.T, dir string) []string {
	t.Helper()
	topo, err := core.LoadTopology(dir + "/topo.json")
	if err != nil {
		t.Fatal(err)
	}
	fe, err := core.NewFederatedExperiment(topo, exampleOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	return res.Snapshot()
}

func checkGolden(t *testing.T, dir string, lines []string) {
	t.Helper()
	if err := regress.Check(dir+"/findings.golden", lines, *update); err != nil {
		t.Fatal(err)
	}
	if *update {
		t.Logf("updated %s/findings.golden (%d lines)", dir, len(lines))
	}
}

func TestGoldenFederated(t *testing.T) {
	dir := "../../examples/federated"
	checkGolden(t, dir, goldenRound(t, dir))
}

// TestGoldenPropertyParity is the declarative-oracle acceptance: the
// bundled .prop re-expressions of the route-leak and stale-route
// oracles, loaded as external properties, must reproduce the committed
// goldens byte for byte on both example topologies. Merge slots a
// same-kind property into the builtin's evaluation position, so this
// pins that the declared and hard-coded oracles are one and the same —
// never `go test -update` this by way of fixing a diff here.
func TestGoldenPropertyParity(t *testing.T) {
	for _, dir := range []string{"../../examples/federated", "../../examples/routeleak"} {
		topo, err := core.LoadTopology(dir + "/topo.json")
		if err != nil {
			t.Fatal(err)
		}
		opts := exampleOpts()
		opts.Properties = []string{prop.BuiltinRouteLeakSource, prop.BuiltinStaleRouteSource}
		fe, err := core.NewFederatedExperiment(topo, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fe.Round()
		if err != nil {
			t.Fatal(err)
		}
		if err := regress.Check(dir+"/findings.golden", res.Snapshot(), false); err != nil {
			t.Errorf("%s with declared properties: %v", dir, err)
		}
	}
}

func TestGoldenRouteleak(t *testing.T) {
	dir := "../../examples/routeleak"
	checkGolden(t, dir, goldenRound(t, dir))
}

func TestGoldenBadgadget(t *testing.T) {
	dir := "../../examples/badgadget"
	checkGolden(t, dir, goldenRound(t, dir))
}

// TestGoldenReplay re-runs the committed examples/replay trace through
// the federated example topology (ingress transitA←stub, the first
// explore target) and diffs the resulting finding set — the
// dice -replay ... -golden path, as a test.
func TestGoldenReplay(t *testing.T) {
	f, err := os.Open("../../examples/replay/trace.mrtl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := trace.Read(bufio.NewReader(f))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := core.LoadTopology("../../examples/federated/topo.json")
	if err != nil {
		t.Fatal(err)
	}
	fe, err := core.NewFederatedExperiment(topo, exampleOpts())
	if err != nil {
		t.Fatal(err)
	}
	n, err := fe.Replay("transitA", "stub", records)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(records) {
		t.Fatalf("replayed %d of %d records", n, len(records))
	}
	res, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "../../examples/replay", res.Snapshot())
}
