package regress

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(lines ...string) []string { return lines }

func TestCompareEqual(t *testing.T) {
	got := snap("# hdr", "target a<-b leak", "  finding x")
	if err := Compare(got, snap("# hdr", "target a<-b leak", "  finding x")); err != nil {
		t.Fatalf("equal snapshots diverged: %v", err)
	}
}

func TestCompareNamesFirstDivergentFinding(t *testing.T) {
	want := snap("# hdr", "target a<-b leak", "  finding old", "violations")
	got := snap("# hdr", "target a<-b leak", "  finding new", "violations")
	err := Compare(got, want)
	if err == nil {
		t.Fatal("divergent snapshots compared equal")
	}
	msg := err.Error()
	for _, part := range []string{"line 3", `under "target a<-b leak"`, "-   finding old", "+   finding new"} {
		if !strings.Contains(msg, part) {
			t.Errorf("diff message missing %q:\n%s", part, msg)
		}
	}
}

func TestCompareTailMismatch(t *testing.T) {
	want := snap("# hdr", "target a<-b leak", "  finding x")
	err := Compare(want[:2], want)
	if err == nil || !strings.Contains(err.Error(), "end of snapshot") {
		t.Fatalf("missing-tail divergence not reported: %v", err)
	}
	err = Compare(append(append([]string{}, want...), "  finding extra"), want)
	if err == nil || !strings.Contains(err.Error(), "end of golden") {
		t.Fatalf("extra-tail divergence not reported: %v", err)
	}
}

func TestCheckUpdateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "findings.golden")
	lines := snap("# hdr", "target a<-b leak", "  finding x")
	if err := Check(path, lines, true); err != nil {
		t.Fatal(err)
	}
	if err := Check(path, lines, false); err != nil {
		t.Fatalf("freshly updated golden does not match: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(b), "\n") {
		t.Error("golden file not newline-terminated")
	}
	changed := append(append([]string{}, lines...), "  finding y")
	if err := Check(path, changed, false); err == nil {
		t.Error("changed snapshot passed against stale golden")
	}
}

func TestCheckMissingGoldenHints(t *testing.T) {
	err := Check(filepath.Join(t.TempDir(), "nope.golden"), snap("# hdr"), false)
	if err == nil || !strings.Contains(err.Error(), "update") {
		t.Fatalf("missing golden should hint at the update flag: %v", err)
	}
}
