package dist

import (
	"fmt"
	"io"
	"sync/atomic"
	"testing"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/core"
	"dice/internal/netaddr"
	"dice/internal/telemetry"
)

// countingConn tallies every byte crossing the wire (both directions,
// counted once on the coordinator side).
type countingConn struct {
	io.ReadWriteCloser
	bytes *int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.ReadWriteCloser.Read(p)
	atomic.AddInt64(c.bytes, int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.ReadWriteCloser.Write(p)
	atomic.AddInt64(c.bytes, int64(n))
	return n, err
}

// countingDialer wraps a Dialer so every connection it produces feeds
// the shared byte counter.
type countingDialer struct {
	inner Dialer
	bytes *int64
}

func (d countingDialer) Dial() (io.ReadWriteCloser, error) {
	conn, err := d.inner.Dial()
	if err != nil {
		return nil, err
	}
	return countingConn{ReadWriteCloser: conn, bytes: d.bytes}, nil
}

// benchWitnessSpecs handcrafts k concrete leak witnesses with pairwise
// disjoint prefixes: 10.200.k.0/24 passes the builtin peer_in filter's
// 10.0.0.0/8{24,32} clause, and the NO_EXPORT community arms the
// route-leak oracle on every node it escapes to. All inject at as65002
// as if sent by as65001 — the witness-storm shape a dense exploration
// round produces.
func benchWitnessSpecs(tb testing.TB, k int) []WitnessSpec {
	tb.Helper()
	specs := make([]WitnessSpec, k)
	for i := range specs {
		p, err := netaddr.ParsePrefix(fmt.Sprintf("10.200.%d.0/24", i))
		if err != nil {
			tb.Fatal(err)
		}
		specs[i] = WitnessSpec{
			Node: "as65002", Peer: "as65001",
			Update: &bgp.Update{
				Attrs: bgp.Attrs{
					HasOrigin:   true,
					ASPath:      bgp.ASPath{{Type: bgp.ASSequence, ASNs: []uint16{65001}}},
					HasNextHop:  true,
					NextHop:     netaddr.AddrFrom4(10, 0, 0, 1),
					Communities: []uint32{bgp.CommunityNoExport},
				},
				NLRI: []netaddr.Prefix{p},
			},
		}
	}
	return specs
}

// BenchmarkWireRound measures the wire-dominated phase of a distributed
// round — a 16-witness cross-domain check storm — in three transport
// modes over loopback agents:
//
//	v1-json:   JSON framing, one call in flight, fresh shadow set per
//	           witness (the PR4 call-and-wait transport, via
//	           WithMaxVersion(1)+WithCallAndWait)
//	v2-binary: binary framing, same call-and-wait discipline — isolates
//	           the codec win
//	v2-full:   binary framing + pipelining + relay batching + shared
//	           shadow sets — the protocol v2 default
//
// Exploration is excluded on purpose: its compute is identical across
// modes and would only dilute the transport signal. wire-B/op reports
// bytes on the wire per checked storm; BENCH_PR6.json tracks v2-full
// against the v1-json baseline (acceptance: ≥2× on line-3-dense).
func BenchmarkWireRound(b *testing.B) {
	shapes := []struct {
		name string
		topo *core.Topology
	}{
		{"line-3-dense", core.DenseLineTopology(3, 256)},
		{"mesh-5", core.MeshTopology(5)},
	}
	modes := []struct {
		name  string
		copts []ConnOption
	}{
		{"v1-json", []ConnOption{WithMaxVersion(ProtoV1), WithCallAndWait()}},
		{"v2-binary", []ConnOption{WithCallAndWait()}},
		{"v2-full", nil},
	}
	for _, sh := range shapes {
		// Fabric build and convergence are setup; the agents are reused
		// across modes (shadow clones are per-check state, torn down by
		// every CheckWitnesses call).
		agents := make([]*Agent, 0, len(sh.topo.Nodes))
		for _, n := range sh.topo.Nodes {
			ag, err := NewAgent(sh.topo, n.Name)
			if err != nil {
				b.Fatal(err)
			}
			agents = append(agents, ag)
		}
		specs := benchWitnessSpecs(b, 16)
		for _, mode := range modes {
			b.Run(sh.name+"/"+mode.name, func(b *testing.B) {
				var wireBytes int64
				dialers := make([]Dialer, len(agents))
				for i, ag := range agents {
					dialers[i] = countingDialer{inner: Loopback{Agent: ag}, bytes: &wireBytes}
				}
				coord, err := Connect(sh.topo, core.FederatedOptions{}, dialers, mode.copts...)
				if err != nil {
					b.Fatal(err)
				}
				defer coord.Close()
				// Sanity: the witnesses must actually propagate and leak,
				// or the storm measures nothing.
				outs, err := coord.CheckWitnesses(specs[:1])
				if err != nil {
					b.Fatal(err)
				}
				if outs[0].Steps < 2 || len(outs[0].Violations) == 0 {
					b.Fatalf("bench witness inert: %d steps, %d violations", outs[0].Steps, len(outs[0].Violations))
				}
				violations := 0
				b.ResetTimer()
				atomic.StoreInt64(&wireBytes, 0)
				for i := 0; i < b.N; i++ {
					outs, err := coord.CheckWitnesses(specs)
					if err != nil {
						b.Fatal(err)
					}
					violations = 0
					for _, out := range outs {
						violations += len(out.Violations)
					}
				}
				b.ReportMetric(float64(atomic.LoadInt64(&wireBytes))/float64(b.N), "wire-B/op")
				b.ReportMetric(float64(violations), "violations")
			})
		}
	}
}

// BenchmarkTelemetryOverhead measures full instrumentation — RPC
// metrics, per-call spans, agent-side counters, concolic round metrics —
// against the nil no-op path on a complete line-3-dense federated
// round. The PR 9 acceptance is instrumented within 5% of noop; the
// mechanism is that every telemetry hook starts with a nil-receiver
// check, so the noop leg never takes a timestamp or touches an atomic.
func BenchmarkTelemetryOverhead(b *testing.B) {
	topo := core.DenseLineTopology(3, 256)
	for _, mode := range []struct {
		name         string
		instrumented bool
	}{
		{"noop", false},
		{"instrumented", true},
	} {
		b.Run("line-3-dense/"+mode.name, func(b *testing.B) {
			var copts []ConnOption
			var reg *telemetry.Registry
			if mode.instrumented {
				reg = telemetry.NewRegistry()
				copts = append(copts, WithTelemetry(NewMetrics(reg)), WithTracer(telemetry.NewTracer()))
			}
			// Fresh agents per mode: reused exploration state would hand
			// whichever mode runs second a cheaper round.
			dialers := make([]Dialer, 0, len(topo.Nodes))
			for _, n := range topo.Nodes {
				ag, err := NewAgent(topo, n.Name)
				if err != nil {
					b.Fatal(err)
				}
				if mode.instrumented {
					ag.EnableTelemetry(reg)
				}
				dialers = append(dialers, Loopback{Agent: ag})
			}
			coord, err := Connect(topo, core.FederatedOptions{
				Engine:  concolic.Options{MaxRuns: 400},
				Workers: 2,
			}, dialers, copts...)
			if err != nil {
				b.Fatal(err)
			}
			defer coord.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Round(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
