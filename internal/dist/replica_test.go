package dist

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dice/internal/core"
)

// replicaPool builds a pool of n in-process replicas over the pipe
// transport — the replica counterpart of loopbackCoordinator's dialers.
func replicaPool(n int) *ReplicaPool {
	p := &ReplicaPool{}
	for i := 0; i < n; i++ {
		p.Dialers = append(p.Dialers, ReplicaLoopback{Replica: NewReplica()})
	}
	return p
}

// tcpReplicaPool serves n replicas on real sockets and returns a pool of
// TCP dialers, mirroring TestDistributedTCP's agent setup.
func tcpReplicaPool(t *testing.T, n int) *ReplicaPool {
	t.Helper()
	p := &ReplicaPool{}
	for i := 0; i < n; i++ {
		r := NewReplica()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go r.ListenAndServe(ln) //nolint:errcheck // ends when ln closes
		p.Dialers = append(p.Dialers, TCPDialer{Addr: ln.Addr().String()})
	}
	return p
}

// TestReplicaRoundParity is the replica acceptance criterion: a round
// whose exploration phase runs on a replica pool — checkpoint and seed
// shipped over the wire, findings shipped back — must reproduce the
// 0-replica round finding for finding on both example topologies, over
// both transports and both codecs.
func TestReplicaRoundParity(t *testing.T) {
	for _, topoPath := range []string{
		"../../examples/federated/topo.json",
		"../../examples/routeleak/topo.json",
	} {
		topo, err := core.LoadTopology(topoPath)
		if err != nil {
			t.Fatal(err)
		}
		clean := loopbackCoordinator(t, topo, fedOpts())
		cleanRes, err := clean.Round()
		if err != nil {
			t.Fatal(err)
		}
		want := strings.Join(cleanRes.Snapshot(), "\n")
		if len(cleanRes.Violations) == 0 {
			t.Fatalf("%s: parity vacuous: the 0-replica round found no violations", topo.Name)
		}

		cases := []struct {
			name  string
			pool  func(t *testing.T) *ReplicaPool
			copts []ConnOption
		}{
			{"v2-loopback", func(*testing.T) *ReplicaPool { return replicaPool(2) }, nil},
			{"v1-loopback", func(*testing.T) *ReplicaPool { return replicaPool(2) },
				[]ConnOption{WithMaxVersion(ProtoV1), WithCallAndWait()}},
			{"v2-tcp", func(t *testing.T) *ReplicaPool { return tcpReplicaPool(t, 2) }, nil},
		}
		for _, tc := range cases {
			t.Run(topo.Name+"/"+tc.name, func(t *testing.T) {
				pool := tc.pool(t)
				copts := append([]ConnOption{WithReplicas(pool)}, tc.copts...)
				coord := loopbackCoordinator(t, topo, fedOpts(), copts...)
				res, err := coord.Round()
				if err != nil {
					t.Fatal(err)
				}
				if got := strings.Join(res.Snapshot(), "\n"); got != want {
					t.Errorf("replica round snapshot diverged:\n--- 0 replicas ---\n%s\n--- pool ---\n%s", want, got)
				}
				// The pool, not the agents, must have explored every
				// non-skipped target — otherwise the parity above is the
				// fallback path shadowing a broken replica path.
				ran := 0
				for _, tr := range res.Targets {
					if tr.Skipped == "" {
						ran++
					}
				}
				if st := pool.Stats(); st.Completed != ran {
					t.Errorf("pool completed %d shards, want %d (one per explored target)", st.Completed, ran)
				}
				for n, h := range res.Health {
					if h.State != HealthHealthy {
						t.Errorf("node %s ended %q, want healthy", n, h.State)
					}
				}
			})
		}
	}
}

// TestReplicaWarmRounds: the frontier memory a replica returns with each
// shard must round-trip through the coordinator's warm cache back into
// the next round's shipment — the second round explores warm even though
// the agents themselves never ran the exploration.
func TestReplicaWarmRounds(t *testing.T) {
	opts := fedOpts()
	opts.ReuseState = true
	pool := replicaPool(2)
	coord := loopbackCoordinator(t, leakTopo3(), opts, WithReplicas(pool))
	if _, err := coord.Round(); err != nil {
		t.Fatal(err)
	}
	warm, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}
	ex := warm.Targets[0].Explore
	if ex.NewPaths != 0 {
		t.Errorf("warm replica round reported %d new paths, want 0", ex.NewPaths)
	}
	if ex.SkippedNegations == 0 {
		t.Error("warm replica round skipped no negations — the warm cache never shipped")
	}
	if st := pool.Stats(); st.Completed != 2 {
		t.Errorf("pool completed %d shards over two rounds, want 2", st.Completed)
	}
}

// TestReplicaPoolAutoscale drives the pool directly: with Min 1 and a
// backlog of concurrent shards, each behind a WAN-latency connection,
// the pool must recruit extra replicas — and an unbound pool must refuse
// to accept work at all.
func TestReplicaPoolAutoscale(t *testing.T) {
	leakCheck(t)
	if _, err := (&ReplicaPool{Dialers: []Dialer{ReplicaLoopback{Replica: NewReplica()}}}).submit(nil); err == nil {
		t.Error("unbound pool accepted a shard")
	}

	pool := &ReplicaPool{Min: 1}
	for i := 0; i < 4; i++ {
		pool.Dialers = append(pool.Dialers, LatencyDialer{
			Inner: ReplicaLoopback{Replica: NewReplica()},
			RTT:   40 * time.Millisecond,
		})
	}
	if err := pool.bind(7, ProtoLatest, chaosPolicy()); err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := pool.bind(7, ProtoLatest, chaosPolicy()); err == nil {
		t.Error("pool bound twice")
	}

	// Shards carrying an unparseable config: the replica answers each
	// with an application error, which still exercises the queue, the
	// latency, and the autoscaler.
	const shards = 8
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = pool.submit(&ReplicaExploreParams{
				Node: "bogus", Config: []string{"not a router config"},
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("shard %d: garbage config explored successfully", i)
		}
		if errors.Is(err, ErrReplicaPoolDown) {
			t.Fatalf("shard %d: pool died on an application error: %v", i, err)
		}
	}
	st := pool.Stats()
	if st.Completed != shards {
		t.Errorf("pool completed %d shards, want %d", st.Completed, shards)
	}
	if st.Scaled == 0 {
		t.Errorf("backlog of %d shards over %d-worker minimum never autoscaled: %+v", shards, 1, st)
	}
	if st.Started != st.Scaled+1 {
		t.Errorf("started %d workers with 1 initial and %d scaled", st.Started, st.Scaled)
	}
}

// deadAfterFirstDial passes one dial through and refuses the rest — the
// "replica stays dead" schedule for work-stealing tests.
func deadAfterFirstDial(inner Dialer) *FaultDialer {
	return &FaultDialer{Inner: inner, Plan: &FaultPlan{FailDialsFrom: 1}}
}

// TestReplicaWorkStealing kills a replica the instant its first
// explore_checkpoint request is written and refuses every redial: the
// pool must steal the orphaned shard back, recruit the standby replica,
// and land on the fault-free snapshot — the replica-side analogue of
// TestAgentDiesMidCall, with the recovery in the pool instead of the
// connection ladder.
func TestReplicaWorkStealing(t *testing.T) {
	leakCheck(t)
	clean := loopbackCoordinator(t, leakTopo3(), fedOpts())
	cleanRes, err := clean.Round()
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(cleanRes.Snapshot(), "\n")

	kd := &killDialer{
		inner:  deadAfterFirstDial(ReplicaLoopback{Replica: NewReplica()}),
		method: MethodExploreCheckpoint,
	}
	pool := &ReplicaPool{
		// Min 1: the doomed replica is the only worker when the shard
		// arrives, so the kill always fires; the standby joins only when
		// the dying worker hands its shard back.
		Dialers: []Dialer{kd, ReplicaLoopback{Replica: NewReplica()}},
		Min:     1,
	}
	coord := loopbackCoordinator(t, leakTopo3(), fedOpts(),
		WithReplicas(pool), WithRetryPolicy(chaosPolicy()))
	res, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}
	if !kd.fired() {
		t.Fatal("the round never issued explore_checkpoint to the doomed replica — kill case vacuous")
	}
	if got := strings.Join(res.Snapshot(), "\n"); got != want {
		t.Errorf("snapshot diverged after replica kill:\n--- clean ---\n%s\n--- stolen ---\n%s", want, got)
	}
	st := pool.Stats()
	if st.Requeues == 0 {
		t.Errorf("no shard was stolen back from the dead replica: %+v", st)
	}
	if st.Started != 2 {
		t.Errorf("pool started %d workers, want 2 (victim + recruited standby): %+v", st.Started, st)
	}
	for n, h := range res.Health {
		if h.State != HealthHealthy {
			t.Errorf("agent %s ended %q — replica faults must not touch agent health", n, h.State)
		}
	}
}

// TestReplicaPoolDownDegradesToAgents: when the last replica dies with
// no standby, the pool reports itself down and the round's exploration
// falls back to the owning agents — same findings, degraded locality,
// never a failed round.
func TestReplicaPoolDownDegradesToAgents(t *testing.T) {
	leakCheck(t)
	clean := loopbackCoordinator(t, leakTopo3(), fedOpts())
	cleanRes, err := clean.Round()
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(cleanRes.Snapshot(), "\n")

	kd := &killDialer{
		inner:  deadAfterFirstDial(ReplicaLoopback{Replica: NewReplica()}),
		method: MethodExploreCheckpoint,
	}
	pool := &ReplicaPool{Dialers: []Dialer{kd}}
	coord := loopbackCoordinator(t, leakTopo3(), fedOpts(),
		WithReplicas(pool), WithRetryPolicy(chaosPolicy()))
	res, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}
	if !kd.fired() {
		t.Fatal("the round never issued explore_checkpoint — kill case vacuous")
	}
	if got := strings.Join(res.Snapshot(), "\n"); got != want {
		t.Errorf("snapshot diverged after pool death:\n--- clean ---\n%s\n--- degraded ---\n%s", want, got)
	}
	st := pool.Stats()
	if st.Active != 0 {
		t.Errorf("dead pool reports %d active workers", st.Active)
	}
	// A later round must not hang on the dead pool either.
	res2, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res2.Snapshot(), "\n"); got != want {
		t.Errorf("second round against a dead pool diverged:\n--- clean ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestAgentDiesMidCheckpointFetch kills the agent's connection the
// instant the coordinator's checkpoint request is written: the recovery
// ladder must reconnect and the retried fetch must answer from the
// agent's page-table path, leaving the replica round at parity.
func TestAgentDiesMidCheckpointFetch(t *testing.T) {
	leakCheck(t)
	clean := loopbackCoordinator(t, leakTopo3(), fedOpts())
	cleanRes, err := clean.Round()
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(cleanRes.Snapshot(), "\n")

	topo := leakTopo3()
	var dialers []Dialer
	var kd *killDialer
	for _, n := range topo.Nodes {
		ag, err := NewAgent(topo, n.Name)
		if err != nil {
			t.Fatal(err)
		}
		var d Dialer = Loopback{Agent: ag}
		if n.Name == "provider" {
			kd = &killDialer{inner: d, method: MethodCheckpoint}
			d = kd
		}
		dialers = append(dialers, d)
	}
	pool := replicaPool(2)
	coord, err := Connect(topo, fedOpts(), dialers, WithReplicas(pool), WithRetryPolicy(chaosPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	res, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}
	if !kd.fired() {
		t.Fatal("the round never fetched a checkpoint from provider — kill case vacuous")
	}
	if got := strings.Join(res.Snapshot(), "\n"); got != want {
		t.Errorf("snapshot diverged after mid-checkpoint kill:\n--- clean ---\n%s\n--- faulty ---\n%s", want, got)
	}
	if h := res.Health["provider"]; h.Reconnects == 0 {
		t.Errorf("provider health records no reconnect: %+v", h)
	}
}

// TestWarmHandoffAfterDegrade is the warm-handoff acceptance: a node
// whose agent dies past the reconnect budget AND whose replica pool is
// gone must explore round 2 on its degraded replacement agent seeded
// from the warm cache the replicas built in round 1 — warm (frontier
// skips, no new paths), not cold, and at parity with an all-healthy
// two-round run.
func TestWarmHandoffAfterDegrade(t *testing.T) {
	leakCheck(t)
	opts := fedOpts()
	opts.ReuseState = true

	// Reference: two healthy rounds, no replicas.
	ref := loopbackCoordinator(t, leakTopo3(), opts)
	if _, err := ref.Round(); err != nil {
		t.Fatal(err)
	}
	refWarm, err := ref.Round()
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(refWarm.Snapshot(), "\n")

	topo := leakTopo3()
	var dialers []Dialer
	for _, n := range topo.Nodes {
		ag, err := NewAgent(topo, n.Name)
		if err != nil {
			t.Fatal(err)
		}
		var d Dialer = Loopback{Agent: ag}
		if n.Name == "provider" {
			// Connection 0 is clean; once it dies, every redial is
			// refused — the agent stays dead.
			d = deadAfterFirstDial(d)
		}
		dialers = append(dialers, d)
	}
	pool := replicaPool(1)
	coord, err := Connect(topo, opts, dialers, WithReplicas(pool), WithRetryPolicy(chaosPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.Round(); err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.Completed != 1 {
		t.Fatalf("round 1 explored %d shards on the pool, want 1", st.Completed)
	}

	// Between rounds the whole exploration substrate dies: the pool
	// closes and provider's agent connection drops with no redial
	// allowed. Round 2 must degrade provider to an in-process
	// replacement — and hand it the warm state its shard accumulated on
	// the replicas.
	pool.Close()
	cl, _ := coord.conns["provider"].current()
	cl.Close()

	res, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}
	if h := res.Health["provider"]; h.State != HealthDegraded {
		t.Fatalf("provider ended %q, want degraded: %+v", h.State, h)
	}
	ex := res.Targets[0].Explore
	if ex.NewPaths != 0 {
		t.Errorf("degraded replacement explored cold: %d new paths, want 0", ex.NewPaths)
	}
	if ex.SkippedNegations == 0 {
		t.Error("degraded replacement reports no frontier skips — warm state never reached it")
	}
	if got := strings.Join(res.Snapshot(), "\n"); got != want {
		t.Errorf("warm-handoff snapshot diverged:\n--- healthy warm round ---\n%s\n--- degraded ---\n%s", want, got)
	}
}

// TestSeedExploreState: frontier memory exported by a replica must
// decode and attach to a fresh agent, whose next ReuseState explore
// runs warm; garbage must be refused.
func TestSeedExploreState(t *testing.T) {
	topo := leakTopo3()
	ck, seed := checkpointAndSeed(t, topo)
	r := NewReplica()
	boundary, err := topo.BoundaryCommunity()
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.explore(ReplicaExploreParams{
		Node: "provider", Config: topo.Nodes[1].Config, State: ck,
		Peer: "customer", Scenario: core.ScenarioRouteLeak, Explicit: true,
		MaxRuns: 1000, Boundary: boundary, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.WarmState) == 0 {
		t.Fatal("replica explore returned no warm state")
	}

	ag, err := NewAgent(topo, "provider")
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.SeedExploreState(core.ScenarioRouteLeak, "customer", []byte("garbage")); err == nil {
		t.Error("SeedExploreState accepted undecodable bytes")
	}
	if err := ag.SeedExploreState(core.ScenarioRouteLeak, "customer", out.WarmState); err != nil {
		t.Fatal(err)
	}
	conn, err := (Loopback{Agent: ag}).Dial()
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn)
	defer cl.Close()
	var ex ExploreResult
	err = cl.Call(MethodExplore, &ExploreParams{
		Peer: "customer", Scenario: core.ScenarioRouteLeak, Explicit: true,
		MaxRuns: 1000, ReuseState: true,
	}, &ex)
	if err != nil {
		t.Fatal(err)
	}
	if ex.NewPaths != 0 || ex.SkippedNegations == 0 {
		t.Errorf("seeded agent explored cold: %d new paths, %d skipped negations", ex.NewPaths, ex.SkippedNegations)
	}
}

// checkpointAndSeed fetches a provider checkpoint and its
// provider←customer scenario seed over the wire, for tests that build
// ReplicaExploreParams by hand.
func checkpointAndSeed(t *testing.T, topo *core.Topology) (state, seed []byte) {
	t.Helper()
	ag, err := NewAgent(topo, "provider")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := (Loopback{Agent: ag}).Dial()
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn)
	defer cl.Close()
	var ck CheckpointResult
	if err := cl.Call(MethodCheckpoint, nil, &ck); err != nil {
		t.Fatal(err)
	}
	var sr SeedResult
	if err := cl.Call(MethodSeed, &SeedParams{Peer: "customer", Scenario: core.ScenarioRouteLeak}, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Missing != "" || sr.Unsupported || len(sr.Msg) == 0 {
		t.Fatalf("no shippable seed: %+v", sr)
	}
	return ck.State, sr.Msg
}

// TestReplicaSessionScopedMemos mirrors TestSessionScopedExploreMemos on
// the replica: the (Shard, Round) idempotency memo must answer retries
// within one coordinator session and be dropped when a new session
// nonce arrives — a second dice run's round 1 must re-execute, not read
// the first run's shard answer.
func TestReplicaSessionScopedMemos(t *testing.T) {
	topo := leakTopo3()
	ck, seed := checkpointAndSeed(t, topo)
	boundary, err := topo.BoundaryCommunity()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplica()
	dial := func(session uint64) *Client {
		t.Helper()
		conn, err := (ReplicaLoopback{Replica: r}).Dial()
		if err != nil {
			t.Fatal(err)
		}
		cl := NewClient(conn)
		cl.Session = session
		if _, err := cl.Handshake(ProtoLatest); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	explore := func(cl *Client, maxRuns int) ReplicaExploreResult {
		t.Helper()
		var out ReplicaExploreResult
		err := cl.Call(MethodExploreCheckpoint, &ReplicaExploreParams{
			Node: "provider", Config: topo.Nodes[1].Config, State: ck,
			Peer: "customer", Scenario: core.ScenarioRouteLeak, Explicit: true,
			MaxRuns: maxRuns, Boundary: boundary, Seed: seed,
			Round: 1, Shard: warmKey("provider", core.ScenarioRouteLeak, "customer"),
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	first := explore(dial(111), 500)
	if first.Runs <= 1 {
		t.Fatalf("reference explore finished in %d runs; the memo checks below need a multi-run exploration", first.Runs)
	}
	// Same session, new connection (a pool worker reconnecting): the
	// memo answers even though the params now cap the engine at one run.
	if out := explore(dial(111), 1); out.Runs != first.Runs {
		t.Errorf("same-session retry re-executed: %d runs, want memoized %d", out.Runs, first.Runs)
	}
	// New session: its own round 1 must not read the old memo.
	if out := explore(dial(222), 1); out.Runs == first.Runs {
		t.Errorf("new session answered from the previous session's memo (%d runs)", out.Runs)
	}
}

// TestReplicaRefusesAgentMethods: a replica is not an agent — node-bound
// methods must fail loudly rather than answer nonsense, and Connect must
// reject a replica dialed where an agent was expected.
func TestReplicaRefusesAgentMethods(t *testing.T) {
	conn, err := (ReplicaLoopback{Replica: NewReplica()}).Dial()
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn)
	defer cl.Close()
	if _, err := cl.Handshake(ProtoLatest); err != nil {
		t.Fatal(err)
	}
	var ex ExploreResult
	if err := cl.Call(MethodExplore, &ExploreParams{Peer: "customer"}, &ex); err == nil {
		t.Error("replica answered a node-bound explore")
	} else if !strings.Contains(err.Error(), "does not serve") {
		t.Errorf("unexpected refusal: %v", err)
	}

	topo := leakTopo3()
	dialers := []Dialer{ReplicaLoopback{Replica: NewReplica()}}
	for _, n := range topo.Nodes[1:] {
		ag, err := NewAgent(topo, n.Name)
		if err != nil {
			t.Fatal(err)
		}
		dialers = append(dialers, Loopback{Agent: ag})
	}
	if _, err := Connect(topo, fedOpts(), dialers); err == nil {
		t.Error("Connect accepted a replica in the agent fleet")
	}
}
