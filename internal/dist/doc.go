// Package dist is the distributed node-agent backend: federated
// exploration rounds (see internal/core, federated.go) cut along the
// fleet scheduler's per-node shard seam and run over a real RPC
// boundary, so the paper's §2.4 system model — online testing across
// *independently administered* nodes — exists in the process structure,
// not just in the data model.
//
// The split:
//
//   - An Agent administers ONE node of a topology. It instantiates the
//     topology locally (netsim convergence is deterministic, so every
//     agent's picture of the converged fabric is identical) but owns and
//     serves only its own node: its checkpoint snapshots, its concolic
//     exploration shard with per-node cross-round ExploreState, its
//     shadow clones for witness propagation, and the narrow per-node
//     oracle queries. Nothing else about the node — its RIB, its policy
//     configuration object, its engine — crosses the wire.
//
//   - A Coordinator drives multi-round federated exploration by
//     orchestrating agents over the wire protocol: it resolves the
//     round's explore targets (core.ResolveTargets — the same resolution
//     the in-process backend uses), fans Explore calls out to the
//     owning agents, dedups and caps the returned concrete
//     UPDATE/WITHDRAW witnesses, relays witness propagation between
//     domains message by message (a latency-ordered event queue
//     replaces netsim as the inter-domain scheduler), and aggregates
//     witness-attributed cross-node oracle verdicts into the same
//     core.FederatedResult the in-process backend produces. A parity
//     test (dist_test.go) holds the two backends to the same findings.
//
// Transports: the wire protocol (wire.go) runs over any
// io.ReadWriteCloser. Loopback (net.Pipe against an in-process Agent)
// gives deterministic single-process tests; TCP gives real process
// separation (cmd/dicenode is the agent binary, cmd/dice -distributed
// the coordinator).
package dist
