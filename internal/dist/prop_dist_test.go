package dist

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"

	"dice/internal/core"
	"dice/internal/prop"
)

// TestDistributedPropertyGoldenParity is the tentpole acceptance for
// the distributed backend: loading the bundled .prop re-expressions of
// the route-leak and stale-route oracles as external properties must
// leave the canonical snapshot byte-identical to the hard-coded round —
// on both committed example topologies, over both codecs. The property
// sources cross the wire in hello and the oracle verdicts come back
// through the same fact-collection RPCs either way, so any drift
// between the declarative and the built-in oracle shows up here as a
// snapshot diff.
func TestDistributedPropertyGoldenParity(t *testing.T) {
	bundled := []string{prop.BuiltinRouteLeakSource, prop.BuiltinStaleRouteSource}
	for _, topoPath := range []string{
		"../../examples/federated/topo.json",
		"../../examples/routeleak/topo.json",
	} {
		topo, err := core.LoadTopology(topoPath)
		if err != nil {
			t.Fatal(err)
		}
		fe, err := core.NewFederatedExperiment(topo, fedOpts())
		if err != nil {
			t.Fatal(err)
		}
		inproc, err := fe.Round()
		if err != nil {
			t.Fatal(err)
		}
		want := strings.Join(inproc.Snapshot(), "\n")
		if len(inproc.Violations) == 0 {
			t.Fatalf("%s: parity vacuous: the hard-coded round found no violations", topo.Name)
		}

		cases := []struct {
			name  string
			copts []ConnOption
		}{
			{"binary", nil},
			{"v1-json", []ConnOption{WithMaxVersion(ProtoV1), WithCallAndWait()}},
		}
		for _, tc := range cases {
			t.Run(topo.Name+"/"+tc.name, func(t *testing.T) {
				opts := fedOpts()
				opts.Properties = bundled
				coord := loopbackCoordinator(t, topo, opts, tc.copts...)
				res, err := coord.Round()
				if err != nil {
					t.Fatal(err)
				}
				if got := strings.Join(res.Snapshot(), "\n"); got != want {
					t.Errorf("declared-property snapshot diverged from hard-coded oracles:\n--- hard-coded in-process ---\n%s\n--- declared distributed ---\n%s", want, got)
				}
			})
		}
	}
}

// atProps is a custom property set whose `at` clause the distributed
// backend can only answer remotely (query_oracle WantProps): the leaked
// route must still carry the boundary community where it was installed,
// and the forward path must never traverse the upstream AS. Both fire
// on leakTopo3's confirmed leak.
func atProps() []string {
	return []string{
		`property leak_still_tagged { kind "leak-tagged"; when community boundary; at community boundary; assert never installed; }`,
		`property avoid_upstream { kind "avoid-upstream"; when community boundary; assert never reachable via 65003; }`,
	}
}

// TestDistributedPropertyAtParity pins the remote `at` path: a custom
// property with an `at` route predicate must produce the same snapshot
// distributed (agents answering per-property verdicts over the wire)
// as in-process (the evaluator reading the installed route directly) —
// and must actually fire, so the parity is not vacuous.
func TestDistributedPropertyAtParity(t *testing.T) {
	opts := fedOpts()
	opts.Properties = atProps()

	fe, err := core.NewFederatedExperiment(leakTopo3(), opts)
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(inproc.Snapshot(), "\n")
	kinds := map[string]int{}
	for _, v := range inproc.Violations {
		kinds[v.Kind]++
	}
	if kinds["leak-tagged"] == 0 || kinds["avoid-upstream"] == 0 {
		t.Fatalf("custom properties never fired in-process; violations: %v", inproc.Violations)
	}

	coord := loopbackCoordinator(t, leakTopo3(), opts)
	for node, v := range coord.Versions() {
		if v < ProtoV4 {
			t.Fatalf("node %s negotiated v%d; at-clause checking needs ≥ v%d", node, v, ProtoV4)
		}
	}
	res, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.Snapshot(), "\n"); got != want {
		t.Errorf("at-property snapshot diverged:\n--- in-process ---\n%s\n--- distributed ---\n%s", want, got)
	}
}

// TestConnectAtPropertyVersionGate: a property whose `at` clause needs
// remote verdicts cannot be checked against agents that negotiated a
// pre-v4 protocol — Connect must fail fast instead of silently
// evaluating the clause as a conservative match.
func TestConnectAtPropertyVersionGate(t *testing.T) {
	topo := leakTopo3()
	opts := fedOpts()
	opts.Properties = atProps()
	var dialers []Dialer
	for _, n := range topo.Nodes {
		ag, err := NewAgent(topo, n.Name)
		if err != nil {
			t.Fatal(err)
		}
		ag.MaxProtoVersion = ProtoV3
		dialers = append(dialers, Loopback{Agent: ag})
	}
	_, err := Connect(topo, opts, dialers)
	if err == nil {
		t.Fatal("Connect accepted at-clause properties over a v3 fleet")
	}
	if !strings.Contains(err.Error(), "wire protocol") {
		t.Errorf("gate error %q does not name the wire protocol requirement", err)
	}

	// The same properties over a current fleet connect fine — the gate
	// keys on the negotiated version, not on the properties alone.
	coord := loopbackCoordinator(t, topo, opts)
	if coord == nil {
		t.Fatal("current fleet refused at-clause properties")
	}

	// And a malformed property fails Connect with the parser's line
	// diagnostics, whichever protocol the fleet speaks.
	bad := fedOpts()
	bad.Properties = []string{"property broken {\n kind 42;\n}"}
	var fresh []Dialer
	for _, n := range topo.Nodes {
		ag, err := NewAgent(topo, n.Name)
		if err != nil {
			t.Fatal(err)
		}
		fresh = append(fresh, Loopback{Agent: ag})
	}
	if _, err := Connect(topo, bad, fresh); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("Connect(malformed property) = %v, want a line-2 parse error", err)
	}
}

// fatLeakTopo3 is leakTopo3 with the customer announcing 48 extra /24
// networks: the provider's RIB — and so its shipped checkpoint — grows
// to a few KiB, enough that page-versus-hash shipment differences
// dominate protocol framing. (The committed example topologies
// checkpoint in ~200 bytes, below one page hash's own cost.)
func fatLeakTopo3() *core.Topology {
	topo := leakTopo3()
	nets := make([]string, 0, 48)
	for i := 0; i < 48; i++ {
		nets = append(nets, fmt.Sprintf("network 10.0.%d.0/24;", i))
	}
	cfg := topo.Nodes[0].Config
	topo.Nodes[0].Config = append(append(append([]string{}, cfg[:3]...), nets...), cfg[3:]...)
	return topo
}

// TestReplicaPageCacheWarmRounds is the paging acceptance at fleet
// level: the same two-round ReuseState schedule runs once against a
// paged (v4) replica and once against a v3-capped one. Both must land
// on the unpaged fleet's snapshot, and the only wire difference between
// the schedules is the second checkpoint shipment — full state to the
// v3 replica, content hashes to the paged one — so the paged schedule
// must move strictly fewer bytes.
func TestReplicaPageCacheWarmRounds(t *testing.T) {
	opts := fedOpts()
	opts.ReuseState = true

	ref := loopbackCoordinator(t, fatLeakTopo3(), opts)
	if _, err := ref.Round(); err != nil {
		t.Fatal(err)
	}
	refWarm, err := ref.Round()
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(refWarm.Snapshot(), "\n")

	twoRounds := func(t *testing.T, r *Replica) (snapshot string, wired int64) {
		t.Helper()
		var wire int64
		pool := &ReplicaPool{Dialers: []Dialer{
			countingDialer{inner: ReplicaLoopback{Replica: r}, bytes: &wire},
		}}
		coord := loopbackCoordinator(t, fatLeakTopo3(), opts, WithReplicas(pool))
		if _, err := coord.Round(); err != nil {
			t.Fatal(err)
		}
		res, err := coord.Round()
		if err != nil {
			t.Fatal(err)
		}
		if st := pool.Stats(); st.Completed != 2 {
			t.Fatalf("pool completed %d shards over two rounds, want 2", st.Completed)
		}
		return strings.Join(res.Snapshot(), "\n"), atomic.LoadInt64(&wire)
	}

	paged, pagedWire := twoRounds(t, NewReplica())
	capped := NewReplica()
	capped.MaxProtoVersion = ProtoV3
	unpaged, unpagedWire := twoRounds(t, capped)

	if paged != want {
		t.Errorf("paged warm round diverged:\n--- no replicas ---\n%s\n--- paged ---\n%s", want, paged)
	}
	if unpaged != want {
		t.Errorf("v3-replica warm round diverged:\n--- no replicas ---\n%s\n--- v3 ---\n%s", want, unpaged)
	}
	if pagedWire >= unpagedWire {
		t.Errorf("paged schedule moved %d bytes, v3 schedule %d — the page cache saved nothing", pagedWire, unpagedWire)
	}
}

// writeCountingConn counts only the bytes written toward the replica,
// isolating request traffic from the (identically sized) results.
type writeCountingConn struct {
	io.ReadWriteCloser
	n *int64
}

func (w writeCountingConn) Write(p []byte) (int, error) {
	n, err := w.ReadWriteCloser.Write(p)
	atomic.AddInt64(w.n, int64(n))
	return n, err
}

// TestReplicaPageCacheWireReduction is the counting-dialer acceptance
// in its sharpest form: two identical exploreCalls on one connection
// differ only in page shipment — the first carries every page of the
// checkpoint, the second only their hashes — so the second call's
// request bytes must drop by at least half the state size.
func TestReplicaPageCacheWireReduction(t *testing.T) {
	topo := leakTopo3()
	ck, seed := checkpointAndSeed(t, topo)
	boundary, err := topo.BoundaryCommunity()
	if err != nil {
		t.Fatal(err)
	}
	conn, err := (ReplicaLoopback{Replica: NewReplica()}).Dial()
	if err != nil {
		t.Fatal(err)
	}
	var written int64
	cl := NewClient(writeCountingConn{ReadWriteCloser: conn, n: &written})
	defer cl.Close()
	cl.Session = 32
	if _, err := cl.Handshake(ProtoLatest); err != nil {
		t.Fatal(err)
	}

	params := &ReplicaExploreParams{
		Node: "provider", Config: topo.Nodes[1].Config, State: ck,
		Peer: "customer", Scenario: core.ScenarioRouteLeak, Explicit: true,
		MaxRuns: 1000, Boundary: boundary, Seed: seed,
	}
	pool := &ReplicaPool{}
	acked := make(map[string]struct{})
	atomic.StoreInt64(&written, 0)
	var out ReplicaExploreResult
	if err := pool.exploreCall(cl, params, acked, &out); err != nil {
		t.Fatal(err)
	}
	first := atomic.LoadInt64(&written)

	atomic.StoreInt64(&written, 0)
	var again ReplicaExploreResult
	if err := pool.exploreCall(cl, params, acked, &again); err != nil {
		t.Fatal(err)
	}
	second := atomic.LoadInt64(&written)

	if len(out.Findings) == 0 || len(again.Findings) != len(out.Findings) {
		t.Fatalf("explores disagree: %d then %d findings", len(out.Findings), len(again.Findings))
	}
	if saved := first - second; saved < int64(len(ck))/2 {
		t.Errorf("repeat shipment saved %d bytes of a %d-byte state; first call wrote %d, second %d",
			saved, len(ck), first, second)
	}
}

// TestReplicaPageMissRecovery drives exploreCall against a replica
// whose cache cannot honor the sender's ack assumptions: every page is
// marked acked without ever being shipped. The first call must come
// back as MissingPages (a result, not an error), and exploreCall must
// recover with one full re-send on the same connection — the
// self-healing path for replica cache pruning.
func TestReplicaPageMissRecovery(t *testing.T) {
	topo := leakTopo3()
	ck, seed := checkpointAndSeed(t, topo)
	boundary, err := topo.BoundaryCommunity()
	if err != nil {
		t.Fatal(err)
	}
	conn, err := (ReplicaLoopback{Replica: NewReplica()}).Dial()
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn)
	defer cl.Close()
	cl.Session = 31
	if _, err := cl.Handshake(ProtoLatest); err != nil {
		t.Fatal(err)
	}

	params := &ReplicaExploreParams{
		Node: "provider", Config: topo.Nodes[1].Config, State: ck,
		Peer: "customer", Scenario: core.ScenarioRouteLeak, Explicit: true,
		MaxRuns: 1000, Boundary: boundary, Seed: seed,
	}
	// Lie: claim every page of the state is already replica-side.
	acked := make(map[string]struct{})
	for _, pg := range splitPages(ck, 64) {
		acked[pageHash(pg)] = struct{}{}
	}
	pool := &ReplicaPool{}
	var out ReplicaExploreResult
	if err := pool.exploreCall(cl, params, acked, &out); err != nil {
		t.Fatalf("exploreCall did not recover from the cache miss: %v", err)
	}
	if len(out.MissingPages) != 0 {
		t.Fatalf("recovered result still reports missing pages: %v", out.MissingPages)
	}
	if len(out.Findings) == 0 {
		t.Error("page-mode explore over the recovered state found nothing")
	}
	// After recovery the acks are truthful: a repeat call ships no page
	// data and still explores (the replica cache now holds every page).
	var again ReplicaExploreResult
	if err := pool.exploreCall(cl, params, acked, &again); err != nil {
		t.Fatal(err)
	}
	if len(again.Findings) != len(out.Findings) {
		t.Errorf("hash-only re-send found %d findings, first call %d", len(again.Findings), len(out.Findings))
	}
}
