package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// rpcHandler executes one request in either codec. Implementations (the
// node Agent, the exploration Replica) serialize their own state — the
// server machinery only decodes envelopes and frames responses.
type rpcHandler interface {
	handle(method string, params json.RawMessage) (any, error)
	handleV2(method string, body []byte) (any, error)
}

// rpcServer is the shared connection engine behind every wire-protocol
// server: per-connection reader/worker pairs, codec-preserving responses,
// connection tracking and graceful drain. The Agent and the Replica both
// embed one and plug in their handler.
type rpcServer struct {
	handler rpcHandler
	// name labels shutdown errors (the agent's node, the replica's role).
	name string

	// tm instruments served requests and the drain state; nil (the
	// default) records nothing. Set via EnableTelemetry before serving.
	tm *serverMetrics

	// connMu guards the drain state and the live-connection set for
	// graceful shutdown; connWG counts connections being served.
	connMu   sync.Mutex
	conns    map[io.Closer]struct{}
	connWG   sync.WaitGroup
	draining bool
}

// connReq is one decoded request envelope queued for the per-connection
// worker. Exactly one of jsonParams/v2Body is meaningful, per isV2.
type connReq struct {
	id         uint64
	method     string
	jsonParams json.RawMessage
	v2Body     []byte
	isV2       bool
}

// ServeConn answers requests on one connection until it closes. The
// reader goroutine (this one) drains frames eagerly so a pipelining
// client never blocks on its sends; decoded requests queue to a
// per-connection worker that executes them in arrival order and writes
// responses. Concurrency across connections is the handler's business
// (the Agent serializes on reqMu; so does the Replica).
//
// Each request is answered in the codec it arrived in: the first octet
// of a v2 payload is a kind byte that can never open a JSON document,
// so the codecs self-describe and the v1→v2 switch after hello needs no
// shared state between reader and worker.
//
// The connection closes only after the worker has answered every
// request already read: a clean client EOF — or a draining Shutdown —
// never cuts a response frame in half.
func (s *rpcServer) ServeConn(conn io.ReadWriteCloser) error {
	if err := s.trackConn(conn); err != nil {
		conn.Close()
		return err
	}
	defer s.untrackConn(conn)
	reqs := make(chan connReq, 256)
	errc := make(chan error, 1)
	workerDone := make(chan struct{})
	go func() {
		s.serveRequests(conn, reqs, errc)
		close(workerDone)
	}()
	err := s.readRequests(conn, reqs, errc)
	close(reqs)
	<-workerDone // pending responses flushed before the close below
	conn.Close()
	return err
}

// readRequests drains frames into the worker queue until the connection
// errors, the worker reports a write failure, or the server starts
// draining (checked between frames; Shutdown force-closes connections
// blocked mid-read once the grace period expires).
func (s *rpcServer) readRequests(conn io.ReadWriteCloser, reqs chan<- connReq, errc <-chan error) error {
	for !s.isDraining() {
		payload, err := readPayload(conn)
		if err != nil {
			select {
			case werr := <-errc:
				return werr
			default:
			}
			if err == io.EOF {
				return nil
			}
			return err
		}
		var cr connReq
		if len(payload) > 0 && payload[0] == frameRequestV2 {
			id, method, body, perr := parseRequestV2(payload)
			if perr != nil {
				return perr
			}
			cr = connReq{id: id, method: method, v2Body: body, isV2: true}
		} else {
			var req request
			if err := json.Unmarshal(payload, &req); err != nil {
				return fmt.Errorf("dist: garbled request: %w", err)
			}
			cr = connReq{id: req.ID, method: req.Method, jsonParams: req.Params}
		}
		select {
		case reqs <- cr:
		case werr := <-errc:
			return werr
		}
	}
	return nil
}

// trackConn registers a connection for drain accounting; a draining
// server refuses new connections.
func (s *rpcServer) trackConn(conn io.Closer) error {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining {
		return fmt.Errorf("dist: %s is shutting down", s.name)
	}
	if s.conns == nil {
		s.conns = make(map[io.Closer]struct{})
	}
	s.conns[conn] = struct{}{}
	s.connWG.Add(1)
	return nil
}

func (s *rpcServer) untrackConn(conn io.Closer) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	s.connWG.Done()
}

func (s *rpcServer) isDraining() bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.draining
}

// Draining reports whether Shutdown has started. The telemetry readiness
// check (/healthz) uses it to flip a draining server to 503 while its
// in-flight requests finish.
func (s *rpcServer) Draining() bool { return s.isDraining() }

// Shutdown drains the server gracefully: new connections are refused,
// existing connections stop picking up frames, and every request
// already read is answered before its connection closes. Shutdown
// blocks until all connections have drained, or until grace expires —
// then it force-closes the stragglers (unblocking readers parked in a
// frame read) and waits for them to unwind. The caller is responsible
// for closing any listener first so no new connections race in.
func (s *rpcServer) Shutdown(grace time.Duration) {
	s.connMu.Lock()
	s.draining = true
	s.connMu.Unlock()
	s.tm.setDraining(true)
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return
	case <-time.After(grace):
	}
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	<-done
}

// serveRequests is the per-connection worker: it executes queued
// requests in order and writes each response. On a write failure it
// closes the connection so the reader unblocks, and parks the error for
// the reader to return.
func (s *rpcServer) serveRequests(conn io.ReadWriteCloser, reqs <-chan connReq, errc chan<- error) {
	for cr := range reqs {
		payload, err := s.respond(cr)
		if err == nil {
			err = writePayload(conn, payload)
		}
		if err != nil {
			errc <- err
			conn.Close()
			return
		}
	}
}

// respond executes one request and renders the response payload in the
// request's codec. Handler errors become error responses; only encoding
// the envelope itself can fail.
func (s *rpcServer) respond(cr connReq) ([]byte, error) {
	var result any
	var herr error
	if cr.isV2 {
		result, herr = s.handler.handleV2(cr.method, cr.v2Body)
	} else {
		result, herr = s.handler.handle(cr.method, cr.jsonParams)
	}
	s.tm.noteRequest(cr.method, herr != nil)
	if cr.isV2 {
		if herr != nil {
			return appendResponseV2(nil, cr.id, herr.Error(), nil), nil
		}
		var msg v2Message
		if result != nil {
			m, ok := result.(v2Message)
			if !ok {
				return appendResponseV2(nil, cr.id, fmt.Sprintf("dist: %s result type %T has no v2 encoding", cr.method, result), nil), nil
			}
			msg = m
		}
		return appendResponseV2(nil, cr.id, "", msg), nil
	}
	resp := response{ID: cr.id}
	if herr != nil {
		resp.Error = herr.Error()
	} else if result != nil {
		body, err := json.Marshal(result)
		if err != nil {
			resp.Error = fmt.Sprintf("dist: encode %s result: %v", cr.method, err)
		} else {
			resp.Result = body
		}
	}
	return json.Marshal(resp)
}

// ListenAndServe accepts connections until the listener closes.
func (s *rpcServer) ListenAndServe(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn) //nolint:errcheck // per-conn errors end that conn only
	}
}
