package dist

import (
	"reflect"
	"testing"

	"dice/internal/core"
	"dice/internal/netaddr"
)

// sampleMessages returns one fully-populated instance of every v2 wire
// message type. Round-trip, truncation and fuzz-seed tests iterate
// these, so new fields belong in the samples the moment they grow a
// codec.
func sampleMessages() []v2Message {
	return []v2Message{
		&HelloParams{MaxVersion: 2, Session: 0xfeedbeefcafe,
			Properties: []string{
				`property "leak" { never carries community boundary at node behind boundary }`,
				`property "converge" { eventually converges within 64 steps }`,
			}},
		&HelloResult{Node: "as65002", Topology: "line-3-dense-256", AS: 65002, Prefixes: 771, Version: 2},
		&CheckpointResult{State: []byte{0xca, 0xfe, 0x00, 0x01}, Pages: 12, UniquePages: 3},
		&ExploreParams{
			Peer: "as65001", Scenario: "route-leak", Explicit: true,
			MaxRuns: 200, MaxDepth: 64, Workers: 4, SolverNodes: 2,
			Strategy: "generational", TimeBudgetNS: 5_000_000_000, ReuseState: true,
			Round: 3,
		},
		&ExploreResult{
			Skipped: "", Scenario: "route-leak",
			Runs: 41, NewPaths: 7, BranchesSeen: 120, SolverCalls: 33, SolverSat: 21,
			SolverUnsat: 12, CacheHits: 9, SkippedPaths: 2, SkippedNegations: 5,
			ElapsedNS: 1_234_567, CapturedMessages: 3, WitnessesRejected: 1,
			Findings: []WireFinding{
				{
					Kind: "route-leak", Peer: "as65001", Prefix: "10.200.0.0/24",
					LeakRange: core.RangeDesc{
						AddrLo: netaddr.AddrFrom4(10, 0, 0, 0), AddrHi: netaddr.AddrFrom4(10, 255, 255, 255),
						LenLo: 24, LenHi: 32,
					},
					OriginAS: 65001, VictimAS: 65003, VictimPrefix: "10.18.0.0/16",
					Seq: 17, Validated: true, SpreadTo: []string{"as65003", "as65004"},
					Input:    map[string]uint64{"addr": 0x0ac80000, "community": 0xFFFFFF01, "len": 24},
					Rendered: "route-leak 10.200.0.0/24 via as65001",
				},
				{Kind: "blackhole", Peer: "as65003", Prefix: "10.17.0.0/16"},
			},
			Witnesses: []WireWitness{{Finding: 0, Msg: []byte{0x02, 0x00, 0x17}}, {Finding: 1, Msg: []byte{0x01}}},
		},
		&ExploreResult{Skipped: "no observed seed"},
		&ReplayParams{Node: "as65001", Peer: "stub", Trace: []byte("MRTLfakebytes"), Key: 11},
		&ReplayResult{Delivered: 250, Prefixes: 771},
		&ShadowOpenResult{ShadowID: 7},
		&InjectParams{ShadowID: 7, From: "as65001", Msg: []byte{0xff, 0x00, 0x10}, Key: 5},
		&InjectResult{Emitted: []WireEmission{
			{To: "as65003", Msg: []byte{0xaa}},
			{To: "as65001", Msg: nil},
		}},
		&InjectBatchParams{ShadowID: 7, Deliveries: []BatchDelivery{
			{From: "as65001", Msg: []byte{0x01, 0x02}},
			{From: "as65003", Msg: []byte{0x03}},
		}, Key: 6},
		&InjectBatchResult{Results: []InjectResult{
			{Emitted: []WireEmission{{To: "as65003", Msg: []byte{0xbb, 0xcc}}}},
			{},
		}},
		&ShadowCloseParams{ShadowID: 7},
		&QueryOracleParams{ShadowID: 7, Prefix: "10.200.0.0/24", WantProps: true},
		&QueryOracleResult{HasBest: true, BestFP: "r42", HasCovering: true, CoveringLocal: false, CoveringNextPeer: "as65002",
			PropMatch: []bool{true, false, true}},
		&ReplicaExploreParams{
			Node: "as65002", Config: []string{"router bgp 65002", " neighbor up"},
			State: []byte{0x05, 0x00, 0xde}, Peer: "as65001", Scenario: "route-leak",
			Explicit: true, MaxRuns: 120, MaxDepth: 48, Workers: 2, SolverNodes: 1,
			Strategy: "generational", TimeBudgetNS: 2_000_000_000, Boundary: 0xFFFF_FF01,
			Seed: []byte{0x02, 0x00, 0x17}, WarmState: []byte{0x7a}, Round: 4, Shard: "as65002/as65001#0",
			PageSize: 4096,
			PageHash: []string{"6cd5", "a001", "6cd5"},
			PageData: [][]byte{{0xca, 0xfe}, {0x00}},
		},
		&ReplicaExploreResult{
			ExploreResult: ExploreResult{Scenario: "route-leak", Runs: 17, ElapsedNS: 99},
			WarmState:     []byte{0x7b, 0x7c},
			MissingPages:  []string{"a001", "6cd5"},
		},
	}
}

// freshLike returns a zero-valued instance of the same concrete message
// type, for decoding into.
func freshLike(msg v2Message) v2Message {
	return reflect.New(reflect.TypeOf(msg).Elem()).Interface().(v2Message)
}

// TestV2RoundTripProperty: encode→decode returns every message
// unchanged, and the encoding is canonical (re-encoding the decoded
// value yields identical bytes — map fields are written in sorted key
// order, so this holds even for ExploreResult's Input maps).
func TestV2RoundTripProperty(t *testing.T) {
	for i, msg := range sampleMessages() {
		body := msg.appendV2(nil)
		got := freshLike(msg)
		if err := decodeBodyV2(body, got); err != nil {
			t.Errorf("sample %d (%T): decode of own encoding failed: %v", i, msg, err)
			continue
		}
		if again := got.appendV2(nil); !reflect.DeepEqual(again, body) {
			t.Errorf("sample %d (%T): re-encoding is not canonical:\n first: %x\n again: %x", i, msg, body, again)
		}
		// Value equality up to nil-vs-empty (the codec returns nil for
		// zero-length collections, as the JSON path's omitempty does).
		reBody := got.appendV2(nil)
		reGot := freshLike(msg)
		if err := decodeBodyV2(reBody, reGot); err != nil {
			t.Errorf("sample %d (%T): second decode failed: %v", i, msg, err)
			continue
		}
		if !reflect.DeepEqual(got, reGot) {
			t.Errorf("sample %d (%T): decode not stable:\n first: %+v\n again: %+v", i, msg, got, reGot)
		}
	}
}

// TestV2TruncationErrors: every strict prefix of a valid body must fail
// to decode — the codec reads a fixed field sequence, so cutting the
// tail starves some read, and finish() catches anything shorter still.
// The one designed exception: versioned-tail layouts. A message whose
// newer fields ride in optional tails decodes cleanly when truncated to
// an older layout boundary, because that is exactly a valid frame from
// an older-negotiated peer — and then re-encoding the decoded value
// must reproduce the truncated bytes verbatim (the prefix is canonical
// for what it decoded to). Clean decodes at any other cut are bugs, as
// are degenerate tails (explicit empty/false tails the encoders never
// emit — the trailing-garbage probe below would accept them otherwise).
func TestV2TruncationErrors(t *testing.T) {
	for i, msg := range sampleMessages() {
		body := msg.appendV2(nil)
		baseLen := -1
		if tm, ok := msg.(v2TailMessage); ok {
			baseLen = len(tm.appendV2Base(nil))
		}
		for k := 0; k < len(body); k++ {
			got := freshLike(msg)
			err := decodeBodyV2(body[:k], got)
			if k == baseLen {
				// The v2 base layout predates the canonical-prefix rule:
				// its v3 tail re-encodes unconditionally, so only require
				// the clean decode here.
				if err != nil {
					t.Errorf("sample %d (%T): legacy v2 base layout (%d bytes) failed to decode: %v", i, msg, k, err)
				}
				continue
			}
			if err == nil {
				if re := got.appendV2(nil); !reflect.DeepEqual(re, append([]byte(nil), body[:k]...)) {
					t.Errorf("sample %d (%T): truncation to %d of %d bytes decoded cleanly into a non-canonical frame:\n cut: %x\n  re: %x",
						i, msg, k, len(body), body[:k], re)
				}
			}
		}
		// And trailing garbage is rejected too.
		if err := decodeBodyV2(append(append([]byte(nil), body...), 0x00), freshLike(msg)); err == nil {
			t.Errorf("sample %d (%T): trailing byte accepted", i, msg)
		}
	}
}

// TestV2LegacyBaseLayout: a client negotiated down to exactly v2 must
// encode tail-bearing params in their legacy base layout (a strict v2
// decoder rejects trailing bytes), while a v3 connection carries the
// tail. Decoding a base layout leaves the tail fields zero.
func TestV2LegacyBaseLayout(t *testing.T) {
	for _, msg := range sampleMessages() {
		tm, ok := msg.(v2TailMessage)
		if !ok {
			continue
		}
		legacy, err := encodeRequest(9, MethodExplore, msg, ProtoV2)
		if err != nil {
			t.Fatalf("%T: encode at v2: %v", msg, err)
		}
		wantLegacy, err := appendRequestV2(nil, 9, MethodExplore, v2BaseOnly{m: tm})
		if err != nil {
			t.Fatalf("%T: base envelope: %v", msg, err)
		}
		if !reflect.DeepEqual(legacy, wantLegacy) {
			t.Errorf("%T: v2-negotiated encoding carries tail fields:\n got: %x\nwant: %x", msg, legacy, wantLegacy)
		}
		full, err := encodeRequest(9, MethodExplore, msg, ProtoV3)
		if err != nil {
			t.Fatalf("%T: encode at v3: %v", msg, err)
		}
		if reflect.DeepEqual(full, legacy) {
			t.Errorf("%T: v3 encoding identical to legacy layout — tail fields lost", msg)
		}
		base := tm.appendV2Base(nil)
		got := freshLike(msg)
		if err := decodeBodyV2(base, got); err != nil {
			t.Errorf("%T: decode of base layout failed: %v", msg, err)
			continue
		}
		// Base fields round-trip; the tail stays zero, so the full
		// encoding of the decoded value is exactly base + zero tail,
		// never the sample's (nonzero-tail) encoding.
		if gotBase := got.(v2TailMessage).appendV2Base(nil); !reflect.DeepEqual(gotBase, base) {
			t.Errorf("%T: base fields did not round-trip:\n got: %x\nwant: %x", msg, gotBase, base)
		}
		if reflect.DeepEqual(got.appendV2(nil), msg.appendV2(nil)) {
			t.Errorf("%T: base-layout decode populated tail fields: %+v", msg, got)
		}
	}
}

// TestV2RequestEnvelope: every method round-trips through the request
// framing, and corrupted envelopes error.
func TestV2RequestEnvelope(t *testing.T) {
	methods := []string{
		MethodHello, MethodCheckpoint, MethodExplore, MethodShadowOpen,
		MethodInjectWitness, MethodShadowClose, MethodQueryOracle,
		MethodReplay, MethodInjectWitnessBatch,
	}
	for _, m := range methods {
		payload, err := appendRequestV2(nil, 42, m, &ShadowCloseParams{ShadowID: 9})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		id, method, body, err := parseRequestV2(payload)
		if err != nil {
			t.Fatalf("%s: parse: %v", m, err)
		}
		if id != 42 || method != m {
			t.Errorf("%s: round-tripped as id=%d method=%q", m, id, method)
		}
		var p ShadowCloseParams
		if err := decodeBodyV2(body, &p); err != nil || p.ShadowID != 9 {
			t.Errorf("%s: body decode: %+v, %v", m, p, err)
		}
	}
	if _, err := appendRequestV2(nil, 1, "no-such-method", nil); err == nil {
		t.Error("unknown method encoded")
	}
	if _, _, _, err := parseRequestV2([]byte{frameRequestV2, 0x01, 0x7f}); err == nil {
		t.Error("unknown method code parsed")
	}
	if _, _, _, err := parseRequestV2([]byte{frameResponseV2, 0x01, codeHello}); err == nil {
		t.Error("response kind accepted as request")
	}
	if _, _, _, err := parseRequestV2(nil); err == nil {
		t.Error("empty payload accepted as request")
	}
}

// TestV2ResponseEnvelope: ok and error responses round-trip; bad status
// octets and truncated error strings are rejected.
func TestV2ResponseEnvelope(t *testing.T) {
	ok := appendResponseV2(nil, 7, "", &ShadowOpenResult{ShadowID: 3})
	id, errMsg, body, err := parseResponseV2(ok)
	if err != nil || id != 7 || errMsg != "" {
		t.Fatalf("ok response: id=%d err=%q parse=%v", id, errMsg, err)
	}
	var r ShadowOpenResult
	if err := decodeBodyV2(body, &r); err != nil || r.ShadowID != 3 {
		t.Errorf("ok body: %+v, %v", r, err)
	}

	bad := appendResponseV2(nil, 8, "dist: no shadow 3", nil)
	id, errMsg, body, err = parseResponseV2(bad)
	if err != nil || id != 8 || errMsg != "dist: no shadow 3" || body != nil {
		t.Fatalf("error response: id=%d err=%q body=%v parse=%v", id, errMsg, body, err)
	}

	if _, _, _, err := parseResponseV2([]byte{frameResponseV2, 0x08, 0x02}); err == nil {
		t.Error("bad status octet accepted")
	}
	if _, _, _, err := parseResponseV2(bad[:len(bad)-2]); err == nil {
		t.Error("truncated error string accepted")
	}
	if _, _, _, err := parseResponseV2([]byte{frameRequestV2, 0x08, 0x00}); err == nil {
		t.Error("request kind accepted as response")
	}
}
