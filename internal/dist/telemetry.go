package dist

import (
	"time"

	"dice/internal/telemetry"
)

// Metrics is the coordinator-side telemetry bundle: RPC client counters,
// round accounting, relay and replica-pool gauges, per-node health. One
// instance is shared by every client and the pool of one coordinator —
// attach it with WithTelemetry. A nil *Metrics is a safe no-op
// everywhere, so the instrumented hot paths never branch on "telemetry
// enabled?" (the mechanism behind the <5% overhead bound).
type Metrics struct {
	rpcCalls    *telemetry.CounterVec   // method
	rpcLatency  *telemetry.HistogramVec // method
	rpcSent     *telemetry.CounterVec   // method
	rpcRecv     *telemetry.CounterVec   // method
	rpcErrors   *telemetry.CounterVec   // method, kind (timeout | broken)
	reconnects  *telemetry.CounterVec   // node
	wireVersion *telemetry.GaugeVec     // node

	rounds            *telemetry.Counter
	roundDuration     *telemetry.Histogram
	relayDepth        *telemetry.Gauge
	witnessBatches    *telemetry.Counter
	witnessesInjected *telemetry.Counter
	witnessesSkipped  *telemetry.Counter
	propagationSteps  *telemetry.Counter
	nodeHealth        *telemetry.GaugeVec   // node, state
	nodeFaults        *telemetry.CounterVec // node

	poolDepth      *telemetry.Gauge
	poolWorkers    *telemetry.Gauge
	poolSteals     *telemetry.Counter
	poolReconnects *telemetry.Counter
	poolFallbacks  *telemetry.Counter
}

// NewMetrics registers the coordinator's metric families on reg. A nil
// registry returns nil (telemetry disabled).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		rpcCalls: reg.CounterVec("dice_rpc_client_calls_total",
			"RPC requests issued, by method.", "method"),
		rpcLatency: reg.HistogramVec("dice_rpc_client_latency_seconds",
			"RPC round trip from send to decoded response.", nil, "method"),
		rpcSent: reg.CounterVec("dice_rpc_client_sent_bytes_total",
			"Request payload bytes written, by method.", "method"),
		rpcRecv: reg.CounterVec("dice_rpc_client_recv_bytes_total",
			"Response payload bytes read, by method.", "method"),
		rpcErrors: reg.CounterVec("dice_rpc_client_errors_total",
			"Transport-level call failures, by method and kind (timeout, broken).",
			"method", "kind"),
		reconnects: reg.CounterVec("dice_rpc_client_reconnects_total",
			"Successful re-dial + re-handshake cycles, by node.", "node"),
		wireVersion: reg.GaugeVec("dice_rpc_client_wire_version",
			"Negotiated wire protocol version, by node.", "node"),

		rounds: reg.Counter("dice_coordinator_rounds_total",
			"Distributed federated rounds completed."),
		roundDuration: reg.Histogram("dice_coordinator_round_duration_seconds",
			"Wall-clock duration of completed rounds.", nil),
		relayDepth: reg.Gauge("dice_coordinator_relay_queue_depth",
			"In-flight witness relay events awaiting delivery."),
		witnessBatches: reg.Counter("dice_coordinator_witness_batches_total",
			"Relay deliveries coalesced into inject_witness_batch calls."),
		witnessesInjected: reg.Counter("dice_coordinator_witnesses_injected_total",
			"Witnesses injected and checked across rounds."),
		witnessesSkipped: reg.Counter("dice_coordinator_witnesses_skipped_total",
			"Witnesses dropped by the per-round cap."),
		propagationSteps: reg.Counter("dice_coordinator_propagation_steps_total",
			"Relay delivery steps across all witness lifecycles."),
		nodeHealth: reg.GaugeVec("dice_node_health",
			"Per-node health state (1 = node is in this state).", "node", "state"),
		nodeFaults: reg.CounterVec("dice_node_faults_total",
			"Connection faults (broken streams, call timeouts), by node.", "node"),

		poolDepth: reg.Gauge("dice_replica_pool_queue_depth",
			"Shards queued for the replica pool."),
		poolWorkers: reg.Gauge("dice_replica_pool_workers",
			"Live replica pool workers."),
		poolSteals: reg.Counter("dice_replica_pool_steals_total",
			"Shards re-enqueued after their replica died mid-explore."),
		poolReconnects: reg.Counter("dice_replica_pool_reconnects_total",
			"Successful replica re-dial + re-handshake cycles."),
		poolFallbacks: reg.Counter("dice_replica_pool_agent_fallbacks_total",
			"Targets that fell back from the replica pool to their agent."),
	}
}

// clientSent records one issued request (call count + payload bytes).
func (m *Metrics) clientSent(method string, bytes int) {
	if m == nil {
		return
	}
	m.rpcCalls.With(method).Inc()
	m.rpcSent.With(method).Add(uint64(bytes))
}

// clientDone records one completed round trip. start is zero when the
// call was issued before telemetry attached (the handshake itself).
func (m *Metrics) clientDone(method string, start time.Time, recvBytes int) {
	if m == nil {
		return
	}
	m.rpcRecv.With(method).Add(uint64(recvBytes))
	if !start.IsZero() {
		m.rpcLatency.With(method).Observe(time.Since(start).Seconds())
	}
}

// clientError records one transport-level failure.
func (m *Metrics) clientError(method, kind string) {
	if m == nil {
		return
	}
	m.rpcErrors.With(method, kind).Inc()
}

// noteWireVersion records a connection's negotiated protocol version.
func (m *Metrics) noteWireVersion(node string, version int) {
	if m == nil {
		return
	}
	m.wireVersion.With(node).Set(float64(version))
}

// noteClientReconnect records one successful reconnect for node.
func (m *Metrics) noteClientReconnect(node string) {
	if m == nil {
		return
	}
	m.reconnects.With(node).Inc()
}

// noteNodeFault records one connection fault attributed to node.
func (m *Metrics) noteNodeFault(node string) {
	if m == nil {
		return
	}
	m.nodeFaults.With(node).Inc()
}

// noteRound folds one finished round into the counters and refreshes the
// per-node health gauges (exactly one state gauge per node reads 1).
func (m *Metrics) noteRound(res *RoundResult) {
	if m == nil {
		return
	}
	m.rounds.Inc()
	m.roundDuration.Observe(res.Elapsed.Seconds())
	m.witnessesInjected.Add(uint64(res.WitnessesInjected))
	m.witnessesSkipped.Add(uint64(res.WitnessesSkipped))
	m.propagationSteps.Add(uint64(res.PropagationSteps))
	for node, h := range res.Health {
		for _, state := range []string{HealthHealthy, HealthDegraded, HealthFailed} {
			v := 0.0
			if h.State == state {
				v = 1
			}
			m.nodeHealth.With(node, state).Set(v)
		}
	}
}

func (m *Metrics) setRelayDepth(depth int) {
	if m == nil {
		return
	}
	m.relayDepth.Set(float64(depth))
}

func (m *Metrics) noteWitnessBatch() {
	if m == nil {
		return
	}
	m.witnessBatches.Inc()
}

func (m *Metrics) setPoolDepth(depth int) {
	if m == nil {
		return
	}
	m.poolDepth.Set(float64(depth))
}

func (m *Metrics) setPoolWorkers(n int) {
	if m == nil {
		return
	}
	m.poolWorkers.Set(float64(n))
}

func (m *Metrics) notePoolSteal() {
	if m == nil {
		return
	}
	m.poolSteals.Inc()
}

func (m *Metrics) notePoolReconnect() {
	if m == nil {
		return
	}
	m.poolReconnects.Inc()
}

func (m *Metrics) notePoolFallback() {
	if m == nil {
		return
	}
	m.poolFallbacks.Inc()
}

// serverMetrics instruments one rpcServer (agent or replica side). A nil
// *serverMetrics is a safe no-op.
type serverMetrics struct {
	requests *telemetry.CounterVec // method
	errors   *telemetry.CounterVec // method
	draining *telemetry.Gauge
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	return &serverMetrics{
		requests: reg.CounterVec("dice_rpc_server_requests_total",
			"RPC requests served, by method.", "method"),
		errors: reg.CounterVec("dice_rpc_server_errors_total",
			"RPC requests answered with an application error, by method.", "method"),
		draining: reg.Gauge("dice_rpc_server_draining",
			"1 while the server is draining for shutdown."),
	}
}

func (m *serverMetrics) noteRequest(method string, failed bool) {
	if m == nil {
		return
	}
	m.requests.With(method).Inc()
	if failed {
		m.errors.With(method).Inc()
	}
}

func (m *serverMetrics) setDraining(v bool) {
	if m == nil {
		return
	}
	if v {
		m.draining.Set(1)
	} else {
		m.draining.Set(0)
	}
}

// agentMetrics instruments the Agent's handlers. Nil-safe like the rest.
type agentMetrics struct {
	checkpointPages  *telemetry.Counter
	checkpointUnique *telemetry.Counter
	memoHits         *telemetry.CounterVec // kind (explore | replay | inject)
	shadowsOpen      *telemetry.Gauge
}

func newAgentMetrics(reg *telemetry.Registry) *agentMetrics {
	if reg == nil {
		return nil
	}
	return &agentMetrics{
		checkpointPages: reg.Counter("dice_agent_checkpoint_pages_total",
			"Checkpoint pages serialized (shared and unique)."),
		checkpointUnique: reg.Counter("dice_agent_checkpoint_unique_pages_total",
			"Checkpoint pages newly ingested (not shared with a prior snapshot)."),
		memoHits: reg.CounterVec("dice_agent_memo_hits_total",
			"Requests answered from an idempotency memo, by kind.", "kind"),
		shadowsOpen: reg.Gauge("dice_agent_shadows_open",
			"Shadow clones currently open."),
	}
}

func (m *agentMetrics) noteCheckpoint(pages, unique int) {
	if m == nil {
		return
	}
	m.checkpointPages.Add(uint64(pages))
	m.checkpointUnique.Add(uint64(unique))
}

func (m *agentMetrics) noteMemoHit(kind string) {
	if m == nil {
		return
	}
	m.memoHits.With(kind).Inc()
}

func (m *agentMetrics) noteShadowOpened() {
	if m == nil {
		return
	}
	m.shadowsOpen.Inc()
}

func (m *agentMetrics) noteShadowClosed() {
	if m == nil {
		return
	}
	m.shadowsOpen.Dec()
}

// replicaMetrics instruments the Replica's explore handler.
type replicaMetrics struct {
	explores *telemetry.Counter
	memoHits *telemetry.Counter
}

func newReplicaMetrics(reg *telemetry.Registry) *replicaMetrics {
	if reg == nil {
		return nil
	}
	return &replicaMetrics{
		explores: reg.Counter("dice_replica_explores_total",
			"Checkpoint explores executed (memo hits excluded)."),
		memoHits: reg.Counter("dice_replica_memo_hits_total",
			"Checkpoint explores answered from the shard memo."),
	}
}

func (m *replicaMetrics) noteExplore() {
	if m == nil {
		return
	}
	m.explores.Inc()
}

func (m *replicaMetrics) noteMemoHit() {
	if m == nil {
		return
	}
	m.memoHits.Inc()
}

// ChaosFaultCounter registers the chaos-injection counter family: assign
// it to FaultDialer.Faults and every injected fault increments
// dice_chaos_faults_total{kind}. A nil registry returns nil (counting
// disabled, as before).
func ChaosFaultCounter(reg *telemetry.Registry) *telemetry.CounterVec {
	if reg == nil {
		return nil
	}
	return reg.CounterVec("dice_chaos_faults_total",
		"Faults injected by FaultDialer connections, by kind.", "kind")
}
