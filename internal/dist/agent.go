package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dice/internal/bgp"
	"dice/internal/checkpoint"
	"dice/internal/concolic"
	"dice/internal/core"
	"dice/internal/netaddr"
	"dice/internal/netsim"
	"dice/internal/rib"
	"dice/internal/router"
	"dice/internal/trace"
)

// Agent administers one node of a federated topology and serves the
// wire protocol for it. It instantiates the topology locally — netsim
// convergence is deterministic, so every agent of the same topology file
// arrives at an identical converged fabric — but exposes only its own
// node over the wire: exploration runs on its node's checkpoint clones,
// witness messages are delivered to its node's shadow clones, and oracle
// queries answer facts about its node alone. The other nodes' state
// never crosses the RPC boundary; the coordinator composes the
// cross-node picture purely from the narrow per-node answers.
type Agent struct {
	topo     *core.Topology
	node     string
	fabric   *core.Fabric
	self     *router.Router
	boundary uint32

	states *concolic.StateMap // per-(scenario, peer) warm exploration state
	store  *checkpoint.Store  // page-deduplicating snapshot store

	// reqMu serializes request handling across connections: routers and
	// shadow clones are not thread-safe, and one request at a time is
	// all the coordinator ever issues per agent anyway (its parallelism
	// is across agents, not within one).
	reqMu sync.Mutex

	mu       sync.Mutex
	shadows  map[uint64]*shadowClone
	nextID   uint64
	lastSnap *checkpoint.Snapshot
}

// shadowClone is one witness-propagation clone of the agent's node: a
// COW copy whose outbound traffic lands in a capture sink the agent
// drains back to the coordinator per delivery. routeIDs tokenizes the
// *rib.Route pointers returned by oracle queries, so the coordinator's
// pre/post comparisons carry the in-process backend's exact
// pointer-identity semantics across the wire (a byte-identical
// reinstall still changes the token, exactly as it changes the
// pointer).
type shadowClone struct {
	r    *router.Router
	sink *netsim.CaptureSink
	read int // sink messages already returned

	routeIDs  map[*rib.Route]uint64
	nextRoute uint64
}

// routeToken returns the shadow-scoped stable token for a route object.
func (sh *shadowClone) routeToken(rt *rib.Route) uint64 {
	id, ok := sh.routeIDs[rt]
	if !ok {
		sh.nextRoute++
		id = sh.nextRoute
		sh.routeIDs[rt] = id
	}
	return id
}

// NewAgent builds the agent's local fabric and takes ownership of node.
func NewAgent(topo *core.Topology, node string) (*Agent, error) {
	boundary, err := topo.BoundaryCommunity()
	if err != nil {
		return nil, err
	}
	fabric, err := topo.Build()
	if err != nil {
		return nil, err
	}
	self, ok := fabric.Routers[node]
	if !ok {
		return nil, fmt.Errorf("dist: topology %q has no node %q (nodes: %v)", topo.Name, node, fabric.NodeNames())
	}
	return &Agent{
		topo:     topo,
		node:     node,
		fabric:   fabric,
		self:     self,
		boundary: boundary,
		states:   concolic.NewStateMap(),
		store:    checkpoint.NewStore(0),
		shadows:  make(map[uint64]*shadowClone),
	}, nil
}

// Node returns the node this agent administers.
func (a *Agent) Node() string { return a.node }

// ServeConn answers requests on one connection until it closes. Each
// connection is served sequentially, and requests from concurrent
// connections serialize on the agent (reqMu) — the node's routers and
// shadow clones are single-threaded state.
func (a *Agent) ServeConn(conn io.ReadWriteCloser) error {
	defer conn.Close()
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		resp := response{ID: req.ID}
		result, err := a.handle(req.Method, req.Params)
		if err != nil {
			resp.Error = err.Error()
		} else if result != nil {
			body, err := json.Marshal(result)
			if err != nil {
				resp.Error = fmt.Sprintf("dist: encode %s result: %v", req.Method, err)
			} else {
				resp.Result = body
			}
		}
		if err := writeFrame(conn, resp); err != nil {
			return err
		}
	}
}

// ListenAndServe accepts connections until the listener closes.
func (a *Agent) ListenAndServe(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go a.ServeConn(conn) //nolint:errcheck // per-conn errors end that conn only
	}
}

// handle dispatches one request, one at a time per agent.
func (a *Agent) handle(method string, params json.RawMessage) (any, error) {
	a.reqMu.Lock()
	defer a.reqMu.Unlock()
	switch method {
	case MethodHello:
		return a.hello(), nil
	case MethodCheckpoint:
		return a.checkpoint()
	case MethodExplore:
		var p ExploreParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return a.explore(p)
	case MethodShadowOpen:
		return a.shadowOpen(), nil
	case MethodInjectWitness:
		var p InjectParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return a.inject(p)
	case MethodShadowClose:
		var p ShadowCloseParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		a.shadowClose(p.ShadowID)
		return struct{}{}, nil
	case MethodQueryOracle:
		var p QueryOracleParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return a.queryOracle(p)
	case MethodReplay:
		var p ReplayParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return a.replay(p)
	}
	return nil, fmt.Errorf("dist: unknown method %q", method)
}

func (a *Agent) hello() HelloResult {
	return HelloResult{
		Node:     a.node,
		Topology: a.topo.Name,
		AS:       a.self.Config().LocalAS,
		Prefixes: a.self.RIB().Prefixes(),
	}
}

// checkpoint serializes the node's state into the page store and returns
// the bytes. Successive checkpoints share unchanged pages; only the
// latest snapshot is retained.
func (a *Agent) checkpoint() (*CheckpointResult, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	before := a.store.Stats()
	snap := a.store.TakeChunks(fmt.Sprintf("%s-ckpt", a.node), a.self.EncodeStateChunks())
	after := a.store.Stats()
	if a.lastSnap != nil {
		a.lastSnap.Release()
	}
	a.lastSnap = snap
	ingested := int(after.Ingested - before.Ingested)
	shared := int(after.SharedHits - before.SharedHits)
	return &CheckpointResult{
		State:       snap.Bytes(),
		Pages:       snap.Pages(),
		UniquePages: ingested - shared,
	}, nil
}

// explore runs one concolic exploration round on the agent's node
// through the same per-target pipeline the in-process federated
// backend uses (core.PrepareTarget / Analyze / WitnessRefs — the
// parity contract lives there), exploring the engine solo instead of
// as a fleet member.
func (a *Agent) explore(p ExploreParams) (*ExploreResult, error) {
	strat, err := parseStrategy(p.Strategy)
	if err != nil {
		return nil, err
	}
	engOpts := concolic.Options{
		Strategy:    strat,
		MaxRuns:     p.MaxRuns,
		MaxDepth:    p.MaxDepth,
		Workers:     p.Workers,
		SolverNodes: p.SolverNodes,
		TimeBudget:  time.Duration(p.TimeBudgetNS),
	}
	tg := core.ResolvedTarget{Node: a.node, Peer: p.Peer, Scenario: p.Scenario, Explicit: p.Explicit}
	tp, err := core.PrepareTarget(a.self, tg, engOpts, a.states, p.ReuseState)
	if err != nil {
		var seedErr *core.SeedUnavailableError
		if errors.As(err, &seedErr) && !p.Explicit {
			return &ExploreResult{Skipped: seedErr.Err.Error(), Scenario: p.Scenario}, nil
		}
		return nil, fmt.Errorf("dist: %s/%s: %w", a.node, p.Peer, err)
	}
	rep := tp.Engine.Explore()
	r := tp.Analyze(a.self, engOpts, a.boundary, rep)

	out := &ExploreResult{
		Scenario:          r.Scenario,
		Runs:              rep.Runs,
		NewPaths:          len(rep.Paths),
		BranchesSeen:      rep.BranchesSeen,
		SolverCalls:       rep.SolverCalls,
		SolverSat:         rep.SolverSat,
		SolverUnsat:       rep.SolverUnsat,
		CacheHits:         rep.CacheHits,
		SkippedPaths:      rep.SkippedPaths,
		SkippedNegations:  rep.SkippedNegations,
		ElapsedNS:         rep.Elapsed.Nanoseconds(),
		CapturedMessages:  r.CapturedMessages,
		WitnessesRejected: r.WitnessesRejected,
	}
	for _, f := range r.Findings {
		wf := WireFinding{
			Kind:      f.Kind,
			Peer:      f.Peer,
			Prefix:    f.Prefix.String(),
			LeakRange: f.LeakRange,
			OriginAS:  f.OriginAS,
			VictimAS:  f.VictimAS,
			Seq:       f.Seq,
			Validated: f.Validated,
			SpreadTo:  f.SpreadTo,
			Input:     f.Input,
			Rendered:  f.String(),
		}
		if f.VictimPrefix != (netaddr.Prefix{}) {
			wf.VictimPrefix = f.VictimPrefix.String()
		}
		out.Findings = append(out.Findings, wf)
	}
	for _, wr := range tp.WitnessRefs(r) {
		wire, err := bgp.Encode(wr.Update)
		if err != nil {
			return nil, fmt.Errorf("dist: encode witness for %s: %w", wr.Update.NLRI[0], err)
		}
		out.Witnesses = append(out.Witnesses, WireWitness{Finding: wr.Finding, Msg: wire})
	}
	return out, nil
}

// replay feeds a recorded trace into the agent's live local fabric. The
// fabric is deterministic, so every agent replaying the same trace —
// the coordinator fans it to all of them — converges on the same state,
// and subsequent explorations seed from the replayed history exactly as
// the in-process backend's do.
func (a *Agent) replay(p ReplayParams) (*ReplayResult, error) {
	records, err := trace.Read(bytes.NewReader(p.Trace))
	if err != nil {
		return nil, err
	}
	n, err := a.fabric.ReplayTrace(p.Node, p.Peer, records)
	if err != nil {
		return nil, fmt.Errorf("dist: %s replay: %w", a.node, err)
	}
	return &ReplayResult{Delivered: n, Prefixes: a.self.RIB().Prefixes()}, nil
}

// shadowOpen clones the node for witness propagation. The clone is COW
// (O(peers) creation) and its traffic lands in a private capture sink.
func (a *Agent) shadowOpen() *ShadowOpenResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextID++
	sink := netsim.NewCaptureSink()
	a.shadows[a.nextID] = &shadowClone{
		r:        a.self.CloneCOW(sink),
		sink:     sink,
		routeIDs: make(map[*rib.Route]uint64),
	}
	return &ShadowOpenResult{ShadowID: a.nextID}
}

func (a *Agent) shadow(id uint64) (*shadowClone, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sh, ok := a.shadows[id]
	if !ok {
		return nil, fmt.Errorf("dist: %s has no shadow %d", a.node, id)
	}
	return sh, nil
}

func (a *Agent) shadowClose(id uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.shadows, id)
}

// inject delivers one BGP message into a shadow clone as if sent by the
// named peer, and returns the messages the node emitted in response —
// the coordinator relays them onward, replacing netsim as the
// inter-domain scheduler.
func (a *Agent) inject(p InjectParams) (*InjectResult, error) {
	sh, err := a.shadow(p.ShadowID)
	if err != nil {
		return nil, err
	}
	if a.self.Session(p.From) == nil {
		return nil, fmt.Errorf("dist: %s has no peer %q", a.node, p.From)
	}
	sh.r.Deliver(a.fabric.Net.Now(), p.From, p.Msg)
	msgs := sh.sink.Messages()
	out := &InjectResult{}
	for _, m := range msgs[sh.read:] {
		out.Emitted = append(out.Emitted, WireEmission{To: m.To, Msg: m.Data})
	}
	sh.read = len(msgs)
	return out, nil
}

// queryOracle answers the narrow cross-domain route questions about one
// prefix in one shadow: exact-best presence with its shadow-scoped
// route token (pointer identity over the wire — see shadowClone), and
// the covering route's forwarding facts.
func (a *Agent) queryOracle(p QueryOracleParams) (*QueryOracleResult, error) {
	prefix, err := netaddr.ParsePrefix(p.Prefix)
	if err != nil {
		return nil, err
	}
	sh, err := a.shadow(p.ShadowID)
	if err != nil {
		return nil, err
	}
	r := sh.r
	out := &QueryOracleResult{}
	if best := r.RIB().Best(prefix); best != nil {
		out.HasBest = true
		out.BestFP = fmt.Sprintf("r%d", sh.routeToken(best))
	}
	if cov := r.RIB().CoveringBest(prefix); cov != nil {
		out.HasCovering = true
		out.CoveringLocal = cov.Local
		if !cov.Local {
			out.CoveringNextPeer = r.PeerNameByAddr(cov.PeerRouterID)
		}
	}
	return out, nil
}

// parseStrategy maps the wire strategy name back to the engine constant
// ("" selects the generational default).
func parseStrategy(s string) (concolic.Strategy, error) {
	switch s {
	case "", "generational":
		return concolic.Generational, nil
	case "dfs":
		return concolic.DFS, nil
	case "bfs":
		return concolic.BFS, nil
	}
	return 0, fmt.Errorf("dist: unknown strategy %q", s)
}
