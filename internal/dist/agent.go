package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"dice/internal/bgp"
	"dice/internal/checkpoint"
	"dice/internal/concolic"
	"dice/internal/core"
	"dice/internal/netaddr"
	"dice/internal/netsim"
	"dice/internal/prop"
	"dice/internal/rib"
	"dice/internal/router"
	"dice/internal/telemetry"
	"dice/internal/trace"
)

// Agent administers one node of a federated topology and serves the
// wire protocol for it. It instantiates the topology locally — netsim
// convergence is deterministic, so every agent of the same topology file
// arrives at an identical converged fabric — but exposes only its own
// node over the wire: exploration runs on its node's checkpoint clones,
// witness messages are delivered to its node's shadow clones, and oracle
// queries answer facts about its node alone. The other nodes' state
// never crosses the RPC boundary; the coordinator composes the
// cross-node picture purely from the narrow per-node answers.
type Agent struct {
	rpcServer

	topo     *core.Topology
	node     string
	fabric   *core.Fabric
	self     *router.Router
	boundary uint32
	// sharedFabric marks an agent built by NewSharedAgents: its fabric is
	// shared with the topology's other agents, so fabric-mutating methods
	// (replay) are refused.
	sharedFabric bool

	// MaxProtoVersion caps the wire protocol version this agent will
	// negotiate (0 means ProtoLatest). Setting it to ProtoV1 makes the
	// agent behave exactly like a pre-v2 deployment: it answers hello
	// without a version and keeps speaking JSON — which is also how the
	// negotiation fallback tests simulate old agents.
	MaxProtoVersion int

	states *concolic.StateMap // per-(scenario, peer) warm exploration state
	store  *checkpoint.Store  // page-deduplicating snapshot store

	// Telemetry (nil unless EnableTelemetry ran): handler-level counters
	// and the per-round concolic metrics threaded into every explore.
	am        *agentMetrics
	concolicM *concolic.Metrics

	// reqMu serializes request handling across connections: routers and
	// shadow clones are not thread-safe, and one request at a time is
	// all the coordinator ever issues per agent anyway (its parallelism
	// is across agents, not within one).
	reqMu sync.Mutex

	// Idempotency memos (guarded by reqMu, like all handler state). The
	// coordinator keys explores on its round sequence and replays on a
	// delivery key, so a retry after a reconnect returns the memoized
	// answer instead of re-executing — at-least-once delivery with
	// exactly-once effects. exploreMemo keeps only the latest round per
	// (peer, scenario); replayMemo keeps every applied key (one entry
	// per distinct replayed trace, so it stays small).
	//
	// Round and replay keys are coordinator-local sequences, so the memos
	// are only valid within one coordinator session: agents are long-lived
	// servers, and a second dice run would otherwise collide with the
	// first run's keys and read its stale answers. The coordinator mints a
	// session nonce and sends it in the hello; when the nonce changes the
	// memos are dropped (see hello). Reconnects of the same coordinator
	// carry the same nonce and still hit the memos.
	session     uint64
	exploreMemo map[string]exploreMemoEntry
	replayMemo  map[uint64]*ReplayResult

	// props is the property set the coordinator shipped in its hello
	// (compiled from HelloParams.Properties, list order preserved).
	// queryOracle answers WantProps requests against it by index.
	props []*prop.Compiled

	mu       sync.Mutex
	shadows  map[uint64]*shadowClone
	nextID   uint64
	lastSnap *checkpoint.Snapshot
}

// exploreMemoEntry is one memoized explore answer, valid for one round.
type exploreMemoEntry struct {
	round uint64
	out   *ExploreResult
}

// noShadowMarker is the stable substring of the agent's missing-shadow
// error. The coordinator matches it (IsShadowLoss) to tell "this shadow
// died with a replaced agent — replay the witness on fresh clones" from
// genuine application errors.
const noShadowMarker = "has no shadow"

// shadowClone is one witness-propagation clone of the agent's node: a
// COW copy whose outbound traffic lands in a capture sink the agent
// drains back to the coordinator per delivery. routeIDs tokenizes the
// *rib.Route pointers returned by oracle queries, so the coordinator's
// pre/post comparisons carry the in-process backend's exact
// pointer-identity semantics across the wire (a byte-identical
// reinstall still changes the token, exactly as it changes the
// pointer).
type shadowClone struct {
	r    *router.Router
	sink *netsim.CaptureSink
	read int // sink messages already returned

	routeIDs  map[*rib.Route]uint64
	nextRoute uint64

	// applied memoizes delivery results by idempotency key (the value is
	// an *InjectResult or *InjectBatchResult), so a delivery retried
	// after a reconnect answers from memory instead of feeding the clone
	// twice. Freed with the shadow at shadowClose.
	applied map[uint64]any
}

// routeToken returns the shadow-scoped stable token for a route object.
func (sh *shadowClone) routeToken(rt *rib.Route) uint64 {
	id, ok := sh.routeIDs[rt]
	if !ok {
		sh.nextRoute++
		id = sh.nextRoute
		sh.routeIDs[rt] = id
	}
	return id
}

// NewAgent builds the agent's local fabric and takes ownership of node.
func NewAgent(topo *core.Topology, node string) (*Agent, error) {
	boundary, err := topo.BoundaryCommunity()
	if err != nil {
		return nil, err
	}
	fabric, err := topo.Build()
	if err != nil {
		return nil, err
	}
	return newAgent(topo, node, fabric, boundary, false)
}

// NewSharedAgents builds one agent per topology node over a single
// shared fabric. A topology is instantiated and converged once — at
// thousands of nodes a per-agent fabric would multiply a
// gigabyte-scale build by the node count — and every agent serves its
// own node of it. All RPC methods except replay operate on clones or
// read-only views, so agents over a shared fabric stay independent;
// replay (which mutates the live fabric, and fanned out to N agents
// would apply one trace N times) is refused.
func NewSharedAgents(topo *core.Topology) (map[string]*Agent, error) {
	boundary, err := topo.BoundaryCommunity()
	if err != nil {
		return nil, err
	}
	fabric, err := topo.Build()
	if err != nil {
		return nil, err
	}
	agents := make(map[string]*Agent, len(topo.Nodes))
	for _, n := range topo.Nodes {
		a, err := newAgent(topo, n.Name, fabric, boundary, true)
		if err != nil {
			return nil, err
		}
		agents[n.Name] = a
	}
	return agents, nil
}

func newAgent(topo *core.Topology, node string, fabric *core.Fabric, boundary uint32, shared bool) (*Agent, error) {
	self, ok := fabric.Routers[node]
	if !ok {
		return nil, fmt.Errorf("dist: topology %q has no node %q (nodes: %v)", topo.Name, node, fabric.NodeNames())
	}
	a := &Agent{
		topo:         topo,
		node:         node,
		fabric:       fabric,
		self:         self,
		boundary:     boundary,
		sharedFabric: shared,
		states:       concolic.NewStateMap(),
		store:        checkpoint.NewStore(0),
		shadows:      make(map[uint64]*shadowClone),
		exploreMemo:  make(map[string]exploreMemoEntry),
		replayMemo:   make(map[uint64]*ReplayResult),
	}
	a.rpcServer = rpcServer{handler: a, name: node}
	return a, nil
}

// Node returns the node this agent administers.
func (a *Agent) Node() string { return a.node }

// EnableTelemetry registers this agent's metric families on reg and
// starts recording: RPC server counters, checkpoint pages, memo hits,
// open shadows, and the concolic engine's per-round exploration metrics.
// Call it before serving; a nil registry leaves telemetry off.
func (a *Agent) EnableTelemetry(reg *telemetry.Registry) {
	a.rpcServer.tm = newServerMetrics(reg)
	a.am = newAgentMetrics(reg)
	a.concolicM = concolic.NewMetrics(reg)
}

// SeedExploreState attaches serialized cross-round exploration memory
// (concolic ExploreState wire encoding) to the agent's warm-state slot
// for one (scenario, peer) target — the coordinator's warm handoff: a
// replacement agent establishing cold inherits the frontier its dead
// predecessor had shipped, so its first warm round skips every path the
// fleet already explored instead of rediscovering them.
func (a *Agent) SeedExploreState(scenario, peer string, data []byte) error {
	st, err := concolic.DecodeExploreState(data)
	if err != nil {
		return fmt.Errorf("dist: %s warm state for %s/%s: %w", a.node, scenario, peer, err)
	}
	a.reqMu.Lock()
	defer a.reqMu.Unlock()
	a.states.Attach(a.node+"/"+scenario+"/"+peer, st)
	return nil
}

// handle dispatches one request, one at a time per agent. Requests from
// concurrent connections serialize on reqMu — the node's routers and
// shadow clones are single-threaded state.
func (a *Agent) handle(method string, params json.RawMessage) (any, error) {
	a.reqMu.Lock()
	defer a.reqMu.Unlock()
	switch method {
	case MethodHello:
		var p HelloParams
		if len(params) > 0 {
			if err := json.Unmarshal(params, &p); err != nil {
				return nil, err
			}
		}
		return a.hello(p)
	case MethodCheckpoint:
		return a.checkpoint()
	case MethodExplore:
		var p ExploreParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return a.explore(p)
	case MethodShadowOpen:
		return a.shadowOpen(), nil
	case MethodInjectWitness:
		var p InjectParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return a.inject(p)
	case MethodInjectWitnessBatch:
		var p InjectBatchParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return a.injectBatch(p)
	case MethodShadowClose:
		var p ShadowCloseParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		a.shadowClose(p.ShadowID)
		return struct{}{}, nil
	case MethodQueryOracle:
		var p QueryOracleParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return a.queryOracle(p)
	case MethodReplay:
		var p ReplayParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return a.replay(p)
	case MethodSeed:
		var p SeedParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return a.seed(p)
	}
	return nil, fmt.Errorf("dist: unknown method %q", method)
}

// handleV2 dispatches one binary-codec request. Same handlers, same
// reqMu serialization as the JSON path; only the parameter decoding
// differs.
func (a *Agent) handleV2(method string, body []byte) (any, error) {
	a.reqMu.Lock()
	defer a.reqMu.Unlock()
	switch method {
	case MethodHello:
		var p HelloParams
		if err := decodeBodyV2(body, &p); err != nil {
			return nil, err
		}
		return a.hello(p)
	case MethodCheckpoint:
		if err := decodeBodyV2(body, nil); err != nil {
			return nil, err
		}
		return a.checkpoint()
	case MethodExplore:
		var p ExploreParams
		if err := decodeBodyV2(body, &p); err != nil {
			return nil, err
		}
		return a.explore(p)
	case MethodShadowOpen:
		if err := decodeBodyV2(body, nil); err != nil {
			return nil, err
		}
		return a.shadowOpen(), nil
	case MethodInjectWitness:
		var p InjectParams
		if err := decodeBodyV2(body, &p); err != nil {
			return nil, err
		}
		return a.inject(p)
	case MethodInjectWitnessBatch:
		var p InjectBatchParams
		if err := decodeBodyV2(body, &p); err != nil {
			return nil, err
		}
		return a.injectBatch(p)
	case MethodShadowClose:
		var p ShadowCloseParams
		if err := decodeBodyV2(body, &p); err != nil {
			return nil, err
		}
		a.shadowClose(p.ShadowID)
		return nil, nil
	case MethodQueryOracle:
		var p QueryOracleParams
		if err := decodeBodyV2(body, &p); err != nil {
			return nil, err
		}
		return a.queryOracle(p)
	case MethodReplay:
		var p ReplayParams
		if err := decodeBodyV2(body, &p); err != nil {
			return nil, err
		}
		return a.replay(p)
	case MethodSeed:
		var p SeedParams
		if err := decodeBodyV2(body, &p); err != nil {
			return nil, err
		}
		return a.seed(p)
	}
	return nil, fmt.Errorf("dist: unknown method %q", method)
}

// hello identifies the node and negotiates the protocol version: the
// minimum of the client's advertised maximum and this agent's own cap.
// A v1 client sends no MaxVersion (reads as 0 → v1) and ignores the
// Version field in the result, so both directions of version skew
// degrade to JSON without configuration.
//
// The hello also scopes the idempotency memos: a new coordinator session
// nonce invalidates the previous session's explore/replay memos, whose
// keys are coordinator-local sequences that restart at 1 per session. A
// zero nonce (a client predating the field) leaves the memos alone.
// Shadows are untouched — their delivery memos live and die with the
// shadow itself.
//
// A hello carrying Properties replaces the agent's compiled property
// set; a malformed property fails the handshake, so the coordinator
// learns about it before any round runs instead of mid-witness.
func (a *Agent) hello(p HelloParams) (*HelloResult, error) {
	if p.Session != 0 && p.Session != a.session {
		a.session = p.Session
		clear(a.exploreMemo)
		clear(a.replayMemo)
	}
	if len(p.Properties) > 0 {
		props, err := prop.CompileSources(p.Properties)
		if err != nil {
			return nil, fmt.Errorf("dist: %s: hello %w", a.node, err)
		}
		a.props = props
	}
	agentMax := a.MaxProtoVersion
	if agentMax <= 0 || agentMax > ProtoLatest {
		agentMax = ProtoLatest
	}
	clientMax := p.MaxVersion
	if clientMax <= 0 {
		clientMax = ProtoV1
	}
	return &HelloResult{
		Node:     a.node,
		Topology: a.topo.Name,
		AS:       a.self.Config().LocalAS,
		Prefixes: a.self.RIB().Prefixes(),
		Version:  min(clientMax, agentMax),
	}, nil
}

// checkpoint serializes the node's state into the page store and returns
// the bytes. Successive checkpoints share unchanged pages; only the
// latest snapshot is retained.
func (a *Agent) checkpoint() (*CheckpointResult, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	before := a.store.Stats()
	snap := a.store.TakeChunks(fmt.Sprintf("%s-ckpt", a.node), a.self.EncodeStateChunks())
	after := a.store.Stats()
	if a.lastSnap != nil {
		a.lastSnap.Release()
	}
	a.lastSnap = snap
	ingested := int(after.Ingested - before.Ingested)
	shared := int(after.SharedHits - before.SharedHits)
	a.am.noteCheckpoint(snap.Pages(), ingested-shared)
	return &CheckpointResult{
		State:       snap.Bytes(),
		Pages:       snap.Pages(),
		UniquePages: ingested - shared,
	}, nil
}

// explore runs one concolic exploration round on the agent's node
// through the same per-target pipeline the in-process federated
// backend uses (core.PrepareTarget / Analyze / WitnessRefs — the
// parity contract lives there), exploring the engine solo instead of
// as a fleet member.
func (a *Agent) explore(p ExploreParams) (*ExploreResult, error) {
	// Round-keyed idempotency: a coordinator retrying after a reconnect
	// re-sends the same round number, and must get the same answer the
	// lost response carried — re-running under ReuseState would skip the
	// already-reported paths and answer differently.
	memoKey := p.Peer + "|" + p.Scenario
	if p.Round != 0 {
		if e, ok := a.exploreMemo[memoKey]; ok && e.round == p.Round {
			a.am.noteMemoHit("explore")
			return e.out, nil
		}
	}
	strat, err := parseStrategy(p.Strategy)
	if err != nil {
		return nil, err
	}
	engOpts := concolic.Options{
		Strategy:    strat,
		MaxRuns:     p.MaxRuns,
		MaxDepth:    p.MaxDepth,
		Workers:     p.Workers,
		SolverNodes: p.SolverNodes,
		TimeBudget:  time.Duration(p.TimeBudgetNS),
		Metrics:     a.concolicM,
	}
	tg := core.ResolvedTarget{Node: a.node, Peer: p.Peer, Scenario: p.Scenario, Explicit: p.Explicit}
	tp, err := core.PrepareTarget(a.self, tg, engOpts, a.states, p.ReuseState)
	if err != nil {
		var seedErr *core.SeedUnavailableError
		if errors.As(err, &seedErr) && !p.Explicit {
			skipped := &ExploreResult{Skipped: seedErr.Err.Error(), Scenario: p.Scenario}
			if p.Round != 0 {
				a.exploreMemo[memoKey] = exploreMemoEntry{round: p.Round, out: skipped}
			}
			return skipped, nil
		}
		return nil, fmt.Errorf("dist: %s/%s: %w", a.node, p.Peer, err)
	}
	rep := tp.Engine.Explore()
	r := tp.Analyze(a.self, engOpts, a.boundary, rep)

	out := &ExploreResult{
		Scenario:          r.Scenario,
		Runs:              rep.Runs,
		NewPaths:          len(rep.Paths),
		BranchesSeen:      rep.BranchesSeen,
		SolverCalls:       rep.SolverCalls,
		SolverSat:         rep.SolverSat,
		SolverUnsat:       rep.SolverUnsat,
		CacheHits:         rep.CacheHits,
		SkippedPaths:      rep.SkippedPaths,
		SkippedNegations:  rep.SkippedNegations,
		ElapsedNS:         rep.Elapsed.Nanoseconds(),
		CapturedMessages:  r.CapturedMessages,
		WitnessesRejected: r.WitnessesRejected,
	}
	for _, f := range r.Findings {
		wf := WireFinding{
			Kind:      f.Kind,
			Peer:      f.Peer,
			Prefix:    f.Prefix.String(),
			LeakRange: f.LeakRange,
			OriginAS:  f.OriginAS,
			VictimAS:  f.VictimAS,
			Seq:       f.Seq,
			Validated: f.Validated,
			SpreadTo:  f.SpreadTo,
			Input:     f.Input,
			Rendered:  f.String(),
		}
		if f.VictimPrefix != (netaddr.Prefix{}) {
			wf.VictimPrefix = f.VictimPrefix.String()
		}
		out.Findings = append(out.Findings, wf)
	}
	for _, wr := range tp.WitnessRefs(r) {
		wire, err := bgp.Encode(wr.Update)
		if err != nil {
			return nil, fmt.Errorf("dist: encode witness for %s: %w", wr.Update.NLRI[0], err)
		}
		out.Witnesses = append(out.Witnesses, WireWitness{Finding: wr.Finding, Msg: wire})
	}
	if p.Round != 0 {
		a.exploreMemo[memoKey] = exploreMemoEntry{round: p.Round, out: out}
	}
	return out, nil
}

// seed derives the target's scenario seed in replica-shippable form — a
// concrete BGP UPDATE — or reports why none ships: Missing (nothing
// observed yet, the defaulted-target skip condition) or Unsupported (the
// scenario's seed is not an UPDATE, so the target explores on the node).
func (a *Agent) seed(p SeedParams) (*SeedResult, error) {
	tg := core.ResolvedTarget{Node: a.node, Peer: p.Peer, Scenario: p.Scenario}
	u, err := core.ShippableSeed(a.self, tg)
	if err != nil {
		var seedErr *core.SeedUnavailableError
		if errors.As(err, &seedErr) {
			return &SeedResult{Missing: seedErr.Err.Error()}, nil
		}
		if errors.Is(err, core.ErrSeedNotShippable) {
			return &SeedResult{Unsupported: true}, nil
		}
		return nil, err
	}
	wire, err := bgp.Encode(u)
	if err != nil {
		return nil, fmt.Errorf("dist: %s encode seed for %s: %w", a.node, p.Peer, err)
	}
	return &SeedResult{Msg: wire}, nil
}

// replay feeds a recorded trace into the agent's live local fabric. The
// fabric is deterministic, so every agent replaying the same trace —
// the coordinator fans it to all of them — converges on the same state,
// and subsequent explorations seed from the replayed history exactly as
// the in-process backend's do.
func (a *Agent) replay(p ReplayParams) (*ReplayResult, error) {
	if a.sharedFabric {
		return nil, fmt.Errorf("dist: %s shares its fabric; replay would apply the trace once per agent", a.node)
	}
	// Key-based idempotency: the coordinator re-ships its whole replay
	// history when (re-)establishing an agent. A surviving agent has
	// every key memoized and applies nothing twice; a fresh replacement
	// applies the lot and converges onto the fleet's state.
	if p.Key != 0 {
		if out, ok := a.replayMemo[p.Key]; ok {
			a.am.noteMemoHit("replay")
			return out, nil
		}
	}
	records, err := trace.Read(bytes.NewReader(p.Trace))
	if err != nil {
		return nil, err
	}
	n, err := a.fabric.ReplayTrace(p.Node, p.Peer, records)
	if err != nil {
		return nil, fmt.Errorf("dist: %s replay: %w", a.node, err)
	}
	out := &ReplayResult{Delivered: n, Prefixes: a.self.RIB().Prefixes()}
	if p.Key != 0 {
		a.replayMemo[p.Key] = out
	}
	return out, nil
}

// shadowOpen clones the node for witness propagation. The clone is COW
// (O(peers) creation) and its traffic lands in a private capture sink.
func (a *Agent) shadowOpen() *ShadowOpenResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextID++
	sink := netsim.NewCaptureSink()
	a.shadows[a.nextID] = &shadowClone{
		r:        a.self.CloneCOW(sink),
		sink:     sink,
		routeIDs: make(map[*rib.Route]uint64),
		applied:  make(map[uint64]any),
	}
	a.am.noteShadowOpened()
	return &ShadowOpenResult{ShadowID: a.nextID}
}

func (a *Agent) shadow(id uint64) (*shadowClone, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sh, ok := a.shadows[id]
	if !ok {
		return nil, fmt.Errorf("dist: %s %s %d", a.node, noShadowMarker, id)
	}
	return sh, nil
}

func (a *Agent) shadowClose(id uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.shadows[id]; ok {
		delete(a.shadows, id)
		// Gauge decrement only for shadows that existed: a re-sent close
		// (retry after a lost answer) must not drive the count negative.
		a.am.noteShadowClosed()
	}
}

// inject delivers one BGP message into a shadow clone as if sent by the
// named peer, and returns the messages the node emitted in response —
// the coordinator relays them onward, replacing netsim as the
// inter-domain scheduler.
func (a *Agent) inject(p InjectParams) (*InjectResult, error) {
	sh, err := a.shadow(p.ShadowID)
	if err != nil {
		return nil, err
	}
	if p.Key != 0 {
		if prev, ok := sh.applied[p.Key]; ok {
			if out, ok := prev.(*InjectResult); ok {
				a.am.noteMemoHit("inject")
				return out, nil
			}
			return nil, fmt.Errorf("dist: %s delivery key %d was a batch", a.node, p.Key)
		}
	}
	if a.self.Session(p.From) == nil {
		return nil, fmt.Errorf("dist: %s has no peer %q", a.node, p.From)
	}
	sh.r.Deliver(a.fabric.Net.Now(), p.From, p.Msg)
	msgs := sh.sink.Messages()
	out := &InjectResult{}
	for _, m := range msgs[sh.read:] {
		out.Emitted = append(out.Emitted, WireEmission{To: m.To, Msg: m.Data})
	}
	sh.read = len(msgs)
	if p.Key != 0 {
		sh.applied[p.Key] = out
	}
	return out, nil
}

// injectBatch delivers a run of messages into one shadow clone in
// order, returning per-delivery emissions. Semantically identical to
// the same sequence of inject calls — the batch exists to amortize the
// round trip and the framing, not to change delivery order — so the
// coordinator's relay can coalesce freely without disturbing parity.
func (a *Agent) injectBatch(p InjectBatchParams) (*InjectBatchResult, error) {
	sh, err := a.shadow(p.ShadowID)
	if err != nil {
		return nil, err
	}
	if p.Key != 0 {
		if prev, ok := sh.applied[p.Key]; ok {
			if out, ok := prev.(*InjectBatchResult); ok {
				a.am.noteMemoHit("inject")
				return out, nil
			}
			return nil, fmt.Errorf("dist: %s delivery key %d was a single inject", a.node, p.Key)
		}
	}
	out := &InjectBatchResult{Results: make([]InjectResult, 0, len(p.Deliveries))}
	for _, d := range p.Deliveries {
		// Inner deliveries carry no key of their own: the whole batch is
		// the idempotency unit, memoized below.
		r, err := a.inject(InjectParams{ShadowID: p.ShadowID, From: d.From, Msg: d.Msg})
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, *r)
	}
	if p.Key != 0 {
		sh.applied[p.Key] = out
	}
	return out, nil
}

// queryOracle answers the narrow cross-domain route questions about one
// prefix in one shadow: exact-best presence with its shadow-scoped
// route token (pointer identity over the wire — see shadowClone), and
// the covering route's forwarding facts.
func (a *Agent) queryOracle(p QueryOracleParams) (*QueryOracleResult, error) {
	prefix, err := netaddr.ParsePrefix(p.Prefix)
	if err != nil {
		return nil, err
	}
	sh, err := a.shadow(p.ShadowID)
	if err != nil {
		return nil, err
	}
	r := sh.r
	out := &QueryOracleResult{}
	best := r.RIB().Best(prefix)
	if best != nil {
		out.HasBest = true
		out.BestFP = fmt.Sprintf("r%d", sh.routeToken(best))
	}
	if cov := r.RIB().CoveringBest(prefix); cov != nil {
		out.HasCovering = true
		out.CoveringLocal = cov.Local
		if !cov.Local {
			out.CoveringNextPeer = r.PeerNameByAddr(cov.PeerRouterID)
		}
	}
	if p.WantProps && len(a.props) > 0 {
		// Per-property `at` verdicts over the installed best route, by
		// hello list index. Nodes without a best route answer true — the
		// coordinator only consults verdicts for witness-installed nodes.
		var env *prop.Env
		if best != nil {
			env = prop.NewEnv(prefix, &best.Attrs, a.boundary)
		}
		out.PropMatch = make([]bool, len(a.props))
		for i, c := range a.props {
			out.PropMatch[i] = c.AtMatches(env)
		}
	}
	return out, nil
}

// parseStrategy maps the wire strategy name back to the engine constant
// ("" selects the generational default).
func parseStrategy(s string) (concolic.Strategy, error) {
	switch s {
	case "", "generational":
		return concolic.Generational, nil
	case "dfs":
		return concolic.DFS, nil
	case "bfs":
		return concolic.BFS, nil
	}
	return 0, fmt.Errorf("dist: unknown strategy %q", s)
}
