package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"dice/internal/telemetry"
)

// ErrClientBroken marks a connection poisoned by a protocol error: a
// response whose ID matches no pending request, a garbled frame, or an
// I/O failure. Once broken, the connection is closed, every in-flight
// call fails with an error wrapping this sentinel, and all later calls
// fail immediately — the caller must reconnect, because a desynchronized
// byte stream cannot be trusted for even one more frame.
var ErrClientBroken = errors.New("dist: connection broken")

// ErrCallTimeout marks a single call that outlived its deadline. Unlike
// ErrClientBroken it does NOT poison the connection: the stream is still
// framed correctly, only this answer is late. The client forgets the
// pending ID and silently discards the response if it ever arrives, so
// later calls proceed normally. Callers that retry a timed-out call must
// make it idempotent (the coordinator keys injections and replays for
// exactly this reason) — the agent may have executed the original.
var ErrCallTimeout = errors.New("dist: call timed out")

// BrokenError is the concrete error a poisoned connection reports. It
// satisfies errors.Is(err, ErrClientBroken) and unwraps to the root
// cause, and names the offending frame ID when one is known (0 when the
// failure wasn't tied to a frame — a dial-level I/O error, say).
type BrokenError struct {
	// Cause is the underlying failure that poisoned the connection.
	Cause error
	// FrameID is the response frame that triggered the poison, 0 if the
	// failure was not attributable to a specific frame.
	FrameID uint64
}

func (e *BrokenError) Error() string {
	if e.FrameID != 0 {
		return fmt.Sprintf("%v (frame id %d): %v", ErrClientBroken, e.FrameID, e.Cause)
	}
	return fmt.Sprintf("%v: %v", ErrClientBroken, e.Cause)
}

// Unwrap exposes both the ErrClientBroken sentinel (for errors.Is) and
// the root cause (for errors.As / errors.Is on the original error).
func (e *BrokenError) Unwrap() []error { return []error{ErrClientBroken, e.Cause} }

// Pending is an in-flight call started with Client.Go.
type Pending struct {
	id     uint64
	method string
	result any
	errc   chan error  // buffered 1; receives exactly one completion
	timer  *time.Timer // deadline, nil when the client has no Timeout

	// Telemetry (zero/nil when none is attached): start stamps latency
	// observations; span is the per-call trace span, ended on completion,
	// timeout or poison.
	start time.Time
	span  *telemetry.Span
}

// Wait blocks until the response arrives (or the connection breaks, or
// the deadline passes) and returns the call's error.
func (p *Pending) Wait() error { return <-p.errc }

// Client speaks the wire protocol to one agent. Calls are pipelined:
// any number of requests may be in flight per connection, a reader
// goroutine matches responses to callers by ID. Call gives the
// synchronous one-at-a-time behaviour; Go/Wait overlap round trips.
//
// A fresh client speaks v1 JSON. Handshake negotiates the protocol
// version with the agent and, when both sides support it, switches the
// connection to the v2 binary codec. Raw Call without Handshake keeps
// working in v1 for tools that poke single methods.
type Client struct {
	conn io.ReadWriteCloser

	// Timeout bounds each call from send to response (0 = no deadline).
	// Set it before the first call; a timed-out call fails with
	// ErrCallTimeout without poisoning the connection.
	Timeout time.Duration

	// Session is the coordinator's session nonce, forwarded in the hello
	// so the agent can scope its idempotency memos to one coordinator
	// session (see HelloParams.Session). Set it before Handshake; 0 sends
	// no nonce and leaves the agent's memos alone.
	Session uint64

	// Properties is the coordinator's property set in canonical source
	// form, forwarded in the hello so the agent can compile it and answer
	// query_oracle WantProps requests (see HelloParams.Properties). Set
	// it before Handshake; empty ships nothing.
	Properties []string

	writeMu sync.Mutex // one frame write at a time

	mu        sync.Mutex
	pending   map[uint64]*Pending
	abandoned map[uint64]struct{} // timed-out IDs whose late answers are discarded
	next      uint64
	version   int
	broken    error

	// Telemetry, attached via setTelemetry after the handshake and read
	// under mu wherever the read loop or timers may race the attach.
	tm     *Metrics
	tracer *telemetry.Tracer
	node   string

	readerOnce sync.Once
}

// setTelemetry attaches metrics, tracing and the node identity to this
// client. Calls issued afterwards are instrumented; safe to call while
// the read loop is running (all access is under mu).
func (c *Client) setTelemetry(tm *Metrics, tracer *telemetry.Tracer, node string) {
	c.mu.Lock()
	c.tm, c.tracer, c.node = tm, tracer, node
	c.mu.Unlock()
}

// NewClient wraps an established connection.
func NewClient(conn io.ReadWriteCloser) *Client {
	return &Client{
		conn:      conn,
		pending:   make(map[uint64]*Pending),
		abandoned: make(map[uint64]struct{}),
		version:   ProtoV1,
	}
}

// Version reports the protocol version in use: ProtoV1 until a
// Handshake negotiates higher.
func (c *Client) Version() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Handshake performs the hello exchange and negotiates the protocol
// version, capped at maxVersion (values outside [1, ProtoLatest] mean
// "latest"). It must be the only call in flight: the hello always
// travels as v1 JSON, and both sides switch codecs between the hello
// response and the next frame. Returns the agent's hello so the caller
// can validate node and topology identity.
func (c *Client) Handshake(maxVersion int) (HelloResult, error) {
	if maxVersion <= 0 || maxVersion > ProtoLatest {
		maxVersion = ProtoLatest
	}
	var hr HelloResult
	if err := c.Call(MethodHello, &HelloParams{MaxVersion: maxVersion, Session: c.Session, Properties: c.Properties}, &hr); err != nil {
		return HelloResult{}, err
	}
	ver := hr.Version
	if ver == 0 {
		ver = ProtoV1 // v1 agents don't know the field
	}
	if ver > maxVersion {
		err := fmt.Errorf("dist: agent negotiated version %d above our cap %d", ver, maxVersion)
		c.fail(0, err)
		return HelloResult{}, err
	}
	c.mu.Lock()
	c.version = ver
	c.mu.Unlock()
	return hr, nil
}

// Call invokes method with params, decoding the response into result
// (which may be nil when the caller only cares about success).
func (c *Client) Call(method string, params, result any) error {
	return c.Go(method, params, result).Wait()
}

// Go starts a call without waiting for the response. result (if
// non-nil) is written before Wait returns; it must not be read until
// then. On a v2 connection result must be one of the wire message
// types.
func (c *Client) Go(method string, params, result any) *Pending {
	p := &Pending{method: method, result: result, errc: make(chan error, 1)}
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		p.errc <- err
		return p
	}
	c.next++
	id := c.next
	p.id = id
	c.pending[id] = p
	ver := c.version
	tm := c.tm
	if tm != nil || c.tracer != nil {
		p.start = time.Now()
		p.span = c.tracer.Start("rpc/"+c.node, method)
	}
	c.mu.Unlock()

	// Register before writing, then start the reader: the response may
	// race back before this goroutine regains the CPU.
	c.readerOnce.Do(func() { go c.readLoop() })

	payload, err := encodeRequest(id, method, params, ver)
	if err != nil {
		// An unencodable request is a caller bug, not stream corruption:
		// nothing hit the wire, so the connection stays healthy.
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		p.errc <- err
		return p
	}
	tm.clientSent(method, len(payload))
	c.writeMu.Lock()
	werr := writePayload(c.conn, payload)
	c.writeMu.Unlock()
	if werr != nil {
		// fail delivers the broken error to every pending call,
		// including this one.
		c.fail(id, fmt.Errorf("send %s: %v", method, werr))
		return p
	}
	if d := c.Timeout; d > 0 {
		c.mu.Lock()
		// The response (or a poison) may have completed the call while
		// the write lock was held; only arm a timer for a call that is
		// still in flight.
		if _, live := c.pending[id]; live {
			p.timer = time.AfterFunc(d, func() { c.expire(id, method, d) })
		}
		c.mu.Unlock()
	}
	return p
}

// maxAbandoned caps the abandoned-ID set. Entries normally leave when
// the late answer arrives, but a request lost before reaching the agent
// never gets one, so repeated timeouts would otherwise grow the set for
// the connection's lifetime. When the cap is hit the oldest (smallest)
// ID is evicted: responses arrive in request order on a pipelined
// stream, so the oldest entry is the one whose answer is most
// overdue — if it does show up after eviction, the unknown ID poisons
// the connection and the caller's recovery ladder reconnects.
const maxAbandoned = 1024

// expire times out one pending call: the ID moves to the abandoned set
// so the reader discards the late answer instead of poisoning on an
// unknown ID, and the caller gets ErrCallTimeout. The connection itself
// stays healthy.
func (c *Client) expire(id uint64, method string, d time.Duration) {
	c.mu.Lock()
	p, ok := c.pending[id]
	if !ok {
		c.mu.Unlock()
		return // answered (or poisoned) just before the timer fired
	}
	delete(c.pending, id)
	c.abandoned[id] = struct{}{}
	if len(c.abandoned) > maxAbandoned {
		oldest := id
		for a := range c.abandoned {
			if a < oldest {
				oldest = a
			}
		}
		delete(c.abandoned, oldest)
	}
	tm := c.tm
	c.mu.Unlock()
	tm.clientError(method, "timeout")
	p.span.End()
	p.errc <- fmt.Errorf("%w: %s (id %d) after %v", ErrCallTimeout, method, id, d)
}

// Close closes the underlying connection. In-flight calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// fail poisons the connection: records the sticky error (wrapping the
// cause, with the offending frame ID when known), closes the transport,
// and completes every pending call with the broken error.
func (c *Client) fail(frameID uint64, cause error) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = &BrokenError{Cause: cause, FrameID: frameID}
	}
	err := c.broken
	pend := c.pending
	c.pending = make(map[uint64]*Pending)
	tm := c.tm
	c.mu.Unlock()
	c.conn.Close()
	for _, p := range pend {
		if p.timer != nil {
			p.timer.Stop()
		}
		tm.clientError(p.method, "broken")
		p.span.End()
		p.errc <- err
	}
}

// readLoop drains response frames and completes pending calls. Any
// framing-level problem poisons the connection and stops the loop.
func (c *Client) readLoop() {
	for {
		payload, err := readPayload(c.conn)
		if err != nil {
			c.fail(0, fmt.Errorf("recv: %v", err))
			return
		}
		// The payload's first octet discriminates the codec: v2
		// responses lead with their kind byte, JSON documents with '{'.
		// Decoding by inspection (rather than tracked state) makes the
		// v1→v2 switch raceless: the frame says what it is.
		var (
			id     uint64
			errMsg string
			body   []byte
			isV2   bool
		)
		if len(payload) > 0 && payload[0] == frameResponseV2 {
			isV2 = true
			id, errMsg, body, err = parseResponseV2(payload)
		} else {
			var resp response
			err = json.Unmarshal(payload, &resp)
			id, errMsg, body = resp.ID, resp.Error, resp.Result
		}
		if err != nil {
			c.fail(id, fmt.Errorf("garbled response: %v", err))
			return
		}
		c.mu.Lock()
		p, ok := c.pending[id]
		delete(c.pending, id)
		tm := c.tm
		if !ok {
			// A late answer to a timed-out call is expected and harmless:
			// drop the body undecoded and keep reading. Any other unknown
			// ID means the stream is desynchronized.
			if _, late := c.abandoned[id]; late {
				delete(c.abandoned, id)
				c.mu.Unlock()
				continue
			}
			c.mu.Unlock()
			c.fail(id, fmt.Errorf("response id %d matches no pending request", id))
			return
		}
		c.mu.Unlock()
		if p.timer != nil {
			p.timer.Stop()
		}
		tm.clientDone(p.method, p.start, len(payload))
		p.span.End()
		callErr := c.complete(p, errMsg, body, isV2)
		p.errc <- callErr
		if callErr != nil && errors.Is(callErr, ErrClientBroken) {
			return
		}
	}
}

// complete decodes one response into its pending call's result. A body
// that fails to decode poisons the connection (the stream can no longer
// be trusted) and returns the broken error for this call too.
func (c *Client) complete(p *Pending, errMsg string, body []byte, isV2 bool) error {
	if errMsg != "" {
		return fmt.Errorf("dist: %s: %s", p.method, errMsg)
	}
	if p.result == nil {
		return nil
	}
	if isV2 {
		msg, ok := p.result.(v2Message)
		if !ok {
			return fmt.Errorf("dist: %s result type %T has no v2 decoding", p.method, p.result)
		}
		if err := decodeBodyV2(body, msg); err != nil {
			c.fail(p.id, fmt.Errorf("decode %s result: %v", p.method, err))
			c.mu.Lock()
			err = c.broken
			c.mu.Unlock()
			return err
		}
		return nil
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, p.result); err != nil {
			c.fail(p.id, fmt.Errorf("decode %s result: %v", p.method, err))
			c.mu.Lock()
			err = c.broken
			c.mu.Unlock()
			return err
		}
	}
	return nil
}

// encodeRequest renders one request payload in the given protocol
// version. v2 params must implement the binary codec. On a connection
// negotiated down to exactly v2, params carrying v3 tail fields are
// encoded in their legacy base layout — the v2 decoder on the far side
// rejects trailing bytes, and an agent that old has no use for the tail
// fields anyway.
func encodeRequest(id uint64, method string, params any, version int) ([]byte, error) {
	if version >= ProtoV2 {
		var msg v2Message
		if params != nil {
			m, ok := params.(v2Message)
			if !ok {
				return nil, fmt.Errorf("dist: %s params type %T has no v2 encoding", method, params)
			}
			msg = m
			if tm, tail := m.(v2TailMessage); tail && version == ProtoV2 {
				msg = v2BaseOnly{m: tm}
			}
		}
		return appendRequestV2(nil, id, method, msg)
	}
	req := request{ID: id, Method: method}
	if params != nil {
		body, err := json.Marshal(params)
		if err != nil {
			return nil, fmt.Errorf("dist: encode %s params: %w", method, err)
		}
		req.Params = body
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("dist: encode %s request: %w", method, err)
	}
	return body, nil
}
