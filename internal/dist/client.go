package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Client speaks the wire protocol to one agent. Calls are serialized:
// one request is in flight per connection at a time, which is all the
// coordinator needs (parallelism comes from one connection per agent).
type Client struct {
	mu   sync.Mutex
	conn io.ReadWriteCloser
	next uint64
}

// NewClient wraps an established connection.
func NewClient(conn io.ReadWriteCloser) *Client {
	return &Client{conn: conn}
}

// Call invokes method with params, decoding the response into result
// (which may be nil when the caller only cares about success).
func (c *Client) Call(method string, params, result any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req := request{ID: c.next, Method: method}
	if params != nil {
		body, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("dist: encode %s params: %w", method, err)
		}
		req.Params = body
	}
	if err := writeFrame(c.conn, req); err != nil {
		return fmt.Errorf("dist: send %s: %w", method, err)
	}
	var resp response
	if err := readFrame(c.conn, &resp); err != nil {
		return fmt.Errorf("dist: recv %s: %w", method, err)
	}
	if resp.ID != req.ID {
		return fmt.Errorf("dist: %s response id %d, want %d", method, resp.ID, req.ID)
	}
	if resp.Error != "" {
		return fmt.Errorf("dist: %s: %s", method, resp.Error)
	}
	if result != nil && resp.Result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			return fmt.Errorf("dist: decode %s result: %w", method, err)
		}
	}
	return nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }
