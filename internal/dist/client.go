package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrClientBroken marks a connection poisoned by a protocol error: a
// response whose ID matches no pending request, a garbled frame, or an
// I/O failure. Once broken, the connection is closed, every in-flight
// call fails with an error wrapping this sentinel, and all later calls
// fail immediately — the caller must reconnect, because a desynchronized
// byte stream cannot be trusted for even one more frame.
var ErrClientBroken = errors.New("dist: connection broken")

// Pending is an in-flight call started with Client.Go.
type Pending struct {
	method string
	result any
	errc   chan error // buffered 1; receives exactly one completion
}

// Wait blocks until the response arrives (or the connection breaks) and
// returns the call's error.
func (p *Pending) Wait() error { return <-p.errc }

// Client speaks the wire protocol to one agent. Calls are pipelined:
// any number of requests may be in flight per connection, a reader
// goroutine matches responses to callers by ID. Call gives the
// synchronous one-at-a-time behaviour; Go/Wait overlap round trips.
//
// A fresh client speaks v1 JSON. Handshake negotiates the protocol
// version with the agent and, when both sides support it, switches the
// connection to the v2 binary codec. Raw Call without Handshake keeps
// working in v1 for tools that poke single methods.
type Client struct {
	conn io.ReadWriteCloser

	writeMu sync.Mutex // one frame write at a time

	mu      sync.Mutex
	pending map[uint64]*Pending
	next    uint64
	version int
	broken  error

	readerOnce sync.Once
}

// NewClient wraps an established connection.
func NewClient(conn io.ReadWriteCloser) *Client {
	return &Client{conn: conn, pending: make(map[uint64]*Pending), version: ProtoV1}
}

// Version reports the protocol version in use: ProtoV1 until a
// Handshake negotiates higher.
func (c *Client) Version() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Handshake performs the hello exchange and negotiates the protocol
// version, capped at maxVersion (values outside [1, ProtoLatest] mean
// "latest"). It must be the only call in flight: the hello always
// travels as v1 JSON, and both sides switch codecs between the hello
// response and the next frame. Returns the agent's hello so the caller
// can validate node and topology identity.
func (c *Client) Handshake(maxVersion int) (HelloResult, error) {
	if maxVersion <= 0 || maxVersion > ProtoLatest {
		maxVersion = ProtoLatest
	}
	var hr HelloResult
	if err := c.Call(MethodHello, &HelloParams{MaxVersion: maxVersion}, &hr); err != nil {
		return HelloResult{}, err
	}
	ver := hr.Version
	if ver == 0 {
		ver = ProtoV1 // v1 agents don't know the field
	}
	if ver > maxVersion {
		err := fmt.Errorf("dist: agent negotiated version %d above our cap %d", ver, maxVersion)
		c.fail(err)
		return HelloResult{}, err
	}
	c.mu.Lock()
	c.version = ver
	c.mu.Unlock()
	return hr, nil
}

// Call invokes method with params, decoding the response into result
// (which may be nil when the caller only cares about success).
func (c *Client) Call(method string, params, result any) error {
	return c.Go(method, params, result).Wait()
}

// Go starts a call without waiting for the response. result (if
// non-nil) is written before Wait returns; it must not be read until
// then. On a v2 connection result must be one of the wire message
// types.
func (c *Client) Go(method string, params, result any) *Pending {
	p := &Pending{method: method, result: result, errc: make(chan error, 1)}
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		p.errc <- err
		return p
	}
	c.next++
	id := c.next
	c.pending[id] = p
	ver := c.version
	c.mu.Unlock()

	// Register before writing, then start the reader: the response may
	// race back before this goroutine regains the CPU.
	c.readerOnce.Do(func() { go c.readLoop() })

	payload, err := encodeRequest(id, method, params, ver)
	if err != nil {
		// An unencodable request is a caller bug, not stream corruption:
		// nothing hit the wire, so the connection stays healthy.
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		p.errc <- err
		return p
	}
	c.writeMu.Lock()
	werr := writePayload(c.conn, payload)
	c.writeMu.Unlock()
	if werr != nil {
		// fail delivers the broken error to every pending call,
		// including this one.
		c.fail(fmt.Errorf("send %s: %v", method, werr))
	}
	return p
}

// Close closes the underlying connection. In-flight calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// fail poisons the connection: records the sticky error, closes the
// transport, and completes every pending call with the broken error.
func (c *Client) fail(cause error) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = fmt.Errorf("%w: %v", ErrClientBroken, cause)
	}
	err := c.broken
	pend := c.pending
	c.pending = make(map[uint64]*Pending)
	c.mu.Unlock()
	c.conn.Close()
	for _, p := range pend {
		p.errc <- err
	}
}

// readLoop drains response frames and completes pending calls. Any
// framing-level problem poisons the connection and stops the loop.
func (c *Client) readLoop() {
	for {
		payload, err := readPayload(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("recv: %v", err))
			return
		}
		// The payload's first octet discriminates the codec: v2
		// responses lead with their kind byte, JSON documents with '{'.
		// Decoding by inspection (rather than tracked state) makes the
		// v1→v2 switch raceless: the frame says what it is.
		var (
			id     uint64
			errMsg string
			body   []byte
			isV2   bool
		)
		if len(payload) > 0 && payload[0] == frameResponseV2 {
			isV2 = true
			id, errMsg, body, err = parseResponseV2(payload)
		} else {
			var resp response
			err = json.Unmarshal(payload, &resp)
			id, errMsg, body = resp.ID, resp.Error, resp.Result
		}
		if err != nil {
			c.fail(fmt.Errorf("garbled response: %v", err))
			return
		}
		c.mu.Lock()
		p, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if !ok {
			c.fail(fmt.Errorf("response id %d matches no pending request", id))
			return
		}
		callErr := c.complete(p, errMsg, body, isV2)
		p.errc <- callErr
		if callErr != nil && errors.Is(callErr, ErrClientBroken) {
			return
		}
	}
}

// complete decodes one response into its pending call's result. A body
// that fails to decode poisons the connection (the stream can no longer
// be trusted) and returns the broken error for this call too.
func (c *Client) complete(p *Pending, errMsg string, body []byte, isV2 bool) error {
	if errMsg != "" {
		return fmt.Errorf("dist: %s: %s", p.method, errMsg)
	}
	if p.result == nil {
		return nil
	}
	if isV2 {
		msg, ok := p.result.(v2Message)
		if !ok {
			return fmt.Errorf("dist: %s result type %T has no v2 decoding", p.method, p.result)
		}
		if err := decodeBodyV2(body, msg); err != nil {
			c.fail(fmt.Errorf("decode %s result: %v", p.method, err))
			c.mu.Lock()
			err = c.broken
			c.mu.Unlock()
			return err
		}
		return nil
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, p.result); err != nil {
			c.fail(fmt.Errorf("decode %s result: %v", p.method, err))
			c.mu.Lock()
			err = c.broken
			c.mu.Unlock()
			return err
		}
	}
	return nil
}

// encodeRequest renders one request payload in the given protocol
// version. v2 params must implement the binary codec.
func encodeRequest(id uint64, method string, params any, version int) ([]byte, error) {
	if version >= ProtoV2 {
		var msg v2Message
		if params != nil {
			m, ok := params.(v2Message)
			if !ok {
				return nil, fmt.Errorf("dist: %s params type %T has no v2 encoding", method, params)
			}
			msg = m
		}
		return appendRequestV2(nil, id, method, msg)
	}
	req := request{ID: id, Method: method}
	if params != nil {
		body, err := json.Marshal(params)
		if err != nil {
			return nil, fmt.Errorf("dist: encode %s params: %w", method, err)
		}
		req.Params = body
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("dist: encode %s request: %w", method, err)
	}
	return body, nil
}
