package dist

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"dice/internal/core"
	"dice/internal/minimize"
	"dice/internal/trace"
)

// minimizeOpts is fedOpts plus witness minimization — the configuration
// whose parity the MinimalWitness contract depends on.
func minimizeOpts() core.FederatedOptions {
	opts := fedOpts()
	opts.Minimize = true
	return opts
}

// TestDistributedParityMinimization is the satellite acceptance: on
// examples/federated/topo.json, minimization over the distributed
// (loopback) backend — every candidate re-injected through the
// shadow_open/inject_witness/query_oracle RPC sequence — must settle on
// the same MinimalWitness per finding as the in-process backend. The
// comparison is the full canonical snapshot, so witnesses, minimal
// witnesses, violations and the step counters all have to agree line by
// line (one golden file checks either backend).
func TestDistributedParityMinimization(t *testing.T) {
	topo, err := core.LoadTopology("../../examples/federated/topo.json")
	if err != nil {
		t.Fatal(err)
	}

	fe, err := core.NewFederatedExperiment(topo, minimizeOpts())
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}

	coord := loopbackCoordinator(t, topo, minimizeOpts())
	dist, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}

	want := strings.Join(inproc.Snapshot(), "\n")
	got := strings.Join(dist.Snapshot(), "\n")
	if got != want {
		t.Errorf("snapshots differ:\n--- in-process ---\n%s\n--- distributed ---\n%s", want, got)
	}
	if !strings.Contains(want, "\n    minimal ") {
		t.Fatal("parity vacuous: the in-process round minimized no witness")
	}

	// The parity is per finding, not just per sorted snapshot: zip the
	// targets and compare each finding's minimal witness directly.
	minimized := 0
	for i, dt := range dist.Targets {
		it := inproc.Targets[i]
		if it.Err != nil || it.Result == nil {
			continue
		}
		for j, df := range dt.Findings {
			fi := it.Result.Findings[j]
			dr, ir := "<none>", "<none>"
			if df.MinimalWitness != nil {
				dr = minimize.Render(df.MinimalWitness)
			}
			if fi.MinimalWitness != nil {
				ir = minimize.Render(fi.MinimalWitness)
			}
			if dr != ir {
				t.Errorf("target %d finding %d (%s): distributed minimal %q, in-process %q",
					i, j, fi.Prefix, dr, ir)
			}
			if df.MinimalWitness != nil {
				minimized++
			}
		}
		// Reduction stats travel with the findings on both backends.
		if (dt.Minimization == nil) != (it.Result.Minimization == nil) {
			t.Errorf("target %d: minimization stats presence differs", i)
		} else if dt.Minimization != nil && *dt.Minimization != *it.Result.Minimization {
			t.Errorf("target %d: minimization stats differ:\n distributed: %+v\n in-process:  %+v",
				i, dt.Minimization, it.Result.Minimization)
		}
	}
	if minimized == 0 {
		t.Error("distributed round carried no minimal witnesses")
	}
}

// TestDistributedReplayParity: replaying the committed example trace
// through every agent's local fabric must leave the distributed round
// with exactly the finding set the in-process backend reports for the
// same trace — the dist half of the golden-file contract (the same
// lines are committed as examples/replay/findings.golden).
func TestDistributedReplayParity(t *testing.T) {
	raw, err := os.ReadFile("../../examples/replay/trace.mrtl")
	if err != nil {
		t.Fatal(err)
	}
	records, err := trace.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	topo, err := core.LoadTopology("../../examples/federated/topo.json")
	if err != nil {
		t.Fatal(err)
	}
	fe, err := core.NewFederatedExperiment(topo, minimizeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fe.Replay("transitA", "stub", records); err != nil {
		t.Fatal(err)
	}
	inproc, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}

	coord := loopbackCoordinator(t, topo, minimizeOpts())
	n, err := coord.Replay("transitA", "stub", raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(records) {
		t.Fatalf("coordinator replayed %d of %d records", n, len(records))
	}
	dist, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}

	want := strings.Join(inproc.Snapshot(), "\n")
	got := strings.Join(dist.Snapshot(), "\n")
	if got != want {
		t.Errorf("post-replay snapshots differ:\n--- in-process ---\n%s\n--- distributed ---\n%s", want, got)
	}
}

// TestDistributedReplayValidation: the replay RPC rejects bad ingress
// and malformed trace bytes without wedging the agents.
func TestDistributedReplayValidation(t *testing.T) {
	raw, err := os.ReadFile("../../examples/replay/trace.mrtl")
	if err != nil {
		t.Fatal(err)
	}
	coord := loopbackCoordinator(t, leakTopo3(), fedOpts())
	if _, err := coord.Replay("nonesuch", "customer", raw); err == nil {
		t.Error("replay accepted an ingress node with no agent")
	}
	if _, err := coord.Replay("provider", "nonesuch", raw); err == nil {
		t.Error("replay accepted an unknown ingress peer")
	}
	if _, err := coord.Replay("provider", "customer", raw[:10]); err == nil {
		t.Error("replay accepted truncated trace bytes")
	}
	// None of the failures may enter the replay history: reestablish
	// re-runs the history on every reconnect, and a permanently failing
	// entry would turn each recovery into a failure.
	coord.replayMu.Lock()
	histLen := len(coord.replayHistory)
	coord.replayMu.Unlock()
	if histLen != 0 {
		t.Errorf("failed replays left %d history entries; recovery would re-run them forever", histLen)
	}
	// The fleet still rounds cleanly after the rejected calls.
	if _, err := coord.Round(); err != nil {
		t.Fatalf("round after rejected replays: %v", err)
	}
}
