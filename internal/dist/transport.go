package dist

import (
	"io"
	"net"
	"time"
)

// Dialer produces a wire-protocol connection to one agent. Two
// implementations ship: Loopback pairs the coordinator with an
// in-process Agent over net.Pipe (deterministic, no sockets — the
// testing transport), and TCPDialer crosses a real process boundary.
// The coordinator is transport-agnostic; everything above Dial sees
// only an io.ReadWriteCloser.
//
// Protocol v2 pipelines requests, so the returned connection must
// tolerate one goroutine writing frames while another reads responses
// (any net.Conn does; Read and Write are never called concurrently
// with themselves, only with each other).
type Dialer interface {
	Dial() (io.ReadWriteCloser, error)
}

// Loopback connects to an in-process agent through a synchronous pipe.
type Loopback struct {
	Agent *Agent
}

// Dial implements Dialer: the agent serves the far end of a net.Pipe.
func (l Loopback) Dial() (io.ReadWriteCloser, error) {
	client, server := net.Pipe()
	go l.Agent.ServeConn(server) //nolint:errcheck // ends with the pipe
	return client, nil
}

// ReplicaLoopback connects to an in-process exploration replica through
// a synchronous pipe — the testing and single-process transport for
// replica pools, exactly as Loopback is for agents.
type ReplicaLoopback struct {
	Replica *Replica
}

// Dial implements Dialer: the replica serves the far end of a net.Pipe.
func (l ReplicaLoopback) Dial() (io.ReadWriteCloser, error) {
	client, server := net.Pipe()
	go l.Replica.ServeConn(server) //nolint:errcheck // ends with the pipe
	return client, nil
}

// TCPDialer connects to a dicenode agent listening on Addr.
type TCPDialer struct {
	Addr string
	// Timeout bounds the whole dial, including retries (0 = 5s).
	Timeout time.Duration
}

// Dial implements Dialer. Agents are commonly started in the same
// breath as the coordinator (walkthroughs, CI), so a refused or
// not-yet-listening address is retried until Timeout rather than
// failing the round on a race the operator can't see.
func (d TCPDialer) Dial() (io.ReadWriteCloser, error) {
	timeout := d.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			remaining = time.Millisecond
		}
		conn, err := net.DialTimeout("tcp", d.Addr, remaining)
		if err == nil {
			return conn, nil
		}
		if time.Now().Add(100 * time.Millisecond).After(deadline) {
			return nil, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}
