package dist

import (
	"fmt"
	"net"
	"reflect"
	"sort"
	"testing"

	"dice/internal/concolic"
	"dice/internal/core"
)

// fedOpts is the shared round configuration: a run budget generous
// enough that exploration exhausts the frontier on the example filters,
// so both backends discover the same path sets regardless of worker
// scheduling.
func fedOpts() core.FederatedOptions {
	return core.FederatedOptions{
		Engine:  concolic.Options{MaxRuns: 1000},
		Workers: 2,
	}
}

// loopbackCoordinator builds one in-process agent per topology node and
// connects a coordinator to all of them over the pipe transport.
func loopbackCoordinator(t *testing.T, topo *core.Topology, opts core.FederatedOptions, copts ...ConnOption) *Coordinator {
	t.Helper()
	var dialers []Dialer
	for _, n := range topo.Nodes {
		ag, err := NewAgent(topo, n.Name)
		if err != nil {
			t.Fatalf("agent %s: %v", n.Name, err)
		}
		dialers = append(dialers, Loopback{Agent: ag})
	}
	c, err := Connect(topo, opts, dialers, copts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// findingKey reduces a finding to every wire-carried field except Seq —
// the run sequence number depends on worker scheduling (shared fleet
// pool in-process vs solo engine on the agent), so it is shipped for
// operator reports but excluded from the parity contract.
func findingKey(f core.Finding) string {
	return fmt.Sprintf("%s|%s|%s|%s|%d|%d|%s|%t|%v",
		f.Kind, f.Peer, f.Prefix, f.LeakRange, f.OriginAS, f.VictimAS, f.VictimPrefix, f.Validated, f.SpreadTo)
}

func sortedViolations(vs []core.FederatedViolation) []string {
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		out = append(out, v.String())
	}
	sort.Strings(out)
	return out
}

// TestDistributedParityFederatedExample is the acceptance criterion:
// on examples/federated/topo.json, a distributed round over loopback
// agents must reproduce the in-process FederatedExperiment — the same
// cross-node violations and the same per-target local findings, up to
// ordering.
func TestDistributedParityFederatedExample(t *testing.T) {
	topo, err := core.LoadTopology("../../examples/federated/topo.json")
	if err != nil {
		t.Fatal(err)
	}

	fe, err := core.NewFederatedExperiment(topo, fedOpts())
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}

	coord := loopbackCoordinator(t, topo, fedOpts())
	dist, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}

	// Same targets, in resolution order.
	if len(dist.Targets) != len(inproc.Targets) {
		t.Fatalf("distributed round ran %d targets, in-process %d", len(dist.Targets), len(inproc.Targets))
	}
	for i, dt := range dist.Targets {
		it := inproc.Targets[i]
		if dt.Node != it.Node || dt.Peer != it.Peer || dt.Scenario != it.Scenario {
			t.Fatalf("target %d: distributed %s/%s/%s vs in-process %s/%s/%s",
				i, dt.Node, dt.Peer, dt.Scenario, it.Node, it.Peer, it.Scenario)
		}
		if (dt.Skipped != "") != (it.Err != nil) {
			t.Errorf("target %d: skipped mismatch: %q vs %v", i, dt.Skipped, it.Err)
			continue
		}
		if it.Err != nil {
			continue
		}
		var want, got []string
		for _, f := range it.Result.Findings {
			want = append(want, findingKey(f))
		}
		for _, f := range dt.Findings {
			got = append(got, findingKey(f))
		}
		sort.Strings(want)
		sort.Strings(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("target %d (%s←%s) findings differ:\n distributed: %v\n in-process:  %v",
				i, dt.Node, dt.Peer, got, want)
		}
		if dt.Explore.Runs == 0 && it.Result.Report.Runs > 0 {
			t.Errorf("target %d: distributed agent reported 0 runs, in-process %d", i, it.Result.Report.Runs)
		}
	}

	// Same witness traffic through the same caps.
	if dist.WitnessesInjected != inproc.WitnessesInjected || dist.WitnessesSkipped != inproc.WitnessesSkipped {
		t.Errorf("witnesses: distributed %d injected / %d skipped, in-process %d / %d",
			dist.WitnessesInjected, dist.WitnessesSkipped, inproc.WitnessesInjected, inproc.WitnessesSkipped)
	}
	if dist.PropagationSteps != inproc.PropagationSteps {
		t.Errorf("propagation steps: distributed %d, in-process %d", dist.PropagationSteps, inproc.PropagationSteps)
	}

	// The headline: identical cross-node oracle verdicts.
	got, want := sortedViolations(dist.Violations), sortedViolations(inproc.Violations)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cross-node violations differ:\n distributed: %v\n in-process:  %v", got, want)
	}
	if len(want) == 0 {
		t.Error("parity vacuous: the in-process round found no violations on the example topology")
	}
}

// TestDistributedParityDefaultTargets: with no explore list the round
// defaults to every edge in both directions, and some directions have
// no observed seed. Both backends must report the same targets in the
// same (resolution) order, with the same ran/skipped split.
func TestDistributedParityDefaultTargets(t *testing.T) {
	topoA := leakTopo3()
	topoA.Explore = nil
	fe, err := core.NewFederatedExperiment(topoA, fedOpts())
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}

	topoB := leakTopo3()
	topoB.Explore = nil
	coord := loopbackCoordinator(t, topoB, fedOpts())
	dist, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}

	if len(dist.Targets) != len(inproc.Targets) {
		t.Fatalf("distributed ran %d targets, in-process %d", len(dist.Targets), len(inproc.Targets))
	}
	skipped := 0
	for i, dt := range dist.Targets {
		it := inproc.Targets[i]
		if dt.Node != it.Node || dt.Peer != it.Peer {
			t.Errorf("target %d: distributed %s/%s vs in-process %s/%s", i, dt.Node, dt.Peer, it.Node, it.Peer)
		}
		if (dt.Skipped != "") != (it.Err != nil) {
			t.Errorf("target %d (%s←%s): skipped mismatch: %q vs %v", i, dt.Node, dt.Peer, dt.Skipped, it.Err)
		}
		if dt.Skipped != "" {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("expected at least one skipped defaulted target (no observed seed)")
	}
	got, want := sortedViolations(dist.Violations), sortedViolations(inproc.Violations)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("violations differ:\n distributed: %v\n in-process:  %v", got, want)
	}
}

// leakTopo3 is a 3-AS chain whose provider leaks NO_EXPORT-tagged
// customer routes upstream — the smallest topology where the cross-node
// leak oracle fires.
func leakTopo3() *core.Topology {
	return &core.Topology{
		Name: "dist-leak-3as",
		Nodes: []core.TopoNode{
			{Name: "customer", Config: []string{
				"router id 10.0.0.1;",
				"local as 65001;",
				"network 10.7.0.0/16;",
				"peer provider { remote 10.0.0.2 as 65002; }",
			}},
			{Name: "provider", Config: []string{
				"router id 10.0.0.2;",
				"local as 65002;",
				"filter customer_in {",
				"    if net ~ 10.7.0.0/16 then accept;",
				"    if net ~ 10.0.0.0/8{24,32} then accept;",
				"    reject;",
				"}",
				"peer customer { remote 10.0.0.1 as 65001; import filter customer_in; }",
				"peer upstream { remote 10.0.0.3 as 65003; }",
			}},
			{Name: "upstream", Config: []string{
				"router id 10.0.0.3;",
				"local as 65003;",
				"peer provider { remote 10.0.0.2 as 65002; }",
			}},
		},
		Edges: []core.TopoEdge{
			{A: "customer", B: "provider"},
			{A: "provider", B: "upstream"},
		},
		Explore: []core.ExploreTarget{
			{Node: "provider", Peer: "customer", Scenario: core.ScenarioRouteLeak},
		},
	}
}

// TestDistributedLoopbackSmoke is the CI loopback smoke: a full
// distributed round on the 3-AS leak chain confirms a route leak
// cross-node, entirely over the wire protocol.
func TestDistributedLoopbackSmoke(t *testing.T) {
	coord := loopbackCoordinator(t, leakTopo3(), fedOpts())
	res, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) != 1 || res.Targets[0].Skipped != "" {
		t.Fatalf("targets: %+v", res.Targets)
	}
	if len(res.Targets[0].Findings) == 0 {
		t.Fatalf("no local findings (agent ran %d runs)", res.Targets[0].Explore.Runs)
	}
	if res.WitnessesInjected == 0 {
		t.Fatal("no witnesses propagated cross-domain")
	}
	kinds := map[string]int{}
	for _, v := range res.Violations {
		kinds[v.Kind]++
	}
	if kinds["route-leak"] == 0 {
		t.Errorf("no cross-node route-leak confirmed; violations: %v", res.Violations)
	}
	if kinds["stale-route"] != 0 {
		t.Errorf("withdraw wave left stale routes: %v", res.Violations)
	}
}

// TestDistributedTCP is the end-to-end smoke over real sockets: one
// listener per agent, a coordinator dialing TCP, a full round with a
// confirmed cross-node violation.
func TestDistributedTCP(t *testing.T) {
	topo := leakTopo3()
	var dialers []Dialer
	for _, n := range topo.Nodes {
		ag, err := NewAgent(topo, n.Name)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go ag.ListenAndServe(ln) //nolint:errcheck // ends when ln closes
		dialers = append(dialers, TCPDialer{Addr: ln.Addr().String()})
	}
	coord, err := Connect(topo, fedOpts(), dialers)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	res, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}
	leaks := 0
	for _, v := range res.Violations {
		if v.Kind == "route-leak" {
			leaks++
		}
	}
	if leaks == 0 {
		t.Errorf("TCP round confirmed no route leak; violations: %v", res.Violations)
	}
}

// TestDistributedWarmRounds: with ReuseState the agents keep per-node
// exploration state across rounds — the second round reports no new
// paths and skips known negations, without the state crossing the wire.
func TestDistributedWarmRounds(t *testing.T) {
	opts := fedOpts()
	opts.ReuseState = true
	coord := loopbackCoordinator(t, leakTopo3(), opts)
	if _, err := coord.Round(); err != nil {
		t.Fatal(err)
	}
	warm, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}
	ex := warm.Targets[0].Explore
	if ex.NewPaths != 0 {
		t.Errorf("warm round reported %d new paths, want 0", ex.NewPaths)
	}
	if ex.SkippedNegations == 0 {
		t.Error("warm round skipped no negations")
	}
}

// TestDistributedCheckpoint: the Checkpoint RPC's serialized state must
// round-trip through core.ExploreSnapshot — restore off-node and explore
// to the same findings the owning agent reports. This is the §2.4
// "process these messages in isolation over their checkpointed states"
// surface of the protocol.
func TestDistributedCheckpoint(t *testing.T) {
	topo := leakTopo3()
	ag, err := NewAgent(topo, "provider")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Loopback{Agent: ag}.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn)
	defer cl.Close()

	var ck CheckpointResult
	if err := cl.Call(MethodCheckpoint, nil, &ck); err != nil {
		t.Fatal(err)
	}
	if len(ck.State) == 0 || ck.Pages == 0 {
		t.Fatalf("empty checkpoint: %d bytes, %d pages", len(ck.State), ck.Pages)
	}

	// A second checkpoint of unchanged state must share every page.
	var ck2 CheckpointResult
	if err := cl.Call(MethodCheckpoint, nil, &ck2); err != nil {
		t.Fatal(err)
	}
	if ck2.UniquePages != 0 {
		t.Errorf("unchanged node re-checkpointed with %d unique pages, want 0", ck2.UniquePages)
	}

	// Restore the snapshot off-node and explore it.
	var ex ExploreResult
	err = cl.Call(MethodExplore, ExploreParams{
		Peer: "customer", Scenario: core.ScenarioRouteLeak, Explicit: true, MaxRuns: 1000,
	}, &ex)
	if err != nil {
		t.Fatal(err)
	}
	seed := ag.self.LastObserved("customer")
	if seed == nil {
		t.Fatal("no observed seed on the provider←customer peering")
	}
	res, err := core.ExploreSnapshot("provider", ag.self.Config(), ck.State, "customer",
		seed, core.Options{Engine: concolic.Options{MaxRuns: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Runs == 0 {
		t.Error("snapshot exploration ran nothing")
	}
}

// TestConnectValidation: the coordinator refuses mismatched topologies,
// doubled agents, and uncovered nodes.
func TestConnectValidation(t *testing.T) {
	topo := leakTopo3()
	agents := map[string]*Agent{}
	for _, n := range topo.Nodes {
		ag, err := NewAgent(topo, n.Name)
		if err != nil {
			t.Fatal(err)
		}
		agents[n.Name] = ag
	}

	// Missing agent for one node.
	_, err := Connect(topo, fedOpts(), []Dialer{
		Loopback{Agent: agents["customer"]}, Loopback{Agent: agents["provider"]},
	})
	if err == nil {
		t.Error("Connect accepted a topology with an uncovered node")
	}

	// Two agents claiming the same node.
	_, err = Connect(topo, fedOpts(), []Dialer{
		Loopback{Agent: agents["customer"]}, Loopback{Agent: agents["provider"]},
		Loopback{Agent: agents["upstream"]}, Loopback{Agent: agents["provider"]},
	})
	if err == nil {
		t.Error("Connect accepted two agents for one node")
	}

	// Agent administering a different topology.
	other := leakTopo3()
	other.Name = "some-other-fabric"
	otherAgent, err := NewAgent(other, "provider")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Connect(topo, fedOpts(), []Dialer{
		Loopback{Agent: agents["customer"]}, Loopback{Agent: otherAgent},
		Loopback{Agent: agents["upstream"]},
	})
	if err == nil {
		t.Error("Connect accepted an agent from a different topology")
	}

	// NewAgent for an unknown node fails up front.
	if _, err := NewAgent(topo, "nonesuch"); err == nil {
		t.Error("NewAgent accepted an unknown node")
	}
}
