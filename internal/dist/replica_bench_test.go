package dist

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"dice/internal/concolic"
	"dice/internal/core"
	"dice/internal/topo"
)

// benchRTT is the simulated WAN round trip every replica call pays (via
// LatencyDialer). Replica pools earn their keep by overlapping these
// round trips across workers, so the scaling signal survives a
// single-core host where CPU-parallel speedup is impossible; 30ms is a
// same-continent RTT.
const benchRTT = 30 * time.Millisecond

// benchFabrics caches one generated AS topology + shared-fabric agent
// set per node count: at 1k nodes generation and fabric build dominate
// everything else the benchmark does, and every replica-count leg must
// measure rounds over the identical fabric anyway.
var benchFabrics sync.Map // nodes → *benchFabric

type benchFabric struct {
	once   sync.Once
	topo   *core.Topology
	agents map[string]*Agent
	err    error
}

func benchASFabric(tb testing.TB, nodes, targets int) (*core.Topology, map[string]*Agent) {
	tb.Helper()
	v, _ := benchFabrics.LoadOrStore(nodes, &benchFabric{})
	f := v.(*benchFabric)
	f.once.Do(func() {
		t, _, err := topo.Generate(topo.Spec{
			Seed:           1,
			Nodes:          nodes,
			ExploreTargets: targets,
			// Extra filter clauses give each shard real concolic work, so
			// a round measures explore+wire, not just RPC plumbing.
			PolicyClauses: 8,
		})
		if err != nil {
			f.err = err
			return
		}
		f.agents, f.err = NewSharedAgents(t)
		f.topo = t
	})
	if f.err != nil {
		tb.Fatal(f.err)
	}
	return f.topo, f.agents
}

// BenchmarkReplicaScaling measures distributed round wall-clock on a
// generated AS-relationship topology as the replica pool grows: every
// explore shard pays a simulated WAN round trip to its replica, and the
// pool hides those round trips behind each other. The acceptance
// criterion tracked in BENCH_PR8.json is monotone improvement from 1 to
// 4 replicas with at least 1.8× at 4 — measured on the as1000 legs
// (-short runs a 200-node topology, proving only that the benchmark
// still runs).
func BenchmarkReplicaScaling(b *testing.B) {
	nodes, targets := 1000, 24
	if testing.Short() {
		nodes, targets = 200, 12
	}
	asTopo, agents := benchASFabric(b, nodes, targets)
	opts := core.FederatedOptions{
		Engine:  concolic.Options{MaxRuns: 1000},
		Workers: 1,
		// One witness and a tight relay bound keep the (replica-free)
		// propagation phase a small constant across legs: the variable
		// under measurement is the exploration fan-out.
		MaxWitnesses:        1,
		MaxPropagationSteps: 64,
	}
	dialers := make([]Dialer, 0, len(asTopo.Nodes))
	for _, n := range asTopo.Nodes {
		dialers = append(dialers, Loopback{Agent: agents[n.Name]})
	}
	for _, replicas := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("as%d/replicas-%d", nodes, replicas), func(b *testing.B) {
			// The shared fabric keeps ~1GB live at 1k nodes; collecting the
			// previous leg's round garbage outside the timer keeps GC debt
			// from one leg inflating the next leg's wall-clock.
			runtime.GC()
			b.ResetTimer()
			shards := 0
			for i := 0; i < b.N; i++ {
				pool := &ReplicaPool{Min: replicas}
				for r := 0; r < replicas; r++ {
					pool.Dialers = append(pool.Dialers, LatencyDialer{
						Inner: ReplicaLoopback{Replica: NewReplica()},
						RTT:   benchRTT,
					})
				}
				coord, err := Connect(asTopo, opts, dialers, WithReplicas(pool))
				if err != nil {
					b.Fatal(err)
				}
				res, err := coord.Round()
				if err != nil {
					b.Fatal(err)
				}
				shards = pool.Stats().Completed
				if shards == 0 {
					b.Fatal("no shard reached the pool — the benchmark measured the agent fallback")
				}
				if len(res.Targets) != targets {
					b.Fatalf("round ran %d targets, want %d", len(res.Targets), targets)
				}
				coord.Close()
			}
			b.ReportMetric(float64(shards), "shards")
			b.ReportMetric(float64(replicas), "replicas")
		})
	}
}
