package dist

import (
	"errors"
	"math/rand"
	"strings"
	"time"
)

// Per-node health states the coordinator reports.
const (
	// HealthHealthy: the node is served by its dialed agent.
	HealthHealthy = "healthy"
	// HealthDegraded: the agent's reconnect budget ran out and the
	// coordinator transparently swapped in an in-process replacement —
	// the mixed-fleet fallback. Findings are unaffected (the replacement
	// runs the identical deterministic pipeline); only locality changed.
	HealthDegraded = "degraded"
	// HealthFailed: the reconnect budget ran out and fallback was
	// disabled, so calls to this node error out.
	HealthFailed = "failed"
)

// NodeHealth is one node's fault-tolerance record over the coordinator's
// lifetime. It lives beside the findings, never inside them: snapshots
// stay comparable between an all-healthy run and one that limped through
// faults — which is exactly what the chaos parity tests assert.
type NodeHealth struct {
	// State is one of the Health* constants.
	State string
	// Reconnects counts successful re-dial + re-handshake cycles.
	Reconnects int
	// Faults counts connection faults observed (broken streams, call
	// timeouts) that triggered recovery.
	Faults int
	// LastFault describes the most recent fault, "" if none.
	LastFault string
}

// RetryPolicy tunes the coordinator's fault handling. The zero value
// means: no per-call deadline, 3 reconnect attempts with 25ms–1s
// backoff, degraded fallback enabled, jitter seeded from 1.
type RetryPolicy struct {
	// RPCTimeout bounds each call from send to response (0 = none).
	RPCTimeout time.Duration
	// MaxReconnects is the re-dial budget per recovery episode before
	// the node degrades (or fails, under NoFallback). 0 means 3.
	MaxReconnects int
	// BackoffBase and BackoffCap shape the capped exponential backoff
	// between reconnect attempts (0 = 25ms base, 1s cap).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// NoFallback disables the degraded in-process replacement: when the
	// reconnect budget runs out the node is marked failed and calls
	// error instead.
	NoFallback bool
	// Seed feeds the deterministic backoff jitter (0 means 1), so test
	// runs schedule identically.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxReconnects <= 0 {
		p.MaxReconnects = 3
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 25 * time.Millisecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// backoffDelay returns the pause before reconnect attempt n (1-based):
// capped exponential with deterministic jitter in [d/2, d), so a fleet
// of recovering connections doesn't stampede the same instant while the
// schedule stays reproducible under a fixed seed.
func backoffDelay(attempt int, base, cap time.Duration, rng *rand.Rand) time.Duration {
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// isConnFault reports whether err is a transport-level failure — a
// poisoned stream or an expired deadline — as opposed to an application
// error the agent deliberately returned. Only conn faults are worth a
// reconnect-and-retry; application errors would just recur.
func isConnFault(err error) bool {
	return errors.Is(err, ErrClientBroken) || errors.Is(err, ErrCallTimeout)
}

// IsShadowLoss reports whether err is an agent telling us a shadow ID no
// longer exists — the signature of a mid-witness agent replacement
// (restart or degraded swap), whose fresh process knows none of the old
// clones. The witness lifecycle is deterministic, so the caller replays
// the whole witness on fresh shadows.
func IsShadowLoss(err error) bool {
	return err != nil && strings.Contains(err.Error(), noShadowMarker)
}
