package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"dice/internal/core"
)

// The wire protocol frames every message as a 4-byte big-endian payload
// length followed by one payload. Two payload codecs share that outer
// framing:
//
//   - v1 (the PR 4 protocol): one JSON document per frame. A request
//     names a method and carries its parameters; the response echoes the
//     request ID with either a result or an error string. Binary
//     payloads (serialized router state, BGP wire messages) ride inside
//     the JSON as base64 via encoding/json's []byte convention.
//   - v2 (wirev2.go): a compact binary encoding in the style of the
//     internal/bgp message codec — varint/fixed-width fields, no
//     marshaling garbage, no base64 inflation.
//
// Every connection starts in v1: the codec of the `hello` exchange is
// the lingua franca both generations speak. A v2-capable client offers
// its maximum version in HelloParams; a v2-capable agent answers with
// the negotiated version in HelloResult and both sides switch to binary
// framing for every subsequent frame. Either side omitting the field
// pins the connection to v1 JSON — a new coordinator drives an old
// agent (and vice versa) with zero configuration.
//
// Requests pipeline: a client may keep many requests in flight per
// connection, and responses are matched by ID (the agent preserves
// per-connection order today, but clients must not rely on it).

// Wire protocol versions. Version 1 is the PR 4 length-prefixed
// JSON-RPC; version 2 is the binary codec of wirev2.go plus the
// inject_witness_batch method; version 3 keeps v2's framing and method
// codes but appends the fault-tolerance fields (ExploreParams.Round,
// ReplayParams/InjectParams/InjectBatchParams.Key, HelloParams.Session)
// as tail fields of the existing bodies. v2 decoders are strict about
// trailing bytes, so a v3 client negotiated down to v2 encodes the
// original layouts — the tail fields simply don't travel (see
// v2TailMessage in wirev2.go for the evolution rule).
//
// Version 4 adds the declarative-property and page-cache tails:
// HelloParams.Properties, QueryOracleParams.WantProps /
// QueryOracleResult.PropMatch, and the ReplicaExploreParams page fields
// with ReplicaExploreResult.MissingPages. Unlike the v3 tails these are
// appended only when the feature is in use (a false/empty field adds no
// bytes), so a v4 client never has to down-encode for a v3 peer — it
// simply never turns the feature on unless the negotiated version says
// the peer understands it. ProtoV4 is therefore purely a capability
// signal: "this side reads the conditional tails".
const (
	ProtoV1     = 1
	ProtoV2     = 2
	ProtoV3     = 3
	ProtoV4     = 4
	ProtoLatest = ProtoV4
)

// maxFrame bounds a single frame; a full-table router checkpoint is a
// few MB, so 64 MiB leaves ample headroom while still catching a
// corrupted length prefix before it turns into an OOM.
const maxFrame = 64 << 20

// request is one RPC call.
type request struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

// response answers one request.
type response struct {
	ID     uint64          `json:"id"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// writePayload sends one length-prefixed payload. The header and body
// go out in a single Write so concurrent writers (the pipelined client,
// the agent's per-connection worker) interleave only at whole-frame
// granularity under their write locks.
func writePayload(w io.Writer, body []byte) error {
	if len(body) > maxFrame {
		return fmt.Errorf("dist: frame of %d bytes exceeds the %d byte limit", len(body), maxFrame)
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(body)))
	copy(buf[4:], body)
	_, err := w.Write(buf)
	return err
}

// readPayload receives one length-prefixed payload.
func readPayload(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("dist: incoming frame of %d bytes exceeds the %d byte limit", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// writeFrame sends one length-prefixed JSON document (v1 codec).
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writePayload(w, body)
}

// readFrame receives one length-prefixed JSON document into v (v1 codec).
func readFrame(r io.Reader, v any) error {
	body, err := readPayload(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// --- Method names ------------------------------------------------------------

const (
	// MethodHello identifies the agent: which node it administers.
	MethodHello = "hello"
	// MethodCheckpoint snapshots the agent's node state (serialized,
	// page-deduplicated) and returns the bytes — the §2.4 "checkpoint
	// their state and process these messages in isolation" surface; the
	// returned state round-trips through core.ExploreSnapshot.
	MethodCheckpoint = "checkpoint"
	// MethodExplore runs one concolic exploration round on the agent's
	// node (checkpoint clone, scenario seed, per-node warm state) and
	// returns findings plus materialized witness announcements.
	MethodExplore = "explore"
	// MethodShadowOpen clones the agent's node for witness propagation;
	// MethodInjectWitness delivers one message into a shadow clone and
	// returns what the node would emit in response; MethodShadowClose
	// discards the clone.
	MethodShadowOpen    = "shadow_open"
	MethodInjectWitness = "inject_witness"
	MethodShadowClose   = "shadow_close"
	// MethodInjectWitnessBatch delivers an ordered run of messages into
	// one shadow clone in a single round trip, with per-delivery results
	// — the coordinator's relay coalesces consecutive same-timestamp
	// deliveries to one agent through it. v2 connections only.
	MethodInjectWitnessBatch = "inject_witness_batch"
	// MethodQueryOracle is the narrow cross-domain query interface: best
	// and covering route facts about one prefix in one shadow, enough
	// for the coordinator's cross-node oracles and forward tracing —
	// and nothing more.
	MethodQueryOracle = "query_oracle"
	// MethodReplay feeds a recorded trace (internal/trace encoding) into
	// the agent's live local fabric through a node←peer ingress session.
	// Every agent of a topology replays the same trace — the local
	// fabrics are deterministic, so all agents converge on identical
	// post-replay state without any node state crossing the wire.
	MethodReplay = "replay"
	// MethodSeed derives the target's scenario seed on the agent in the
	// one form a stateless replica can consume: a concrete BGP UPDATE.
	// Together with MethodCheckpoint it is everything the coordinator
	// ships when it offloads exploration to a replica pool.
	MethodSeed = "seed"
	// MethodExploreCheckpoint is the replica-side explore: restore a
	// shipped checkpoint (the node's config and serialized state), run
	// the same per-target pipeline the node agent runs, and return the
	// same ExploreResult — plus the exploration's frontier memory, so
	// the coordinator can keep rounds warm and reseed replacements.
	MethodExploreCheckpoint = "explore_checkpoint"
)

// --- Method payloads ---------------------------------------------------------

// HelloParams opens version negotiation. A v1 client sends no params at
// all; a v1 agent ignores whatever params arrive — so the field is only
// ever honored when both generations understand it.
type HelloParams struct {
	// MaxVersion is the highest protocol version the client speaks.
	MaxVersion int `json:"max_version,omitempty"`
	// Session is the coordinator's session nonce, minted fresh per
	// Connect. Agents are long-lived servers whose idempotency memos are
	// keyed by coordinator-local sequences (explore rounds, replay keys),
	// so the memos are only valid within the session that minted the
	// keys: an agent seeing a new nonce drops its memos, while reconnects
	// of the same coordinator (same nonce) still answer retries from
	// them. 0 — a client predating the field — leaves the memos alone.
	Session uint64 `json:"session,omitempty"`
	// Properties is the coordinator's full property set (canonical
	// internal/prop source, one definition per entry, in evaluation
	// order). Agents compile it at hello — a malformed property fails the
	// handshake, before any round runs — and answer query_oracle WantProps
	// requests against it by list index. The hello always travels v1
	// JSON, so an old agent simply ignores the field; the coordinator
	// version-gates the features that need agent-side evaluation
	// (properties with `at` clauses require ≥ ProtoV4). Empty leaves the
	// agent's previous property set untouched.
	Properties []string `json:"properties,omitempty"`
}

// HelloResult describes the agent.
type HelloResult struct {
	// Node is the topology node this agent administers.
	Node string `json:"node"`
	// Topology echoes the agent's topology name, so a coordinator
	// driving the wrong fabric fails fast instead of mis-propagating.
	Topology string `json:"topology"`
	AS       uint16 `json:"as"`
	// Prefixes is the node's converged Loc-RIB size (a cheap liveness
	// and convergence cross-check).
	Prefixes int `json:"prefixes"`
	// Version is the negotiated protocol version:
	// min(client max, agent max), at least 1. A v1 agent never sets it
	// (the zero value reads as v1), and the connection switches to the
	// v2 binary codec immediately after this response when it is ≥ 2.
	Version int `json:"version,omitempty"`
}

// CheckpointResult is one serialized node snapshot.
type CheckpointResult struct {
	// State is the complete serialized node state
	// (router.EncodeState format; router.DecodeState restores it).
	State []byte `json:"state"`
	// Pages/UniquePages account the snapshot in the agent's page store:
	// pages it holds, and how many were new vs shared with earlier
	// snapshots of this node (the fork-COW accounting of §4.1).
	Pages       int `json:"pages"`
	UniquePages int `json:"unique_pages"`
}

// ExploreParams asks the agent to run one exploration round.
type ExploreParams struct {
	// Peer and Scenario select the target; Explicit mirrors
	// core.ResolvedTarget (an explicit target's seed failure is a round
	// error; a defaulted one just reports Skipped).
	Peer     string `json:"peer"`
	Scenario string `json:"scenario"`
	Explicit bool   `json:"explicit"`
	// Engine knobs (the serializable subset of concolic.Options —
	// Connect rejects the process-local rest: State, Cancel,
	// SolverCache).
	MaxRuns      int    `json:"max_runs,omitempty"`
	MaxDepth     int    `json:"max_depth,omitempty"`
	Workers      int    `json:"workers,omitempty"`
	SolverNodes  int    `json:"solver_nodes,omitempty"`
	Strategy     string `json:"strategy,omitempty"`
	TimeBudgetNS int64  `json:"time_budget_ns,omitempty"`
	// ReuseState keeps per-(node, scenario, peer) exploration state on
	// the agent across rounds — warm rounds skip known paths without the
	// state ever crossing the wire.
	ReuseState bool `json:"reuse_state,omitempty"`
	// Round is the coordinator's round sequence number, the explore
	// idempotency key: the agent memoizes its last result per
	// (peer, scenario) under this key, so a retry after a reconnect
	// returns the memoized result instead of re-exploring (which, under
	// ReuseState, would otherwise skip the paths the lost answer already
	// reported). 0 disables the memo. The field travels on v1 JSON and
	// ≥v3 binary connections; a v2-negotiated binary connection omits it
	// (the agent reads 0), since v2 decoders reject the tail bytes.
	Round uint64 `json:"round,omitempty"`
}

// WireFinding is one local oracle finding, flattened for the wire. It
// carries every core.Finding field (prefixes as strings, the leak range
// structurally), so distributed findings lose nothing the in-process
// backend reports.
type WireFinding struct {
	Kind         string            `json:"kind"`
	Peer         string            `json:"peer"`
	Prefix       string            `json:"prefix"`
	LeakRange    core.RangeDesc    `json:"leak_range,omitempty"`
	OriginAS     uint16            `json:"origin_as,omitempty"`
	VictimAS     uint16            `json:"victim_as,omitempty"`
	VictimPrefix string            `json:"victim_prefix,omitempty"`
	Seq          int               `json:"seq,omitempty"`
	Validated    bool              `json:"validated"`
	SpreadTo     []string          `json:"spread_to,omitempty"`
	Input        map[string]uint64 `json:"input,omitempty"`
	// Rendered is the finding's operator-facing String() — the agent
	// formats it so the coordinator never needs the scenario's internals.
	Rendered string `json:"rendered"`
}

// ExploreResult is the agent's share of a federated round.
type ExploreResult struct {
	// Skipped is set (with the reason) when a defaulted target had no
	// observed seed; the coordinator reports it like the in-process
	// backend reports a FederatedTargetResult.Err.
	Skipped string `json:"skipped,omitempty"`

	Scenario         string `json:"scenario"`
	Runs             int    `json:"runs"`
	NewPaths         int    `json:"new_paths"`
	BranchesSeen     int    `json:"branches_seen"`
	SolverCalls      int    `json:"solver_calls"`
	SolverSat        int    `json:"solver_sat"`
	SolverUnsat      int    `json:"solver_unsat"`
	CacheHits        int    `json:"cache_hits"`
	SkippedPaths     int    `json:"skipped_paths"`
	SkippedNegations int    `json:"skipped_negations"`
	ElapsedNS        int64  `json:"elapsed_ns"`

	CapturedMessages  int           `json:"captured_messages"`
	WitnessesRejected int           `json:"witnesses_rejected"`
	Findings          []WireFinding `json:"findings,omitempty"`

	// Witnesses are the validated findings' concrete announcements,
	// in finding order — what the coordinator propagates between
	// domains.
	Witnesses []WireWitness `json:"witnesses,omitempty"`
}

// WireWitness is one validated finding's concrete announcement. Finding
// indexes ExploreResult.Findings, so per-witness artifacts the
// coordinator computes (the minimal witness) land back on the right
// finding — the same linkage core.WitnessRef provides in-process.
type WireWitness struct {
	Finding int `json:"finding"`
	// Msg is the announcement in BGP wire encoding.
	Msg []byte `json:"msg"`
}

// SeedParams selects which target's scenario seed to derive.
type SeedParams struct {
	Peer     string `json:"peer"`
	Scenario string `json:"scenario"`
}

// SeedResult is the derived seed, or why none shipped. Exactly one of
// the three outcomes holds: Msg set (a concrete UPDATE in BGP wire
// encoding), Unsupported (the scenario's seed is not an UPDATE — the
// target must explore on the node itself), or Missing (the node has
// observed nothing usable yet — the same condition PrepareTarget
// reports as SeedUnavailableError).
type SeedResult struct {
	Msg         []byte `json:"msg,omitempty"`
	Unsupported bool   `json:"unsupported,omitempty"`
	Missing     string `json:"missing,omitempty"`
}

// ReplicaExploreParams ships one exploration target to a stateless
// replica: the node's identity and configuration, its checkpointed
// state, the scenario seed, the engine knobs, and the round/shard keys
// that make the call idempotent. Nothing here refers back to the
// coordinator's fabric — the replica reconstructs the target entirely
// from the message.
type ReplicaExploreParams struct {
	// Node names the checkpointed node; Config is its topology config
	// (one line per element, config.Parse grammar); State is the
	// MethodCheckpoint snapshot to restore.
	Node   string   `json:"node"`
	Config []string `json:"config"`
	State  []byte   `json:"state"`
	// Peer/Scenario/Explicit select the target, as in ExploreParams.
	Peer     string `json:"peer"`
	Scenario string `json:"scenario"`
	Explicit bool   `json:"explicit"`
	// Engine knobs (the serializable subset, as in ExploreParams).
	MaxRuns      int    `json:"max_runs,omitempty"`
	MaxDepth     int    `json:"max_depth,omitempty"`
	Workers      int    `json:"workers,omitempty"`
	SolverNodes  int    `json:"solver_nodes,omitempty"`
	Strategy     string `json:"strategy,omitempty"`
	TimeBudgetNS int64  `json:"time_budget_ns,omitempty"`
	// Boundary is the topology's leak-boundary community (the replica
	// has no topology to derive it from).
	Boundary uint32 `json:"boundary"`
	// Seed is the scenario seed UPDATE in BGP wire encoding (from
	// MethodSeed).
	Seed []byte `json:"seed"`
	// WarmState, when set, is serialized cross-round exploration memory
	// (concolic ExploreState wire encoding): the replica resumes from it
	// instead of exploring cold, which is how ReuseState survives the
	// shard moving between replicas.
	WarmState []byte `json:"warm_state,omitempty"`
	// Round and Shard key the replica's idempotency memo: the replica
	// memoizes its last result per Shard under Round, so a retried shard
	// (after a replica loss mid-call) returns the memoized result
	// instead of re-exploring. Round 0 disables the memo.
	Round uint64 `json:"round,omitempty"`
	Shard string `json:"shard,omitempty"`
	// Page mode (≥ ProtoV4, feature-gated tail: none of these travel when
	// PageSize is 0). Instead of shipping State, the sender splits it into
	// PageSize-byte pages and sends the ordered content hashes in
	// PageHash; PageData carries only the pages the sender believes the
	// replica has not cached this session (each entry hashes to one of the
	// PageHash entries — the hash IS the page identity, so no index
	// mapping travels). The replica reassembles State from its
	// session-scoped page cache and answers MissingPages for any hash it
	// cannot resolve, at which point the sender re-sends with those pages
	// included. Warm rounds re-ship only the pages that changed.
	PageSize int      `json:"page_size,omitempty"`
	PageHash []string `json:"page_hash,omitempty"`
	PageData [][]byte `json:"page_data,omitempty"`
}

// ReplicaExploreResult is the replica's answer: the agent-shaped
// ExploreResult plus the post-exploration frontier memory.
type ReplicaExploreResult struct {
	ExploreResult
	// WarmState is the exploration's frontier memory after this round
	// (concolic ExploreState wire encoding) — ship it back in the next
	// round's WarmState to explore incrementally, or seed a replacement
	// agent with it.
	WarmState []byte `json:"warm_state,omitempty"`
	// MissingPages, when non-empty, means a page-mode request named
	// hashes the replica's cache could not resolve (first contact, a
	// restarted replica, or an eviction): no exploration ran, nothing was
	// memoized, and the sender must retry with the named pages in
	// PageData. It is a result field, not an error, because transport
	// errors trigger worker failover — a cache miss must stay on the same
	// replica connection.
	MissingPages []string `json:"missing_pages,omitempty"`
}

// ReplayParams feeds a recorded trace into the agent's live fabric.
type ReplayParams struct {
	// Node receives the trace; Peer sends it (the ingress must be an
	// established session of the agent's local fabric).
	Node string `json:"node"`
	Peer string `json:"peer"`
	// Trace is the recorded history in the internal/trace file encoding
	// (dump records bulk-load, update records replay at their offsets).
	Trace []byte `json:"trace"`
	// Key is the replay idempotency key: the agent remembers every key
	// it has applied to its live fabric and answers a re-delivery (after
	// a reconnect, or when re-establishing a replacement agent from the
	// coordinator's replay history) from memory instead of double-feeding
	// the fabric. 0 disables the memo. Like ExploreParams.Round, the
	// field travels on v1 JSON and ≥v3 binary connections only.
	Key uint64 `json:"key,omitempty"`
}

// ReplayResult reports one agent's replay outcome.
type ReplayResult struct {
	// Delivered is the number of trace records injected at the ingress.
	Delivered int `json:"delivered"`
	// Prefixes is the agent's own node's Loc-RIB size after replay —
	// diagnostic only (different nodes legitimately differ; the
	// coordinator's determinism cross-check compares Delivered).
	Prefixes int `json:"prefixes"`
}

// ShadowOpenResult names a fresh shadow clone.
type ShadowOpenResult struct {
	ShadowID uint64 `json:"shadow_id"`
}

// InjectParams delivers one BGP message into a shadow clone, as if sent
// by the named peer. The initial witness injection and every relayed
// propagation hop use the same method: an injection IS a delivery.
type InjectParams struct {
	ShadowID uint64 `json:"shadow_id"`
	// From is the sending peer (must be a configured peer of the node).
	From string `json:"from"`
	// Msg is the BGP wire message (bgp.Encode framing).
	Msg []byte `json:"msg"`
	// Key is the delivery idempotency key, unique per delivery within
	// the shadow's lifetime. The agent memoizes the emissions per key,
	// so a retry after a reconnect returns the original answer instead
	// of delivering the message twice (which would double-count route
	// churn). 0 disables the memo.
	Key uint64 `json:"key,omitempty"`
}

// WireEmission is one message the shadow node emitted in response.
type WireEmission struct {
	To  string `json:"to"`
	Msg []byte `json:"msg"`
}

// InjectResult lists what the delivery caused the node to send.
type InjectResult struct {
	Emitted []WireEmission `json:"emitted,omitempty"`
}

// BatchDelivery is one delivery inside an inject_witness_batch: the
// sending peer and the BGP wire message, exactly an InjectParams minus
// the shared shadow ID.
type BatchDelivery struct {
	From string `json:"from"`
	Msg  []byte `json:"msg"`
}

// InjectBatchParams delivers an ordered run of messages into one shadow
// clone. The agent injects them strictly in order; the outcome is
// byte-for-byte what the same deliveries would produce as individual
// inject_witness calls, minus the per-delivery round trips.
type InjectBatchParams struct {
	ShadowID   uint64          `json:"shadow_id"`
	Deliveries []BatchDelivery `json:"deliveries"`
	// Key is the batch idempotency key (see InjectParams.Key): the whole
	// batch is memoized under it, so re-delivery after a reconnect
	// cannot double-apply any of its deliveries. 0 disables the memo.
	Key uint64 `json:"key,omitempty"`
}

// InjectBatchResult carries one InjectResult per delivery, in delivery
// order — per-witness attribution never coarsens just because the
// transport batched.
type InjectBatchResult struct {
	Results []InjectResult `json:"results"`
}

// ShadowCloseParams discards a shadow clone.
type ShadowCloseParams struct {
	ShadowID uint64 `json:"shadow_id"`
}

// QueryOracleParams asks route facts about one prefix in one shadow.
type QueryOracleParams struct {
	ShadowID uint64 `json:"shadow_id"`
	Prefix   string `json:"prefix"`
	// WantProps asks the agent to also evaluate its hello-shipped
	// property set's `at` route predicates against the best route and
	// answer PropMatch (≥ ProtoV4, feature-gated tail: the field adds no
	// bytes when false, which is also why a v4 coordinator can keep
	// talking to a v3 agent — it just never sets it there).
	WantProps bool `json:"want_props,omitempty"`
}

// QueryOracleResult is the narrow per-node oracle view: whether a best
// route exists for the exact prefix (with a shadow-scoped identity
// token so the coordinator can tell witness-installed routes from
// pre-existing ones), and the covering best route's forwarding facts
// for the trace oracle.
type QueryOracleResult struct {
	HasBest bool `json:"has_best"`
	// BestFP is the shadow-scoped identity token of the exact-prefix
	// best route object. Pre/post comparison carries the in-process
	// backend's pointer-identity check across the wire: any
	// re-installation — even of byte-identical content — yields a new
	// token, exactly as it yields a new pointer.
	BestFP string `json:"best_fp,omitempty"`
	// Covering facts drive the forward trace: is traffic for the prefix
	// routed at all, delivered locally, or handed to a neighbor?
	HasCovering      bool   `json:"has_covering"`
	CoveringLocal    bool   `json:"covering_local"`
	CoveringNextPeer string `json:"covering_next_peer,omitempty"`
	// PropMatch answers WantProps: one verdict per property in the
	// hello-shipped set (list order), true when the property's `at`
	// predicate matches this node's installed best route (properties
	// without an `at` clause are always true). Meaningful only when
	// HasBest; empty when the request did not set WantProps, so the tail
	// never travels to a client that would reject it.
	PropMatch []bool `json:"prop_match,omitempty"`
}
