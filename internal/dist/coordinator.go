package dist

import (
	"container/heap"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	"dice/internal/bgp"
	"dice/internal/core"
	"dice/internal/minimize"
	"dice/internal/netaddr"
	"dice/internal/prop"
	"dice/internal/telemetry"
)

// Coordinator drives federated exploration rounds over node agents. It
// is the distributed counterpart of core.FederatedExperiment: the same
// target resolution, witness dedup/cap policy, propagation bounds and
// cross-node oracles — but every per-node operation crosses the wire
// protocol instead of touching a router in-process, and witness
// propagation is relayed message by message between agents through a
// latency-ordered event queue that mirrors netsim's delivery order.
//
// Fault tolerance (health.go, fault.go): every RPC carries the client's
// per-call deadline, a broken or timed-out connection is re-dialed with
// capped exponential backoff, and when the reconnect budget runs out the
// node transparently degrades to an in-process replacement agent — the
// mixed-fleet fallback. Retried RPCs are idempotent: explores are keyed
// on the round sequence, witness deliveries on per-shadow delivery keys,
// replays on history keys, so at-least-once delivery has exactly-once
// effects and a faulty run converges on the identical finding snapshot.
type Coordinator struct {
	Topo *core.Topology

	opts     core.FederatedOptions
	conns    map[string]*nodeConn
	nodes    []string // sorted node names
	latency  map[string]time.Duration
	boundary uint32 // no-export community, resolved once at Connect

	// props is the compiled property set (builtins merged with the
	// topology's and the options' customs, exactly as in-process) —
	// checkWitnessIn collects prop.Facts and evaluates these over them.
	// propSrcs is the same set in canonical source form, shipped to every
	// agent in the hello so query_oracle WantProps answers index-align
	// with props. needsAt marks a set containing `at` route predicates,
	// which only ≥ ProtoV4 agents can answer — Connect refuses older
	// negotiations rather than silently skipping the clause.
	props    []*prop.Compiled
	propSrcs []string
	needsAt  bool
	// nodeAS maps node name → AS number, from each agent's hello; it
	// resolves `never reachable via AS` path checks. Written only during
	// Connect, read-only afterwards.
	nodeAS map[string]uint16

	maxVersion  int  // wire protocol cap offered at handshake
	callAndWait bool // disable pipelining, batching, shared shadow sets
	policy      RetryPolicy

	// metrics and tracer instrument the coordinator and every client it
	// dials (WithTelemetry / WithTracer); both are nil-safe no-ops.
	metrics *Metrics
	tracer  *telemetry.Tracer

	// replicas, when set, offloads phase-1 exploration to a pool of
	// stateless workers: each round the coordinator checkpoints the node
	// over MethodCheckpoint, derives the scenario seed over MethodSeed,
	// and ships both to whichever replica pulls the shard. configs holds
	// each node's config lines for the shipment; warm holds the
	// per-shard frontier memory the replicas return (ReuseState only) —
	// it both keeps rounds incremental as shards migrate between
	// replicas and seeds degraded replacement agents warm.
	replicas *ReplicaPool
	configs  map[string][]string
	warmMu   sync.Mutex
	warm     map[string][]byte // node/scenario/peer → ExploreState wire encoding

	// session is a random nonce minted once per Connect and sent in every
	// hello. Agents scope their explore/replay memos to it: the keys below
	// are coordinator-local sequences restarting at 1, so without the
	// nonce a long-lived agent would answer a fresh run's round 1 with a
	// previous run's memo. Reconnects reuse the nonce, so retried RPCs
	// still hit the memos within the session.
	session uint64

	roundSeq uint64 // explore idempotency key; Round is not reentrant

	replayMu      sync.Mutex
	replaySeq     uint64
	replayHistory []ReplayParams // keyed, successful replays; re-shipped to replacement agents
}

// nodeConn manages one node's connection through faults: the current
// client, a generation counter bumped on every swap (so concurrent
// callers recognize a recovery they didn't perform), and the health
// record. Recovery is single-flight: mu is held across the whole
// re-dial/backoff episode, and callers blocked in current() simply pick
// up the replacement.
type nodeConn struct {
	node   string
	dialer Dialer

	mu      sync.Mutex
	client  *Client // nil once failed (NoFallback exhausted)
	gen     uint64
	health  NodeHealth
	failErr error      // sticky, set when State == HealthFailed
	rng     *rand.Rand // deterministic backoff jitter, guarded by mu
}

// current returns the live client and its generation. A nil client
// means the node is failed; failedErr has the sticky error.
func (nc *nodeConn) current() (*Client, uint64) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.client, nc.gen
}

func (nc *nodeConn) failedErr() error {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.failErr != nil {
		return nc.failErr
	}
	return fmt.Errorf("dist: node %q has no live connection", nc.node)
}

func (nc *nodeConn) noteFault(err error) {
	nc.mu.Lock()
	nc.health.Faults++
	nc.health.LastFault = err.Error()
	nc.mu.Unlock()
}

// ConnOption tunes how Connect drives the wire protocol.
type ConnOption func(*Coordinator)

// WithMaxVersion caps the protocol version the coordinator offers in
// its handshakes. WithMaxVersion(ProtoV1) forces JSON framing even
// against v2 agents — the compatibility escape hatch, and the baseline
// leg of the wire benchmarks.
func WithMaxVersion(v int) ConnOption {
	return func(c *Coordinator) { c.maxVersion = v }
}

// WithCallAndWait disables request pipelining, relay batching, and
// shadow-set sharing: every RPC is issued alone and awaited before the
// next, the pre-v2 transport discipline. Useful for benchmarks
// (isolating the codec from the scheduling wins) and for bisecting
// transport bugs.
func WithCallAndWait() ConnOption {
	return func(c *Coordinator) { c.callAndWait = true }
}

// WithRetryPolicy sets the fault-handling knobs: per-call RPC deadline,
// reconnect budget and backoff shape, degraded-fallback switch, jitter
// seed. Zero fields take the RetryPolicy defaults.
func WithRetryPolicy(p RetryPolicy) ConnOption {
	return func(c *Coordinator) { c.policy = p }
}

// WithTelemetry instruments the coordinator and every connection it
// dials with the given metrics bundle (build one with NewMetrics). Round
// accounting, per-method RPC counters/latency, node health gauges and
// replica-pool gauges all record into it; nil disables telemetry.
func WithTelemetry(m *Metrics) ConnOption {
	return func(c *Coordinator) { c.metrics = m }
}

// WithTracer records round, explore and per-RPC spans into tr for
// Chrome-trace export (`dice -trace-out`). nil disables tracing.
func WithTracer(tr *telemetry.Tracer) ConnOption {
	return func(c *Coordinator) { c.tracer = tr }
}

// WithReplicas offloads each round's exploration phase to a pool of
// stateless replicas over the checkpoint RPC. The pool binds to this
// coordinator's session and retry policy at Connect and closes with it.
// Targets whose scenario seed cannot ship (SeedResult.Unsupported, or
// an agent predating MethodSeed) explore on their agent as before, so
// mixed fleets keep working; a pool whose replicas all die degrades the
// same way instead of failing the round.
func WithReplicas(pool *ReplicaPool) ConnOption {
	return func(c *Coordinator) { c.replicas = pool }
}

// Versions reports the negotiated wire protocol version per node.
func (c *Coordinator) Versions() map[string]int {
	v := make(map[string]int, len(c.conns))
	for n, nc := range c.conns {
		if cl, _ := nc.current(); cl != nil {
			v[n] = cl.Version()
		}
	}
	return v
}

// Health reports each node's fault-tolerance record: state (healthy /
// degraded / failed), reconnect and fault counts. A fresh coordinator
// reports every node healthy with zero counts.
func (c *Coordinator) Health() map[string]NodeHealth {
	out := make(map[string]NodeHealth, len(c.conns))
	for n, nc := range c.conns {
		nc.mu.Lock()
		h := nc.health
		nc.mu.Unlock()
		if h.State == "" {
			h.State = HealthHealthy
		}
		out[n] = h
	}
	return out
}

// TargetResult is one node's share of a distributed round.
type TargetResult struct {
	Node     string
	Peer     string
	Scenario string
	// Skipped records a defaulted target with no observed seed (the
	// distributed form of core.FederatedTargetResult.Err).
	Skipped string
	// Explore carries the agent's exploration stats.
	Explore *ExploreResult
	// Findings are the local oracle findings, reassembled from the wire.
	// Witness/MinimalWitness land here after cross-domain propagation,
	// exactly as on the in-process backend's Result.Findings.
	Findings []core.Finding
	// Minimization aggregates witness-minimization work over this
	// target's findings (nil unless the round ran with
	// FederatedOptions.Minimize and a witness triggered violations) —
	// the distributed form of core.Result.Minimization.
	Minimization *minimize.Stats
}

// RoundResult is the outcome of one distributed federated round.
// Violations reuse the in-process type, so the two backends' verdicts
// compare directly (the parity test depends on this).
type RoundResult struct {
	Targets           []TargetResult
	Violations        []core.FederatedViolation
	WitnessesInjected int
	WitnessesSkipped  int
	PropagationSteps  int
	Elapsed           time.Duration
	// Health is the per-node fault record as of the end of the round.
	// It is deliberately NOT part of Snapshot(): a degraded run must
	// produce the identical snapshot as an all-healthy one, and the
	// chaos parity tests compare exactly that.
	Health map[string]NodeHealth
}

// Snapshot renders the round canonically for golden-file comparison —
// the distributed counterpart of core.FederatedResult.Snapshot, built
// from the same core helpers so one golden file checks either backend.
func (res *RoundResult) Snapshot() []string {
	lines := []string{core.SnapshotHeader}
	for _, tr := range res.Targets {
		lines = append(lines, core.SnapshotTarget(tr.Node, tr.Peer, tr.Scenario, tr.Skipped, tr.Findings)...)
	}
	return append(lines, core.SnapshotTail(res.Violations, res.WitnessesInjected, res.WitnessesSkipped, res.PropagationSteps)...)
}

// Connect dials one agent per dialer, identifies each, and checks the
// set exactly covers the topology: every node independently
// administered, none orphaned, none doubled. Transient dial and
// handshake failures are retried within the RetryPolicy's reconnect
// budget; identity errors (wrong topology, duplicate node) fail fast.
func Connect(topo *core.Topology, opts core.FederatedOptions, dialers []Dialer, copts ...ConnOption) (*Coordinator, error) {
	if opts.DefaultScenario == "" {
		opts.DefaultScenario = core.ScenarioRouteLeak
	}
	if opts.MaxPropagationSteps <= 0 {
		opts.MaxPropagationSteps = 4096
	}
	if opts.MaxWitnesses <= 0 {
		opts.MaxWitnesses = 16
	}
	if opts.Engine.State != nil {
		return nil, fmt.Errorf("dist: Engine.State cannot be shared across nodes; set ReuseState for per-node agent state")
	}
	if opts.Engine.Cancel != nil || opts.Engine.SolverCache != nil {
		// Process-local handles cannot cross the wire; refusing beats
		// silently exploring unbounded/uncached on the agents.
		return nil, fmt.Errorf("dist: Engine.Cancel and Engine.SolverCache are process-local and cannot be used distributed")
	}
	boundary, err := topo.BoundaryCommunity()
	if err != nil {
		return nil, err
	}
	props, err := core.CompileProperties(topo, opts.Properties)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		Topo:       topo,
		opts:       opts,
		conns:      make(map[string]*nodeConn, len(dialers)),
		latency:    make(map[string]time.Duration, len(topo.Edges)),
		boundary:   boundary,
		props:      props,
		nodeAS:     make(map[string]uint16, len(topo.Nodes)),
		maxVersion: ProtoLatest,
	}
	for _, p := range props {
		c.propSrcs = append(c.propSrcs, p.Source())
		if p.HasAt() {
			c.needsAt = true
		}
	}
	for _, o := range copts {
		o(c)
	}
	c.policy = c.policy.withDefaults()
	c.session = newSessionNonce()
	if c.replicas != nil {
		c.replicas.setMetrics(c.metrics)
		if err := c.replicas.bind(c.session, c.maxVersion, c.policy); err != nil {
			return nil, err
		}
		c.configs = make(map[string][]string, len(topo.Nodes))
		for _, n := range topo.Nodes {
			c.configs[n.Name] = n.Config
		}
		c.warm = make(map[string][]byte)
	}
	for _, e := range topo.Edges {
		lat := time.Duration(e.LatencyMS) * time.Millisecond
		if lat == 0 {
			lat = time.Millisecond // netsim's 0-means-1ms default
		}
		c.latency[edgeKey(e.A, e.B)] = lat
	}
	crng := rand.New(rand.NewSource(c.policy.Seed))
	for _, d := range dialers {
		var (
			cl    *Client
			hello HelloResult
		)
		for attempt := 0; ; attempt++ {
			cl, hello, err = c.dialAndHello(d)
			if err == nil || attempt >= c.policy.MaxReconnects || !transientConnectErr(err) {
				break
			}
			time.Sleep(backoffDelay(attempt+1, c.policy.BackoffBase, c.policy.BackoffCap, crng))
		}
		if err != nil {
			c.Close()
			return nil, err
		}
		if _, dup := c.conns[hello.Node]; dup {
			cl.Close()
			c.Close()
			return nil, fmt.Errorf("dist: two agents claim node %q", hello.Node)
		}
		if c.needsAt && cl.Version() < ProtoV4 {
			ver := cl.Version()
			cl.Close()
			c.Close()
			return nil, fmt.Errorf("dist: properties with `at` clauses need wire protocol ≥ %d agents; node %q negotiated %d",
				ProtoV4, hello.Node, ver)
		}
		c.nodeAS[hello.Node] = hello.AS
		c.conns[hello.Node] = &nodeConn{
			node:   hello.Node,
			dialer: d,
			client: cl,
			rng:    rand.New(rand.NewSource(c.policy.Seed ^ int64(nodeHash(hello.Node)))),
		}
	}
	for _, n := range topo.Nodes {
		if _, ok := c.conns[n.Name]; !ok {
			c.Close()
			return nil, fmt.Errorf("dist: no agent for node %q", n.Name)
		}
		c.nodes = append(c.nodes, n.Name)
	}
	sort.Strings(c.nodes)
	return c, nil
}

// nodeHash gives each node a stable 64-bit identity for seeding its
// jitter stream independently of fleet ordering.
func nodeHash(node string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	return h.Sum64()
}

// transientConnectErr reports whether a Connect-time failure is worth
// retrying: dial-level and stream-level faults are (the agent may just
// be starting, or a fault injector hit the handshake); identity
// mismatches are not.
func transientConnectErr(err error) bool {
	return isConnFault(err) || errors.Is(err, errDial)
}

// errDial classifies Dial-level failures for the retry decision.
var errDial = errors.New("dist: dial failed")

// newSessionNonce mints the coordinator's session nonce. It comes from
// crypto/rand — not the RetryPolicy's seeded jitter rng — because two
// coordinator processes configured with the same seed must still get
// distinct sessions. Never 0: agents treat 0 as "no nonce sent".
func newSessionNonce() uint64 {
	var b [8]byte
	for {
		if _, err := crand.Read(b[:]); err != nil {
			// No entropy source is effectively unreachable on supported
			// platforms; a time-derived nonce still separates sessions.
			return uint64(time.Now().UnixNano()) | 1
		}
		if n := binary.BigEndian.Uint64(b[:]); n != 0 {
			return n
		}
	}
}

// dialAndHello establishes one identified connection: dial, wrap,
// apply the RPC deadline, run the hello negotiation, validate the
// topology identity.
func (c *Coordinator) dialAndHello(d Dialer) (*Client, HelloResult, error) {
	conn, err := d.Dial()
	if err != nil {
		return nil, HelloResult{}, fmt.Errorf("%w: %v", errDial, err)
	}
	cl := NewClient(conn)
	cl.Timeout = c.policy.RPCTimeout
	cl.Session = c.session
	cl.Properties = c.propSrcs
	hello, err := cl.Handshake(c.maxVersion)
	if err != nil {
		cl.Close()
		return nil, HelloResult{}, err
	}
	if hello.Topology != c.Topo.Name {
		cl.Close()
		return nil, HelloResult{}, fmt.Errorf("dist: agent for %q administers topology %q, coordinator drives %q",
			hello.Node, hello.Topology, c.Topo.Name)
	}
	if c.metrics != nil || c.tracer != nil {
		cl.setTelemetry(c.metrics, c.tracer, hello.Node)
		c.metrics.noteWireVersion(hello.Node, cl.Version())
	}
	return cl, hello, nil
}

// Close closes every agent connection and shuts down the replica pool.
func (c *Coordinator) Close() error {
	var first error
	if c.replicas != nil {
		c.replicas.Close()
	}
	for _, nc := range c.conns {
		cl, _ := nc.current()
		if cl == nil {
			continue
		}
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// call issues one RPC against a node with the full fault-recovery
// ladder: the client's per-call deadline bounds each attempt, a
// transport fault (broken stream, timeout) triggers single-flight
// recovery — reconnect with backoff, then the degraded in-process
// fallback — and the call retries on the replacement. result is
// re-zeroed before every attempt so a partial decode never leaks into a
// retry. Application errors return immediately; retried methods are
// idempotent by key, so at-least-once delivery is safe.
func (c *Coordinator) call(node, method string, params, result any) error {
	nc, ok := c.conns[node]
	if !ok {
		return fmt.Errorf("dist: no agent for node %q", node)
	}
	var lastErr error
	// One attempt per client generation the recovery ladder can hand us,
	// plus the original: reconnects, then the degraded fallback.
	attempts := c.policy.MaxReconnects + 2
	for i := 0; i < attempts; i++ {
		cl, gen := nc.current()
		if cl == nil {
			return nc.failedErr()
		}
		zeroResult(result)
		err := cl.Call(method, params, result)
		if err == nil {
			return nil
		}
		if !isConnFault(err) {
			return err
		}
		lastErr = err
		nc.noteFault(err)
		c.metrics.noteNodeFault(node)
		if rerr := c.recover(nc, gen, cl); rerr != nil {
			return rerr
		}
	}
	return lastErr
}

// goNode starts one pipelined call on a node's current client (no
// retry; fan-out callers route transport faults through call for the
// recovery ladder).
func (c *Coordinator) goNode(node, method string, params, result any) *Pending {
	nc := c.conns[node]
	cl, _ := nc.current()
	if cl == nil {
		p := &Pending{method: method, errc: make(chan error, 1)}
		p.errc <- nc.failedErr()
		return p
	}
	return cl.Go(method, params, result)
}

// recover is the single-flight recovery ladder for one node. gen is the
// generation the caller's failed client belonged to: if the node has
// already moved past it, another caller recovered concurrently and this
// one just retries. Otherwise: close the failed client, re-dial with
// capped exponential backoff + deterministic jitter (re-running hello
// and re-shipping the replay history), and after the reconnect budget
// runs out, degrade to an in-process replacement agent — unless
// NoFallback, which marks the node failed.
func (c *Coordinator) recover(nc *nodeConn, gen uint64, failed *Client) error {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.gen != gen {
		return nil // already recovered by a concurrent caller
	}
	if nc.client == nil {
		return nc.failErr
	}
	failed.Close()
	var lastErr error
	for attempt := 1; attempt <= c.policy.MaxReconnects; attempt++ {
		time.Sleep(backoffDelay(attempt, c.policy.BackoffBase, c.policy.BackoffCap, nc.rng))
		cl, hello, err := c.dialAndHello(nc.dialer)
		if err != nil {
			lastErr = err
			continue
		}
		if hello.Node != nc.node {
			cl.Close()
			lastErr = fmt.Errorf("dist: reconnect for %q reached agent for %q", nc.node, hello.Node)
			continue
		}
		if err := c.reestablish(cl); err != nil {
			cl.Close()
			lastErr = err
			continue
		}
		nc.client = cl
		nc.gen++
		nc.health.Reconnects++
		nc.health.State = HealthHealthy
		c.metrics.noteClientReconnect(nc.node)
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("dist: reconnect budget exhausted")
	}
	if c.policy.NoFallback {
		nc.client = nil
		nc.gen++
		nc.health.State = HealthFailed
		nc.failErr = fmt.Errorf("dist: node %q failed after %d reconnect attempts: %w",
			nc.node, c.policy.MaxReconnects, lastErr)
		return nc.failErr
	}
	// Degraded mixed-fleet fallback: build an in-process replacement
	// agent for this node and splice it in over a loopback pipe. The
	// replacement runs the identical deterministic pipeline the remote
	// did (same topology build, same PrepareTarget/Analyze path), and
	// reestablish replays the coordinator's replay history into it, so
	// findings are unaffected — parity with the all-healthy run holds.
	local, err := NewAgent(c.Topo, nc.node)
	if err != nil {
		nc.client = nil
		nc.gen++
		nc.health.State = HealthFailed
		nc.failErr = fmt.Errorf("dist: degraded fallback for %q: %w", nc.node, err)
		return nc.failErr
	}
	c.seedWarmState(local, nc.node)
	cl, _, err := c.dialAndHello(Loopback{Agent: local})
	if err == nil {
		err = c.reestablish(cl)
	}
	if err != nil {
		if cl != nil {
			cl.Close()
		}
		nc.client = nil
		nc.gen++
		nc.health.State = HealthFailed
		nc.failErr = fmt.Errorf("dist: degraded fallback for %q: %w", nc.node, err)
		return nc.failErr
	}
	nc.client = cl
	nc.gen++
	nc.health.State = HealthDegraded
	return nil
}

// seedWarmState hands a degraded replacement agent the frontier memory
// the dead node's shards accumulated on the replicas: the replacement's
// next ReuseState explore runs warm instead of cold, closing the one
// gap reestablish's comment concedes. Without a replica pool (or
// without ReuseState) there is nothing cached and the replacement
// explores cold, exactly as before.
func (c *Coordinator) seedWarmState(local *Agent, node string) {
	if c.replicas == nil || !c.opts.ReuseState {
		return
	}
	c.warmMu.Lock()
	defer c.warmMu.Unlock()
	for key, data := range c.warm {
		rest, ok := strings.CutPrefix(key, node+"/")
		if !ok {
			continue
		}
		scenario, peer, ok := strings.Cut(rest, "/")
		if !ok {
			continue
		}
		// Best effort: an undecodable entry just leaves that shard cold.
		_ = local.SeedExploreState(scenario, peer, data)
	}
}

// reestablish brings a (re)connected agent up to date: the coordinator's
// replay history is re-shipped in order. The history holds only replays
// that succeeded fleet-wide (Replay commits on success), so recovery
// never re-runs a known-failing entry. Every entry is keyed, so a
// surviving agent that merely lost its connection answers from its
// memo and applies nothing twice, while a fresh replacement (restarted
// process, degraded in-process agent) replays the lot and converges
// onto the fleet's deterministic post-replay state. Exploration warm
// state (ReuseState) is the one thing a replacement cannot recover —
// its next explore runs cold, which is correct but may re-report known
// paths; the memoized explore round keys keep retries of the *current*
// round exact either way.
func (c *Coordinator) reestablish(cl *Client) error {
	c.replayMu.Lock()
	history := append([]ReplayParams(nil), c.replayHistory...)
	c.replayMu.Unlock()
	for i := range history {
		var out ReplayResult
		if err := cl.Call(MethodReplay, &history[i], &out); err != nil {
			return fmt.Errorf("dist: re-establish replay history: %w", err)
		}
	}
	return nil
}

// zeroResult clears a result struct between call attempts so a retry
// decodes into pristine memory (a partial decode from a fault must not
// survive into the next attempt's omitempty fields).
func zeroResult(v any) {
	if v == nil {
		return
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() == reflect.Pointer && !rv.IsNil() {
		rv.Elem().SetZero()
	}
}

func edgeKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// linkLatency returns the edge's latency, or ok=false when the two
// nodes share no link (sends between them are dropped, like netsim's
// unplugged cable).
func (c *Coordinator) linkLatency(a, b string) (time.Duration, bool) {
	lat, ok := c.latency[edgeKey(a, b)]
	return lat, ok
}

// Round runs one distributed federated round: parallel per-agent
// exploration, then cross-domain witness propagation and oracles.
func (c *Coordinator) Round() (*RoundResult, error) {
	start := time.Now()
	res := &RoundResult{}
	c.roundSeq++
	round := c.roundSeq
	roundSpan := c.tracer.Start("coordinator", fmt.Sprintf("round %d", round))
	defer roundSpan.End()

	// Phase 1: fan Explore out to the owning agents, one goroutine per
	// target (calls to the same agent serialize on its connection). The
	// round key makes retried explores exact: an agent that already ran
	// this round's explore answers from its memo.
	targets := c.Topo.ResolveTargets(c.opts.DefaultScenario)
	outs := make([]*ExploreResult, len(targets))
	errs := make([]error, len(targets))
	ckpts := &checkpointCache{m: make(map[string]*ckptEntry)}
	var wg sync.WaitGroup
	for i, tg := range targets {
		if _, ok := c.conns[tg.Node]; !ok {
			return nil, fmt.Errorf("dist: no agent for node %q", tg.Node)
		}
		wg.Add(1)
		go func(i int, tg core.ResolvedTarget) {
			defer wg.Done()
			sp := c.tracer.Start("explore/"+tg.Node, tg.Scenario+"/"+tg.Peer)
			outs[i], errs[i] = c.exploreTarget(tg, round, ckpts)
			sp.End()
		}(i, tg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: collect results in target order; decode, dedup and cap
	// the concrete witnesses exactly like the in-process backend. Each
	// witness keeps its (target, finding) linkage so per-witness
	// artifacts land back on the right finding.
	type witness struct {
		node, peer string
		update     *bgp.Update
		target     int // index into res.Targets
		finding    int // index into that target's Findings
	}
	var witnesses []witness
	seenWitness := map[string]bool{}
	for i, tg := range targets {
		out := outs[i]
		tr := TargetResult{Node: tg.Node, Peer: tg.Peer, Scenario: tg.Scenario, Explore: out, Skipped: out.Skipped}
		for _, wf := range out.Findings {
			f, err := decodeFinding(wf)
			if err != nil {
				return nil, err
			}
			tr.Findings = append(tr.Findings, f)
		}
		res.Targets = append(res.Targets, tr)
		for _, ww := range out.Witnesses {
			m, err := bgp.Decode(ww.Msg)
			if err != nil {
				return nil, fmt.Errorf("dist: %s/%s witness: %w", tg.Node, tg.Peer, err)
			}
			u, ok := m.(*bgp.Update)
			if !ok || len(u.NLRI) == 0 {
				continue
			}
			if ww.Finding < 0 || ww.Finding >= len(tr.Findings) {
				return nil, fmt.Errorf("dist: %s/%s witness references finding %d of %d", tg.Node, tg.Peer, ww.Finding, len(tr.Findings))
			}
			key := core.WitnessKey(tg.Node, tg.Peer, u)
			if seenWitness[key] {
				continue
			}
			seenWitness[key] = true
			witnesses = append(witnesses, witness{
				node: tg.Node, peer: tg.Peer, update: u,
				target: len(res.Targets) - 1, finding: ww.Finding,
			})
		}
	}

	// Apply the cap, then check the surviving witnesses as one sequence:
	// CheckWitnesses shares shadow sets across disjoint-prefix runs, and
	// per-witness outcomes come back in order so violation order, step
	// totals and per-finding artifacts land exactly as the one-at-a-time
	// loop produced them.
	var checked []witness
	for _, w := range witnesses {
		if len(checked) >= c.opts.MaxWitnesses {
			res.WitnessesSkipped++
			continue
		}
		checked = append(checked, w)
	}
	res.WitnessesInjected = len(checked)
	specs := make([]WitnessSpec, len(checked))
	for i, w := range checked {
		specs[i] = WitnessSpec{Node: w.node, Peer: w.peer, Update: w.update}
		res.Targets[w.target].Findings[w.finding].Witness = w.update
	}
	wsp := c.tracer.Start("coordinator", fmt.Sprintf("witnesses round %d", round))
	outcomes, err := c.CheckWitnesses(specs)
	wsp.End()
	if err != nil {
		return nil, err
	}
	for i, w := range checked {
		out := outcomes[i]
		tr := &res.Targets[w.target]
		res.PropagationSteps += out.Steps
		res.Violations = append(res.Violations, out.Violations...)
		if c.opts.Minimize && len(out.Violations) > 0 {
			min, st, err := core.MinimizeWitness(c, w.node, w.peer, w.update, out.Violations, c.opts.MinimizeBudget)
			if err != nil {
				return nil, fmt.Errorf("dist: minimize %s/%s witness %s: %w", w.node, w.peer, w.update.NLRI[0], err)
			}
			tr.Findings[w.finding].MinimalWitness = min
			if tr.Minimization == nil {
				tr.Minimization = &minimize.Stats{}
			}
			tr.Minimization.Add(st)
		}
	}

	res.Elapsed = time.Since(start)
	res.Health = c.Health()
	c.metrics.noteRound(res)
	return res, nil
}

// exploreTarget runs one target's phase-1 exploration: on the replica
// pool when one is configured (checkpoint + seed shipped over the
// wire), on the owning agent otherwise — and on the agent again as the
// fallback when the target can't ship (unsupported seed, pre-MethodSeed
// agent) or the pool has died. The round key makes every path
// idempotent under retries.
func (c *Coordinator) exploreTarget(tg core.ResolvedTarget, round uint64, ckpts *checkpointCache) (*ExploreResult, error) {
	if c.replicas != nil {
		out, err := c.exploreOnReplica(tg, round, ckpts)
		if err == nil {
			return out, nil
		}
		if !errors.Is(err, errExploreLocally) && !errors.Is(err, ErrReplicaPoolDown) {
			return nil, err
		}
		c.metrics.notePoolFallback()
	}
	params := ExploreParams{
		Peer:         tg.Peer,
		Scenario:     tg.Scenario,
		Explicit:     tg.Explicit,
		MaxRuns:      c.opts.Engine.MaxRuns,
		MaxDepth:     c.opts.Engine.MaxDepth,
		Workers:      c.opts.Workers,
		SolverNodes:  c.opts.Engine.SolverNodes,
		Strategy:     c.opts.Engine.Strategy.String(),
		TimeBudgetNS: c.opts.Engine.TimeBudget.Nanoseconds(),
		ReuseState:   c.opts.ReuseState,
		Round:        round,
	}
	var out ExploreResult
	if err := c.call(tg.Node, MethodExplore, &params, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// errExploreLocally routes a target back to its agent: the shard cannot
// ship to a replica, but the agent-side explore is exactly equivalent.
var errExploreLocally = errors.New("dist: target explores on its agent")

// warmKey matches the agent-side StateMap key for the shard, so warm
// state cached from replicas seeds exactly the state a degraded
// replacement agent would consult.
func warmKey(node, scenario, peer string) string {
	return node + "/" + scenario + "/" + peer
}

// exploreOnReplica ships one target to the replica pool: the node's
// checkpoint (fetched once per node per round over MethodCheckpoint),
// its scenario seed (MethodSeed), config lines, engine knobs and — under
// ReuseState — the shard's cached frontier memory. The replica's answer
// is the agent-shaped ExploreResult; the frontier memory it returns
// refreshes the warm cache.
func (c *Coordinator) exploreOnReplica(tg core.ResolvedTarget, round uint64, ckpts *checkpointCache) (*ExploreResult, error) {
	var sr SeedResult
	if err := c.call(tg.Node, MethodSeed, &SeedParams{Peer: tg.Peer, Scenario: tg.Scenario}, &sr); err != nil {
		if isConnFault(err) || errors.Is(err, ErrClientBroken) {
			return nil, err
		}
		// An agent predating MethodSeed answers with an application
		// error; the target explores where it always did.
		return nil, errExploreLocally
	}
	if sr.Unsupported {
		return nil, errExploreLocally
	}
	if sr.Missing != "" {
		if tg.Explicit {
			// Mirror the agent's explicit-target seed failure exactly.
			return nil, fmt.Errorf("dist: %s/%s: deriving scenario seed: %s", tg.Node, tg.Peer, sr.Missing)
		}
		return &ExploreResult{Skipped: sr.Missing, Scenario: tg.Scenario}, nil
	}
	state, err := ckpts.get(tg.Node, func() ([]byte, error) {
		var ck CheckpointResult
		if err := c.call(tg.Node, MethodCheckpoint, nil, &ck); err != nil {
			return nil, err
		}
		return ck.State, nil
	})
	if err != nil {
		return nil, err
	}
	key := warmKey(tg.Node, tg.Scenario, tg.Peer)
	var warm []byte
	if c.opts.ReuseState {
		c.warmMu.Lock()
		warm = c.warm[key]
		c.warmMu.Unlock()
	}
	params := &ReplicaExploreParams{
		Node:         tg.Node,
		Config:       c.configs[tg.Node],
		State:        state,
		Peer:         tg.Peer,
		Scenario:     tg.Scenario,
		Explicit:     tg.Explicit,
		MaxRuns:      c.opts.Engine.MaxRuns,
		MaxDepth:     c.opts.Engine.MaxDepth,
		Workers:      c.opts.Workers,
		SolverNodes:  c.opts.Engine.SolverNodes,
		Strategy:     c.opts.Engine.Strategy.String(),
		TimeBudgetNS: c.opts.Engine.TimeBudget.Nanoseconds(),
		Boundary:     c.boundary,
		Seed:         sr.Msg,
		WarmState:    warm,
		Round:        round,
		Shard:        key,
	}
	out, err := c.replicas.submit(params)
	if err != nil {
		return nil, err
	}
	if c.opts.ReuseState && len(out.WarmState) > 0 {
		c.warmMu.Lock()
		c.warm[key] = out.WarmState
		c.warmMu.Unlock()
	}
	return &out.ExploreResult, nil
}

// checkpointCache deduplicates per-node checkpoint fetches within one
// round: targets sharing a node ship the identical snapshot.
type checkpointCache struct {
	mu sync.Mutex
	m  map[string]*ckptEntry
}

type ckptEntry struct {
	once  sync.Once
	state []byte
	err   error
}

func (cc *checkpointCache) get(node string, fetch func() ([]byte, error)) ([]byte, error) {
	cc.mu.Lock()
	e, ok := cc.m[node]
	if !ok {
		e = &ckptEntry{}
		cc.m[node] = e
	}
	cc.mu.Unlock()
	e.once.Do(func() { e.state, e.err = fetch() })
	return e.state, e.err
}

// Replay feeds a recorded trace (internal/trace file bytes) into every
// agent's live local fabric through the node←peer ingress session — the
// distributed form of core.FederatedExperiment.Replay. The local
// fabrics are deterministic, so all agents converge on identical
// post-replay state without any node state crossing the wire; the
// coordinator cross-checks that by comparing the per-agent delivered
// counts (a trace that installs nothing — every record filtered or
// withdrawn — is legal, exactly as in the in-process backend). Agents
// replay concurrently, same fan-out shape as the explore phase. Call
// it before Round: subsequent explorations seed from the replayed
// history.
//
// Each replay is keyed up front — a reconnect mid-replay retries
// idempotently under the same key — but committed to the history only
// after every agent applied it and the delivered counts agree. A failed
// replay (unreadable trace, divergence) must not haunt the history:
// reestablish re-runs the whole history on every reconnect, and a
// permanently failing entry would turn each recovery into a failure.
// The key itself is never reused even when a replay fails — an agent
// that applied the failed replay has the key memoized, and a different
// trace under the same key would read that stale memo.
func (c *Coordinator) Replay(node, peer string, traceBytes []byte) (int, error) {
	if _, ok := c.conns[node]; !ok {
		return 0, fmt.Errorf("dist: replay ingress node %q has no agent", node)
	}
	c.replayMu.Lock()
	c.replaySeq++
	params := ReplayParams{Node: node, Peer: peer, Trace: traceBytes, Key: c.replaySeq}
	c.replayMu.Unlock()
	outs := make([]ReplayResult, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			if err := c.call(n, MethodReplay, &params, &outs[i]); err != nil {
				errs[i] = fmt.Errorf("dist: replay on agent %s: %w", n, err)
			}
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	delivered := outs[0].Delivered
	for i, out := range outs {
		if out.Delivered != delivered {
			return 0, fmt.Errorf("dist: replay diverged: agent %s delivered %d records, agent %s %d",
				c.nodes[i], out.Delivered, c.nodes[0], delivered)
		}
	}
	c.replayMu.Lock()
	c.replayHistory = append(c.replayHistory, params)
	c.replayMu.Unlock()
	return delivered, nil
}

// decodeFinding reassembles a core.Finding from its wire form.
func decodeFinding(wf WireFinding) (core.Finding, error) {
	prefix, err := netaddr.ParsePrefix(wf.Prefix)
	if err != nil {
		return core.Finding{}, fmt.Errorf("dist: finding prefix %q: %w", wf.Prefix, err)
	}
	f := core.Finding{
		Kind:      wf.Kind,
		Peer:      wf.Peer,
		Prefix:    prefix,
		LeakRange: wf.LeakRange,
		OriginAS:  wf.OriginAS,
		VictimAS:  wf.VictimAS,
		Seq:       wf.Seq,
		Validated: wf.Validated,
		SpreadTo:  wf.SpreadTo,
		Input:     wf.Input,
	}
	if wf.VictimPrefix != "" {
		vp, err := netaddr.ParsePrefix(wf.VictimPrefix)
		if err != nil {
			return core.Finding{}, fmt.Errorf("dist: finding victim prefix %q: %w", wf.VictimPrefix, err)
		}
		f.VictimPrefix = vp
	}
	return f, nil
}

// relayEvent is one in-flight message between domains. key is the
// delivery idempotency key, assigned from the shadow set's sequence at
// enqueue time so a delivery retried after a reconnect reuses its
// original key and the agent's memo answers it.
type relayEvent struct {
	at       time.Duration // virtual delivery time from injection
	seq      uint64        // FIFO tiebreak, mirroring netsim
	key      uint64        // delivery idempotency key
	from, to string
	msg      []byte
}

type relayQueue []*relayEvent

func (q relayQueue) Len() int { return len(q) }
func (q relayQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q relayQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *relayQueue) Push(x any)   { *q = append(*q, x.(*relayEvent)) }
func (q *relayQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// shadowSet tracks one shadow clone per agent for a witness lifetime
// (or several disjoint-prefix lifetimes), plus the delivery-key
// sequence those lifetimes draw from: keys are unique per shadow set,
// which is exactly the scope of the agents' memo maps.
type shadowSet struct {
	ids  map[string]uint64
	keys uint64
}

// nextKey mints the next delivery idempotency key (keys start at 1;
// 0 on the wire means "no memo").
func (s *shadowSet) nextKey() uint64 {
	s.keys++
	return s.keys
}

// openShadows opens one shadow per node; closeShadows tears them down.
// When pipelining is on, all opens are in flight at once — the agents
// sit on different connections, so the fan-out completes in one RTT. A
// transport fault on the pipelined attempt falls back to the retrying
// call path for that node (the retry may leak one clone on an agent
// that executed the open but lost the answer — bounded, and freed with
// the agent's next restart).
func (c *Coordinator) openShadows() (*shadowSet, error) {
	shadows := &shadowSet{ids: make(map[string]uint64, len(c.nodes))}
	if c.callAndWait {
		for _, n := range c.nodes {
			var out ShadowOpenResult
			if err := c.call(n, MethodShadowOpen, nil, &out); err != nil {
				c.closeShadows(shadows)
				return nil, err
			}
			shadows.ids[n] = out.ShadowID
		}
		return shadows, nil
	}
	outs := make([]ShadowOpenResult, len(c.nodes))
	pend := make([]*Pending, len(c.nodes))
	for i, n := range c.nodes {
		pend[i] = c.goNode(n, MethodShadowOpen, nil, &outs[i])
	}
	var firstErr error
	for i, p := range pend {
		err := p.Wait()
		if err != nil && isConnFault(err) {
			err = c.call(c.nodes[i], MethodShadowOpen, nil, &outs[i])
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		shadows.ids[c.nodes[i]] = outs[i].ShadowID
	}
	if firstErr != nil {
		c.closeShadows(shadows)
		return nil, firstErr
	}
	return shadows, nil
}

func (c *Coordinator) closeShadows(shadows *shadowSet) {
	// Best-effort: a failed close leaks one clone on that agent, it
	// does not invalidate the round.
	if shadows == nil {
		return
	}
	pend := make([]*Pending, 0, len(shadows.ids))
	for n, id := range shadows.ids {
		p := c.goNode(n, MethodShadowClose, &ShadowCloseParams{ShadowID: id}, nil)
		if c.callAndWait {
			_ = p.Wait()
		} else {
			pend = append(pend, p)
		}
	}
	for _, p := range pend {
		_ = p.Wait()
	}
}

// query asks one node's oracle view of prefix in its shadow. wantProps
// additionally requests per-property `at` verdicts (PropMatch) against
// the node's best route — only the post-installation queries need them,
// so the flag keeps every other query's answer at its pre-property size.
func (c *Coordinator) query(shadows *shadowSet, node string, prefix netaddr.Prefix, wantProps bool) (*QueryOracleResult, error) {
	var out QueryOracleResult
	err := c.call(node, MethodQueryOracle,
		&QueryOracleParams{ShadowID: shadows.ids[node], Prefix: prefix.String(), WantProps: wantProps}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// queryMany fans the same oracle query out to several nodes and returns
// the answers keyed by node. Under call-and-wait it degrades to the
// sequential loop; the answers are identical either way — converged
// shadows are read-only to queries — so callers may evaluate them in
// any order they need for deterministic violation ordering. Queries are
// read-only and safely re-issued, so a transport fault on the pipelined
// attempt retries through the recovery path.
func (c *Coordinator) queryMany(shadows *shadowSet, nodes []string, prefix netaddr.Prefix, wantProps bool) (map[string]*QueryOracleResult, error) {
	out := make(map[string]*QueryOracleResult, len(nodes))
	if c.callAndWait {
		for _, n := range nodes {
			q, err := c.query(shadows, n, prefix, wantProps)
			if err != nil {
				return nil, err
			}
			out[n] = q
		}
		return out, nil
	}
	outs := make([]QueryOracleResult, len(nodes))
	pend := make([]*Pending, len(nodes))
	for i, n := range nodes {
		pend[i] = c.goNode(n, MethodQueryOracle,
			&QueryOracleParams{ShadowID: shadows.ids[n], Prefix: prefix.String(), WantProps: wantProps}, &outs[i])
	}
	var firstErr error
	for i, p := range pend {
		err := p.Wait()
		if err != nil && isConnFault(err) {
			err = c.call(nodes[i], MethodQueryOracle,
				&QueryOracleParams{ShadowID: shadows.ids[nodes[i]], Prefix: prefix.String(), WantProps: wantProps}, &outs[i])
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out[nodes[i]] = &outs[i]
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// relay drives one message wave set through the agents: deliveries pop
// in (virtual-latency, FIFO) order, each delivery's emissions are
// enqueued with their link latency, and the run ends when the queue
// drains or the step bound hits. It returns delivered count and queue
// backlog — the distributed Run/Pending pair — plus the per-wave
// delivery counts (consecutive deliveries sharing one virtual timestamp
// are one wave, mirroring the in-process runWaves over netsim).
func (c *Coordinator) relay(shadows *shadowSet, queue *relayQueue, maxSteps int) (steps, pending int, waves []int, err error) {
	// Initial events carry seqs 1..Len (both callers enqueue exactly
	// one); relayed emissions continue the sequence from there.
	seq := uint64(queue.Len())
	var last time.Duration
	for queue.Len() > 0 && steps < maxSteps {
		c.metrics.setRelayDepth(queue.Len())
		e := heap.Pop(queue).(*relayEvent)
		// Coalesce the run of deliveries sharing this event's virtual
		// timestamp and destination into one batch. The coalesced pops
		// are exactly the pops the one-at-a-time loop would have made:
		// an emission lands at its cause's time plus a link latency
		// that is never zero, so nothing pushed while serving this
		// batch could have sorted inside it.
		batch := []*relayEvent{e}
		if c.batchTo(e.to) {
			for queue.Len() > 0 && steps+len(batch) < maxSteps {
				head := (*queue)[0]
				if head.at != e.at || head.to != e.to {
					break
				}
				batch = append(batch, heap.Pop(queue).(*relayEvent))
			}
		}
		if len(batch) > 1 {
			c.metrics.noteWitnessBatch()
		}
		results, err := c.deliver(shadows, e.to, batch)
		if err != nil {
			return steps, queue.Len(), waves, err
		}
		for bi, ev := range batch {
			steps++
			if len(waves) == 0 || ev.at != last {
				waves = append(waves, 0)
				last = ev.at
			}
			waves[len(waves)-1]++
			for _, em := range results[bi].Emitted {
				lat, linked := c.linkLatency(ev.to, em.To)
				if !linked {
					continue // no link: dropped, like netsim's unplugged cable
				}
				seq++
				heap.Push(queue, &relayEvent{
					at: ev.at + lat, seq: seq, key: shadows.nextKey(),
					from: ev.to, to: em.To, msg: em.Msg,
				})
			}
		}
	}
	c.metrics.setRelayDepth(queue.Len())
	return steps, queue.Len(), waves, nil
}

// batchTo reports whether deliveries to node may be coalesced into
// inject_witness_batch calls: the connection must have negotiated v2
// (a genuinely old agent doesn't know the method) and batching must not
// be disabled.
func (c *Coordinator) batchTo(node string) bool {
	if c.callAndWait {
		return false
	}
	cl, _ := c.conns[node].current()
	return cl != nil && cl.Version() >= ProtoV2
}

// deliver ships a batch of deliveries to one agent — a single
// inject_witness for the common singleton case, one inject_witness_batch
// otherwise — and returns per-delivery emissions in order. The head
// event's key identifies the whole delivery (keys are unique per event,
// and an event is delivered exactly once, alone or at the head of one
// batch), so a retry after a transport fault replays idempotently.
func (c *Coordinator) deliver(shadows *shadowSet, to string, batch []*relayEvent) ([]InjectResult, error) {
	if len(batch) == 1 {
		var out InjectResult
		err := c.call(to, MethodInjectWitness,
			&InjectParams{ShadowID: shadows.ids[to], From: batch[0].from, Msg: batch[0].msg, Key: batch[0].key}, &out)
		if err != nil {
			return nil, err
		}
		return []InjectResult{out}, nil
	}
	p := InjectBatchParams{ShadowID: shadows.ids[to], Deliveries: make([]BatchDelivery, len(batch)), Key: batch[0].key}
	for i, ev := range batch {
		p.Deliveries[i] = BatchDelivery{From: ev.from, Msg: ev.msg}
	}
	var out InjectBatchResult
	if err := c.call(to, MethodInjectWitnessBatch, &p, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(batch) {
		return nil, fmt.Errorf("dist: %s answered %d results for a batch of %d", to, len(out.Results), len(batch))
	}
	return out.Results, nil
}

// WitnessSpec names one concrete witness to check: the update, the node
// it was explored at, and the peer it arrives from.
type WitnessSpec struct {
	Node, Peer string
	Update     *bgp.Update
}

// maxWitnessReplays bounds how many times one witness lifecycle is
// replayed on fresh shadows after a mid-witness agent replacement.
const maxWitnessReplays = 2

// CheckWitness is the distributed form of the in-process CheckWitness:
// inject one concrete witness at the explored node as if its peer sent
// it, relay the resulting message waves between the agents' shadow
// clones, and run the cross-node oracles over the converged state —
// then withdraw it and check the retraction cleans up. Witness
// minimization (core.MinimizeWitness over the core.WitnessChecker seam)
// calls it for every candidate; Round's own witnesses go through
// CheckWitnesses, which shares shadow sets where it can.
//
// A mid-lifecycle agent replacement (restart, degraded swap) surfaces
// as shadow loss; the lifecycle is deterministic, so it replays in full
// on fresh shadows — the partial run's steps are discarded, keeping
// step totals identical to a fault-free run.
func (c *Coordinator) CheckWitness(node, peer string, w *bgp.Update) (*core.WitnessOutcome, error) {
	var lastErr error
	for attempt := 0; attempt <= maxWitnessReplays; attempt++ {
		shadows, err := c.openShadows()
		if err != nil {
			return nil, err
		}
		out, _, err := c.checkWitnessIn(shadows, node, peer, w)
		c.closeShadows(shadows)
		if err == nil {
			return out, nil
		}
		if !IsShadowLoss(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// CheckWitnesses checks a sequence of witnesses in order, each with
// exactly the semantics of CheckWitness, but amortizing shadow
// lifecycle: consecutive witnesses whose prefix footprints are pairwise
// disjoint share one shadow set instead of opening a fresh clone per
// node per witness. Disjointness is what makes sharing sound — BGP
// decisions are per-prefix, every witness's full UPDATE→oracles→WITHDRAW
// lifecycle runs contiguously, and any residue one witness leaves
// (stale routes, withdrawn paths) lives entirely under prefixes the
// later witnesses never look at. A witness that fails to converge
// leaves its set mid-churn, so the set is retired and the remaining
// witnesses get a fresh one. Under call-and-wait this degrades to a
// CheckWitness loop.
func (c *Coordinator) CheckWitnesses(specs []WitnessSpec) ([]*core.WitnessOutcome, error) {
	outs := make([]*core.WitnessOutcome, 0, len(specs))
	if c.callAndWait {
		for _, s := range specs {
			out, err := c.CheckWitness(s.Node, s.Peer, s.Update)
			if err != nil {
				return nil, err
			}
			outs = append(outs, out)
		}
		return outs, nil
	}
	for i := 0; i < len(specs); {
		// Grow the group while the next witness's prefixes stay disjoint
		// from everything already in it.
		footprint := append([]netaddr.Prefix(nil), specs[i].Update.NLRI...)
		j := i + 1
	grow:
		for j < len(specs) {
			next := specs[j].Update.NLRI
			for _, p := range next {
				for _, q := range footprint {
					if p.Overlaps(q) {
						break grow
					}
				}
			}
			footprint = append(footprint, next...)
			j++
		}
		shadows, err := c.openShadows()
		if err != nil {
			return nil, err
		}
		for k := i; k < j; k++ {
			out, dirty, err := c.checkWitnessIn(shadows, specs[k].Node, specs[k].Peer, specs[k].Update)
			if err != nil {
				c.closeShadows(shadows)
				shadows = nil
				if !IsShadowLoss(err) {
					return nil, err
				}
				// Mid-witness agent replacement: the shared set died with
				// the old agent. Replay this witness alone on fresh
				// shadows (CheckWitness brings its own), then re-open a
				// set for the rest of the group.
				out, err = c.CheckWitness(specs[k].Node, specs[k].Peer, specs[k].Update)
				if err != nil {
					return nil, err
				}
				outs = append(outs, out)
				if k+1 < j {
					shadows, err = c.openShadows()
					if err != nil {
						return nil, err
					}
				}
				continue
			}
			outs = append(outs, out)
			if dirty && k+1 < j {
				c.closeShadows(shadows)
				shadows, err = c.openShadows()
				if err != nil {
					return nil, err
				}
			}
		}
		c.closeShadows(shadows)
		i = j
	}
	return outs, nil
}

// checkWitnessIn runs one witness lifecycle inside an already-open
// shadow set: collect the witness-attributed facts over the wire, then
// evaluate the coordinator's property set over them — the same
// prop.Evaluate the in-process backend calls, which is what keeps the
// two backends' violations byte-identical. dirty reports that the set
// absorbed a non-converging wave and must not host further witnesses.
func (c *Coordinator) checkWitnessIn(shadows *shadowSet, node, peer string, w *bgp.Update) (_ *core.WitnessOutcome, dirty bool, _ error) {
	facts, dirty, err := c.collectFactsIn(shadows, node, peer, w)
	if err != nil {
		return nil, false, err
	}
	res := &core.WitnessOutcome{Steps: facts.Update.Steps + facts.Withdraw.Steps}
	prefix := w.NLRI[0]
	for _, v := range prop.Evaluate(c.props, facts) {
		res.Violations = append(res.Violations, core.FederatedViolation{
			Kind: v.Kind, Node: v.Node, Source: node, Peer: peer, Prefix: prefix,
			Hops: v.Hops, Detail: v.Detail, Waves: v.Waves, WaveTail: v.WaveTail,
		})
	}
	return res, dirty, nil
}

// collectFactsIn is the distributed core.collectFacts: it plays the
// witness lifecycle over the shared shadow set and records what
// happened without judging it. Every observation crosses the wire as a
// narrow per-node answer — pre/post best-route identity tokens, forward
// traces, per-property `at` verdicts (PropMatch, when the property set
// needs them) — and lands in the same prop.Facts shape the in-process
// backend fills, collected in the same order (sorted node names).
// Collection stops early when a phase fails to converge, exactly as the
// original oracles returned early; dirty reports that case.
func (c *Coordinator) collectFactsIn(shadows *shadowSet, node, peer string, w *bgp.Update) (_ *prop.Facts, dirty bool, _ error) {
	lat, linked := c.linkLatency(peer, node)
	if !linked {
		return nil, false, fmt.Errorf("dist: no %s→%s link for witness injection", peer, node)
	}
	prefix := w.NLRI[0]
	facts := &prop.Facts{
		Node: node, Peer: peer, Boundary: c.boundary,
		MaxSteps: c.opts.MaxPropagationSteps,
		Witness:  prop.NewEnv(prefix, &w.Attrs, c.boundary),
		NodeAS: func(name string) (uint16, bool) {
			as, ok := c.nodeAS[name]
			return as, ok
		},
	}

	// Pre-injection best routes, for witness attribution. The explored
	// node and the sending peer are excluded from every oracle below,
	// so their pre-state is never consulted — don't pay the RPCs.
	others := make([]string, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n == node || n == peer {
			continue
		}
		others = append(others, n)
	}
	pre, err := c.queryMany(shadows, others, prefix, false)
	if err != nil {
		return nil, false, err
	}

	// UPDATE wave.
	wire, err := bgp.Encode(w)
	if err != nil {
		return nil, false, err
	}
	queue := &relayQueue{}
	heap.Push(queue, &relayEvent{at: lat, seq: 1, key: shadows.nextKey(), from: peer, to: node, msg: wire})
	steps, pending, waves, err := c.relay(shadows, queue, c.opts.MaxPropagationSteps)
	if err != nil {
		return nil, false, err
	}
	facts.Update = prop.Phase{Steps: steps, Pending: pending, Waves: waves}
	if pending > 0 {
		return facts, true, nil // oracle state below would be meaningless mid-churn
	}

	// Per-node installation facts over the converged shadows. The post
	// queries fan out in one wave (carrying WantProps when any property
	// has an `at` clause to answer); evaluation stays in sorted node
	// order so the facts — and the violations derived from them — come
	// out deterministically. installed remembers each witness-attributed
	// best-route token for the withdraw check below.
	post, err := c.queryMany(shadows, others, prefix, c.needsAt)
	if err != nil {
		return nil, false, err
	}
	installed := make(map[string]string) // node → witness-attributed best FP
	for _, name := range others {
		q := post[name]
		if !q.HasBest || (pre[name].HasBest && q.BestFP == pre[name].BestFP) {
			continue // witness never took hold at this node
		}
		installed[name] = q.BestFP
		terminal, hops, delivered, path, err := c.traceForward(shadows, name, prefix)
		if err != nil {
			return nil, false, err
		}
		facts.Nodes = append(facts.Nodes, prop.NodeFacts{
			Name: name, Hops: hops, Terminal: terminal, Delivered: delivered, Path: path,
			AtMatch: q.PropMatch,
		})
	}

	// WITHDRAW wave: the retraction must clean the witness out of every
	// node it reached.
	wdWire, err := bgp.Encode(&bgp.Update{Withdrawn: []netaddr.Prefix{prefix}})
	if err != nil {
		return nil, false, err
	}
	queue = &relayQueue{}
	heap.Push(queue, &relayEvent{at: lat, seq: 1, key: shadows.nextKey(), from: peer, to: node, msg: wdWire})
	steps, pending, waves, err = c.relay(shadows, queue, c.opts.MaxPropagationSteps)
	if err != nil {
		return nil, false, err
	}
	facts.Withdraw = prop.Phase{Steps: steps, Pending: pending, Waves: waves}
	if pending > 0 {
		return facts, true, nil
	}
	reached := make([]string, 0, len(installed))
	for name := range installed {
		reached = append(reached, name)
	}
	sort.Strings(reached)
	after, err := c.queryMany(shadows, reached, prefix, false)
	if err != nil {
		return nil, false, err
	}
	for _, name := range reached {
		if q := after[name]; q.HasBest && q.BestFP == installed[name] {
			facts.Stale = append(facts.Stale, name)
		}
	}
	sort.Strings(facts.Stale)
	return facts, false, nil
}

// traceForward walks best-route provenance for prefix hop by hop across
// the agents' shadows — the distributed multi-hop blackhole core. Each
// hop is one QueryOracle call; no node reveals more than its own
// forwarding decision. path lists every node visited, origin first and
// terminal last, feeding `never reachable via` property assertions —
// the same contract as the in-process Fabric.traceForward.
func (c *Coordinator) traceForward(shadows *shadowSet, from string, prefix netaddr.Prefix) (terminal string, hops int, delivered bool, path []string, err error) {
	cur := from
	visited := map[string]bool{}
	for {
		path = append(path, cur)
		if visited[cur] {
			return cur, hops, false, path, nil // forwarding loop
		}
		visited[cur] = true
		if _, ok := c.conns[cur]; !ok {
			return cur, hops, false, path, nil
		}
		q, err := c.query(shadows, cur, prefix, false)
		if err != nil {
			return cur, hops, false, path, err
		}
		if !q.HasCovering {
			return cur, hops, false, path, nil // dead end: no covering route
		}
		if q.CoveringLocal {
			return cur, hops, true, path, nil // delivered to the originating AS
		}
		if q.CoveringNextPeer == "" {
			return cur, hops, false, path, nil
		}
		cur = q.CoveringNextPeer
		hops++
	}
}

// SkippedErr converts a TargetResult's Skipped reason into an error for
// callers that want core.FederatedTargetResult-shaped reporting.
func (t TargetResult) SkippedErr() error {
	if t.Skipped == "" {
		return nil
	}
	return errors.New(t.Skipped)
}
