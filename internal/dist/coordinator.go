package dist

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dice/internal/bgp"
	"dice/internal/core"
	"dice/internal/minimize"
	"dice/internal/netaddr"
)

// Coordinator drives federated exploration rounds over node agents. It
// is the distributed counterpart of core.FederatedExperiment: the same
// target resolution, witness dedup/cap policy, propagation bounds and
// cross-node oracles — but every per-node operation crosses the wire
// protocol instead of touching a router in-process, and witness
// propagation is relayed message by message between agents through a
// latency-ordered event queue that mirrors netsim's delivery order.
type Coordinator struct {
	Topo *core.Topology

	opts     core.FederatedOptions
	clients  map[string]*Client
	nodes    []string // sorted node names
	latency  map[string]time.Duration
	boundary uint32 // no-export community, resolved once at Connect
}

// TargetResult is one node's share of a distributed round.
type TargetResult struct {
	Node     string
	Peer     string
	Scenario string
	// Skipped records a defaulted target with no observed seed (the
	// distributed form of core.FederatedTargetResult.Err).
	Skipped string
	// Explore carries the agent's exploration stats.
	Explore *ExploreResult
	// Findings are the local oracle findings, reassembled from the wire.
	// Witness/MinimalWitness land here after cross-domain propagation,
	// exactly as on the in-process backend's Result.Findings.
	Findings []core.Finding
	// Minimization aggregates witness-minimization work over this
	// target's findings (nil unless the round ran with
	// FederatedOptions.Minimize and a witness triggered violations) —
	// the distributed form of core.Result.Minimization.
	Minimization *minimize.Stats
}

// RoundResult is the outcome of one distributed federated round.
// Violations reuse the in-process type, so the two backends' verdicts
// compare directly (the parity test depends on this).
type RoundResult struct {
	Targets           []TargetResult
	Violations        []core.FederatedViolation
	WitnessesInjected int
	WitnessesSkipped  int
	PropagationSteps  int
	Elapsed           time.Duration
}

// Snapshot renders the round canonically for golden-file comparison —
// the distributed counterpart of core.FederatedResult.Snapshot, built
// from the same core helpers so one golden file checks either backend.
func (res *RoundResult) Snapshot() []string {
	lines := []string{core.SnapshotHeader}
	for _, tr := range res.Targets {
		lines = append(lines, core.SnapshotTarget(tr.Node, tr.Peer, tr.Scenario, tr.Skipped, tr.Findings)...)
	}
	return append(lines, core.SnapshotTail(res.Violations, res.WitnessesInjected, res.WitnessesSkipped, res.PropagationSteps)...)
}

// Connect dials one agent per dialer, identifies each, and checks the
// set exactly covers the topology: every node independently
// administered, none orphaned, none doubled.
func Connect(topo *core.Topology, opts core.FederatedOptions, dialers []Dialer) (*Coordinator, error) {
	if opts.DefaultScenario == "" {
		opts.DefaultScenario = core.ScenarioRouteLeak
	}
	if opts.MaxPropagationSteps <= 0 {
		opts.MaxPropagationSteps = 4096
	}
	if opts.MaxWitnesses <= 0 {
		opts.MaxWitnesses = 16
	}
	if opts.Engine.State != nil {
		return nil, fmt.Errorf("dist: Engine.State cannot be shared across nodes; set ReuseState for per-node agent state")
	}
	if opts.Engine.Cancel != nil || opts.Engine.SolverCache != nil {
		// Process-local handles cannot cross the wire; refusing beats
		// silently exploring unbounded/uncached on the agents.
		return nil, fmt.Errorf("dist: Engine.Cancel and Engine.SolverCache are process-local and cannot be used distributed")
	}
	boundary, err := topo.BoundaryCommunity()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		Topo:     topo,
		opts:     opts,
		clients:  make(map[string]*Client, len(dialers)),
		latency:  make(map[string]time.Duration, len(topo.Edges)),
		boundary: boundary,
	}
	for _, e := range topo.Edges {
		lat := time.Duration(e.LatencyMS) * time.Millisecond
		if lat == 0 {
			lat = time.Millisecond // netsim's 0-means-1ms default
		}
		c.latency[edgeKey(e.A, e.B)] = lat
	}
	for _, d := range dialers {
		conn, err := d.Dial()
		if err != nil {
			c.Close()
			return nil, err
		}
		cl := NewClient(conn)
		var hello HelloResult
		if err := cl.Call(MethodHello, nil, &hello); err != nil {
			cl.Close()
			c.Close()
			return nil, err
		}
		if hello.Topology != topo.Name {
			cl.Close()
			c.Close()
			return nil, fmt.Errorf("dist: agent for %q administers topology %q, coordinator drives %q",
				hello.Node, hello.Topology, topo.Name)
		}
		if _, dup := c.clients[hello.Node]; dup {
			cl.Close()
			c.Close()
			return nil, fmt.Errorf("dist: two agents claim node %q", hello.Node)
		}
		c.clients[hello.Node] = cl
	}
	for _, n := range topo.Nodes {
		if _, ok := c.clients[n.Name]; !ok {
			c.Close()
			return nil, fmt.Errorf("dist: no agent for node %q", n.Name)
		}
		c.nodes = append(c.nodes, n.Name)
	}
	sort.Strings(c.nodes)
	return c, nil
}

// Close closes every agent connection.
func (c *Coordinator) Close() error {
	var first error
	for _, cl := range c.clients {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func edgeKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// linkLatency returns the edge's latency, or ok=false when the two
// nodes share no link (sends between them are dropped, like netsim's
// unplugged cable).
func (c *Coordinator) linkLatency(a, b string) (time.Duration, bool) {
	lat, ok := c.latency[edgeKey(a, b)]
	return lat, ok
}

// Round runs one distributed federated round: parallel per-agent
// exploration, then cross-domain witness propagation and oracles.
func (c *Coordinator) Round() (*RoundResult, error) {
	start := time.Now()
	res := &RoundResult{}

	// Phase 1: fan Explore out to the owning agents, one goroutine per
	// target (calls to the same agent serialize on its connection).
	targets := c.Topo.ResolveTargets(c.opts.DefaultScenario)
	outs := make([]*ExploreResult, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, tg := range targets {
		cl, ok := c.clients[tg.Node]
		if !ok {
			return nil, fmt.Errorf("dist: no agent for node %q", tg.Node)
		}
		wg.Add(1)
		go func(i int, tg core.ResolvedTarget) {
			defer wg.Done()
			params := ExploreParams{
				Peer:         tg.Peer,
				Scenario:     tg.Scenario,
				Explicit:     tg.Explicit,
				MaxRuns:      c.opts.Engine.MaxRuns,
				MaxDepth:     c.opts.Engine.MaxDepth,
				Workers:      c.opts.Workers,
				SolverNodes:  c.opts.Engine.SolverNodes,
				Strategy:     c.opts.Engine.Strategy.String(),
				TimeBudgetNS: c.opts.Engine.TimeBudget.Nanoseconds(),
				ReuseState:   c.opts.ReuseState,
			}
			var out ExploreResult
			if err := cl.Call(MethodExplore, params, &out); err != nil {
				errs[i] = err
				return
			}
			outs[i] = &out
		}(i, tg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: collect results in target order; decode, dedup and cap
	// the concrete witnesses exactly like the in-process backend. Each
	// witness keeps its (target, finding) linkage so per-witness
	// artifacts land back on the right finding.
	type witness struct {
		node, peer string
		update     *bgp.Update
		target     int // index into res.Targets
		finding    int // index into that target's Findings
	}
	var witnesses []witness
	seenWitness := map[string]bool{}
	for i, tg := range targets {
		out := outs[i]
		tr := TargetResult{Node: tg.Node, Peer: tg.Peer, Scenario: tg.Scenario, Explore: out, Skipped: out.Skipped}
		for _, wf := range out.Findings {
			f, err := decodeFinding(wf)
			if err != nil {
				return nil, err
			}
			tr.Findings = append(tr.Findings, f)
		}
		res.Targets = append(res.Targets, tr)
		for _, ww := range out.Witnesses {
			m, err := bgp.Decode(ww.Msg)
			if err != nil {
				return nil, fmt.Errorf("dist: %s/%s witness: %w", tg.Node, tg.Peer, err)
			}
			u, ok := m.(*bgp.Update)
			if !ok || len(u.NLRI) == 0 {
				continue
			}
			if ww.Finding < 0 || ww.Finding >= len(tr.Findings) {
				return nil, fmt.Errorf("dist: %s/%s witness references finding %d of %d", tg.Node, tg.Peer, ww.Finding, len(tr.Findings))
			}
			key := core.WitnessKey(tg.Node, tg.Peer, u)
			if seenWitness[key] {
				continue
			}
			seenWitness[key] = true
			witnesses = append(witnesses, witness{
				node: tg.Node, peer: tg.Peer, update: u,
				target: len(res.Targets) - 1, finding: ww.Finding,
			})
		}
	}

	for _, w := range witnesses {
		if res.WitnessesInjected >= c.opts.MaxWitnesses {
			res.WitnessesSkipped++
			continue
		}
		res.WitnessesInjected++
		tr := &res.Targets[w.target]
		tr.Findings[w.finding].Witness = w.update
		out, err := c.CheckWitness(w.node, w.peer, w.update)
		if err != nil {
			return nil, err
		}
		res.PropagationSteps += out.Steps
		res.Violations = append(res.Violations, out.Violations...)
		if c.opts.Minimize && len(out.Violations) > 0 {
			min, st, err := core.MinimizeWitness(c, w.node, w.peer, w.update, out.Violations, c.opts.MinimizeBudget)
			if err != nil {
				return nil, fmt.Errorf("dist: minimize %s/%s witness %s: %w", w.node, w.peer, w.update.NLRI[0], err)
			}
			tr.Findings[w.finding].MinimalWitness = min
			if tr.Minimization == nil {
				tr.Minimization = &minimize.Stats{}
			}
			tr.Minimization.Add(st)
		}
	}

	res.Elapsed = time.Since(start)
	return res, nil
}

// Replay feeds a recorded trace (internal/trace file bytes) into every
// agent's live local fabric through the node←peer ingress session — the
// distributed form of core.FederatedExperiment.Replay. The local
// fabrics are deterministic, so all agents converge on identical
// post-replay state without any node state crossing the wire; the
// coordinator cross-checks that by comparing the per-agent delivered
// counts (a trace that installs nothing — every record filtered or
// withdrawn — is legal, exactly as in the in-process backend). Agents
// replay concurrently, same fan-out shape as the explore phase. Call
// it before Round: subsequent explorations seed from the replayed
// history.
func (c *Coordinator) Replay(node, peer string, traceBytes []byte) (int, error) {
	if _, ok := c.clients[node]; !ok {
		return 0, fmt.Errorf("dist: replay ingress node %q has no agent", node)
	}
	params := ReplayParams{Node: node, Peer: peer, Trace: traceBytes}
	outs := make([]ReplayResult, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			if err := c.clients[n].Call(MethodReplay, params, &outs[i]); err != nil {
				errs[i] = fmt.Errorf("dist: replay on agent %s: %w", n, err)
			}
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	delivered := outs[0].Delivered
	for i, out := range outs {
		if out.Delivered != delivered {
			return 0, fmt.Errorf("dist: replay diverged: agent %s delivered %d records, agent %s %d",
				c.nodes[i], out.Delivered, c.nodes[0], delivered)
		}
	}
	return delivered, nil
}

// decodeFinding reassembles a core.Finding from its wire form.
func decodeFinding(wf WireFinding) (core.Finding, error) {
	prefix, err := netaddr.ParsePrefix(wf.Prefix)
	if err != nil {
		return core.Finding{}, fmt.Errorf("dist: finding prefix %q: %w", wf.Prefix, err)
	}
	f := core.Finding{
		Kind:      wf.Kind,
		Peer:      wf.Peer,
		Prefix:    prefix,
		LeakRange: wf.LeakRange,
		OriginAS:  wf.OriginAS,
		VictimAS:  wf.VictimAS,
		Seq:       wf.Seq,
		Validated: wf.Validated,
		SpreadTo:  wf.SpreadTo,
		Input:     wf.Input,
	}
	if wf.VictimPrefix != "" {
		vp, err := netaddr.ParsePrefix(wf.VictimPrefix)
		if err != nil {
			return core.Finding{}, fmt.Errorf("dist: finding victim prefix %q: %w", wf.VictimPrefix, err)
		}
		f.VictimPrefix = vp
	}
	return f, nil
}

// relayEvent is one in-flight message between domains.
type relayEvent struct {
	at       time.Duration // virtual delivery time from injection
	seq      uint64        // FIFO tiebreak, mirroring netsim
	from, to string
	msg      []byte
}

type relayQueue []*relayEvent

func (q relayQueue) Len() int { return len(q) }
func (q relayQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q relayQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *relayQueue) Push(x any)   { *q = append(*q, x.(*relayEvent)) }
func (q *relayQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// shadowSet tracks one shadow clone per agent for a witness's lifetime.
type shadowSet map[string]uint64

// openShadows opens one shadow per node; closeShadows tears them down.
func (c *Coordinator) openShadows() (shadowSet, error) {
	shadows := make(shadowSet, len(c.nodes))
	for _, n := range c.nodes {
		var out ShadowOpenResult
		if err := c.clients[n].Call(MethodShadowOpen, nil, &out); err != nil {
			c.closeShadows(shadows)
			return nil, err
		}
		shadows[n] = out.ShadowID
	}
	return shadows, nil
}

func (c *Coordinator) closeShadows(shadows shadowSet) {
	for n, id := range shadows {
		// Best-effort: a failed close leaks one clone on that agent, it
		// does not invalidate the round.
		_ = c.clients[n].Call(MethodShadowClose, ShadowCloseParams{ShadowID: id}, nil)
	}
}

// query asks one node's oracle view of prefix in its shadow.
func (c *Coordinator) query(shadows shadowSet, node string, prefix netaddr.Prefix) (*QueryOracleResult, error) {
	var out QueryOracleResult
	err := c.clients[node].Call(MethodQueryOracle,
		QueryOracleParams{ShadowID: shadows[node], Prefix: prefix.String()}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// relay drives one message wave set through the agents: deliveries pop
// in (virtual-latency, FIFO) order, each delivery's emissions are
// enqueued with their link latency, and the run ends when the queue
// drains or the step bound hits. It returns delivered count and queue
// backlog — the distributed Run/Pending pair — plus the per-wave
// delivery counts (consecutive deliveries sharing one virtual timestamp
// are one wave, mirroring the in-process runWaves over netsim).
func (c *Coordinator) relay(shadows shadowSet, queue *relayQueue, maxSteps int) (steps, pending int, waves []int, err error) {
	// Initial events carry seqs 1..Len (both callers enqueue exactly
	// one); relayed emissions continue the sequence from there.
	seq := uint64(queue.Len())
	var last time.Duration
	for queue.Len() > 0 && steps < maxSteps {
		e := heap.Pop(queue).(*relayEvent)
		var out InjectResult
		err := c.clients[e.to].Call(MethodInjectWitness,
			InjectParams{ShadowID: shadows[e.to], From: e.from, Msg: e.msg}, &out)
		if err != nil {
			return steps, queue.Len(), waves, err
		}
		steps++
		if len(waves) == 0 || e.at != last {
			waves = append(waves, 0)
			last = e.at
		}
		waves[len(waves)-1]++
		for _, em := range out.Emitted {
			lat, linked := c.linkLatency(e.to, em.To)
			if !linked {
				continue // no link: dropped, like netsim's unplugged cable
			}
			seq++
			heap.Push(queue, &relayEvent{at: e.at + lat, seq: seq, from: e.to, to: em.To, msg: em.Msg})
		}
	}
	return steps, queue.Len(), waves, nil
}

// CheckWitness is the distributed form of the in-process CheckWitness:
// inject one concrete witness at the explored node as if its peer sent
// it, relay the resulting message waves between the agents' shadow
// clones, and run the cross-node oracles over the converged state —
// then withdraw it and check the retraction cleans up. Round calls it
// for every injected witness; witness minimization
// (core.MinimizeWitness over the core.WitnessChecker seam) calls it for
// every candidate.
func (c *Coordinator) CheckWitness(node, peer string, w *bgp.Update) (*core.WitnessOutcome, error) {
	res := &core.WitnessOutcome{}
	lat, linked := c.linkLatency(peer, node)
	if !linked {
		return nil, fmt.Errorf("dist: no %s→%s link for witness injection", peer, node)
	}
	prefix := w.NLRI[0]

	shadows, err := c.openShadows()
	if err != nil {
		return nil, err
	}
	defer c.closeShadows(shadows)

	// Pre-injection best routes, for witness attribution. The explored
	// node and the sending peer are excluded from every oracle below,
	// so their pre-state is never consulted — don't pay the RPCs.
	pre := make(map[string]*QueryOracleResult, len(c.nodes))
	for _, n := range c.nodes {
		if n == node || n == peer {
			continue
		}
		q, err := c.query(shadows, n, prefix)
		if err != nil {
			return nil, err
		}
		pre[n] = q
	}

	// UPDATE wave.
	wire, err := bgp.Encode(w)
	if err != nil {
		return nil, err
	}
	queue := &relayQueue{}
	heap.Push(queue, &relayEvent{at: lat, seq: 1, from: peer, to: node, msg: wire})
	steps, pending, waves, err := c.relay(shadows, queue, c.opts.MaxPropagationSteps)
	res.Steps += steps
	if err != nil {
		return nil, err
	}
	if pending > 0 {
		res.Violations = append(res.Violations, core.FederatedViolation{
			Kind: "persistent-oscillation", Node: node, Source: node, Peer: peer, Prefix: prefix,
			Detail: core.OscillationDetail("no convergence", c.opts.MaxPropagationSteps, pending, waves),
			Waves:  len(waves), WaveTail: core.WaveTail(waves),
		})
		return res, nil // oracle state below would be meaningless mid-churn
	}

	boundary := c.boundary
	noExport := false
	for _, cm := range w.Attrs.Communities {
		if cm == boundary {
			noExport = true
		}
	}

	// Cross-node oracles over the converged shadows.
	installed := make(map[string]string) // node → witness-attributed best FP
	for _, name := range c.nodes {
		if name == node || name == peer {
			continue
		}
		q, err := c.query(shadows, name, prefix)
		if err != nil {
			return nil, err
		}
		if !q.HasBest || (pre[name].HasBest && q.BestFP == pre[name].BestFP) {
			continue // witness never took hold at this node
		}
		installed[name] = q.BestFP
		terminal, hops, delivered, err := c.traceForward(shadows, name, prefix)
		if err != nil {
			return nil, err
		}
		if noExport {
			res.Violations = append(res.Violations, core.FederatedViolation{
				Kind: "route-leak", Node: name, Source: node, Peer: peer, Prefix: prefix, Hops: hops,
				Detail: fmt.Sprintf("advertisement carrying the no-export community (%d:%d) escaped AS boundary %s and was installed at %s",
					boundary>>16, boundary&0xffff, node, name),
			})
		}
		if !delivered && hops >= 2 {
			res.Violations = append(res.Violations, core.FederatedViolation{
				Kind: "multi-hop-blackhole", Node: name, Source: node, Peer: peer, Prefix: prefix, Hops: hops,
				Detail: fmt.Sprintf("traffic from %s forward-traces %d hops and dead-ends at %s", name, hops, terminal),
			})
		}
	}

	// WITHDRAW wave: the retraction must clean the witness out of every
	// node it reached.
	wdWire, err := bgp.Encode(&bgp.Update{Withdrawn: []netaddr.Prefix{prefix}})
	if err != nil {
		return nil, err
	}
	queue = &relayQueue{}
	heap.Push(queue, &relayEvent{at: lat, seq: 1, from: peer, to: node, msg: wdWire})
	steps, pending, waves, err = c.relay(shadows, queue, c.opts.MaxPropagationSteps)
	res.Steps += steps
	if err != nil {
		return nil, err
	}
	if pending > 0 {
		res.Violations = append(res.Violations, core.FederatedViolation{
			Kind: "persistent-oscillation", Node: node, Source: node, Peer: peer, Prefix: prefix,
			Detail: core.OscillationDetail("WITHDRAW did not converge", c.opts.MaxPropagationSteps, pending, waves),
			Waves:  len(waves), WaveTail: core.WaveTail(waves),
		})
		return res, nil
	}
	stale := []string{}
	for name, fp := range installed {
		q, err := c.query(shadows, name, prefix)
		if err != nil {
			return nil, err
		}
		if q.HasBest && q.BestFP == fp {
			stale = append(stale, name)
		}
	}
	if len(stale) > 0 {
		sort.Strings(stale)
		res.Violations = append(res.Violations, core.FederatedViolation{
			Kind: "stale-route", Node: stale[0], Source: node, Peer: peer, Prefix: prefix,
			Detail: fmt.Sprintf("witness route survived its own WITHDRAW at %v", stale),
		})
	}
	return res, nil
}

// traceForward walks best-route provenance for prefix hop by hop across
// the agents' shadows — the distributed multi-hop blackhole core. Each
// hop is one QueryOracle call; no node reveals more than its own
// forwarding decision.
func (c *Coordinator) traceForward(shadows shadowSet, from string, prefix netaddr.Prefix) (terminal string, hops int, delivered bool, err error) {
	cur := from
	visited := map[string]bool{}
	for {
		if visited[cur] {
			return cur, hops, false, nil // forwarding loop
		}
		visited[cur] = true
		if _, ok := c.clients[cur]; !ok {
			return cur, hops, false, nil
		}
		q, err := c.query(shadows, cur, prefix)
		if err != nil {
			return cur, hops, false, err
		}
		if !q.HasCovering {
			return cur, hops, false, nil // dead end: no covering route
		}
		if q.CoveringLocal {
			return cur, hops, true, nil // delivered to the originating AS
		}
		if q.CoveringNextPeer == "" {
			return cur, hops, false, nil
		}
		cur = q.CoveringNextPeer
		hops++
	}
}

// SkippedErr converts a TargetResult's Skipped reason into an error for
// callers that want core.FederatedTargetResult-shaped reporting.
func (t TargetResult) SkippedErr() error {
	if t.Skipped == "" {
		return nil
	}
	return errors.New(t.Skipped)
}
