package dist

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dice/internal/bgp"
	"dice/internal/core"
	"dice/internal/minimize"
	"dice/internal/netaddr"
)

// Coordinator drives federated exploration rounds over node agents. It
// is the distributed counterpart of core.FederatedExperiment: the same
// target resolution, witness dedup/cap policy, propagation bounds and
// cross-node oracles — but every per-node operation crosses the wire
// protocol instead of touching a router in-process, and witness
// propagation is relayed message by message between agents through a
// latency-ordered event queue that mirrors netsim's delivery order.
type Coordinator struct {
	Topo *core.Topology

	opts     core.FederatedOptions
	clients  map[string]*Client
	nodes    []string // sorted node names
	latency  map[string]time.Duration
	boundary uint32 // no-export community, resolved once at Connect

	maxVersion  int  // wire protocol cap offered at handshake
	callAndWait bool // disable pipelining, batching, shared shadow sets
}

// ConnOption tunes how Connect drives the wire protocol.
type ConnOption func(*Coordinator)

// WithMaxVersion caps the protocol version the coordinator offers in
// its handshakes. WithMaxVersion(ProtoV1) forces JSON framing even
// against v2 agents — the compatibility escape hatch, and the baseline
// leg of the wire benchmarks.
func WithMaxVersion(v int) ConnOption {
	return func(c *Coordinator) { c.maxVersion = v }
}

// WithCallAndWait disables request pipelining, relay batching, and
// shadow-set sharing: every RPC is issued alone and awaited before the
// next, the pre-v2 transport discipline. Useful for benchmarks
// (isolating the codec from the scheduling wins) and for bisecting
// transport bugs.
func WithCallAndWait() ConnOption {
	return func(c *Coordinator) { c.callAndWait = true }
}

// Versions reports the negotiated wire protocol version per node.
func (c *Coordinator) Versions() map[string]int {
	v := make(map[string]int, len(c.clients))
	for n, cl := range c.clients {
		v[n] = cl.Version()
	}
	return v
}

// TargetResult is one node's share of a distributed round.
type TargetResult struct {
	Node     string
	Peer     string
	Scenario string
	// Skipped records a defaulted target with no observed seed (the
	// distributed form of core.FederatedTargetResult.Err).
	Skipped string
	// Explore carries the agent's exploration stats.
	Explore *ExploreResult
	// Findings are the local oracle findings, reassembled from the wire.
	// Witness/MinimalWitness land here after cross-domain propagation,
	// exactly as on the in-process backend's Result.Findings.
	Findings []core.Finding
	// Minimization aggregates witness-minimization work over this
	// target's findings (nil unless the round ran with
	// FederatedOptions.Minimize and a witness triggered violations) —
	// the distributed form of core.Result.Minimization.
	Minimization *minimize.Stats
}

// RoundResult is the outcome of one distributed federated round.
// Violations reuse the in-process type, so the two backends' verdicts
// compare directly (the parity test depends on this).
type RoundResult struct {
	Targets           []TargetResult
	Violations        []core.FederatedViolation
	WitnessesInjected int
	WitnessesSkipped  int
	PropagationSteps  int
	Elapsed           time.Duration
}

// Snapshot renders the round canonically for golden-file comparison —
// the distributed counterpart of core.FederatedResult.Snapshot, built
// from the same core helpers so one golden file checks either backend.
func (res *RoundResult) Snapshot() []string {
	lines := []string{core.SnapshotHeader}
	for _, tr := range res.Targets {
		lines = append(lines, core.SnapshotTarget(tr.Node, tr.Peer, tr.Scenario, tr.Skipped, tr.Findings)...)
	}
	return append(lines, core.SnapshotTail(res.Violations, res.WitnessesInjected, res.WitnessesSkipped, res.PropagationSteps)...)
}

// Connect dials one agent per dialer, identifies each, and checks the
// set exactly covers the topology: every node independently
// administered, none orphaned, none doubled.
func Connect(topo *core.Topology, opts core.FederatedOptions, dialers []Dialer, copts ...ConnOption) (*Coordinator, error) {
	if opts.DefaultScenario == "" {
		opts.DefaultScenario = core.ScenarioRouteLeak
	}
	if opts.MaxPropagationSteps <= 0 {
		opts.MaxPropagationSteps = 4096
	}
	if opts.MaxWitnesses <= 0 {
		opts.MaxWitnesses = 16
	}
	if opts.Engine.State != nil {
		return nil, fmt.Errorf("dist: Engine.State cannot be shared across nodes; set ReuseState for per-node agent state")
	}
	if opts.Engine.Cancel != nil || opts.Engine.SolverCache != nil {
		// Process-local handles cannot cross the wire; refusing beats
		// silently exploring unbounded/uncached on the agents.
		return nil, fmt.Errorf("dist: Engine.Cancel and Engine.SolverCache are process-local and cannot be used distributed")
	}
	boundary, err := topo.BoundaryCommunity()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		Topo:       topo,
		opts:       opts,
		clients:    make(map[string]*Client, len(dialers)),
		latency:    make(map[string]time.Duration, len(topo.Edges)),
		boundary:   boundary,
		maxVersion: ProtoLatest,
	}
	for _, o := range copts {
		o(c)
	}
	for _, e := range topo.Edges {
		lat := time.Duration(e.LatencyMS) * time.Millisecond
		if lat == 0 {
			lat = time.Millisecond // netsim's 0-means-1ms default
		}
		c.latency[edgeKey(e.A, e.B)] = lat
	}
	for _, d := range dialers {
		conn, err := d.Dial()
		if err != nil {
			c.Close()
			return nil, err
		}
		cl := NewClient(conn)
		hello, err := cl.Handshake(c.maxVersion)
		if err != nil {
			cl.Close()
			c.Close()
			return nil, err
		}
		if hello.Topology != topo.Name {
			cl.Close()
			c.Close()
			return nil, fmt.Errorf("dist: agent for %q administers topology %q, coordinator drives %q",
				hello.Node, hello.Topology, topo.Name)
		}
		if _, dup := c.clients[hello.Node]; dup {
			cl.Close()
			c.Close()
			return nil, fmt.Errorf("dist: two agents claim node %q", hello.Node)
		}
		c.clients[hello.Node] = cl
	}
	for _, n := range topo.Nodes {
		if _, ok := c.clients[n.Name]; !ok {
			c.Close()
			return nil, fmt.Errorf("dist: no agent for node %q", n.Name)
		}
		c.nodes = append(c.nodes, n.Name)
	}
	sort.Strings(c.nodes)
	return c, nil
}

// Close closes every agent connection.
func (c *Coordinator) Close() error {
	var first error
	for _, cl := range c.clients {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func edgeKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// linkLatency returns the edge's latency, or ok=false when the two
// nodes share no link (sends between them are dropped, like netsim's
// unplugged cable).
func (c *Coordinator) linkLatency(a, b string) (time.Duration, bool) {
	lat, ok := c.latency[edgeKey(a, b)]
	return lat, ok
}

// Round runs one distributed federated round: parallel per-agent
// exploration, then cross-domain witness propagation and oracles.
func (c *Coordinator) Round() (*RoundResult, error) {
	start := time.Now()
	res := &RoundResult{}

	// Phase 1: fan Explore out to the owning agents, one goroutine per
	// target (calls to the same agent serialize on its connection).
	targets := c.Topo.ResolveTargets(c.opts.DefaultScenario)
	outs := make([]*ExploreResult, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, tg := range targets {
		cl, ok := c.clients[tg.Node]
		if !ok {
			return nil, fmt.Errorf("dist: no agent for node %q", tg.Node)
		}
		wg.Add(1)
		go func(i int, tg core.ResolvedTarget) {
			defer wg.Done()
			params := ExploreParams{
				Peer:         tg.Peer,
				Scenario:     tg.Scenario,
				Explicit:     tg.Explicit,
				MaxRuns:      c.opts.Engine.MaxRuns,
				MaxDepth:     c.opts.Engine.MaxDepth,
				Workers:      c.opts.Workers,
				SolverNodes:  c.opts.Engine.SolverNodes,
				Strategy:     c.opts.Engine.Strategy.String(),
				TimeBudgetNS: c.opts.Engine.TimeBudget.Nanoseconds(),
				ReuseState:   c.opts.ReuseState,
			}
			var out ExploreResult
			if err := cl.Call(MethodExplore, &params, &out); err != nil {
				errs[i] = err
				return
			}
			outs[i] = &out
		}(i, tg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: collect results in target order; decode, dedup and cap
	// the concrete witnesses exactly like the in-process backend. Each
	// witness keeps its (target, finding) linkage so per-witness
	// artifacts land back on the right finding.
	type witness struct {
		node, peer string
		update     *bgp.Update
		target     int // index into res.Targets
		finding    int // index into that target's Findings
	}
	var witnesses []witness
	seenWitness := map[string]bool{}
	for i, tg := range targets {
		out := outs[i]
		tr := TargetResult{Node: tg.Node, Peer: tg.Peer, Scenario: tg.Scenario, Explore: out, Skipped: out.Skipped}
		for _, wf := range out.Findings {
			f, err := decodeFinding(wf)
			if err != nil {
				return nil, err
			}
			tr.Findings = append(tr.Findings, f)
		}
		res.Targets = append(res.Targets, tr)
		for _, ww := range out.Witnesses {
			m, err := bgp.Decode(ww.Msg)
			if err != nil {
				return nil, fmt.Errorf("dist: %s/%s witness: %w", tg.Node, tg.Peer, err)
			}
			u, ok := m.(*bgp.Update)
			if !ok || len(u.NLRI) == 0 {
				continue
			}
			if ww.Finding < 0 || ww.Finding >= len(tr.Findings) {
				return nil, fmt.Errorf("dist: %s/%s witness references finding %d of %d", tg.Node, tg.Peer, ww.Finding, len(tr.Findings))
			}
			key := core.WitnessKey(tg.Node, tg.Peer, u)
			if seenWitness[key] {
				continue
			}
			seenWitness[key] = true
			witnesses = append(witnesses, witness{
				node: tg.Node, peer: tg.Peer, update: u,
				target: len(res.Targets) - 1, finding: ww.Finding,
			})
		}
	}

	// Apply the cap, then check the surviving witnesses as one sequence:
	// CheckWitnesses shares shadow sets across disjoint-prefix runs, and
	// per-witness outcomes come back in order so violation order, step
	// totals and per-finding artifacts land exactly as the one-at-a-time
	// loop produced them.
	var checked []witness
	for _, w := range witnesses {
		if len(checked) >= c.opts.MaxWitnesses {
			res.WitnessesSkipped++
			continue
		}
		checked = append(checked, w)
	}
	res.WitnessesInjected = len(checked)
	specs := make([]WitnessSpec, len(checked))
	for i, w := range checked {
		specs[i] = WitnessSpec{Node: w.node, Peer: w.peer, Update: w.update}
		res.Targets[w.target].Findings[w.finding].Witness = w.update
	}
	outcomes, err := c.CheckWitnesses(specs)
	if err != nil {
		return nil, err
	}
	for i, w := range checked {
		out := outcomes[i]
		tr := &res.Targets[w.target]
		res.PropagationSteps += out.Steps
		res.Violations = append(res.Violations, out.Violations...)
		if c.opts.Minimize && len(out.Violations) > 0 {
			min, st, err := core.MinimizeWitness(c, w.node, w.peer, w.update, out.Violations, c.opts.MinimizeBudget)
			if err != nil {
				return nil, fmt.Errorf("dist: minimize %s/%s witness %s: %w", w.node, w.peer, w.update.NLRI[0], err)
			}
			tr.Findings[w.finding].MinimalWitness = min
			if tr.Minimization == nil {
				tr.Minimization = &minimize.Stats{}
			}
			tr.Minimization.Add(st)
		}
	}

	res.Elapsed = time.Since(start)
	return res, nil
}

// Replay feeds a recorded trace (internal/trace file bytes) into every
// agent's live local fabric through the node←peer ingress session — the
// distributed form of core.FederatedExperiment.Replay. The local
// fabrics are deterministic, so all agents converge on identical
// post-replay state without any node state crossing the wire; the
// coordinator cross-checks that by comparing the per-agent delivered
// counts (a trace that installs nothing — every record filtered or
// withdrawn — is legal, exactly as in the in-process backend). Agents
// replay concurrently, same fan-out shape as the explore phase. Call
// it before Round: subsequent explorations seed from the replayed
// history.
func (c *Coordinator) Replay(node, peer string, traceBytes []byte) (int, error) {
	if _, ok := c.clients[node]; !ok {
		return 0, fmt.Errorf("dist: replay ingress node %q has no agent", node)
	}
	params := ReplayParams{Node: node, Peer: peer, Trace: traceBytes}
	outs := make([]ReplayResult, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			if err := c.clients[n].Call(MethodReplay, &params, &outs[i]); err != nil {
				errs[i] = fmt.Errorf("dist: replay on agent %s: %w", n, err)
			}
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	delivered := outs[0].Delivered
	for i, out := range outs {
		if out.Delivered != delivered {
			return 0, fmt.Errorf("dist: replay diverged: agent %s delivered %d records, agent %s %d",
				c.nodes[i], out.Delivered, c.nodes[0], delivered)
		}
	}
	return delivered, nil
}

// decodeFinding reassembles a core.Finding from its wire form.
func decodeFinding(wf WireFinding) (core.Finding, error) {
	prefix, err := netaddr.ParsePrefix(wf.Prefix)
	if err != nil {
		return core.Finding{}, fmt.Errorf("dist: finding prefix %q: %w", wf.Prefix, err)
	}
	f := core.Finding{
		Kind:      wf.Kind,
		Peer:      wf.Peer,
		Prefix:    prefix,
		LeakRange: wf.LeakRange,
		OriginAS:  wf.OriginAS,
		VictimAS:  wf.VictimAS,
		Seq:       wf.Seq,
		Validated: wf.Validated,
		SpreadTo:  wf.SpreadTo,
		Input:     wf.Input,
	}
	if wf.VictimPrefix != "" {
		vp, err := netaddr.ParsePrefix(wf.VictimPrefix)
		if err != nil {
			return core.Finding{}, fmt.Errorf("dist: finding victim prefix %q: %w", wf.VictimPrefix, err)
		}
		f.VictimPrefix = vp
	}
	return f, nil
}

// relayEvent is one in-flight message between domains.
type relayEvent struct {
	at       time.Duration // virtual delivery time from injection
	seq      uint64        // FIFO tiebreak, mirroring netsim
	from, to string
	msg      []byte
}

type relayQueue []*relayEvent

func (q relayQueue) Len() int { return len(q) }
func (q relayQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q relayQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *relayQueue) Push(x any)   { *q = append(*q, x.(*relayEvent)) }
func (q *relayQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// shadowSet tracks one shadow clone per agent for a witness's lifetime.
type shadowSet map[string]uint64

// openShadows opens one shadow per node; closeShadows tears them down.
// When pipelining is on, all opens are in flight at once — the agents
// sit on different connections, so the fan-out completes in one RTT.
func (c *Coordinator) openShadows() (shadowSet, error) {
	shadows := make(shadowSet, len(c.nodes))
	if c.callAndWait {
		for _, n := range c.nodes {
			var out ShadowOpenResult
			if err := c.clients[n].Call(MethodShadowOpen, nil, &out); err != nil {
				c.closeShadows(shadows)
				return nil, err
			}
			shadows[n] = out.ShadowID
		}
		return shadows, nil
	}
	outs := make([]ShadowOpenResult, len(c.nodes))
	pend := make([]*Pending, len(c.nodes))
	for i, n := range c.nodes {
		pend[i] = c.clients[n].Go(MethodShadowOpen, nil, &outs[i])
	}
	var firstErr error
	for i, p := range pend {
		if err := p.Wait(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		shadows[c.nodes[i]] = outs[i].ShadowID
	}
	if firstErr != nil {
		c.closeShadows(shadows)
		return nil, firstErr
	}
	return shadows, nil
}

func (c *Coordinator) closeShadows(shadows shadowSet) {
	// Best-effort: a failed close leaks one clone on that agent, it
	// does not invalidate the round.
	if c.callAndWait {
		for n, id := range shadows {
			_ = c.clients[n].Call(MethodShadowClose, &ShadowCloseParams{ShadowID: id}, nil)
		}
		return
	}
	pend := make([]*Pending, 0, len(shadows))
	for n, id := range shadows {
		pend = append(pend, c.clients[n].Go(MethodShadowClose, &ShadowCloseParams{ShadowID: id}, nil))
	}
	for _, p := range pend {
		_ = p.Wait()
	}
}

// query asks one node's oracle view of prefix in its shadow.
func (c *Coordinator) query(shadows shadowSet, node string, prefix netaddr.Prefix) (*QueryOracleResult, error) {
	var out QueryOracleResult
	err := c.clients[node].Call(MethodQueryOracle,
		&QueryOracleParams{ShadowID: shadows[node], Prefix: prefix.String()}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// queryMany fans the same oracle query out to several nodes and returns
// the answers keyed by node. Under call-and-wait it degrades to the
// sequential loop; the answers are identical either way — converged
// shadows are read-only to queries — so callers may evaluate them in
// any order they need for deterministic violation ordering.
func (c *Coordinator) queryMany(shadows shadowSet, nodes []string, prefix netaddr.Prefix) (map[string]*QueryOracleResult, error) {
	out := make(map[string]*QueryOracleResult, len(nodes))
	if c.callAndWait {
		for _, n := range nodes {
			q, err := c.query(shadows, n, prefix)
			if err != nil {
				return nil, err
			}
			out[n] = q
		}
		return out, nil
	}
	outs := make([]QueryOracleResult, len(nodes))
	pend := make([]*Pending, len(nodes))
	for i, n := range nodes {
		pend[i] = c.clients[n].Go(MethodQueryOracle,
			&QueryOracleParams{ShadowID: shadows[n], Prefix: prefix.String()}, &outs[i])
	}
	for i, p := range pend {
		if err := p.Wait(); err != nil {
			for _, rest := range pend[i+1:] {
				_ = rest.Wait()
			}
			return nil, err
		}
		out[nodes[i]] = &outs[i]
	}
	return out, nil
}

// relay drives one message wave set through the agents: deliveries pop
// in (virtual-latency, FIFO) order, each delivery's emissions are
// enqueued with their link latency, and the run ends when the queue
// drains or the step bound hits. It returns delivered count and queue
// backlog — the distributed Run/Pending pair — plus the per-wave
// delivery counts (consecutive deliveries sharing one virtual timestamp
// are one wave, mirroring the in-process runWaves over netsim).
func (c *Coordinator) relay(shadows shadowSet, queue *relayQueue, maxSteps int) (steps, pending int, waves []int, err error) {
	// Initial events carry seqs 1..Len (both callers enqueue exactly
	// one); relayed emissions continue the sequence from there.
	seq := uint64(queue.Len())
	var last time.Duration
	for queue.Len() > 0 && steps < maxSteps {
		e := heap.Pop(queue).(*relayEvent)
		// Coalesce the run of deliveries sharing this event's virtual
		// timestamp and destination into one batch. The coalesced pops
		// are exactly the pops the one-at-a-time loop would have made:
		// an emission lands at its cause's time plus a link latency
		// that is never zero, so nothing pushed while serving this
		// batch could have sorted inside it.
		batch := []*relayEvent{e}
		if c.batchTo(e.to) {
			for queue.Len() > 0 && steps+len(batch) < maxSteps {
				head := (*queue)[0]
				if head.at != e.at || head.to != e.to {
					break
				}
				batch = append(batch, heap.Pop(queue).(*relayEvent))
			}
		}
		results, err := c.deliver(shadows, e.to, batch)
		if err != nil {
			return steps, queue.Len(), waves, err
		}
		for bi, ev := range batch {
			steps++
			if len(waves) == 0 || ev.at != last {
				waves = append(waves, 0)
				last = ev.at
			}
			waves[len(waves)-1]++
			for _, em := range results[bi].Emitted {
				lat, linked := c.linkLatency(ev.to, em.To)
				if !linked {
					continue // no link: dropped, like netsim's unplugged cable
				}
				seq++
				heap.Push(queue, &relayEvent{at: ev.at + lat, seq: seq, from: ev.to, to: em.To, msg: em.Msg})
			}
		}
	}
	return steps, queue.Len(), waves, nil
}

// batchTo reports whether deliveries to node may be coalesced into
// inject_witness_batch calls: the connection must have negotiated v2
// (a genuinely old agent doesn't know the method) and batching must not
// be disabled.
func (c *Coordinator) batchTo(node string) bool {
	return !c.callAndWait && c.clients[node].Version() >= ProtoV2
}

// deliver ships a batch of deliveries to one agent — a single
// inject_witness for the common singleton case, one inject_witness_batch
// otherwise — and returns per-delivery emissions in order.
func (c *Coordinator) deliver(shadows shadowSet, to string, batch []*relayEvent) ([]InjectResult, error) {
	if len(batch) == 1 {
		var out InjectResult
		err := c.clients[to].Call(MethodInjectWitness,
			&InjectParams{ShadowID: shadows[to], From: batch[0].from, Msg: batch[0].msg}, &out)
		if err != nil {
			return nil, err
		}
		return []InjectResult{out}, nil
	}
	p := InjectBatchParams{ShadowID: shadows[to], Deliveries: make([]BatchDelivery, len(batch))}
	for i, ev := range batch {
		p.Deliveries[i] = BatchDelivery{From: ev.from, Msg: ev.msg}
	}
	var out InjectBatchResult
	if err := c.clients[to].Call(MethodInjectWitnessBatch, &p, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(batch) {
		return nil, fmt.Errorf("dist: %s answered %d results for a batch of %d", to, len(out.Results), len(batch))
	}
	return out.Results, nil
}

// WitnessSpec names one concrete witness to check: the update, the node
// it was explored at, and the peer it arrives from.
type WitnessSpec struct {
	Node, Peer string
	Update     *bgp.Update
}

// CheckWitness is the distributed form of the in-process CheckWitness:
// inject one concrete witness at the explored node as if its peer sent
// it, relay the resulting message waves between the agents' shadow
// clones, and run the cross-node oracles over the converged state —
// then withdraw it and check the retraction cleans up. Witness
// minimization (core.MinimizeWitness over the core.WitnessChecker seam)
// calls it for every candidate; Round's own witnesses go through
// CheckWitnesses, which shares shadow sets where it can.
func (c *Coordinator) CheckWitness(node, peer string, w *bgp.Update) (*core.WitnessOutcome, error) {
	shadows, err := c.openShadows()
	if err != nil {
		return nil, err
	}
	defer c.closeShadows(shadows)
	out, _, err := c.checkWitnessIn(shadows, node, peer, w)
	return out, err
}

// CheckWitnesses checks a sequence of witnesses in order, each with
// exactly the semantics of CheckWitness, but amortizing shadow
// lifecycle: consecutive witnesses whose prefix footprints are pairwise
// disjoint share one shadow set instead of opening a fresh clone per
// node per witness. Disjointness is what makes sharing sound — BGP
// decisions are per-prefix, every witness's full UPDATE→oracles→WITHDRAW
// lifecycle runs contiguously, and any residue one witness leaves
// (stale routes, withdrawn paths) lives entirely under prefixes the
// later witnesses never look at. A witness that fails to converge
// leaves its set mid-churn, so the set is retired and the remaining
// witnesses get a fresh one. Under call-and-wait this degrades to a
// CheckWitness loop.
func (c *Coordinator) CheckWitnesses(specs []WitnessSpec) ([]*core.WitnessOutcome, error) {
	outs := make([]*core.WitnessOutcome, 0, len(specs))
	if c.callAndWait {
		for _, s := range specs {
			out, err := c.CheckWitness(s.Node, s.Peer, s.Update)
			if err != nil {
				return nil, err
			}
			outs = append(outs, out)
		}
		return outs, nil
	}
	for i := 0; i < len(specs); {
		// Grow the group while the next witness's prefixes stay disjoint
		// from everything already in it.
		footprint := append([]netaddr.Prefix(nil), specs[i].Update.NLRI...)
		j := i + 1
	grow:
		for j < len(specs) {
			next := specs[j].Update.NLRI
			for _, p := range next {
				for _, q := range footprint {
					if p.Overlaps(q) {
						break grow
					}
				}
			}
			footprint = append(footprint, next...)
			j++
		}
		shadows, err := c.openShadows()
		if err != nil {
			return nil, err
		}
		for k := i; k < j; k++ {
			out, dirty, err := c.checkWitnessIn(shadows, specs[k].Node, specs[k].Peer, specs[k].Update)
			if err != nil {
				c.closeShadows(shadows)
				return nil, err
			}
			outs = append(outs, out)
			if dirty && k+1 < j {
				c.closeShadows(shadows)
				shadows, err = c.openShadows()
				if err != nil {
					return nil, err
				}
			}
		}
		c.closeShadows(shadows)
		i = j
	}
	return outs, nil
}

// checkWitnessIn runs one witness lifecycle inside an already-open
// shadow set. dirty reports that the set absorbed a non-converging wave
// and must not host further witnesses.
func (c *Coordinator) checkWitnessIn(shadows shadowSet, node, peer string, w *bgp.Update) (_ *core.WitnessOutcome, dirty bool, _ error) {
	res := &core.WitnessOutcome{}
	lat, linked := c.linkLatency(peer, node)
	if !linked {
		return nil, false, fmt.Errorf("dist: no %s→%s link for witness injection", peer, node)
	}
	prefix := w.NLRI[0]

	// Pre-injection best routes, for witness attribution. The explored
	// node and the sending peer are excluded from every oracle below,
	// so their pre-state is never consulted — don't pay the RPCs.
	others := make([]string, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n == node || n == peer {
			continue
		}
		others = append(others, n)
	}
	pre, err := c.queryMany(shadows, others, prefix)
	if err != nil {
		return nil, false, err
	}

	// UPDATE wave.
	wire, err := bgp.Encode(w)
	if err != nil {
		return nil, false, err
	}
	queue := &relayQueue{}
	heap.Push(queue, &relayEvent{at: lat, seq: 1, from: peer, to: node, msg: wire})
	steps, pending, waves, err := c.relay(shadows, queue, c.opts.MaxPropagationSteps)
	res.Steps += steps
	if err != nil {
		return nil, false, err
	}
	if pending > 0 {
		res.Violations = append(res.Violations, core.FederatedViolation{
			Kind: "persistent-oscillation", Node: node, Source: node, Peer: peer, Prefix: prefix,
			Detail: core.OscillationDetail("no convergence", c.opts.MaxPropagationSteps, pending, waves),
			Waves:  len(waves), WaveTail: core.WaveTail(waves),
		})
		return res, true, nil // oracle state below would be meaningless mid-churn
	}

	boundary := c.boundary
	noExport := false
	for _, cm := range w.Attrs.Communities {
		if cm == boundary {
			noExport = true
		}
	}

	// Cross-node oracles over the converged shadows. The post queries
	// fan out in one wave; evaluation stays in sorted node order so
	// violations come out deterministically.
	post, err := c.queryMany(shadows, others, prefix)
	if err != nil {
		return nil, false, err
	}
	installed := make(map[string]string) // node → witness-attributed best FP
	for _, name := range others {
		q := post[name]
		if !q.HasBest || (pre[name].HasBest && q.BestFP == pre[name].BestFP) {
			continue // witness never took hold at this node
		}
		installed[name] = q.BestFP
		terminal, hops, delivered, err := c.traceForward(shadows, name, prefix)
		if err != nil {
			return nil, false, err
		}
		if noExport {
			res.Violations = append(res.Violations, core.FederatedViolation{
				Kind: "route-leak", Node: name, Source: node, Peer: peer, Prefix: prefix, Hops: hops,
				Detail: fmt.Sprintf("advertisement carrying the no-export community (%d:%d) escaped AS boundary %s and was installed at %s",
					boundary>>16, boundary&0xffff, node, name),
			})
		}
		if !delivered && hops >= 2 {
			res.Violations = append(res.Violations, core.FederatedViolation{
				Kind: "multi-hop-blackhole", Node: name, Source: node, Peer: peer, Prefix: prefix, Hops: hops,
				Detail: fmt.Sprintf("traffic from %s forward-traces %d hops and dead-ends at %s", name, hops, terminal),
			})
		}
	}

	// WITHDRAW wave: the retraction must clean the witness out of every
	// node it reached.
	wdWire, err := bgp.Encode(&bgp.Update{Withdrawn: []netaddr.Prefix{prefix}})
	if err != nil {
		return nil, false, err
	}
	queue = &relayQueue{}
	heap.Push(queue, &relayEvent{at: lat, seq: 1, from: peer, to: node, msg: wdWire})
	steps, pending, waves, err = c.relay(shadows, queue, c.opts.MaxPropagationSteps)
	res.Steps += steps
	if err != nil {
		return nil, false, err
	}
	if pending > 0 {
		res.Violations = append(res.Violations, core.FederatedViolation{
			Kind: "persistent-oscillation", Node: node, Source: node, Peer: peer, Prefix: prefix,
			Detail: core.OscillationDetail("WITHDRAW did not converge", c.opts.MaxPropagationSteps, pending, waves),
			Waves:  len(waves), WaveTail: core.WaveTail(waves),
		})
		return res, true, nil
	}
	reached := make([]string, 0, len(installed))
	for name := range installed {
		reached = append(reached, name)
	}
	sort.Strings(reached)
	after, err := c.queryMany(shadows, reached, prefix)
	if err != nil {
		return nil, false, err
	}
	stale := []string{}
	for _, name := range reached {
		if q := after[name]; q.HasBest && q.BestFP == installed[name] {
			stale = append(stale, name)
		}
	}
	if len(stale) > 0 {
		res.Violations = append(res.Violations, core.FederatedViolation{
			Kind: "stale-route", Node: stale[0], Source: node, Peer: peer, Prefix: prefix,
			Detail: fmt.Sprintf("witness route survived its own WITHDRAW at %v", stale),
		})
	}
	return res, false, nil
}

// traceForward walks best-route provenance for prefix hop by hop across
// the agents' shadows — the distributed multi-hop blackhole core. Each
// hop is one QueryOracle call; no node reveals more than its own
// forwarding decision.
func (c *Coordinator) traceForward(shadows shadowSet, from string, prefix netaddr.Prefix) (terminal string, hops int, delivered bool, err error) {
	cur := from
	visited := map[string]bool{}
	for {
		if visited[cur] {
			return cur, hops, false, nil // forwarding loop
		}
		visited[cur] = true
		if _, ok := c.clients[cur]; !ok {
			return cur, hops, false, nil
		}
		q, err := c.query(shadows, cur, prefix)
		if err != nil {
			return cur, hops, false, err
		}
		if !q.HasCovering {
			return cur, hops, false, nil // dead end: no covering route
		}
		if q.CoveringLocal {
			return cur, hops, true, nil // delivered to the originating AS
		}
		if q.CoveringNextPeer == "" {
			return cur, hops, false, nil
		}
		cur = q.CoveringNextPeer
		hops++
	}
}

// SkippedErr converts a TargetResult's Skipped reason into an error for
// callers that want core.FederatedTargetResult-shaped reporting.
func (t TargetResult) SkippedErr() error {
	if t.Skipped == "" {
		return nil
	}
	return errors.New(t.Skipped)
}
