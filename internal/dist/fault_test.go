package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dice/internal/core"
	"dice/internal/trace"
)

// chaosSeedFlag lets CI run the chaos parity suites one seed at a time
// (go test ./internal/dist/ -chaos-seed=2); 0 runs the built-in matrix.
var chaosSeedFlag = flag.Int64("chaos-seed", 0, "run chaos parity suites with only this seed (0 = built-in seed matrix)")

func chaosSeeds() []int64 {
	if *chaosSeedFlag != 0 {
		return []int64{*chaosSeedFlag}
	}
	return []int64{1, 2, 3}
}

// chaosPolicy is the fault-handling configuration the chaos tests run
// under: a deadline short enough that a delayed frame times out, and a
// backoff schedule fast enough to keep the suite quick.
func chaosPolicy() RetryPolicy {
	return RetryPolicy{
		RPCTimeout:    250 * time.Millisecond,
		MaxReconnects: 3,
		BackoffBase:   2 * time.Millisecond,
		BackoffCap:    20 * time.Millisecond,
		Seed:          1,
	}
}

// chaosDelay is how long FaultDelay stalls a frame — comfortably past
// chaosPolicy's RPCTimeout, so a delayed response is a guaranteed
// timeout, not a near-miss.
const chaosDelay = 700 * time.Millisecond

// leakCheck fails the test if goroutines outlive it: every reader,
// worker, timer and chaos-delayed frame must unwind once connections
// close. The check polls because teardown is asynchronous by design
// (delayed frames drain on their own schedule).
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for time.Now().Before(deadline) {
			n = runtime.NumGoroutine()
			if n <= before {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
	})
}

// chaosCoordinator wires every node's loopback agent through a
// FaultDialer armed with its seed-derived fault plan, so each node's
// connection misbehaves once, deterministically.
func chaosCoordinator(t *testing.T, topo *core.Topology, opts core.FederatedOptions, seed int64, copts ...ConnOption) *Coordinator {
	t.Helper()
	var dialers []Dialer
	for _, n := range topo.Nodes {
		ag, err := NewAgent(topo, n.Name)
		if err != nil {
			t.Fatalf("agent %s: %v", n.Name, err)
		}
		dialers = append(dialers, &FaultDialer{
			Inner: Loopback{Agent: ag},
			Plan:  RandomFaultPlan(seed, n.Name, chaosDelay),
		})
	}
	copts = append(copts, WithRetryPolicy(chaosPolicy()))
	c, err := Connect(topo, opts, dialers, copts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// totalFaults sums observed connection faults across the fleet.
func totalFaults(health map[string]NodeHealth) int {
	n := 0
	for _, h := range health {
		n += h.Faults
	}
	return n
}

// TestCallTimeout: a response delayed past the client's deadline fails
// that one call with ErrCallTimeout — and ONLY that call. The stream is
// still framed correctly, so the late answer is discarded silently and
// later calls on the same connection succeed.
func TestCallTimeout(t *testing.T) {
	leakCheck(t)
	ag, err := NewAgent(leakTopo3(), "provider")
	if err != nil {
		t.Fatal(err)
	}
	d := &FaultDialer{
		Inner: Loopback{Agent: ag},
		Plan: &FaultPlan{
			Delay:         300 * time.Millisecond,
			Specs:         []FaultSpec{{Conn: 0, Frame: 2, Kind: FaultDelay}},
			FailDialsFrom: -1,
		},
	}
	conn, err := d.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn)
	defer cl.Close()
	cl.Timeout = 100 * time.Millisecond
	if _, err := cl.Handshake(ProtoLatest); err != nil {
		t.Fatal(err)
	}

	var so ShadowOpenResult
	err = cl.Call(MethodShadowOpen, nil, &so)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("delayed call returned %v, want ErrCallTimeout", err)
	}
	if errors.Is(err, ErrClientBroken) {
		t.Fatalf("timeout poisoned the connection: %v", err)
	}

	// Let the delayed frame drain, then reuse the connection: the late
	// answer must have been discarded, not matched to the next call.
	time.Sleep(400 * time.Millisecond)
	var so2 ShadowOpenResult
	if err := cl.Call(MethodShadowOpen, nil, &so2); err != nil {
		t.Fatalf("call after a timeout failed: %v", err)
	}
	// The timed-out open DID execute on the agent (the timeout fired on
	// the answer, not the work) — the second open gets the next ID.
	if so2.ShadowID != 2 {
		t.Errorf("second shadow_open returned ID %d, want 2 (first open executed, answer discarded)", so2.ShadowID)
	}
}

// blackholeConn accepts writes and never answers: every call times out
// and its ID lands in the abandoned set with no late response to clear
// it. Read blocks until Close.
type blackholeConn struct {
	closed    chan struct{}
	closeOnce sync.Once
}

func newBlackholeConn() *blackholeConn {
	return &blackholeConn{closed: make(chan struct{})}
}

func (b *blackholeConn) Write(p []byte) (int, error) { return len(p), nil }

func (b *blackholeConn) Read(p []byte) (int, error) {
	<-b.closed
	return 0, io.EOF
}

func (b *blackholeConn) Close() error {
	b.closeOnce.Do(func() { close(b.closed) })
	return nil
}

// TestAbandonedSetBounded: abandoned IDs whose answers never arrive
// (the request was lost, not delayed) must not accumulate for the
// connection's lifetime — the set is capped, evicting the oldest ID.
func TestAbandonedSetBounded(t *testing.T) {
	leakCheck(t)
	cl := NewClient(newBlackholeConn())
	cl.Timeout = 50 * time.Millisecond
	const calls = maxAbandoned + 200
	pend := make([]*Pending, calls)
	for i := range pend {
		pend[i] = cl.Go(MethodShadowOpen, nil, nil)
	}
	for i, p := range pend {
		if err := p.Wait(); !errors.Is(err, ErrCallTimeout) {
			t.Fatalf("call %d returned %v, want ErrCallTimeout", i, err)
		}
	}
	cl.mu.Lock()
	n := len(cl.abandoned)
	cl.mu.Unlock()
	if n != maxAbandoned {
		t.Errorf("abandoned set holds %d IDs after %d unanswered timeouts, want the cap %d", n, calls, maxAbandoned)
	}
	cl.Close()
}

// TestBrokenError: a desynchronized stream (a response ID matching no
// pending request) poisons the connection with a BrokenError that
// satisfies errors.Is(err, ErrClientBroken), unwraps to the cause, and
// names the offending frame ID.
func TestBrokenError(t *testing.T) {
	leakCheck(t)
	cliConn, srvConn := net.Pipe()
	defer srvConn.Close()
	go func() {
		if _, err := readPayload(srvConn); err != nil {
			return
		}
		writeFrame(srvConn, response{ID: 99}) //nolint:errcheck // test server
	}()
	cl := NewClient(cliConn)
	defer cl.Close()

	err := cl.Call(MethodShadowOpen, nil, nil)
	if !errors.Is(err, ErrClientBroken) {
		t.Fatalf("rogue response id returned %v, want ErrClientBroken", err)
	}
	var be *BrokenError
	if !errors.As(err, &be) {
		t.Fatalf("error %T does not unwrap to *BrokenError", err)
	}
	if be.FrameID != 99 {
		t.Errorf("BrokenError.FrameID = %d, want 99", be.FrameID)
	}
	if be.Cause == nil {
		t.Error("BrokenError.Cause is nil")
	}
	if !strings.Contains(err.Error(), "frame id 99") {
		t.Errorf("error %q does not name the offending frame", err)
	}

	// The poison is sticky: later calls fail immediately with the same
	// broken error.
	if err2 := cl.Call(MethodShadowOpen, nil, nil); !errors.Is(err2, ErrClientBroken) {
		t.Errorf("call on a poisoned connection returned %v", err2)
	}
}

// TestBackoffDeterministic: the backoff schedule is capped exponential
// with jitter in [d/2, d], and identical seeds draw identical schedules.
func TestBackoffDeterministic(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		rng := newTestRand(seed)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = backoffDelay(i+1, 25*time.Millisecond, 200*time.Millisecond, rng)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: same seed drew %v then %v", i+1, a[i], b[i])
		}
	}
	for i, d := range a {
		full := 25 * time.Millisecond << i
		if full > 200*time.Millisecond {
			full = 200 * time.Millisecond
		}
		if d < full/2 || d > full {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", i+1, d, full/2, full)
		}
	}
}

// TestReconnectMidRound: every fault kind fired mid-round must leave the
// round's outcome identical to a fault-free run, with the recovery
// visible in the health record (reconnects for stream faults; delay
// faults retry on a fresh connection too, since the coordinator treats
// a timeout as a connection-level fault).
func TestReconnectMidRound(t *testing.T) {
	leakCheck(t)
	clean := loopbackCoordinator(t, leakTopo3(), fedOpts())
	cleanRes, err := clean.Round()
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(cleanRes.Snapshot(), "\n")

	for _, kind := range []FaultKind{FaultDrop, FaultGarble, FaultKill, FaultDelay} {
		t.Run(kind.String(), func(t *testing.T) {
			topo := leakTopo3()
			var dialers []Dialer
			for _, n := range topo.Nodes {
				ag, err := NewAgent(topo, n.Name)
				if err != nil {
					t.Fatal(err)
				}
				var d Dialer = Loopback{Agent: ag}
				if n.Name == "provider" {
					d = &FaultDialer{Inner: d, Plan: &FaultPlan{
						Delay:         chaosDelay,
						Specs:         []FaultSpec{{Conn: 0, Frame: 3, Kind: kind}},
						FailDialsFrom: -1,
					}}
				}
				dialers = append(dialers, d)
			}
			coord, err := Connect(topo, fedOpts(), dialers, WithRetryPolicy(chaosPolicy()))
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			res, err := coord.Round()
			if err != nil {
				t.Fatal(err)
			}
			if got := strings.Join(res.Snapshot(), "\n"); got != want {
				t.Errorf("snapshot diverged under %v fault:\n--- clean ---\n%s\n--- faulty ---\n%s", kind, want, got)
			}
			h := res.Health["provider"]
			if h.Faults == 0 {
				t.Errorf("provider health records no faults: %+v", h)
			}
			if h.State != HealthHealthy {
				t.Errorf("provider ended %q, want healthy after recovery: %+v", h.State, h)
			}
		})
	}
}

// diamondTopo is a 5-AS diamond: apex leaks src's NO_EXPORT-tagged
// routes to left AND right at the same virtual time, whose re-emissions
// arrive at sink simultaneously — the smallest topology where the relay
// coalesces a genuine inject_witness_batch every round.
func diamondTopo() *core.Topology {
	return &core.Topology{
		Name: "dist-diamond-5as",
		Nodes: []core.TopoNode{
			{Name: "src", Config: []string{
				"router id 10.1.0.1;",
				"local as 65001;",
				"network 10.7.0.0/16;",
				"peer apex { remote 10.1.0.2 as 65002; }",
			}},
			{Name: "apex", Config: []string{
				"router id 10.1.0.2;",
				"local as 65002;",
				"filter src_in {",
				"    if net ~ 10.7.0.0/16 then accept;",
				"    if net ~ 10.0.0.0/8{24,32} then accept;",
				"    reject;",
				"}",
				"peer src { remote 10.1.0.1 as 65001; import filter src_in; }",
				"peer left { remote 10.1.0.3 as 65003; }",
				"peer right { remote 10.1.0.4 as 65004; }",
			}},
			{Name: "left", Config: []string{
				"router id 10.1.0.3;",
				"local as 65003;",
				"peer apex { remote 10.1.0.2 as 65002; }",
				"peer sink { remote 10.1.0.5 as 65005; }",
			}},
			{Name: "right", Config: []string{
				"router id 10.1.0.4;",
				"local as 65004;",
				"peer apex { remote 10.1.0.2 as 65002; }",
				"peer sink { remote 10.1.0.5 as 65005; }",
			}},
			{Name: "sink", Config: []string{
				"router id 10.1.0.5;",
				"local as 65005;",
				"peer left { remote 10.1.0.3 as 65003; }",
				"peer right { remote 10.1.0.4 as 65004; }",
			}},
		},
		Edges: []core.TopoEdge{
			{A: "src", B: "apex"},
			{A: "apex", B: "left"},
			{A: "apex", B: "right"},
			{A: "left", B: "sink"},
			{A: "right", B: "sink"},
		},
		Explore: []core.ExploreTarget{
			{Node: "apex", Peer: "src", Scenario: core.ScenarioRouteLeak},
		},
	}
}

// methodKiller closes the connection immediately after the first
// request for a given method is written — the agent may or may not have
// processed it, but its answer is certainly lost. This is the sharpest
// at-least-once edge: the retried call must be answered from the
// agent's idempotency memo, not re-applied.
type methodKiller struct {
	inner  io.ReadWriteCloser
	method string

	mu    sync.Mutex
	fired bool
}

func (k *methodKiller) Write(p []byte) (int, error) {
	n, err := k.inner.Write(p)
	if err != nil {
		return n, err
	}
	k.mu.Lock()
	fire := false
	if !k.fired && len(p) > 4 && requestMethod(p[4:]) == k.method {
		k.fired = true
		fire = true
	}
	k.mu.Unlock()
	if fire {
		k.inner.Close()
	}
	return n, nil
}

func (k *methodKiller) Read(p []byte) (int, error) { return k.inner.Read(p) }
func (k *methodKiller) Close() error               { return k.inner.Close() }

// requestMethod sniffs a request payload's method in either codec.
func requestMethod(payload []byte) string {
	if len(payload) > 0 && payload[0] == frameRequestV2 {
		_, m, _, err := parseRequestV2(payload)
		if err != nil {
			return ""
		}
		return m
	}
	var req request
	if json.Unmarshal(payload, &req) != nil {
		return ""
	}
	return req.Method
}

// killDialer arms the first produced connection with a methodKiller;
// reconnects get clean connections.
type killDialer struct {
	inner  Dialer
	method string

	mu     sync.Mutex
	killer *methodKiller
}

func (d *killDialer) Dial() (io.ReadWriteCloser, error) {
	conn, err := d.inner.Dial()
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.killer == nil {
		d.killer = &methodKiller{inner: conn, method: d.method}
		return d.killer, nil
	}
	return conn, nil
}

func (d *killDialer) fired() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.killer != nil && d.killer.fired
}

// TestAgentDiesMidCall: the agent's connection dies the instant a
// specific request has been written — mid-explore and mid-delivery, on
// both codecs, including mid-inject_witness_batch on v2 (v1 never
// batches, so its delivery case is the single inject). The round must
// reconnect, retry through the idempotency memos, and land on the
// fault-free snapshot.
func TestAgentDiesMidCall(t *testing.T) {
	leakCheck(t)
	v1 := []ConnOption{WithMaxVersion(ProtoV1), WithCallAndWait()}
	clean := loopbackCoordinator(t, diamondTopo(), fedOpts())
	cleanRes, err := clean.Round()
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(cleanRes.Snapshot(), "\n")
	if cleanRes.WitnessesInjected == 0 {
		t.Fatal("diamond round vacuous: no witnesses propagated")
	}

	cases := []struct {
		name   string
		node   string
		method string
		copts  []ConnOption
	}{
		{"v2-mid-explore", "apex", MethodExplore, nil},
		{"v2-mid-inject-batch", "sink", MethodInjectWitnessBatch, nil},
		{"v1-mid-explore", "apex", MethodExplore, v1},
		{"v1-mid-inject", "sink", MethodInjectWitness, v1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo := diamondTopo()
			var dialers []Dialer
			var kd *killDialer
			for _, n := range topo.Nodes {
				ag, err := NewAgent(topo, n.Name)
				if err != nil {
					t.Fatal(err)
				}
				var d Dialer = Loopback{Agent: ag}
				if n.Name == tc.node {
					kd = &killDialer{inner: d, method: tc.method}
					d = kd
				}
				dialers = append(dialers, d)
			}
			copts := append([]ConnOption{WithRetryPolicy(chaosPolicy())}, tc.copts...)
			coord, err := Connect(topo, fedOpts(), dialers, copts...)
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			res, err := coord.Round()
			if err != nil {
				t.Fatal(err)
			}
			if !kd.fired() {
				t.Fatalf("the round never issued %s to %s — kill case vacuous", tc.method, tc.node)
			}
			if got := strings.Join(res.Snapshot(), "\n"); got != want {
				t.Errorf("snapshot diverged after mid-%s kill:\n--- clean ---\n%s\n--- faulty ---\n%s", tc.method, want, got)
			}
			if h := res.Health[tc.node]; h.Reconnects == 0 {
				t.Errorf("%s health records no reconnect: %+v", tc.node, h)
			}
		})
	}
}

// TestDegradedFallbackParity: when an agent's connection dies and every
// redial fails, the coordinator must degrade that node to an in-process
// replacement and still produce the identical snapshot — findings never
// depend on where the node ran. The fault is fired at several frame
// positions so the replacement splices in during the explore phase and
// during witness propagation (where shadow loss forces a witness
// replay).
func TestDegradedFallbackParity(t *testing.T) {
	leakCheck(t)
	clean := loopbackCoordinator(t, leakTopo3(), fedOpts())
	cleanRes, err := clean.Round()
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(cleanRes.Snapshot(), "\n")

	for _, frame := range []int{2, 3, 4, 5, 6} {
		t.Run(fmt.Sprintf("drop-frame-%d", frame), func(t *testing.T) {
			topo := leakTopo3()
			var dialers []Dialer
			for _, n := range topo.Nodes {
				ag, err := NewAgent(topo, n.Name)
				if err != nil {
					t.Fatal(err)
				}
				var d Dialer = Loopback{Agent: ag}
				if n.Name == "provider" {
					d = &FaultDialer{Inner: d, Plan: &FaultPlan{
						Specs:         []FaultSpec{{Conn: 0, Frame: frame, Kind: FaultDrop}},
						FailDialsFrom: 1, // the agent stays dead: every redial refused
					}}
				}
				dialers = append(dialers, d)
			}
			coord, err := Connect(topo, fedOpts(), dialers, WithRetryPolicy(chaosPolicy()))
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			res, err := coord.Round()
			if err != nil {
				t.Fatal(err)
			}
			if got := strings.Join(res.Snapshot(), "\n"); got != want {
				t.Errorf("degraded snapshot diverged (drop at frame %d):\n--- clean ---\n%s\n--- degraded ---\n%s", frame, want, got)
			}
			h := res.Health["provider"]
			if h.State != HealthDegraded {
				t.Errorf("provider ended %q, want degraded: %+v", h.State, h)
			}
			for _, n := range []string{"customer", "upstream"} {
				if h := res.Health[n]; h.State != HealthHealthy {
					t.Errorf("%s ended %q, want healthy: %+v", n, h.State, h)
				}
			}
		})
	}
}

// TestNoFallbackFailsClosed: with the degraded fallback disabled, an
// unreachable agent fails the round with a sticky per-node error
// instead of silently simulating.
func TestNoFallbackFailsClosed(t *testing.T) {
	leakCheck(t)
	topo := leakTopo3()
	policy := chaosPolicy()
	policy.NoFallback = true
	var dialers []Dialer
	for _, n := range topo.Nodes {
		ag, err := NewAgent(topo, n.Name)
		if err != nil {
			t.Fatal(err)
		}
		var d Dialer = Loopback{Agent: ag}
		if n.Name == "provider" {
			d = &FaultDialer{Inner: d, Plan: &FaultPlan{
				Specs:         []FaultSpec{{Conn: 0, Frame: 2, Kind: FaultDrop}},
				FailDialsFrom: 1,
			}}
		}
		dialers = append(dialers, d)
	}
	coord, err := Connect(topo, fedOpts(), dialers, WithRetryPolicy(policy))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.Round(); err == nil {
		t.Fatal("round succeeded with an unreachable agent and NoFallback set")
	} else if !strings.Contains(err.Error(), "failed after") {
		t.Errorf("round error %q does not name the exhausted reconnect budget", err)
	}
	if h := coord.Health()["provider"]; h.State != HealthFailed {
		t.Errorf("provider health %+v, want failed", h)
	}
}

// TestGracefulShutdown: Shutdown drains — a request already read is
// answered before its connection closes, and new connections are
// refused while the drain runs.
func TestGracefulShutdown(t *testing.T) {
	leakCheck(t)
	ag, err := NewAgent(leakTopo3(), "provider")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Loopback{Agent: ag}.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn)
	defer cl.Close()
	if _, err := cl.Handshake(ProtoLatest); err != nil {
		t.Fatal(err)
	}

	var ex ExploreResult
	p := cl.Go(MethodExplore, &ExploreParams{
		Peer: "customer", Scenario: core.ScenarioRouteLeak, Explicit: true, MaxRuns: 500,
	}, &ex)
	// Give the agent's reader time to pull the request off the wire; the
	// drain below must answer it, however far along the handler is.
	time.Sleep(100 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		ag.Shutdown(5 * time.Second)
		close(done)
	}()
	if err := p.Wait(); err != nil {
		t.Fatalf("in-flight explore failed during drain: %v", err)
	}
	if ex.Runs == 0 {
		t.Error("drained explore answered with zero runs")
	}
	// The answered connection is the last straggler: closing it lets the
	// drain finish inside the grace period instead of timing out.
	cl.Close()
	<-done

	// A drained agent refuses fresh connections.
	conn2, err := Loopback{Agent: ag}.Dial()
	if err == nil {
		cl2 := NewClient(conn2)
		defer cl2.Close()
		if _, err := cl2.Handshake(ProtoLatest); err == nil {
			t.Error("handshake succeeded against a shut-down agent")
		}
	}
}

// TestChaosParityFederated is the chaos acceptance on the federated
// example: for every seed, every node's connection takes one scheduled
// fault (drop / delay / garble / mid-frame kill), and the round —
// including witness minimization — must converge to the identical
// snapshot the in-process backend produces.
func TestChaosParityFederated(t *testing.T) {
	leakCheck(t)
	topo, err := core.LoadTopology("../../examples/federated/topo.json")
	if err != nil {
		t.Fatal(err)
	}
	fe, err := core.NewFederatedExperiment(topo, minimizeOpts())
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(inproc.Snapshot(), "\n")

	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			coord := chaosCoordinator(t, topo, minimizeOpts(), seed)
			res, err := coord.Round()
			if err != nil {
				t.Fatal(err)
			}
			if got := strings.Join(res.Snapshot(), "\n"); got != want {
				t.Errorf("seed %d: chaos snapshot diverged:\n--- in-process ---\n%s\n--- chaos ---\n%s", seed, want, got)
			}
			if totalFaults(res.Health) == 0 {
				t.Errorf("seed %d: chaos round observed no faults — plan never fired", seed)
			}
		})
	}
}

// TestChaosParityReplay: the replay → round → minimize pipeline (the
// regression harness flow) under the same per-seed chaos schedule must
// match the in-process backend's snapshot for the committed example
// trace.
func TestChaosParityReplay(t *testing.T) {
	leakCheck(t)
	raw, err := os.ReadFile("../../examples/replay/trace.mrtl")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := core.LoadTopology("../../examples/federated/topo.json")
	if err != nil {
		t.Fatal(err)
	}
	want := replayReference(t, topo, raw)

	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			coord := chaosCoordinator(t, topo, minimizeOpts(), seed)
			if _, err := coord.Replay("transitA", "stub", raw); err != nil {
				t.Fatal(err)
			}
			res, err := coord.Round()
			if err != nil {
				t.Fatal(err)
			}
			if got := strings.Join(res.Snapshot(), "\n"); got != want {
				t.Errorf("seed %d: post-replay chaos snapshot diverged:\n--- in-process ---\n%s\n--- chaos ---\n%s", seed, want, got)
			}
		})
	}
}

// TestChaosParityV1: one chaos pass over the v1 JSON codec with
// pipelining and batching disabled — the fault ladder must hold on the
// compatibility path too.
func TestChaosParityV1(t *testing.T) {
	leakCheck(t)
	topo, err := core.LoadTopology("../../examples/federated/topo.json")
	if err != nil {
		t.Fatal(err)
	}
	fe, err := core.NewFederatedExperiment(topo, fedOpts())
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(inproc.Snapshot(), "\n")

	seed := chaosSeeds()[0]
	coord := chaosCoordinator(t, topo, fedOpts(), seed, WithMaxVersion(ProtoV1), WithCallAndWait())
	res, err := coord.Round()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.Snapshot(), "\n"); got != want {
		t.Errorf("v1 chaos snapshot diverged:\n--- in-process ---\n%s\n--- chaos ---\n%s", want, got)
	}
}

// replayReference computes the in-process replay → round → minimize
// snapshot for the example trace.
func replayReference(t *testing.T, topo *core.Topology, raw []byte) string {
	t.Helper()
	records, err := traceRecords(raw)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := core.NewFederatedExperiment(topo, minimizeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fe.Replay("transitA", "stub", records); err != nil {
		t.Fatal(err)
	}
	inproc, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	return strings.Join(inproc.Snapshot(), "\n")
}

func traceRecords(raw []byte) ([]trace.Record, error) {
	return trace.Read(bytes.NewReader(raw))
}

func newTestRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
