package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/config"
	"dice/internal/core"
	"dice/internal/netaddr"
	"dice/internal/telemetry"
)

// Replica is a stateless exploration worker: it serves the wire protocol
// like an Agent but administers no node and holds no fabric. Every
// explore_checkpoint request is self-contained — node config, serialized
// checkpoint, scenario seed, engine knobs — so one replica serves
// shards from any node of any topology, and a pool of them scales a
// round's exploration horizontally without any replica ever seeing
// state it wasn't shipped (the §2.4 "process these messages in
// isolation over their checkpointed states" worker, as a server).
type Replica struct {
	rpcServer

	// MaxProtoVersion caps the negotiated wire protocol version
	// (0 = ProtoLatest), exactly as on the Agent.
	MaxProtoVersion int

	// reqMu serializes request handling: each replica explores one shard
	// at a time (a pool's parallelism is across replicas, like the
	// coordinator's is across agents).
	reqMu sync.Mutex

	// Shard-keyed idempotency memo, session-scoped like the Agent's
	// explore memo: the coordinator keys replica explores by (Shard,
	// Round), retries after a replica reconnect answer from the memo, and
	// a new session nonce in the hello drops it — replica memos must not
	// outlive the coordinator-local sequences that key them, or a second
	// dice run would read the first run's stale shard results.
	session uint64
	memo    map[string]replicaMemoEntry

	// pages is the session-scoped content-addressed page cache behind
	// ReplicaExploreParams page mode: checkpoint state arrives as ordered
	// content hashes plus only the pages the sender has not shipped this
	// session, and the replica reassembles the full state from here.
	// Hashes the cache cannot resolve come back as MissingPages (a
	// result, not an error) so the sender re-ships them. Scoped like the
	// memo: a new coordinator session drops it.
	pages map[string][]byte

	// Telemetry (nil unless EnableTelemetry ran).
	rm        *replicaMetrics
	concolicM *concolic.Metrics
}

// maxCachedPages bounds the page cache (32 MiB at the coordinator's
// 4 KiB page size). When an assembly pushes the cache past the bound,
// everything but the pages of the state just assembled is dropped — the
// sender's next shard re-ships what it needs via the miss protocol.
const maxCachedPages = 8192

// pageHash is the content address of one page: hex SHA-256, matching
// what page-mode senders put in ReplicaExploreParams.PageHash.
func pageHash(page []byte) string {
	sum := sha256.Sum256(page)
	return hex.EncodeToString(sum[:])
}

// replicaMemoEntry is one memoized shard answer, valid for one round.
type replicaMemoEntry struct {
	round uint64
	out   *ReplicaExploreResult
}

// NewReplica builds an idle exploration replica.
func NewReplica() *Replica {
	r := &Replica{
		memo:  make(map[string]replicaMemoEntry),
		pages: make(map[string][]byte),
	}
	r.rpcServer = rpcServer{handler: r, name: "replica"}
	return r
}

// EnableTelemetry registers this replica's metric families on reg and
// starts recording: RPC server counters, explore/memo counts, and the
// concolic engine's per-round metrics. Call it before serving; a nil
// registry leaves telemetry off.
func (r *Replica) EnableTelemetry(reg *telemetry.Registry) {
	r.rpcServer.tm = newServerMetrics(reg)
	r.rm = newReplicaMetrics(reg)
	r.concolicM = concolic.NewMetrics(reg)
}

// handle dispatches one v1 request. Replicas answer only hello and
// explore_checkpoint — they have no node to checkpoint, shadow or query.
func (r *Replica) handle(method string, params json.RawMessage) (any, error) {
	r.reqMu.Lock()
	defer r.reqMu.Unlock()
	switch method {
	case MethodHello:
		var p HelloParams
		if len(params) > 0 {
			if err := json.Unmarshal(params, &p); err != nil {
				return nil, err
			}
		}
		return r.hello(p), nil
	case MethodExploreCheckpoint:
		var p ReplicaExploreParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return r.explore(p)
	}
	return nil, fmt.Errorf("dist: replica does not serve %q", method)
}

// handleV2 dispatches one binary-codec request.
func (r *Replica) handleV2(method string, body []byte) (any, error) {
	r.reqMu.Lock()
	defer r.reqMu.Unlock()
	switch method {
	case MethodHello:
		var p HelloParams
		if err := decodeBodyV2(body, &p); err != nil {
			return nil, err
		}
		return r.hello(p), nil
	case MethodExploreCheckpoint:
		var p ReplicaExploreParams
		if err := decodeBodyV2(body, &p); err != nil {
			return nil, err
		}
		return r.explore(p)
	}
	return nil, fmt.Errorf("dist: replica does not serve %q", method)
}

// hello negotiates the protocol version and scopes the memo to the
// coordinator session, mirroring the Agent's hello. The Node field
// carries the replica role marker instead of a topology node — a
// coordinator cross-checking node identity fails fast if it dials a
// replica where it expected an agent.
func (r *Replica) hello(p HelloParams) *HelloResult {
	if p.Session != 0 && p.Session != r.session {
		r.session = p.Session
		clear(r.memo)
		clear(r.pages)
	}
	replicaMax := r.MaxProtoVersion
	if replicaMax <= 0 || replicaMax > ProtoLatest {
		replicaMax = ProtoLatest
	}
	clientMax := p.MaxVersion
	if clientMax <= 0 {
		clientMax = ProtoV1
	}
	return &HelloResult{
		Node:     "(replica)",
		Topology: "(replica)",
		Version:  min(clientMax, replicaMax),
	}
}

// explore restores the shipped checkpoint and runs the node agent's
// exact per-target pipeline over it (core.PrepareRestored → Explore →
// Analyze → WitnessRefs), so a shard explored on a replica reproduces
// the agent's answer finding for finding. The result also carries the
// post-round frontier memory for the coordinator's warm cache.
func (r *Replica) explore(p ReplicaExploreParams) (*ReplicaExploreResult, error) {
	if p.Round != 0 && p.Shard != "" {
		if e, ok := r.memo[p.Shard]; ok && e.round == p.Round {
			r.rm.noteMemoHit()
			return e.out, nil
		}
	}
	if len(p.PageHash) > 0 {
		// Page mode: reassemble the checkpoint from the session cache
		// plus whatever pages this request shipped. Unresolvable hashes
		// come back as MissingPages — no exploration, no memo — and the
		// sender retries with them included.
		state, missing := r.assembleState(&p)
		if len(missing) > 0 {
			return &ReplicaExploreResult{MissingPages: missing}, nil
		}
		p.State = state
	}
	r.rm.noteExplore()
	strat, err := parseStrategy(p.Strategy)
	if err != nil {
		return nil, err
	}
	cfg, err := config.Parse(strings.Join(p.Config, "\n"))
	if err != nil {
		return nil, fmt.Errorf("dist: replica: %s config: %w", p.Node, err)
	}
	msg, err := bgp.Decode(p.Seed)
	if err != nil {
		return nil, fmt.Errorf("dist: replica: %s/%s seed: %w", p.Node, p.Peer, err)
	}
	seed, ok := msg.(*bgp.Update)
	if !ok {
		return nil, fmt.Errorf("dist: replica: %s/%s seed is %T, want UPDATE", p.Node, p.Peer, msg)
	}
	engOpts := concolic.Options{
		Strategy:    strat,
		MaxRuns:     p.MaxRuns,
		MaxDepth:    p.MaxDepth,
		Workers:     p.Workers,
		SolverNodes: p.SolverNodes,
		TimeBudget:  time.Duration(p.TimeBudgetNS),
		Metrics:     r.concolicM,
	}
	if len(p.WarmState) > 0 {
		st, err := concolic.DecodeExploreState(p.WarmState)
		if err != nil {
			return nil, fmt.Errorf("dist: replica: %s/%s warm state: %w", p.Node, p.Peer, err)
		}
		engOpts.State = st
	} else {
		// Cold shards still explore under fresh state so the frontier
		// memory exists to ship back.
		engOpts.State = concolic.NewExploreState()
	}
	tg := core.ResolvedTarget{Node: p.Node, Peer: p.Peer, Scenario: p.Scenario, Explicit: p.Explicit}
	tp, restored, err := core.PrepareRestored(p.Node, cfg, p.State, tg, seed, engOpts)
	if err != nil {
		return nil, fmt.Errorf("dist: replica: %s/%s: %w", p.Node, p.Peer, err)
	}
	rep := tp.Engine.Explore()
	res := tp.Analyze(restored, engOpts, p.Boundary, rep)

	out := &ReplicaExploreResult{
		ExploreResult: ExploreResult{
			Scenario:          res.Scenario,
			Runs:              rep.Runs,
			NewPaths:          len(rep.Paths),
			BranchesSeen:      rep.BranchesSeen,
			SolverCalls:       rep.SolverCalls,
			SolverSat:         rep.SolverSat,
			SolverUnsat:       rep.SolverUnsat,
			CacheHits:         rep.CacheHits,
			SkippedPaths:      rep.SkippedPaths,
			SkippedNegations:  rep.SkippedNegations,
			ElapsedNS:         rep.Elapsed.Nanoseconds(),
			CapturedMessages:  res.CapturedMessages,
			WitnessesRejected: res.WitnessesRejected,
		},
		WarmState: engOpts.State.EncodeWire(),
	}
	for _, f := range res.Findings {
		wf := WireFinding{
			Kind:      f.Kind,
			Peer:      f.Peer,
			Prefix:    f.Prefix.String(),
			LeakRange: f.LeakRange,
			OriginAS:  f.OriginAS,
			VictimAS:  f.VictimAS,
			Seq:       f.Seq,
			Validated: f.Validated,
			SpreadTo:  f.SpreadTo,
			Input:     f.Input,
			Rendered:  f.String(),
		}
		if f.VictimPrefix != (netaddr.Prefix{}) {
			wf.VictimPrefix = f.VictimPrefix.String()
		}
		out.Findings = append(out.Findings, wf)
	}
	for _, wr := range tp.WitnessRefs(res) {
		wire, err := bgp.Encode(wr.Update)
		if err != nil {
			return nil, fmt.Errorf("dist: replica: encode witness for %s: %w", wr.Update.NLRI[0], err)
		}
		out.Witnesses = append(out.Witnesses, WireWitness{Finding: wr.Finding, Msg: wire})
	}
	if p.Round != 0 && p.Shard != "" {
		r.memo[p.Shard] = replicaMemoEntry{round: p.Round, out: out}
	}
	return out, nil
}

// assembleState ingests a page-mode request's shipped pages into the
// session cache and reassembles the checkpoint state named by the
// ordered hash list. The shipped pages carry no index mapping — the
// content hash IS the identity — so ingestion is just "hash and store".
// Hashes still unresolved after ingestion are returned (deduplicated, in
// hash-list order) for the sender's retry.
func (r *Replica) assembleState(p *ReplicaExploreParams) (state []byte, missing []string) {
	for _, pg := range p.PageData {
		r.pages[pageHash(pg)] = pg
	}
	seen := make(map[string]bool)
	size := 0
	for _, h := range p.PageHash {
		pg, ok := r.pages[h]
		if !ok {
			if !seen[h] {
				seen[h] = true
				missing = append(missing, h)
			}
			continue
		}
		size += len(pg)
	}
	if len(missing) > 0 {
		return nil, missing
	}
	state = make([]byte, 0, size)
	for _, h := range p.PageHash {
		state = append(state, r.pages[h]...)
	}
	if len(r.pages) > maxCachedPages {
		// Keep only the live set just assembled; the miss protocol
		// restores anything else on demand.
		live := make(map[string][]byte, len(p.PageHash))
		for _, h := range p.PageHash {
			live[h] = r.pages[h]
		}
		r.pages = live
	}
	return state, nil
}
