package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"dice/internal/netaddr"
)

// Wire protocol v2: the binary payload codec. The outer framing (4-byte
// big-endian length prefix, wire.go) is shared with v1; only the payload
// encoding changes. The style follows internal/bgp's message codec —
// fixed-width fields where the domain fixes the width (AS numbers,
// addresses), uvarints for counts and IDs, length-prefixed byte strings
// — so a dense ExploreResult costs bytes proportional to its content,
// not to JSON field names and base64 inflation.
//
// Payload layouts:
//
//	request:  0xD2 | uvarint id | u8 method code | method params
//	response: 0xD3 | uvarint id | u8 status      | error string (status=1)
//	                                             | method result (status=0)
//
// The leading kind octet can never collide with a v1 frame (JSON
// payloads start with '{'), so a codec mismatch after a broken
// negotiation fails loudly on the first frame instead of desynchronizing
// the stream. Every decoder checks remaining length before consuming and
// rejects trailing bytes — malformed input errors, it never panics, and
// truncation at any byte offset is an error (FuzzDecodeFrame pins this).

// v2 payload kind octets.
const (
	frameRequestV2  = 0xd2
	frameResponseV2 = 0xd3
)

// v2 method codes, one per wire.go method name.
const (
	codeHello = iota + 1
	codeCheckpoint
	codeExplore
	codeShadowOpen
	codeInjectWitness
	codeShadowClose
	codeQueryOracle
	codeReplay
	codeInjectWitnessBatch
	codeSeed
	codeExploreCheckpoint
)

// methodCode maps a method name to its v2 code.
func methodCode(method string) (uint8, error) {
	switch method {
	case MethodHello:
		return codeHello, nil
	case MethodCheckpoint:
		return codeCheckpoint, nil
	case MethodExplore:
		return codeExplore, nil
	case MethodShadowOpen:
		return codeShadowOpen, nil
	case MethodInjectWitness:
		return codeInjectWitness, nil
	case MethodShadowClose:
		return codeShadowClose, nil
	case MethodQueryOracle:
		return codeQueryOracle, nil
	case MethodReplay:
		return codeReplay, nil
	case MethodInjectWitnessBatch:
		return codeInjectWitnessBatch, nil
	case MethodSeed:
		return codeSeed, nil
	case MethodExploreCheckpoint:
		return codeExploreCheckpoint, nil
	}
	return 0, fmt.Errorf("dist: method %q has no v2 code", method)
}

// methodName maps a v2 code back to its method name.
func methodName(code uint8) (string, error) {
	switch code {
	case codeHello:
		return MethodHello, nil
	case codeCheckpoint:
		return MethodCheckpoint, nil
	case codeExplore:
		return MethodExplore, nil
	case codeShadowOpen:
		return MethodShadowOpen, nil
	case codeInjectWitness:
		return MethodInjectWitness, nil
	case codeShadowClose:
		return MethodShadowClose, nil
	case codeQueryOracle:
		return MethodQueryOracle, nil
	case codeReplay:
		return MethodReplay, nil
	case codeInjectWitnessBatch:
		return MethodInjectWitnessBatch, nil
	case codeSeed:
		return MethodSeed, nil
	case codeExploreCheckpoint:
		return MethodExploreCheckpoint, nil
	}
	return "", fmt.Errorf("dist: unknown v2 method code %d", code)
}

// errV2Frame is the malformed-v2-payload error class; every decode
// failure wraps it so transports can distinguish protocol corruption
// from application errors.
var errV2Frame = errors.New("dist: malformed v2 frame")

func v2err(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errV2Frame, fmt.Sprintf(format, args...))
}

// v2Message is any payload the binary codec carries: params and results
// append themselves to a buffer and decode from a v2dec. decodeV2 must
// leave the struct fully populated or record an error on the decoder;
// the codec layer enforces that the message consumed its entire body.
type v2Message interface {
	appendV2(dst []byte) []byte
	decodeV2(d *v2dec)
}

// v2TailMessage marks a message that gained append-only tail fields
// after the v2 codec shipped. This is the binary codec's one evolution
// rule: new fields may ONLY be appended to the end of an existing body,
// guarded by a protocol version bump. appendV2 renders the full current
// (v3) layout; appendV2Base renders the original v2 layout without the
// tail, for connections negotiated down to v2 — a strict v2 decoder
// would reject the tail as trailing bytes. Decoders read the tail only
// when bytes remain past the base fields, so one decoder accepts both
// layouts (a missing tail reads as zero values, which every tail field
// defines as "feature off").
type v2TailMessage interface {
	v2Message
	appendV2Base(dst []byte) []byte
}

// v2BaseOnly adapts a v2TailMessage to the plain v2Message the request
// encoder consumes, selecting the tail-free v2 layout.
type v2BaseOnly struct{ m v2TailMessage }

func (b v2BaseOnly) appendV2(dst []byte) []byte { return b.m.appendV2Base(dst) }
func (b v2BaseOnly) decodeV2(d *v2dec)          { b.m.decodeV2(d) }

// --- primitive append helpers ------------------------------------------------

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// appendUint appends a non-negative int as a uvarint. Negative values
// would wrap to 2^64-ish uvarints and come back as overflow errors on
// decode; the wire structs only carry counters, so clamp defensively.
func appendUint(dst []byte, v int) []byte {
	if v < 0 {
		v = 0
	}
	return appendUvarint(dst, uint64(v))
}

func appendBytesV2(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendStringV2(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBoolV2(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// --- sticky-error decoder ----------------------------------------------------

// v2dec consumes a v2 payload with a sticky error: after the first
// failure every read returns zero values, so decode methods read their
// fields straight through and the caller checks err() once. Length
// fields are validated against the remaining payload before any
// allocation, so a corrupted count can never balloon memory.
type v2dec struct {
	b   []byte
	e   error
	off int // consumed so far, for error messages
}

func newV2dec(b []byte) *v2dec { return &v2dec{b: b} }

func (d *v2dec) err() error { return d.e }

func (d *v2dec) fail(format string, args ...any) {
	if d.e == nil {
		d.e = v2err("at offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

func (d *v2dec) remaining() int { return len(d.b) }

// finish rejects trailing bytes: a well-formed message consumes its
// whole body, so leftovers mean a codec mismatch or corruption.
func (d *v2dec) finish() error {
	if d.e == nil && len(d.b) != 0 {
		d.fail("%d trailing bytes", len(d.b))
	}
	return d.e
}

func (d *v2dec) take(n int) []byte {
	if d.e != nil {
		return nil
	}
	if n < 0 || n > len(d.b) {
		d.fail("need %d bytes, have %d", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	d.off += n
	return out
}

func (d *v2dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *v2dec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *v2dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *v2dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *v2dec) uvarint() uint64 {
	if d.e != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	d.off += n
	return v
}

// uint decodes a uvarint that must fit a non-negative int.
func (d *v2dec) uint() int {
	v := d.uvarint()
	if v > uint64(int(^uint(0)>>1)) {
		d.fail("uvarint %d overflows int", v)
		return 0
	}
	return int(v)
}

func (d *v2dec) boolean() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool octet")
		return false
	}
}

// bytes decodes a length-prefixed byte string (copied out of the frame,
// so results outlive the read buffer). A nil slice is returned for zero
// length, matching the JSON codec's omitempty round-trip.
func (d *v2dec) bytes() []byte {
	n := d.uint()
	if n == 0 {
		return nil
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

func (d *v2dec) str() string {
	n := d.uint()
	if n == 0 {
		return ""
	}
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// count decodes a collection length and sanity-checks it against the
// bytes left: every element costs ≥ min bytes, so a count the payload
// cannot possibly hold is rejected before any allocation.
func (d *v2dec) count(min int) int {
	n := d.uint()
	if d.e != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > d.remaining()/min+1 {
		d.fail("count %d exceeds remaining payload", n)
		return 0
	}
	return n
}

// --- request / response envelopes --------------------------------------------

// appendRequestV2 encodes one request payload. params may be nil for
// parameterless methods.
func appendRequestV2(dst []byte, id uint64, method string, params v2Message) ([]byte, error) {
	code, err := methodCode(method)
	if err != nil {
		return nil, err
	}
	dst = append(dst, frameRequestV2)
	dst = appendUvarint(dst, id)
	dst = append(dst, code)
	if params != nil {
		dst = params.appendV2(dst)
	}
	return dst, nil
}

// parseRequestV2 splits a request payload into its envelope; the method
// body is returned raw for the typed dispatcher to decode.
func parseRequestV2(payload []byte) (id uint64, method string, body []byte, err error) {
	d := newV2dec(payload)
	if k := d.u8(); d.err() == nil && k != frameRequestV2 {
		d.fail("payload kind %#x is not a v2 request", k)
	}
	id = d.uvarint()
	code := d.u8()
	if d.err() != nil {
		return 0, "", nil, d.err()
	}
	method, err = methodName(code)
	if err != nil {
		return 0, "", nil, err
	}
	return id, method, d.b, nil
}

// appendResponseV2 encodes one response payload: an error string, or the
// method result (nil for empty results).
func appendResponseV2(dst []byte, id uint64, errMsg string, result v2Message) []byte {
	dst = append(dst, frameResponseV2)
	dst = appendUvarint(dst, id)
	if errMsg != "" {
		dst = append(dst, 1)
		return appendStringV2(dst, errMsg)
	}
	dst = append(dst, 0)
	if result != nil {
		dst = result.appendV2(dst)
	}
	return dst
}

// parseResponseV2 splits a response payload into its envelope. On
// status=ok the raw result body is returned for the caller (who knows
// which method it answers) to decode; on status=error the error string
// is decoded here and body is nil.
func parseResponseV2(payload []byte) (id uint64, errMsg string, body []byte, err error) {
	d := newV2dec(payload)
	if k := d.u8(); d.err() == nil && k != frameResponseV2 {
		d.fail("payload kind %#x is not a v2 response", k)
	}
	id = d.uvarint()
	status := d.u8()
	if d.err() != nil {
		return 0, "", nil, d.err()
	}
	switch status {
	case 0:
		return id, "", d.b, nil
	case 1:
		msg := d.str()
		if err := d.finish(); err != nil {
			return 0, "", nil, err
		}
		return id, msg, nil, nil
	default:
		return 0, "", nil, v2err("bad response status %d", status)
	}
}

// decodeBodyV2 decodes a full method body into msg, rejecting trailing
// bytes. A nil msg accepts only an empty body.
func decodeBodyV2(body []byte, msg v2Message) error {
	d := newV2dec(body)
	if msg != nil {
		msg.decodeV2(d)
	}
	return d.finish()
}

// --- message codecs ----------------------------------------------------------

func (p *HelloParams) appendV2(dst []byte) []byte {
	dst = p.appendV2Base(dst)
	dst = appendUvarint(dst, p.Session)
	// v4 conditional tail: the property set travels only when non-empty
	// (and in practice the hello always travels v1 JSON anyway — the
	// binary codec exists so the message round-trips like every other).
	if len(p.Properties) > 0 {
		dst = appendUint(dst, len(p.Properties))
		for _, s := range p.Properties {
			dst = appendStringV2(dst, s)
		}
	}
	return dst
}

func (p *HelloParams) appendV2Base(dst []byte) []byte {
	return appendUint(dst, p.MaxVersion)
}

func (p *HelloParams) decodeV2(d *v2dec) {
	p.MaxVersion = d.uint()
	if d.remaining() > 0 {
		p.Session = d.uvarint() // v3 tail; absent on a v2-layout body
	}
	if d.remaining() > 0 { // v4 tail; present only when properties ship
		n := d.count(1)
		if n == 0 && d.e == nil {
			// The encoder omits the whole tail for an empty set, so an
			// explicit zero count is trailing garbage, not a layout.
			d.fail("empty properties tail")
		}
		if n > 0 {
			p.Properties = make([]string, n)
			for i := range p.Properties {
				p.Properties[i] = d.str()
			}
		}
	}
}

func (r *HelloResult) appendV2(dst []byte) []byte {
	dst = appendStringV2(dst, r.Node)
	dst = appendStringV2(dst, r.Topology)
	dst = binary.BigEndian.AppendUint16(dst, r.AS)
	dst = appendUint(dst, r.Prefixes)
	return appendUint(dst, r.Version)
}

func (r *HelloResult) decodeV2(d *v2dec) {
	r.Node = d.str()
	r.Topology = d.str()
	r.AS = d.u16()
	r.Prefixes = d.uint()
	r.Version = d.uint()
}

func (r *CheckpointResult) appendV2(dst []byte) []byte {
	dst = appendBytesV2(dst, r.State)
	dst = appendUint(dst, r.Pages)
	return appendUint(dst, r.UniquePages)
}

func (r *CheckpointResult) decodeV2(d *v2dec) {
	r.State = d.bytes()
	r.Pages = d.uint()
	r.UniquePages = d.uint()
}

func (p *ExploreParams) appendV2(dst []byte) []byte {
	dst = p.appendV2Base(dst)
	return appendUvarint(dst, p.Round)
}

func (p *ExploreParams) appendV2Base(dst []byte) []byte {
	dst = appendStringV2(dst, p.Peer)
	dst = appendStringV2(dst, p.Scenario)
	dst = appendBoolV2(dst, p.Explicit)
	dst = appendUint(dst, p.MaxRuns)
	dst = appendUint(dst, p.MaxDepth)
	dst = appendUint(dst, p.Workers)
	dst = appendUint(dst, p.SolverNodes)
	dst = appendStringV2(dst, p.Strategy)
	dst = appendUvarint(dst, uint64(p.TimeBudgetNS))
	return appendBoolV2(dst, p.ReuseState)
}

func (p *ExploreParams) decodeV2(d *v2dec) {
	p.Peer = d.str()
	p.Scenario = d.str()
	p.Explicit = d.boolean()
	p.MaxRuns = d.uint()
	p.MaxDepth = d.uint()
	p.Workers = d.uint()
	p.SolverNodes = d.uint()
	p.Strategy = d.str()
	p.TimeBudgetNS = int64(d.uvarint())
	p.ReuseState = d.boolean()
	if d.remaining() > 0 {
		p.Round = d.uvarint() // v3 tail; absent on a v2-layout body
	}
}

func appendFindingV2(dst []byte, f *WireFinding) []byte {
	dst = appendStringV2(dst, f.Kind)
	dst = appendStringV2(dst, f.Peer)
	dst = appendStringV2(dst, f.Prefix)
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.LeakRange.AddrLo))
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.LeakRange.AddrHi))
	dst = append(dst, uint8(f.LeakRange.LenLo), uint8(f.LeakRange.LenHi))
	dst = binary.BigEndian.AppendUint16(dst, f.OriginAS)
	dst = binary.BigEndian.AppendUint16(dst, f.VictimAS)
	dst = appendStringV2(dst, f.VictimPrefix)
	dst = appendUint(dst, f.Seq)
	dst = appendBoolV2(dst, f.Validated)
	dst = appendUint(dst, len(f.SpreadTo))
	for _, s := range f.SpreadTo {
		dst = appendStringV2(dst, s)
	}
	// Map entries in sorted key order: the encoding is canonical, so
	// encode→decode→encode is byte-stable (the fuzz harness leans on
	// this the way internal/trace's does).
	keys := make([]string, 0, len(f.Input))
	for k := range f.Input {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = appendUint(dst, len(keys))
	for _, k := range keys {
		dst = appendStringV2(dst, k)
		dst = appendUvarint(dst, f.Input[k])
	}
	return appendStringV2(dst, f.Rendered)
}

func decodeFindingV2(d *v2dec, f *WireFinding) {
	f.Kind = d.str()
	f.Peer = d.str()
	f.Prefix = d.str()
	f.LeakRange.AddrLo = netaddr.Addr(d.u32())
	f.LeakRange.AddrHi = netaddr.Addr(d.u32())
	f.LeakRange.LenLo = int(d.u8())
	f.LeakRange.LenHi = int(d.u8())
	f.OriginAS = d.u16()
	f.VictimAS = d.u16()
	f.VictimPrefix = d.str()
	f.Seq = d.uint()
	f.Validated = d.boolean()
	if n := d.count(1); n > 0 {
		f.SpreadTo = make([]string, n)
		for i := range f.SpreadTo {
			f.SpreadTo[i] = d.str()
		}
	}
	if n := d.count(2); n > 0 {
		f.Input = make(map[string]uint64, n)
		for i := 0; i < n; i++ {
			k := d.str()
			f.Input[k] = d.uvarint()
		}
	}
	f.Rendered = d.str()
}

func (r *ExploreResult) appendV2(dst []byte) []byte {
	dst = appendStringV2(dst, r.Skipped)
	dst = appendStringV2(dst, r.Scenario)
	dst = appendUint(dst, r.Runs)
	dst = appendUint(dst, r.NewPaths)
	dst = appendUint(dst, r.BranchesSeen)
	dst = appendUint(dst, r.SolverCalls)
	dst = appendUint(dst, r.SolverSat)
	dst = appendUint(dst, r.SolverUnsat)
	dst = appendUint(dst, r.CacheHits)
	dst = appendUint(dst, r.SkippedPaths)
	dst = appendUint(dst, r.SkippedNegations)
	dst = appendUvarint(dst, uint64(r.ElapsedNS))
	dst = appendUint(dst, r.CapturedMessages)
	dst = appendUint(dst, r.WitnessesRejected)
	dst = appendUint(dst, len(r.Findings))
	for i := range r.Findings {
		dst = appendFindingV2(dst, &r.Findings[i])
	}
	dst = appendUint(dst, len(r.Witnesses))
	for _, w := range r.Witnesses {
		dst = appendUint(dst, w.Finding)
		dst = appendBytesV2(dst, w.Msg)
	}
	return dst
}

func (r *ExploreResult) decodeV2(d *v2dec) {
	r.Skipped = d.str()
	r.Scenario = d.str()
	r.Runs = d.uint()
	r.NewPaths = d.uint()
	r.BranchesSeen = d.uint()
	r.SolverCalls = d.uint()
	r.SolverSat = d.uint()
	r.SolverUnsat = d.uint()
	r.CacheHits = d.uint()
	r.SkippedPaths = d.uint()
	r.SkippedNegations = d.uint()
	r.ElapsedNS = int64(d.uvarint())
	r.CapturedMessages = d.uint()
	r.WitnessesRejected = d.uint()
	if n := d.count(1); n > 0 {
		r.Findings = make([]WireFinding, n)
		for i := range r.Findings {
			decodeFindingV2(d, &r.Findings[i])
		}
	}
	if n := d.count(2); n > 0 {
		r.Witnesses = make([]WireWitness, n)
		for i := range r.Witnesses {
			r.Witnesses[i].Finding = d.uint()
			r.Witnesses[i].Msg = d.bytes()
		}
	}
}

func (p *SeedParams) appendV2(dst []byte) []byte {
	dst = appendStringV2(dst, p.Peer)
	return appendStringV2(dst, p.Scenario)
}

func (p *SeedParams) decodeV2(d *v2dec) {
	p.Peer = d.str()
	p.Scenario = d.str()
}

func (r *SeedResult) appendV2(dst []byte) []byte {
	dst = appendBytesV2(dst, r.Msg)
	dst = appendBoolV2(dst, r.Unsupported)
	return appendStringV2(dst, r.Missing)
}

func (r *SeedResult) decodeV2(d *v2dec) {
	r.Msg = d.bytes()
	r.Unsupported = d.boolean()
	r.Missing = d.str()
}

func (p *ReplicaExploreParams) appendV2(dst []byte) []byte {
	dst = appendStringV2(dst, p.Node)
	dst = appendUint(dst, len(p.Config))
	for _, line := range p.Config {
		dst = appendStringV2(dst, line)
	}
	dst = appendBytesV2(dst, p.State)
	dst = appendStringV2(dst, p.Peer)
	dst = appendStringV2(dst, p.Scenario)
	dst = appendBoolV2(dst, p.Explicit)
	dst = appendUint(dst, p.MaxRuns)
	dst = appendUint(dst, p.MaxDepth)
	dst = appendUint(dst, p.Workers)
	dst = appendUint(dst, p.SolverNodes)
	dst = appendStringV2(dst, p.Strategy)
	dst = appendUvarint(dst, uint64(p.TimeBudgetNS))
	dst = binary.BigEndian.AppendUint32(dst, p.Boundary)
	dst = appendBytesV2(dst, p.Seed)
	dst = appendBytesV2(dst, p.WarmState)
	dst = appendUvarint(dst, p.Round)
	dst = appendStringV2(dst, p.Shard)
	// v4 conditional tail: page mode. An unused tail (full-state
	// shipment) adds no bytes, so the encoding stays valid for v3
	// replicas. The hash/data guards keep decode→encode canonical for
	// frames a sender would never build (PageSize 0 with pages attached).
	if p.PageSize > 0 || len(p.PageHash) > 0 || len(p.PageData) > 0 {
		dst = appendUint(dst, p.PageSize)
		dst = appendUint(dst, len(p.PageHash))
		for _, h := range p.PageHash {
			dst = appendStringV2(dst, h)
		}
		dst = appendUint(dst, len(p.PageData))
		for _, pg := range p.PageData {
			dst = appendBytesV2(dst, pg)
		}
	}
	return dst
}

func (p *ReplicaExploreParams) decodeV2(d *v2dec) {
	p.Node = d.str()
	if n := d.count(1); n > 0 {
		p.Config = make([]string, n)
		for i := range p.Config {
			p.Config[i] = d.str()
		}
	}
	p.State = d.bytes()
	p.Peer = d.str()
	p.Scenario = d.str()
	p.Explicit = d.boolean()
	p.MaxRuns = d.uint()
	p.MaxDepth = d.uint()
	p.Workers = d.uint()
	p.SolverNodes = d.uint()
	p.Strategy = d.str()
	p.TimeBudgetNS = int64(d.uvarint())
	p.Boundary = d.u32()
	p.Seed = d.bytes()
	p.WarmState = d.bytes()
	p.Round = d.uvarint()
	p.Shard = d.str()
	if d.remaining() > 0 { // v4 tail; present only in page mode
		p.PageSize = d.uint()
		if n := d.count(1); n > 0 {
			p.PageHash = make([]string, n)
			for i := range p.PageHash {
				p.PageHash[i] = d.str()
			}
		}
		if n := d.count(1); n > 0 {
			p.PageData = make([][]byte, n)
			for i := range p.PageData {
				p.PageData[i] = d.bytes()
			}
		}
		if p.PageSize == 0 && p.PageHash == nil && p.PageData == nil && d.e == nil {
			// The encoder omits an all-zero tail, so one here is garbage.
			d.fail("empty page-mode tail")
		}
	}
}

func (r *ReplicaExploreResult) appendV2(dst []byte) []byte {
	dst = r.ExploreResult.appendV2(dst)
	dst = appendBytesV2(dst, r.WarmState)
	// v4 conditional tail: only cache-miss answers carry it, and only
	// page-mode (≥ v4) senders get those.
	if len(r.MissingPages) > 0 {
		dst = appendUint(dst, len(r.MissingPages))
		for _, h := range r.MissingPages {
			dst = appendStringV2(dst, h)
		}
	}
	return dst
}

func (r *ReplicaExploreResult) decodeV2(d *v2dec) {
	r.ExploreResult.decodeV2(d)
	r.WarmState = d.bytes()
	if d.remaining() > 0 { // v4 tail; present only on cache-miss answers
		n := d.count(1)
		if n == 0 && d.e == nil {
			d.fail("empty missing_pages tail")
		}
		if n > 0 {
			r.MissingPages = make([]string, n)
			for i := range r.MissingPages {
				r.MissingPages[i] = d.str()
			}
		}
	}
}

func (p *ReplayParams) appendV2(dst []byte) []byte {
	dst = p.appendV2Base(dst)
	return appendUvarint(dst, p.Key)
}

func (p *ReplayParams) appendV2Base(dst []byte) []byte {
	dst = appendStringV2(dst, p.Node)
	dst = appendStringV2(dst, p.Peer)
	return appendBytesV2(dst, p.Trace)
}

func (p *ReplayParams) decodeV2(d *v2dec) {
	p.Node = d.str()
	p.Peer = d.str()
	p.Trace = d.bytes()
	if d.remaining() > 0 {
		p.Key = d.uvarint() // v3 tail; absent on a v2-layout body
	}
}

func (r *ReplayResult) appendV2(dst []byte) []byte {
	dst = appendUint(dst, r.Delivered)
	return appendUint(dst, r.Prefixes)
}

func (r *ReplayResult) decodeV2(d *v2dec) {
	r.Delivered = d.uint()
	r.Prefixes = d.uint()
}

func (r *ShadowOpenResult) appendV2(dst []byte) []byte {
	return appendUvarint(dst, r.ShadowID)
}

func (r *ShadowOpenResult) decodeV2(d *v2dec) {
	r.ShadowID = d.uvarint()
}

func (p *InjectParams) appendV2(dst []byte) []byte {
	dst = p.appendV2Base(dst)
	return appendUvarint(dst, p.Key)
}

func (p *InjectParams) appendV2Base(dst []byte) []byte {
	dst = appendUvarint(dst, p.ShadowID)
	dst = appendStringV2(dst, p.From)
	return appendBytesV2(dst, p.Msg)
}

func (p *InjectParams) decodeV2(d *v2dec) {
	p.ShadowID = d.uvarint()
	p.From = d.str()
	p.Msg = d.bytes()
	if d.remaining() > 0 {
		p.Key = d.uvarint() // v3 tail; absent on a v2-layout body
	}
}

func appendInjectResultV2(dst []byte, r *InjectResult) []byte {
	dst = appendUint(dst, len(r.Emitted))
	for _, e := range r.Emitted {
		dst = appendStringV2(dst, e.To)
		dst = appendBytesV2(dst, e.Msg)
	}
	return dst
}

func decodeInjectResultV2(d *v2dec, r *InjectResult) {
	if n := d.count(2); n > 0 {
		r.Emitted = make([]WireEmission, n)
		for i := range r.Emitted {
			r.Emitted[i].To = d.str()
			r.Emitted[i].Msg = d.bytes()
		}
	}
}

func (r *InjectResult) appendV2(dst []byte) []byte { return appendInjectResultV2(dst, r) }
func (r *InjectResult) decodeV2(d *v2dec)          { decodeInjectResultV2(d, r) }

func (p *InjectBatchParams) appendV2(dst []byte) []byte {
	dst = p.appendV2Base(dst)
	return appendUvarint(dst, p.Key)
}

func (p *InjectBatchParams) appendV2Base(dst []byte) []byte {
	dst = appendUvarint(dst, p.ShadowID)
	dst = appendUint(dst, len(p.Deliveries))
	for _, dl := range p.Deliveries {
		dst = appendStringV2(dst, dl.From)
		dst = appendBytesV2(dst, dl.Msg)
	}
	return dst
}

func (p *InjectBatchParams) decodeV2(d *v2dec) {
	p.ShadowID = d.uvarint()
	if n := d.count(2); n > 0 {
		p.Deliveries = make([]BatchDelivery, n)
		for i := range p.Deliveries {
			p.Deliveries[i].From = d.str()
			p.Deliveries[i].Msg = d.bytes()
		}
	}
	if d.remaining() > 0 {
		p.Key = d.uvarint() // v3 tail; absent on a v2-layout body
	}
}

func (r *InjectBatchResult) appendV2(dst []byte) []byte {
	dst = appendUint(dst, len(r.Results))
	for i := range r.Results {
		dst = appendInjectResultV2(dst, &r.Results[i])
	}
	return dst
}

func (r *InjectBatchResult) decodeV2(d *v2dec) {
	if n := d.count(1); n > 0 {
		r.Results = make([]InjectResult, n)
		for i := range r.Results {
			decodeInjectResultV2(d, &r.Results[i])
		}
	}
}

func (p *ShadowCloseParams) appendV2(dst []byte) []byte {
	return appendUvarint(dst, p.ShadowID)
}

func (p *ShadowCloseParams) decodeV2(d *v2dec) {
	p.ShadowID = d.uvarint()
}

func (p *QueryOracleParams) appendV2(dst []byte) []byte {
	dst = appendUvarint(dst, p.ShadowID)
	dst = appendStringV2(dst, p.Prefix)
	// v4 conditional tail: a false WantProps adds no bytes, so this
	// encoding is valid for every peer that accepts the base layout — the
	// coordinator only sets the flag on ≥ v4 connections.
	if p.WantProps {
		dst = appendBoolV2(dst, true)
	}
	return dst
}

func (p *QueryOracleParams) decodeV2(d *v2dec) {
	p.ShadowID = d.uvarint()
	p.Prefix = d.str()
	if d.remaining() > 0 { // v4 tail; present only when the flag is set
		p.WantProps = d.boolean()
		if !p.WantProps && d.e == nil {
			// The encoder omits the tail entirely when the flag is off, so
			// an explicit false octet is trailing garbage, not a layout.
			d.fail("false want_props tail")
		}
	}
}

func (r *QueryOracleResult) appendV2(dst []byte) []byte {
	dst = appendBoolV2(dst, r.HasBest)
	dst = appendStringV2(dst, r.BestFP)
	dst = appendBoolV2(dst, r.HasCovering)
	dst = appendBoolV2(dst, r.CoveringLocal)
	dst = appendStringV2(dst, r.CoveringNextPeer)
	// v4 conditional tail: agents fill PropMatch only for WantProps
	// requests, so the tail never reaches a client that would reject it.
	if len(r.PropMatch) > 0 {
		dst = appendUint(dst, len(r.PropMatch))
		for _, m := range r.PropMatch {
			dst = appendBoolV2(dst, m)
		}
	}
	return dst
}

func (r *QueryOracleResult) decodeV2(d *v2dec) {
	r.HasBest = d.boolean()
	r.BestFP = d.str()
	r.HasCovering = d.boolean()
	r.CoveringLocal = d.boolean()
	r.CoveringNextPeer = d.str()
	if d.remaining() > 0 { // v4 tail; present only on WantProps answers
		n := d.count(1)
		if n == 0 && d.e == nil {
			d.fail("empty prop_match tail")
		}
		if n > 0 {
			r.PropMatch = make([]bool, n)
			for i := range r.PropMatch {
				r.PropMatch[i] = d.boolean()
			}
		}
	}
}
