package dist

import (
	"bytes"
	"os"
	"testing"

	"dice/internal/core"
	"dice/internal/trace"
)

// TestSessionScopedExploreMemos: agents are long-lived servers, so the
// round-keyed explore memo must be scoped to one coordinator session.
// A reconnect carrying the same session nonce answers round-1 retries
// from the memo; a new session (fresh nonce, round sequence restarting
// at 1) must re-execute, not read the previous session's answer.
func TestSessionScopedExploreMemos(t *testing.T) {
	ag, err := NewAgent(leakTopo3(), "provider")
	if err != nil {
		t.Fatal(err)
	}
	dial := func(session uint64) *Client {
		t.Helper()
		conn, err := Loopback{Agent: ag}.Dial()
		if err != nil {
			t.Fatal(err)
		}
		cl := NewClient(conn)
		cl.Session = session
		if _, err := cl.Handshake(ProtoLatest); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	explore := func(cl *Client, maxRuns int) ExploreResult {
		t.Helper()
		var ex ExploreResult
		err := cl.Call(MethodExplore, &ExploreParams{
			Peer: "customer", Scenario: core.ScenarioRouteLeak, Explicit: true,
			MaxRuns: maxRuns, Round: 1,
		}, &ex)
		if err != nil {
			t.Fatal(err)
		}
		return ex
	}

	first := explore(dial(111), 500)
	if first.Runs <= 1 {
		t.Fatalf("reference explore finished in %d runs; the memo checks below need a multi-run exploration", first.Runs)
	}
	// Same session, new connection (a reconnect): round 1 answers from
	// the memo even though the params now cap the engine at one run.
	if r := explore(dial(111), 1); r.Runs != first.Runs {
		t.Errorf("same-session retry re-executed: %d runs, want memoized %d", r.Runs, first.Runs)
	}
	// New session: its own round 1 must not read the old memo. The
	// one-run cap makes a real execution distinguishable from the
	// multi-run memoized answer.
	if r := explore(dial(222), 1); r.Runs == first.Runs {
		t.Errorf("new session answered from the previous session's memo (%d runs)", r.Runs)
	}
}

// TestSessionScopedReplayMemos is the cross-run replay collision from
// the wild: two dice runs against the same long-lived fleet both start
// their replay keys at 1. The second run's replay must feed its own
// trace into the fabric, not return the first run's memoized result.
func TestSessionScopedReplayMemos(t *testing.T) {
	raw, err := os.ReadFile("../../examples/replay/trace.mrtl")
	if err != nil {
		t.Fatal(err)
	}
	records, err := trace.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	half := records[:len(records)/2]
	if len(half) == len(records) {
		t.Fatal("example trace too short to split")
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, half); err != nil {
		t.Fatal(err)
	}

	topo, err := core.LoadTopology("../../examples/federated/topo.json")
	if err != nil {
		t.Fatal(err)
	}
	var dialers []Dialer
	for _, n := range topo.Nodes {
		ag, err := NewAgent(topo, n.Name)
		if err != nil {
			t.Fatalf("agent %s: %v", n.Name, err)
		}
		dialers = append(dialers, Loopback{Agent: ag})
	}

	c1, err := Connect(topo, minimizeOpts(), dialers)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := c1.Replay("transitA", "stub", buf.Bytes())
	c1.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n1 != len(half) {
		t.Fatalf("first session replayed %d of %d records", n1, len(half))
	}

	c2, err := Connect(topo, minimizeOpts(), dialers)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	n2, err := c2.Replay("transitA", "stub", raw)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != len(records) {
		t.Fatalf("second session replayed %d records, want %d — the first session's key-1 memo answered instead of the fabric", n2, len(records))
	}
}
