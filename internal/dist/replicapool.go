package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dice/internal/checkpoint"
)

// ErrReplicaPoolDown reports that the pool has no live replica and can
// never get one: every dialer has been consumed and every worker has
// died past its reconnect budget (or the pool was closed). The
// coordinator treats it as "explore on the agent instead", so a dead
// pool degrades a round's locality, never its findings.
var ErrReplicaPoolDown = errors.New("dist: replica pool has no live replicas")

// ReplicaPool drives a fleet of stateless exploration replicas behind
// one shared work queue. The coordinator submits per-target shards
// (checkpoint + seed + knobs, see ReplicaExploreParams); workers — one
// per dialed replica — pull shards off the queue in FIFO order, so a
// slow replica naturally takes fewer shards and a dead one takes none:
// the queue IS the work-stealing mechanism.
//
// The pool is elastic between Min and Max workers. It starts Min
// workers at Connect and dials another replica whenever the backlog
// exceeds the live worker count (up to Max, and never more than one
// worker per dialer). A worker whose replica dies past the reconnect
// budget re-enqueues its in-flight shard for the survivors and exits;
// replica-side memos keyed on (Shard, Round) make the re-run
// idempotent even when the lost replica had already answered.
type ReplicaPool struct {
	// Dialers produce connections to the replicas, one replica per
	// dialer. A dialer is consumed when its worker starts and never
	// redialed after that worker dies past its reconnect budget — a
	// replica that stays down stays out of the pool.
	Dialers []Dialer
	// Min and Max bound the live worker count: Min workers start at
	// bind time, autoscaling adds more up to Max. Zero values mean
	// Min=1 and Max=len(Dialers); both are clamped to len(Dialers).
	Min, Max int

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []*replicaTask
	session    uint64
	maxVersion int
	policy     RetryPolicy
	bound      bool
	closed     bool
	dead       bool // all dialers consumed, all workers gone
	started    int  // dialers consumed (== workers ever started)
	active     int  // workers currently alive
	stats      ReplicaPoolStats
	tm         *Metrics // coordinator's telemetry bundle; nil-safe
}

// setMetrics attaches the coordinator's telemetry bundle. Connect calls
// it before bind so the initial workers are counted.
func (p *ReplicaPool) setMetrics(m *Metrics) {
	p.mu.Lock()
	p.tm = m
	p.mu.Unlock()
}

// ReplicaPoolStats is the pool's lifetime accounting, for tests and the
// operator-facing round summary.
type ReplicaPoolStats struct {
	// Started counts workers ever started (== dialers consumed).
	Started int
	// Active is the live worker count at the time of the Stats call.
	Active int
	// Scaled counts autoscale starts: workers beyond the initial Min
	// that a backlog demanded.
	Scaled int
	// Requeues counts shards re-enqueued after their replica died
	// mid-explore — each one is a successful work steal.
	Requeues int
	// Reconnects counts successful re-dial + re-handshake cycles on
	// replica connections.
	Reconnects int
	// Completed counts shards answered (successfully or with an
	// application error).
	Completed int
}

// replicaTask is one queued shard: the request, and the slot its waiter
// blocks on.
type replicaTask struct {
	params *ReplicaExploreParams
	out    *ReplicaExploreResult
	err    error
	done   chan struct{}
}

func (t *replicaTask) finish(out *ReplicaExploreResult, err error) {
	t.out, t.err = out, err
	close(t.done)
}

// bind attaches the pool to a coordinator session: every worker
// handshakes with the coordinator's nonce (so replica memos share the
// session lifecycle with agent memos) and recovers under the
// coordinator's retry policy. Connect calls it; a pool binds once.
func (p *ReplicaPool) bind(session uint64, maxVersion int, policy RetryPolicy) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bound {
		return fmt.Errorf("dist: replica pool already bound to a coordinator")
	}
	if len(p.Dialers) == 0 {
		return fmt.Errorf("dist: replica pool has no dialers")
	}
	p.cond = sync.NewCond(&p.mu)
	p.session = session
	p.maxVersion = maxVersion
	p.policy = policy
	p.bound = true
	for i := 0; i < p.minWorkers(); i++ {
		p.startWorkerLocked()
	}
	return nil
}

func (p *ReplicaPool) minWorkers() int {
	n := p.Min
	if n <= 0 {
		n = 1
	}
	if max := p.maxWorkers(); n > max {
		n = max
	}
	return n
}

func (p *ReplicaPool) maxWorkers() int {
	n := p.Max
	if n <= 0 || n > len(p.Dialers) {
		n = len(p.Dialers)
	}
	return n
}

// startWorkerLocked consumes the next dialer and launches its worker.
// Callers hold p.mu and have checked started < maxWorkers().
func (p *ReplicaPool) startWorkerLocked() {
	idx := p.started
	p.started++
	p.active++
	p.stats.Started++
	p.tm.setPoolWorkers(p.active)
	go p.worker(idx)
}

// Stats returns a snapshot of the pool's accounting.
func (p *ReplicaPool) Stats() ReplicaPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Active = p.active
	return s
}

// submit queues one shard and blocks until a replica answers it (or the
// pool proves it never can). Safe for concurrent use — Round fans one
// goroutine out per target.
func (p *ReplicaPool) submit(params *ReplicaExploreParams) (*ReplicaExploreResult, error) {
	t := &replicaTask{params: params, done: make(chan struct{})}
	p.mu.Lock()
	if !p.bound {
		p.mu.Unlock()
		return nil, fmt.Errorf("dist: replica pool not bound; pass it to Connect via WithReplicas")
	}
	if p.closed || p.dead {
		p.mu.Unlock()
		return nil, ErrReplicaPoolDown
	}
	p.queue = append(p.queue, t)
	p.tm.setPoolDepth(len(p.queue))
	// Autoscale: a backlog deeper than the live worker set means shards
	// are waiting while dialers sit idle — bring another replica in.
	if len(p.queue) > p.active && p.started < p.maxWorkers() {
		p.stats.Scaled++
		p.startWorkerLocked()
	}
	p.cond.Signal()
	p.mu.Unlock()
	<-t.done
	return t.out, t.err
}

// pop blocks until a shard is available (nil when the pool closes).
func (p *ReplicaPool) pop() *replicaTask {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.queue) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.queue) == 0 {
		return nil
	}
	t := p.queue[0]
	p.queue = p.queue[1:]
	p.tm.setPoolDepth(len(p.queue))
	return t
}

// requeue steals a dying worker's in-flight shard back for the
// survivors.
func (p *ReplicaPool) requeue(t *replicaTask) {
	p.mu.Lock()
	p.stats.Requeues++
	p.queue = append(p.queue, t)
	p.tm.notePoolSteal()
	p.tm.setPoolDepth(len(p.queue))
	p.cond.Broadcast()
	p.mu.Unlock()
}

// workerExit retires one worker. The last worker out either recruits a
// replacement from the unconsumed dialers or — when none remain —
// declares the pool dead and fails everything still queued, so no
// submitter blocks forever on a fleet that cannot answer.
func (p *ReplicaPool) workerExit() {
	p.mu.Lock()
	p.active--
	p.tm.setPoolWorkers(p.active)
	if p.active == 0 {
		if !p.closed && p.started < p.maxWorkers() {
			p.startWorkerLocked()
		} else if !p.dead {
			p.dead = true
			failed := p.queue
			p.queue = nil
			p.tm.setPoolDepth(0)
			p.mu.Unlock()
			for _, t := range failed {
				t.finish(nil, ErrReplicaPoolDown)
			}
			return
		}
	}
	p.mu.Unlock()
}

// Close shuts the pool down: queued shards fail with ErrReplicaPoolDown
// and workers exit after their current shard.
func (p *ReplicaPool) Close() {
	p.mu.Lock()
	if !p.bound || p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	failed := p.queue
	p.queue = nil
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, t := range failed {
		t.finish(nil, ErrReplicaPoolDown)
	}
}

// worker owns one replica connection for its lifetime: dial and
// handshake (with backoff — replicas may still be starting), then pull
// shards until the pool closes or the replica dies past the reconnect
// budget. A shard in flight when the replica dies is re-enqueued, not
// failed: the memo keys make the surviving replicas' re-run exact.
func (p *ReplicaPool) worker(idx int) {
	defer p.workerExit()
	rng := rand.New(rand.NewSource(p.policy.Seed ^ int64(nodeHash(fmt.Sprintf("replica-%d", idx)))))
	cl := p.dialReplica(idx, rng, true)
	if cl == nil {
		return
	}
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()
	// acked tracks the checkpoint pages this replica has confirmed
	// caching within the session (see exploreCall). It is per-connection
	// state: a reconnect may mean a restarted replica with an empty
	// cache, so the record resets with the dial and warm shipping
	// restarts conservatively.
	acked := make(map[string]struct{})
	for {
		t := p.pop()
		if t == nil {
			return
		}
		for {
			var out ReplicaExploreResult
			err := p.exploreCall(cl, t.params, acked, &out)
			if err == nil {
				p.noteCompleted()
				t.finish(&out, nil)
				break
			}
			if !isConnFault(err) {
				// The replica answered: an application error (bad config,
				// undecodable checkpoint) would recur on any replica.
				p.noteCompleted()
				t.finish(nil, err)
				break
			}
			cl.Close()
			if cl = p.dialReplica(idx, rng, false); cl == nil {
				// Replica dead past the budget: give the shard back to
				// the survivors and retire this worker.
				p.requeue(t)
				return
			}
			p.noteReconnect()
			acked = make(map[string]struct{})
		}
	}
}

// exploreCall issues one shard over the worker's connection. On ≥ v4
// connections the checkpoint travels in page mode: the full ordered
// hash list plus only the pages this replica has not acknowledged this
// session, so warm rounds — where most of a node's checkpoint is
// unchanged — ship a hash list instead of megabytes of state. A
// MissingPages answer (replica restarted, cache evicted, or an ack
// recorded from a memo hit) triggers one full re-send; the ack record
// is rebuilt from what the replica then confirms. v3 replicas and
// stateless (empty-State) shards take the classic full-state path, so
// mixed fleets degrade per connection, not pool-wide.
func (p *ReplicaPool) exploreCall(cl *Client, params *ReplicaExploreParams, acked map[string]struct{}, out *ReplicaExploreResult) error {
	if cl.Version() < ProtoV4 || len(params.State) == 0 {
		return cl.Call(MethodExploreCheckpoint, params, out)
	}
	pages := splitPages(params.State, checkpoint.DefaultPageSize)
	wp := *params
	wp.State = nil
	wp.PageSize = checkpoint.DefaultPageSize
	wp.PageHash = make([]string, len(pages))
	sent := make(map[string]bool)
	for i, pg := range pages {
		h := pageHash(pg)
		wp.PageHash[i] = h
		if _, ok := acked[h]; !ok && !sent[h] {
			sent[h] = true
			wp.PageData = append(wp.PageData, pg)
		}
	}
	if err := cl.Call(MethodExploreCheckpoint, &wp, out); err != nil {
		return err
	}
	if len(out.MissingPages) > 0 {
		clear(acked)
		wp.PageData = wp.PageData[:0]
		clear(sent)
		for i, pg := range pages {
			if h := wp.PageHash[i]; !sent[h] {
				sent[h] = true
				wp.PageData = append(wp.PageData, pg)
			}
		}
		*out = ReplicaExploreResult{}
		if err := cl.Call(MethodExploreCheckpoint, &wp, out); err != nil {
			return err
		}
		if len(out.MissingPages) > 0 {
			// Unreachable with a conforming replica — a full send
			// resolves every hash it names. Surface it as an application
			// error so the shard falls back instead of looping.
			return fmt.Errorf("dist: replica still missing %d pages after a full page send", len(out.MissingPages))
		}
	}
	for _, h := range wp.PageHash {
		acked[h] = struct{}{}
	}
	return nil
}

// splitPages cuts state into size-byte pages (the last one may be
// short), matching the checkpoint store's page discipline.
func splitPages(state []byte, size int) [][]byte {
	pages := make([][]byte, 0, (len(state)+size-1)/size)
	for off := 0; off < len(state); off += size {
		end := off + size
		if end > len(state) {
			end = len(state)
		}
		pages = append(pages, state[off:end])
	}
	return pages
}

func (p *ReplicaPool) noteCompleted() {
	p.mu.Lock()
	p.stats.Completed++
	p.mu.Unlock()
}

func (p *ReplicaPool) noteReconnect() {
	p.mu.Lock()
	p.stats.Reconnects++
	p.tm.notePoolReconnect()
	p.mu.Unlock()
}

// dialReplica establishes one identified replica connection within the
// reconnect budget. first skips the pre-dial backoff pause (the initial
// dial of a healthy replica should not wait).
func (p *ReplicaPool) dialReplica(idx int, rng *rand.Rand, first bool) *Client {
	for attempt := 1; attempt <= p.policy.MaxReconnects+1; attempt++ {
		if !(first && attempt == 1) {
			time.Sleep(backoffDelay(attempt, p.policy.BackoffBase, p.policy.BackoffCap, rng))
		}
		conn, err := p.Dialers[idx].Dial()
		if err != nil {
			continue
		}
		cl := NewClient(conn)
		cl.Timeout = p.policy.RPCTimeout
		cl.Session = p.session
		if _, err := cl.Handshake(p.maxVersion); err != nil {
			cl.Close()
			continue
		}
		return cl
	}
	return nil
}
