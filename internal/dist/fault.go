package dist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"time"

	"dice/internal/telemetry"
)

// Fault injection for the chaos suite: a FaultDialer wraps any Dialer
// and returns connections that misbehave on schedule — deterministic
// and seeded, so a failing chaos run replays exactly. Faults fire on
// the coordinator's read side (the response stream), which is where
// every failure class the client must survive manifests: a dropped
// connection, a response delayed past the call deadline, a garbled
// frame, a connection killed mid-frame.

// FaultKind is one injected failure mode.
type FaultKind int

const (
	// FaultNone does nothing (a disabled spec).
	FaultNone FaultKind = iota
	// FaultDrop closes the connection before the target frame is
	// delivered: the client reader fails, the connection poisons, the
	// coordinator reconnects.
	FaultDrop
	// FaultDelay stalls the target frame past the RPC deadline: the
	// call times out (without poisoning), and the coordinator's retry
	// path — not the reconnect path — must converge.
	FaultDelay
	// FaultGarble flips a byte in the target frame's payload: the
	// client's codec rejects it and poisons the connection.
	FaultGarble
	// FaultKill delivers the frame header and half the payload, then
	// closes: the reader sees an unexpected EOF mid-frame.
	FaultKill
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultGarble:
		return "garble"
	case FaultKill:
		return "kill"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultSpec schedules one fault: on the Conn-th connection this dialer
// produces (0-based), sabotage the Frame-th inbound frame (1-based —
// frame 1 is the hello response, so specs usually target ≥ 2).
type FaultSpec struct {
	Conn  int
	Frame int
	Kind  FaultKind
}

// FaultPlan is the deterministic chaos schedule for one node's dialer.
type FaultPlan struct {
	// Delay is how long FaultDelay stalls the target frame; pick it
	// comfortably past the client's RPC deadline.
	Delay time.Duration
	// Specs are the scheduled faults. At most one fires per connection
	// (the first matching spec).
	Specs []FaultSpec
	// FailDialsFrom, when ≥ 0, makes every dial with index ≥ its value
	// fail outright — the "agent stays dead" schedule that forces the
	// coordinator through its whole reconnect budget and into the
	// degraded fallback.
	FailDialsFrom int
}

// RandomFaultPlan derives one node's plan from a seed: one fault of a
// seed-chosen kind on the first connection, at an early frame past the
// hello exchange — every node gets hit at least once per round. The
// derivation hashes the node name so different nodes draw different
// kinds from the same seed, and the same (seed, node) always draws the
// same plan.
func RandomFaultPlan(seed int64, node string, delay time.Duration) *FaultPlan {
	h := fnv.New64a()
	h.Write([]byte(node))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
	kinds := []FaultKind{FaultDrop, FaultDelay, FaultGarble, FaultKill}
	return &FaultPlan{
		Delay: delay,
		Specs: []FaultSpec{{
			Conn:  0,
			Frame: 2 + rng.Intn(6), // past the hello response
			Kind:  kinds[rng.Intn(len(kinds))],
		}},
		FailDialsFrom: -1,
	}
}

// FaultDialer wraps an inner Dialer, counting dials and arming each
// produced connection with its scheduled fault (if any).
type FaultDialer struct {
	Inner Dialer
	Plan  *FaultPlan
	// Faults, when set, counts every fault that actually fires, labeled
	// by kind — the chaos suite asserts its injections through /metrics
	// instead of groveling through logs. Register one per fleet with
	// ChaosFaultCounter.
	Faults *telemetry.CounterVec

	mu    sync.Mutex
	dials int
}

// Dials reports how many connections this dialer has produced.
func (d *FaultDialer) Dials() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials
}

// Dial implements Dialer.
func (d *FaultDialer) Dial() (io.ReadWriteCloser, error) {
	d.mu.Lock()
	idx := d.dials
	d.dials++
	d.mu.Unlock()
	if d.Plan.FailDialsFrom >= 0 && idx >= d.Plan.FailDialsFrom {
		return nil, fmt.Errorf("dist: fault injection: dial %d refused", idx)
	}
	conn, err := d.Inner.Dial()
	if err != nil {
		return nil, err
	}
	for _, spec := range d.Plan.Specs {
		if spec.Conn == idx && spec.Kind != FaultNone {
			return &faultConn{inner: conn, spec: spec, delay: d.Plan.Delay, faults: d.Faults}, nil
		}
	}
	return conn, nil
}

// faultConn applies one scheduled fault to the read side of a
// connection. It re-frames the inbound stream: whole frames are read
// from the inner connection, sabotaged when the schedule says so, and
// re-serialized for the caller — so a fault lands on an exact frame
// boundary (or deliberately inside one, for FaultKill) regardless of
// how the transport chunks reads. Writes pass through untouched.
type faultConn struct {
	inner  io.ReadWriteCloser
	spec   FaultSpec
	delay  time.Duration
	faults *telemetry.CounterVec

	frame int          // inbound frames read so far
	buf   bytes.Reader // re-serialized bytes awaiting the caller
	err   error        // sticky: surfaced once buf drains
}

func (f *faultConn) Read(p []byte) (int, error) {
	for f.buf.Len() == 0 {
		if f.err != nil {
			return 0, f.err
		}
		payload, err := readPayload(f.inner)
		if err != nil {
			return 0, err
		}
		f.frame++
		var out []byte
		if f.frame == f.spec.Frame {
			f.faults.With(f.spec.Kind.String()).Inc()
			switch f.spec.Kind {
			case FaultDrop:
				f.err = fmt.Errorf("dist: fault injection: connection dropped before frame %d", f.frame)
				f.inner.Close()
				return 0, f.err
			case FaultDelay:
				time.Sleep(f.delay)
				out = frameBytes(payload)
			case FaultGarble:
				// Flipping the payload's first octet corrupts the codec
				// discriminator itself: v2 responses lose their kind
				// byte, v1 JSON loses its '{'. Either way the client
				// must poison, not guess.
				payload[0] ^= 0xff
				out = frameBytes(payload)
			case FaultKill:
				whole := frameBytes(payload)
				out = whole[:4+len(payload)/2]
				f.err = fmt.Errorf("dist: fault injection: connection killed mid-frame %d", f.frame)
				f.inner.Close()
			default:
				out = frameBytes(payload)
			}
		} else {
			out = frameBytes(payload)
		}
		f.buf.Reset(out)
	}
	return f.buf.Read(p)
}

func (f *faultConn) Write(p []byte) (int, error) { return f.inner.Write(p) }
func (f *faultConn) Close() error                { return f.inner.Close() }

// frameBytes re-serializes one payload with its length prefix.
func frameBytes(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(out[:4], uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

// LatencyDialer wraps an inner Dialer and stalls every inbound frame by
// RTT — a deterministic stand-in for a wide-area link. Replica pools
// exist to push exploration outside the node's administrative domain,
// so their realistic cost model is "every call pays a WAN round trip";
// the replica-scaling benchmark runs its pool behind this dialer, and
// the speedup it measures is the pool hiding those round trips behind
// each other, which survives even a single-core host. Like faultConn,
// the stall lands on exact frame boundaries regardless of transport
// chunking; writes pass through untouched.
type LatencyDialer struct {
	Inner Dialer
	RTT   time.Duration
}

// Dial implements Dialer.
func (d LatencyDialer) Dial() (io.ReadWriteCloser, error) {
	conn, err := d.Inner.Dial()
	if err != nil {
		return nil, err
	}
	return &latencyConn{inner: conn, rtt: d.RTT}, nil
}

type latencyConn struct {
	inner io.ReadWriteCloser
	rtt   time.Duration
	buf   bytes.Reader
}

func (l *latencyConn) Read(p []byte) (int, error) {
	for l.buf.Len() == 0 {
		payload, err := readPayload(l.inner)
		if err != nil {
			return 0, err
		}
		time.Sleep(l.rtt)
		l.buf.Reset(frameBytes(payload))
	}
	return l.buf.Read(p)
}

func (l *latencyConn) Write(p []byte) (int, error) { return l.inner.Write(p) }
func (l *latencyConn) Close() error                { return l.inner.Close() }
