package dist

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"dice/internal/core"
)

// versionedCoordinator builds one loopback agent per node with the
// given protocol cap and connects a coordinator with the given options.
func versionedCoordinator(t *testing.T, topo *core.Topology, opts core.FederatedOptions, agentMax int, copts ...ConnOption) *Coordinator {
	t.Helper()
	var dialers []Dialer
	for _, n := range topo.Nodes {
		ag, err := NewAgent(topo, n.Name)
		if err != nil {
			t.Fatalf("agent %s: %v", n.Name, err)
		}
		ag.MaxProtoVersion = agentMax
		dialers = append(dialers, Loopback{Agent: ag})
	}
	c, err := Connect(topo, opts, dialers, copts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestProtoNegotiationMatrix is the version-skew acceptance: current
// coordinator against v1 JSON agents, against v2-capped binary agents
// (exercising the legacy base-layout encoders), a capped coordinator
// against current agents, and the call-and-wait discipline all
// negotiate the expected version and complete a round whose canonical
// snapshot is identical to the in-process backend's — findings,
// witnesses, minimal witnesses, violations and step counts line by
// line.
func TestProtoNegotiationMatrix(t *testing.T) {
	topo, err := core.LoadTopology("../../examples/federated/topo.json")
	if err != nil {
		t.Fatal(err)
	}
	fe, err := core.NewFederatedExperiment(topo, minimizeOpts())
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(inproc.Snapshot(), "\n")

	cases := []struct {
		name     string
		agentMax int
		copts    []ConnOption
		wantVer  int
	}{
		{"v4-both", 0, nil, ProtoV4},
		{"v4-coordinator-v1-agents", ProtoV1, nil, ProtoV1},
		{"v4-coordinator-v2-agents", ProtoV2, nil, ProtoV2},
		{"v4-coordinator-v3-agents", ProtoV3, nil, ProtoV3},
		{"v1-coordinator-v4-agents", 0, []ConnOption{WithMaxVersion(ProtoV1)}, ProtoV1},
		{"v2-coordinator-v4-agents", 0, []ConnOption{WithMaxVersion(ProtoV2)}, ProtoV2},
		{"v3-coordinator-v4-agents", 0, []ConnOption{WithMaxVersion(ProtoV3)}, ProtoV3},
		{"v4-call-and-wait", 0, []ConnOption{WithCallAndWait()}, ProtoV4},
		{"v2-call-and-wait", ProtoV2, []ConnOption{WithCallAndWait()}, ProtoV2},
		{"v1-call-and-wait", 0, []ConnOption{WithMaxVersion(ProtoV1), WithCallAndWait()}, ProtoV1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coord := versionedCoordinator(t, topo, minimizeOpts(), tc.agentMax, tc.copts...)
			for node, v := range coord.Versions() {
				if v != tc.wantVer {
					t.Fatalf("node %s negotiated v%d, want v%d", node, v, tc.wantVer)
				}
			}
			res, err := coord.Round()
			if err != nil {
				t.Fatal(err)
			}
			got := strings.Join(res.Snapshot(), "\n")
			if got != want {
				t.Errorf("snapshot differs from in-process:\n--- in-process ---\n%s\n--- %s ---\n%s", want, tc.name, got)
			}
		})
	}
}

// TestProtoNegotiationTCP runs the v1-fallback and v2 paths over real
// sockets: same round, same violations either way.
func TestProtoNegotiationTCP(t *testing.T) {
	run := func(t *testing.T, copts ...ConnOption) []string {
		topo := leakTopo3()
		var dialers []Dialer
		for _, n := range topo.Nodes {
			ag, err := NewAgent(topo, n.Name)
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { ln.Close() })
			go ag.ListenAndServe(ln) //nolint:errcheck // ends when ln closes
			dialers = append(dialers, TCPDialer{Addr: ln.Addr().String()})
		}
		coord, err := Connect(topo, fedOpts(), dialers, copts...)
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		res, err := coord.Round()
		if err != nil {
			t.Fatal(err)
		}
		return sortedViolations(res.Violations)
	}
	v2 := run(t)
	v1 := run(t, WithMaxVersion(ProtoV1), WithCallAndWait())
	if len(v2) == 0 {
		t.Fatal("TCP v2 round found no violations")
	}
	if strings.Join(v1, "\n") != strings.Join(v2, "\n") {
		t.Errorf("TCP violations differ across protocol versions:\n v2: %v\n v1: %v", v2, v1)
	}
}

// misbehavingServer answers every frame through respond, exercising the
// client's protocol-error handling.
func misbehavingServer(t *testing.T, respond func(conn io.Writer, req request)) *Client {
	t.Helper()
	cli, srv := net.Pipe()
	t.Cleanup(func() { cli.Close(); srv.Close() })
	go func() {
		for {
			payload, err := readPayload(srv)
			if err != nil {
				return
			}
			var req request
			if err := json.Unmarshal(payload, &req); err != nil {
				return
			}
			respond(srv, req)
		}
	}()
	return NewClient(cli)
}

// TestClientPoisonOnProtocolError is the Call-hardening satellite: an
// ID-mismatched or garbled response must poison the connection — the
// pending call fails with an error wrapping ErrClientBroken, and every
// later call fails immediately with the same sentinel instead of
// reading a desynchronized stream.
func TestClientPoisonOnProtocolError(t *testing.T) {
	cases := []struct {
		name    string
		respond func(conn io.Writer, req request)
	}{
		{"mismatched-id", func(conn io.Writer, req request) {
			body, _ := json.Marshal(response{ID: req.ID + 7})
			_ = writePayload(conn, body)
		}},
		{"garbled-frame", func(conn io.Writer, req request) {
			_ = writePayload(conn, []byte("}{ not a document"))
		}},
		{"garbled-result", func(conn io.Writer, req request) {
			body, _ := json.Marshal(response{ID: req.ID, Result: json.RawMessage(`{"shadow_id": "not a number"}`)})
			_ = writePayload(conn, body)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cl := misbehavingServer(t, tc.respond)
			var out ShadowOpenResult
			err := cl.Call(MethodShadowOpen, nil, &out)
			if err == nil {
				t.Fatal("call against a misbehaving server succeeded")
			}
			if !errors.Is(err, ErrClientBroken) {
				t.Fatalf("error %v does not wrap ErrClientBroken", err)
			}
			// The poison is sticky: no more frames are read or written.
			if err := cl.Call(MethodShadowOpen, nil, &out); !errors.Is(err, ErrClientBroken) {
				t.Fatalf("second call returned %v, want ErrClientBroken", err)
			}
		})
	}
}

// TestClientPipelinedCalls: many concurrent Go calls over one
// connection all complete and land on the right results — the response
// matcher keys strictly on IDs, not arrival order.
func TestClientPipelinedCalls(t *testing.T) {
	ag, err := NewAgent(leakTopo3(), "provider")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Loopback{Agent: ag}.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn)
	defer cl.Close()
	if _, err := cl.Handshake(ProtoLatest); err != nil {
		t.Fatal(err)
	}
	if cl.Version() != ProtoLatest {
		t.Fatalf("negotiated v%d, want v%d", cl.Version(), ProtoLatest)
	}
	const n = 64
	outs := make([]ShadowOpenResult, n)
	pend := make([]*Pending, n)
	for i := range pend {
		pend[i] = cl.Go(MethodShadowOpen, nil, &outs[i])
	}
	seen := make(map[uint64]bool, n)
	for i, p := range pend {
		if err := p.Wait(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if outs[i].ShadowID == 0 || seen[outs[i].ShadowID] {
			t.Fatalf("call %d: shadow id %d duplicated or zero", i, outs[i].ShadowID)
		}
		seen[outs[i].ShadowID] = true
	}
}
