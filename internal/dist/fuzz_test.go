package dist

import (
	"reflect"
	"testing"
)

// v2ParamsFor maps a method to a fresh instance of its params type (nil
// for parameterless methods); v2ResultTypes lists every result type a
// response body may carry. The fuzzer uses both to drive full typed
// decodes behind the envelope parse.
func v2ParamsFor(method string) v2Message {
	switch method {
	case MethodHello:
		return &HelloParams{}
	case MethodExplore:
		return &ExploreParams{}
	case MethodInjectWitness:
		return &InjectParams{}
	case MethodInjectWitnessBatch:
		return &InjectBatchParams{}
	case MethodShadowClose:
		return &ShadowCloseParams{}
	case MethodQueryOracle:
		return &QueryOracleParams{}
	case MethodReplay:
		return &ReplayParams{}
	}
	return nil
}

func v2ResultTypes() []v2Message {
	return []v2Message{
		&HelloResult{}, &CheckpointResult{}, &ExploreResult{}, &ReplayResult{},
		&ShadowOpenResult{}, &InjectResult{}, &InjectBatchResult{}, &QueryOracleResult{},
	}
}

// fuzzFrameSeeds covers the envelope regions and every message family:
// valid request and response payloads, truncations at the structural
// boundaries, corrupted kind/method/status octets, and a length field
// far beyond the payload.
func fuzzFrameSeeds(t interface{ Helper() }) [][]byte {
	t.Helper()
	seeds := [][]byte{{}, {frameRequestV2}, {frameResponseV2}, {0x7b}}
	for _, msg := range sampleMessages() {
		body := msg.appendV2(nil)
		req, err := appendRequestV2(nil, 99, MethodExplore, nil)
		if err != nil {
			panic(err)
		}
		req = append(req, body...)
		resp := appendResponseV2(nil, 99, "", msg)
		seeds = append(seeds, req, resp,
			req[:len(req)/2], resp[:len(resp)/2])
	}
	full, err := appendRequestV2(nil, 7, MethodInjectWitnessBatch,
		&InjectBatchParams{ShadowID: 1, Deliveries: []BatchDelivery{{From: "as65001", Msg: []byte{1, 2, 3}}}})
	if err != nil {
		panic(err)
	}
	badMethod := append([]byte(nil), full...)
	badMethod[2] = 0x7f // method code nothing maps to
	badKind := append([]byte(nil), full...)
	badKind[0] = 0xd9
	hugeCount := appendResponseV2(nil, 3, "", nil)
	hugeCount = append(hugeCount, 0xff, 0xff, 0xff, 0xff, 0x0f) // count with no elements behind it
	errResp := appendResponseV2(nil, 4, "dist: boom", nil)
	badStatus := append([]byte(nil), errResp...)
	badStatus[2] = 0x02
	return append(seeds, full, badMethod, badKind, hugeCount, errResp, badStatus)
}

// FuzzDecodeFrame: whatever payload bytes arrive, the v2 envelope
// parsers and every typed body decode must either succeed or return an
// error — never panic, never over-allocate on a lying count. Anything
// that parses must re-encode and re-parse to the same value (the codec
// is canonical up to varint minimality, which decode restores).
func FuzzDecodeFrame(f *testing.F) {
	for _, seed := range fuzzFrameSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if id, method, body, err := parseRequestV2(data); err == nil {
			params := v2ParamsFor(method)
			if derr := decodeBodyV2(body, params); derr == nil && params != nil {
				re, err := appendRequestV2(nil, id, method, params)
				if err != nil {
					t.Fatalf("re-encode of parsed %s request failed: %v", method, err)
				}
				_, m2, body2, err := parseRequestV2(re)
				if err != nil || m2 != method {
					t.Fatalf("re-parse of %s request: method %q err %v", method, m2, err)
				}
				again := v2ParamsFor(method)
				if err := decodeBodyV2(body2, again); err != nil {
					t.Fatalf("re-decode of %s params: %v", method, err)
				}
				if !reflect.DeepEqual(params, again) {
					t.Fatalf("%s params not canonical:\n first: %+v\n again: %+v", method, params, again)
				}
			}
		}
		if id, errMsg, body, err := parseResponseV2(data); err == nil && errMsg == "" {
			for _, result := range v2ResultTypes() {
				if derr := decodeBodyV2(body, result); derr != nil {
					continue
				}
				re := appendResponseV2(nil, id, "", result)
				_, _, body2, err := parseResponseV2(re)
				if err != nil {
					t.Fatalf("re-parse of %T response: %v", result, err)
				}
				again := freshLike(result)
				if err := decodeBodyV2(body2, again); err != nil {
					t.Fatalf("re-decode of %T result: %v", result, err)
				}
				if !reflect.DeepEqual(result, again) {
					t.Fatalf("%T result not canonical:\n first: %+v\n again: %+v", result, result, again)
				}
			}
		}
	})
}

// TestV2RejectsSeedCorpus pins the malformed seeds as plain unit cases:
// each must error on at least one envelope parse without panicking,
// even when the fuzzer is not run.
func TestV2RejectsSeedCorpus(t *testing.T) {
	for i, seed := range fuzzFrameSeeds(t) {
		_, _, _, reqErr := parseRequestV2(seed)
		_, _, _, respErr := parseResponseV2(seed)
		if reqErr == nil && respErr == nil {
			t.Errorf("seed %d parsed as both a request and a response", i)
		}
	}
}
