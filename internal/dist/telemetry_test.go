package dist

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dice/internal/core"
	"dice/internal/telemetry"
)

// errDraining is the readiness error a draining server reports.
var errDraining = errors.New("draining")

// healthzCode probes a Health handler the way an HTTP load balancer
// would, without binding a socket.
func healthzCode(h *telemetry.Health) int {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	return rec.Code
}

// TestHealthzDuringDrain: the readiness check flips to 503 the moment a
// graceful shutdown starts — while the request already in flight still
// completes. This is the dicenode SIGTERM sequence with the signal
// handler replaced by a direct Shutdown call.
func TestHealthzDuringDrain(t *testing.T) {
	leakCheck(t)
	ag, err := NewAgent(leakTopo3(), "provider")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ag.EnableTelemetry(reg)
	health := telemetry.NewHealth()
	health.AddReadiness("drain", func() error {
		if ag.Draining() {
			return errDraining
		}
		return nil
	})
	if code := healthzCode(health); code != http.StatusOK {
		t.Fatalf("healthz before drain = %d, want %d", code, http.StatusOK)
	}

	conn, err := Loopback{Agent: ag}.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn)
	defer cl.Close()
	if _, err := cl.Handshake(ProtoLatest); err != nil {
		t.Fatal(err)
	}
	var ex ExploreResult
	p := cl.Go(MethodExplore, &ExploreParams{
		Peer: "customer", Scenario: core.ScenarioRouteLeak, Explicit: true, MaxRuns: 500,
	}, &ex)
	// Let the agent's reader pull the request off the wire before the
	// drain starts; readiness must flip while this request is in flight.
	time.Sleep(100 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		ag.Shutdown(5 * time.Second)
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for healthzCode(health) != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatalf("healthz never flipped to 503 during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("in-flight explore failed during drain: %v", err)
	}
	if ex.Runs == 0 {
		t.Error("drained explore answered with zero runs")
	}
	cl.Close()
	<-done
	if code := healthzCode(health); code != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain = %d, want %d", code, http.StatusServiceUnavailable)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dice_rpc_server_draining 1") {
		t.Errorf("exposition missing dice_rpc_server_draining 1:\n%s", buf.String())
	}
}

// TestFleetMetricsEndpoint is the observability acceptance: a 3-agent +
// 2-replica fleet over real TCP sockets, a traced round, and a GET
// /metrics that returns valid exposition covering the RPC, coordinator,
// replica-pool and health families.
func TestFleetMetricsEndpoint(t *testing.T) {
	topo := leakTopo3()
	reg := telemetry.NewRegistry()
	var dialers []Dialer
	for _, n := range topo.Nodes {
		ag, err := NewAgent(topo, n.Name)
		if err != nil {
			t.Fatal(err)
		}
		// Sharing one registry across the in-process fleet also
		// exercises idempotent family registration.
		ag.EnableTelemetry(reg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go ag.ListenAndServe(ln) //nolint:errcheck // ends when ln closes
		dialers = append(dialers, TCPDialer{Addr: ln.Addr().String()})
	}
	pool := &ReplicaPool{}
	for i := 0; i < 2; i++ {
		r := NewReplica()
		r.EnableTelemetry(reg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go r.ListenAndServe(ln) //nolint:errcheck // ends when ln closes
		pool.Dialers = append(pool.Dialers, TCPDialer{Addr: ln.Addr().String()})
	}
	tracer := telemetry.NewTracer()
	coord, err := Connect(topo, fedOpts(), dialers,
		WithTelemetry(NewMetrics(reg)), WithTracer(tracer), WithReplicas(pool))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.Round(); err != nil {
		t.Fatal(err)
	}
	if tracer.Len() == 0 {
		t.Error("traced round recorded no spans")
	}

	srv := httptest.NewServer(telemetry.NewMux(reg, telemetry.NewHealth()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	text := string(body)
	for _, family := range []string{
		"dice_rpc_client_calls_total",
		"dice_rpc_client_latency_seconds_bucket",
		"dice_rpc_server_requests_total",
		"dice_coordinator_rounds_total 1",
		"dice_coordinator_round_duration_seconds_count 1",
		"dice_coordinator_witnesses_injected_total",
		"dice_replica_pool_workers",
		"dice_agent_checkpoint_pages_total",
		"dice_replica_explores_total",
		`dice_node_health{node="provider",state="healthy"} 1`,
		`dice_rpc_client_wire_version{node="provider"}`,
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition missing %q", family)
		}
	}
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("GET /healthz = %d, want 200", hresp.StatusCode)
	}
}

// TestChaosFaultCountersExported: faults the chaos dialer injects are
// assertable through the metrics exposition instead of test-side
// bookkeeping — each fired fault increments dice_chaos_faults_total
// with its kind label.
func TestChaosFaultCountersExported(t *testing.T) {
	leakCheck(t)
	topo := leakTopo3()
	reg := telemetry.NewRegistry()
	faults := ChaosFaultCounter(reg)
	var dialers []Dialer
	for _, n := range topo.Nodes {
		ag, err := NewAgent(topo, n.Name)
		if err != nil {
			t.Fatal(err)
		}
		dialers = append(dialers, &FaultDialer{
			Inner:  Loopback{Agent: ag},
			Plan:   &FaultPlan{Specs: []FaultSpec{{Conn: 0, Frame: 3, Kind: FaultGarble}}, FailDialsFrom: -1},
			Faults: faults,
		})
	}
	coord, err := Connect(topo, fedOpts(), dialers, WithRetryPolicy(chaosPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.Round(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `dice_chaos_faults_total{kind="garble"} 3`) {
		t.Errorf("exposition missing the 3 injected garble faults:\n%s", buf.String())
	}
}
