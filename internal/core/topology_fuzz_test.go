package core_test

// The fuzz target lives in an external test package so the seed corpus
// can include internal/topo generator output (topo imports core).

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dice/internal/core"
	"dice/internal/topo"
)

// FuzzParseTopology: malformed topology JSON must error, never panic,
// and anything that parses must re-encode to a form that parses to the
// same topology (the generator round-trip contract). Seeds: every
// committed example topology plus generated AS topologies.
func FuzzParseTopology(f *testing.F) {
	examples, err := filepath.Glob("../../examples/*/topo.json")
	if err != nil || len(examples) == 0 {
		f.Fatalf("no example topologies found: %v", err)
	}
	for _, path := range examples {
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	for _, spec := range []topo.Spec{
		{Seed: 1, Nodes: topo.MinNodes},
		{Seed: 2, Nodes: 40},
		{Seed: 3, Nodes: 40, CoreSize: 3, TransitFrac: 0.5},
	} {
		t, _, err := topo.Generate(spec)
		if err != nil {
			f.Fatal(err)
		}
		raw, err := topo.EncodeJSON(t)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{"name":"x","nodes":[],"edges":[]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := core.ParseTopology(data)
		if err != nil {
			return
		}
		re, err := topo.EncodeJSON(parsed)
		if err != nil {
			t.Fatalf("re-encode of parsed topology failed: %v", err)
		}
		again, err := core.ParseTopology(re)
		if err != nil {
			t.Fatalf("re-encoded topology rejected: %v", err)
		}
		re2, err := topo.EncodeJSON(again)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("parse → encode not a fixpoint")
		}
	})
}
