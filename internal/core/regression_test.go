package core

import (
	"strings"
	"testing"
	"time"

	"dice/internal/bgp"
	"dice/internal/minimize"
	"dice/internal/netaddr"
	"dice/internal/trace"
)

// --- Witness minimization over real example topologies -----------------------

// TestMinimizeWitnessEndToEnd is the acceptance criterion for the
// minimization loop: on examples/routeleak and examples/badgadget,
// every finding whose witness triggered cross-node violations carries a
// MinimalWitness that (a) still triggers the same oracles with the same
// attribution when re-injected, (b) is no larger than the original in
// any measured dimension, and (c) at least one finding per topology
// actually shrinks.
func TestMinimizeWitnessEndToEnd(t *testing.T) {
	for _, path := range []string{
		"../../examples/routeleak/topo.json",
		"../../examples/badgadget/topo.json",
	} {
		t.Run(path, func(t *testing.T) {
			topo, err := LoadTopology(path)
			if err != nil {
				t.Fatal(err)
			}
			opts := fedOpts()
			opts.Minimize = true
			fe, err := NewFederatedExperiment(topo, opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := fe.Round()
			if err != nil {
				t.Fatal(err)
			}

			shrunk, minimized := 0, 0
			for _, tr := range res.Targets {
				if tr.Err != nil {
					continue
				}
				trShrunk, trMinimized := 0, 0
				for _, f := range tr.Result.Findings {
					if f.Witness == nil {
						continue
					}
					orig, err := fe.CheckWitness(tr.Node, tr.Peer, f.Witness)
					if err != nil {
						t.Fatal(err)
					}
					if len(orig.Violations) == 0 {
						if f.MinimalWitness != nil {
							t.Errorf("%s: witness triggered nothing but was minimized", f.Prefix)
						}
						continue
					}
					if f.MinimalWitness == nil {
						t.Errorf("%s: violating witness has no MinimalWitness", f.Prefix)
						continue
					}
					minimized++
					trMinimized++

					// (a) The minimal witness reproduces every original
					// violation with the same attribution fingerprint.
					want := map[string]bool{}
					for _, v := range orig.Violations {
						want[ViolationFingerprint(v)] = true
					}
					again, err := fe.CheckWitness(tr.Node, tr.Peer, f.MinimalWitness)
					if err != nil {
						t.Fatal(err)
					}
					if !CoversFingerprints(again.Violations, want) {
						t.Errorf("%s: minimal witness %s lost violations (want %v, got %v)",
							f.Prefix, minimize.Render(f.MinimalWitness), want, again.Violations)
					}

					// (b) Never larger in any dimension.
					ws, ms := minimize.SizeOf(f.Witness), minimize.SizeOf(f.MinimalWitness)
					if ms.LargerThan(ws) {
						t.Errorf("%s: minimal witness grew: %+v -> %+v", f.Prefix, ws, ms)
					}
					if ms != ws {
						shrunk++
						trShrunk++
					}
				}
				// Minimization stats are per target.
				if tr.Result.Minimization != nil {
					st := tr.Result.Minimization
					if st.Witnesses != trMinimized {
						t.Errorf("stats count %d witnesses, observed %d minimized findings", st.Witnesses, trMinimized)
					}
					if st.Shrunk != trShrunk {
						t.Errorf("stats count %d shrunk, observed %d", st.Shrunk, trShrunk)
					}
				}
			}
			if minimized == 0 {
				t.Fatal("round minimized no witnesses (no violating findings?)")
			}
			// (c) Delta debugging must achieve something on these examples:
			// their witnesses carry a leak community plus solver-chosen
			// incidentals, so at least one must come out strictly smaller.
			if shrunk == 0 {
				t.Error("no finding's witness actually shrank")
			}
		})
	}
}

// TestMinimizeOffLeavesFindingsBare: without FederatedOptions.Minimize
// the round reports witnesses but no MinimalWitness and no stats.
func TestMinimizeOffLeavesFindingsBare(t *testing.T) {
	fe, err := NewFederatedExperiment(leakTopo3AS(false), fedOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Targets {
		if tr.Err != nil {
			continue
		}
		if tr.Result.Minimization != nil {
			t.Error("minimization stats present with Minimize off")
		}
		for _, f := range tr.Result.Findings {
			if f.MinimalWitness != nil {
				t.Errorf("%s: MinimalWitness set with Minimize off", f.Prefix)
			}
		}
	}
}

// --- Violation fingerprints --------------------------------------------------

func TestViolationFingerprint(t *testing.T) {
	base := FederatedViolation{Kind: "route-leak", Node: "upstream", Source: "provider", Peer: "customer",
		Prefix: netaddr.MustParsePrefix("10.7.0.0/16"), Hops: 2, Detail: "escaped"}

	// Witness-dependent fields (prefix span, hop count, detail text)
	// legitimately change as the witness shrinks — same fingerprint.
	shrunkForm := base
	shrunkForm.Prefix = netaddr.MustParsePrefix("10.0.0.0/8")
	shrunkForm.Hops = 1
	shrunkForm.Detail = "escaped (wider)"
	if ViolationFingerprint(base) != ViolationFingerprint(shrunkForm) {
		t.Error("fingerprint depends on witness-dependent fields")
	}

	// Attribution fields are identity.
	other := base
	other.Node = "customer"
	if ViolationFingerprint(base) == ViolationFingerprint(other) {
		t.Error("fingerprint ignores the observing node")
	}

	want := map[string]bool{ViolationFingerprint(base): true}
	if !CoversFingerprints([]FederatedViolation{shrunkForm}, want) {
		t.Error("shrunk form does not cover the original")
	}
	if CoversFingerprints([]FederatedViolation{other}, want) {
		t.Error("differently-attributed violation covers the original")
	}
	if !CoversFingerprints([]FederatedViolation{other, base}, want) {
		t.Error("superset does not cover")
	}
}

// --- Trace replay into the live fabric ---------------------------------------

// replayRecords builds a hand-crafted history on the customer→provider
// ingress of leakTopo3AS: two acceptable dump prefixes, one the import
// filter rejects, then an announce and a withdraw at distinct offsets.
func replayRecords() []trace.Record {
	attrs := func() bgp.Attrs {
		return bgp.Attrs{
			HasOrigin:  true,
			Origin:     bgp.OriginIGP,
			ASPath:     bgp.ASPath{{Type: bgp.ASSequence, ASNs: []uint16{65001, 64999}}},
			HasNextHop: true,
			NextHop:    netaddr.AddrFrom4(10, 0, 0, 1),
		}
	}
	return []trace.Record{
		{At: 0, Kind: trace.KindDump, Prefix: netaddr.MustParsePrefix("10.55.1.0/24"), Attrs: attrs()},
		{At: 0, Kind: trace.KindDump, Prefix: netaddr.MustParsePrefix("10.55.2.0/24"), Attrs: attrs()},
		{At: 0, Kind: trace.KindDump, Prefix: netaddr.MustParsePrefix("172.16.0.0/24"), Attrs: attrs()},
		{At: 100 * time.Millisecond, Kind: trace.KindAnnounce, Prefix: netaddr.MustParsePrefix("10.55.3.0/24"), Attrs: attrs()},
		{At: 200 * time.Millisecond, Kind: trace.KindWithdraw, Prefix: netaddr.MustParsePrefix("10.55.1.0/24")},
	}
}

func TestReplayTraceDrivesFabric(t *testing.T) {
	fe, err := NewFederatedExperiment(leakTopo3AS(false), fedOpts())
	if err != nil {
		t.Fatal(err)
	}
	prov := fe.Fabric.Routers["provider"]
	pre := prov.RIB().Prefixes()

	records := replayRecords()
	n, err := fe.Replay("provider", "customer", records)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(records) {
		t.Fatalf("replayed %d of %d records", n, len(records))
	}

	// Accepted dump + announce installed; the withdraw took its prefix
	// back out; the filtered prefix never made it in.
	for p, want := range map[string]bool{
		"10.55.1.0/24":  false, // withdrawn at 200ms
		"10.55.2.0/24":  true,
		"10.55.3.0/24":  true,  // announced at 100ms
		"172.16.0.0/24": false, // rejected by customer_in
	} {
		got := prov.RIB().Best(netaddr.MustParsePrefix(p)) != nil
		if got != want {
			t.Errorf("provider best(%s) = %v, want %v", p, got, want)
		}
	}
	if got := prov.RIB().Prefixes(); got != pre+2 {
		t.Errorf("provider table %d prefixes, want %d", got, pre+2)
	}

	// The provider's accept-all export leaked the replayed routes on to
	// the upstream over the live fabric.
	if fe.Fabric.Routers["upstream"].RIB().Best(netaddr.MustParsePrefix("10.55.3.0/24")) == nil {
		t.Error("replayed announce did not propagate to the upstream")
	}

	// The replayed history is what exploration now seeds from: the last
	// message observed is the withdraw, the announcement template is the
	// last NLRI-carrying update before it.
	if ob := prov.LastObserved("customer"); ob == nil || len(ob.Withdrawn) != 1 || ob.Withdrawn[0] != netaddr.MustParsePrefix("10.55.1.0/24") {
		t.Errorf("last observed is not the final replayed record: %+v", ob)
	}
	seed := prov.LastAnnounced("customer")
	if seed == nil || len(seed.NLRI) != 1 || seed.NLRI[0] != netaddr.MustParsePrefix("10.55.3.0/24") {
		t.Errorf("announcement seed is not the replayed announce: %+v", seed)
	}

	// And a round runs cleanly on top of the withdraw-terminated history.
	res, err := fe.Round()
	if err != nil {
		t.Fatalf("round over replayed history: %v", err)
	}
	if len(res.Targets) != 1 || res.Targets[0].Err != nil {
		t.Fatalf("replayed round targets: %+v", res.Targets)
	}
}

func TestReplayTraceErrors(t *testing.T) {
	fe, err := NewFederatedExperiment(leakTopo3AS(false), fedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fe.Replay("provider", "nonesuch", replayRecords()); err == nil {
		t.Error("unknown ingress peer accepted")
	}
	if _, err := fe.Replay("customer", "upstream", replayRecords()); err == nil {
		t.Error("replay accepted a peering with no session")
	}
}

// --- Snapshot rendering ------------------------------------------------------

// TestSnapshotShape: the canonical snapshot opens with the header,
// groups sorted findings (with their witness sub-lines attached) under
// their target, and closes with sorted violations plus the summary.
func TestSnapshotShape(t *testing.T) {
	opts := fedOpts()
	opts.Minimize = true
	fe, err := NewFederatedExperiment(leakTopo3AS(false), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	lines := res.Snapshot()
	if lines[0] != SnapshotHeader {
		t.Fatalf("snapshot starts with %q", lines[0])
	}
	var findings, witnesses, minimals []string
	sawTarget, sawSummary := false, false
	for _, l := range lines[1:] {
		switch {
		case strings.HasPrefix(l, "target provider<-customer"):
			sawTarget = true
		case strings.HasPrefix(l, "  finding "):
			findings = append(findings, l)
		case strings.HasPrefix(l, "    witness "):
			witnesses = append(witnesses, l)
		case strings.HasPrefix(l, "    minimal "):
			minimals = append(minimals, l)
		case strings.HasPrefix(l, "summary witnesses_injected="):
			sawSummary = true
		}
	}
	if !sawTarget || !sawSummary {
		t.Fatalf("snapshot missing target or summary:\n%s", strings.Join(lines, "\n"))
	}
	if len(findings) == 0 || len(witnesses) == 0 || len(minimals) == 0 {
		t.Fatalf("snapshot missing finding/witness/minimal lines:\n%s", strings.Join(lines, "\n"))
	}
	for i := 1; i < len(findings); i++ {
		if findings[i-1] > findings[i] {
			t.Errorf("findings not sorted: %q before %q", findings[i-1], findings[i])
		}
	}

	// Rendering is a pure function of the result.
	again := res.Snapshot()
	if strings.Join(lines, "\n") != strings.Join(again, "\n") {
		t.Error("Snapshot is not deterministic over the same result")
	}
}
