package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/minimize"
	"dice/internal/netaddr"
	"dice/internal/netsim"
	"dice/internal/prop"
	"dice/internal/rib"
	"dice/internal/router"
)

// This file is the federated exploration subsystem — the paper's actual
// system model: online testing across a topology of independently
// administered nodes, not one router in isolation. A federated round
//
//  1. runs per-node checkpoint/clone concolic explorations (one frontier
//     shard per node over a shared worker pool — concolic.ExploreFleet),
//  2. propagates the concrete UPDATE/WITHDRAW witnesses the per-node
//     oracles produce between nodes along topology edges, over a shadow
//     copy of the fabric so the live nodes stay unperturbed, and
//  3. evaluates cross-node oracles over the propagated state: route
//     leak (an advertisement escaping a no-export policy boundary),
//     persistent oscillation (no convergence within a bounded number of
//     propagation steps), and multi-hop blackhole (traffic from a remote
//     node forward-traces to a dead end).

// FederatedScenario is the optional Scenario extension federated rounds
// use for cross-node confirmation: scenarios that can materialize a
// finding's concrete witness announcement implement it. Findings of
// scenarios that do not are still reported locally, just never injected.
type FederatedScenario interface {
	Scenario
	// WitnessUpdate builds the concrete UPDATE the finding's peer would
	// send — the message injected into the shadow fabric.
	WitnessUpdate(seed any, f Finding) *bgp.Update
}

// FederatedOptions configures a FederatedExperiment.
type FederatedOptions struct {
	// Engine tunes every node's engine (budgets, strategy). Workers is
	// ignored here: the pool is shared, sized by Workers below.
	Engine concolic.Options
	// Workers is the shared exploration worker pool (0 = 1).
	Workers int
	// DefaultScenario applies to explore targets that don't name one
	// ("" = routeleak).
	DefaultScenario string
	// MaxPropagationSteps bounds each witness's shadow propagation;
	// hitting the bound with deliveries still pending flags
	// persistent-oscillation (0 = 4096).
	MaxPropagationSteps int
	// MaxWitnesses bounds cross-node injections per round (0 = 16).
	MaxWitnesses int
	// ReuseState keeps per-node cross-round exploration state, so
	// repeated federated rounds are incremental per node.
	ReuseState bool
	// Minimize delta-debugs every injected witness that triggered
	// cross-node violations down to a minimal still-failing announcement
	// (internal/minimize), re-validating each candidate by shadow
	// injection; the result lands in Finding.MinimalWitness and the
	// reduction stats in the target's Result.Minimization.
	Minimize bool
	// MinimizeBudget bounds candidate injections per witness (0 = 256).
	MinimizeBudget int
	// Properties are extra cross-node invariants in the internal/prop
	// language (beyond the topology's own `properties` section), e.g.
	// from cmd/dice -properties files. Entries may hold several property
	// definitions each; kinds matching built-in oracles replace them.
	Properties []string
}

// FederatedTargetResult is one node's share of a federated round.
type FederatedTargetResult struct {
	Node     string
	Peer     string
	Scenario string
	Result   *Result
	// Err records a skipped defaulted target (e.g. no observed seed on
	// that peering yet); explicit targets fail the round instead.
	Err error
}

// FederatedViolation is one cross-node oracle violation.
type FederatedViolation struct {
	// Kind is "route-leak", "persistent-oscillation",
	// "multi-hop-blackhole" or "stale-route".
	Kind string
	// Node is where the violation is observed; Source is the explored
	// node whose policy let the witness through; Peer sent the witness.
	Node   string
	Source string
	Peer   string
	Prefix netaddr.Prefix
	// Hops is the forwarding distance from Node to the trace terminal.
	Hops   int
	Detail string
	// Waves counts the distinct virtual-time delivery waves the bounded
	// propagation ran (persistent-oscillation only); WaveTail holds the
	// per-wave delivery counts of the final waves (up to WaveTailLen).
	// A sustained tail means the system genuinely diverges; a decaying
	// one means it was still converging — slowly — when the bound hit.
	Waves    int
	WaveTail []int
}

func (v FederatedViolation) String() string {
	return fmt.Sprintf("%s: %s at %s (witness from %s via %s, %d hops): %s",
		v.Kind, v.Prefix, v.Node, v.Peer, v.Source, v.Hops, v.Detail)
}

// FederatedResult is the outcome of one federated round.
type FederatedResult struct {
	Targets           []FederatedTargetResult
	Violations        []FederatedViolation
	WitnessesInjected int
	WitnessesSkipped  int // dropped by the MaxWitnesses cap
	PropagationSteps  int // shadow deliveries across all witnesses
	Elapsed           time.Duration
}

// FederatedExperiment drives repeated federated rounds over one fabric.
type FederatedExperiment struct {
	Topo   *Topology
	Fabric *Fabric

	opts     FederatedOptions
	states   *concolic.StateMap // per-node cross-round state, keyed node/scenario/peer
	boundary uint32
	props    []*prop.Compiled  // merged oracle set (builtins + topology + options)
	nodeAS   map[string]uint16 // node name → local AS, for `via` assertions
}

// NewFederatedExperiment instantiates the topology and prepares rounds.
func NewFederatedExperiment(t *Topology, opts FederatedOptions) (*FederatedExperiment, error) {
	if opts.DefaultScenario == "" {
		opts.DefaultScenario = ScenarioRouteLeak
	}
	if opts.MaxPropagationSteps <= 0 {
		opts.MaxPropagationSteps = 4096
	}
	if opts.MaxWitnesses <= 0 {
		opts.MaxWitnesses = 16
	}
	if opts.Engine.State != nil {
		// One ExploreState shared by every node would let fingerprint-
		// identical paths on different nodes mask each other's exploration
		// (structurally identical filters fold to the same signatures).
		// Per-node memory is what ReuseState provides.
		return nil, fmt.Errorf("federated: Engine.State cannot be shared across nodes; set ReuseState for per-node state")
	}
	boundary, err := t.BoundaryCommunity()
	if err != nil {
		return nil, err
	}
	props, err := CompileProperties(t, opts.Properties)
	if err != nil {
		return nil, err
	}
	fabric, err := t.Build()
	if err != nil {
		return nil, err
	}
	nodeAS := make(map[string]uint16, len(fabric.Routers))
	for name, r := range fabric.Routers {
		nodeAS[name] = r.Config().LocalAS
	}
	return &FederatedExperiment{
		Topo:     t,
		Fabric:   fabric,
		opts:     opts,
		states:   concolic.NewStateMap(),
		boundary: boundary,
		props:    props,
		nodeAS:   nodeAS,
	}, nil
}

// CompileProperties compiles the topology's `properties` section plus
// extra property sources and merges them over the built-in oracles.
// Both backends (this experiment and the distributed coordinator)
// resolve their oracle set through here, so they cannot disagree on
// what a round checks.
func CompileProperties(t *Topology, extra []string) ([]*prop.Compiled, error) {
	srcs := append(append([]string{}, t.Properties...), extra...)
	custom, err := prop.CompileSources(srcs)
	if err != nil {
		return nil, fmt.Errorf("federated: %w", err)
	}
	return prop.Merge(custom), nil
}

// Properties exposes the experiment's merged oracle set.
func (fe *FederatedExperiment) Properties() []*prop.Compiled { return fe.props }

// State exposes the per-node cross-round state map (nil entries until a
// ReuseState round ran for that node).
func (fe *FederatedExperiment) States() *concolic.StateMap { return fe.states }

// ResolvedTarget is one resolved exploration target of a federated round.
type ResolvedTarget struct {
	Node, Peer, Scenario string
	// Explicit targets come from the topology's explore list; a seed
	// failure on one fails the round, while defaulted targets skip.
	Explicit bool
}

// ResolveTargets resolves a round's exploration targets: the topology's
// explore list when present, otherwise every edge in both directions.
// Targets with an empty scenario take defaultScenario. Both the
// in-process FederatedExperiment and the distributed coordinator
// (internal/dist) resolve through here, so the two backends agree on
// what a round explores.
func (t *Topology) ResolveTargets(defaultScenario string) []ResolvedTarget {
	var out []ResolvedTarget
	if len(t.Explore) > 0 {
		for _, x := range t.Explore {
			sc := x.Scenario
			if sc == "" {
				sc = defaultScenario
			}
			out = append(out, ResolvedTarget{Node: x.Node, Peer: x.Peer, Scenario: sc, Explicit: true})
		}
		return out
	}
	for _, e := range t.Edges {
		out = append(out, ResolvedTarget{Node: e.A, Peer: e.B, Scenario: defaultScenario})
		out = append(out, ResolvedTarget{Node: e.B, Peer: e.A, Scenario: defaultScenario})
	}
	return out
}

// SeedUnavailableError marks a target whose scenario found nothing to
// seed from (e.g. no observed UPDATE on that peering yet). Callers
// treat it as "skip" for defaulted targets and as a round failure for
// explicit ones.
type SeedUnavailableError struct{ Err error }

func (e *SeedUnavailableError) Error() string { return e.Err.Error() }
func (e *SeedUnavailableError) Unwrap() error { return e.Err }

// TargetPrep is one resolved target's prepared exploration: the
// checkpoint clone of the live node, the scenario seed, and a declared
// engine whose handler executes against COW forks of the checkpoint.
// Both federated backends — the in-process FederatedExperiment and the
// distributed node agent (internal/dist) — prepare targets through
// PrepareTarget, so the per-target pipeline (and with it the parity
// contract) lives in exactly one place.
type TargetPrep struct {
	Target     ResolvedTarget
	Scenario   Scenario
	Seed       any
	Engine     *concolic.Engine
	Checkpoint *router.Router
	Sink       *netsim.CaptureSink
}

// PrepareTarget performs the shared per-target prep: scenario lookup,
// seed derivation from the live node (a missing seed returns
// *SeedUnavailableError), checkpoint clone with capture sink, handler
// over COW clones, warm cross-round state attachment (states keyed
// node/scenario/peer when reuse is set), and symbolic declaration.
// The returned engine is ready to explore — solo (Engine.Explore, the
// agent's path) or as a fleet member (the in-process path).
func PrepareTarget(live *router.Router, tg ResolvedTarget, engOpts concolic.Options, states *concolic.StateMap, reuse bool) (*TargetPrep, error) {
	sc, ok := LookupScenario(tg.Scenario)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (registered: %v)", tg.Scenario, ScenarioNames())
	}
	seed, err := sc.Seed(live, tg.Peer)
	if err != nil {
		return nil, &SeedUnavailableError{Err: err}
	}
	return prepareSeeded(live, tg, sc, seed, engOpts, states, reuse)
}

// PrepareTargetSeeded is PrepareTarget with the scenario seed supplied by
// the caller instead of derived from the live node. This is the replica
// entry point: a checkpoint-restored router has no observation history
// (DecodeState rebuilds routes and sessions, not the last-seen UPDATE
// templates), so the seed ships over the wire alongside the checkpoint.
// Warm cross-round memory, when any, arrives pre-attached on
// engOpts.State rather than through a StateMap.
func PrepareTargetSeeded(live *router.Router, tg ResolvedTarget, seed any, engOpts concolic.Options) (*TargetPrep, error) {
	sc, ok := LookupScenario(tg.Scenario)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (registered: %v)", tg.Scenario, ScenarioNames())
	}
	if seed == nil {
		return nil, &SeedUnavailableError{Err: fmt.Errorf("no seed supplied for %s/%s", tg.Node, tg.Peer)}
	}
	return prepareSeeded(live, tg, sc, seed, engOpts, nil, false)
}

func prepareSeeded(live *router.Router, tg ResolvedTarget, sc Scenario, seed any, engOpts concolic.Options, states *concolic.StateMap, reuse bool) (*TargetPrep, error) {
	sink := netsim.NewCaptureSink()
	ckpt := live.Clone(sink)
	handler := func(rc *concolic.RunContext) any {
		return sc.Execute(rc, ckpt.CloneCOW(sink), tg.Peer, seed)
	}
	if reuse {
		engOpts.State = states.For(tg.Node + "/" + tg.Scenario + "/" + tg.Peer)
	}
	eng := concolic.NewEngine(handler, engOpts)
	if err := sc.Declare(eng, seed); err != nil {
		return nil, err
	}
	return &TargetPrep{Target: tg, Scenario: sc, Seed: seed, Engine: eng, Checkpoint: ckpt, Sink: sink}, nil
}

// Analyze runs the scenario's oracles over a finished exploration and
// returns the target's Result — the shared tail of the per-target
// pipeline (boundary plumbed to the routeleak oracle, checkpoint-time
// state as the comparison baseline, witness validation inside).
func (p *TargetPrep) Analyze(live *router.Router, engOpts concolic.Options, boundary uint32, rep *concolic.Report) *Result {
	r := &Result{
		Scenario:         p.Scenario.Name(),
		Report:           rep,
		CapturedMessages: p.Sink.Count(),
	}
	d := New(live, Options{Engine: engOpts, LeakBoundaryCommunity: boundary})
	p.Scenario.Analyze(d, &Round{Peer: p.Target.Peer, Seed: p.Seed, Engine: p.Engine, Checkpoint: p.Checkpoint}, r)
	return r
}

// WitnessRef is one materialized witness announcement together with the
// index of the finding it came from, so per-witness artifacts (the
// minimal witness, in particular) land back on the right finding.
type WitnessRef struct {
	// Finding indexes Result.Findings.
	Finding int
	Update  *bgp.Update
}

// WitnessRefs materializes the analyzed result's validated findings as
// concrete announcements, in finding order (nil when the scenario is
// not federated). Deduplication is round-level and stays with the
// caller (WitnessKey).
func (p *TargetPrep) WitnessRefs(r *Result) []WitnessRef {
	ws, ok := p.Scenario.(FederatedScenario)
	if !ok {
		return nil
	}
	var out []WitnessRef
	for i, f := range r.Findings {
		if !f.Validated {
			continue
		}
		u := ws.WitnessUpdate(p.Seed, f)
		if u == nil || len(u.NLRI) == 0 {
			continue
		}
		out = append(out, WitnessRef{Finding: i, Update: u})
	}
	return out
}

// WitnessKey identifies a concrete witness for per-round deduplication:
// the explored (node, peer) edge plus the announcement's leading prefix
// and community set. The in-process backend and the distributed
// coordinator (internal/dist) must dedup identically — both key through
// here.
func WitnessKey(node, peer string, u *bgp.Update) string {
	return fmt.Sprintf("%s|%s|%s|%v", node, peer, u.NLRI[0], u.Attrs.Communities)
}

// Round runs one federated exploration round: per-node concolic
// exploration over the shared worker pool, then cross-node witness
// propagation and the cross-node oracles.
func (fe *FederatedExperiment) Round() (*FederatedResult, error) {
	start := time.Now()
	res := &FederatedResult{}

	// Phase 1: prepare one engine per target — checkpoint clone of the
	// live node, scenario seed and symbolic declaration (PrepareTarget,
	// shared with the distributed agent).
	type prep struct {
		*TargetPrep
		slot int // index into res.Targets (Targets keep resolution order)
	}
	var preps []*prep
	var members []concolic.FleetMember
	for _, tg := range fe.Topo.ResolveTargets(fe.opts.DefaultScenario) {
		live, ok := fe.Fabric.Routers[tg.Node]
		if !ok {
			return nil, fmt.Errorf("federated: unknown node %q", tg.Node)
		}
		// Targets report in resolution order whether they run or skip —
		// the distributed coordinator keeps the same order, so the two
		// backends' result lists zip index by index.
		slot := len(res.Targets)
		res.Targets = append(res.Targets, FederatedTargetResult{
			Node: tg.Node, Peer: tg.Peer, Scenario: tg.Scenario,
		})
		tp, err := PrepareTarget(live, tg, fe.opts.Engine, fe.states, fe.opts.ReuseState)
		if err != nil {
			var seedErr *SeedUnavailableError
			if errors.As(err, &seedErr) && !tg.Explicit {
				// Defaulted target with nothing observed yet: skip, visibly.
				res.Targets[slot].Err = seedErr.Err
				continue
			}
			return nil, fmt.Errorf("federated: %s/%s: %w", tg.Node, tg.Peer, err)
		}
		preps = append(preps, &prep{TargetPrep: tp, slot: slot})
		members = append(members, concolic.FleetMember{ID: tg.Node, Engine: tp.Engine})
	}

	// Phase 2: one frontier shard per node, one shared worker pool.
	reports := concolic.ExploreFleet(members, fe.opts.Workers)

	// Phase 3: per-node oracles (each scenario's own Analyze, against the
	// node's checkpoint-time state), then cross-node witness propagation.
	type witness struct {
		node, peer string
		update     *bgp.Update
		finding    *Finding // the validated finding behind the update
		result     *Result  // its target's result (minimization stats)
	}
	var witnesses []witness
	seenWitness := map[string]bool{}
	for i, pr := range preps {
		tg := pr.Target
		r := pr.Analyze(fe.Fabric.Routers[tg.Node], fe.opts.Engine, fe.boundary, reports[i])
		res.Targets[pr.slot].Result = r
		for _, wr := range pr.WitnessRefs(r) {
			key := WitnessKey(tg.Node, tg.Peer, wr.Update)
			if seenWitness[key] {
				continue
			}
			seenWitness[key] = true
			witnesses = append(witnesses, witness{
				node: tg.Node, peer: tg.Peer, update: wr.Update,
				finding: &r.Findings[wr.Finding], result: r,
			})
		}
	}

	for _, w := range witnesses {
		if res.WitnessesInjected >= fe.opts.MaxWitnesses {
			// Never truncate silently: the skipped count is part of the
			// result so a capped round doesn't read as a clean one.
			res.WitnessesSkipped++
			continue
		}
		res.WitnessesInjected++
		w.finding.Witness = w.update
		out, err := fe.CheckWitness(w.node, w.peer, w.update)
		if err != nil {
			return nil, err
		}
		res.PropagationSteps += out.Steps
		res.Violations = append(res.Violations, out.Violations...)
		if fe.opts.Minimize && len(out.Violations) > 0 {
			min, st, err := MinimizeWitness(fe, w.node, w.peer, w.update, out.Violations, fe.opts.MinimizeBudget)
			if err != nil {
				return nil, fmt.Errorf("federated: minimize %s/%s witness %s: %w", w.node, w.peer, w.update.NLRI[0], err)
			}
			w.finding.MinimalWitness = min
			if w.result.Minimization == nil {
				w.result.Minimization = &minimize.Stats{}
			}
			w.result.Minimization.Add(st)
		}
	}

	res.Elapsed = time.Since(start)
	return res, nil
}

// WitnessChecker re-executes one concrete witness end to end — shadow
// injection, bounded propagation, cross-node oracles, withdraw check —
// and reports what it triggered. Both federated backends implement it
// (FederatedExperiment over a COW Fabric.Shadow, dist.Coordinator over
// the shadow_open/inject_witness/query_oracle RPC sequence), which is
// what lets witness minimization re-validate candidates identically on
// either side.
type WitnessChecker interface {
	CheckWitness(node, peer string, w *bgp.Update) (*WitnessOutcome, error)
}

// WitnessOutcome is one candidate injection's verdict.
type WitnessOutcome struct {
	Violations []FederatedViolation
	// Steps counts the shadow deliveries the bounded propagation ran
	// (UPDATE and WITHDRAW waves together).
	Steps int
}

// ViolationFingerprint identifies a violation for witness minimization:
// the oracle kind and its attribution (observing node, source node,
// sending peer) — everything except the witness-dependent prefix, hop
// count and detail text, which legitimately change as the witness
// shrinks.
func ViolationFingerprint(v FederatedViolation) string {
	return v.Kind + "|" + v.Node + "|" + v.Source + "|" + v.Peer
}

// CoversFingerprints reports whether got reproduces every violation in
// want (by attribution fingerprint). Minimization accepts a candidate
// only under this condition: the minimal witness must still demonstrate
// everything the original did.
func CoversFingerprints(got []FederatedViolation, want map[string]bool) bool {
	have := make(map[string]bool, len(got))
	for _, v := range got {
		have[ViolationFingerprint(v)] = true
	}
	for fp := range want {
		if !have[fp] {
			return false
		}
	}
	return true
}

// MinimizeWitness delta-debugs one confirmed witness against a backend's
// CheckWitness, accepting a candidate only if every violation the
// original triggered still fires with the same attribution fingerprint.
// Shared by the in-process Round and the distributed coordinator so the
// two backends minimize identically.
func MinimizeWitness(ck WitnessChecker, node, peer string, w *bgp.Update, vs []FederatedViolation, budget int) (*bgp.Update, *minimize.Stats, error) {
	want := make(map[string]bool, len(vs))
	for _, v := range vs {
		want[ViolationFingerprint(v)] = true
	}
	oracle := func(cand *bgp.Update) (bool, error) {
		out, err := ck.CheckWitness(node, peer, cand)
		if err != nil {
			return false, err
		}
		return CoversFingerprints(out.Violations, want), nil
	}
	return minimize.Witness(w, oracle, minimize.Options{MaxCandidates: budget})
}

// WaveTailLen bounds the per-wave delivery counts kept on a
// persistent-oscillation violation: the tail is what distinguishes
// genuine divergence from slow convergence, so only the final waves are
// retained.
const WaveTailLen = prop.WaveTailLen

// WaveTail returns the final (up to WaveTailLen) entries of waves.
// Shared by both backends so their oscillation verdicts render — and
// compare — identically. (The logic lives in internal/prop, where the
// temporal property assertions consume the same tail.)
func WaveTail(waves []int) []int { return prop.WaveTail(waves) }

// runWaves drains the shadow network like netsim's Run(limit), but
// groups the deliveries into virtual-time waves: consecutive deliveries
// sharing one virtual timestamp are one wave. The per-wave counts feed
// the oscillation oracle's diverges-vs-converges-slowly telemetry.
func runWaves(net *netsim.Network, limit int) (steps int, waves []int) {
	var last time.Time
	for limit <= 0 || steps < limit {
		if !net.Step() {
			break
		}
		steps++
		now := net.Now()
		if len(waves) == 0 || !now.Equal(last) {
			waves = append(waves, 0)
			last = now
		}
		waves[len(waves)-1]++
	}
	return steps, waves
}

// OscillationDetail renders the bounded-propagation verdict one way for
// both backends (the parity tests compare violation strings verbatim).
func OscillationDetail(phase string, maxSteps, pending int, waves []int) string {
	return prop.OscillationDetail(phase, maxSteps, pending, waves)
}

// CheckWitness injects one concrete witness announcement into a fresh
// shadow fabric, propagates it along topology edges, collects the
// witness-attributed facts (installation, forward traces, withdraw
// cleanup), and evaluates the experiment's property set over them —
// the previously hard-coded cross-node oracles are now the built-in
// properties. Round calls it for every injected witness; witness
// minimization calls it for every candidate.
func (fe *FederatedExperiment) CheckWitness(node, peer string, w *bgp.Update) (*WitnessOutcome, error) {
	res := &WitnessOutcome{}
	facts, err := fe.collectFacts(node, peer, w)
	if err != nil {
		return nil, err
	}
	res.Steps = facts.Update.Steps + facts.Withdraw.Steps
	prefix := w.NLRI[0]
	for _, v := range prop.Evaluate(fe.props, facts) {
		res.Violations = append(res.Violations, FederatedViolation{
			Kind: v.Kind, Node: v.Node, Source: node, Peer: peer, Prefix: prefix,
			Hops: v.Hops, Detail: v.Detail, Waves: v.Waves, WaveTail: v.WaveTail,
		})
	}
	return res, nil
}

// collectFacts plays the witness lifecycle over a fresh shadow fabric
// and records what happened, without judging it: UPDATE propagation,
// which nodes installed the witness (with forward traces), WITHDRAW
// propagation, which installations survived. Collection stops early
// when a phase fails to converge — the remaining facts would be
// mid-churn noise, exactly as the original oracles returned early.
func (fe *FederatedExperiment) collectFacts(node, peer string, w *bgp.Update) (*prop.Facts, error) {
	shadow, err := fe.Fabric.Shadow()
	if err != nil {
		return nil, err
	}
	sender := shadow.Routers[peer]
	if sender == nil {
		return nil, fmt.Errorf("federated: witness peer %q missing from shadow", peer)
	}
	sess := sender.Session(node)
	if sess == nil {
		return nil, fmt.Errorf("federated: no %s→%s session for witness injection", peer, node)
	}
	prefix := w.NLRI[0]
	facts := &prop.Facts{
		Node: node, Peer: peer, Boundary: fe.boundary,
		MaxSteps: fe.opts.MaxPropagationSteps,
		Witness:  prop.NewEnv(prefix, &w.Attrs, fe.boundary),
		NodeAS: func(name string) (uint16, bool) {
			as, ok := fe.nodeAS[name]
			return as, ok
		},
	}

	// Snapshot the pre-injection best route per node. The facts must
	// attribute installations to the *witness*, not to a pre-existing
	// legitimate route for the same prefix (the witness often shares the
	// seed's prefix): a node is affected only if its best route for the
	// prefix changed when the witness propagated.
	pre := make(map[string]*rib.Route, len(shadow.Routers))
	for name, r := range shadow.Routers {
		pre[name] = r.RIB().Best(prefix)
	}

	// UPDATE propagation along topology edges.
	if err := sess.SendUpdate(w); err != nil {
		return nil, err
	}
	steps, waves := runWaves(shadow.Net, fe.opts.MaxPropagationSteps)
	facts.Update = prop.Phase{Steps: steps, Pending: shadow.Net.Pending(), Waves: waves}
	if facts.Update.Pending > 0 {
		return facts, nil
	}

	// Per-node installation facts over the converged shadow. installed
	// remembers each witness-attributed best route for the withdraw
	// check below.
	installed := make(map[string]*rib.Route)
	for _, name := range shadow.NodeNames() {
		if name == node || name == peer {
			continue
		}
		rt := shadow.Routers[name].RIB().Best(prefix)
		if rt == nil || rt == pre[name] {
			continue // witness never took hold at this node
		}
		installed[name] = rt
		terminal, hops, delivered, path := shadow.traceForward(name, prefix)
		facts.Nodes = append(facts.Nodes, prop.NodeFacts{
			Name: name, Hops: hops, Terminal: terminal, Delivered: delivered, Path: path,
			Route: prop.NewEnv(prefix, &rt.Attrs, fe.boundary),
		})
	}

	// WITHDRAW propagation: the retraction must clean the witness out of
	// every node it reached. Only witness-installed routes count — a
	// node falling back to (or keeping) a legitimate route is correct.
	if err := sess.SendUpdate(&bgp.Update{Withdrawn: []netaddr.Prefix{prefix}}); err != nil {
		return nil, err
	}
	steps, waves = runWaves(shadow.Net, fe.opts.MaxPropagationSteps)
	facts.Withdraw = prop.Phase{Steps: steps, Pending: shadow.Net.Pending(), Waves: waves}
	if facts.Withdraw.Pending > 0 {
		return facts, nil
	}
	for name, was := range installed {
		if cur := shadow.Routers[name].RIB().Best(prefix); cur != nil && cur == was {
			facts.Stale = append(facts.Stale, name)
		}
	}
	sort.Strings(facts.Stale)
	return facts, nil
}

// traceForward follows best-route provenance for p from a node toward
// the advertising neighbor, hop by hop, until delivery (a locally
// originated covering route), a dead end (no covering route), or a
// forwarding loop. It models where traffic for p actually goes — the
// multi-hop blackhole oracle's core. path lists every node visited,
// origin first and terminal last, feeding `never reachable via`
// property assertions.
func (f *Fabric) traceForward(from string, p netaddr.Prefix) (terminal string, hops int, delivered bool, path []string) {
	cur := from
	visited := map[string]bool{}
	for {
		path = append(path, cur)
		if visited[cur] {
			return cur, hops, false, path // forwarding loop
		}
		visited[cur] = true
		r := f.Routers[cur]
		if r == nil {
			return cur, hops, false, path
		}
		rt := r.RIB().CoveringBest(p)
		if rt == nil {
			return cur, hops, false, path // dead end: no covering route
		}
		if rt.Local {
			return cur, hops, true, path // delivered to the originating AS
		}
		next := r.PeerNameByAddr(rt.PeerRouterID)
		if next == "" {
			return cur, hops, false, path
		}
		cur = next
		hops++
	}
}
