package core

import (
	"fmt"
	"strings"

	"dice/internal/concolic"
	"dice/internal/filter"
)

// FilterAudit is the result of exploring a policy filter in isolation:
// per-clause coverage and the clauses exploration proved problematic.
type FilterAudit struct {
	Filter string
	Paths  int
	Runs   int
	Sites  []filter.SiteCount
	// DeadTrue lists conditions that were never true on any feasible
	// path — their guarded statements are unreachable (dead config).
	DeadTrue []filter.SiteCount
	// DeadFalse lists conditions that were never false — redundant
	// guards (the clause fires on every path that reaches it).
	DeadFalse []filter.SiteCount
}

// String renders an operator-facing audit report.
func (a *FilterAudit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "filter %s: %d if-sites, %d paths explored in %d runs\n",
		a.Filter, len(a.Sites), a.Paths, a.Runs)
	for _, sc := range a.Sites {
		fmt.Fprintf(&b, "  site %-12s true=%-5d false=%-5d  %s\n", sc.Site, sc.True, sc.False, sc.Cond)
	}
	for _, sc := range a.DeadTrue {
		fmt.Fprintf(&b, "  DEAD CLAUSE: site %s condition can never hold: %s\n", sc.Site, sc.Cond)
	}
	for _, sc := range a.DeadFalse {
		fmt.Fprintf(&b, "  REDUNDANT GUARD: site %s condition always holds: %s\n", sc.Site, sc.Cond)
	}
	return b.String()
}

// AuditFilter concolically explores a single policy filter with every
// subject field symbolic, and reports clause coverage: a configuration
// lint built from the paper's observation that exploration covers the
// interpreted configuration like code. Conditions that never evaluate
// true across the *entire feasible input space* guard dead clauses —
// typos like `net.len > 32` or ranges shadowed by earlier clauses.
func AuditFilter(f *filter.Filter, maxRuns int) *FilterAudit {
	if maxRuns <= 0 {
		maxRuns = 5000
	}
	cov := filter.NewCoverage()
	handler := func(rc *concolic.RunContext) any {
		subj := &filter.Subject{
			NetAddr:   rc.Input("addr"),
			NetLen:    rc.Input("len"),
			PathLen:   rc.Input("pathlen"),
			OriginAS:  rc.Input("originas"),
			FirstAS:   rc.Input("firstas"),
			Origin:    rc.Input("origin"),
			LocalPref: rc.Input("localpref"),
			MED:       rc.Input("med"),
		}
		// Wire-format invariants, so "never true" means never true for
		// any *valid* message.
		rc.Assume(concolic.Le(subj.NetLen, concolic.Concrete(32, 8)))
		rc.Assume(concolic.Le(subj.Origin, concolic.Concrete(2, 8)))
		v := filter.RunWithCoverage(f, subj, rc, cov)
		return v.Disposition
	}
	eng := concolic.NewEngine(handler, concolic.Options{MaxRuns: maxRuns})
	eng.Var("addr", 32, 0x0A070000)
	eng.Var("len", 8, 16)
	eng.Var("pathlen", 16, 1)
	eng.Var("originas", 16, 65001)
	eng.Var("firstas", 16, 65001)
	eng.Var("origin", 8, 0)
	eng.Var("localpref", 32, 100)
	eng.Var("med", 32, 0)
	rep := eng.Explore()

	audit := &FilterAudit{
		Filter: f.Name,
		Paths:  len(rep.Paths),
		Runs:   rep.Runs,
		Sites:  cov.Sites(),
	}
	for _, sc := range cov.Dead() {
		if sc.True == 0 {
			audit.DeadTrue = append(audit.DeadTrue, sc)
		} else {
			audit.DeadFalse = append(audit.DeadFalse, sc)
		}
	}
	return audit
}
